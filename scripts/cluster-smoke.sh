#!/usr/bin/env bash
# Cluster end-to-end smoke (CI's e2e-cluster job; also runs locally):
# boot shard nodes + 1 coordinator with the real mobserve binary, plus a
# single-node live mobserve as the reference. Ingest the same NDJSON
# corpus into both deployments through their public /v1/ingest, then
# assert that /v1/population and /v1/flows answer byte-for-byte
# identically — the scatter-gather exactness contract (DESIGN.md §8) at
# the HTTP surface — and that the coordinator reports healthy shards and
# cached repeats.
#
# With --chaos (CI's e2e-chaos job): 3 shard nodes, -replication 2 and a
# durable WAL spool. Half the corpus goes in, then one shard is killed
# with SIGKILL mid-ingest of the second half. The ingest must still be
# acknowledged (durable in the spool), queries must still answer
# byte-identically off the surviving replicas, and after the shard
# restarts over the same store the coordinator must drain its backlog
# and report healthy — with the answers still byte-identical. Zero
# acknowledged records lost, exactness preserved (DESIGN.md §10).
set -euo pipefail
cd "$(dirname "$0")/.."

CHAOS=0
[ "${1:-}" = "--chaos" ] && CHAOS=1

WORK=$(mktemp -d)
BASE_PORT="${CLUSTER_SMOKE_PORT:-18180}"
P_SHARD0=$BASE_PORT; P_SHARD1=$((BASE_PORT+1)); P_SHARD2=$((BASE_PORT+2))
P_COORD=$((BASE_PORT+3)); P_SINGLE=$((BASE_PORT+4))
PIDS=()
# The nodes drain on SIGTERM (flushing a final snapshot), so wait for
# them before removing the workdir out from under the flush.
trap 'for p in "${PIDS[@]:-}"; do kill "$p" 2>/dev/null || true; done; wait 2>/dev/null || true; rm -rf "$WORK"' EXIT

go build -o "$WORK/mobserve" ./cmd/mobserve
go build -o "$WORK/mobgen" ./cmd/mobgen

start_shard() { # port dbdir logname — chaos shards get a snapshot dir
  local flags=()
  [ "$CHAOS" = 1 ] && flags=(-snapshot-dir "$2-snap")
  "$WORK/mobserve" -cluster-shard -db "$2" -addr "127.0.0.1:$1" \
    ${flags[@]+"${flags[@]}"} >>"$WORK/$3.log" 2>&1 &
  PIDS+=($!)
  eval "PID_$3=$!"
}

wait_up() {
  local port=$1 name=$2
  for _ in $(seq 1 150); do
    if curl -fsS "http://127.0.0.1:$port/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.2
  done
  echo "cluster-smoke: $name did not come up"; cat "$WORK/$name.log"; exit 1
}

jsonget() { python3 -c 'import json,sys; d=json.load(sys.stdin)
for k in sys.argv[1].split("."): d=d[k]
print(d)' "$1"; }

# strip_cached drops the "cached" snapshot metadata before comparison —
# it says whether this serving recomputed, not what the answer is, and
# the two deployments legitimately warm their caches at different times.
strip_cached() { python3 -c 'import json,sys
d=json.load(sys.stdin); d.pop("cached",None)
json.dump(d,sys.stdout,indent=2,sort_keys=True)'; }

# mval pulls one (possibly labelled) series value from a scrape.
mval() { awk -v n="$2" '$0 !~ /^#/ && index($0, n) == 1 { print $NF; exit }' "$1"; }

compare_endpoints() { # label
  for ep in "v1/population?scale=national" "v1/flows?scale=national" "v1/stats" "v1/population?scale=metro"; do
    curl -fsS "http://127.0.0.1:$P_COORD/$ep" | strip_cached >"$WORK/cluster.json"
    curl -fsS "http://127.0.0.1:$P_SINGLE/$ep" | strip_cached >"$WORK/single.json"
    if ! cmp -s "$WORK/cluster.json" "$WORK/single.json"; then
      echo "cluster-smoke: /$ep diverges between cluster and single node ($1):"
      diff "$WORK/cluster.json" "$WORK/single.json" || true
      exit 1
    fi
    echo "cluster-smoke: /$ep byte-identical ($1)"
  done
}

# wait_drained: poll /healthz until every probe-reachable shard has zero
# pending spooled rows (a down member keeps its backlog, by design).
wait_drained() {
  for _ in $(seq 1 300); do
    if curl -fsS "http://127.0.0.1:$P_COORD/healthz" | python3 -c '
import json,sys
h=json.load(sys.stdin)
ok=all(s["pending"]==0 for s in h["shards"] if s["ok"])
sys.exit(0 if ok else 1)'; then return 0; fi
    sleep 0.2
  done
  echo "cluster-smoke: live shards never drained"; curl -fsS "http://127.0.0.1:$P_COORD/healthz" || true; exit 1
}

if [ "$CHAOS" = 0 ]; then
  # ---- plain mode: 2 shards, R=1, no spool directory ----
  start_shard "$P_SHARD0" "$WORK/shard0" shard0
  start_shard "$P_SHARD1" "$WORK/shard1" shard1
  "$WORK/mobserve" -cluster-coordinator "http://127.0.0.1:$P_SHARD0,http://127.0.0.1:$P_SHARD1" \
    -addr "127.0.0.1:$P_COORD" >"$WORK/coord.log" 2>&1 &
  PIDS+=($!)
  "$WORK/mobserve" -live -db "$WORK/single" -addr "127.0.0.1:$P_SINGLE" >"$WORK/single.log" 2>&1 &
  PIDS+=($!)
  wait_up "$P_SHARD0" shard0
  wait_up "$P_SHARD1" shard1
  wait_up "$P_COORD" coord
  wait_up "$P_SINGLE" single

  "$WORK/mobgen" -users 400 -ndjson >"$WORK/batch.ndjson" 2>/dev/null

  curl -fsS "http://127.0.0.1:$P_COORD/metrics" >"$WORK/coord-metrics-before.txt"

  # The coordinator splits the corpus across the shards; the single node
  # keeps it whole.
  N_CLUSTER=$(curl -fsS -X POST --data-binary @"$WORK/batch.ndjson" "http://127.0.0.1:$P_COORD/v1/ingest" | jsonget ingested)
  N_SINGLE=$(curl -fsS -X POST --data-binary @"$WORK/batch.ndjson" "http://127.0.0.1:$P_SINGLE/v1/ingest" | jsonget ingested)
  echo "cluster-smoke: ingested $N_CLUSTER (cluster) / $N_SINGLE (single)"
  [ "$N_CLUSTER" = "$N_SINGLE" ] && [ "$N_CLUSTER" -gt 0 ] || { echo "cluster-smoke: ingest mismatch"; exit 1; }

  # Both shards must actually hold records — the ring spread the users.
  for port in "$P_SHARD0" "$P_SHARD1"; do
    HELD=$(curl -fsS "http://127.0.0.1:$port/shard/v1/health" | jsonget shard.tweets)
    echo "cluster-smoke: shard :$port holds $HELD records"
    [ "$HELD" -gt 0 ] || { echo "cluster-smoke: a shard holds no records"; exit 1; }
  done

  wait_drained
  compare_endpoints "2 shards"

  # Warm repeat is cached and the coordinator reports healthy shards.
  [ "$(curl -fsS "http://127.0.0.1:$P_COORD/v1/population?scale=national" | jsonget cached)" = "True" ] \
    || { echo "cluster-smoke: repeat not cached"; exit 1; }
  STATUS=$(curl -fsS "http://127.0.0.1:$P_COORD/healthz" | jsonget status)
  [ "$STATUS" = "ok" ] || { echo "cluster-smoke: coordinator health is $STATUS"; exit 1; }

  # Coordinator and shard /metrics moved with the traffic: the rows the
  # coordinator accepted, the per-node lane deliveries, the per-stage
  # query histogram, and a shard's fold counter (DESIGN.md §12).
  curl -fsS "http://127.0.0.1:$P_COORD/metrics" >"$WORK/coord-metrics-after.txt"
  ROWS0=$(mval "$WORK/coord-metrics-before.txt" geomob_cluster_ingested_rows_total)
  ROWS1=$(mval "$WORK/coord-metrics-after.txt" geomob_cluster_ingested_rows_total)
  [ "$((ROWS1 - ROWS0))" -ge "$N_CLUSTER" ] \
    || { echo "cluster-smoke: geomob_cluster_ingested_rows_total moved $ROWS0 -> $ROWS1, want +$N_CLUSTER"; exit 1; }
  LANE=$(mval "$WORK/coord-metrics-after.txt" 'geomob_lane_delivered_rows_total{node="member-000"}')
  [ -n "$LANE" ] && [ "$LANE" -gt 0 ] \
    || { echo "cluster-smoke: lane delivery series missing or zero"; exit 1; }
  grep -q 'geomob_query_stage_seconds_bucket{stage="scatter"' "$WORK/coord-metrics-after.txt" \
    || { echo "cluster-smoke: no scatter stage histogram on the coordinator"; exit 1; }
  FOLDS=$(curl -fsS "http://127.0.0.1:$P_SHARD0/metrics" | awk '$1 == "geomob_shard_folds_total" { print $2 }')
  [ -n "$FOLDS" ] && [ "$FOLDS" -gt 0 ] \
    || { echo "cluster-smoke: shard0 served no folds per its /metrics"; exit 1; }
  echo "cluster-smoke: metrics moved (rows +$((ROWS1 - ROWS0)), lane member-000 $LANE, shard0 folds $FOLDS)"

  # /metrics/cluster federates both members' expositions: every member
  # reports up, and node-labelled shard series from both shards appear
  # in one valid scrape (DESIGN.md §13).
  curl -fsS "http://127.0.0.1:$P_COORD/metrics/cluster" >"$WORK/fed-metrics.txt"
  for node in member-000 member-001; do
    UP=$(mval "$WORK/fed-metrics.txt" "geomob_member_up{node=\"$node\"}")
    [ "$UP" = "1" ] || { echo "cluster-smoke: federated $node not up (got '$UP')"; exit 1; }
    grep -q "geomob_shard_folds_total{node=\"$node\"}" "$WORK/fed-metrics.txt" \
      || { echo "cluster-smoke: no node-labelled fold counter for $node on /metrics/cluster"; exit 1; }
  done
  echo "cluster-smoke: /metrics/cluster federates both members with node labels"

  echo "cluster-smoke: OK"
  exit 0
fi

# ---- chaos mode: 3 shards, R=2, durable WAL spool, SIGKILL mid-ingest ----
start_shard "$P_SHARD0" "$WORK/shard0" shard0
start_shard "$P_SHARD1" "$WORK/shard1" shard1
start_shard "$P_SHARD2" "$WORK/shard2" shard2
"$WORK/mobserve" -cluster-coordinator \
  "http://127.0.0.1:$P_SHARD0,http://127.0.0.1:$P_SHARD1,http://127.0.0.1:$P_SHARD2" \
  -replication 2 -wal-dir "$WORK/wal" \
  -addr "127.0.0.1:$P_COORD" >"$WORK/coord.log" 2>&1 &
PIDS+=($!)
"$WORK/mobserve" -live -db "$WORK/single" -addr "127.0.0.1:$P_SINGLE" >"$WORK/single.log" 2>&1 &
PIDS+=($!)
wait_up "$P_SHARD0" shard0
wait_up "$P_SHARD1" shard1
wait_up "$P_SHARD2" shard2
wait_up "$P_COORD" coord
wait_up "$P_SINGLE" single

"$WORK/mobgen" -users 600 -ndjson >"$WORK/batch.ndjson" 2>/dev/null
TOTAL=$(wc -l <"$WORK/batch.ndjson")
HALF=$((TOTAL / 2))
head -n "$HALF" "$WORK/batch.ndjson" >"$WORK/half1.ndjson"
tail -n +"$((HALF + 1))" "$WORK/batch.ndjson" >"$WORK/half2.ndjson"

N1=$(curl -fsS -X POST --data-binary @"$WORK/half1.ndjson" "http://127.0.0.1:$P_COORD/v1/ingest" | jsonget ingested)
echo "cluster-smoke: chaos: first half ingested ($N1 records)"

# Commit a durable snapshot on the shard about to die: its restart must
# come back through snapshot restore, not a full store rescan.
wait_drained
SNAP1=$(curl -fsS -X POST "http://127.0.0.1:$P_SHARD1/v1/snapshot" | jsonget buckets)
echo "cluster-smoke: chaos: shard1 snapshotted ($SNAP1 buckets)"
[ "$SNAP1" -gt 0 ] || { echo "cluster-smoke: chaos: shard1 snapshot empty"; exit 1; }

# SIGKILL shard1 while the second half is in flight. The spool is the
# acknowledgement point, so the ingest must still be fully accepted.
curl -fsS -X POST --data-binary @"$WORK/half2.ndjson" "http://127.0.0.1:$P_COORD/v1/ingest" >"$WORK/ing2.json" &
ING_PID=$!
sleep 0.1
kill -9 "$PID_shard1"
echo "cluster-smoke: chaos: shard1 killed with SIGKILL mid-ingest"
wait "$ING_PID" || { echo "cluster-smoke: chaos: second-half ingest failed"; cat "$WORK/coord.log"; exit 1; }
N2=$(jsonget ingested <"$WORK/ing2.json")
[ "$((N1 + N2))" = "$TOTAL" ] || { echo "cluster-smoke: chaos: acked $N1+$N2, want $TOTAL"; exit 1; }
echo "cluster-smoke: chaos: second half acknowledged despite the crash ($N2 records)"

N_SINGLE=$(curl -fsS -X POST --data-binary @"$WORK/batch.ndjson" "http://127.0.0.1:$P_SINGLE/v1/ingest" | jsonget ingested)
[ "$N_SINGLE" = "$TOTAL" ] || { echo "cluster-smoke: single ingest mismatch"; exit 1; }

# With one member down the coordinator must report degraded — and still
# answer byte-identically off the surviving replicas once they drain.
wait_drained
STATUS=$(curl -fsS "http://127.0.0.1:$P_COORD/healthz" | jsonget status)
[ "$STATUS" = "degraded" ] || { echo "cluster-smoke: chaos: health is $STATUS with a member down, want degraded"; exit 1; }
compare_endpoints "shard1 down"

# Federation degrades, never errors: with shard1 SIGKILLed the scrape
# still answers 200 with a valid exposition, the dead member marked
# geomob_member_up 0 and the survivors' series still present.
curl -fsS "http://127.0.0.1:$P_COORD/metrics/cluster" >"$WORK/fed-degraded.txt"
[ "$(mval "$WORK/fed-degraded.txt" 'geomob_member_up{node="member-001"}')" = "0" ] \
  || { echo "cluster-smoke: chaos: killed member not marked down on /metrics/cluster"; exit 1; }
for node in member-000 member-002; do
  [ "$(mval "$WORK/fed-degraded.txt" "geomob_member_up{node=\"$node\"}")" = "1" ] \
    || { echo "cluster-smoke: chaos: surviving $node not up on /metrics/cluster"; exit 1; }
done
grep -q 'geomob_shard_folds_total{node="member-000"}' "$WORK/fed-degraded.txt" \
  || { echo "cluster-smoke: chaos: surviving member series missing from degraded federation"; exit 1; }
echo "cluster-smoke: chaos: /metrics/cluster degraded gracefully (member-001 down)"

# Restart shard1 over the same store, snapshot dir and port. The boot
# must hydrate from the snapshot files (restored buckets, no full
# rescan — a tail replay of post-snapshot segments is fine); then the
# coordinator's lanes replay its spooled backlog (deduplicated by the
# delivery high-water mark), pending drains to zero, and health
# returns to ok.
start_shard "$P_SHARD1" "$WORK/shard1" shard1
wait_up "$P_SHARD1" shard1
curl -fsS "http://127.0.0.1:$P_SHARD1/shard/v1/health" >"$WORK/shard1-health.json"
S1_RESTORED=$(jsonget shard.recovery.restored <"$WORK/shard1-health.json")
S1_RESCAN=$(jsonget shard.recovery.full_rescan <"$WORK/shard1-health.json")
echo "cluster-smoke: chaos: shard1 recovery restored=$S1_RESTORED full_rescan=$S1_RESCAN"
[ "$S1_RESTORED" -gt 0 ] || { echo "cluster-smoke: chaos: shard1 restored no buckets from snapshots"; exit 1; }
[ "$S1_RESCAN" = "False" ] || { echo "cluster-smoke: chaos: shard1 fell back to a full rescan"; exit 1; }
wait_drained
for _ in $(seq 1 150); do
  STATUS=$(curl -fsS "http://127.0.0.1:$P_COORD/healthz" | jsonget status)
  [ "$STATUS" = "ok" ] && break
  sleep 0.2
done
[ "$STATUS" = "ok" ] || { echo "cluster-smoke: chaos: health stuck at $STATUS after recovery"; curl -fsS "http://127.0.0.1:$P_COORD/healthz"; exit 1; }
echo "cluster-smoke: chaos: shard1 recovered, backlog drained"
compare_endpoints "after recovery"

echo "cluster-smoke: chaos OK"
