#!/usr/bin/env bash
# Cluster end-to-end smoke (CI's e2e-cluster job; also runs locally):
# boot 2 shard nodes + 1 coordinator with the real mobserve binary, plus
# a single-node live mobserve as the reference. Ingest the same NDJSON
# corpus into both deployments through their public /v1/ingest, then
# assert that /v1/population and /v1/flows answer byte-for-byte
# identically — the scatter-gather exactness contract (DESIGN.md §8) at
# the HTTP surface — and that the coordinator reports healthy shards and
# cached repeats.
set -euo pipefail
cd "$(dirname "$0")/.."

WORK=$(mktemp -d)
BASE_PORT="${CLUSTER_SMOKE_PORT:-18180}"
P_SHARD0=$BASE_PORT; P_SHARD1=$((BASE_PORT+1)); P_COORD=$((BASE_PORT+2)); P_SINGLE=$((BASE_PORT+3))
PIDS=()
trap 'for p in "${PIDS[@]:-}"; do kill "$p" 2>/dev/null || true; done; rm -rf "$WORK"' EXIT

go build -o "$WORK/mobserve" ./cmd/mobserve
go build -o "$WORK/mobgen" ./cmd/mobgen

"$WORK/mobserve" -cluster-shard -db "$WORK/shard0" -addr "127.0.0.1:$P_SHARD0" >"$WORK/shard0.log" 2>&1 &
PIDS+=($!)
"$WORK/mobserve" -cluster-shard -db "$WORK/shard1" -addr "127.0.0.1:$P_SHARD1" >"$WORK/shard1.log" 2>&1 &
PIDS+=($!)
"$WORK/mobserve" -cluster-coordinator "http://127.0.0.1:$P_SHARD0,http://127.0.0.1:$P_SHARD1" \
  -addr "127.0.0.1:$P_COORD" >"$WORK/coord.log" 2>&1 &
PIDS+=($!)
"$WORK/mobserve" -live -db "$WORK/single" -addr "127.0.0.1:$P_SINGLE" >"$WORK/single.log" 2>&1 &
PIDS+=($!)

wait_up() {
  local port=$1 name=$2
  for _ in $(seq 1 100); do
    if curl -fsS "http://127.0.0.1:$port/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.2
  done
  echo "cluster-smoke: $name did not come up"; cat "$WORK/$name.log"; exit 1
}
wait_up "$P_SHARD0" shard0
wait_up "$P_SHARD1" shard1
wait_up "$P_COORD" coord
wait_up "$P_SINGLE" single

"$WORK/mobgen" -users 400 -ndjson >"$WORK/batch.ndjson" 2>/dev/null

jsonget() { python3 -c 'import json,sys; d=json.load(sys.stdin)
for k in sys.argv[1].split("."): d=d[k]
print(d)' "$1"; }

# The coordinator splits the corpus across the shards; the single node
# keeps it whole.
N_CLUSTER=$(curl -fsS -X POST --data-binary @"$WORK/batch.ndjson" "http://127.0.0.1:$P_COORD/v1/ingest" | jsonget ingested)
N_SINGLE=$(curl -fsS -X POST --data-binary @"$WORK/batch.ndjson" "http://127.0.0.1:$P_SINGLE/v1/ingest" | jsonget ingested)
echo "cluster-smoke: ingested $N_CLUSTER (cluster) / $N_SINGLE (single)"
[ "$N_CLUSTER" = "$N_SINGLE" ] && [ "$N_CLUSTER" -gt 0 ] || { echo "cluster-smoke: ingest mismatch"; exit 1; }

# Both shards must actually hold records — the partitioner spread the users.
for port in "$P_SHARD0" "$P_SHARD1"; do
  HELD=$(curl -fsS "http://127.0.0.1:$port/shard/v1/health" | jsonget shard.tweets)
  echo "cluster-smoke: shard :$port holds $HELD records"
  [ "$HELD" -gt 0 ] || { echo "cluster-smoke: a shard holds no records"; exit 1; }
done

# Scatter-gather answers equal the single node's, byte for byte.
for ep in "v1/population?scale=national" "v1/flows?scale=national" "v1/stats" "v1/population?scale=metro"; do
  curl -fsS "http://127.0.0.1:$P_COORD/$ep" >"$WORK/cluster.json"
  curl -fsS "http://127.0.0.1:$P_SINGLE/$ep" >"$WORK/single.json"
  if ! cmp -s "$WORK/cluster.json" "$WORK/single.json"; then
    echo "cluster-smoke: /$ep diverges between cluster and single node:"
    diff "$WORK/cluster.json" "$WORK/single.json" || true
    exit 1
  fi
  echo "cluster-smoke: /$ep byte-identical"
done

# Warm repeat is cached and the coordinator reports healthy shards.
[ "$(curl -fsS "http://127.0.0.1:$P_COORD/v1/population?scale=national" | jsonget cached)" = "True" ] \
  || { echo "cluster-smoke: repeat not cached"; exit 1; }
STATUS=$(curl -fsS "http://127.0.0.1:$P_COORD/healthz" | jsonget status)
[ "$STATUS" = "ok" ] || { echo "cluster-smoke: coordinator health is $STATUS"; exit 1; }

echo "cluster-smoke: OK"
