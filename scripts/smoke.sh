#!/usr/bin/env bash
# End-to-end live-service smoke (CI's e2e-smoke job; also runs locally):
# boot mobserve in live mode against an empty store, ingest a generated
# NDJSON batch through POST /v1/ingest, assert that /v1/population and
# /v1/flows return non-empty results, and that repeat queries are served
# from the snapshot cache with zero store scans — the bucket ring, not
# the segment files, answers everything.
set -euo pipefail
cd "$(dirname "$0")/.."

WORK=$(mktemp -d)
PORT="${SMOKE_PORT:-18080}"
BASE="http://127.0.0.1:$PORT"
SERVER_PID=""
trap '[ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

go build -o "$WORK/mobserve" ./cmd/mobserve
go build -o "$WORK/mobgen" ./cmd/mobgen

"$WORK/mobserve" -db "$WORK/store" -addr "127.0.0.1:$PORT" -live -bucket 1h >"$WORK/server.log" 2>&1 &
SERVER_PID=$!

for _ in $(seq 1 100); do
  if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then break; fi
  sleep 0.2
done
curl -fsS "$BASE/healthz" >/dev/null || { echo "smoke: server did not come up"; cat "$WORK/server.log"; exit 1; }

"$WORK/mobgen" -users 500 -ndjson >"$WORK/batch.ndjson" 2>/dev/null

jsonget() { python3 -c 'import json,sys; d=json.load(sys.stdin)
for k in sys.argv[1].split("."): d=d[k]
print(d)' "$1"; }

INGESTED=$(curl -fsS -X POST --data-binary @"$WORK/batch.ndjson" "$BASE/v1/ingest" | jsonget ingested)
echo "smoke: ingested $INGESTED records"
[ "$INGESTED" -gt 0 ] || { echo "smoke: nothing ingested"; exit 1; }

SCANS0=$(curl -fsS "$BASE/healthz" | jsonget scans)

curl -fsS "$BASE/v1/population?scale=national" >"$WORK/pop1.json"
POP_USERS=$(jsonget twitter_users <"$WORK/pop1.json" | python3 -c 'import ast,sys; print(sum(ast.literal_eval(sys.stdin.read())))')
POP_CACHED=$(jsonget cached <"$WORK/pop1.json")
echo "smoke: population users=$POP_USERS cached=$POP_CACHED"
python3 -c "import sys; sys.exit(0 if float('$POP_USERS') > 0 else 1)" || { echo "smoke: empty population"; exit 1; }
[ "$POP_CACHED" = "False" ] || { echo "smoke: first population query claimed cached"; exit 1; }

curl -fsS "$BASE/v1/flows?scale=national" >"$WORK/flows1.json"
FLOW_TOTAL=$(jsonget total <"$WORK/flows1.json")
echo "smoke: flows total=$FLOW_TOTAL"
python3 -c "import sys; sys.exit(0 if float('$FLOW_TOTAL') > 0 else 1)" || { echo "smoke: empty flows"; exit 1; }

# Repeat queries: cached, and the store was never rescanned — not by the
# first queries (the bucket fold answered) nor by the repeats.
[ "$(curl -fsS "$BASE/v1/population?scale=national" | jsonget cached)" = "True" ] || { echo "smoke: repeat population not cached"; exit 1; }
[ "$(curl -fsS "$BASE/v1/flows?scale=national" | jsonget cached)" = "True" ] || { echo "smoke: repeat flows not cached"; exit 1; }
SCANS1=$(curl -fsS "$BASE/healthz" | jsonget scans)
[ "$SCANS0" = "$SCANS1" ] || { echo "smoke: /v1 queries scanned the store ($SCANS0 -> $SCANS1)"; exit 1; }

echo "smoke: OK (cached repeats, zero scans: $SCANS1)"
