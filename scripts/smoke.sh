#!/usr/bin/env bash
# End-to-end live-service smoke (CI's e2e-smoke job; also runs locally):
# boot mobserve in live mode against an empty store, ingest a generated
# NDJSON batch through POST /v1/ingest, assert that /v1/population and
# /v1/flows return non-empty results, and that repeat queries are served
# from the snapshot cache with zero store scans — the bucket ring, not
# the segment files, answers everything.
#
# With --restart (CI's e2e-restart job): the server runs with a durable
# snapshot directory. After the ingest-and-query pass, one snapshot is
# committed through POST /v1/snapshot and the server is killed with
# SIGKILL — no drain, no warning. The restarted server must hydrate
# from the snapshot files alone: /healthz proves zero store scans and a
# recovery that restored every bucket with no full rescan and no tail
# replay, and the /v1 answers are byte-identical to the pre-crash ones
# (DESIGN.md §11).
set -euo pipefail
cd "$(dirname "$0")/.."

RESTART=0
[ "${1:-}" = "--restart" ] && RESTART=1

WORK=$(mktemp -d)
PORT="${SMOKE_PORT:-18080}"
BASE="http://127.0.0.1:$PORT"
SERVER_PID=""
# The server drains on SIGTERM (flushing a final snapshot in restart
# mode), so wait for it before removing the workdir under the flush.
trap '[ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true; wait 2>/dev/null || true; rm -rf "$WORK"' EXIT

go build -o "$WORK/mobserve" ./cmd/mobserve
go build -o "$WORK/mobgen" ./cmd/mobgen

start_server() {
  local flags=()
  [ "$RESTART" = 1 ] && flags=(-snapshot-dir "$WORK/snaps")
  "$WORK/mobserve" -db "$WORK/store" -addr "127.0.0.1:$PORT" -live -bucket 1h \
    ${flags[@]+"${flags[@]}"} >>"$WORK/server.log" 2>&1 &
  SERVER_PID=$!
}

wait_up() {
  for _ in $(seq 1 100); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.2
  done
  echo "smoke: server did not come up"; cat "$WORK/server.log"; exit 1
}

start_server
wait_up

"$WORK/mobgen" -users 500 -ndjson >"$WORK/batch.ndjson" 2>/dev/null

jsonget() { python3 -c 'import json,sys; d=json.load(sys.stdin)
for k in sys.argv[1].split("."): d=d[k]
print(d)' "$1"; }

# strip_cached drops the "cached" metadata before byte comparison: it
# says whether this serving recomputed, not what the answer is.
strip_cached() { python3 -c 'import json,sys
d=json.load(sys.stdin); d.pop("cached",None)
json.dump(d,sys.stdout,indent=2,sort_keys=True)'; }

# mval pulls one unlabeled series value from a /metrics scrape.
mval() { awk -v n="$2" '$1 == n { print $2; exit }' "$1"; }

curl -fsS "$BASE/metrics" >"$WORK/metrics-before.txt"
grep -q '^# TYPE geomob_ingest_records_total counter' "$WORK/metrics-before.txt" \
  || { echo "smoke: /metrics missing typed ingest counter"; exit 1; }

INGESTED=$(curl -fsS -X POST --data-binary @"$WORK/batch.ndjson" "$BASE/v1/ingest" | jsonget ingested)
echo "smoke: ingested $INGESTED records"
[ "$INGESTED" -gt 0 ] || { echo "smoke: nothing ingested"; exit 1; }

SCANS0=$(curl -fsS "$BASE/healthz" | jsonget scans)

curl -fsS "$BASE/v1/population?scale=national" >"$WORK/pop1.json"
POP_USERS=$(jsonget twitter_users <"$WORK/pop1.json" | python3 -c 'import ast,sys; print(sum(ast.literal_eval(sys.stdin.read())))')
POP_CACHED=$(jsonget cached <"$WORK/pop1.json")
echo "smoke: population users=$POP_USERS cached=$POP_CACHED"
python3 -c "import sys; sys.exit(0 if float('$POP_USERS') > 0 else 1)" || { echo "smoke: empty population"; exit 1; }
[ "$POP_CACHED" = "False" ] || { echo "smoke: first population query claimed cached"; exit 1; }

curl -fsS "$BASE/v1/flows?scale=national" >"$WORK/flows1.json"
FLOW_TOTAL=$(jsonget total <"$WORK/flows1.json")
echo "smoke: flows total=$FLOW_TOTAL"
python3 -c "import sys; sys.exit(0 if float('$FLOW_TOTAL') > 0 else 1)" || { echo "smoke: empty flows"; exit 1; }

# Repeat queries: cached, and the store was never rescanned — not by the
# first queries (the bucket fold answered) nor by the repeats.
[ "$(curl -fsS "$BASE/v1/population?scale=national" | jsonget cached)" = "True" ] || { echo "smoke: repeat population not cached"; exit 1; }
[ "$(curl -fsS "$BASE/v1/flows?scale=national" | jsonget cached)" = "True" ] || { echo "smoke: repeat flows not cached"; exit 1; }
SCANS1=$(curl -fsS "$BASE/healthz" | jsonget scans)
[ "$SCANS0" = "$SCANS1" ] || { echo "smoke: /v1 queries scanned the store ($SCANS0 -> $SCANS1)"; exit 1; }

# /metrics moved with the traffic: the ingest counter advanced by the
# batch, the query latency histogram has per-endpoint buckets, and the
# cached repeats registered as cache hits (DESIGN.md §12).
curl -fsS "$BASE/metrics" >"$WORK/metrics-after.txt"
ING_M0=$(mval "$WORK/metrics-before.txt" geomob_ingest_records_total)
ING_M1=$(mval "$WORK/metrics-after.txt" geomob_ingest_records_total)
[ "$((ING_M1 - ING_M0))" -ge "$INGESTED" ] \
  || { echo "smoke: geomob_ingest_records_total moved $ING_M0 -> $ING_M1, want +$INGESTED"; exit 1; }
grep -q 'geomob_query_duration_seconds_bucket{endpoint="/v1/population"' "$WORK/metrics-after.txt" \
  || { echo "smoke: no query duration buckets for /v1/population"; exit 1; }
HITS0=$(mval "$WORK/metrics-before.txt" geomob_cache_hits_total)
HITS1=$(mval "$WORK/metrics-after.txt" geomob_cache_hits_total)
[ "$HITS1" -gt "$HITS0" ] \
  || { echo "smoke: geomob_cache_hits_total did not move ($HITS0 -> $HITS1)"; exit 1; }
echo "smoke: metrics moved (ingest +$((ING_M1 - ING_M0)), cache hits $HITS0 -> $HITS1)"

# ?explain=1 carries the introspection block and is observably
# side-effect-free: the explain'd response minus the block matches a
# plain serving, plain responses before and after it are byte-identical,
# and the store is never scanned (DESIGN.md §13).
strip_explain() { python3 -c 'import json,sys
d=json.load(sys.stdin); d.pop("cached",None); d.pop("explain",None)
json.dump(d,sys.stdout,indent=2,sort_keys=True)'; }

SCANS_E0=$(curl -fsS "$BASE/healthz" | jsonget scans)
curl -fsS "$BASE/v1/population?scale=national" >"$WORK/pop-plain1.raw"
curl -fsS "$BASE/v1/population?scale=national&explain=1" >"$WORK/pop-explain.json"
curl -fsS "$BASE/v1/population?scale=national" >"$WORK/pop-plain2.raw"

COV_BUCKETS=$(jsonget explain.coverage.buckets <"$WORK/pop-explain.json")
echo "smoke: explain coverage buckets=$COV_BUCKETS"
[ "$COV_BUCKETS" -gt 0 ] || { echo "smoke: explain reports no bucket coverage"; exit 1; }
[ "$(jsonget explain.cache.hit <"$WORK/pop-explain.json")" = "True" ] \
  || { echo "smoke: explain'd warm repeat not a cache hit"; exit 1; }
TID=$(jsonget explain.trace_id <"$WORK/pop-explain.json")
[ -n "$TID" ] || { echo "smoke: explain lacks trace_id"; exit 1; }

cmp -s "$WORK/pop-plain1.raw" "$WORK/pop-plain2.raw" \
  || { echo "smoke: plain response changed across an explain'd request"; exit 1; }
strip_cached <"$WORK/pop-plain1.raw" >"$WORK/pop-plain-stripped.json"
strip_explain <"$WORK/pop-explain.json" >"$WORK/pop-explain-stripped.json"
if ! cmp -s "$WORK/pop-plain-stripped.json" "$WORK/pop-explain-stripped.json"; then
  echo "smoke: explain'd result diverges from the plain result:"
  diff "$WORK/pop-plain-stripped.json" "$WORK/pop-explain-stripped.json" || true
  exit 1
fi
SCANS_E1=$(curl -fsS "$BASE/healthz" | jsonget scans)
[ "$SCANS_E0" = "$SCANS_E1" ] || { echo "smoke: explain scanned the store ($SCANS_E0 -> $SCANS_E1)"; exit 1; }

# The trace ID explain reported resolves in the retained trace store —
# the README's slow-query walkthrough end to end.
[ "$(curl -fsS "$BASE/debug/traces/$TID" | jsonget endpoint)" = "/v1/population" ] \
  || { echo "smoke: explain trace_id $TID not retained in /debug/traces"; exit 1; }
echo "smoke: explain OK (side-effect-free, coverage=$COV_BUCKETS buckets, trace $TID retained)"

if [ "$RESTART" = 0 ]; then
  echo "smoke: OK (cached repeats, zero scans: $SCANS1)"
  exit 0
fi

# ---- restart mode: snapshot, SIGKILL, recover from the files alone ----
strip_cached <"$WORK/pop1.json" >"$WORK/pop-before.json"
strip_cached <"$WORK/flows1.json" >"$WORK/flows-before.json"
curl -fsS "$BASE/v1/stats" | strip_cached >"$WORK/stats-before.json"

SNAP_BUCKETS=$(curl -fsS -X POST "$BASE/v1/snapshot" | jsonget buckets)
echo "smoke: snapshot committed ($SNAP_BUCKETS buckets)"
[ "$SNAP_BUCKETS" -gt 0 ] || { echo "smoke: snapshot committed no buckets"; exit 1; }

kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
echo "smoke: server killed with SIGKILL"

start_server
wait_up

curl -fsS "$BASE/healthz" >"$WORK/health.json"
SCANS=$(jsonget scans <"$WORK/health.json")
RESTORED=$(jsonget recovery.restored <"$WORK/health.json")
RESCAN=$(jsonget recovery.full_rescan <"$WORK/health.json")
TAIL=$(jsonget recovery.tail_records <"$WORK/health.json")
echo "smoke: restart recovery restored=$RESTORED full_rescan=$RESCAN tail_records=$TAIL scans=$SCANS"
SNAP_B=$(jsonget snapshot.buckets <"$WORK/health.json")
SNAP_BYTES=$(jsonget snapshot.bytes <"$WORK/health.json")
SNAP_AGE=$(jsonget snapshot.age_seconds <"$WORK/health.json")
echo "smoke: healthz snapshot buckets=$SNAP_B bytes=$SNAP_BYTES age=${SNAP_AGE}s"
[ "$SNAP_B" -gt 0 ] && [ "$SNAP_BYTES" -gt 0 ] || { echo "smoke: healthz snapshot block empty"; exit 1; }
python3 -c "import sys; sys.exit(0 if float('$SNAP_AGE') >= 0 else 1)" || { echo "smoke: bad snapshot age"; exit 1; }
jsonget live.rollups <"$WORK/health.json" >/dev/null || { echo "smoke: healthz live block lacks rollup tiers"; exit 1; }
[ "$RESTORED" -gt 0 ] || { echo "smoke: restart restored no buckets"; exit 1; }
[ "$RESCAN" = "False" ] || { echo "smoke: restart fell back to a full rescan"; exit 1; }
[ "$TAIL" = "0" ] || { echo "smoke: restart replayed a tail after a covering snapshot"; exit 1; }
[ "$SCANS" = "0" ] || { echo "smoke: restart scanned the store $SCANS times, want 0"; exit 1; }

for pair in "v1/population?scale=national:pop" "v1/flows?scale=national:flows" "v1/stats:stats"; do
  ep=${pair%:*}; name=${pair#*:}
  curl -fsS "$BASE/$ep" | strip_cached >"$WORK/$name-after.json"
  if ! cmp -s "$WORK/$name-before.json" "$WORK/$name-after.json"; then
    echo "smoke: /$ep diverged across the crash restart:"
    diff "$WORK/$name-before.json" "$WORK/$name-after.json" || true
    exit 1
  fi
  echo "smoke: /$ep byte-identical across restart"
done

SCANS=$(curl -fsS "$BASE/healthz" | jsonget scans)
[ "$SCANS" = "0" ] || { echo "smoke: post-restart /v1 queries scanned the store"; exit 1; }

echo "smoke: restart OK (snapshot recovery, zero scans, identical answers)"
