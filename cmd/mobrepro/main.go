// mobrepro regenerates every table and figure of the paper from a fresh
// synthetic corpus, printing the results and writing all artefacts (text
// tables, CSV series, PNG density map) into an output directory.
//
// Usage:
//
//	mobrepro -users 50000 -out out/
//	mobrepro -users 473956 -out out-full/   # paper-scale corpus
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"os/signal"
	"syscall"
	"time"

	"geomob/internal/epidemic"
	"geomob/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mobrepro: ")

	var (
		users   = flag.Int("users", 50000, "number of synthetic users (paper: 473956)")
		seed1   = flag.Uint64("seed", 42, "first PCG seed")
		seed2   = flag.Uint64("seed2", 43, "second PCG seed")
		outDir  = flag.String("out", "out", "artefact output directory")
		quick   = flag.Bool("quick", false, "skip the slower ablations")
		workers = flag.Int("workers", 0, "study pipeline workers (0 = one per CPU)")
	)
	flag.Parse()

	// Ctrl-C / SIGTERM cancel the study pass mid-scan instead of letting
	// a paper-scale corpus run to completion unattended.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	started := time.Now()
	fmt.Printf("mobrepro: generating %d-user corpus (seed %d/%d) and running the study...\n", *users, *seed1, *seed2)
	env, err := experiments.DefaultEnvContext(ctx, *users, *seed1, *seed2, *outDir, *workers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mobrepro: corpus of %d tweets ready in %v\n\n", len(env.Tweets), time.Since(started).Round(time.Millisecond))

	section := func(name string, fn func() error) {
		fmt.Printf("--- %s\n", name)
		if err := fn(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Println()
	}

	section("Table I (dataset statistics)", func() error {
		tab, err := experiments.TableI(env)
		if err != nil {
			return err
		}
		return tab.WriteText(os.Stdout)
	})

	section("Figure 1 (tweet density map)", func() error {
		grid, err := experiments.Figure1(env)
		if err != nil {
			return err
		}
		fmt.Printf("density grid: %d tweets binned, non-zero cells span %.1f decades\n",
			int(grid.Total()), grid.DensityDecades())
		fmt.Printf("artefacts: %s/figure1.png, %s/figure1.txt\n", env.OutDir, env.OutDir)
		return nil
	})

	section("Figure 2a (tweets per user)", func() error {
		bins, fit, err := experiments.Figure2a(env)
		if err != nil {
			return err
		}
		fmt.Printf("log-binned PDF over %d bins; MLE power-law tail alpha = %.2f (KS %.3f, n=%d)\n",
			len(bins), fit.Alpha, fit.KS, fit.N)
		return nil
	})

	section("Figure 2b (waiting times)", func() error {
		bins, err := experiments.Figure2b(env)
		if err != nil {
			return err
		}
		var lo, hi float64
		for _, b := range bins {
			if b.Count > 0 {
				if lo == 0 {
					lo = b.Center
				}
				hi = b.Center
			}
		}
		fmt.Printf("waiting times span [%.0fs, %.0fs] — %.1f decades\n", lo, hi, dec(hi/lo))
		return nil
	})

	section("Figure 3a (population vs census, 3 scales)", func() error {
		tab, err := experiments.Figure3a(env)
		if err != nil {
			return err
		}
		return tab.WriteText(os.Stdout)
	})

	section("Figure 3b (metro radius sensitivity)", func() error {
		tab, err := experiments.Figure3b(env)
		if err != nil {
			return err
		}
		return tab.WriteText(os.Stdout)
	})

	section("Figure 4 + Table II (model comparison)", func() error {
		if _, err := experiments.Figure4(env); err != nil {
			return err
		}
		tab, err := experiments.TableII(env)
		if err != nil {
			return err
		}
		if err := tab.WriteText(os.Stdout); err != nil {
			return err
		}
		if err := experiments.TableIIShapeCheck(env); err != nil {
			fmt.Printf("WARNING: qualitative shape violated: %v\n", err)
		} else {
			fmt.Println("qualitative shape check passed: gravity dominates radiation, Gravity 2Param best overall")
		}
		return nil
	})

	section("Extension — displacement distribution", func() error {
		bins, err := experiments.FigureDisplacement(env)
		if err != nil {
			return err
		}
		var local, long int
		for _, b := range bins {
			if b.Center < 10 {
				local += b.Count
			}
			if b.Center > 500 {
				long += b.Count
			}
		}
		fmt.Printf("displacements: %d local (<10 km), %d inter-city (>500 km) over %d bins\n",
			local, long, len(bins))
		return nil
	})

	section("Extension — Table II with CPC and intervening opportunities", func() error {
		tab, err := experiments.TableIIExtended(env)
		if err != nil {
			return err
		}
		return tab.WriteText(os.Stdout)
	})

	section("Extension — bootstrap CI on the pooled correlation", func() error {
		ci, err := experiments.PooledCorrelationCI(env, 0.95, 2000)
		if err != nil {
			return err
		}
		fmt.Printf("pooled log-Pearson r = %.3f, 95%% bootstrap CI [%.3f, %.3f]\n", ci.Point, ci.Lo, ci.Hi)
		return nil
	})

	section("Extension E1 (epidemic over Twitter mobility)", func() error {
		tab, _, err := experiments.Epidemic(env, epidemic.DefaultParams(), "Sydney")
		if err != nil {
			return err
		}
		return tab.WriteText(os.Stdout)
	})

	section("Extension E1b (stochastic outbreak ensemble)", func() error {
		tab, err := experiments.EpidemicStochastic(env, 50, 3)
		if err != nil {
			return err
		}
		return tab.WriteText(os.Stdout)
	})

	if !*quick {
		section("Ablation A1 (metro search-radius sweep)", func() error {
			tab, err := experiments.AblationRadius(env, nil)
			if err != nil {
				return err
			}
			return tab.WriteText(os.Stdout)
		})
		section("Ablation A2 (sample-size sensitivity)", func() error {
			tab, err := experiments.AblationSampleSize(env, nil)
			if err != nil {
				return err
			}
			return tab.WriteText(os.Stdout)
		})
		section("Ablation A3 (gravity exponent recovery)", func() error {
			tab, err := experiments.AblationGamma(env, nil, 0)
			if err != nil {
				return err
			}
			return tab.WriteText(os.Stdout)
		})
	}

	fmt.Printf("mobrepro: done in %v; artefacts in %s/\n", time.Since(started).Round(time.Millisecond), *outDir)
}

// dec returns log10 of a ratio, guarding non-positive input.
func dec(r float64) float64 {
	if r <= 0 {
		return 0
	}
	return math.Log10(r)
}
