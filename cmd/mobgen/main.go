// mobgen generates a synthetic geo-tagged tweet corpus — the stand-in for
// the paper's 6.3M-tweet collection — and writes it into a tweetdb store
// directory or to stdout as NDJSON or binary batch frames (the compact
// wire format POST /v1/ingest accepts with Content-Type
// application/x-geomob-batch).
//
// Usage:
//
//	mobgen -users 50000 -seed 42 -db /tmp/tweets.db
//	mobgen -users 1000 -ndjson > tweets.ndjson
//	mobgen -users 1000 -format binary > tweets.gmb
//	mobgen -users 473956 -db full.db        # paper-scale corpus
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"geomob/internal/synth"
	"geomob/internal/tweet"
	"geomob/internal/tweetdb"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mobgen: ")

	var (
		users  = flag.Int("users", 50000, "number of synthetic users (paper: 473956)")
		seed1  = flag.Uint64("seed", 42, "first PCG seed")
		seed2  = flag.Uint64("seed2", 43, "second PCG seed")
		dbDir  = flag.String("db", "", "write into a tweetdb store at this directory")
		ndjson = flag.Bool("ndjson", false, "write NDJSON to stdout")
		format = flag.String("format", "", "stdout wire format: ndjson or binary (batch frames)")
		gamma  = flag.Float64("gamma", 2.0, "planted gravity distance exponent")
	)
	flag.Parse()

	if *ndjson && *format == "" {
		*format = "ndjson"
	}
	switch *format {
	case "", "ndjson", "binary":
	default:
		log.Fatalf("unknown -format %q (want ndjson or binary)", *format)
	}
	if *dbDir == "" && *format == "" {
		log.Fatal("choose an output: -db DIR, -ndjson or -format binary")
	}
	cfg := synth.DefaultConfig(*users, *seed1, *seed2)
	cfg.Gamma = *gamma
	gen, err := synth.NewGenerator(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Coordinates are emitted on the storage codec's microdegree grid
	// (~0.11 m, the precision real geo-tagged feeds carry anyway), so a
	// corpus round-trips every store in the pipeline bit-identically —
	// a service that rebuilds its in-memory state from segments after a
	// crash answers exactly what it answered before.
	quantised := func(emit func(tweet.Tweet) error) func(tweet.Tweet) error {
		return func(t tweet.Tweet) error {
			t.Lat = tweet.DegreesFromMicro(tweet.Microdegrees(t.Lat))
			t.Lon = tweet.DegreesFromMicro(tweet.Microdegrees(t.Lon))
			return emit(t)
		}
	}

	switch {
	case *format == "ndjson":
		w := tweet.NewNDJSONWriter(os.Stdout)
		n, err := gen.Generate(quantised(w.Write))
		if err != nil {
			log.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "mobgen: wrote %d tweets as NDJSON\n", n)
	case *format == "binary":
		// Frames of 8192 records: large enough to amortise the frame
		// header, small enough that an ingesting service never buffers
		// more than a few MB per frame.
		const frameRecords = 8192
		w := tweet.NewBatchWriter(os.Stdout)
		b := &tweet.Batch{}
		b.Grow(frameRecords)
		n, err := gen.Generate(quantised(func(t tweet.Tweet) error {
			b.Append(t)
			if b.Len() >= frameRecords {
				if err := w.Write(b); err != nil {
					return err
				}
				b.Reset()
			}
			return nil
		}))
		if err != nil {
			log.Fatal(err)
		}
		if b.Len() > 0 {
			if err := w.Write(b); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Fprintf(os.Stderr, "mobgen: wrote %d tweets as binary batch frames\n", n)
	default:
		store, err := tweetdb.Open(*dbDir)
		if err != nil {
			log.Fatal(err)
		}
		// The generator emits in (user, time) order so segments stay
		// internally sorted; the final compaction establishes the global
		// order the analysis pipeline requires.
		app, err := tweetdb.NewAppender(store, 200_000)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := gen.Generate(app.Add); err != nil {
			log.Fatal(err)
		}
		if err := app.Close(); err != nil {
			log.Fatal(err)
		}
		if err := store.Compact(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("mobgen: stored %d tweets in %s (%d segments)\n",
			app.Total(), *dbDir, len(store.Segments()))
	}
}
