// mobgen generates a synthetic geo-tagged tweet corpus — the stand-in for
// the paper's 6.3M-tweet collection — and writes it either into a tweetdb
// store directory or to NDJSON on stdout.
//
// Usage:
//
//	mobgen -users 50000 -seed 42 -db /tmp/tweets.db
//	mobgen -users 1000 -ndjson > tweets.ndjson
//	mobgen -users 473956 -db full.db        # paper-scale corpus
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"geomob/internal/synth"
	"geomob/internal/tweet"
	"geomob/internal/tweetdb"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mobgen: ")

	var (
		users  = flag.Int("users", 50000, "number of synthetic users (paper: 473956)")
		seed1  = flag.Uint64("seed", 42, "first PCG seed")
		seed2  = flag.Uint64("seed2", 43, "second PCG seed")
		dbDir  = flag.String("db", "", "write into a tweetdb store at this directory")
		ndjson = flag.Bool("ndjson", false, "write NDJSON to stdout")
		gamma  = flag.Float64("gamma", 2.0, "planted gravity distance exponent")
	)
	flag.Parse()

	if *dbDir == "" && !*ndjson {
		log.Fatal("choose an output: -db DIR or -ndjson")
	}
	cfg := synth.DefaultConfig(*users, *seed1, *seed2)
	cfg.Gamma = *gamma
	gen, err := synth.NewGenerator(cfg)
	if err != nil {
		log.Fatal(err)
	}

	switch {
	case *ndjson:
		w := tweet.NewNDJSONWriter(os.Stdout)
		n, err := gen.Generate(w.Write)
		if err != nil {
			log.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "mobgen: wrote %d tweets as NDJSON\n", n)
	default:
		store, err := tweetdb.Open(*dbDir)
		if err != nil {
			log.Fatal(err)
		}
		// The generator emits in (user, time) order so segments stay
		// internally sorted; the final compaction establishes the global
		// order the analysis pipeline requires.
		app, err := tweetdb.NewAppender(store, 200_000)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := gen.Generate(app.Add); err != nil {
			log.Fatal(err)
		}
		if err := app.Close(); err != nil {
			log.Fatal(err)
		}
		if err := store.Compact(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("mobgen: stored %d tweets in %s (%d segments)\n",
			app.Total(), *dbDir, len(store.Segments()))
	}
}
