package main

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"net/http"
	"testing"

	"geomob/internal/synth"
	"geomob/internal/tweet"
)

// corpusBinary renders tweets as binary batch frames, several records per
// frame so a body holds multiple frames.
func corpusBinary(t *testing.T, tweets []tweet.Tweet, frameRecords int) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	w := tweet.NewBatchWriter(&buf)
	b := &tweet.Batch{}
	for _, tw := range tweets {
		b.Append(tw)
		if b.Len() >= frameRecords {
			if err := w.Write(b); err != nil {
				t.Fatal(err)
			}
			b.Reset()
		}
	}
	if b.Len() > 0 {
		if err := w.Write(b); err != nil {
			t.Fatal(err)
		}
	}
	return &buf
}

// postBinary POSTs a binary batch body to the ingest endpoint and returns
// the status code and decoded JSON body (nil when not JSON).
func postBinary(t *testing.T, url string, body *bytes.Buffer) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url+"/v1/ingest", tweet.BatchContentType, body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return resp.StatusCode, out
}

// TestBinaryIngestEndToEnd: the binary content type lands records in the
// store and ring exactly like NDJSON, in single-node and cluster modes.
func TestBinaryIngestEndToEnd(t *testing.T) {
	gen, err := synth.NewGenerator(synth.DefaultConfig(300, 21, 22))
	if err != nil {
		t.Fatal(err)
	}
	tweets, err := gen.GenerateAll()
	if err != nil {
		t.Fatal(err)
	}

	s, ts := newLiveTestServer(t)
	status, body := postBinary(t, ts.URL, corpusBinary(t, tweets, 1000))
	if status != http.StatusOK || int(body["ingested"].(float64)) != len(tweets) {
		t.Fatalf("binary ingest: status %d body %v", status, body)
	}
	if got := s.store.Count(); got != int64(len(tweets)) {
		t.Fatalf("store holds %d records, want %d", got, len(tweets))
	}
	if got := s.agg.Ingested(); got != int64(len(tweets)) {
		t.Fatalf("ring ingested %d records, want %d", got, len(tweets))
	}

	_, tsc, locals := newClusterTestServer(t, 3)
	status, body = postBinary(t, tsc.URL, corpusBinary(t, tweets, 1000))
	if status != http.StatusAccepted || int(body["ingested"].(float64)) != len(tweets) {
		t.Fatalf("cluster binary ingest: status %d body %v, want 202", status, body)
	}
	var stored int64
	for _, l := range locals {
		stored += l.Store().Count()
	}
	if stored != int64(len(tweets)) {
		t.Fatalf("partition stores hold %d records, want %d", stored, len(tweets))
	}
}

// TestBinaryIngestBodyLimit: binary bodies over -max-ingest-bytes answer
// 413 like NDJSON ones, in both modes, without disturbing the server.
func TestBinaryIngestBodyLimit(t *testing.T) {
	gen, err := synth.NewGenerator(synth.DefaultConfig(200, 23, 24))
	if err != nil {
		t.Fatal(err)
	}
	tweets, err := gen.GenerateAll()
	if err != nil {
		t.Fatal(err)
	}

	s, ts := newLiveTestServer(t)
	s.maxIngestBytes = 512
	status, _ := postBinary(t, ts.URL, corpusBinary(t, tweets, 1000))
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized binary body: status %d, want 413", status)
	}
	// A within-bound frame still works on the same server.
	status, body := postBinary(t, ts.URL, corpusBinary(t, tweets[:3], 8))
	if status != http.StatusOK || int(body["ingested"].(float64)) != 3 {
		t.Fatalf("within-bound binary ingest: status %d body %v", status, body)
	}

	sc, tsc, _ := newClusterTestServer(t, 2)
	sc.maxIngestBytes = 512
	status, _ = postBinary(t, tsc.URL, corpusBinary(t, tweets, 1000))
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("cluster oversized binary body: status %d, want 413", status)
	}
}

// TestBinaryIngestCorruptFrames: structural corruption answers 400, and a
// length prefix promising more than the ingest bound answers 413 before
// any buffering — the ErrFrameTooLarge sentinel survives the status
// mapping even though the body itself is tiny.
func TestBinaryIngestCorruptFrames(t *testing.T) {
	s, ts := newLiveTestServer(t)
	s.maxIngestBytes = 1 << 16

	valid := corpusBinary(t, []tweet.Tweet{{ID: 1, UserID: 1, TS: 5, Lat: -33.8, Lon: 151.2}}, 8)

	// A length prefix below the fixed frame header is corrupt: 400.
	short := append([]byte(nil), valid.Bytes()...)
	binary.LittleEndian.PutUint32(short[:4], 10)
	status, _ := postBinary(t, ts.URL, bytes.NewBuffer(short))
	if status != http.StatusBadRequest {
		t.Fatalf("corrupt length prefix: status %d, want 400", status)
	}

	// Bad magic: 400.
	badMagic := append([]byte(nil), valid.Bytes()...)
	binary.LittleEndian.PutUint32(badMagic[4:8], 0xdeadbeef)
	status, _ = postBinary(t, ts.URL, bytes.NewBuffer(badMagic))
	if status != http.StatusBadRequest {
		t.Fatalf("bad frame magic: status %d, want 400", status)
	}

	// A flipped payload byte trips the column CRC: 400.
	crc := append([]byte(nil), valid.Bytes()...)
	crc[24] ^= 0xff
	status, _ = postBinary(t, ts.URL, bytes.NewBuffer(crc))
	if status != http.StatusBadRequest {
		t.Fatalf("column CRC corruption: status %d, want 400", status)
	}

	// A length prefix promising a frame beyond the ingest bound: 413.
	huge := append([]byte(nil), valid.Bytes()...)
	binary.LittleEndian.PutUint32(huge[:4], 1<<30)
	status, _ = postBinary(t, ts.URL, bytes.NewBuffer(huge))
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized frame prefix: status %d, want 413", status)
	}

	// An invalid record inside a structurally sound frame: 400.
	bad := &tweet.Batch{}
	bad.Append(tweet.Tweet{ID: 1, UserID: 1, TS: 1, Lat: 999, Lon: 0})
	frame, err := tweet.AppendFrame(nil, bad)
	if err != nil {
		t.Fatal(err)
	}
	status, _ = postBinary(t, ts.URL, bytes.NewBuffer(frame))
	if status != http.StatusBadRequest {
		t.Fatalf("invalid record in frame: status %d, want 400", status)
	}

	// The server is still healthy and ingests a valid body afterwards.
	status, body := postBinary(t, ts.URL, corpusBinary(t, []tweet.Tweet{{ID: 2, UserID: 1, TS: 6, Lat: -33.8, Lon: 151.2}}, 8))
	if status != http.StatusOK || int(body["ingested"].(float64)) != 1 {
		t.Fatalf("post-error ingest: status %d body %v", status, body)
	}
}
