// mobserve exposes a tweetdb store over HTTP: corpus statistics, windowed
// queries, density tiles and on-demand flow matrices. It demonstrates the
// "responsive prediction" deployment the paper motivates — an always-on
// service answering population and mobility queries from a live store.
//
// Usage:
//
//	mobserve -db /tmp/tweets.db -addr :8080
//
// Endpoints:
//
//	GET /stats                         store-level statistics
//	GET /tweets?user=ID&limit=N        tweets of one user
//	GET /tweets?from=RFC3339&to=...    tweets in a time window
//	GET /density.png?nx=360&ny=280     tweet density heat map
//	GET /flows?scale=national          OD flow matrix at a scale
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"runtime"
	"strconv"
	"time"

	"geomob/internal/census"
	"geomob/internal/core"
	"geomob/internal/geo"
	"geomob/internal/heatmap"
	"geomob/internal/mobility"
	"geomob/internal/tweet"
	"geomob/internal/tweetdb"
)

type server struct {
	store *tweetdb.Store
	// workers is the parallelism of scan-heavy handlers (/flows); zero
	// means one worker per CPU.
	workers int
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("mobserve: ")

	var (
		dbDir   = flag.String("db", "", "tweetdb store directory (required)")
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", 0, "parallel segment scan workers (0 = one per CPU)")
	)
	flag.Parse()
	if *dbDir == "" {
		log.Fatal("-db is required")
	}
	store, err := tweetdb.Open(*dbDir)
	if err != nil {
		log.Fatal(err)
	}
	s := &server{store: store, workers: *workers}

	mux := http.NewServeMux()
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /tweets", s.handleTweets)
	mux.HandleFunc("GET /density.png", s.handleDensity)
	mux.HandleFunc("GET /flows", s.handleFlows)

	log.Printf("serving %s on %s", *dbDir, *addr)
	srv := &http.Server{
		Addr:         *addr,
		Handler:      mux,
		ReadTimeout:  10 * time.Second,
		WriteTimeout: 120 * time.Second,
	}
	log.Fatal(srv.ListenAndServe())
}

// scanWorkers resolves the configured scan parallelism.
func (s *server) scanWorkers() int {
	if s.workers > 0 {
		return s.workers
	}
	return runtime.GOMAXPROCS(0)
}

// writeJSON writes v with the proper content type.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("encode response: %v", err)
	}
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	http.Error(w, fmt.Sprintf(format, args...), code)
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	segs := s.store.Segments()
	var bytes int64
	box := geo.EmptyBBox()
	minTS, maxTS := int64(0), int64(0)
	for _, seg := range segs {
		bytes += seg.Bytes
		box = box.Union(seg.BBox())
		if minTS == 0 || seg.MinTS < minTS {
			minTS = seg.MinTS
		}
		if seg.MaxTS > maxTS {
			maxTS = seg.MaxTS
		}
	}
	writeJSON(w, map[string]any{
		"tweets":   s.store.Count(),
		"segments": len(segs),
		"bytes":    bytes,
		"bbox":     box,
		"first":    time.UnixMilli(minTS).UTC(),
		"last":     time.UnixMilli(maxTS).UTC(),
		"workers":  s.scanWorkers(),
	})
}

func (s *server) handleTweets(w http.ResponseWriter, r *http.Request) {
	q := tweetdb.Query{}
	if v := r.URL.Query().Get("user"); v != "" {
		uid, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad user id %q", v)
			return
		}
		q.UserID = &uid
	}
	if v := r.URL.Query().Get("from"); v != "" {
		t, err := time.Parse(time.RFC3339, v)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad from time %q", v)
			return
		}
		q.FromTS = t.UnixMilli()
	}
	if v := r.URL.Query().Get("to"); v != "" {
		t, err := time.Parse(time.RFC3339, v)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad to time %q", v)
			return
		}
		q.ToTS = t.UnixMilli()
	}
	limit := 1000
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			httpError(w, http.StatusBadRequest, "bad limit %q", v)
			return
		}
		limit = n
	}
	it := s.store.Scan(q)
	var out []tweet.Tweet
	for len(out) < limit {
		t, ok := it.Next()
		if !ok {
			break
		}
		out = append(out, t)
	}
	if err := it.Err(); err != nil {
		httpError(w, http.StatusInternalServerError, "scan: %v", err)
		return
	}
	writeJSON(w, out)
}

func (s *server) handleDensity(w http.ResponseWriter, r *http.Request) {
	nx, ny := 360, 280
	if v := r.URL.Query().Get("nx"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 && n <= 2000 {
			nx = n
		}
	}
	if v := r.URL.Query().Get("ny"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 && n <= 2000 {
			ny = n
		}
	}
	grid, err := heatmap.NewGrid(geo.AustraliaBBox, nx, ny)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "grid: %v", err)
		return
	}
	it := s.store.Scan(tweetdb.Query{})
	for {
		t, ok := it.Next()
		if !ok {
			break
		}
		grid.Add(t.Point())
	}
	if err := it.Err(); err != nil {
		httpError(w, http.StatusInternalServerError, "scan: %v", err)
		return
	}
	w.Header().Set("Content-Type", "image/png")
	if err := grid.WritePNG(w); err != nil {
		log.Printf("density render: %v", err)
	}
}

func (s *server) handleFlows(w http.ResponseWriter, r *http.Request) {
	var scale census.Scale
	switch r.URL.Query().Get("scale") {
	case "", "national":
		scale = census.ScaleNational
	case "state":
		scale = census.ScaleState
	case "metropolitan", "metro":
		scale = census.ScaleMetropolitan
	default:
		httpError(w, http.StatusBadRequest, "unknown scale %q", r.URL.Query().Get("scale"))
		return
	}
	rs, err := census.Australia().Regions(scale)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "regions: %v", err)
		return
	}
	mapper, err := mobility.NewAreaMapper(rs, 0)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "mapper: %v", err)
		return
	}
	src := core.StoreSource{Store: s.store}
	flows, err := core.ExtractFlows(src, mapper, s.scanWorkers())
	if err != nil {
		httpError(w, http.StatusInternalServerError, "extract: %v (store compacted?)", err)
		return
	}
	names := make([]string, len(flows.Areas))
	for i, a := range flows.Areas {
		names[i] = a.Name
	}
	writeJSON(w, map[string]any{
		"scale":  scale.String(),
		"areas":  names,
		"flows":  flows.Flows,
		"total":  flows.Total(),
		"radius": mapper.Radius(),
	})
}
