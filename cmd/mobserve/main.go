// mobserve exposes a tweetdb store over HTTP: corpus statistics, windowed
// queries, density tiles, a versioned analysis API over the Study
// pipeline and a streaming NDJSON ingest endpoint. It demonstrates the
// near-real-time deployment the paper motivates — an always-on service
// absorbing a continuous tweet feed and answering population and
// mobility queries from materialised time buckets (DESIGN.md §7), from
// cached snapshots whenever their bucket coverage has not changed.
//
// Usage:
//
//	mobserve -db /tmp/tweets.db -addr :8080 -live -bucket 1h
//
// Endpoints:
//
//	GET  /healthz                      liveness, generation, scan + cache counters
//	GET  /stats                        store-level statistics (segment metadata)
//	GET  /tweets?user=ID&limit=N       tweets of one user
//	GET  /tweets?from=RFC3339&to=...   tweets in a time window
//	GET  /density.png?nx=360&ny=280    tweet density heat map
//	GET  /flows?scale=national         OD flow matrix at a scale (uncached)
//	POST /v1/ingest                    NDJSON tweet batch: appended to the
//	                                   store and routed into the bucket ring
//	                                   (202 in cluster mode: acknowledged
//	                                   once durably spooled, delivered to
//	                                   the replicas asynchronously)
//	POST /v1/snapshot                  force one durable snapshot commit
//	                                   (-snapshot-dir modes only)
//
// With -snapshot-dir, sealed bucket partials persist to per-bucket
// checksummed files (DESIGN.md §11): a restart restores intact buckets
// and replays only the store tail instead of rescanning, SIGTERM drains
// and flushes a final snapshot so a graceful restart replays nothing,
// and -snapshot-interval bounds what a crash can cost.
//
// Versioned analysis API (request-scoped Study executions, snapshot-cached;
// `from`/`to` are RFC3339, `radius` is metres):
//
//	GET /v1/stats?from=&to=                     Table I dataset statistics
//	GET /v1/population?scale=&from=&to=&radius= §III population estimate
//	GET /v1/models?scale=&from=&to=&radius=     §IV model comparison
//	GET /v1/flows?scale=&from=&to=&radius=      OD flow extraction
//
// With -live, /v1 answers fold precomputed bucket partials — an append
// invalidates only the cached results whose window covers the buckets it
// landed in, and repeat queries over unchanged coverage do zero segment
// scans. Without -live, snapshots are keyed on the store generation as
// before (any append invalidates; the store must be compacted).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"net"
	"net/http"
	"os/signal"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"geomob/internal/census"
	"geomob/internal/cluster"
	"geomob/internal/core"
	"geomob/internal/geo"
	"geomob/internal/heatmap"
	"geomob/internal/live"
	"geomob/internal/mobility"
	"geomob/internal/obs"
	"geomob/internal/svcache"
	"geomob/internal/tweet"
	"geomob/internal/tweetdb"
)

type server struct {
	store *tweetdb.Store
	// workers is the parallelism of scan-heavy handlers (/flows, /v1/*);
	// zero means one worker per CPU.
	workers int
	// cache memoises completed /v1 executions per store generation.
	cache *svcache.Cache
	// baseCtx bounds snapshot computations to the server's lifetime, not
	// to any single request: a computation may have several requests
	// waiting on it, so the first requester's disconnect must not abort
	// (and error out) everyone else's answer. Shutdown cancels it.
	baseCtx context.Context
	// agg is the live bucket ring (-live); nil keeps the classic
	// generation-keyed full-rescan path. ing is the streaming write path
	// behind POST /v1/ingest (always on; routes into agg when present).
	agg *live.Aggregator
	ing *live.Ingestor

	// snaps is the ring's durable snapshot store (-snapshot-dir in live
	// mode); recovery records what boot recovery actually did — restored
	// vs backfilled buckets, tail replay size — for /healthz. In
	// partition mode localShards holds the in-process shards instead,
	// each owning its per-slot snapshot stores.
	snaps       *live.SnapshotStore
	recovery    live.RecoveryStats
	localShards []*cluster.LocalShard

	// traces retains recent completed request traces (slow and error
	// traces with priority) for GET /debug/traces (DESIGN.md §13).
	traces *obs.TraceStore

	// coord replaces the local execution paths entirely in cluster mode
	// (-cluster-coordinator, -partitions): /v1 queries scatter-gather
	// across the shards and /v1/ingest routes by user hash.
	coord *cluster.Coordinator

	// maxIngestBytes bounds POST /v1/ingest request bodies; oversized
	// uploads (and overlong NDJSON lines) answer 413 instead of buffering
	// without bound.
	maxIngestBytes int64

	// mappers caches the default-radius area mapper per scale: the
	// gazetteer is immutable, so the grid resolver behind a mapper is
	// built once per process instead of once per /flows request.
	mapperMu sync.Mutex
	mappers  map[census.Scale]*mobility.AreaMapper

	// obsReg holds this instance's state gauges (store size, ring and
	// snapshot state, cache stats). /metrics renders it after the
	// process-global obs.Def, and /healthz assembles its numbers from one
	// coherent Snapshot() of it.
	obsReg *obs.Registry
	// slowQuery logs any traced query slower than this with its trace ID
	// and per-stage breakdown (-slow-query); zero disables.
	slowQuery time.Duration
}

func newServer(store *tweetdb.Store, workers int) *server {
	return &server{
		store:          store,
		workers:        workers,
		cache:          svcache.New(0),
		baseCtx:        context.Background(),
		mappers:        map[census.Scale]*mobility.AreaMapper{},
		maxIngestBytes: cluster.DefaultMaxBodyBytes,
		obsReg:         obs.NewRegistry(),
		traces:         obs.NewTraceStore(0),
	}
}

// enableLive builds the bucket ring and backfills it from the store —
// one scan at boot, then never again: every later record arrives through
// /v1/ingest and is resolved exactly once on its way in.
func (s *server) enableLive(width time.Duration) error {
	return s.enableLiveSnap(width, "")
}

// enableLiveSnap is enableLive with a durable snapshot directory: boot
// restores every intact snapshotted bucket and replays only the store
// tail (segments appended after the last commit), degrading per bucket
// to a windowed cold backfill on any missing or corrupt file — the fast
// restart path of DESIGN.md §11. An empty dir keeps the classic full
// scan.
func (s *server) enableLiveSnap(width time.Duration, snapDir string) error {
	agg, err := live.NewAggregator(live.Options{BucketWidth: width})
	if err != nil {
		return err
	}
	if snapDir == "" {
		if _, err := live.Backfill(agg, s.store); err != nil {
			return err
		}
	} else {
		snaps, err := live.OpenSnapshotStore(snapDir)
		if err != nil {
			return err
		}
		rec, err := live.Recover(agg, s.store, snaps, live.RecoverOpts{})
		if err != nil {
			return err
		}
		s.snaps = snaps
		s.recovery = rec
	}
	s.agg = agg
	return nil
}

// snapshotNow commits one durable snapshot of everything this process
// owns — the single-node ring through the ingest lock, or every
// in-process partition shard — and sums the stats. It backs the
// periodic loop, the shutdown flush and POST /v1/snapshot.
func (s *server) snapshotNow() (live.SnapshotStats, error) {
	if len(s.localShards) > 0 {
		var sum live.SnapshotStats
		for _, sh := range s.localShards {
			st, err := sh.Snapshot()
			if err != nil {
				return sum, err
			}
			sum.Buckets += st.Buckets
			sum.Bytes += st.Bytes
			sum.Written += st.Written
			if st.LastUnixMs > sum.LastUnixMs {
				sum.LastUnixMs = st.LastUnixMs
			}
		}
		return sum, nil
	}
	if s.snaps == nil || s.ing == nil {
		return live.SnapshotStats{}, fmt.Errorf("snapshots are not enabled (-snapshot-dir)")
	}
	return s.ing.Snapshot(s.snaps)
}

// snapshotHandler serves POST /v1/snapshot for any mode: force one
// durable snapshot commit now and report its stats — the hook the
// restart smoke test (and an operator about to SIGKILL a node) uses to
// bound the replay a restart will pay.
func snapshotHandler(snap func() (live.SnapshotStats, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, _ *http.Request) {
		st, err := snap()
		if err != nil {
			httpError(w, http.StatusInternalServerError, "snapshot: %v", err)
			return
		}
		writeJSON(w, st)
	}
}

// initIngest wires the streaming write path (after enableLive, so flushed
// batches route into the ring).
func (s *server) initIngest() error {
	ing, err := live.NewIngestor(s.store, s.agg, 0)
	s.ing = ing
	return err
}

// scaleMapper returns the cached default-radius mapper for the scale,
// building it on first use.
func (s *server) scaleMapper(scale census.Scale) (*mobility.AreaMapper, error) {
	s.mapperMu.Lock()
	defer s.mapperMu.Unlock()
	if m, ok := s.mappers[scale]; ok {
		return m, nil
	}
	rs, err := census.Australia().Regions(scale)
	if err != nil {
		return nil, err
	}
	m, err := mobility.NewAreaMapper(rs, 0)
	if err != nil {
		return nil, err
	}
	s.mappers[scale] = m
	return m, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("mobserve: ")

	var (
		dbDir    = flag.String("db", "", "tweetdb store directory (required except with -cluster-coordinator)")
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 0, "parallel segment scan workers (0 = one per CPU)")
		drain    = flag.Duration("drain", 10*time.Second, "graceful shutdown drain timeout")
		liveMode = flag.Bool("live", false, "materialize time-bucketed aggregates; /v1 answers fold buckets instead of rescanning")
		bucket   = flag.Duration("bucket", time.Hour, "live aggregation bucket width (with -live, -cluster-shard and -partitions)")
		maxBody  = flag.Int64("max-ingest-bytes", cluster.DefaultMaxBodyBytes, "maximum POST /v1/ingest request body in bytes (oversized uploads answer 413)")

		shardMode = flag.Bool("cluster-shard", false, "serve the internal shard API (/shard/v1/*) over -db instead of the public endpoints")
		coordsTo  = flag.String("cluster-coordinator", "", "comma-separated shard node base URLs; serve /v1 by scatter-gather across them (no local -db)")
		partsN    = flag.Int("partitions", 0, "in-process user partitions under -db (implies live rings; per-partition ingest parallelism without the network hop)")
		replicas  = flag.Int("replication", 1, "copies of every user-range slot across the cluster (with -cluster-coordinator or -partitions)")
		walDir    = flag.String("wal-dir", "", "durable ingest spool directory: /v1/ingest acks only after the write-ahead append, and unacknowledged deliveries replay across coordinator restarts")

		snapDir   = flag.String("snapshot-dir", "", "durable bucket-partial snapshot directory (with -live, -cluster-shard or -partitions): restart restores intact buckets and replays only the store tail")
		snapEvery = flag.Duration("snapshot-interval", 0, "periodic snapshot commit interval (0 disables; needs -snapshot-dir); a final snapshot is always flushed on graceful drain")

		slowQuery   = flag.Duration("slow-query", 0, "log /v1 queries slower than this as one structured line with trace ID and per-stage timings (0 disables)")
		traceRetain = flag.Int("trace-retain", obs.DefaultTraceCapacity, "completed request traces retained for GET /debug/traces (slow and error traces kept preferentially)")
		pprofAddr   = flag.String("pprof-addr", "", "serve net/http/pprof on this extra address (empty disables)")
		showVersion = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()
	if *showVersion {
		b := obs.Build()
		rev := b.Revision
		if b.Modified {
			rev += "+dirty"
		}
		fmt.Printf("mobserve %s (revision %s, %s)\n", b.Version, rev, b.GoVersion)
		return
	}
	modes := 0
	for _, on := range []bool{*shardMode, *coordsTo != "", *partsN > 0} {
		if on {
			modes++
		}
	}
	if modes > 1 {
		log.Fatal("-cluster-shard, -cluster-coordinator and -partitions are mutually exclusive")
	}
	if coordMode := *coordsTo != "" || *partsN > 0; !coordMode {
		if *replicas != 1 {
			log.Fatal("-replication needs -cluster-coordinator or -partitions")
		}
		if *walDir != "" {
			log.Fatal("-wal-dir needs -cluster-coordinator or -partitions")
		}
	}
	if *snapEvery < 0 {
		log.Fatal("-snapshot-interval must be >= 0")
	}
	if *snapEvery > 0 && *snapDir == "" {
		log.Fatal("-snapshot-interval needs -snapshot-dir")
	}
	if *snapDir != "" {
		switch {
		case *coordsTo != "":
			log.Fatal("-snapshot-dir needs a local store; the remote shard nodes own their own snapshot dirs")
		case !*shardMode && *partsN == 0 && !*liveMode:
			log.Fatal("-snapshot-dir needs -live, -cluster-shard or -partitions (snapshots persist the bucket ring)")
		}
	}

	// SIGINT/SIGTERM cancel ctx; it is also the base context of every
	// request and of the snapshot computations, so in-flight store scans
	// abort instead of holding the drain hostage.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// snapFn, when set, is the mode's durable snapshot commit: the
	// periodic loop, POST /v1/snapshot and the final drain flush all run
	// through it.
	var snapFn func() (live.SnapshotStats, error)

	var handler http.Handler
	switch {
	case *shardMode:
		if *dbDir == "" {
			log.Fatal("-db is required")
		}
		store, err := tweetdb.Open(*dbDir)
		if err != nil {
			log.Fatal(err)
		}
		shard, err := cluster.NewLocalShardSnap(store, live.Options{BucketWidth: *bucket}, *snapDir)
		if err != nil {
			log.Fatal(err)
		}
		if *snapDir == "" {
			log.Printf("shard node: %d records backfilled into %d buckets of %v",
				shard.Ingested(), shard.Buckets(), *bucket)
		} else {
			rec := shard.Recovery()
			log.Printf("shard node: %d buckets restored, %d backfilled (full rescan: %v, tail %d records) into %d buckets of %v",
				rec.Restored, rec.Backfilled, rec.FullRescan, rec.TailRecords, shard.Buckets(), *bucket)
		}
		node := cluster.NewNode(shard, cluster.NodeOptions{MaxBodyBytes: *maxBody})
		obs.RegisterBuildMetrics(obs.Def)
		mux := http.NewServeMux()
		mux.Handle("/", node)
		mux.Handle("GET /metrics", obs.Handler(obs.Def))
		if *snapDir != "" {
			snapFn = shard.Snapshot
			mux.Handle("POST /v1/snapshot", snapshotHandler(snapFn))
		}
		handler = mux

	case *coordsTo != "", *partsN > 0:
		var shards []cluster.Shard
		var locals []*cluster.LocalShard
		if *coordsTo != "" {
			for _, base := range strings.Split(*coordsTo, ",") {
				base = strings.TrimSpace(base)
				if base == "" {
					continue
				}
				shards = append(shards, cluster.NewHTTPShard(base, nil))
			}
			if len(shards) == 0 {
				log.Fatal("-cluster-coordinator lists no shard URLs")
			}
			log.Printf("coordinator over %d remote shards", len(shards))
		} else {
			if *dbDir == "" {
				log.Fatal("-db is required")
			}
			for i := 0; i < *partsN; i++ {
				store, err := tweetdb.Open(filepath.Join(*dbDir, fmt.Sprintf("part-%03d", i)))
				if err != nil {
					log.Fatal(err)
				}
				partSnap := ""
				if *snapDir != "" {
					partSnap = filepath.Join(*snapDir, fmt.Sprintf("part-%03d", i))
				}
				shard, err := cluster.NewLocalShardSnap(store, live.Options{BucketWidth: *bucket}, partSnap)
				if err != nil {
					log.Fatal(err)
				}
				if *snapDir != "" {
					locals = append(locals, shard)
				}
				shards = append(shards, shard)
			}
			log.Printf("coordinator over %d in-process partitions under %s", *partsN, *dbDir)
		}
		coord, err := cluster.NewCoordinator(shards, cluster.CoordinatorOptions{
			Replication: *replicas,
			WALDir:      *walDir,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer coord.Close()
		s := newServer(nil, *workers)
		s.coord = coord
		s.maxIngestBytes = *maxBody
		s.baseCtx = ctx
		s.localShards = locals
		s.slowQuery = *slowQuery
		s.traces = obs.NewTraceStore(*traceRetain)
		if len(locals) > 0 {
			snapFn = s.snapshotNow
		}
		handler = s.clusterRoutes()

	default:
		if *dbDir == "" {
			log.Fatal("-db is required")
		}
		store, err := tweetdb.Open(*dbDir)
		if err != nil {
			log.Fatal(err)
		}
		s := newServer(store, *workers)
		s.maxIngestBytes = *maxBody
		s.slowQuery = *slowQuery
		s.traces = obs.NewTraceStore(*traceRetain)
		if *liveMode {
			if err := s.enableLiveSnap(*bucket, *snapDir); err != nil {
				log.Fatal(err)
			}
			if *snapDir == "" {
				log.Printf("live aggregation on: %d records backfilled into %d buckets of %v",
					s.agg.Ingested(), s.agg.Buckets(), *bucket)
			} else {
				log.Printf("live aggregation on: %d buckets restored, %d backfilled (full rescan: %v, tail %d records) of %v",
					s.recovery.Restored, s.recovery.Backfilled, s.recovery.FullRescan, s.recovery.TailRecords, *bucket)
			}
		}
		if err := s.initIngest(); err != nil {
			log.Fatal(err)
		}
		if s.snaps != nil {
			snapFn = s.snapshotNow
		}
		s.baseCtx = ctx
		handler = s.routes()
	}

	// The pprof listener is separate from the service address so profile
	// endpoints are never reachable through the public port.
	if *pprofAddr != "" {
		go func() {
			log.Printf("pprof on %s: %v", *pprofAddr, http.ListenAndServe(*pprofAddr, nil))
		}()
	}

	// The periodic snapshot loop bounds the tail a crash restart must
	// replay to at most one interval of ingest; it stops with ctx so the
	// final drain flush below is the last writer.
	if snapFn != nil && *snapEvery > 0 {
		go func() {
			tick := time.NewTicker(*snapEvery)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					if st, err := snapFn(); err != nil {
						log.Printf("periodic snapshot: %v", err)
					} else if st.Written > 0 {
						log.Printf("snapshot: %d buckets (%d files written, %d bytes)", st.Buckets, st.Written, st.Bytes)
					}
				}
			}
		}()
	}

	srv := &http.Server{
		Addr:         *addr,
		Handler:      handler,
		ReadTimeout:  10 * time.Second,
		WriteTimeout: 120 * time.Second,
		BaseContext:  func(net.Listener) context.Context { return ctx },
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("serving %s on %s", *dbDir, *addr)

	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
		stop()
		log.Printf("shutdown signal received; draining for up to %v", *drain)
		shCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(shCtx); err != nil {
			log.Printf("drain timed out: %v; closing", err)
			srv.Close()
		}
		// Final snapshot after the listener has drained: every accepted
		// ingest is in the ring, so the commit covers the whole store and
		// the next boot restores with zero tail replay.
		if snapFn != nil {
			if st, err := snapFn(); err != nil {
				log.Printf("final snapshot: %v", err)
			} else {
				log.Printf("final snapshot: %d buckets (%d files written, %d bytes)", st.Buckets, st.Written, st.Bytes)
			}
		}
	}
}

// routes assembles the mux over the server's handlers.
func (s *server) routes() *http.ServeMux {
	s.registerInstanceMetrics()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.Handle("GET /metrics", obs.Handler(obs.Def, s.obsReg))
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /tweets", s.handleTweets)
	mux.HandleFunc("GET /density.png", s.handleDensity)
	mux.HandleFunc("GET /flows", s.handleFlows)
	mux.HandleFunc("GET /v1/stats", s.traced("/v1/stats", s.handleV1Stats))
	mux.HandleFunc("GET /v1/population", s.traced("/v1/population", s.handleV1Population))
	mux.HandleFunc("GET /v1/models", s.traced("/v1/models", s.handleV1Models))
	mux.HandleFunc("GET /v1/flows", s.traced("/v1/flows", s.handleV1Flows))
	mux.HandleFunc("POST /v1/ingest", s.traced("ingest", s.handleIngest))
	mux.HandleFunc("GET /debug/traces", s.handleTracesList)
	mux.HandleFunc("GET /debug/traces/{id}", s.handleTraceGet)
	if s.snaps != nil {
		mux.Handle("POST /v1/snapshot", snapshotHandler(s.snapshotNow))
	}
	return mux
}

// clusterRoutes is the coordinator-mode mux: the versioned analysis API
// and health only. The store-backed endpoints (/stats, /tweets,
// /density.png, /flows) have no meaning here — the records live on the
// shard nodes.
func (s *server) clusterRoutes() *http.ServeMux {
	s.registerInstanceMetrics()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.Handle("GET /metrics", obs.Handler(obs.Def, s.obsReg))
	mux.HandleFunc("GET /v1/stats", s.traced("/v1/stats", s.handleV1Stats))
	mux.HandleFunc("GET /v1/population", s.traced("/v1/population", s.handleV1Population))
	mux.HandleFunc("GET /v1/models", s.traced("/v1/models", s.handleV1Models))
	mux.HandleFunc("GET /v1/flows", s.traced("/v1/flows", s.handleV1Flows))
	mux.HandleFunc("POST /v1/ingest", s.traced("ingest", s.handleIngest))
	mux.HandleFunc("GET /debug/traces", s.handleTracesList)
	mux.HandleFunc("GET /debug/traces/{id}", s.handleTraceGet)
	mux.HandleFunc("GET /metrics/cluster", s.handleMetricsCluster)
	if len(s.localShards) > 0 {
		mux.Handle("POST /v1/snapshot", snapshotHandler(s.snapshotNow))
	}
	return mux
}

// scanWorkers resolves the configured scan parallelism.
func (s *server) scanWorkers() int {
	if s.workers > 0 {
		return s.workers
	}
	return runtime.GOMAXPROCS(0)
}

// writeJSON writes v with the proper content type.
func writeJSON(w http.ResponseWriter, v any) {
	writeJSONStatus(w, http.StatusOK, v)
}

// writeJSONStatus writes v under an explicit status code.
func writeJSONStatus(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("encode response: %v", err)
	}
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	http.Error(w, fmt.Sprintf(format, args...), code)
}

// handleHealthz reports liveness. Every numeric field is read back out
// of one obsReg.Snapshot() — a single coherent scrape of the instance
// gauges — rather than from each component ad hoc; the JSON shape is
// unchanged from before the registry existed (pinned by
// TestHealthzShape) with one addition, the "build" block.
func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.registerInstanceMetrics()
	snap := s.obsReg.Snapshot()
	if s.coord != nil {
		// Cluster mode: the coordinator's cache is the live one (the
		// server-level cache never sees a query).
		shards := s.coord.Health()
		degraded := false
		for _, st := range shards {
			if !st.OK || st.Degraded {
				degraded = true
			}
		}
		status := "ok"
		if degraded {
			status = "degraded"
		}
		writeJSON(w, map[string]any{
			"status":          status,
			"ring":            s.coord.RingStatus(),
			"shards":          shards,
			"ingested":        snap.Int("geomob_coord_ingested_rows"),
			"partial_fetches": snap.Int("geomob_coord_partial_fetches"),
			"cache": map[string]int64{
				"hits":   snap.Int("geomob_coord_cache_hits"),
				"misses": snap.Int("geomob_coord_cache_misses"),
			},
			"build":   buildBlock(),
			"latency": latencyBlock(),
		})
		return
	}
	resp := map[string]any{
		"status":     "ok",
		"tweets":     snap.Int("geomob_store_tweets"),
		"generation": strconv.FormatUint(s.store.Generation(), 16),
		"scans":      snap.Int("geomob_store_scans"),
		"cache": map[string]int64{
			"hits":   snap.Int("geomob_cache_hits"),
			"misses": snap.Int("geomob_cache_misses"),
		},
		"build":   buildBlock(),
		"latency": latencyBlock(),
	}
	if s.agg != nil {
		resp["live"] = map[string]any{
			"buckets":  snap.Int("geomob_live_buckets"),
			"width":    s.agg.Width().String(),
			"ingested": snap.Int("geomob_live_ingested_rows"),
			"builds":   snap.Int("geomob_live_builds"),
			"rollups":  s.agg.RollupStats(),
		}
	}
	if s.snaps != nil {
		sn := map[string]any{
			"buckets": snap.Int("geomob_snapshot_buckets"),
			"bytes":   snap.Int("geomob_snapshot_bytes"),
			"written": snap.Int("geomob_snapshot_written"),
		}
		if last := snap.Int("geomob_snapshot_last_unix_ms"); last > 0 {
			sn["last"] = time.UnixMilli(last).UTC()
			sn["age_seconds"] = time.Since(time.UnixMilli(last)).Seconds()
		}
		resp["snapshot"] = sn
		resp["recovery"] = s.recovery
	}
	writeJSON(w, resp)
}

// handleIngest drains a tweet batch into the streaming write path:
// durably appended to the store and, with -live, routed through the
// assignment hot path into the bucket ring. Cached /v1 results whose
// windows do not cover the landed buckets stay warm. Content-Type
// selects the wire format: tweet.BatchContentType streams binary column
// frames (the hot path), anything else is read as NDJSON.
func (s *server) handleIngest(w http.ResponseWriter, r *http.Request) {
	// The request body is bounded (-max-ingest-bytes), NDJSON lines are
	// capped at 1 MiB by the reader and binary frames at the same body
	// bound, so one oversized upload cannot buffer the service out of
	// memory; every such violation answers 413.
	body := http.MaxBytesReader(w, r.Body, s.maxIngestBytes)
	binary := r.Header.Get("Content-Type") == tweet.BatchContentType
	var n int
	var err error
	switch {
	case s.coord != nil && binary:
		n, err = live.DrainBinary(body, s.maxIngestBytes, s.coord.AddBatch, s.coord.Flush)
	case s.coord != nil:
		n, err = s.coord.IngestNDJSON(body)
	case binary:
		n, err = live.DrainBinary(body, s.maxIngestBytes, s.ing.IngestBatch, s.ing.Flush)
	default:
		n, err = s.ing.IngestNDJSON(body)
	}
	if err != nil {
		// The caller's records are a 400 (do not retry the payload) and
		// size-limit violations a 413; internal storage or routing
		// failures are a 500. Ingest is at-least-once: records accepted
		// before a 500 are (or will be) durable, so re-posting the same
		// payload can duplicate them — the store has no dedup.
		// Idempotent retry needs client-side resume from the accepted
		// count.
		httpError(w, cluster.IngestStatus(err), "ingest: %v (accepted %d records)", err, n)
		return
	}
	if s.coord != nil {
		// 202, not 200: the records are durably spooled (the coordinator's
		// acknowledgement point), but replica delivery is asynchronous —
		// the lanes replay until every copy has acked.
		writeJSONStatus(w, http.StatusAccepted, map[string]any{
			"ingested": n,
			"shards":   s.coord.Shards(),
			"routed":   s.coord.Ingested(),
		})
		return
	}
	resp := map[string]any{
		"ingested":   n,
		"tweets":     s.store.Count(),
		"generation": strconv.FormatUint(s.store.Generation(), 16),
	}
	if s.agg != nil {
		resp["buckets"] = s.agg.Buckets()
	}
	writeJSON(w, resp)
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	segs := s.store.Segments()
	var bytes int64
	box := geo.EmptyBBox()
	// A seen flag, not a zero sentinel: an empty store must not report
	// the epoch as its collection period, and a legitimate record at
	// epoch 0 must not be mistaken for "unset".
	var minTS, maxTS int64
	seen := false
	for _, seg := range segs {
		bytes += seg.Bytes
		box = box.Union(seg.BBox())
		if !seen || seg.MinTS < minTS {
			minTS = seg.MinTS
		}
		if !seen || seg.MaxTS > maxTS {
			maxTS = seg.MaxTS
		}
		seen = true
	}
	resp := map[string]any{
		"tweets":   s.store.Count(),
		"segments": len(segs),
		"bytes":    bytes,
		"bbox":     box,
		"workers":  s.scanWorkers(),
	}
	if seen {
		resp["first"] = time.UnixMilli(minTS).UTC()
		resp["last"] = time.UnixMilli(maxTS).UTC()
	}
	writeJSON(w, resp)
}

func (s *server) handleTweets(w http.ResponseWriter, r *http.Request) {
	q := tweetdb.Query{}
	if v := r.URL.Query().Get("user"); v != "" {
		uid, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad user id %q", v)
			return
		}
		q.UserID = &uid
	}
	if v := r.URL.Query().Get("from"); v != "" {
		t, err := time.Parse(time.RFC3339, v)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad from time %q", v)
			return
		}
		q.FromTS = t.UnixMilli()
	}
	if v := r.URL.Query().Get("to"); v != "" {
		t, err := time.Parse(time.RFC3339, v)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad to time %q", v)
			return
		}
		q.ToTS = t.UnixMilli()
	}
	limit := 1000
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			httpError(w, http.StatusBadRequest, "bad limit %q", v)
			return
		}
		limit = n
	}
	it := s.store.Scan(q)
	defer it.Close()
	var out []tweet.Tweet
	for len(out) < limit {
		t, ok := it.Next()
		if !ok {
			break
		}
		out = append(out, t)
	}
	if err := it.Err(); err != nil {
		httpError(w, http.StatusInternalServerError, "scan: %v", err)
		return
	}
	writeJSON(w, out)
}

// parseGridDim parses one density grid dimension, strict like /tweets'
// param handling: a present-but-invalid value is a 400, not a silent
// fallback to the default.
func parseGridDim(r *http.Request, name string, def int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 || n > 2000 {
		return 0, fmt.Errorf("bad %s %q: want an integer in [1, 2000]", name, v)
	}
	return n, nil
}

func (s *server) handleDensity(w http.ResponseWriter, r *http.Request) {
	nx, err := parseGridDim(r, "nx", 360)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ny, err := parseGridDim(r, "ny", 280)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	grid, err := heatmap.NewGrid(geo.AustraliaBBox, nx, ny)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "grid: %v", err)
		return
	}
	it := s.store.Scan(tweetdb.Query{})
	for {
		t, ok := it.Next()
		if !ok {
			break
		}
		grid.Add(t.Point())
	}
	if err := it.Err(); err != nil {
		httpError(w, http.StatusInternalServerError, "scan: %v", err)
		return
	}
	w.Header().Set("Content-Type", "image/png")
	if err := grid.WritePNG(w); err != nil {
		log.Printf("density render: %v", err)
	}
}

// parseScale maps the scale query param onto a census scale; empty
// defaults to national.
func parseScale(v string) (census.Scale, error) {
	switch v {
	case "", "national":
		return census.ScaleNational, nil
	case "state":
		return census.ScaleState, nil
	case "metropolitan", "metro":
		return census.ScaleMetropolitan, nil
	}
	return census.ScaleNational, fmt.Errorf("unknown scale %q", v)
}

func (s *server) handleFlows(w http.ResponseWriter, r *http.Request) {
	scale, err := parseScale(r.URL.Query().Get("scale"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	mapper, err := s.scaleMapper(scale)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "mapper: %v", err)
		return
	}
	src := core.StoreSource{Store: s.store}
	flows, err := core.ExtractFlows(r.Context(), src, mapper, s.scanWorkers())
	if err != nil {
		httpError(w, http.StatusInternalServerError, "extract: %v (store compacted?)", err)
		return
	}
	writeJSON(w, map[string]any{
		"scale":  scale.String(),
		"areas":  areaNames(flows.Areas),
		"flows":  flows.Flows,
		"total":  flows.Total(),
		"radius": mapper.Radius(),
	})
}

// areaNames projects the area list onto its names for JSON responses.
func areaNames(areas []census.Area) []string {
	names := make([]string, len(areas))
	for i, a := range areas {
		names[i] = a.Name
	}
	return names
}

// parseV1Request assembles the core.Request shared by the /v1 handlers
// from the scale/from/to/radius query params. Scale-independent handlers
// (stats) pass scaled=false, which rejects scale and radius instead of
// silently ignoring them — the same strictness as everywhere else, and it
// keeps meaningless parameters from fragmenting the snapshot-cache keys.
func parseV1Request(r *http.Request, analysis core.Analysis, scaled bool) (core.Request, error) {
	req := core.Request{Analyses: []core.Analysis{analysis}}
	q := r.URL.Query()
	if scaled {
		scale, err := parseScale(q.Get("scale"))
		if err != nil {
			return core.Request{}, err
		}
		req.Scales = []census.Scale{scale}
		if v := q.Get("radius"); v != "" {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil || !(f > 0) || math.IsInf(f, 0) {
				return core.Request{}, fmt.Errorf("bad radius %q: want finite metres > 0", v)
			}
			req.Radius = f
		}
	} else {
		for _, p := range []string{"scale", "radius"} {
			if q.Get(p) != "" {
				return core.Request{}, fmt.Errorf("%s is not a parameter of this endpoint", p)
			}
		}
	}
	if v := q.Get("from"); v != "" {
		t, err := time.Parse(time.RFC3339, v)
		if err != nil {
			return core.Request{}, fmt.Errorf("bad from time %q", v)
		}
		req.From = t
	}
	if v := q.Get("to"); v != "" {
		t, err := time.Parse(time.RFC3339, v)
		if err != nil {
			return core.Request{}, fmt.Errorf("bad to time %q", v)
		}
		req.To = t
	}
	if !req.From.IsZero() && !req.To.IsZero() && !req.To.After(req.From) {
		return core.Request{}, fmt.Errorf("empty window [%s, %s)", q.Get("from"), q.Get("to"))
	}
	return req, nil
}

// executeCached answers req through the snapshot cache. In live mode the
// cache key carries the request's bucket-coverage fingerprint and the
// computation folds materialised partials — an append invalidates only
// the entries whose window covers the buckets it landed in, and repeat
// queries over unchanged coverage do zero segment scans. Shapes the ring
// does not materialise (custom radii) fall back to an exact streaming
// pass over the ring's records, still without touching the store.
// Without -live, the key carries the store generation and the
// computation is the classic store rescan. Computations run under the
// server's lifetime context, not the request's: several requests may be
// waiting on one computation, so a single client's disconnect must not
// cancel it — the pass completes, populates the snapshot, and serves
// everyone else.
// ctx carries the request trace (obs.TraceFrom): the cache-key
// construction is recorded as the cache_lookup stage, and the compute
// callback (which only runs on a miss) as the fold/scan stage; in
// cluster mode the coordinator records scatter/fold/merge/assemble
// itself and propagates the trace ID to remote shards.
func (s *server) executeCached(ctx context.Context, req core.Request) (*core.Result, bool, error) {
	if s.coord != nil {
		// Cluster mode: the coordinator owns both the scatter-gather
		// computation and its coverage-fingerprint cache.
		res, hit, err := s.coord.QueryCtx(ctx, req)
		if err == nil {
			obs.ExplainFrom(ctx).Set("cache", map[string]any{"source": "cluster", "hit": hit})
		}
		return res, hit, err
	}
	tr := obs.TraceFrom(ctx)
	if s.agg != nil {
		endKey := tr.StartStage("cache_lookup")
		ckey, err := s.agg.CoverageKeyRequest(req)
		endKey()
		switch {
		case err == nil:
			return s.cachedGet(ctx, req.Key()+"|b="+ckey, "bucket_fold", ckey, func() (*core.Result, error) {
				defer tr.StartStage("fold")()
				return s.agg.Query(req)
			})
		case errors.Is(err, live.ErrNotCovered):
			// Key the fallback on the ring's own revision, not the store
			// generation: the computation reads the ring, and during an
			// ingest the store becomes durable momentarily before the
			// ring routes the batch — a generation key taken in that gap
			// would cache ring-stale data under a store-fresh key.
			rev := strconv.FormatUint(s.agg.Revision(), 16)
			return s.cachedGet(ctx, req.Key()+"|rr="+rev, "ring_scan", "", func() (*core.Result, error) {
				defer tr.StartStage("ring_scan")()
				tweets, err := s.agg.WindowTweetsRequest(req)
				if err != nil {
					return nil, err
				}
				study := core.NewStudyWithOptions(
					core.SliceSource(tweets),
					core.StudyOptions{Workers: s.scanWorkers()},
				)
				return study.Execute(s.baseCtx, req)
			})
		default:
			return nil, false, err
		}
	}
	gen := strconv.FormatUint(s.store.Generation(), 16)
	return s.cachedGet(ctx, req.Key()+"|g="+gen, "store_scan", "", func() (*core.Result, error) {
		defer tr.StartStage("store_scan")()
		study := core.NewStudyWithOptions(
			core.StoreSource{Store: s.store},
			core.StudyOptions{Workers: s.scanWorkers()},
		)
		return study.Execute(s.baseCtx, req)
	})
}

// writeExecuteError maps an Execute failure onto a response: an empty
// window is the caller's (absent) data, not a server fault; a cancelled
// context can only be the server shutting down (computations are bound
// to the server lifetime, not to any request), which is a 503. A shape
// the cluster's shard rings do not materialise (custom radii — the
// single-node ring falls back to an exact in-memory pass, the cluster
// does not yet; see ROADMAP) is a stated capability gap, 501, not a
// server fault.
func writeExecuteError(w http.ResponseWriter, err error) {
	var unavail *cluster.UnavailableError
	switch {
	case errors.As(err, &unavail):
		// Degraded read: some user-range slots have no live current
		// replica (the member and all its replicas are down or still
		// replaying). The data is durable in the spool and the lanes keep
		// retrying, so this heals without operator action — tell the
		// client to retry, and name exactly which user-hash ranges are
		// affected so a partial-tolerance client can re-scope.
		w.Header().Set("Retry-After", "5")
		body := map[string]any{
			"error":       "degraded: no live replica for part of the user space",
			"slots":       unavail.Slots,
			"user_ranges": unavail.UserRanges(),
			"retry_after": 5,
		}
		if unavail.TraceID != "" {
			body["trace_id"] = unavail.TraceID
		}
		writeJSONStatus(w, http.StatusServiceUnavailable, body)
	case errors.Is(err, core.ErrEmptyDataset):
		httpError(w, http.StatusNotFound, "no tweets in the requested window")
	case errors.Is(err, live.ErrNotCovered):
		httpError(w, http.StatusNotImplemented,
			"this request shape is not materialized by the cluster's shard rings (custom radii need a single-node deployment): %v", err)
	case errors.Is(err, context.Canceled):
		httpError(w, http.StatusServiceUnavailable, "server shutting down")
	default:
		httpError(w, http.StatusInternalServerError, "execute: %v", err)
	}
}

func (s *server) handleV1Stats(w http.ResponseWriter, r *http.Request) {
	req, err := parseV1Request(r, core.AnalysisStats, false)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	res, cached, explain, err := s.execV1(r, req)
	if err != nil {
		writeExecuteError(w, err)
		return
	}
	st := res.Stats
	resp := map[string]any{
		"tweets":              st.Tweets,
		"users":               st.Users,
		"avg_tweets_per_user": st.AvgTweetsPerUser,
		"avg_waiting_hours":   st.AvgWaitingHours,
		"avg_locations":       st.AvgLocations,
		"heavy_users":         st.HeavyUsers,
		"mean_gyration_km":    st.MeanGyrationKM,
		"bbox":                st.BBox,
		"first":               st.First,
		"last":                st.Last,
		"cached":              cached,
	}
	if explain != nil {
		resp["explain"] = explain
	}
	writeJSON(w, resp)
}

func (s *server) handleV1Population(w http.ResponseWriter, r *http.Request) {
	req, err := parseV1Request(r, core.AnalysisPopulation, true)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	res, cached, explain, err := s.execV1(r, req)
	if err != nil {
		writeExecuteError(w, err)
		return
	}
	scale := req.Scales[0]
	est := res.Population[scale]
	if est == nil {
		httpError(w, http.StatusInternalServerError, "no estimate for %s", scale)
		return
	}
	rs, err := census.Australia().Regions(scale)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "regions: %v", err)
		return
	}
	resp := map[string]any{
		"scale":         scale.String(),
		"radius":        est.Radius,
		"areas":         areaNames(rs.Areas),
		"twitter_users": est.TwitterUsers,
		"census":        est.Census,
		"rescaled":      est.Rescaled,
		"c":             est.C,
		"median_users":  est.MedianUsers,
		"cached":        cached,
	}
	if corr, err := est.Correlation(); err == nil {
		resp["pearson_log_r"] = corr.R
		resp["pearson_log_p"] = corr.P
	}
	if explain != nil {
		resp["explain"] = explain
	}
	writeJSON(w, resp)
}

func (s *server) handleV1Models(w http.ResponseWriter, r *http.Request) {
	req, err := parseV1Request(r, core.AnalysisMobility, true)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	res, cached, explain, err := s.execV1(r, req)
	if err != nil {
		writeExecuteError(w, err)
		return
	}
	scale := req.Scales[0]
	mr := res.Mobility[scale]
	if mr == nil {
		httpError(w, http.StatusInternalServerError, "no mobility result for %s", scale)
		return
	}
	fits := make([]map[string]any, 0, len(mr.Fits))
	for _, f := range mr.Fits {
		fits = append(fits, map[string]any{
			"name":    f.Name,
			"params":  f.Params,
			"metrics": f.Metrics,
		})
	}
	resp := map[string]any{
		"scale":      scale.String(),
		"total_flow": mr.TotalFlow,
		"flow_pairs": mr.FlowPairs,
		"fits":       fits,
		"cached":     cached,
	}
	if explain != nil {
		resp["explain"] = explain
	}
	writeJSON(w, resp)
}

func (s *server) handleV1Flows(w http.ResponseWriter, r *http.Request) {
	req, err := parseV1Request(r, core.AnalysisFlows, true)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	res, cached, explain, err := s.execV1(r, req)
	if err != nil {
		writeExecuteError(w, err)
		return
	}
	scale := req.Scales[0]
	mr := res.Mobility[scale]
	if mr == nil {
		httpError(w, http.StatusInternalServerError, "no flow result for %s", scale)
		return
	}
	radius := req.Radius
	if radius == 0 {
		radius = scale.SearchRadius()
	}
	resp := map[string]any{
		"scale":  scale.String(),
		"areas":  areaNames(mr.Flows.Areas),
		"flows":  mr.Flows.Flows,
		"stays":  mr.Flows.Stays,
		"total":  mr.TotalFlow,
		"pairs":  mr.FlowPairs,
		"radius": radius,
		"cached": cached,
	}
	if explain != nil {
		resp["explain"] = explain
	}
	writeJSON(w, resp)
}
