package main

import (
	"errors"
	"testing"

	"geomob/internal/core"
)

// TestSnapshotCachePanicRecovery: a panicking computation must surface as
// an error and must not poison the key — later requests retry instead of
// blocking forever on an entry whose ready channel never closed.
func TestSnapshotCachePanicRecovery(t *testing.T) {
	c := newSnapshotCache()
	gen := func() uint64 { return 1 }

	_, cached, err := c.get(gen, "k", func() (*core.Result, error) { panic("boom") })
	if err == nil || cached {
		t.Fatalf("panicking compute: cached=%v err=%v, want error", cached, err)
	}

	want := &core.Result{Observers: 7}
	res, cached, err := c.get(gen, "k", func() (*core.Result, error) { return want, nil })
	if err != nil || cached || res != want {
		t.Fatalf("retry after panic: res=%v cached=%v err=%v", res, cached, err)
	}

	// And the healthy entry now serves from cache.
	res, cached, err = c.get(gen, "k", func() (*core.Result, error) {
		return nil, errors.New("must not recompute")
	})
	if err != nil || !cached || res != want {
		t.Fatalf("cache hit after retry: res=%v cached=%v err=%v", res, cached, err)
	}
}

// TestSnapshotCacheErrorNotCached: failed computations are dropped so the
// next request retries.
func TestSnapshotCacheErrorNotCached(t *testing.T) {
	c := newSnapshotCache()
	gen := func() uint64 { return 1 }
	boom := errors.New("boom")

	if _, cached, err := c.get(gen, "k", func() (*core.Result, error) { return nil, boom }); !errors.Is(err, boom) || cached {
		t.Fatalf("cached=%v err=%v, want boom uncached", cached, err)
	}
	want := &core.Result{}
	if res, cached, err := c.get(gen, "k", func() (*core.Result, error) { return want, nil }); err != nil || cached || res != want {
		t.Fatalf("retry: res=%v cached=%v err=%v", res, cached, err)
	}
}

// TestSnapshotCacheGenerationInvalidation: moving the generation drops
// every snapshot of the old one.
func TestSnapshotCacheGenerationInvalidation(t *testing.T) {
	c := newSnapshotCache()
	g := uint64(1)
	gen := func() uint64 { return g }
	a := &core.Result{}
	if _, cached, _ := c.get(gen, "k", func() (*core.Result, error) { return a, nil }); cached {
		t.Fatal("first fill reported cached")
	}
	g = 2
	if _, cached, _ := c.get(gen, "k", func() (*core.Result, error) { return &core.Result{}, nil }); cached {
		t.Fatal("snapshot survived a generation change")
	}
}
