// Observability wiring: the per-instance gauge registry behind GET
// /metrics and /healthz, the request-trace middleware with its
// per-endpoint latency histograms, and the structured slow-query log
// (DESIGN.md §12).
package main

import (
	"encoding/json"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux, served by -pprof-addr
	"strconv"
	"time"

	"geomob/internal/obs"
)

// mSlowQueries counts /v1 requests that crossed the -slow-query
// threshold and were logged.
var mSlowQueries = obs.Def.Counter("geomob_slow_queries_total", "Queries slower than the -slow-query threshold.")

// registerInstanceMetrics publishes this server instance's state gauges
// on its own registry: /healthz reads them back through one Snapshot()
// so its numbers form one coherent scrape, and /metrics renders them
// after the process-global obs.Def series. Registration is idempotent
// (GaugeFunc replaces the callback), so routes() may run repeatedly.
func (s *server) registerInstanceMetrics() {
	obs.RegisterBuildMetrics(obs.Def)
	r := s.obsReg
	if s.coord != nil {
		r.GaugeFunc("geomob_coord_ingested_rows", "Rows accepted by this coordinator since boot.",
			func() float64 { return float64(s.coord.Ingested()) })
		r.GaugeFunc("geomob_coord_partial_fetches", "Shard fold RPCs issued by this coordinator.",
			func() float64 { return float64(s.coord.PartialFetches()) })
		r.GaugeFunc("geomob_coord_cache_hits", "Coordinator snapshot-cache hits.",
			func() float64 { h, _ := s.coord.CacheStats(); return float64(h) })
		r.GaugeFunc("geomob_coord_cache_misses", "Coordinator snapshot-cache misses.",
			func() float64 { _, m := s.coord.CacheStats(); return float64(m) })
		return
	}
	r.GaugeFunc("geomob_store_tweets", "Durable records in this instance's store.",
		func() float64 { return float64(s.store.Count()) })
	r.GaugeFunc("geomob_store_scans", "Segment scans served by this instance's store.",
		func() float64 { return float64(s.store.ScanCount()) })
	r.GaugeFunc("geomob_cache_hits", "Snapshot-cache hits on this instance.",
		func() float64 { h, _ := s.cache.Stats(); return float64(h) })
	r.GaugeFunc("geomob_cache_misses", "Snapshot-cache misses on this instance.",
		func() float64 { _, m := s.cache.Stats(); return float64(m) })
	if s.agg != nil {
		r.GaugeFunc("geomob_live_buckets", "Live buckets materialised in the ring.",
			func() float64 { return float64(s.agg.Buckets()) })
		r.GaugeFunc("geomob_live_ingested_rows", "Records routed into the bucket ring since boot.",
			func() float64 { return float64(s.agg.Ingested()) })
		r.GaugeFunc("geomob_live_builds", "Bucket partial materialisations performed.",
			func() float64 { return float64(s.agg.Builds()) })
	}
	if s.snaps != nil {
		r.GaugeFunc("geomob_snapshot_buckets", "Buckets present in the durable snapshot set.",
			func() float64 { return float64(s.snaps.Stats().Buckets) })
		r.GaugeFunc("geomob_snapshot_bytes", "Bytes held by the durable snapshot set.",
			func() float64 { return float64(s.snaps.Stats().Bytes) })
		r.GaugeFunc("geomob_snapshot_written", "Snapshot files written since boot.",
			func() float64 { return float64(s.snaps.Stats().Written) })
		r.GaugeFunc("geomob_snapshot_last_unix_ms", "Wall time of the last snapshot commit (ms since epoch).",
			func() float64 { return float64(s.snaps.Stats().LastUnixMs) })
	}
}

// buildBlock is the /healthz build-and-uptime report.
func buildBlock() map[string]any {
	b := obs.Build()
	return map[string]any{
		"version":        b.Version,
		"revision":       b.Revision,
		"modified":       b.Modified,
		"go":             b.GoVersion,
		"uptime_seconds": obs.Uptime().Seconds(),
	}
}

// traced wraps a query handler with the request-scoped trace: the
// X-Geomob-Trace header (or a fresh random ID) becomes the context
// trace carried through executeCached into the coordinator and its
// shard hops, the endpoint's end-to-end latency lands in
// geomob_query_duration_seconds{endpoint=...}, and any request slower
// than -slow-query logs one structured line with the per-stage
// breakdown.
func (s *server) traced(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	hist := obs.Def.Histogram("geomob_query_duration_seconds", "End-to-end latency of one query endpoint request.", nil, "endpoint", endpoint)
	return func(w http.ResponseWriter, r *http.Request) {
		tr := obs.NewTrace(r.Header.Get(obs.TraceHeader))
		w.Header().Set(obs.TraceHeader, tr.ID)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h(sw, r.WithContext(obs.WithTrace(r.Context(), tr)))
		d := tr.Total()
		hist.Observe(d.Seconds())
		slow := s.slowQuery > 0 && d >= s.slowQuery
		if slow {
			mSlowQueries.Inc()
			logSlowQuery(endpoint, r.URL.RequestURI(), tr)
		}
		s.traces.Add(obs.TraceRecord{
			ID:       tr.ID,
			Endpoint: endpoint,
			URL:      r.URL.RequestURI(),
			Status:   sw.status,
			Start:    start.UTC(),
			TotalMs:  float64(d.Microseconds()) / 1000,
			Stages:   tr.Stages(),
			Slow:     slow,
			Error:    sw.status >= 500,
		})
	}
}

// statusWriter captures the response status for trace retention.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// handleTracesList serves GET /debug/traces: retained completed traces,
// newest first, bounded by ?limit (default 100).
func (s *server) handleTracesList(w http.ResponseWriter, r *http.Request) {
	limit := 100
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			httpError(w, http.StatusBadRequest, "bad limit %q", v)
			return
		}
		limit = n
	}
	traces := s.traces.List(limit)
	if traces == nil {
		traces = []obs.TraceRecord{}
	}
	writeJSON(w, map[string]any{
		"retained": s.traces.Len(),
		"traces":   traces,
	})
}

// handleTraceGet serves GET /debug/traces/{id}: one retained trace by
// the ID that slow-query log lines, X-Geomob-Trace echoes and 503
// bodies carry.
func (s *server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := s.traces.Get(id)
	if !ok {
		httpError(w, http.StatusNotFound, "no retained trace %q (the store keeps the most recent %d, slow/error preferentially)", id, s.traces.Len())
		return
	}
	writeJSON(w, rec)
}

// handleMetricsCluster serves GET /metrics/cluster on the coordinator:
// every member's shard /metrics scraped concurrently and re-rendered as
// one exposition with a node label per series plus member-up markers —
// a down member degrades to geomob_member_up{node=...} 0, never to an
// error response (DESIGN.md §13).
func (s *server) handleMetricsCluster(w http.ResponseWriter, r *http.Request) {
	results := s.coord.Federate(r.Context())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := obs.MergeExpositions(w, results); err != nil {
		log.Printf("metrics federation: %v", err)
	}
}

// latencyBlock is /healthz's quantile summary over the endpoint latency
// and coordinator stage histograms — the p50/p95/p99 an operator wants
// before reaching for raw histogram buckets. The histograms are
// registered at route construction (endpoints) and package init
// (stages), so the lookups here re-fetch existing series and never
// create empty ones.
func latencyBlock() map[string]any {
	quantiles := func(h *obs.Histogram) map[string]float64 {
		return map[string]float64{
			"p50_ms": h.Quantile(0.50) * 1000,
			"p95_ms": h.Quantile(0.95) * 1000,
			"p99_ms": h.Quantile(0.99) * 1000,
		}
	}
	query := map[string]any{}
	for _, ep := range []string{"/v1/stats", "/v1/population", "/v1/models", "/v1/flows", "ingest"} {
		query[ep] = quantiles(obs.Def.Histogram("geomob_query_duration_seconds", "End-to-end latency of one query endpoint request.", nil, "endpoint", ep))
	}
	stages := map[string]any{}
	for _, st := range []string{"scatter", "fold", "merge", "assemble"} {
		stages[st] = quantiles(obs.Def.Histogram("geomob_query_stage_seconds", "Per-stage latency of a coordinator scatter-gather query.", nil, "stage", st))
	}
	return map[string]any{"query": query, "stages": stages}
}

// logSlowQuery emits one structured JSON line on the standard logger
// (stderr) with the trace ID and per-stage timings, greppable as
// `"slow_query":true`.
func logSlowQuery(endpoint, uri string, tr *obs.Trace) {
	entry := map[string]any{
		"slow_query": true,
		"trace_id":   tr.ID,
		"endpoint":   endpoint,
		"url":        uri,
		"total_ms":   float64(tr.Total().Microseconds()) / 1000,
		"stages":     tr.Stages(),
	}
	b, err := json.Marshal(entry)
	if err != nil {
		log.Printf("slow query trace=%s endpoint=%s total=%v", tr.ID, endpoint, tr.Total())
		return
	}
	log.Printf("%s", b)
}
