// Observability wiring: the per-instance gauge registry behind GET
// /metrics and /healthz, the request-trace middleware with its
// per-endpoint latency histograms, and the structured slow-query log
// (DESIGN.md §12).
package main

import (
	"encoding/json"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux, served by -pprof-addr

	"geomob/internal/obs"
)

// mSlowQueries counts /v1 requests that crossed the -slow-query
// threshold and were logged.
var mSlowQueries = obs.Def.Counter("geomob_slow_queries_total", "Queries slower than the -slow-query threshold.")

// registerInstanceMetrics publishes this server instance's state gauges
// on its own registry: /healthz reads them back through one Snapshot()
// so its numbers form one coherent scrape, and /metrics renders them
// after the process-global obs.Def series. Registration is idempotent
// (GaugeFunc replaces the callback), so routes() may run repeatedly.
func (s *server) registerInstanceMetrics() {
	obs.RegisterBuildMetrics(obs.Def)
	r := s.obsReg
	if s.coord != nil {
		r.GaugeFunc("geomob_coord_ingested_rows", "Rows accepted by this coordinator since boot.",
			func() float64 { return float64(s.coord.Ingested()) })
		r.GaugeFunc("geomob_coord_partial_fetches", "Shard fold RPCs issued by this coordinator.",
			func() float64 { return float64(s.coord.PartialFetches()) })
		r.GaugeFunc("geomob_coord_cache_hits", "Coordinator snapshot-cache hits.",
			func() float64 { h, _ := s.coord.CacheStats(); return float64(h) })
		r.GaugeFunc("geomob_coord_cache_misses", "Coordinator snapshot-cache misses.",
			func() float64 { _, m := s.coord.CacheStats(); return float64(m) })
		return
	}
	r.GaugeFunc("geomob_store_tweets", "Durable records in this instance's store.",
		func() float64 { return float64(s.store.Count()) })
	r.GaugeFunc("geomob_store_scans", "Segment scans served by this instance's store.",
		func() float64 { return float64(s.store.ScanCount()) })
	r.GaugeFunc("geomob_cache_hits", "Snapshot-cache hits on this instance.",
		func() float64 { h, _ := s.cache.Stats(); return float64(h) })
	r.GaugeFunc("geomob_cache_misses", "Snapshot-cache misses on this instance.",
		func() float64 { _, m := s.cache.Stats(); return float64(m) })
	if s.agg != nil {
		r.GaugeFunc("geomob_live_buckets", "Live buckets materialised in the ring.",
			func() float64 { return float64(s.agg.Buckets()) })
		r.GaugeFunc("geomob_live_ingested_rows", "Records routed into the bucket ring since boot.",
			func() float64 { return float64(s.agg.Ingested()) })
		r.GaugeFunc("geomob_live_builds", "Bucket partial materialisations performed.",
			func() float64 { return float64(s.agg.Builds()) })
	}
	if s.snaps != nil {
		r.GaugeFunc("geomob_snapshot_buckets", "Buckets present in the durable snapshot set.",
			func() float64 { return float64(s.snaps.Stats().Buckets) })
		r.GaugeFunc("geomob_snapshot_bytes", "Bytes held by the durable snapshot set.",
			func() float64 { return float64(s.snaps.Stats().Bytes) })
		r.GaugeFunc("geomob_snapshot_written", "Snapshot files written since boot.",
			func() float64 { return float64(s.snaps.Stats().Written) })
		r.GaugeFunc("geomob_snapshot_last_unix_ms", "Wall time of the last snapshot commit (ms since epoch).",
			func() float64 { return float64(s.snaps.Stats().LastUnixMs) })
	}
}

// buildBlock is the /healthz build-and-uptime report.
func buildBlock() map[string]any {
	b := obs.Build()
	return map[string]any{
		"version":        b.Version,
		"revision":       b.Revision,
		"modified":       b.Modified,
		"go":             b.GoVersion,
		"uptime_seconds": obs.Uptime().Seconds(),
	}
}

// traced wraps a query handler with the request-scoped trace: the
// X-Geomob-Trace header (or a fresh random ID) becomes the context
// trace carried through executeCached into the coordinator and its
// shard hops, the endpoint's end-to-end latency lands in
// geomob_query_duration_seconds{endpoint=...}, and any request slower
// than -slow-query logs one structured line with the per-stage
// breakdown.
func (s *server) traced(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	hist := obs.Def.Histogram("geomob_query_duration_seconds", "End-to-end latency of one query endpoint request.", nil, "endpoint", endpoint)
	return func(w http.ResponseWriter, r *http.Request) {
		tr := obs.NewTrace(r.Header.Get(obs.TraceHeader))
		w.Header().Set(obs.TraceHeader, tr.ID)
		h(w, r.WithContext(obs.WithTrace(r.Context(), tr)))
		d := tr.Total()
		hist.Observe(d.Seconds())
		if s.slowQuery > 0 && d >= s.slowQuery {
			mSlowQueries.Inc()
			logSlowQuery(endpoint, r.URL.RequestURI(), tr)
		}
	}
}

// logSlowQuery emits one structured JSON line on the standard logger
// (stderr) with the trace ID and per-stage timings, greppable as
// `"slow_query":true`.
func logSlowQuery(endpoint, uri string, tr *obs.Trace) {
	entry := map[string]any{
		"slow_query": true,
		"trace_id":   tr.ID,
		"endpoint":   endpoint,
		"url":        uri,
		"total_ms":   float64(tr.Total().Microseconds()) / 1000,
		"stages":     tr.Stages(),
	}
	b, err := json.Marshal(entry)
	if err != nil {
		log.Printf("slow query trace=%s endpoint=%s total=%v", tr.ID, endpoint, tr.Total())
		return
	}
	log.Printf("%s", b)
}
