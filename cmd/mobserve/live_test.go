package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"geomob/internal/synth"
	"geomob/internal/tweet"
	"geomob/internal/tweetdb"
)

// newLiveTestServer boots a live-mode server over an empty store — the
// situation the CI smoke job reproduces with the real binary.
func newLiveTestServer(t *testing.T) (*server, *httptest.Server) {
	t.Helper()
	store, err := tweetdb.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(store, 0)
	if err := s.enableLive(time.Hour); err != nil {
		t.Fatal(err)
	}
	if err := s.initIngest(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.routes())
	t.Cleanup(ts.Close)
	return s, ts
}

// getJSON fetches a URL and decodes the JSON body.
func fetchJSON(t *testing.T, url string) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %v", url, resp.StatusCode, body)
	}
	return body
}

// TestLiveIngestEndToEnd is the in-process version of the CI smoke job:
// boot against an empty store, ingest a generated NDJSON batch, check
// /v1/population and /v1/flows return non-empty results, and check a
// repeat query reports cached with zero new store scans.
func TestLiveIngestEndToEnd(t *testing.T) {
	s, ts := newLiveTestServer(t)

	gen, err := synth.NewGenerator(synth.DefaultConfig(800, 5, 6))
	if err != nil {
		t.Fatal(err)
	}
	tweets, err := gen.GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := tweet.NewNDJSONWriter(&buf)
	for _, tw := range tweets {
		if err := w.Write(tw); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/ingest", "application/x-ndjson", &buf)
	if err != nil {
		t.Fatal(err)
	}
	var ing map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&ing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || int(ing["ingested"].(float64)) != len(tweets) {
		t.Fatalf("ingest: status %d body %v", resp.StatusCode, ing)
	}
	if got := s.store.Count(); got != int64(len(tweets)) {
		t.Fatalf("store count = %d, want %d", got, len(tweets))
	}

	scans := s.store.ScanCount()
	pop := fetchJSON(t, ts.URL+"/v1/population?scale=national")
	if pop["cached"].(bool) {
		t.Error("first population query reported cached")
	}
	users := pop["twitter_users"].([]any)
	positive := 0.0
	for _, u := range users {
		positive += u.(float64)
	}
	if len(users) == 0 || positive == 0 {
		t.Fatalf("population empty: %v", pop["twitter_users"])
	}
	flows := fetchJSON(t, ts.URL+"/v1/flows?scale=national")
	if flows["cached"].(bool) || flows["total"].(float64) <= 0 {
		t.Fatalf("flows: cached=%v total=%v", flows["cached"], flows["total"])
	}
	// Repeat queries: served from the snapshot cache, zero new scans.
	if !fetchJSON(t, ts.URL+"/v1/population?scale=national")["cached"].(bool) {
		t.Error("repeat population query not cached")
	}
	if !fetchJSON(t, ts.URL+"/v1/flows?scale=national")["cached"].(bool) {
		t.Error("repeat flows query not cached")
	}
	if got := s.store.ScanCount(); got != scans {
		t.Fatalf("live /v1 queries scanned the store: %d -> %d", scans, got)
	}
	// A radius-override request is not materialised: it falls back to a
	// streaming pass over the ring — correct, and still zero scans.
	over := fetchJSON(t, ts.URL+"/v1/population?scale=national&radius=30000")
	if over["radius"].(float64) != 30000 {
		t.Fatalf("override radius = %v", over["radius"])
	}
	if got := s.store.ScanCount(); got != scans {
		t.Fatalf("radius fallback scanned the store: %d -> %d", scans, got)
	}
	health := fetchJSON(t, ts.URL+"/healthz")
	if _, ok := health["live"]; !ok {
		t.Error("healthz missing live section")
	}
	// Malformed payloads are the caller's fault: 400, not 500.
	bad, err := http.Post(ts.URL+"/v1/ingest", "application/x-ndjson", strings.NewReader(`{"id":1,"user":`))
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed ingest status = %d, want 400", bad.StatusCode)
	}
}

// TestLiveIngestInvalidatesOnlyLandedBuckets asserts, through the cache
// hit/miss counters, that an append invalidates exactly the cached
// results whose windows cover the buckets it landed in.
func TestLiveIngestInvalidatesOnlyLandedBuckets(t *testing.T) {
	s, ts := newLiveTestServer(t)
	post := func(lines string) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/ingest", "application/x-ndjson", strings.NewReader(lines))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest status %d", resp.StatusCode)
		}
	}
	line := func(id, user, ts int64, lat, lon float64) string {
		return fmt.Sprintf(`{"id":%d,"user":%d,"ts":%d,"lat":%g,"lon":%g}`+"\n", id, user, ts, lat, lon)
	}
	hour := int64(time.Hour / time.Millisecond)
	// Hours 0..3, users moving between Sydney and Melbourne.
	post(line(1, 10, 0*hour+5000, -33.8688, 151.2093) +
		line(2, 10, 1*hour+5000, -33.8688, 151.2093) +
		line(3, 10, 2*hour+5000, -37.8136, 144.9631) +
		line(4, 20, 0*hour+9000, -37.8136, 144.9631) +
		line(5, 20, 3*hour+9000, -33.8688, 151.2093))

	rfc := func(ms int64) string { return time.UnixMilli(ms).UTC().Format(time.RFC3339) }
	early := ts.URL + "/v1/stats?from=" + rfc(1000) + "&to=" + rfc(2*hour)
	late := ts.URL + "/v1/stats?from=" + rfc(2*hour) + "&to=" + rfc(4*hour)

	if fetchJSON(t, early)["cached"].(bool) {
		t.Error("first early query cached")
	}
	if !fetchJSON(t, early)["cached"].(bool) {
		t.Error("repeat early query not cached")
	}
	if fetchJSON(t, late)["cached"].(bool) {
		t.Error("first late query cached")
	}
	// Ingest into hour 3: the early window's snapshot must stay warm —
	// the store generation moved, but its bucket coverage did not.
	post(line(6, 30, 3*hour+20000, -33.8688, 151.2093))
	if !fetchJSON(t, early)["cached"].(bool) {
		t.Error("early window was invalidated by an append outside it")
	}
	lateAfter := fetchJSON(t, late)
	if lateAfter["cached"].(bool) {
		t.Error("late window survived an append inside it")
	}
	if got := lateAfter["tweets"].(float64); got != 3 {
		t.Errorf("late window tweets = %v, want 3 (new record folded in)", got)
	}
	hits, misses := s.cache.Stats()
	if hits != 2 || misses != 3 {
		t.Errorf("cache stats hits=%d misses=%d, want 2 hits / 3 misses", hits, misses)
	}
}
