package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"geomob/internal/cluster"
	"geomob/internal/core"
	"geomob/internal/live"
	"geomob/internal/synth"
	"geomob/internal/testx"
	"geomob/internal/tweet"
	"geomob/internal/tweetdb"
)

// newClusterTestServer boots a coordinator-mode server over n in-process
// partitions with per-partition stores — the -partitions mode.
func newClusterTestServer(t *testing.T, n int) (*server, *httptest.Server, []*cluster.LocalShard) {
	t.Helper()
	dir := t.TempDir()
	var shards []cluster.Shard
	var locals []*cluster.LocalShard
	for i := 0; i < n; i++ {
		store, err := tweetdb.Open(filepath.Join(dir, "part", string(rune('a'+i))))
		if err != nil {
			t.Fatal(err)
		}
		shard, err := cluster.NewLocalShard(store, live.Options{BucketWidth: time.Hour})
		if err != nil {
			t.Fatal(err)
		}
		shards = append(shards, shard)
		locals = append(locals, shard)
	}
	coord, err := cluster.NewCoordinator(shards, cluster.CoordinatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })
	s := newServer(nil, 0)
	s.coord = coord
	ts := httptest.NewServer(s.clusterRoutes())
	t.Cleanup(ts.Close)
	return s, ts, locals
}

// corpusNDJSON renders a synthetic corpus as an NDJSON body.
func corpusNDJSON(t *testing.T, tweets []tweet.Tweet) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	w := tweet.NewNDJSONWriter(&buf)
	for _, tw := range tweets {
		if err := w.Write(tw); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return &buf
}

// TestClusterModeEndToEnd drives the in-process multi-partition service:
// NDJSON ingest through the coordinator (durable per-partition stores),
// /v1 answers bit-identical to a single-node pass, cached repeats with
// zero shard folds, and a degradation-aware /healthz.
func TestClusterModeEndToEnd(t *testing.T) {
	s, ts, locals := newClusterTestServer(t, 3)

	gen, err := synth.NewGenerator(synth.DefaultConfig(500, 11, 12))
	if err != nil {
		t.Fatal(err)
	}
	tweets, err := gen.GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/ingest", "application/x-ndjson", corpusNDJSON(t, tweets))
	if err != nil {
		t.Fatal(err)
	}
	var ing map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&ing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || int(ing["ingested"].(float64)) != len(tweets) {
		t.Fatalf("cluster ingest: status %d body %v, want 202", resp.StatusCode, ing)
	}

	// Every record is durable on exactly one partition's store.
	var stored int64
	for _, l := range locals {
		stored += l.Store().Count()
	}
	if stored != int64(len(tweets)) {
		t.Fatalf("partition stores hold %d records, want %d", stored, len(tweets))
	}

	// /v1/population via scatter-gather equals the single-node answer,
	// bit for bit at the Result level.
	sorted := append([]tweet.Tweet(nil), tweets...)
	sort.Sort(tweet.ByUserTime(sorted))
	study := core.NewStudyWithOptions(core.SliceSource(sorted), core.StudyOptions{Workers: 1})
	clusterRes, cached, err := s.coord.Query(core.Request{})
	if err != nil || cached {
		t.Fatalf("cluster query: cached=%v err=%v", cached, err)
	}
	ref, err := study.Execute(context.Background(), core.Request{})
	if err != nil {
		t.Fatal(err)
	}
	if !testx.ResultsBitEqual(clusterRes, ref) {
		t.Fatal("cluster /v1 result diverges from single-node execute")
	}

	// HTTP surface: population non-empty and uncached, then cached on
	// repeat with zero additional shard folds.
	pop := fetchJSON(t, ts.URL+"/v1/population?scale=national")
	if pop["cached"].(bool) {
		t.Error("first population query reported cached")
	}
	folds := s.coord.PartialFetches()
	if !fetchJSON(t, ts.URL+"/v1/population?scale=national")["cached"].(bool) {
		t.Error("repeat population query not cached")
	}
	if got := s.coord.PartialFetches(); got != folds {
		t.Fatalf("warm repeat issued %d shard folds", got-folds)
	}

	health := fetchJSON(t, ts.URL+"/healthz")
	if health["status"].(string) != "ok" {
		t.Fatalf("healthz status = %v", health["status"])
	}
	if n := len(health["shards"].([]any)); n != 3 {
		t.Fatalf("healthz lists %d shards, want 3", n)
	}

	// Custom radii are not materialised by shard rings: a stated
	// capability gap (501), not a server fault (500).
	resp, err = http.Get(ts.URL + "/v1/population?scale=national&radius=30000")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("custom radius in cluster mode: status %d, want 501", resp.StatusCode)
	}
}

// TestIngestBodyLimit: a request body over -max-ingest-bytes answers 413
// (not 400, not OOM), in both single-node and cluster modes.
func TestIngestBodyLimit(t *testing.T) {
	s, ts := newLiveTestServer(t)
	s.maxIngestBytes = 512

	line := `{"id":1,"user":1,"ts":1,"lat":-33.8,"lon":151.2}` + "\n"
	big := strings.Repeat(line, 64)
	resp, err := http.Post(ts.URL+"/v1/ingest", "application/x-ndjson", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", resp.StatusCode)
	}
	// A within-bound upload still works on the same server.
	resp, err = http.Post(ts.URL+"/v1/ingest", "application/x-ndjson", strings.NewReader(line))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("within-bound ingest: status %d, want 200", resp.StatusCode)
	}

	sc, tsc, _ := newClusterTestServer(t, 2)
	sc.maxIngestBytes = 512
	resp, err = http.Post(tsc.URL+"/v1/ingest", "application/x-ndjson", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("cluster oversized body: status %d, want 413", resp.StatusCode)
	}
}

// downableShard wraps a Shard with an injectable outage: while down,
// every method answers cluster.ErrUnavailable, exactly like an HTTPShard
// whose node is unreachable.
type downableShard struct {
	inner cluster.Shard
	down  atomic.Bool
}

func (d *downableShard) err() error {
	return fmt.Errorf("%w: injected outage", cluster.ErrUnavailable)
}

func (d *downableShard) Deliver(sender string, seq uint64, slot int, frame []byte) error {
	if d.down.Load() {
		return d.err()
	}
	return d.inner.Deliver(sender, seq, slot, frame)
}

func (d *downableShard) Ingest(b *tweet.Batch) error {
	if d.down.Load() {
		return d.err()
	}
	return d.inner.Ingest(b)
}

func (d *downableShard) Flush() error {
	if d.down.Load() {
		return d.err()
	}
	return d.inner.Flush()
}

func (d *downableShard) Partials(ctx context.Context, req core.Request, slots []int) ([]*live.ShardPartial, error) {
	if d.down.Load() {
		return nil, d.err()
	}
	return d.inner.Partials(ctx, req, slots)
}

func (d *downableShard) Coverage(ctx context.Context, req core.Request, slots []int) (string, error) {
	if d.down.Load() {
		return "", d.err()
	}
	return d.inner.Coverage(ctx, req, slots)
}

func (d *downableShard) Export(slot int, fn func(*tweet.Batch) error) error {
	if d.down.Load() {
		return d.err()
	}
	return d.inner.Export(slot, fn)
}

func (d *downableShard) Health() (cluster.ShardHealth, error) {
	if d.down.Load() {
		return cluster.ShardHealth{}, d.err()
	}
	return d.inner.Health()
}

// TestDegradedReadUnavailable is the degraded-read contract on the HTTP
// surface: with a user-range's only replica down, /v1/population and
// /v1/flows answer 503 with a Retry-After header and a JSON body naming
// the missing user-hash ranges — never a silent partial answer.
func TestDegradedReadUnavailable(t *testing.T) {
	var shards []cluster.Shard
	var flaky []*downableShard
	for i := 0; i < 2; i++ {
		inner, err := cluster.NewLocalShard(nil, live.Options{BucketWidth: time.Hour})
		if err != nil {
			t.Fatal(err)
		}
		d := &downableShard{inner: inner}
		flaky = append(flaky, d)
		shards = append(shards, d)
	}
	coord, err := cluster.NewCoordinator(shards, cluster.CoordinatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })
	s := newServer(nil, 0)
	s.coord = coord
	ts := httptest.NewServer(s.clusterRoutes())
	t.Cleanup(ts.Close)

	gen, err := synth.NewGenerator(synth.DefaultConfig(400, 21, 22))
	if err != nil {
		t.Fatal(err)
	}
	tweets, err := gen.GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/ingest", "application/x-ndjson", corpusNDJSON(t, tweets))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest: status %d, want 202", resp.StatusCode)
	}
	if err := coord.Flush(); err != nil {
		t.Fatal(err)
	}

	// Healthy baseline first, so the 503s below are the outage, not a
	// broken pipeline.
	for _, path := range []string{"/v1/population?scale=national", "/v1/flows?scale=national"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("healthy GET %s: status %d", path, resp.StatusCode)
		}
	}

	// With R == 1, shard 0's slots have no surviving replica.
	flaky[0].down.Store(true)
	for _, path := range []string{"/v1/population?scale=national", "/v1/flows?scale=national"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("degraded GET %s: status %d, want 503 (body %v)", path, resp.StatusCode, body)
		}
		if ra := resp.Header.Get("Retry-After"); ra != "5" {
			t.Fatalf("degraded GET %s: Retry-After = %q, want \"5\"", path, ra)
		}
		ranges, ok := body["user_ranges"].([]any)
		if !ok || len(ranges) == 0 {
			t.Fatalf("degraded GET %s: body names no user ranges: %v", path, body)
		}
	}

	// Recovery heals reads without operator action.
	flaky[0].down.Store(false)
	resp, err = http.Get(ts.URL + "/v1/population?scale=national")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recovered GET: status %d, want 200", resp.StatusCode)
	}
}

// TestIngestLineLimit: one NDJSON line beyond the reader's 1 MiB bound
// answers 413 — an adversarial single-line upload cannot buffer the
// service out of memory.
func TestIngestLineLimit(t *testing.T) {
	_, ts := newLiveTestServer(t)
	long := `{"id":1,"user":1,"ts":1,"lat":-33.8,"lon":151.2,"pad":"` +
		strings.Repeat("x", 1<<20) + `"}` + "\n"
	resp, err := http.Post(ts.URL+"/v1/ingest", "application/x-ndjson", strings.NewReader(long))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("overlong line: status %d, want 413", resp.StatusCode)
	}
}
