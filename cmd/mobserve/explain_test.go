package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"geomob/internal/cluster"
	"geomob/internal/live"
	"geomob/internal/obs"
)

// fetchBytes fetches a URL and returns the raw body, failing on non-200.
func fetchBytes(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	return body
}

// TestExplainSideEffectFree is the acceptance gate for ?explain=1: the
// result payload is identical to the unexplained response, the cache
// counters move exactly as an unexplained request would move them, and
// the store sees no extra scans — the coverage walk is dry.
func TestExplainSideEffectFree(t *testing.T) {
	s, ts := newLiveTestServer(t)
	ingestNDJSON(t, ts.URL, genTweets(t, 300, 21, 22))

	const q = "/v1/stats"
	_ = fetchBytes(t, ts.URL+q)      // cold miss computes the entry
	plain := fetchBytes(t, ts.URL+q) // warm hit pins the cached bytes
	hits0, misses0 := s.cache.Stats()
	scans0 := s.store.ScanCount()
	builds0 := s.agg.Builds()

	explained := fetchBytes(t, ts.URL+q+"?explain=1")

	hits1, misses1 := s.cache.Stats()
	if hits1 != hits0+1 || misses1 != misses0 {
		t.Errorf("explain moved cache counters hits %d->%d misses %d->%d; want exactly one hit", hits0, hits1, misses0, misses1)
	}
	if got := s.store.ScanCount(); got != scans0 {
		t.Errorf("explain caused %d store scans", got-scans0)
	}
	if got := s.agg.Builds(); got != builds0 {
		t.Errorf("explain caused %d bucket builds", got-builds0)
	}

	var pm, em map[string]any
	if err := json.Unmarshal(plain, &pm); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(explained, &em); err != nil {
		t.Fatal(err)
	}
	ex, ok := em["explain"].(map[string]any)
	if !ok {
		t.Fatalf("no explain block in %s", explained)
	}
	delete(em, "explain")
	if !reflect.DeepEqual(pm, em) {
		t.Errorf("explain response differs from plain beyond the explain key:\nplain: %s\nexplained: %s", plain, explained)
	}

	cov, ok := ex["coverage"].(map[string]any)
	if !ok {
		t.Fatalf("explain block has no coverage: %v", ex)
	}
	if b, _ := cov["buckets"].(float64); b < 1 {
		t.Errorf("coverage.buckets = %v, want >= 1", cov["buckets"])
	}
	cache, ok := ex["cache"].(map[string]any)
	if !ok {
		t.Fatalf("explain block has no cache section: %v", ex)
	}
	if cache["source"] != "bucket_fold" || cache["hit"] != true {
		t.Errorf("cache disposition = %v, want bucket_fold hit", cache)
	}
	if _, ok := cache["coverage_key"].(string); !ok {
		t.Errorf("cache disposition missing coverage_key: %v", cache)
	}
	if tid, _ := ex["trace_id"].(string); tid == "" {
		t.Errorf("explain block missing trace_id: %v", ex)
	}
	if _, ok := ex["plan"].(map[string]any); !ok {
		t.Errorf("explain block missing plan: %v", ex)
	}

	// And the explain'd request left no residue: the next plain fetch is
	// byte-identical to the one before it.
	again := fetchBytes(t, ts.URL+q)
	if string(again) != string(plain) {
		t.Errorf("plain response changed after an explain'd request:\nbefore: %s\nafter: %s", plain, again)
	}
}

// TestExplainClusterBlock checks the coordinator's explain section: a
// miss computed by the explain'd request carries the per-shard fold
// breakdown; a warm repeat reports topology but no shard folds.
func TestExplainClusterBlock(t *testing.T) {
	_, ts, _ := newClusterTestServer(t, 3)
	ingestNDJSON(t, ts.URL, genTweets(t, 400, 23, 24))

	const q = "/v1/population?scale=national&explain=1"
	cold := fetchBytes(t, ts.URL+q)
	var cm map[string]any
	if err := json.Unmarshal(cold, &cm); err != nil {
		t.Fatal(err)
	}
	ex, ok := cm["explain"].(map[string]any)
	if !ok {
		t.Fatalf("no explain block in %s", cold)
	}
	cl, ok := ex["cluster"].(map[string]any)
	if !ok {
		t.Fatalf("no cluster section in explain: %v", ex)
	}
	if m, _ := cl["members"].(float64); m != 3 {
		t.Errorf("cluster.members = %v, want 3", cl["members"])
	}
	if rv, _ := cl["ring_version"].(string); rv == "" {
		t.Errorf("cluster.ring_version empty: %v", cl)
	}
	shards, ok := cl["shards"].([]any)
	if !ok || len(shards) == 0 {
		t.Fatalf("cold explain'd miss carries no shard folds: %v", cl)
	}
	var rows float64
	for _, sh := range shards {
		m := sh.(map[string]any)
		if m["member"] == "" {
			t.Errorf("shard fragment without member name: %v", m)
		}
		r, _ := m["rows"].(float64)
		rows += r
		if _, ok := m["coverage"].(map[string]any); !ok {
			t.Errorf("shard fragment without coverage: %v", m)
		}
	}
	if rows <= 0 {
		t.Errorf("shard rows sum to %v, want > 0", rows)
	}
	if _, ok := ex["coverage"].(map[string]any); !ok {
		t.Errorf("cluster explain missing merged coverage: %v", ex)
	}
	cache, _ := ex["cache"].(map[string]any)
	if fp, _ := cache["coverage_fingerprint"].(string); fp == "" {
		t.Errorf("cache section missing coverage_fingerprint: %v", cache)
	}

	warm := fetchBytes(t, ts.URL+q)
	var wm map[string]any
	if err := json.Unmarshal(warm, &wm); err != nil {
		t.Fatal(err)
	}
	wex, _ := wm["explain"].(map[string]any)
	wcl, ok := wex["cluster"].(map[string]any)
	if !ok {
		t.Fatalf("warm explain lost the cluster section: %v", wex)
	}
	if _, has := wcl["shards"]; has {
		t.Errorf("cache-hit explain reports shard folds: %v", wcl)
	}
	wcache, _ := wex["cache"].(map[string]any)
	if wcache["hit"] != true {
		t.Errorf("warm repeat not a cache hit: %v", wcache)
	}
}

// newFederatedCluster boots two real shard nodes over HTTP, each serving
// the shard API plus /metrics like the -cluster-shard binary does, and a
// coordinator-mode server in front of them.
func newFederatedCluster(t *testing.T) (*httptest.Server, []*httptest.Server) {
	t.Helper()
	var shards []cluster.Shard
	var nodes []*httptest.Server
	for i := 0; i < 2; i++ {
		local, err := cluster.NewLocalShard(nil, live.Options{BucketWidth: time.Hour})
		if err != nil {
			t.Fatal(err)
		}
		mux := http.NewServeMux()
		mux.Handle("/", cluster.NewNode(local, cluster.NodeOptions{}))
		mux.Handle("GET /metrics", obs.Handler(obs.Def))
		srv := httptest.NewServer(mux)
		t.Cleanup(srv.Close)
		nodes = append(nodes, srv)
		shards = append(shards, cluster.NewHTTPShard(srv.URL, srv.Client()))
	}
	coord, err := cluster.NewCoordinator(shards, cluster.CoordinatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })
	s := newServer(nil, 0)
	s.coord = coord
	ts := httptest.NewServer(s.clusterRoutes())
	t.Cleanup(ts.Close)
	return ts, nodes
}

// checkExposition asserts every line of a metrics body is a comment or a
// sample with a parseable value, and returns the sample keys.
func checkExposition(t *testing.T, body string) map[string]string {
	t.Helper()
	samples := map[string]string{}
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i <= 0 {
			t.Fatalf("unparseable sample %q", line)
		}
		samples[line[:i]] = line[i+1:]
	}
	return samples
}

// TestMetricsClusterFederation: /metrics/cluster merges both members'
// expositions under node labels, and a dead member degrades to
// geomob_member_up{node=...} 0 with the output still valid.
func TestMetricsClusterFederation(t *testing.T) {
	ts, nodes := newFederatedCluster(t)

	body := string(fetchBytes(t, ts.URL+"/metrics/cluster"))
	samples := checkExposition(t, body)
	for _, want := range []string{`geomob_member_up{node="member-000"}`, `geomob_member_up{node="member-001"}`} {
		if samples[want] != "1" {
			t.Errorf("%s = %q, want 1\n%s", want, samples[want], body)
		}
	}
	// Every remote series carries a node label.
	for k := range samples {
		if !strings.Contains(k, `node="`) {
			t.Errorf("federated sample without node label: %q", k)
		}
	}

	// Kill member 1 and scrape again: partial output, down marker, no error.
	nodes[1].Close()
	body = string(fetchBytes(t, ts.URL+"/metrics/cluster"))
	samples = checkExposition(t, body)
	if samples[`geomob_member_up{node="member-000"}`] != "1" {
		t.Errorf("surviving member not up:\n%s", body)
	}
	if samples[`geomob_member_up{node="member-001"}`] != "0" {
		t.Errorf("dead member not marked down:\n%s", body)
	}
	if samples[`geomob_member_scrape_errors{node="member-001"}`] != "1" {
		t.Errorf("dead member scrape error not counted:\n%s", body)
	}
	found := false
	for k := range samples {
		if strings.Contains(k, `node="member-000"`) && !strings.HasPrefix(k, "geomob_member_") {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("no surviving-member series in degraded scrape:\n%s", body)
	}
}

// TestTraceStoreEndpoints drives /debug/traces end to end: completed
// requests land in the ring, the list is newest-first, the detail view
// resolves the ID the response header carried, and a miss is a 404.
func TestTraceStoreEndpoints(t *testing.T) {
	_, ts := newLiveTestServer(t)
	ingestNDJSON(t, ts.URL, genTweets(t, 150, 25, 26))

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	tid := resp.Header.Get(obs.TraceHeader)
	if tid == "" {
		t.Fatal("query response carries no trace header")
	}

	list := fetchJSON(t, ts.URL+"/debug/traces")
	if n, _ := list["retained"].(float64); n < 2 { // ingest + stats
		t.Errorf("retained = %v, want >= 2", list["retained"])
	}
	traces, ok := list["traces"].([]any)
	if !ok || len(traces) < 2 {
		t.Fatalf("trace list: %v", list)
	}
	newest := traces[0].(map[string]any)
	if newest["id"] != tid || newest["endpoint"] != "/v1/stats" {
		t.Errorf("newest trace = %v, want id %s endpoint /v1/stats", newest, tid)
	}

	detail := fetchJSON(t, ts.URL+"/debug/traces/"+tid)
	if detail["id"] != tid {
		t.Errorf("detail id = %v, want %s", detail["id"], tid)
	}
	if _, ok := detail["total_ms"].(float64); !ok {
		t.Errorf("detail missing total_ms: %v", detail)
	}

	r404, err := http.Get(ts.URL + "/debug/traces/deadbeefdeadbeef")
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, r404.Body)
	r404.Body.Close()
	if r404.StatusCode != http.StatusNotFound {
		t.Errorf("unknown trace: status %d, want 404", r404.StatusCode)
	}

	rbad, err := http.Get(ts.URL + "/debug/traces?limit=zero")
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, rbad.Body)
	rbad.Body.Close()
	if rbad.StatusCode != http.StatusBadRequest {
		t.Errorf("bad limit: status %d, want 400", rbad.StatusCode)
	}
}

// TestExplainConcurrentWithIngest hammers ?explain=1 reads against
// concurrent ingest batches — meaningful chiefly under -race, where any
// unsynchronised explain-path read of the ring or trace store fails.
func TestExplainConcurrentWithIngest(t *testing.T) {
	_, ts := newLiveTestServer(t)
	tweets := genTweets(t, 200, 27, 28)
	ingestNDJSON(t, ts.URL, tweets)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + "/v1/stats?explain=1")
				if err != nil {
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	for i := 0; i < 3; i++ {
		ingestNDJSON(t, ts.URL, tweets)
		fetchJSON(t, ts.URL+"/debug/traces?limit=5")
	}
	close(stop)
	wg.Wait()
}
