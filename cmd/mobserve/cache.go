package main

import (
	"fmt"
	"sync"

	"geomob/internal/core"
)

// maxSnapshots bounds the per-generation entry count. Distinct windowed
// requests are unbounded, so the map resets wholesale when full — simple,
// and the recompute cost is one streaming pass.
const maxSnapshots = 128

// snapshotCache memoises completed Study executions keyed on the
// canonical request (core.Request.Key) and the store generation
// (tweetdb.Store.Generation). The sharded pipeline's merge contract
// (DESIGN.md §4) makes the cached value exact: a pass over an unchanged
// segment set is deterministic, so the merged observer state from one
// completed pass answers every repeated request until the segment set
// changes. Invalidation is wholesale — the first lookup under a new
// generation drops every snapshot of the old one.
type snapshotCache struct {
	mu      sync.Mutex
	gen     uint64
	entries map[string]*snapshot
}

// snapshot is one memoised execution; ready closes once res/err are set,
// so concurrent requests for the same key wait instead of rescanning.
type snapshot struct {
	ready chan struct{}
	res   *core.Result
	err   error
}

func newSnapshotCache() *snapshotCache {
	return &snapshotCache{entries: map[string]*snapshot{}}
}

// get returns the result for the current generation and key, running
// compute at most once per generation. genFn is resolved under the cache
// lock, in the same critical section that inserts the entry, so a slow
// request can never wipe the cache with a generation it read before a
// concurrent append (a compute may still observe a segment set fresher
// than its key — never staler — which self-heals at the next lookup).
// cached reports whether the result was served without invoking compute.
// Failed computations are not kept: the entry is dropped so the next
// request retries — a cancelled or panicking pass must not poison the
// key for everyone else.
func (c *snapshotCache) get(genFn func() uint64, key string, compute func() (*core.Result, error)) (res *core.Result, cached bool, err error) {
	c.mu.Lock()
	if gen := genFn(); c.gen != gen {
		c.gen = gen
		c.entries = map[string]*snapshot{}
	}
	if e, ok := c.entries[key]; ok {
		c.mu.Unlock()
		<-e.ready
		return e.res, true, e.err
	}
	if len(c.entries) >= maxSnapshots {
		c.entries = map[string]*snapshot{}
	}
	e := &snapshot{ready: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()

	// ready must close and failed entries must be dropped even if
	// compute panics: net/http recovers only the panicking handler's
	// goroutine, and a poisoned entry would block every later request
	// for this key forever.
	defer func() {
		if r := recover(); r != nil {
			e.res, e.err = nil, fmt.Errorf("snapshot computation panicked: %v", r)
		}
		close(e.ready)
		if e.err != nil {
			c.mu.Lock()
			if c.entries[key] == e {
				delete(c.entries, key)
			}
			c.mu.Unlock()
		}
		res, cached, err = e.res, false, e.err
	}()
	e.res, e.err = compute()
	return e.res, false, e.err
}
