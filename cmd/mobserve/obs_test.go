package main

import (
	"bytes"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"geomob/internal/cluster"
	"geomob/internal/live"
	"geomob/internal/obs"
	"geomob/internal/synth"
	"geomob/internal/tweet"
)

// genTweets builds a small synthetic corpus.
func genTweets(t *testing.T, n int, s1, s2 uint64) []tweet.Tweet {
	t.Helper()
	gen, err := synth.NewGenerator(synth.DefaultConfig(n, s1, s2))
	if err != nil {
		t.Fatal(err)
	}
	tweets, err := gen.GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	return tweets
}

// ingestNDJSON posts the corpus through POST /v1/ingest.
func ingestNDJSON(t *testing.T, base string, tweets []tweet.Tweet) {
	t.Helper()
	resp, err := http.Post(base+"/v1/ingest", "application/x-ndjson", corpusNDJSON(t, tweets))
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest: status %d", resp.StatusCode)
	}
}

// scrapeMetrics fetches /metrics and validates the exposition format
// while parsing it: every sample line must carry a parseable float and
// resolve (directly or via a histogram _bucket/_sum/_count suffix) to a
// family announced by a # TYPE header with a legal type. Returns the
// samples keyed `name` or `name{labels}` plus the family→type map.
func scrapeMetrics(t *testing.T, base string) (map[string]float64, map[string]string) {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("GET /metrics: Content-Type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples := map[string]float64{}
	types := map[string]string{}
	for _, line := range strings.Split(string(body), "\n") {
		switch {
		case line == "" || strings.HasPrefix(line, "# HELP "):
			continue
		case strings.HasPrefix(line, "# TYPE "):
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("bad TYPE line %q", line)
			}
			switch f[3] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("illegal type in %q", line)
			}
			types[f[2]] = f[3]
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparseable sample %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		key := line[:i]
		samples[key] = v
		name := key
		if j := strings.IndexByte(name, '{'); j >= 0 {
			name = name[:j]
		}
		fam := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, suf)
			if trimmed != name && types[trimmed] == "histogram" {
				fam = trimmed
			}
		}
		if _, ok := types[fam]; !ok {
			t.Fatalf("sample %q has no TYPE header", line)
		}
	}
	return samples, types
}

// checkBucketsMonotone asserts the family's cumulative buckets are
// non-decreasing in le order within every label set.
func checkBucketsMonotone(t *testing.T, samples map[string]float64, family string) {
	t.Helper()
	type bkt struct {
		le float64
		v  float64
	}
	series := map[string][]bkt{}
	for k, v := range samples {
		if !strings.HasPrefix(k, family+"_bucket{") {
			continue
		}
		j := strings.Index(k, `le="`)
		if j < 0 {
			t.Fatalf("bucket sample without le: %q", k)
		}
		end := strings.IndexByte(k[j+4:], '"')
		leRaw := k[j+4 : j+4+end]
		le := float64(0)
		if leRaw == "+Inf" {
			le = 1e308
		} else {
			f, err := strconv.ParseFloat(leRaw, 64)
			if err != nil {
				t.Fatalf("bad le %q in %q", leRaw, k)
			}
			le = f
		}
		ident := k[:j] + k[j+4+end:]
		series[ident] = append(series[ident], bkt{le, v})
	}
	if len(series) == 0 {
		t.Fatalf("no %s_bucket series found", family)
	}
	for ident, bs := range series {
		sort.Slice(bs, func(i, j int) bool { return bs[i].le < bs[j].le })
		for i := 1; i < len(bs); i++ {
			if bs[i].v < bs[i-1].v {
				t.Fatalf("%s buckets not cumulative at le=%g: %g < %g", ident, bs[i].le, bs[i].v, bs[i-1].v)
			}
		}
	}
}

// TestHealthzShape pins the /healthz JSON contract: the registry-backed
// rewrite must keep every pre-existing key (plus the build block).
func TestHealthzShape(t *testing.T) {
	_, ts := newLiveTestServer(t)
	corpus := genTweets(t, 200, 7, 8)
	ingestNDJSON(t, ts.URL, corpus)
	fetchJSON(t, ts.URL+"/v1/stats") // populate the query latency histogram
	body := fetchJSON(t, ts.URL+"/healthz")
	for _, k := range []string{"status", "tweets", "generation", "scans", "cache", "live", "build", "latency"} {
		if _, ok := body[k]; !ok {
			t.Errorf("healthz missing key %q: %v", k, body)
		}
	}
	if body["status"] != "ok" {
		t.Errorf("status = %v", body["status"])
	}
	if got := body["tweets"].(float64); got != float64(len(corpus)) {
		t.Errorf("tweets = %v, want %d", got, len(corpus))
	}
	cache, ok := body["cache"].(map[string]any)
	if !ok {
		t.Fatalf("cache block: %v", body["cache"])
	}
	for _, k := range []string{"hits", "misses"} {
		if _, ok := cache[k]; !ok {
			t.Errorf("cache block missing %q", k)
		}
	}
	lv, ok := body["live"].(map[string]any)
	if !ok {
		t.Fatalf("live block: %v", body["live"])
	}
	for _, k := range []string{"buckets", "width", "ingested", "builds", "rollups"} {
		if _, ok := lv[k]; !ok {
			t.Errorf("live block missing %q", k)
		}
	}
	bld, ok := body["build"].(map[string]any)
	if !ok {
		t.Fatalf("build block: %v", body["build"])
	}
	for _, k := range []string{"version", "revision", "go", "uptime_seconds"} {
		if _, ok := bld[k]; !ok {
			t.Errorf("build block missing %q", k)
		}
	}
	lat, ok := body["latency"].(map[string]any)
	if !ok {
		t.Fatalf("latency block: %v", body["latency"])
	}
	for _, k := range []string{"query", "stages"} {
		if _, ok := lat[k]; !ok {
			t.Errorf("latency block missing %q", k)
		}
	}
	query, _ := lat["query"].(map[string]any)
	for _, ep := range []string{"/v1/stats", "/v1/population", "/v1/models", "/v1/flows", "ingest"} {
		qs, ok := query[ep].(map[string]any)
		if !ok {
			t.Errorf("latency.query missing endpoint %q: %v", ep, query)
			continue
		}
		for _, k := range []string{"p50_ms", "p95_ms", "p99_ms"} {
			if _, ok := qs[k].(float64); !ok {
				t.Errorf("latency.query[%q] missing %q: %v", ep, k, qs)
			}
		}
	}
	// The /v1/stats request above observed into its histogram, so its
	// quantiles must be positive; never-hit endpoints report zero.
	if q, _ := query["/v1/stats"].(map[string]any); q != nil {
		if p50, _ := q["p50_ms"].(float64); p50 <= 0 {
			t.Errorf("latency.query[/v1/stats].p50_ms = %v, want > 0", q["p50_ms"])
		}
	}
}

// TestMetricsEndToEnd scrapes /metrics around an ingest + query cycle:
// the exposition stays parseable, ingest and query series move by the
// expected amounts, histogram buckets are cumulative, and no counter
// ever decreases.
func TestMetricsEndToEnd(t *testing.T) {
	_, ts := newLiveTestServer(t)
	before, beforeTypes := scrapeMetrics(t, ts.URL)

	tweets := genTweets(t, 300, 9, 10)
	ingestNDJSON(t, ts.URL, tweets)
	fetchJSON(t, ts.URL+"/v1/population?scale=national")
	fetchJSON(t, ts.URL+"/v1/population?scale=national") // warm repeat → cache hit

	after, _ := scrapeMetrics(t, ts.URL)

	if got := after["geomob_ingest_records_total"] - before["geomob_ingest_records_total"]; got < float64(len(tweets)) {
		t.Errorf("geomob_ingest_records_total moved by %g, want >= %d", got, len(tweets))
	}
	durCount := `geomob_query_duration_seconds_count{endpoint="/v1/population"}`
	if after[durCount]-before[durCount] < 2 {
		t.Errorf("%s moved by %g, want >= 2", durCount, after[durCount]-before[durCount])
	}
	found := false
	for k := range after {
		if strings.HasPrefix(k, `geomob_query_duration_seconds_bucket{endpoint="/v1/population"`) {
			found = true
			break
		}
	}
	if !found {
		t.Error("no geomob_query_duration_seconds_bucket series for /v1/population")
	}
	if after["geomob_cache_hits"] < 1 {
		t.Errorf("geomob_cache_hits = %g, want >= 1", after["geomob_cache_hits"])
	}
	checkBucketsMonotone(t, after, "geomob_query_duration_seconds")
	checkBucketsMonotone(t, after, "geomob_ingest_flush_seconds")

	// Counters only ever go up.
	for k, v := range before {
		name := k
		if j := strings.IndexByte(name, '{'); j >= 0 {
			name = name[:j]
		}
		fam := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, suf)
			if trimmed != name && beforeTypes[trimmed] == "histogram" {
				fam = trimmed
			}
		}
		monotone := beforeTypes[fam] == "counter" || beforeTypes[fam] == "histogram"
		if av, ok := after[k]; ok && monotone && av < v {
			t.Errorf("series %s decreased: %g -> %g", k, v, av)
		}
	}
}

// TestMetricsConcurrentScrape hammers /metrics while batches ingest —
// meaningful chiefly under -race, where any unsynchronised registry
// read fails the run.
func TestMetricsConcurrentScrape(t *testing.T) {
	_, ts := newLiveTestServer(t)
	tweets := genTweets(t, 150, 11, 12)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + "/metrics")
				if err != nil {
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	for i := 0; i < 3; i++ {
		ingestNDJSON(t, ts.URL, tweets)
		fetchJSON(t, ts.URL+"/healthz")
	}
	close(stop)
	wg.Wait()
	scrapeMetrics(t, ts.URL)
}

// TestSlowQueryLog drops the threshold to one nanosecond so every query
// logs, and asserts the line is structured JSON carrying the caller's
// trace ID and a stage breakdown — and that the trace ID echoes on the
// response header.
func TestSlowQueryLog(t *testing.T) {
	s, ts := newLiveTestServer(t)
	ingestNDJSON(t, ts.URL, genTweets(t, 200, 13, 14))
	s.slowQuery = time.Nanosecond

	var buf bytes.Buffer
	log.SetOutput(&buf)
	defer log.SetOutput(os.Stderr)

	req, err := http.NewRequest("GET", ts.URL+"/v1/stats", nil)
	if err != nil {
		t.Fatal(err)
	}
	const tid = "feedbeef00112233"
	req.Header.Set(obs.TraceHeader, tid)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(obs.TraceHeader); got != tid {
		t.Errorf("response trace header = %q, want %q", got, tid)
	}
	line := buf.String()
	for _, want := range []string{`"slow_query":true`, `"trace_id":"` + tid + `"`, `"stages":[`, `"endpoint":"/v1/stats"`} {
		if !strings.Contains(line, want) {
			t.Errorf("slow-query log missing %s:\n%s", want, line)
		}
	}
}

// TestDegraded503CarriesTraceID: an unavailable cluster read answers
// 503 with the caller's trace ID in the JSON body, so the failure is
// correlatable with coordinator and shard logs.
func TestDegraded503CarriesTraceID(t *testing.T) {
	var shards []cluster.Shard
	var flaky []*downableShard
	for i := 0; i < 2; i++ {
		inner, err := cluster.NewLocalShard(nil, live.Options{BucketWidth: time.Hour})
		if err != nil {
			t.Fatal(err)
		}
		d := &downableShard{inner: inner}
		flaky = append(flaky, d)
		shards = append(shards, d)
	}
	coord, err := cluster.NewCoordinator(shards, cluster.CoordinatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })
	s := newServer(nil, 0)
	s.coord = coord
	ts := httptest.NewServer(s.clusterRoutes())
	t.Cleanup(ts.Close)

	ingestNDJSON(t, ts.URL, genTweets(t, 300, 15, 16))
	if err := coord.Flush(); err != nil {
		t.Fatal(err)
	}

	// With R == 1, shard 0's slots have no surviving replica.
	flaky[0].down.Store(true)
	req, err := http.NewRequest("GET", ts.URL+"/v1/population?scale=national", nil)
	if err != nil {
		t.Fatal(err)
	}
	const tid = "0123456789abcdef"
	req.Header.Set(obs.TraceHeader, tid)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body := map[string]any{}
	dec := json.NewDecoder(resp.Body)
	if err := dec.Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 (body %v)", resp.StatusCode, body)
	}
	if got, _ := body["trace_id"].(string); got != tid {
		t.Fatalf("503 body trace_id = %q, want %q (body %v)", got, tid, body)
	}
}
