// EXPLAIN ANALYZE for the /v1 query endpoints (DESIGN.md §13): with
// ?explain=1 the response carries an "explain" block — plan, bucket
// coverage, cache disposition, recovery provenance, per-stage timings,
// and in cluster mode the per-shard breakdown — alongside the result,
// which stays byte-identical to an unexplained request. The explain
// machinery only observes: the carrier on the context collects what the
// layers record, and the one extra computation (the live ring's
// coverage walk) runs in counting-only dry mode.
package main

import (
	"context"
	"errors"
	"net/http"
	"time"

	"geomob/internal/cluster"
	"geomob/internal/core"
	"geomob/internal/live"
	"geomob/internal/obs"
)

// execV1 runs req through executeCached, honouring ?explain=1. The
// returned block is nil unless explain was requested and the execution
// succeeded; handlers attach it under the "explain" response key.
func (s *server) execV1(r *http.Request, req core.Request) (*core.Result, bool, map[string]any, error) {
	ctx := r.Context()
	if r.URL.Query().Get("explain") != "1" {
		res, cached, err := s.executeCached(ctx, req)
		return res, cached, nil, err
	}
	ex := obs.NewExplain()
	res, cached, err := s.executeCached(obs.WithExplain(ctx, ex), req)
	if err != nil {
		return res, cached, nil, err
	}
	return res, cached, s.explainBlock(ctx, req, ex), nil
}

// cachedGet is the snapshot-cache lookup of one executeCached path,
// recording the cache disposition (source, hit/miss, coverage key) into
// any explain carrier on ctx. The key and the computation are exactly
// what the unexplained path uses — recording happens after the fact.
func (s *server) cachedGet(ctx context.Context, key, source, ckey string, compute func() (*core.Result, error)) (*core.Result, bool, error) {
	res, hit, err := s.cache.Get(key, compute)
	if err == nil {
		disp := map[string]any{"source": source, "hit": hit}
		if ckey != "" {
			disp["coverage_key"] = ckey
		}
		obs.ExplainFrom(ctx).Set("cache", disp)
	}
	return res, hit, err
}

// explainBlock assembles the explain response block from the request
// plan, the live ring's dry coverage walk, the recovery provenance, the
// trace's stage timings, and whatever the execution layers recorded
// into the carrier.
func (s *server) explainBlock(ctx context.Context, req core.Request, ex *obs.Explain) map[string]any {
	blk := map[string]any{}
	if tr := obs.TraceFrom(ctx); tr != nil {
		blk["trace_id"] = tr.ID
		if st := tr.Stages(); len(st) > 0 {
			blk["stages"] = st
		}
	}
	if info, err := core.PlanRequest(req); err == nil {
		plan := map[string]any{"analyses": info.Analyses}
		if len(info.Scales) > 0 {
			plan["scales"] = info.Scales
			plan["radius_m"] = info.ScaleRadius
		}
		win := map[string]any{"from": "unbounded", "to": "unbounded"}
		if !req.From.IsZero() {
			win["from"] = req.From.UTC().Format(time.RFC3339)
		}
		if !req.To.IsZero() {
			win["to"] = req.To.UTC().Format(time.RFC3339)
		}
		plan["window"] = win
		blk["plan"] = plan
	}
	secs := ex.Sections()
	cacheSec, _ := secs["cache"].(map[string]any)
	if cacheSec == nil {
		cacheSec = map[string]any{}
	}
	if ce, ok := secs["cluster"].(cluster.ClusterExplain); ok {
		blk["cluster"] = ce
		cacheSec["coverage_fingerprint"] = ce.Fingerprint
		if len(ce.Shards) > 0 {
			var total live.FoldCoverage
			for _, sh := range ce.Shards {
				total.Merge(sh.Coverage)
			}
			blk["coverage"] = total
		}
	}
	blk["cache"] = cacheSec
	if s.agg != nil {
		// The dry coverage walk answers for hits and misses alike: the
		// coverage key in the cache key pins the served entry to exactly
		// the bucket revisions the walk sees now.
		switch cov, err := s.agg.ExplainCoverage(req); {
		case err == nil:
			blk["coverage"] = cov
		case errors.Is(err, live.ErrNotCovered):
			// Ring-scan fallback shapes have no bucket coverage; the
			// cache section's source already says ring_scan.
		}
	}
	if s.snaps != nil {
		blk["recovery"] = s.recovery
	}
	return blk
}
