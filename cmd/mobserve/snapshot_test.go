package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"geomob/internal/synth"
	"geomob/internal/tweet"
	"geomob/internal/tweetdb"
)

// postNDJSON ingests tweets through POST /v1/ingest and fails the test
// on anything but a clean 200.
func postNDJSON(t *testing.T, url string, tweets []tweet.Tweet) {
	t.Helper()
	var buf bytes.Buffer
	w := tweet.NewNDJSONWriter(&buf)
	for _, tw := range tweets {
		if err := w.Write(tw); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/ingest", "application/x-ndjson", &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
}

// TestSnapshotDrainRestartZeroReplay is the graceful-restart contract
// end to end: run live with a snapshot dir, ingest across a mid-stream
// snapshot commit, flush the final snapshot the drain path runs, and
// boot a second server over the same directories. The restart must
// restore every bucket from snapshot files — no full rescan, no tail
// replay, zero store scans — and answer /v1 byte-identically.
func TestSnapshotDrainRestartZeroReplay(t *testing.T) {
	dbDir, snapDir := t.TempDir(), t.TempDir()
	store, err := tweetdb.Open(dbDir)
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(store, 0)
	if err := s.enableLiveSnap(time.Hour, snapDir); err != nil {
		t.Fatal(err)
	}
	if err := s.initIngest(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.routes())

	gen, err := synth.NewGenerator(synth.DefaultConfig(800, 5, 6))
	if err != nil {
		t.Fatal(err)
	}
	tweets, err := gen.GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	cut := len(tweets) / 2
	postNDJSON(t, ts.URL, tweets[:cut])

	// Force a mid-stream commit, then keep ingesting: the final snapshot
	// below must cover the tail incrementally.
	resp, err := http.Post(ts.URL+"/v1/snapshot", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var mid map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&mid); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || mid["buckets"].(float64) <= 0 {
		t.Fatalf("POST /v1/snapshot: status %d body %v", resp.StatusCode, mid)
	}
	postNDJSON(t, ts.URL, tweets[cut:])

	stats1 := fetchJSON(t, ts.URL+"/v1/stats")
	pop1 := fetchJSON(t, ts.URL+"/v1/population?scale=state")

	// The drain flush main() runs after the listener stops.
	if _, err := s.snapshotNow(); err != nil {
		t.Fatalf("final snapshot: %v", err)
	}
	ts.Close()

	// Restart over the same store and snapshot dir.
	store2, err := tweetdb.Open(dbDir)
	if err != nil {
		t.Fatal(err)
	}
	s2 := newServer(store2, 0)
	if err := s2.enableLiveSnap(time.Hour, snapDir); err != nil {
		t.Fatal(err)
	}
	rec := s2.recovery
	if rec.FullRescan || rec.Restored == 0 || rec.Backfilled != 0 || rec.SnapErrors != 0 {
		t.Fatalf("restart recovery degraded: %+v", rec)
	}
	if rec.TailSegments != 0 || rec.TailRecords != 0 {
		t.Fatalf("graceful restart replayed a tail: %+v", rec)
	}
	if got := store2.ScanCount(); got != 0 {
		t.Fatalf("restart scanned the store %d times, want 0", got)
	}
	if err := s2.initIngest(); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.routes())
	defer ts2.Close()

	if stats2 := fetchJSON(t, ts2.URL+"/v1/stats"); !reflect.DeepEqual(stats1, stats2) {
		t.Errorf("/v1/stats diverged across restart:\n before %v\n after  %v", stats1, stats2)
	}
	if pop2 := fetchJSON(t, ts2.URL+"/v1/population?scale=state"); !reflect.DeepEqual(pop1, pop2) {
		t.Errorf("/v1/population diverged across restart:\n before %v\n after  %v", pop1, pop2)
	}
	if got := store2.ScanCount(); got != 0 {
		t.Fatalf("restarted /v1 answers scanned the store %d times, want 0", got)
	}

	health := fetchJSON(t, ts2.URL+"/healthz")
	snap, ok := health["snapshot"].(map[string]any)
	if !ok || snap["buckets"].(float64) <= 0 || snap["bytes"].(float64) <= 0 {
		t.Fatalf("healthz snapshot block missing or empty: %v", health["snapshot"])
	}
	if _, ok := snap["age_seconds"]; !ok {
		t.Error("healthz snapshot block lacks age_seconds")
	}
	recov, ok := health["recovery"].(map[string]any)
	if !ok || recov["restored"].(float64) <= 0 || recov["full_rescan"].(bool) {
		t.Fatalf("healthz recovery block wrong: %v", health["recovery"])
	}
	lv, ok := health["live"].(map[string]any)
	if !ok {
		t.Fatal("healthz missing live section")
	}
	if _, ok := lv["rollups"].([]any); !ok {
		t.Errorf("healthz live block lacks rollup tiers: %v", lv["rollups"])
	}
}
