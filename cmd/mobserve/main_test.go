package main

import (
	"encoding/json"
	"image/png"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"geomob/internal/synth"
	"geomob/internal/tweet"
	"geomob/internal/tweetdb"
)

// newTestServer builds a server over a small compacted store.
func newTestServer(t *testing.T) *server {
	t.Helper()
	store, err := tweetdb.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	gen, err := synth.NewGenerator(synth.DefaultConfig(800, 5, 6))
	if err != nil {
		t.Fatal(err)
	}
	tweets, err := gen.GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Append(tweets); err != nil {
		t.Fatal(err)
	}
	if err := store.Compact(); err != nil {
		t.Fatal(err)
	}
	return newServer(store, 0)
}

func TestHandleStats(t *testing.T) {
	s := newTestServer(t)
	rec := httptest.NewRecorder()
	s.handleStats(rec, httptest.NewRequest("GET", "/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body["tweets"].(float64) <= 0 {
		t.Errorf("tweets = %v", body["tweets"])
	}
	if body["segments"].(float64) <= 0 {
		t.Errorf("segments = %v", body["segments"])
	}
	if body["workers"].(float64) < 1 {
		t.Errorf("workers = %v, want >= 1", body["workers"])
	}
}

func TestHandleTweetsUserFilter(t *testing.T) {
	s := newTestServer(t)
	rec := httptest.NewRecorder()
	s.handleTweets(rec, httptest.NewRequest("GET", "/tweets?user=3&limit=5", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var tweets []map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &tweets); err != nil {
		t.Fatal(err)
	}
	if len(tweets) == 0 || len(tweets) > 5 {
		t.Fatalf("got %d tweets", len(tweets))
	}
	for _, tw := range tweets {
		if tw["user"].(float64) != 3 {
			t.Errorf("wrong user: %v", tw["user"])
		}
	}
}

func TestHandleTweetsTimeWindow(t *testing.T) {
	s := newTestServer(t)
	rec := httptest.NewRecorder()
	s.handleTweets(rec, httptest.NewRequest("GET",
		"/tweets?from=2013-10-01T00:00:00Z&to=2013-10-02T00:00:00Z&limit=100000", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var tweets []map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &tweets); err != nil {
		t.Fatal(err)
	}
	loMS := float64(1380585600000) // 2013-10-01 UTC in ms
	hiMS := loMS + 86400000
	for _, tw := range tweets {
		ts := tw["ts"].(float64)
		if ts < loMS || ts >= hiMS {
			t.Fatalf("tweet outside window: %v", ts)
		}
	}
}

func TestHandleTweetsBadInputs(t *testing.T) {
	s := newTestServer(t)
	for _, url := range []string{
		"/tweets?user=notanumber",
		"/tweets?from=yesterday",
		"/tweets?to=tomorrow",
		"/tweets?limit=0",
		"/tweets?limit=-3",
	} {
		rec := httptest.NewRecorder()
		s.handleTweets(rec, httptest.NewRequest("GET", url, nil))
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", url, rec.Code)
		}
	}
}

func TestHandleDensityPNG(t *testing.T) {
	s := newTestServer(t)
	rec := httptest.NewRecorder()
	s.handleDensity(rec, httptest.NewRequest("GET", "/density.png?nx=60&ny=48", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "image/png" {
		t.Errorf("content type %q", ct)
	}
	img, err := png.Decode(rec.Body)
	if err != nil {
		t.Fatalf("invalid png: %v", err)
	}
	if img.Bounds().Dx() != 60 || img.Bounds().Dy() != 48 {
		t.Errorf("dimensions %v", img.Bounds())
	}
}

func TestHandleFlows(t *testing.T) {
	s := newTestServer(t)
	for _, scale := range []string{"national", "state", "metropolitan", ""} {
		rec := httptest.NewRecorder()
		s.handleFlows(rec, httptest.NewRequest("GET", "/flows?scale="+scale, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("scale %q: status %d: %s", scale, rec.Code, rec.Body.String())
		}
		var body struct {
			Scale  string      `json:"scale"`
			Areas  []string    `json:"areas"`
			Flows  [][]float64 `json:"flows"`
			Total  float64     `json:"total"`
			Radius float64     `json:"radius"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatal(err)
		}
		if len(body.Areas) != 20 || len(body.Flows) != 20 {
			t.Errorf("scale %q: %d areas, %d flow rows", scale, len(body.Areas), len(body.Flows))
		}
		if body.Radius <= 0 {
			t.Errorf("scale %q: radius %v", scale, body.Radius)
		}
	}
	rec := httptest.NewRecorder()
	s.handleFlows(rec, httptest.NewRequest("GET", "/flows?scale=galactic", nil))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("unknown scale: status %d", rec.Code)
	}
}

// getJSON routes a request through the full mux and decodes the JSON body.
func getJSON(t *testing.T, s *server, url string) (int, map[string]any) {
	t.Helper()
	rec := httptest.NewRecorder()
	s.routes().ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
	var body map[string]any
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("%s: invalid JSON: %v", url, err)
		}
	}
	return rec.Code, body
}

func TestHandleHealthz(t *testing.T) {
	s := newTestServer(t)
	code, body := getJSON(t, s, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if body["status"] != "ok" {
		t.Errorf("status field = %v", body["status"])
	}
	if body["tweets"].(float64) <= 0 {
		t.Errorf("tweets = %v", body["tweets"])
	}
	if body["generation"] == "" {
		t.Error("generation missing")
	}
}

// TestHandleStatsEmptyStore covers the minTS == 0 epoch-sentinel fix: an
// empty store must omit the collection period instead of reporting
// 1970-01-01.
func TestHandleStatsEmptyStore(t *testing.T) {
	store, err := tweetdb.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(store, 0)
	code, body := getJSON(t, s, "/stats")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if _, ok := body["first"]; ok {
		t.Errorf("empty store reported first = %v", body["first"])
	}
	if _, ok := body["last"]; ok {
		t.Errorf("empty store reported last = %v", body["last"])
	}
	if body["tweets"].(float64) != 0 {
		t.Errorf("tweets = %v, want 0", body["tweets"])
	}
}

// TestHandleDensityBadParams: invalid grid dimensions are a 400, not a
// silent fallback to the defaults.
func TestHandleDensityBadParams(t *testing.T) {
	s := newTestServer(t)
	for _, url := range []string{
		"/density.png?nx=0",
		"/density.png?ny=-3",
		"/density.png?nx=notanumber",
		"/density.png?ny=2001",
	} {
		rec := httptest.NewRecorder()
		s.routes().ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", url, rec.Code)
		}
	}
}

func TestV1Stats(t *testing.T) {
	s := newTestServer(t)
	code, body := getJSON(t, s, "/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if body["users"].(float64) != 800 {
		t.Errorf("users = %v, want 800", body["users"])
	}
	if body["tweets"].(float64) < body["users"].(float64) {
		t.Errorf("tweets = %v below user count", body["tweets"])
	}
	if body["cached"] != false {
		t.Error("first request reported cached")
	}
	_, body2 := getJSON(t, s, "/v1/stats")
	if body2["cached"] != true {
		t.Error("repeated request not served from the snapshot cache")
	}
}

// TestV1StatsWindow: a windowed stats request only sees in-window tweets.
func TestV1StatsWindow(t *testing.T) {
	s := newTestServer(t)
	_, full := getJSON(t, s, "/v1/stats")
	code, windowed := getJSON(t, s,
		"/v1/stats?from=2013-10-01T00:00:00Z&to=2013-11-01T00:00:00Z")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if windowed["tweets"].(float64) >= full["tweets"].(float64) {
		t.Errorf("windowed tweets = %v, full = %v: window did not restrict",
			windowed["tweets"], full["tweets"])
	}
	first, last := windowed["first"].(string), windowed["last"].(string)
	if first < "2013-10-01" || last >= "2013-11-01" {
		t.Errorf("window not honoured: [%s, %s]", first, last)
	}
}

func TestV1Population(t *testing.T) {
	s := newTestServer(t)
	code, body := getJSON(t, s, "/v1/population?scale=metropolitan")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	areas := body["areas"].([]any)
	users := body["twitter_users"].([]any)
	if len(areas) == 0 || len(areas) != len(users) {
		t.Fatalf("%d areas, %d user counts", len(areas), len(users))
	}
	if body["c"].(float64) <= 0 {
		t.Errorf("rescaling factor c = %v", body["c"])
	}
	if body["radius"].(float64) <= 0 {
		t.Errorf("radius = %v", body["radius"])
	}
	// An explicit radius overrides the default and is reflected back.
	code, body = getJSON(t, s, "/v1/population?scale=metropolitan&radius=500")
	if code != http.StatusOK {
		t.Fatalf("radius=500: status %d", code)
	}
	if body["radius"].(float64) != 500 {
		t.Errorf("radius = %v, want 500", body["radius"])
	}
}

func TestV1Models(t *testing.T) {
	s := newTestServer(t)
	code, body := getJSON(t, s, "/v1/models?scale=national")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	fits := body["fits"].([]any)
	if len(fits) != 3 {
		t.Fatalf("%d fits, want 3 (gravity4, gravity2, radiation)", len(fits))
	}
	for _, f := range fits {
		fit := f.(map[string]any)
		if fit["name"] == "" || fit["metrics"] == nil {
			t.Errorf("incomplete fit: %v", fit)
		}
	}
	if body["total_flow"].(float64) <= 0 {
		t.Errorf("total_flow = %v", body["total_flow"])
	}
}

// TestV1FlowsSnapshotCache is the caching acceptance test: a repeated
// request on an unchanged store is answered without a single store scan,
// and appending to the store invalidates the snapshot.
func TestV1FlowsSnapshotCache(t *testing.T) {
	s := newTestServer(t)
	code, first := getJSON(t, s, "/v1/flows?scale=state")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if first["cached"] != false {
		t.Error("first request reported cached")
	}
	if len(first["areas"].([]any)) == 0 {
		t.Error("no areas in flow response")
	}
	scansAfterFirst := s.store.ScanCount()
	if scansAfterFirst == 0 {
		t.Fatal("first request did not scan the store")
	}

	code, second := getJSON(t, s, "/v1/flows?scale=state")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if second["cached"] != true {
		t.Error("repeated request not served from the snapshot cache")
	}
	if got := s.store.ScanCount(); got != scansAfterFirst {
		t.Errorf("repeated request scanned the store: %d scans, want %d", got, scansAfterFirst)
	}
	if !reflect.DeepEqual(first["flows"], second["flows"]) {
		t.Error("cached flows differ from the computed ones")
	}

	// A different request computes its own snapshot...
	_, national := getJSON(t, s, "/v1/flows?scale=national")
	if national["cached"] != false {
		t.Error("different request served from an unrelated snapshot")
	}
	// ...and appending to the store moves the generation, invalidating
	// every snapshot. The new user id sorts after all existing ones so
	// the compacted global order survives the append.
	if err := s.store.Append([]tweet.Tweet{
		{ID: 1 << 40, UserID: 1 << 40, TS: 1380600000000, Lat: -33.87, Lon: 151.21},
	}); err != nil {
		t.Fatal(err)
	}
	code, third := getJSON(t, s, "/v1/flows?scale=state")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if third["cached"] != true && third["cached"] != false {
		t.Fatal("missing cached field")
	}
	if third["cached"] == true {
		t.Error("stale snapshot served after the store changed")
	}
}

func TestV1BadParams(t *testing.T) {
	s := newTestServer(t)
	for _, url := range []string{
		"/v1/flows?scale=galactic",
		"/v1/population?scale=metropolitan&radius=-5",
		"/v1/population?scale=metropolitan&radius=abc",
		"/v1/models?from=notatime",
		"/v1/stats?from=2014-01-01T00:00:00Z&to=2013-01-01T00:00:00Z",
		// Scale-independent endpoints reject scale/radius instead of
		// silently ignoring them (and fragmenting the cache keys).
		"/v1/stats?scale=state",
		"/v1/stats?radius=500",
		// ParseFloat accepts NaN/Inf spellings; the validation must not.
		"/v1/population?scale=metropolitan&radius=NaN",
		"/v1/flows?scale=state&radius=%2BInf",
	} {
		rec := httptest.NewRecorder()
		s.routes().ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", url, rec.Code)
		}
	}
}

// TestV1EmptyWindow: a window containing no tweets is a 404 on every
// endpoint, not an epoch-dated answer, a model-fit 500, or a stale cache
// entry.
func TestV1EmptyWindow(t *testing.T) {
	s := newTestServer(t)
	for _, url := range []string{
		"/v1/stats?from=1999-01-01T00:00:00Z&to=1999-02-01T00:00:00Z",
		"/v1/population?scale=state&from=1999-01-01T00:00:00Z&to=1999-02-01T00:00:00Z",
		"/v1/models?scale=state&from=1999-01-01T00:00:00Z&to=1999-02-01T00:00:00Z",
		"/v1/flows?scale=state&from=1999-01-01T00:00:00Z&to=1999-02-01T00:00:00Z",
	} {
		rec := httptest.NewRecorder()
		s.routes().ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		if rec.Code != http.StatusNotFound {
			t.Errorf("%s: status %d, want 404", url, rec.Code)
		}
	}
}
