package main

import (
	"encoding/json"
	"image/png"
	"net/http"
	"net/http/httptest"
	"testing"

	"geomob/internal/synth"
	"geomob/internal/tweetdb"
)

// newTestServer builds a server over a small compacted store.
func newTestServer(t *testing.T) *server {
	t.Helper()
	store, err := tweetdb.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	gen, err := synth.NewGenerator(synth.DefaultConfig(800, 5, 6))
	if err != nil {
		t.Fatal(err)
	}
	tweets, err := gen.GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Append(tweets); err != nil {
		t.Fatal(err)
	}
	if err := store.Compact(); err != nil {
		t.Fatal(err)
	}
	return &server{store: store}
}

func TestHandleStats(t *testing.T) {
	s := newTestServer(t)
	rec := httptest.NewRecorder()
	s.handleStats(rec, httptest.NewRequest("GET", "/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body["tweets"].(float64) <= 0 {
		t.Errorf("tweets = %v", body["tweets"])
	}
	if body["segments"].(float64) <= 0 {
		t.Errorf("segments = %v", body["segments"])
	}
	if body["workers"].(float64) < 1 {
		t.Errorf("workers = %v, want >= 1", body["workers"])
	}
}

func TestHandleTweetsUserFilter(t *testing.T) {
	s := newTestServer(t)
	rec := httptest.NewRecorder()
	s.handleTweets(rec, httptest.NewRequest("GET", "/tweets?user=3&limit=5", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var tweets []map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &tweets); err != nil {
		t.Fatal(err)
	}
	if len(tweets) == 0 || len(tweets) > 5 {
		t.Fatalf("got %d tweets", len(tweets))
	}
	for _, tw := range tweets {
		if tw["user"].(float64) != 3 {
			t.Errorf("wrong user: %v", tw["user"])
		}
	}
}

func TestHandleTweetsTimeWindow(t *testing.T) {
	s := newTestServer(t)
	rec := httptest.NewRecorder()
	s.handleTweets(rec, httptest.NewRequest("GET",
		"/tweets?from=2013-10-01T00:00:00Z&to=2013-10-02T00:00:00Z&limit=100000", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var tweets []map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &tweets); err != nil {
		t.Fatal(err)
	}
	loMS := float64(1380585600000) // 2013-10-01 UTC in ms
	hiMS := loMS + 86400000
	for _, tw := range tweets {
		ts := tw["ts"].(float64)
		if ts < loMS || ts >= hiMS {
			t.Fatalf("tweet outside window: %v", ts)
		}
	}
}

func TestHandleTweetsBadInputs(t *testing.T) {
	s := newTestServer(t)
	for _, url := range []string{
		"/tweets?user=notanumber",
		"/tweets?from=yesterday",
		"/tweets?to=tomorrow",
		"/tweets?limit=0",
		"/tweets?limit=-3",
	} {
		rec := httptest.NewRecorder()
		s.handleTweets(rec, httptest.NewRequest("GET", url, nil))
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", url, rec.Code)
		}
	}
}

func TestHandleDensityPNG(t *testing.T) {
	s := newTestServer(t)
	rec := httptest.NewRecorder()
	s.handleDensity(rec, httptest.NewRequest("GET", "/density.png?nx=60&ny=48", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "image/png" {
		t.Errorf("content type %q", ct)
	}
	img, err := png.Decode(rec.Body)
	if err != nil {
		t.Fatalf("invalid png: %v", err)
	}
	if img.Bounds().Dx() != 60 || img.Bounds().Dy() != 48 {
		t.Errorf("dimensions %v", img.Bounds())
	}
}

func TestHandleFlows(t *testing.T) {
	s := newTestServer(t)
	for _, scale := range []string{"national", "state", "metropolitan", ""} {
		rec := httptest.NewRecorder()
		s.handleFlows(rec, httptest.NewRequest("GET", "/flows?scale="+scale, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("scale %q: status %d: %s", scale, rec.Code, rec.Body.String())
		}
		var body struct {
			Scale  string      `json:"scale"`
			Areas  []string    `json:"areas"`
			Flows  [][]float64 `json:"flows"`
			Total  float64     `json:"total"`
			Radius float64     `json:"radius"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatal(err)
		}
		if len(body.Areas) != 20 || len(body.Flows) != 20 {
			t.Errorf("scale %q: %d areas, %d flow rows", scale, len(body.Areas), len(body.Flows))
		}
		if body.Radius <= 0 {
			t.Errorf("scale %q: radius %v", scale, body.Radius)
		}
	}
	rec := httptest.NewRecorder()
	s.handleFlows(rec, httptest.NewRequest("GET", "/flows?scale=galactic", nil))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("unknown scale: status %d", rec.Code)
	}
}
