// mobstats prints the Table I dataset statistics for a tweet corpus read
// from a tweetdb store or an NDJSON file.
//
// Usage:
//
//	mobstats -db /tmp/tweets.db
//	mobstats -ndjson tweets.ndjson
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"

	"geomob/internal/core"
	"geomob/internal/experiments"
	"geomob/internal/report"
	"geomob/internal/tweet"
	"geomob/internal/tweetdb"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mobstats: ")

	var (
		dbDir  = flag.String("db", "", "tweetdb store directory")
		ndjson = flag.String("ndjson", "", "NDJSON tweet file")
	)
	flag.Parse()

	src, err := openSource(*dbDir, *ndjson)
	if err != nil {
		log.Fatal(err)
	}
	result, err := core.NewStudy(src).Run()
	if err != nil {
		log.Fatal(err)
	}
	env := &experiments.Env{Result: result}
	tab, err := experiments.TableI(env)
	if err != nil {
		log.Fatal(err)
	}
	if err := tab.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	pooled := report.NewTable("Population correlation (Fig. 3 headline)",
		"Statistic", "Measured", "Paper")
	pooled.AddRow("Pooled Pearson r", report.F(result.Pooled.TestLog.R), "0.816")
	pooled.AddRow("Two-tailed p", report.FScientific(result.Pooled.TestLog.P), "2.06e-15")
	if err := pooled.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// openSource builds a core.Source from the flags.
func openSource(dbDir, ndjson string) (core.Source, error) {
	switch {
	case dbDir != "" && ndjson != "":
		return nil, fmt.Errorf("choose exactly one of -db and -ndjson")
	case dbDir != "":
		store, err := tweetdb.Open(dbDir)
		if err != nil {
			return nil, err
		}
		sorted, err := store.IsSorted()
		if err != nil {
			return nil, err
		}
		if !sorted {
			return nil, fmt.Errorf("store %s is not compacted; run mobgen or call Compact first", dbDir)
		}
		return core.StoreSource{Store: store}, nil
	case ndjson != "":
		f, err := os.Open(ndjson)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		var tweets []tweet.Tweet
		r := tweet.NewNDJSONReader(f)
		for {
			t, err := r.Read()
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, err
			}
			tweets = append(tweets, t)
		}
		sort.Sort(tweet.ByUserTime(tweets))
		return core.SliceSource(tweets), nil
	default:
		return nil, fmt.Errorf("choose an input: -db DIR or -ndjson FILE")
	}
}
