package main

import "testing"

func TestParseBenchLine(t *testing.T) {
	line := "BenchmarkStudyRun/workers=1         \t       1\t 830544851 ns/op\t    658610 tweets/op\t61307376 B/op\t    3540 allocs/op"
	r, ok := parseBenchLine(line)
	if !ok {
		t.Fatal("expected a parse")
	}
	if r.Name != "BenchmarkStudyRun/workers=1" || r.Iterations != 1 {
		t.Errorf("name/iters = %q/%d", r.Name, r.Iterations)
	}
	if r.NsPerOp != 830544851 || r.BytesPerOp != 61307376 || r.AllocsOp != 3540 {
		t.Errorf("metrics = %v/%v/%v", r.NsPerOp, r.BytesPerOp, r.AllocsOp)
	}
	if r.Extra["tweets"] != 658610 {
		t.Errorf("tweets/op = %v", r.Extra["tweets"])
	}
}

func TestParseBenchLineMinimal(t *testing.T) {
	r, ok := parseBenchLine("BenchmarkHaversine \t36684615\t        62.47 ns/op\t       0 B/op\t       0 allocs/op")
	if !ok || r.NsPerOp != 62.47 || r.Iterations != 36684615 {
		t.Fatalf("parse = %+v ok=%v", r, ok)
	}
}

func TestParseBenchLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"",
		"PASS",
		"ok  \tgeomob\t10.215s",
		"goos: linux",
		"cpu: Intel(R) Xeon(R) Processor @ 2.10GHz",
		"BenchmarkBroken notanumber 5 ns/op",
		"Benchmark 1", // no metrics
	} {
		if _, ok := parseBenchLine(line); ok {
			t.Errorf("line %q parsed as a result", line)
		}
	}
}
