package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"sort"
)

// The -compare mode: diff two BENCH_*.json snapshots and fail on ns/op
// regressions beyond the tolerance. CI's bench-smoke job runs it against
// the committed baseline, turning the performance trajectory into a
// gate instead of folklore.

// loadSnapshot reads one BENCH_*.json file.
func loadSnapshot(path string) (*Snapshot, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap Snapshot
	if err := json.Unmarshal(buf, &snap); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &snap, nil
}

// compareDelta is one benchmark's old→new movement.
type compareDelta struct {
	name     string
	oldNs    float64
	newNs    float64
	ratio    float64 // new/old
	regessed bool
}

// normalizeBenchName strips the trailing "-<GOMAXPROCS>" suffix go test
// appends on multi-core machines, so a snapshot taken on an N-core box
// compares against a baseline from a 1-core one (whose names carry no
// suffix). Sub-benchmark labels here use "=" (workers=1, partitions=4),
// never a bare trailing "-<digits>", so the strip is unambiguous.
func normalizeBenchName(name string) string {
	i := len(name)
	for i > 0 && name[i-1] >= '0' && name[i-1] <= '9' {
		i--
	}
	if i > 0 && i < len(name) && name[i-1] == '-' {
		return name[:i-1]
	}
	return name
}

// compareSnapshots matches benchmarks by normalised name (benchmarks
// present in only one snapshot are reported but never fail the
// comparison — the set grows over time) and flags every ns/op
// regression beyond tolerance (0.15 = new may be at most 15% slower).
func compareSnapshots(oldSnap, newSnap *Snapshot, tolerance float64) (deltas []compareDelta, onlyOld, onlyNew []string) {
	oldBy := map[string]BenchResult{}
	for _, r := range oldSnap.Results {
		oldBy[normalizeBenchName(r.Name)] = r
	}
	seen := map[string]bool{}
	for _, nr := range newSnap.Results {
		key := normalizeBenchName(nr.Name)
		seen[key] = true
		or, ok := oldBy[key]
		if !ok {
			onlyNew = append(onlyNew, nr.Name)
			continue
		}
		d := compareDelta{name: key, oldNs: or.NsPerOp, newNs: nr.NsPerOp}
		if or.NsPerOp > 0 {
			d.ratio = nr.NsPerOp / or.NsPerOp
			d.regessed = d.ratio > 1+tolerance
		}
		deltas = append(deltas, d)
	}
	for key, or := range oldBy {
		if !seen[key] {
			onlyOld = append(onlyOld, or.Name)
		}
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].name < deltas[j].name })
	sort.Strings(onlyOld)
	sort.Strings(onlyNew)
	return deltas, onlyOld, onlyNew
}

// runCompare prints the per-benchmark deltas and reports whether any
// regression exceeded the tolerance.
func runCompare(oldPath, newPath string, tolerance float64) (failed bool, err error) {
	oldSnap, err := loadSnapshot(oldPath)
	if err != nil {
		return false, err
	}
	newSnap, err := loadSnapshot(newPath)
	if err != nil {
		return false, err
	}
	deltas, onlyOld, onlyNew := compareSnapshots(oldSnap, newSnap, tolerance)
	if len(deltas) == 0 {
		return false, fmt.Errorf("no common benchmarks between %s and %s", oldPath, newPath)
	}
	log.Printf("comparing %s (%s) -> %s (%s), tolerance %+.0f%%",
		oldPath, oldSnap.Date, newPath, newSnap.Date, tolerance*100)
	for _, d := range deltas {
		verdict := "ok"
		if d.regessed {
			verdict = "REGRESSION"
			failed = true
		}
		log.Printf("%-44s %14.1f -> %14.1f ns/op  %+7.1f%%  %s",
			d.name, d.oldNs, d.newNs, (d.ratio-1)*100, verdict)
	}
	for _, name := range onlyOld {
		log.Printf("%-44s only in %s", name, oldPath)
	}
	for _, name := range onlyNew {
		log.Printf("%-44s only in %s (new benchmark)", name, newPath)
	}
	return failed, nil
}
