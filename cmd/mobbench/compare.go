package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"sort"
)

// The -compare mode: diff two BENCH_*.json snapshots and fail on ns/op
// or allocs/op regressions beyond their tolerances, plus the
// batched-ingest contract asserted on the new snapshot alone. CI's
// bench-smoke job runs it against the committed baseline, turning the
// performance trajectory into a gate instead of folklore.

// compareOptions are the -compare gates. Zero disables a gate (except
// tolerance, whose zero means "no ns/op slack").
type compareOptions struct {
	tolerance      float64 // ns/op: new may be at most (1+tolerance) × old
	allocTolerance float64 // allocs/op: same shape; 0 disables
	// batchSpeedup and batchAllocRatio assert the columnar ingest
	// contract between BenchmarkIngestBatch and BenchmarkIngest within
	// the new snapshot — same box, same run, so no cross-machine noise:
	// batched tweets/sec ≥ batchSpeedup × per-record tweets/sec, and
	// batched allocs/op ≤ batchAllocRatio × per-record allocs/op.
	batchSpeedup    float64
	batchAllocRatio float64
}

// loadSnapshot reads one BENCH_*.json file.
func loadSnapshot(path string) (*Snapshot, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap Snapshot
	if err := json.Unmarshal(buf, &snap); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &snap, nil
}

// compareDelta is one benchmark's old→new movement.
type compareDelta struct {
	name     string
	oldNs    float64
	newNs    float64
	ratio    float64 // new/old
	regessed bool

	oldAllocs      float64
	newAllocs      float64
	allocRatio     float64 // new/old; 0 when not gated
	allocRegressed bool
}

// normalizeBenchName strips the trailing "-<GOMAXPROCS>" suffix go test
// appends on multi-core machines, so a snapshot taken on an N-core box
// compares against a baseline from a 1-core one (whose names carry no
// suffix). Sub-benchmark labels here use "=" (workers=1, partitions=4),
// never a bare trailing "-<digits>", so the strip is unambiguous.
func normalizeBenchName(name string) string {
	i := len(name)
	for i > 0 && name[i-1] >= '0' && name[i-1] <= '9' {
		i--
	}
	if i > 0 && i < len(name) && name[i-1] == '-' {
		return name[:i-1]
	}
	return name
}

// compareSnapshots matches benchmarks by normalised name (benchmarks
// present in only one snapshot are reported but never fail the
// comparison — the set grows over time) and flags every ns/op
// regression beyond opts.tolerance (0.15 = new may be at most 15%
// slower) and, when opts.allocTolerance > 0, every allocs/op regression
// beyond it. Benchmarks whose baseline reports zero allocs are never
// alloc-gated: a 0 → anything ratio is undefined and such benches gate
// on ns/op alone.
func compareSnapshots(oldSnap, newSnap *Snapshot, opts compareOptions) (deltas []compareDelta, onlyOld, onlyNew []string) {
	oldBy := map[string]BenchResult{}
	for _, r := range oldSnap.Results {
		oldBy[normalizeBenchName(r.Name)] = r
	}
	seen := map[string]bool{}
	for _, nr := range newSnap.Results {
		key := normalizeBenchName(nr.Name)
		seen[key] = true
		or, ok := oldBy[key]
		if !ok {
			onlyNew = append(onlyNew, nr.Name)
			continue
		}
		d := compareDelta{
			name:  key,
			oldNs: or.NsPerOp, newNs: nr.NsPerOp,
			oldAllocs: or.AllocsOp, newAllocs: nr.AllocsOp,
		}
		if or.NsPerOp > 0 {
			d.ratio = nr.NsPerOp / or.NsPerOp
			d.regessed = d.ratio > 1+opts.tolerance
		}
		if opts.allocTolerance > 0 && or.AllocsOp > 0 {
			d.allocRatio = nr.AllocsOp / or.AllocsOp
			d.allocRegressed = d.allocRatio > 1+opts.allocTolerance
		}
		deltas = append(deltas, d)
	}
	for key, or := range oldBy {
		if !seen[key] {
			onlyOld = append(onlyOld, or.Name)
		}
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].name < deltas[j].name })
	sort.Strings(onlyOld)
	sort.Strings(onlyNew)
	return deltas, onlyOld, onlyNew
}

// runCompare prints the per-benchmark deltas and reports whether any
// regression exceeded a tolerance or the batch-ingest contract failed.
func runCompare(oldPath, newPath string, opts compareOptions) (failed bool, err error) {
	oldSnap, err := loadSnapshot(oldPath)
	if err != nil {
		return false, err
	}
	newSnap, err := loadSnapshot(newPath)
	if err != nil {
		return false, err
	}
	deltas, onlyOld, onlyNew := compareSnapshots(oldSnap, newSnap, opts)
	if len(deltas) == 0 {
		return false, fmt.Errorf("no common benchmarks between %s and %s", oldPath, newPath)
	}
	log.Printf("comparing %s (%s) -> %s (%s), tolerance %+.0f%% ns/op, %+.0f%% allocs/op",
		oldPath, oldSnap.Date, newPath, newSnap.Date, opts.tolerance*100, opts.allocTolerance*100)
	for _, d := range deltas {
		verdict := "ok"
		if d.regessed {
			verdict = "REGRESSION"
			failed = true
		}
		if d.allocRegressed {
			verdict += " ALLOC-REGRESSION"
			failed = true
		}
		log.Printf("%-44s %14.1f -> %14.1f ns/op  %+7.1f%%  %8.0f -> %8.0f allocs/op  %s",
			d.name, d.oldNs, d.newNs, (d.ratio-1)*100, d.oldAllocs, d.newAllocs, verdict)
	}
	for _, name := range onlyOld {
		log.Printf("%-44s only in %s", name, oldPath)
	}
	for _, name := range onlyNew {
		log.Printf("%-44s only in %s (new benchmark)", name, newPath)
	}
	if bad, checked := checkBatchContract(newSnap, opts); checked && bad {
		failed = true
	}
	return failed, nil
}

// checkBatchContract asserts the columnar-ingest contract within one
// snapshot: BenchmarkIngestBatch against BenchmarkIngest, both measured
// in the same run on the same machine, so the ratios are free of
// cross-baseline noise. checked is false when either benchmark (or the
// tweets/sec metric) is absent — e.g. a narrowed -bench regex — which
// never fails the comparison.
func checkBatchContract(snap *Snapshot, opts compareOptions) (failed, checked bool) {
	if opts.batchSpeedup <= 0 && opts.batchAllocRatio <= 0 {
		return false, false
	}
	var ingest, batch *BenchResult
	for i := range snap.Results {
		switch normalizeBenchName(snap.Results[i].Name) {
		case "BenchmarkIngest":
			ingest = &snap.Results[i]
		case "BenchmarkIngestBatch":
			batch = &snap.Results[i]
		}
	}
	if ingest == nil || batch == nil {
		return false, false
	}
	if opts.batchSpeedup > 0 {
		rowRate := ingest.Extra["tweets/sec"]
		batchRate := batch.Extra["tweets/sec"]
		if rowRate > 0 && batchRate > 0 {
			checked = true
			ratio := batchRate / rowRate
			verdict := "ok"
			if ratio < opts.batchSpeedup {
				verdict = "CONTRACT VIOLATION"
				failed = true
			}
			log.Printf("batch-ingest speedup: %.0f / %.0f tweets/sec = %.2fx (want >= %.1fx)  %s",
				batchRate, rowRate, ratio, opts.batchSpeedup, verdict)
		}
	}
	if opts.batchAllocRatio > 0 && ingest.AllocsOp > 0 {
		checked = true
		ratio := batch.AllocsOp / ingest.AllocsOp
		verdict := "ok"
		if ratio > opts.batchAllocRatio {
			verdict = "CONTRACT VIOLATION"
			failed = true
		}
		log.Printf("batch-ingest allocs: %.0f / %.0f allocs/op = %.3fx (want <= %.2fx)  %s",
			batch.AllocsOp, ingest.AllocsOp, ratio, opts.batchAllocRatio, verdict)
	}
	return failed, checked
}
