package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func writeSnapshot(t *testing.T, dir, name string, results []BenchResult) string {
	t.Helper()
	path := filepath.Join(dir, name)
	buf, err := json.Marshal(&Snapshot{Date: "2026-07-29", Results: results})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestNormalizeBenchName(t *testing.T) {
	cases := map[string]string{
		"BenchmarkIngest":                     "BenchmarkIngest",
		"BenchmarkIngest-4":                   "BenchmarkIngest",
		"BenchmarkIngest-16":                  "BenchmarkIngest",
		"BenchmarkStudyRun/workers=1":         "BenchmarkStudyRun/workers=1",
		"BenchmarkStudyRun/workers=1-8":       "BenchmarkStudyRun/workers=1",
		"BenchmarkClusterIngest/partitions=4": "BenchmarkClusterIngest/partitions=4",
	}
	for in, want := range cases {
		if got := normalizeBenchName(in); got != want {
			t.Errorf("normalizeBenchName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestCompareAcrossGOMAXPROCS: a multi-core snapshot ("-N" name suffix)
// must compare against a 1-core baseline — the CI runner vs committed
// baseline situation.
func TestCompareAcrossGOMAXPROCS(t *testing.T) {
	oldSnap := &Snapshot{Results: []BenchResult{{Name: "BenchmarkA", NsPerOp: 100}}}
	newSnap := &Snapshot{Results: []BenchResult{{Name: "BenchmarkA-4", NsPerOp: 105}}}
	deltas, onlyOld, onlyNew := compareSnapshots(oldSnap, newSnap, 0.15)
	if len(deltas) != 1 || len(onlyOld) != 0 || len(onlyNew) != 0 {
		t.Fatalf("deltas=%d onlyOld=%v onlyNew=%v, want one match", len(deltas), onlyOld, onlyNew)
	}
	if deltas[0].regessed {
		t.Fatalf("+5%% flagged as regression: %+v", deltas[0])
	}
}

func TestCompareSnapshots(t *testing.T) {
	oldSnap := &Snapshot{Results: []BenchResult{
		{Name: "BenchmarkA", NsPerOp: 100},
		{Name: "BenchmarkB", NsPerOp: 1000},
		{Name: "BenchmarkGone", NsPerOp: 5},
	}}
	newSnap := &Snapshot{Results: []BenchResult{
		{Name: "BenchmarkA", NsPerOp: 114},  // +14%: within tolerance
		{Name: "BenchmarkB", NsPerOp: 1200}, // +20%: regression
		{Name: "BenchmarkNew", NsPerOp: 7},
	}}
	deltas, onlyOld, onlyNew := compareSnapshots(oldSnap, newSnap, 0.15)
	if len(deltas) != 2 {
		t.Fatalf("deltas = %d, want 2", len(deltas))
	}
	if deltas[0].name != "BenchmarkA" || deltas[0].regessed {
		t.Errorf("A: %+v, want within tolerance", deltas[0])
	}
	if deltas[1].name != "BenchmarkB" || !deltas[1].regessed {
		t.Errorf("B: %+v, want regression", deltas[1])
	}
	if len(onlyOld) != 1 || onlyOld[0] != "BenchmarkGone" {
		t.Errorf("onlyOld = %v", onlyOld)
	}
	if len(onlyNew) != 1 || onlyNew[0] != "BenchmarkNew" {
		t.Errorf("onlyNew = %v", onlyNew)
	}
}

func TestRunCompare(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeSnapshot(t, dir, "old.json", []BenchResult{
		{Name: "BenchmarkA", NsPerOp: 100},
		{Name: "BenchmarkB", NsPerOp: 1000},
	})
	okPath := writeSnapshot(t, dir, "ok.json", []BenchResult{
		{Name: "BenchmarkA", NsPerOp: 90},
		{Name: "BenchmarkB", NsPerOp: 1100},
	})
	badPath := writeSnapshot(t, dir, "bad.json", []BenchResult{
		{Name: "BenchmarkA", NsPerOp: 400},
		{Name: "BenchmarkB", NsPerOp: 1000},
	})

	failed, err := runCompare(oldPath, okPath, 0.15)
	if err != nil || failed {
		t.Fatalf("ok compare: failed=%v err=%v", failed, err)
	}
	failed, err = runCompare(oldPath, badPath, 0.15)
	if err != nil || !failed {
		t.Fatalf("bad compare: failed=%v err=%v, want regression", failed, err)
	}
	// Disjoint snapshots are an error, not a silent pass.
	disjoint := writeSnapshot(t, dir, "disjoint.json", []BenchResult{
		{Name: "BenchmarkZ", NsPerOp: 1},
	})
	if _, err := runCompare(oldPath, disjoint, 0.15); err == nil {
		t.Fatal("disjoint snapshots compared without error")
	}
}
