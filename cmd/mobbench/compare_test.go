package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func writeSnapshot(t *testing.T, dir, name string, results []BenchResult) string {
	t.Helper()
	path := filepath.Join(dir, name)
	buf, err := json.Marshal(&Snapshot{Date: "2026-07-29", Results: results})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestNormalizeBenchName(t *testing.T) {
	cases := map[string]string{
		"BenchmarkIngest":                     "BenchmarkIngest",
		"BenchmarkIngest-4":                   "BenchmarkIngest",
		"BenchmarkIngest-16":                  "BenchmarkIngest",
		"BenchmarkStudyRun/workers=1":         "BenchmarkStudyRun/workers=1",
		"BenchmarkStudyRun/workers=1-8":       "BenchmarkStudyRun/workers=1",
		"BenchmarkClusterIngest/partitions=4": "BenchmarkClusterIngest/partitions=4",
	}
	for in, want := range cases {
		if got := normalizeBenchName(in); got != want {
			t.Errorf("normalizeBenchName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestCompareAcrossGOMAXPROCS: a multi-core snapshot ("-N" name suffix)
// must compare against a 1-core baseline — the CI runner vs committed
// baseline situation.
func TestCompareAcrossGOMAXPROCS(t *testing.T) {
	oldSnap := &Snapshot{Results: []BenchResult{{Name: "BenchmarkA", NsPerOp: 100}}}
	newSnap := &Snapshot{Results: []BenchResult{{Name: "BenchmarkA-4", NsPerOp: 105}}}
	deltas, onlyOld, onlyNew := compareSnapshots(oldSnap, newSnap, compareOptions{tolerance: 0.15})
	if len(deltas) != 1 || len(onlyOld) != 0 || len(onlyNew) != 0 {
		t.Fatalf("deltas=%d onlyOld=%v onlyNew=%v, want one match", len(deltas), onlyOld, onlyNew)
	}
	if deltas[0].regessed {
		t.Fatalf("+5%% flagged as regression: %+v", deltas[0])
	}
}

func TestCompareSnapshots(t *testing.T) {
	oldSnap := &Snapshot{Results: []BenchResult{
		{Name: "BenchmarkA", NsPerOp: 100},
		{Name: "BenchmarkB", NsPerOp: 1000},
		{Name: "BenchmarkGone", NsPerOp: 5},
	}}
	newSnap := &Snapshot{Results: []BenchResult{
		{Name: "BenchmarkA", NsPerOp: 114},  // +14%: within tolerance
		{Name: "BenchmarkB", NsPerOp: 1200}, // +20%: regression
		{Name: "BenchmarkNew", NsPerOp: 7},
	}}
	deltas, onlyOld, onlyNew := compareSnapshots(oldSnap, newSnap, compareOptions{tolerance: 0.15})
	if len(deltas) != 2 {
		t.Fatalf("deltas = %d, want 2", len(deltas))
	}
	if deltas[0].name != "BenchmarkA" || deltas[0].regessed {
		t.Errorf("A: %+v, want within tolerance", deltas[0])
	}
	if deltas[1].name != "BenchmarkB" || !deltas[1].regessed {
		t.Errorf("B: %+v, want regression", deltas[1])
	}
	if len(onlyOld) != 1 || onlyOld[0] != "BenchmarkGone" {
		t.Errorf("onlyOld = %v", onlyOld)
	}
	if len(onlyNew) != 1 || onlyNew[0] != "BenchmarkNew" {
		t.Errorf("onlyNew = %v", onlyNew)
	}
}

func TestRunCompare(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeSnapshot(t, dir, "old.json", []BenchResult{
		{Name: "BenchmarkA", NsPerOp: 100},
		{Name: "BenchmarkB", NsPerOp: 1000},
	})
	okPath := writeSnapshot(t, dir, "ok.json", []BenchResult{
		{Name: "BenchmarkA", NsPerOp: 90},
		{Name: "BenchmarkB", NsPerOp: 1100},
	})
	badPath := writeSnapshot(t, dir, "bad.json", []BenchResult{
		{Name: "BenchmarkA", NsPerOp: 400},
		{Name: "BenchmarkB", NsPerOp: 1000},
	})

	failed, err := runCompare(oldPath, okPath, compareOptions{tolerance: 0.15})
	if err != nil || failed {
		t.Fatalf("ok compare: failed=%v err=%v", failed, err)
	}
	failed, err = runCompare(oldPath, badPath, compareOptions{tolerance: 0.15})
	if err != nil || !failed {
		t.Fatalf("bad compare: failed=%v err=%v, want regression", failed, err)
	}
	// Disjoint snapshots are an error, not a silent pass.
	disjoint := writeSnapshot(t, dir, "disjoint.json", []BenchResult{
		{Name: "BenchmarkZ", NsPerOp: 1},
	})
	if _, err := runCompare(oldPath, disjoint, compareOptions{tolerance: 0.15}); err == nil {
		t.Fatal("disjoint snapshots compared without error")
	}
}

func TestCompareAllocGate(t *testing.T) {
	oldSnap := &Snapshot{Results: []BenchResult{
		{Name: "BenchmarkA", NsPerOp: 100, AllocsOp: 1000},
		{Name: "BenchmarkZeroBase", NsPerOp: 100, AllocsOp: 0},
	}}
	newSnap := &Snapshot{Results: []BenchResult{
		{Name: "BenchmarkA", NsPerOp: 100, AllocsOp: 1500}, // +50% allocs
		{Name: "BenchmarkZeroBase", NsPerOp: 100, AllocsOp: 40},
	}}
	deltas, _, _ := compareSnapshots(oldSnap, newSnap, compareOptions{tolerance: 0.15, allocTolerance: 0.25})
	if len(deltas) != 2 {
		t.Fatalf("deltas = %d, want 2", len(deltas))
	}
	if deltas[0].name != "BenchmarkA" || !deltas[0].allocRegressed || deltas[0].regessed {
		t.Errorf("A: %+v, want alloc regression only", deltas[0])
	}
	// Zero-alloc baselines are never gated: 0 → 40 has no meaningful ratio.
	if deltas[1].allocRegressed {
		t.Errorf("ZeroBase: %+v, want no alloc gate", deltas[1])
	}
	// allocTolerance 0 disables the gate entirely.
	deltas, _, _ = compareSnapshots(oldSnap, newSnap, compareOptions{tolerance: 0.15})
	if deltas[0].allocRegressed {
		t.Errorf("disabled gate still flagged: %+v", deltas[0])
	}
	// Within tolerance passes.
	within := &Snapshot{Results: []BenchResult{{Name: "BenchmarkA", NsPerOp: 100, AllocsOp: 1200}}}
	deltas, _, _ = compareSnapshots(oldSnap, within, compareOptions{tolerance: 0.15, allocTolerance: 0.25})
	if deltas[0].allocRegressed {
		t.Errorf("+20%% allocs flagged at 25%% tolerance: %+v", deltas[0])
	}
}

func TestBatchContract(t *testing.T) {
	opts := compareOptions{batchSpeedup: 3.0, batchAllocRatio: 0.1}
	good := &Snapshot{Results: []BenchResult{
		{Name: "BenchmarkIngest-4", NsPerOp: 100, AllocsOp: 14000, Extra: map[string]float64{"tweets/sec": 1e6}},
		{Name: "BenchmarkIngestBatch-4", NsPerOp: 25, AllocsOp: 900, Extra: map[string]float64{"tweets/sec": 4e6}},
	}}
	if failed, checked := checkBatchContract(good, opts); failed || !checked {
		t.Fatalf("good snapshot: failed=%v checked=%v", failed, checked)
	}
	slow := &Snapshot{Results: []BenchResult{
		{Name: "BenchmarkIngest", NsPerOp: 100, AllocsOp: 14000, Extra: map[string]float64{"tweets/sec": 1e6}},
		{Name: "BenchmarkIngestBatch", NsPerOp: 50, AllocsOp: 900, Extra: map[string]float64{"tweets/sec": 2e6}},
	}}
	if failed, checked := checkBatchContract(slow, opts); !failed || !checked {
		t.Fatalf("2x speedup passed a 3x contract: failed=%v checked=%v", failed, checked)
	}
	allocHeavy := &Snapshot{Results: []BenchResult{
		{Name: "BenchmarkIngest", NsPerOp: 100, AllocsOp: 14000, Extra: map[string]float64{"tweets/sec": 1e6}},
		{Name: "BenchmarkIngestBatch", NsPerOp: 25, AllocsOp: 7000, Extra: map[string]float64{"tweets/sec": 4e6}},
	}}
	if failed, _ := checkBatchContract(allocHeavy, opts); !failed {
		t.Fatal("half the allocs passed a 0.1x contract")
	}
	// Absent benchmarks (narrowed -bench regex) skip the contract.
	partial := &Snapshot{Results: []BenchResult{
		{Name: "BenchmarkIngest", NsPerOp: 100, AllocsOp: 14000, Extra: map[string]float64{"tweets/sec": 1e6}},
	}}
	if failed, checked := checkBatchContract(partial, opts); failed || checked {
		t.Fatalf("partial snapshot: failed=%v checked=%v, want skip", failed, checked)
	}
	// Disabled gates never check.
	if failed, checked := checkBatchContract(good, compareOptions{}); failed || checked {
		t.Fatalf("disabled contract: failed=%v checked=%v", failed, checked)
	}
}
