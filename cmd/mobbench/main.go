// mobbench establishes the repository's performance trajectory: it runs
// the key benchmarks with -benchmem and writes a machine-readable snapshot
// (BENCH_<date>.json) recording name, ns/op, B/op, allocs/op and the
// custom metrics (tweets/op), so successive PRs can assert improvements
// against a committed baseline instead of folklore.
//
// Usage:
//
//	mobbench [-bench regex] [-benchtime 1x] [-dir .] [-out BENCH_<date>.json]
//	mobbench -compare old.json new.json [-tolerance 0.15]
//
// The -compare mode diffs two snapshots, prints per-benchmark ns/op and
// allocs/op deltas, and exits non-zero when any benchmark regressed by
// more than the tolerances (-tolerance for ns/op, -alloc-tolerance for
// allocs/op) — CI runs it against the committed baseline. It also
// asserts the batched-ingest contract on the new snapshot alone:
// BenchmarkIngestBatch must sustain at least -batch-speedup times the
// tweets/sec of BenchmarkIngest at no more than -batch-alloc-ratio of
// its allocs/op, so the columnar hot path cannot silently decay back to
// per-record costs.
//
// The default benchmark set covers the study pipeline's hot paths: the
// end-to-end single-worker study pass, the grid-resolved area assignment
// and its k-d tree reference, the multi-scale assignment, the geodesic
// kernel, the store scan, the live ingest path (tweets/sec through
// durable append + bucket-ring routing) and the warm bucket-fold query.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// defaultBenchRegex selects the perf-trajectory benchmarks.
const defaultBenchRegex = "BenchmarkStudyRun/workers=1$|BenchmarkAreaAssign$|BenchmarkKDTreeNearest$|BenchmarkMultiScaleMap$|BenchmarkHaversine$|BenchmarkStoreScan$|BenchmarkIngest$|BenchmarkIngestBatch$|BenchmarkBackfill$|BenchmarkLiveQuery$|BenchmarkClusterIngest$|BenchmarkWALAppend$|BenchmarkIngestReplicated$|BenchmarkObsOverhead$"

// BenchResult is one benchmark's parsed measurements. Metric keys are the
// benchmark units with "/op" trimmed and slashes made JSON-friendly:
// ns/op, B/op, allocs/op, tweets/op and any future custom metric.
type BenchResult struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	BytesPerOp float64 `json:"bytes_per_op"`
	AllocsOp   float64 `json:"allocs_per_op"`
	// Extra holds custom benchmark metrics such as tweets/op.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Snapshot is the file format of BENCH_<date>.json.
type Snapshot struct {
	Date      string        `json:"date"`
	Commit    string        `json:"commit,omitempty"`
	GoVersion string        `json:"go_version"`
	GOOS      string        `json:"goos"`
	GOARCH    string        `json:"goarch"`
	CPU       string        `json:"cpu,omitempty"`
	BenchTime string        `json:"benchtime"`
	Results   []BenchResult `json:"results"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("mobbench: ")
	var (
		benchRe   = flag.String("bench", defaultBenchRegex, "benchmark selection regex passed to go test -bench")
		benchTime = flag.String("benchtime", "1x", "go test -benchtime value (1x keeps the heavy study pass affordable)")
		dir       = flag.String("dir", ".", "package directory to benchmark")
		out       = flag.String("out", "", "output path (default BENCH_<date>.json in -dir)")
		compare   = flag.Bool("compare", false, "compare two snapshots: mobbench -compare old.json new.json")
		tolerance = flag.Float64("tolerance", 0.15, "ns/op regression tolerance for -compare (0.15 = fail beyond +15%)")
		allocTol  = flag.Float64("alloc-tolerance", 0.25, "allocs/op regression tolerance for -compare (0 disables; benchmarks with zero baseline allocs are never gated)")
		speedup   = flag.Float64("batch-speedup", 3.0, "minimum tweets/sec ratio BenchmarkIngestBatch/BenchmarkIngest asserted on the new snapshot (0 disables)")
		allocRat  = flag.Float64("batch-alloc-ratio", 0.1, "maximum allocs/op ratio BenchmarkIngestBatch/BenchmarkIngest asserted on the new snapshot (0 disables)")
	)
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			log.Fatal("-compare needs exactly two snapshot paths: old.json new.json")
		}
		failed, err := runCompare(flag.Arg(0), flag.Arg(1), compareOptions{
			tolerance:       *tolerance,
			allocTolerance:  *allocTol,
			batchSpeedup:    *speedup,
			batchAllocRatio: *allocRat,
		})
		if err != nil {
			log.Fatal(err)
		}
		if failed {
			log.Fatal("regressions beyond tolerance (or batch-ingest contract violations) detected")
		}
		log.Print("no regressions beyond tolerance")
		return
	}

	snap, raw, err := runBenchmarks(*dir, *benchRe, *benchTime)
	if err != nil {
		os.Stderr.Write(raw)
		log.Fatal(err)
	}
	if len(snap.Results) == 0 {
		os.Stderr.Write(raw)
		log.Fatalf("no benchmark results matched %q", *benchRe)
	}
	path := *out
	if path == "" {
		path = fmt.Sprintf("%s/BENCH_%s.json", strings.TrimRight(*dir, "/"), snap.Date)
	}
	buf, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		log.Fatal(err)
	}
	for _, r := range snap.Results {
		log.Printf("%-40s %14.1f ns/op %12.0f B/op %10.0f allocs/op", r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsOp)
	}
	log.Printf("wrote %s (%d benchmarks)", path, len(snap.Results))
}

// runBenchmarks executes go test -bench over the package and parses the
// output into a snapshot. The raw output is returned for diagnostics.
func runBenchmarks(dir, benchRe, benchTime string) (*Snapshot, []byte, error) {
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", benchRe, "-benchmem", "-benchtime", benchTime, "-timeout", "30m", ".")
	cmd.Dir = dir
	raw, err := cmd.CombinedOutput()
	if err != nil {
		return nil, raw, fmt.Errorf("go test -bench: %w", err)
	}
	snap := &Snapshot{
		Date:      time.Now().UTC().Format("2006-01-02"),
		Commit:    gitCommit(dir),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		BenchTime: benchTime,
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			snap.CPU = strings.TrimSpace(cpu)
			continue
		}
		if r, ok := parseBenchLine(line); ok {
			snap.Results = append(snap.Results, r)
		}
	}
	return snap, raw, nil
}

// gitCommit best-effort resolves the current commit for provenance.
func gitCommit(dir string) string {
	cmd := exec.Command("git", "rev-parse", "--short", "HEAD")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// parseBenchLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkStudyRun/workers=1  1  830544851 ns/op  658610 tweets/op  61307376 B/op  3540 allocs/op
//
// into a BenchResult. Lines that are not benchmark results report ok=false.
func parseBenchLine(line string) (BenchResult, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return BenchResult{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return BenchResult{}, false
	}
	r := BenchResult{Name: fields[0], Iterations: iters}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return BenchResult{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
			seen = true
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsOp = v
		default:
			if strings.HasSuffix(unit, "/op") {
				if r.Extra == nil {
					r.Extra = map[string]float64{}
				}
				r.Extra[strings.TrimSuffix(unit, "/op")] = v
			} else if strings.HasSuffix(unit, "/sec") {
				// Rate metrics (tweets/sec on the ingest path) keep their
				// full unit as the key.
				if r.Extra == nil {
					r.Extra = map[string]float64{}
				}
				r.Extra[unit] = v
			}
		}
	}
	if !seen {
		return BenchResult{}, false
	}
	return r, true
}
