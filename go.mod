module geomob

go 1.24
