package geomob

// Benchmark harness: one benchmark per table and figure of the paper (see
// DESIGN.md §3), timing the regeneration of each artefact from a shared
// pre-generated corpus, plus ablation benches for the design choices the
// experiments exercise. Run with:
//
//	go test -bench=. -benchmem
//
// The corpus size is deliberately moderate (benchUsers users) so the whole
// suite completes in minutes; scale-up happens via cmd/mobrepro -users.

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"geomob/internal/census"
	"geomob/internal/cluster"
	"geomob/internal/epidemic"
	"geomob/internal/experiments"
	"geomob/internal/geo"
	"geomob/internal/heatmap"
	"geomob/internal/index"
	"geomob/internal/live"
	"geomob/internal/mobility"
	"geomob/internal/models"
	"geomob/internal/obs"
	"geomob/internal/randx"
	"geomob/internal/stats"
	"geomob/internal/synth"
	"geomob/internal/tweet"
	"geomob/internal/tweetdb"
	"geomob/internal/wal"
)

const benchUsers = 10000

var (
	benchOnce sync.Once
	benchEnv  *experiments.Env
	benchErr  error
)

// env lazily builds the shared corpus + study used by all table/figure
// benches; the build cost itself is measured by BenchmarkFullStudy.
func env(b *testing.B) *experiments.Env {
	b.Helper()
	benchOnce.Do(func() {
		benchEnv, benchErr = experiments.DefaultEnv(benchUsers, 42, 43, "")
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchEnv
}

// BenchmarkFullStudy measures the end-to-end pipeline: corpus generation
// plus the complete multi-scale study (everything behind Tables I-II and
// Figures 2-4).
func BenchmarkFullStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tweets, err := GenerateCorpus(DefaultCorpusConfig(2000, uint64(i+1), 2))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := NewStudy(SliceSource(tweets)).Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableI regenerates the dataset statistics table.
func BenchmarkTableI(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TableI(e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure1 regenerates the tweet density map.
func BenchmarkFigure1(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure1(e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2a regenerates the tweets-per-user distribution.
func BenchmarkFigure2a(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Figure2a(e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2b regenerates the waiting-time distribution.
func BenchmarkFigure2b(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure2b(e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3a regenerates the population-vs-census comparison.
func BenchmarkFigure3a(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure3a(e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3b regenerates the metro radius-sensitivity comparison.
func BenchmarkFigure3b(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure3b(e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure4 regenerates the per-model scatter data at all scales.
func BenchmarkFigure4(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure4(e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableII regenerates the model-performance table.
func BenchmarkTableII(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TableII(e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationRadius sweeps the metropolitan search radius (A1).
func BenchmarkAblationRadius(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationRadius(e, []float64{500, 2000}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSample reruns the study on a 30% user subsample (A2).
func BenchmarkAblationSample(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationSampleSize(e, []float64{0.3}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationGamma regenerates a corpus per planted exponent and
// refits (A3).
func BenchmarkAblationGamma(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationGamma(e, []float64{2.0}, 2000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEpidemic runs the SIR metapopulation extension (E1).
func BenchmarkEpidemic(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Epidemic(e, epidemic.DefaultParams(), "Sydney"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEpidemicStochastic runs the stochastic ensemble extension (E1b).
func BenchmarkEpidemicStochastic(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.EpidemicStochastic(e, 20, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigureDisplacement regenerates the displacement distribution.
func BenchmarkFigureDisplacement(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.FigureDisplacement(e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableIIExtended fits all four models at all scales.
func BenchmarkTableIIExtended(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TableIIExtended(e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBootstrapCI measures the pooled-correlation bootstrap.
func BenchmarkBootstrapCI(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.PooledCorrelationCI(e, 0.95, 500); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Sharded pipeline benchmarks ----------------------------------------

// benchStudyUsers sizes the corpus for the worker-scaling benchmark: 50k
// users is roughly a tenth of the paper's collection and large enough for
// the parallel section to dominate setup costs.
const benchStudyUsers = 50000

var (
	studyCorpusOnce sync.Once
	studyCorpus     []Tweet
	studyCorpusErr  error
)

// studyBenchCorpus lazily generates the shared 50k-user corpus.
func studyBenchCorpus(b *testing.B) []Tweet {
	b.Helper()
	studyCorpusOnce.Do(func() {
		studyCorpus, studyCorpusErr = GenerateCorpus(DefaultCorpusConfig(benchStudyUsers, 42, 43))
	})
	if studyCorpusErr != nil {
		b.Fatal(studyCorpusErr)
	}
	return studyCorpus
}

// BenchmarkStudyRun measures the complete multi-scale study over a shared
// pre-generated 50k-user corpus at several worker counts. The results are
// identical across worker counts by construction (see DESIGN.md §4), so
// this benchmark isolates pure pipeline throughput.
func BenchmarkStudyRun(b *testing.B) {
	tweets := studyBenchCorpus(b)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := NewStudyWithOptions(SliceSource(tweets), StudyOptions{Workers: workers}).Run(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(tweets)), "tweets/op")
		})
	}
}

// --- Component micro-benchmarks -----------------------------------------

// BenchmarkSynthGenerate measures raw corpus generation throughput.
func BenchmarkSynthGenerate(b *testing.B) {
	gen, err := synth.NewGenerator(synth.DefaultConfig(2000, 1, 2))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var total int
	for i := 0; i < b.N; i++ {
		n, err := gen.Generate(func(tweet.Tweet) error { return nil })
		if err != nil {
			b.Fatal(err)
		}
		total = n
	}
	b.ReportMetric(float64(total), "tweets/op")
}

// BenchmarkHaversine measures the geodesic kernel.
func BenchmarkHaversine(b *testing.B) {
	p1 := geo.Point{Lat: -33.8688, Lon: 151.2093}
	p2 := geo.Point{Lat: -37.8136, Lon: 144.9631}
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += geo.Haversine(p1, p2)
	}
	_ = sink
}

// BenchmarkKDTreeNearest measures area assignment lookups.
func BenchmarkKDTreeNearest(b *testing.B) {
	rs, err := census.Australia().Regions(census.ScaleNational)
	if err != nil {
		b.Fatal(err)
	}
	entries := make([]index.Entry, rs.Len())
	for i, a := range rs.Areas {
		entries[i] = index.Entry{ID: int64(i), P: a.Center}
	}
	tree, err := index.NewKDTree(entries)
	if err != nil {
		b.Fatal(err)
	}
	rng := randx.New(3, 4)
	queries := make([]geo.Point, 1024)
	for i := range queries {
		queries[i] = geo.Point{Lat: -44 + rng.Float64()*30, Lon: 114 + rng.Float64()*40}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Nearest(queries[i%len(queries)])
	}
}

// benchQueryPoints builds the shared query mix for the area-assignment
// benchmarks: uniform points over the study region, as BenchmarkKDTreeNearest
// uses, so the two benches are directly comparable.
func benchQueryPoints() []geo.Point {
	rng := randx.New(3, 4)
	queries := make([]geo.Point, 1024)
	for i := range queries {
		queries[i] = geo.Point{Lat: -44 + rng.Float64()*30, Lon: 114 + rng.Float64()*40}
	}
	return queries
}

// BenchmarkAreaAssign measures the grid-resolved area assignment — the
// per-tweet hot path of the study pipeline — on the same entry set and
// query mix as BenchmarkKDTreeNearest, so the speedup of the precomputed
// resolver over the tree walk reads directly off the two numbers.
func BenchmarkAreaAssign(b *testing.B) {
	rs, err := census.Australia().Regions(census.ScaleNational)
	if err != nil {
		b.Fatal(err)
	}
	entries := make([]index.Entry, rs.Len())
	for i, a := range rs.Areas {
		entries[i] = index.Entry{ID: int64(i), P: a.Center}
	}
	resolver, err := index.NewResolver(entries, census.ScaleNational.SearchRadius())
	if err != nil {
		b.Fatal(err)
	}
	queries := benchQueryPoints()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resolver.Resolve(queries[i%len(queries)])
	}
}

// BenchmarkMultiScaleMap measures the full per-tweet assignment work of a
// complete study pass: one coordinate decoded into all four assignment
// slots (three scales plus the metro 0.5 km variant) in a single call.
func BenchmarkMultiScaleMap(b *testing.B) {
	gaz := census.Australia()
	var mappers []*mobility.AreaMapper
	for _, scale := range census.Scales() {
		rs, err := gaz.Regions(scale)
		if err != nil {
			b.Fatal(err)
		}
		m, err := mobility.NewAreaMapper(rs, 0)
		if err != nil {
			b.Fatal(err)
		}
		mappers = append(mappers, m)
	}
	metroRS, err := gaz.Regions(census.ScaleMetropolitan)
	if err != nil {
		b.Fatal(err)
	}
	metro500, err := mobility.NewAreaMapper(metroRS, 500)
	if err != nil {
		b.Fatal(err)
	}
	msm, err := mobility.NewMultiScaleMapper(append(mappers, metro500)...)
	if err != nil {
		b.Fatal(err)
	}
	queries := benchQueryPoints()
	out := make([]int, msm.Len())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		msm.MapAll(queries[i%len(queries)], out)
	}
}

// BenchmarkTweetEncode measures the storage codec write path.
func BenchmarkTweetEncode(b *testing.B) {
	tweets := makeBenchTweets(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc := tweet.NewEncoder()
		for _, t := range tweets {
			if err := enc.Append(t); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.SetBytes(int64(len(tweets)))
}

// BenchmarkTweetDecode measures the storage codec read path.
func BenchmarkTweetDecode(b *testing.B) {
	tweets := makeBenchTweets(10000)
	enc := tweet.NewEncoder()
	for _, t := range tweets {
		if err := enc.Append(t); err != nil {
			b.Fatal(err)
		}
	}
	block := append([]byte(nil), enc.Bytes()...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tweet.DecodeAll(block, len(tweets)); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(tweets)))
}

// benchIngestEnv builds one fresh ingest stack (store + ring + ingestor)
// — the per-iteration setup of the ingest wire benchmarks.
func benchIngestEnv(b *testing.B) *live.Ingestor {
	b.Helper()
	store, err := tweetdb.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	agg, err := live.NewAggregator(live.Options{BucketWidth: time.Hour})
	if err != nil {
		b.Fatal(err)
	}
	ing, err := live.NewIngestor(store, agg, 1<<14)
	if err != nil {
		b.Fatal(err)
	}
	return ing
}

// BenchmarkIngest measures the NDJSON ingest path end to end — the cost
// of absorbing a POST /v1/ingest NDJSON body through live.Ingestor: one
// JSON decode and one Add per record, then durable append into the store
// plus routing through the multi-scale assignment hot path into the
// bucket ring (DESIGN.md §7). tweets/sec is the headline row-at-a-time
// ingest throughput the live service sustains.
func BenchmarkIngest(b *testing.B) {
	tweets := makeBenchTweets(50000)
	var body bytes.Buffer
	w := tweet.NewNDJSONWriter(&body)
	for _, t := range tweets {
		if err := w.Write(t); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ing := benchIngestEnv(b)
		b.StartTimer()
		n, err := ing.IngestNDJSON(bytes.NewReader(body.Bytes()))
		if err != nil {
			b.Fatal(err)
		}
		if n != len(tweets) {
			b.Fatalf("ingested %d", n)
		}
	}
	b.ReportMetric(float64(len(tweets)), "tweets/op")
	b.ReportMetric(float64(len(tweets))*float64(b.N)/b.Elapsed().Seconds(), "tweets/sec")
}

// BenchmarkIngestBatch measures the same end-to-end write path fed the
// binary batch wire format instead (Content-Type
// application/x-geomob-batch): frames decode straight into columns and
// flow batch → appender columns → v2 segment without per-record structs
// or JSON. The tweets/sec and allocs/op deltas against BenchmarkIngest
// are the headline wins of the columnar hot path; mobbench -compare
// gates them (>= 3x tweets/sec at <= 0.1x allocs/op).
func BenchmarkIngestBatch(b *testing.B) {
	tweets := makeBenchTweets(50000)
	const frame = 8192 // matches the mobgen -format binary frame size
	var body bytes.Buffer
	w := tweet.NewBatchWriter(&body)
	all := tweet.BatchOf(tweets)
	for off := 0; off < all.Len(); off += frame {
		end := min(off+frame, all.Len())
		if err := w.Write(all.Slice(off, end)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ing := benchIngestEnv(b)
		b.StartTimer()
		n, err := ing.IngestBinary(bytes.NewReader(body.Bytes()))
		if err != nil {
			b.Fatal(err)
		}
		if n != len(tweets) {
			b.Fatalf("ingested %d", n)
		}
	}
	b.ReportMetric(float64(len(tweets)), "tweets/op")
	b.ReportMetric(float64(len(tweets))*float64(b.N)/b.Elapsed().Seconds(), "tweets/sec")
}

// BenchmarkBackfill measures rebuilding the live bucket ring from a
// durable store at boot: a zero-copy block scan feeding the assignment
// hot path in columnar chunks (DESIGN.md §7).
func BenchmarkBackfill(b *testing.B) {
	dir := b.TempDir()
	store, err := tweetdb.Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	if err := store.Append(makeBenchTweets(50000)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		agg, err := live.NewAggregator(live.Options{BucketWidth: time.Hour})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		n, err := live.Backfill(agg, store)
		if err != nil {
			b.Fatal(err)
		}
		if n != 50000 {
			b.Fatalf("backfilled %d", n)
		}
	}
	b.ReportMetric(50000, "tweets/op")
	b.ReportMetric(50000*float64(b.N)/b.Elapsed().Seconds(), "tweets/sec")
}

// BenchmarkClusterIngest measures the in-process multi-partition ingest
// path end to end (DESIGN.md §8): the coordinator routes every record by
// user hash into per-partition stores + bucket rings, with per-partition
// lanes delivering concurrently — on a multi-core box the expensive
// per-record work (grid assignment, trigonometry, cell hashing)
// parallelises across partitions, which partitions=1 cannot. tweets/sec
// is the headline cluster ingest throughput.
func BenchmarkClusterIngest(b *testing.B) {
	tweets := makeBenchTweets(50000)
	for _, parts := range []int{1, 4} {
		b.Run(fmt.Sprintf("partitions=%d", parts), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				shards := make([]cluster.Shard, parts)
				for k := range shards {
					store, err := tweetdb.Open(b.TempDir())
					if err != nil {
						b.Fatal(err)
					}
					shard, err := cluster.NewLocalShard(store, live.Options{BucketWidth: time.Hour})
					if err != nil {
						b.Fatal(err)
					}
					shards[k] = shard
				}
				coord, err := cluster.NewCoordinator(shards, cluster.CoordinatorOptions{})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				for _, t := range tweets {
					if err := coord.Add(t); err != nil {
						b.Fatal(err)
					}
				}
				if err := coord.Flush(); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				if err := coord.Close(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
			b.ReportMetric(float64(len(tweets)), "tweets/op")
			b.ReportMetric(float64(len(tweets))*float64(b.N)/b.Elapsed().Seconds(), "tweets/sec")
		})
	}
}

// BenchmarkWALAppend measures the durable ingest acknowledgement point
// (DESIGN.md §10): appending one slot frame to the segmented
// write-ahead spool, CRC and group-commit fsync included. ns/op here is
// the floor a spooled /v1/ingest ack can ever reach.
func BenchmarkWALAppend(b *testing.B) {
	const frameRows = 512
	tweets := makeBenchTweets(frameRows)
	batch := tweet.BatchOf(tweets)
	frame, err := tweet.AppendFrame(nil, batch)
	if err != nil {
		b.Fatal(err)
	}
	sp, err := wal.Open(wal.Options{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer sp.Close()
	b.ReportAllocs()
	b.SetBytes(int64(len(frame)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sp.Append(i%16, 0b11, frame); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(frameRows, "tweets/op")
	b.ReportMetric(frameRows*float64(b.N)/b.Elapsed().Seconds(), "tweets/sec")
}

// BenchmarkIngestReplicated measures what replication costs the cluster
// ingest path: a 3-member coordinator routing the corpus into per-slot
// frames and delivering each frame to r replicas through the per-member
// lanes. r=1 is the PR 5 baseline; r=2 buys single-failure tolerance
// for (ideally) one extra delivery, not a rerouted pipeline.
func BenchmarkIngestReplicated(b *testing.B) {
	tweets := makeBenchTweets(50000)
	for _, r := range []int{1, 2} {
		b.Run(fmt.Sprintf("r=%d", r), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				shards := make([]cluster.Shard, 3)
				for k := range shards {
					shard, err := cluster.NewLocalShard(nil, live.Options{BucketWidth: time.Hour})
					if err != nil {
						b.Fatal(err)
					}
					shards[k] = shard
				}
				coord, err := cluster.NewCoordinator(shards, cluster.CoordinatorOptions{Replication: r})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				for _, t := range tweets {
					if err := coord.Add(t); err != nil {
						b.Fatal(err)
					}
				}
				if err := coord.Flush(); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				if err := coord.Close(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
			b.ReportMetric(float64(len(tweets)), "tweets/op")
			b.ReportMetric(float64(len(tweets))*float64(b.N)/b.Elapsed().Seconds(), "tweets/sec")
		})
	}
}

// BenchmarkLiveQuery measures a warm windowed fold: answering a request
// from materialised bucket partials, no storage or spatial work.
func BenchmarkLiveQuery(b *testing.B) {
	tweets := makeBenchTweets(50000)
	agg, err := live.NewAggregator(live.Options{BucketWidth: time.Hour})
	if err != nil {
		b.Fatal(err)
	}
	if err := agg.Ingest(tweets); err != nil {
		b.Fatal(err)
	}
	req := StudyRequest{Analyses: []Analysis{AnalysisFlows}, Scales: []Scale{ScaleNational}}
	if _, err := agg.Query(req); err != nil { // materialise the partials
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := agg.Query(req); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(tweets)), "tweets/op")
}

// BenchmarkStoreScan measures full-store scan throughput including
// checksum verification.
func BenchmarkStoreScan(b *testing.B) {
	dir := b.TempDir()
	store, err := tweetdb.Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	if err := store.Append(makeBenchTweets(50000)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := store.Scan(tweetdb.Query{})
		n := 0
		for {
			if _, ok := it.Next(); !ok {
				break
			}
			n++
		}
		if err := it.Err(); err != nil {
			b.Fatal(err)
		}
		if n != 50000 {
			b.Fatalf("scanned %d", n)
		}
	}
	b.SetBytes(50000)
}

// BenchmarkStorePrunedScan measures a time-windowed scan where predicate
// pushdown skips most segments.
func BenchmarkStorePrunedScan(b *testing.B) {
	dir := b.TempDir()
	store, err := tweetdb.Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	// Ten disjoint time batches → ten prunable segments.
	for batch := 0; batch < 10; batch++ {
		tweets := make([]tweet.Tweet, 5000)
		base := int64(1378000000000) + int64(batch)*1_000_000_000
		for i := range tweets {
			tweets[i] = tweet.Tweet{
				ID: int64(batch*5000 + i), UserID: int64(i % 100),
				TS: base + int64(i), Lat: -33.9, Lon: 151.2,
			}
		}
		if err := store.Append(tweets); err != nil {
			b.Fatal(err)
		}
	}
	q := tweetdb.Query{FromTS: 1378000000000 + 5_000_000_000, ToTS: 1378000000000 + 6_000_000_000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := store.Scan(q)
		n := 0
		for {
			if _, ok := it.Next(); !ok {
				break
			}
			n++
		}
		if n != 5000 {
			b.Fatalf("scanned %d", n)
		}
	}
}

// BenchmarkGravityFit measures model fitting on a national-scale OD set.
func BenchmarkGravityFit(b *testing.B) {
	e := env(b)
	od := e.Result.Mobility[census.ScaleNational].OD
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := &models.Gravity4{}
		if err := m.Fit(od); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRadiationFit measures the radiation fit (dominated by the
// s-term already precomputed in the OD build).
func BenchmarkRadiationFit(b *testing.B) {
	e := env(b)
	od := e.Result.Mobility[census.ScaleNational].OD
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := &models.Radiation{}
		if err := m.Fit(od); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPearsonTest measures the correlation + p-value kernel on
// Fig. 3-sized inputs.
func BenchmarkPearsonTest(b *testing.B) {
	rng := randx.New(5, 6)
	x := make([]float64, 60)
	y := make([]float64, 60)
	for i := range x {
		x[i] = rng.Float64() * 1e6
		y[i] = x[i] * (0.9 + 0.2*rng.Float64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stats.PearsonTest(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHeatmapRender measures Fig. 1 rendering.
func BenchmarkHeatmapRender(b *testing.B) {
	grid, err := heatmap.NewGrid(geo.AustraliaBBox, 360, 280)
	if err != nil {
		b.Fatal(err)
	}
	rng := randx.New(9, 10)
	for i := 0; i < 100000; i++ {
		grid.Add(geo.Point{Lat: -34 + rng.NormFloat64(), Lon: 151 + rng.NormFloat64()})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := grid.WritePNG(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// makeBenchTweets builds a deterministic sorted corpus for codec/storage
// benches.
func makeBenchTweets(n int) []tweet.Tweet {
	rng := randx.New(7, 8)
	tweets := make([]tweet.Tweet, n)
	ts := int64(1378000000000)
	for i := range tweets {
		ts += int64(rng.IntN(60000))
		tweets[i] = tweet.Tweet{
			ID: int64(i), UserID: int64(i / 20), TS: ts,
			Lat: -35 + rng.Float64()*2, Lon: 150 + rng.Float64()*2,
		}
	}
	return tweets
}

// BenchmarkObsOverhead prices the per-event cost instrumentation adds to
// hot paths — one counter add plus one histogram observation — in the
// default mobbench trajectory, so a regression in the metrics layer
// shows up next to the ingest numbers it would silently tax. Must stay
// 0 allocs/op (internal/obs pins the same gate in its own bench).
func BenchmarkObsOverhead(b *testing.B) {
	r := obs.NewRegistry()
	c := r.Counter("bench_events_total", "h")
	h := r.Histogram("bench_lat_seconds", "h", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(1)
		h.Observe(0.0042)
	}
	if c.Value() != int64(b.N) {
		b.Fatal("count drift")
	}
}
