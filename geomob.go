// Package geomob is a Go reproduction of "Multi-scale Population and
// Mobility Estimation with Geo-tagged Tweets" (Liu, Zhao, Khan, Cameron,
// Jurdak — CSIRO, ICDE 2015 workshops / arXiv:1412.0327).
//
// The package is the public facade over the internal implementation:
//
//   - a calibrated synthetic tweet-corpus generator standing in for the
//     paper's 6.3M-tweet collection (see DESIGN.md for the substitution),
//   - an embedded Australian census gazetteer at the paper's three scales,
//   - an append-only tweet storage engine with predicate pushdown,
//   - the multi-scale Study pipeline (population estimation, OD flow
//     extraction, gravity/radiation model fitting and comparison), and
//   - a metapopulation SIR simulator over the estimated flows (the
//     paper's stated future-work application).
//
// Quickstart:
//
//	tweets, _ := geomob.GenerateCorpus(geomob.DefaultCorpusConfig(20000, 42, 43))
//	result, _ := geomob.NewStudy(geomob.SliceSource(tweets)).Run()
//	fmt.Println(result.Pooled.TestLog.R) // Fig. 3 pooled correlation
//
// Request-scoped executions compute only what is asked for, honour
// context cancellation, and restrict to a time window (pushed down into
// the store scan when the source is a tweetdb store):
//
//	study := geomob.NewStudy(geomob.SliceSource(tweets))
//	flows, _ := study.Execute(ctx, geomob.StudyRequest{
//		Analyses: []geomob.Analysis{geomob.AnalysisFlows},
//		Scales:   []geomob.Scale{geomob.ScaleState},
//	})
package geomob

import (
	"geomob/internal/census"
	"geomob/internal/cluster"
	"geomob/internal/core"
	"geomob/internal/epidemic"
	"geomob/internal/geo"
	"geomob/internal/live"
	"geomob/internal/mobility"
	"geomob/internal/models"
	"geomob/internal/population"
	"geomob/internal/synth"
	"geomob/internal/tweet"
	"geomob/internal/tweetdb"
)

// Core data types.
type (
	// Tweet is one geo-tagged tweet record: (id, user, timestamp, lat, lon).
	Tweet = tweet.Tweet
	// Point is a WGS-84 coordinate in decimal degrees.
	Point = geo.Point
	// BBox is an axis-aligned geographic bounding box.
	BBox = geo.BBox
	// Scale identifies one of the paper's three geographic scales.
	Scale = census.Scale
	// Area is one census region (name, centre, population).
	Area = census.Area
	// RegionSet is the ordered area list studied at one scale.
	RegionSet = census.RegionSet
)

// The three geographic scales of the paper (§III).
const (
	ScaleNational     = census.ScaleNational
	ScaleState        = census.ScaleState
	ScaleMetropolitan = census.ScaleMetropolitan
)

// Scales returns the three scales in paper order.
func Scales() []Scale { return census.Scales() }

// Gazetteer returns the embedded Australian census gazetteer.
func Gazetteer() *census.Gazetteer { return census.Australia() }

// AustraliaBBox is the paper's study region (Table I coordinate ranges).
var AustraliaBBox = geo.AustraliaBBox

// Corpus generation (the data-gate substitution; see DESIGN.md §1).
type (
	// CorpusConfig parameterises the synthetic tweet corpus.
	CorpusConfig = synth.Config
	// Generator streams synthetic corpora.
	Generator = synth.Generator
)

// DefaultCorpusConfig returns the calibrated corpus configuration for the
// given user count and seed pair. The paper's full corpus corresponds to
// 473,956 users.
func DefaultCorpusConfig(users int, seed1, seed2 uint64) CorpusConfig {
	return synth.DefaultConfig(users, seed1, seed2)
}

// NewGenerator builds a corpus generator for the config.
func NewGenerator(cfg CorpusConfig) (*Generator, error) { return synth.NewGenerator(cfg) }

// GenerateCorpus materialises a corpus in memory, in (user, time) order.
func GenerateCorpus(cfg CorpusConfig) ([]Tweet, error) {
	gen, err := synth.NewGenerator(cfg)
	if err != nil {
		return nil, err
	}
	return gen.GenerateAll()
}

// Storage engine.
type (
	// Store is the append-only tweet database.
	Store = tweetdb.Store
	// StoreQuery restricts store scans (time range, bbox, user).
	StoreQuery = tweetdb.Query
)

// OpenStore opens or initialises a tweet store rooted at dir.
func OpenStore(dir string) (*Store, error) { return tweetdb.Open(dir) }

// Study pipeline (the paper's contribution).
type (
	// Study is the multi-scale estimation pipeline. Run computes
	// everything; Execute computes exactly what a StudyRequest selects.
	Study = core.Study
	// StudyRequest scopes one Study.Execute: analyses, scales, the
	// half-open time window [From, To) and the search radius.
	StudyRequest = core.Request
	// Analysis selects one deliverable family of a StudyRequest.
	Analysis = core.Analysis
	// StudyResult bundles Table I, Fig. 2/3 inputs, Fig. 4 and Table II.
	StudyResult = core.Result
	// StudyOptions configure execution (worker parallelism).
	StudyOptions = core.StudyOptions
	// Source yields a (user, time)-ordered tweet stream.
	Source = core.Source
	// ShardedSource is a Source that splits into user-disjoint sub-streams
	// for the parallel pipeline (DESIGN.md §4).
	ShardedSource = core.ShardedSource
	// SliceSource adapts an in-memory sorted tweet slice.
	SliceSource = core.SliceSource
	// StoreSource adapts a compacted tweet store.
	StoreSource = core.StoreSource
	// ModelFit is one fitted mobility model with metrics and scatter data.
	ModelFit = core.ModelFit
	// MobilityResult is the §IV analysis for one scale.
	MobilityResult = core.MobilityResult
	// PopulationEstimate is the §III analysis for one scale.
	PopulationEstimate = population.Estimate
	// AreaMapper assigns coordinates to census areas by the paper's
	// nearest-within-ε rule, through a precomputed grid resolver
	// (DESIGN.md §6): the per-point lookup is O(1) and allocation-free.
	AreaMapper = mobility.AreaMapper
	// MultiScaleMapper assigns a coordinate at several scales in one
	// call, sharing the decode across the per-scale resolvers.
	MultiScaleMapper = mobility.MultiScaleMapper
)

// NewAreaMapper builds the nearest-within-ε assigner for a region set.
// Radius zero uses the scale's paper-default search radius.
func NewAreaMapper(rs RegionSet, radius float64) (*AreaMapper, error) {
	return mobility.NewAreaMapper(rs, radius)
}

// NewMultiScaleMapper bundles per-scale area mappers so a point is decoded
// once and assigned at every scale in a single MapAll call.
func NewMultiScaleMapper(mappers ...*AreaMapper) (*MultiScaleMapper, error) {
	return mobility.NewMultiScaleMapper(mappers...)
}

// The selectable analyses of a StudyRequest.
const (
	// AnalysisStats is the Table I dataset statistics.
	AnalysisStats = core.AnalysisStats
	// AnalysisPopulation is the §III population estimation (Fig. 3).
	AnalysisPopulation = core.AnalysisPopulation
	// AnalysisMobility is the §IV model comparison (Fig. 4, Table II).
	AnalysisMobility = core.AnalysisMobility
	// AnalysisFlows is the raw OD flow extraction without model fitting.
	AnalysisFlows = core.AnalysisFlows
)

// NewStudy binds a tweet source to the embedded gazetteer with default
// options (one worker per CPU; results are worker-count independent).
func NewStudy(src Source) *Study { return core.NewStudy(src) }

// NewStudyWithOptions binds a tweet source to the embedded gazetteer with
// explicit execution options.
func NewStudyWithOptions(src Source, opts StudyOptions) *Study {
	return core.NewStudyWithOptions(src, opts)
}

// Live ingest and incremental aggregation (DESIGN.md §7).
type (
	// LiveAggregator is the time-bucket ring: it absorbs tweet batches
	// through the assignment hot path once at ingest and answers
	// windowed StudyRequests by folding materialised per-bucket partials
	// — bit-identical to a cold full pass, with zero storage scans.
	LiveAggregator = live.Aggregator
	// LiveOptions configure the ring (bucket width, scales, radius,
	// eviction bound).
	LiveOptions = live.Options
	// LiveIngestor is the streaming write path: batches are durably
	// appended to a Store and routed into the ring in lockstep.
	LiveIngestor = live.Ingestor
)

// Errors a LiveAggregator query can report: a request shape the ring does
// not materialise, and a window reaching below the eviction floor.
var (
	ErrLiveNotCovered = live.ErrNotCovered
	ErrLiveEvicted    = live.ErrEvicted
)

// NewLiveAggregator builds a bucket ring materialising the paper-default
// request shape (all configured scales and analyses).
func NewLiveAggregator(opts LiveOptions) (*LiveAggregator, error) {
	return live.NewAggregator(opts)
}

// NewLiveIngestor builds the streaming write path over a store, routing
// flushed batches into agg (nil for a durable-only ingest). batchSize 0
// selects the store's default segment size.
func NewLiveIngestor(store *Store, agg *LiveAggregator, batchSize int) (*LiveIngestor, error) {
	return live.NewIngestor(store, agg, batchSize)
}

// Cluster scale-out (DESIGN.md §8): user-hash-partitioned shard nodes
// answering Study requests by scatter-gather, bit-identical to a
// single-node pass.
type (
	// ClusterPartitioner is the stable user-id hash → partition rule every
	// node of a cluster must share.
	ClusterPartitioner = cluster.Partitioner
	// ClusterShard is one user partition behind a uniform interface
	// (in-process or remote).
	ClusterShard = cluster.Shard
	// ClusterLocalShard is an in-process partition: a bucket ring in
	// lockstep with an optional per-partition store.
	ClusterLocalShard = cluster.LocalShard
	// ClusterNode serves one local shard over the internal /shard/v1 API.
	ClusterNode = cluster.Node
	// ClusterHTTPShard is the client side of a remote shard node.
	ClusterHTTPShard = cluster.HTTPShard
	// ClusterCoordinator routes ingest by user hash and answers requests
	// by scatter-gather with coverage-fingerprint snapshot caching.
	ClusterCoordinator = cluster.Coordinator
	// ClusterCoordinatorOptions tune batching, backpressure and caching.
	ClusterCoordinatorOptions = cluster.CoordinatorOptions
	// ClusterShardPartial is the scatter-gather unit: one shard's folded
	// observer state at per-user granularity.
	ClusterShardPartial = live.ShardPartial
)

// NewClusterPartitioner builds the stable user→partition hash rule.
func NewClusterPartitioner(n int) (ClusterPartitioner, error) { return cluster.NewPartitioner(n) }

// NewClusterLocalShard builds an in-process partition over a store (nil
// for a ring-only shard) with the given ring options.
func NewClusterLocalShard(store *Store, opts LiveOptions) (*ClusterLocalShard, error) {
	return cluster.NewLocalShard(store, opts)
}

// NewClusterCoordinator builds a coordinator over the shards; the shard
// order fixes the partitioning, so it must be identical cluster-wide.
func NewClusterCoordinator(shards []ClusterShard, opts ClusterCoordinatorOptions) (*ClusterCoordinator, error) {
	return cluster.NewCoordinator(shards, opts)
}

// NewClusterNode serves one local shard over the internal shard API.
func NewClusterNode(shard *ClusterLocalShard, opts cluster.NodeOptions) *ClusterNode {
	return cluster.NewNode(shard, opts)
}

// NewClusterHTTPShard builds a client for a remote shard node (hc nil
// selects a sensible default).
func NewClusterHTTPShard(base string) *ClusterHTTPShard { return cluster.NewHTTPShard(base, nil) }

// Mobility models (§IV).
type (
	// Model is a fittable mobility model.
	Model = models.Model
	// Gravity4 is the 4-parameter gravity model (Eq. 1).
	Gravity4 = models.Gravity4
	// Gravity2 is the 2-parameter gravity model (Eq. 2).
	Gravity2 = models.Gravity2
	// Radiation is the radiation model (Eq. 3).
	Radiation = models.Radiation
	// InterveningOpportunities is the extension baseline beyond the paper.
	InterveningOpportunities = models.InterveningOpportunities
	// OD is an origin–destination dataset for model fitting.
	OD = models.OD
	// ModelMetrics are the Table II evaluation numbers (plus CPC).
	ModelMetrics = models.Metrics
)

// AllModels returns the three models in the paper's order.
func AllModels() []Model { return models.All() }

// AllModelsExtended additionally includes the intervening-opportunities
// baseline.
func AllModelsExtended() []Model { return models.AllExtended() }

// CommonPartOfCommuters returns the CPC overlap between two flow vectors.
func CommonPartOfCommuters(pred, obs []float64) (float64, error) {
	return models.CommonPartOfCommuters(pred, obs)
}

// BuildOD assembles an OD dataset from areas, populations and flows.
func BuildOD(areas []Area, pop []float64, flow [][]float64) (*OD, error) {
	return models.BuildOD(areas, pop, flow)
}

// EvaluateModel scores a fitted model against observed flows (Table II).
func EvaluateModel(od *OD, m Model) (*ModelMetrics, error) { return models.Evaluate(od, m) }

// Epidemic extension (§V future work).
type (
	// EpidemicParams are the SIR parameters.
	EpidemicParams = epidemic.Params
	// EpidemicResult is a complete simulation trace.
	EpidemicResult = epidemic.Result
	// SEIRParams extend SIR with a latent compartment.
	SEIRParams = epidemic.SEIRParams
	// SEIRResult is a complete SEIR trace.
	SEIRResult = epidemic.SEIRResult
	// StochasticResult summarises a discrete-state outbreak ensemble.
	StochasticResult = epidemic.StochasticResult
)

// DefaultEpidemicParams models an influenza-like pathogen (R0 = 1.8).
func DefaultEpidemicParams() EpidemicParams { return epidemic.DefaultParams() }

// DefaultSEIRParams adds a two-day latent period to the defaults.
func DefaultSEIRParams() SEIRParams { return epidemic.DefaultSEIRParams() }

// SimulateEpidemic runs a metapopulation SIR outbreak over a flow matrix.
func SimulateEpidemic(areas []Area, flows [][]float64, seedArea int, seedCases float64, p EpidemicParams) (*EpidemicResult, error) {
	return epidemic.Simulate(areas, flows, seedArea, seedCases, p)
}

// SimulateSEIR runs the latent-compartment variant.
func SimulateSEIR(areas []Area, flows [][]float64, seedArea int, seedCases float64, p SEIRParams) (*SEIRResult, error) {
	return epidemic.SimulateSEIR(areas, flows, seedArea, seedCases, p)
}

// SimulateEpidemicEnsemble runs a stochastic discrete-state SIR ensemble.
func SimulateEpidemicEnsemble(areas []Area, flows [][]float64, seedArea, seedCases int, p EpidemicParams, runs int, seed1, seed2 uint64) (*StochasticResult, error) {
	return epidemic.SimulateStochastic(areas, flows, seedArea, seedCases, p, runs, seed1, seed2)
}
