package geomob

import (
	"context"
	"testing"
	"time"
)

// TestFacadeEndToEnd drives the whole public API surface the way the
// examples do: generate → store → study → models → epidemic.
func TestFacadeEndToEnd(t *testing.T) {
	cfg := DefaultCorpusConfig(3000, 1, 2)
	tweets, err := GenerateCorpus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tweets) == 0 {
		t.Fatal("no tweets")
	}

	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Append(tweets); err != nil {
		t.Fatal(err)
	}
	if err := store.Compact(); err != nil {
		t.Fatal(err)
	}
	if store.Count() != int64(len(tweets)) {
		t.Fatalf("store holds %d of %d", store.Count(), len(tweets))
	}

	result, err := NewStudy(StoreSource{Store: store}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if result.Pooled.NSamples != 60 {
		t.Errorf("pooled samples = %d", result.Pooled.NSamples)
	}

	// Model comparison surface.
	national := result.Mobility[ScaleNational]
	if national == nil || len(national.Fits) != 3 {
		t.Fatal("national mobility result incomplete")
	}
	g2 := &Gravity2{}
	if err := g2.Fit(national.OD); err != nil {
		t.Fatal(err)
	}
	met, err := EvaluateModel(national.OD, g2)
	if err != nil {
		t.Fatal(err)
	}
	if met.PearsonLog <= 0 {
		t.Errorf("gravity-2 r = %v", met.PearsonLog)
	}

	// Epidemic extension over the extracted flows.
	res, err := SimulateEpidemic(national.Flows.Areas, national.Flows.Flows, 0, 10, DefaultEpidemicParams())
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakI <= 0 {
		t.Error("epidemic never grew")
	}
}

// TestFacadeExecuteRequest drives the request-scoped API through the
// facade: a windowed single-scale flows request against a store.
func TestFacadeExecuteRequest(t *testing.T) {
	tweets, err := GenerateCorpus(DefaultCorpusConfig(2000, 9, 10))
	if err != nil {
		t.Fatal(err)
	}
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Append(tweets); err != nil {
		t.Fatal(err)
	}
	if err := store.Compact(); err != nil {
		t.Fatal(err)
	}

	study := NewStudy(StoreSource{Store: store})
	res, err := study.Execute(context.Background(), StudyRequest{
		Analyses: []Analysis{AnalysisFlows},
		Scales:   []Scale{ScaleState},
		From:     time.Date(2013, 10, 1, 0, 0, 0, 0, time.UTC),
		To:       time.Date(2014, 2, 1, 0, 0, 0, 0, time.UTC),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats != nil || res.Population != nil {
		t.Error("flows-only request filled unrequested analyses")
	}
	mr := res.Mobility[ScaleState]
	if mr == nil || mr.Flows == nil {
		t.Fatal("no state-scale flow matrix")
	}
	if mr.TotalFlow <= 0 {
		t.Error("no flow extracted in the window")
	}
	if res.Observers != 1 {
		t.Errorf("flows-only request ran %d observers, want 1", res.Observers)
	}
}

func TestFacadeGazetteer(t *testing.T) {
	gaz := Gazetteer()
	for _, scale := range Scales() {
		rs, err := gaz.Regions(scale)
		if err != nil {
			t.Fatal(err)
		}
		if rs.Len() != 20 {
			t.Errorf("%s: %d areas", scale, rs.Len())
		}
	}
	if !AustraliaBBox.Contains(Point{Lat: -33.8688, Lon: 151.2093}) {
		t.Error("Australia box should contain Sydney")
	}
}

func TestFacadeModelsOrder(t *testing.T) {
	ms := AllModels()
	if len(ms) != 3 {
		t.Fatalf("%d models", len(ms))
	}
	if ms[0].Name() != "Gravity 4Param" || ms[2].Name() != "Radiation" {
		t.Error("model order should match the paper")
	}
}
