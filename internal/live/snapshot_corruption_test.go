package live

import (
	"encoding/binary"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"geomob/internal/census"
	"geomob/internal/core"
	"geomob/internal/tweet"
	"geomob/internal/tweetdb"
)

// snapCorruptionFixture builds a store + committed snapshot over a small
// corpus and returns everything a damage matrix needs: the shared shape
// (ring construction per trial is then cheap), the store, the snapshot
// directory, the pristine bytes of every snapshot file, and the cold
// reference results. The same contract as the WAL and store corruption
// matrices: damage anywhere must never panic and never change a /v1
// answer — corruption only ever costs recovery time.
type snapFixture struct {
	shape *Shape
	store *tweetdb.Store
	dir   string
	files map[string][]byte // pristine content of every snapshot file
	reqs  []core.Request
	refs  []*core.Result
}

func newSnapFixture(t *testing.T) *snapFixture {
	t.Helper()
	rng := rand.New(rand.NewSource(1234))
	all, sorted := snapCorpus(t, 120, 77)
	root := t.TempDir()
	store, err := tweetdb.Open(filepath.Join(root, "store"))
	if err != nil {
		t.Fatal(err)
	}
	sh, err := NewShape(Options{BucketWidth: 31 * 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	agg := sh.NewAggregator()
	ing, err := NewIngestor(store, agg, 512)
	if err != nil {
		t.Fatal(err)
	}
	snapDir := filepath.Join(root, "snap")
	snaps, err := OpenSnapshotStore(snapDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range randomBatches(rng, all, 5) {
		if err := ing.IngestBatch(tweet.BatchOf(batch)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ing.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := ing.Snapshot(snaps); err != nil {
		t.Fatal(err)
	}
	f := &snapFixture{shape: sh, store: store, dir: snapDir, files: map[string][]byte{}}
	entries, err := os.ReadDir(snapDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		raw, err := os.ReadFile(filepath.Join(snapDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		f.files[e.Name()] = raw
	}
	// Per-analysis requests: the tiny corpus can't support the full
	// study's model fits, but stats + population + national flows touch
	// every fold column (waits, displacements, vecs, cells, transitions).
	f.reqs = []core.Request{
		{Analyses: []core.Analysis{core.AnalysisStats}},
		{Analyses: []core.Analysis{core.AnalysisPopulation}},
		{Analyses: []core.Analysis{core.AnalysisFlows}, Scales: []census.Scale{census.ScaleNational}},
	}
	f.refs = snapRefs(t, sorted, f.reqs)
	return f
}

// restore rewrites every snapshot file to its pristine content.
func (f *snapFixture) restore(t *testing.T) {
	t.Helper()
	entries, err := os.ReadDir(f.dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if _, ok := f.files[e.Name()]; !ok {
			os.Remove(filepath.Join(f.dir, e.Name()))
		}
	}
	for name, raw := range f.files {
		if err := os.WriteFile(filepath.Join(f.dir, name), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// recoverFresh boots a fresh ring over the (possibly damaged) snapshot
// dir and returns the ring plus stats. Any panic fails the matrix.
func (f *snapFixture) recoverFresh(t *testing.T, label string) (*Aggregator, RecoveryStats) {
	t.Helper()
	snaps, err := OpenSnapshotStore(f.dir)
	if err != nil {
		t.Fatalf("%s: open snapshot store: %v", label, err)
	}
	agg := f.shape.NewAggregator()
	st, err := Recover(agg, f.store, snaps, RecoverOpts{})
	if err != nil {
		t.Fatalf("%s: recover: %v", label, err)
	}
	return agg, st
}

// bucketFile picks the smallest bucket blob — the densest damage matrix
// for the fewest recovery runs.
func (f *snapFixture) bucketFile(t *testing.T) (string, []byte) {
	t.Helper()
	name, size := "", 0
	for n, raw := range f.files {
		if n == snapManifestName {
			continue
		}
		if name == "" || len(raw) < size {
			name, size = n, len(raw)
		}
	}
	if name == "" {
		t.Fatal("fixture has no bucket files")
	}
	return name, f.files[name]
}

// assertHealed requires the recovered ring to answer bit-identically to
// the cold reference on every fixture request.
func (f *snapFixture) assertHealed(t *testing.T, agg *Aggregator, label string) {
	t.Helper()
	assertAggMatchesRefs(t, agg, f.reqs, f.refs, label)
}

// TestSnapshotBucketCorruptionMatrix flips every byte of a bucket blob
// in turn: recovery must degrade exactly that bucket to a windowed cold
// backfill — never panic, never change an answer. The mirror of the WAL
// spool and store segment corruption matrices.
func TestSnapshotBucketCorruptionMatrix(t *testing.T) {
	f := newSnapFixture(t)
	name, pristine := f.bucketFile(t)
	path := filepath.Join(f.dir, name)
	stride := 1
	if testing.Short() {
		stride = 17
	}
	for p := 0; p < len(pristine); p += stride {
		damaged := append([]byte(nil), pristine...)
		damaged[p] ^= 0xA5
		if err := os.WriteFile(path, damaged, 0o644); err != nil {
			t.Fatal(err)
		}
		agg, st := f.recoverFresh(t, "flip")
		if st.FullRescan {
			t.Fatalf("flip at byte %d: one damaged bucket caused a full rescan", p)
		}
		if st.SnapErrors != 1 || st.Backfilled != 1 {
			t.Fatalf("flip at byte %d: stats %+v, want exactly one bucket degraded", p, st)
		}
		// Answers are compared on a sample — the decode+backfill path runs
		// for every flip, the fold comparison is the expensive part.
		if p%13 == 0 {
			f.assertHealed(t, agg, "flipped bucket")
		}
	}
	f.restore(t)
}

// TestSnapshotBucketTruncationMatrix truncates the blob at every length
// (the torn-write shape): same contract as the flip matrix.
func TestSnapshotBucketTruncationMatrix(t *testing.T) {
	f := newSnapFixture(t)
	name, pristine := f.bucketFile(t)
	path := filepath.Join(f.dir, name)
	stride := 1
	if testing.Short() {
		stride = 17
	}
	for cut := 0; cut < len(pristine); cut += stride {
		if err := os.WriteFile(path, pristine[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		agg, st := f.recoverFresh(t, "truncate")
		if st.FullRescan || st.SnapErrors != 1 || st.Backfilled != 1 {
			t.Fatalf("truncate at %d: stats %+v, want exactly one bucket degraded", cut, st)
		}
		if cut%13 == 0 {
			f.assertHealed(t, agg, "truncated bucket")
		}
	}
	f.restore(t)
}

// TestSnapshotBucketDamageShapes covers the structured failure shapes a
// byte matrix can miss: a zeroed header, a version bump with a *valid*
// header CRC (forward-compatibility gate), a missing file (torn rename),
// and trailing garbage.
func TestSnapshotBucketDamageShapes(t *testing.T) {
	f := newSnapFixture(t)
	name, pristine := f.bucketFile(t)
	path := filepath.Join(f.dir, name)

	shapes := map[string]func() error{
		"zeroed-header": func() error {
			damaged := append([]byte(nil), pristine...)
			for i := 0; i < snapHeader; i++ {
				damaged[i] = 0
			}
			return os.WriteFile(path, damaged, 0o644)
		},
		"version-bump-valid-crc": func() error {
			damaged := append([]byte(nil), pristine...)
			binary.LittleEndian.PutUint16(damaged[4:], snapVersion+1)
			binary.LittleEndian.PutUint32(damaged[36:], crc32.ChecksumIEEE(damaged[:36]))
			return os.WriteFile(path, damaged, 0o644)
		},
		"missing-file": func() error {
			return os.Remove(path)
		},
		"trailing-garbage": func() error {
			damaged := append(append([]byte(nil), pristine...), 0xDE, 0xAD)
			return os.WriteFile(path, damaged, 0o644)
		},
	}
	for label, damage := range shapes {
		f.restore(t)
		if err := damage(); err != nil {
			t.Fatalf("%s: apply: %v", label, err)
		}
		agg, st := f.recoverFresh(t, label)
		if st.FullRescan || st.SnapErrors != 1 || st.Backfilled != 1 {
			t.Fatalf("%s: stats %+v, want exactly one bucket degraded", label, st)
		}
		f.assertHealed(t, agg, label)
	}
}

// TestSnapshotManifestCorruptionMatrix flips every byte of the manifest:
// either the flip is immaterial (whitespace — the parsed manifest and
// its checksum are unchanged) and recovery proceeds normally, or the
// manifest is rejected and recovery falls back to a full cold rescan.
// Both paths must yield bit-identical answers.
func TestSnapshotManifestCorruptionMatrix(t *testing.T) {
	f := newSnapFixture(t)
	pristine := f.files[snapManifestName]
	path := filepath.Join(f.dir, snapManifestName)
	stride := 1
	if testing.Short() {
		stride = 17
	}
	for p := 0; p < len(pristine); p += stride {
		damaged := append([]byte(nil), pristine...)
		damaged[p] ^= 0xA5
		if err := os.WriteFile(path, damaged, 0o644); err != nil {
			t.Fatal(err)
		}
		agg, st := f.recoverFresh(t, "manifest flip")
		if !st.FullRescan && (st.SnapErrors != 0 || st.Backfilled != 0) {
			t.Fatalf("manifest flip at byte %d: partial degradation %+v — manifest damage must be all or nothing", p, st)
		}
		if p%13 == 0 {
			f.assertHealed(t, agg, "manifest flip")
		}
	}
	f.restore(t)
}

// TestSnapshotManifestMissing treats an absent manifest as "never
// snapshotted": full cold backfill, identical answers.
func TestSnapshotManifestMissing(t *testing.T) {
	f := newSnapFixture(t)
	if err := os.Remove(filepath.Join(f.dir, snapManifestName)); err != nil {
		t.Fatal(err)
	}
	agg, st := f.recoverFresh(t, "missing manifest")
	if !st.FullRescan {
		t.Fatalf("missing manifest did not trigger a full rescan: %+v", st)
	}
	f.assertHealed(t, agg, "missing manifest")
}

// TestSnapshotStaleAfterCompaction: a store compaction rewrites the
// segment catalogue, so the manifest's covered segments vanish and the
// tail can no longer be identified. The snapshot must be abandoned
// wholesale — a full rescan with identical answers, never a silent
// double count.
func TestSnapshotStaleAfterCompaction(t *testing.T) {
	f := newSnapFixture(t)
	if err := f.store.Compact(); err != nil {
		t.Fatal(err)
	}
	agg, st := f.recoverFresh(t, "post-compaction")
	if !st.FullRescan {
		t.Fatalf("compaction did not invalidate the snapshot: %+v", st)
	}
	f.assertHealed(t, agg, "post-compaction")
}

// TestSnapshotForeignShapeRejected: a snapshot written by a ring with a
// different bucket width must be rejected outright (shape hash /
// width gate), falling back to a full rescan.
func TestSnapshotForeignShapeRejected(t *testing.T) {
	f := newSnapFixture(t)
	other, err := NewShape(Options{BucketWidth: 6 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	snaps, err := OpenSnapshotStore(f.dir)
	if err != nil {
		t.Fatal(err)
	}
	agg := other.NewAggregator()
	st, err := Recover(agg, f.store, snaps, RecoverOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !st.FullRescan {
		t.Fatalf("foreign-shape snapshot was accepted: %+v", st)
	}
	// And a decoded blob from the foreign snapshot must not inject.
	name, raw := f.bucketFile(t)
	if _, err := other.DecodeBucketSnapshot(raw); err == nil {
		t.Fatalf("decode of foreign-shape blob %s succeeded", name)
	}
}
