package live

import (
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"geomob/internal/census"
	"geomob/internal/core"
	"geomob/internal/tweet"
	"geomob/internal/tweetdb"
)

// Test fixtures: national-scale city centres to fabricate tweets at.
var (
	nationalRS = t0()
	sydneyPt   = mustCity(nationalRS, "Sydney")
	melbourne  = mustCity(nationalRS, "Melbourne")
)

func t0() census.RegionSet {
	rs, err := census.Australia().Regions(census.ScaleNational)
	if err != nil {
		panic(err)
	}
	return rs
}

func mustCity(rs census.RegionSet, name string) (p [2]float64) {
	for _, a := range rs.Areas {
		if a.Name == name {
			return [2]float64{a.Center.Lat, a.Center.Lon}
		}
	}
	panic("unknown city " + name)
}

func tw(id, user, ts int64, at [2]float64) tweet.Tweet {
	return tweet.Tweet{ID: id, UserID: user, TS: ts, Lat: at[0], Lon: at[1]}
}

const hourMS = int64(time.Hour / time.Millisecond)

// hourlyAgg builds an aggregator with 1-hour buckets.
func hourlyAgg(t *testing.T, opts Options) *Aggregator {
	t.Helper()
	opts.BucketWidth = time.Hour
	a, err := NewAggregator(opts)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// fourBuckets ingests two users moving Sydney→Melbourne across four
// hourly buckets.
func fourBuckets(t *testing.T, a *Aggregator) {
	t.Helper()
	batch := []tweet.Tweet{
		tw(1, 10, 0*hourMS+5, sydneyPt),
		tw(2, 10, 1*hourMS+5, sydneyPt),
		tw(3, 10, 2*hourMS+5, melbourne),
		tw(4, 20, 0*hourMS+10, melbourne),
		tw(5, 20, 3*hourMS+10, sydneyPt),
	}
	if err := a.Ingest(batch); err != nil {
		t.Fatal(err)
	}
}

func TestIngestInvalidatesOnlyLandedBuckets(t *testing.T) {
	a := hourlyAgg(t, Options{})
	fourBuckets(t, a)
	if got := a.Buckets(); got != 4 {
		t.Fatalf("buckets = %d, want 4", got)
	}
	full := core.Request{Analyses: []core.Analysis{core.AnalysisFlows}, Scales: []census.Scale{census.ScaleNational}}
	if _, err := a.Query(full); err != nil {
		t.Fatal(err)
	}
	if got := a.Builds(); got != 4 {
		t.Fatalf("builds after first full query = %d, want 4", got)
	}
	// A repeat query folds the cached partials: no rebuilds.
	if _, err := a.Query(full); err != nil {
		t.Fatal(err)
	}
	if got := a.Builds(); got != 4 {
		t.Fatalf("builds after repeat query = %d, want 4", got)
	}
	// An ingest landing in bucket 1 invalidates exactly that bucket.
	if err := a.Ingest([]tweet.Tweet{tw(6, 30, 1*hourMS+30, sydneyPt)}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Query(full); err != nil {
		t.Fatal(err)
	}
	if got := a.Builds(); got != 5 {
		t.Fatalf("builds after ingest into one bucket = %d, want 5 (one rebuild)", got)
	}
}

func TestCoverageKeyMovesOnlyForTouchedWindows(t *testing.T) {
	a := hourlyAgg(t, Options{})
	fourBuckets(t, a)
	early := core.Request{
		Analyses: []core.Analysis{core.AnalysisStats},
		From:     time.UnixMilli(0).UTC().Add(time.Millisecond), // non-zero: bounded below
		To:       time.UnixMilli(2 * hourMS).UTC(),
	}
	late := core.Request{
		Analyses: []core.Analysis{core.AnalysisStats},
		From:     time.UnixMilli(2 * hourMS).UTC(),
		To:       time.UnixMilli(4 * hourMS).UTC(),
	}
	kEarly1, err := a.CoverageKeyRequest(early)
	if err != nil {
		t.Fatal(err)
	}
	kLate1, err := a.CoverageKeyRequest(late)
	if err != nil {
		t.Fatal(err)
	}
	// Ingest into hour 3: the late window's key must move, the early one
	// must not — this is what lets a service cache reuse unchanged
	// buckets across store generations.
	if err := a.Ingest([]tweet.Tweet{tw(7, 40, 3*hourMS+40, melbourne)}); err != nil {
		t.Fatal(err)
	}
	kEarly2, _ := a.CoverageKeyRequest(early)
	kLate2, _ := a.CoverageKeyRequest(late)
	if kEarly1 != kEarly2 {
		t.Errorf("early window key moved on an ingest outside it: %s -> %s", kEarly1, kEarly2)
	}
	if kLate1 == kLate2 {
		t.Errorf("late window key did not move on an ingest inside it")
	}
	// An unbounded window covers every bucket: any ingest moves it.
	kAll1, _ := a.CoverageKeyRequest(core.Request{Analyses: []core.Analysis{core.AnalysisStats}})
	if err := a.Ingest([]tweet.Tweet{tw(8, 50, 0*hourMS+50, sydneyPt)}); err != nil {
		t.Fatal(err)
	}
	kAll2, _ := a.CoverageKeyRequest(core.Request{Analyses: []core.Analysis{core.AnalysisStats}})
	if kAll1 == kAll2 {
		t.Errorf("unbounded window key did not move on ingest")
	}
}

func TestShapeNotCovered(t *testing.T) {
	a := hourlyAgg(t, Options{Scales: []census.Scale{census.ScaleNational}})
	fourBuckets(t, a)
	cases := []core.Request{
		{Analyses: []core.Analysis{core.AnalysisPopulation}, Scales: []census.Scale{census.ScaleState}},
		{Analyses: []core.Analysis{core.AnalysisFlows}, Scales: []census.Scale{census.ScaleNational}, Radius: 1234},
	}
	for _, req := range cases {
		if _, err := a.Query(req); !errors.Is(err, ErrNotCovered) {
			t.Errorf("Query(%s) err = %v, want ErrNotCovered", req.Key(), err)
		}
		if _, err := a.CoverageKeyRequest(req); !errors.Is(err, ErrNotCovered) {
			t.Errorf("CoverageKeyRequest(%s) err = %v, want ErrNotCovered", req.Key(), err)
		}
	}
	// The paper-default shape is covered.
	if _, err := a.Query(core.Request{Analyses: []core.Analysis{core.AnalysisFlows}, Scales: []census.Scale{census.ScaleNational}}); err != nil {
		t.Fatalf("default shape: %v", err)
	}
}

func TestEvictionFloor(t *testing.T) {
	a := hourlyAgg(t, Options{MaxBuckets: 2})
	fourBuckets(t, a)
	if got := a.Buckets(); got != 2 {
		t.Fatalf("buckets after eviction = %d, want 2", got)
	}
	// Unbounded and too-early windows reach below the floor.
	if _, err := a.Query(core.Request{Analyses: []core.Analysis{core.AnalysisStats}}); !errors.Is(err, ErrEvicted) {
		t.Errorf("unbounded query err = %v, want ErrEvicted", err)
	}
	// The surviving window still answers.
	res, err := a.Query(core.Request{
		Analyses: []core.Analysis{core.AnalysisStats},
		From:     time.UnixMilli(2 * hourMS).UTC(),
		To:       time.UnixMilli(4 * hourMS).UTC(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Tweets != 2 {
		t.Errorf("surviving window tweets = %d, want 2", res.Stats.Tweets)
	}
	// Late records below the floor are dropped, not misfiled.
	if err := a.Ingest([]tweet.Tweet{tw(9, 60, 0*hourMS+1, sydneyPt)}); err != nil {
		t.Fatal(err)
	}
	if got := a.Dropped(); got != 1 {
		t.Errorf("dropped = %d, want 1", got)
	}
}

func TestQueryNeverScansStore(t *testing.T) {
	store, err := tweetdb.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	a := hourlyAgg(t, Options{})
	ing, err := NewIngestor(store, a, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []tweet.Tweet{
		tw(1, 10, 0*hourMS+5, sydneyPt),
		tw(2, 10, 1*hourMS+5, melbourne),
		tw(3, 20, 0*hourMS+10, melbourne),
		tw(4, 20, 2*hourMS+10, sydneyPt),
	} {
		if err := ing.Add(x); err != nil {
			t.Fatal(err)
		}
	}
	if err := ing.Flush(); err != nil {
		t.Fatal(err)
	}
	if store.Count() != 4 || a.Ingested() != 4 {
		t.Fatalf("store %d / ring %d records, want 4/4", store.Count(), a.Ingested())
	}
	before := store.ScanCount()
	// The fixture has no metro-area tweets, so the requests stay at the
	// national scale (a zero request would fail the metro rescaling in
	// Execute too — undefined over all-zero counts).
	reqs := []core.Request{
		{Analyses: []core.Analysis{core.AnalysisStats}},
		{Analyses: []core.Analysis{core.AnalysisFlows}, Scales: []census.Scale{census.ScaleNational}},
		{Analyses: []core.Analysis{core.AnalysisPopulation}, Scales: []census.Scale{census.ScaleNational},
			From: time.UnixMilli(1).UTC(), To: time.UnixMilli(90 * 60 * 1000).UTC()},
	}
	for _, req := range reqs {
		if _, err := a.Query(req); err != nil {
			t.Fatalf("Query(%s): %v", req.Key(), err)
		}
	}
	if _, err := a.WindowTweets(math.MinInt64, math.MaxInt64); err != nil {
		t.Fatal(err)
	}
	if got := store.ScanCount(); got != before {
		t.Fatalf("store scans moved %d -> %d during live queries; want unchanged", before, got)
	}
}

func TestIngestNDJSON(t *testing.T) {
	store, err := tweetdb.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	a := hourlyAgg(t, Options{})
	ing, err := NewIngestor(store, a, 0)
	if err != nil {
		t.Fatal(err)
	}
	body := `{"id":1,"user":5,"ts":3600100,"lat":-33.8688,"lon":151.2093}
{"id":2,"user":5,"ts":7200100,"lat":-37.8136,"lon":144.9631}
`
	n, err := ing.IngestNDJSON(strings.NewReader(body))
	if err != nil || n != 2 {
		t.Fatalf("ingest: n=%d err=%v", n, err)
	}
	if store.Count() != 2 || a.Ingested() != 2 {
		t.Fatalf("store %d / ring %d, want 2/2", store.Count(), a.Ingested())
	}
	// A malformed line errors with its line number; prior records are
	// still flushed durably and into the ring.
	n, err = ing.IngestNDJSON(strings.NewReader(`{"id":3,"user":6,"ts":3600200,"lat":-33.86,"lon":151.20}
{"id":4,"user":6,"lat":999`))
	if err == nil || n != 1 {
		t.Fatalf("malformed ingest: n=%d err=%v, want n=1 and an error", n, err)
	}
	if store.Count() != 3 || a.Ingested() != 3 {
		t.Fatalf("after malformed batch: store %d / ring %d, want 3/3", store.Count(), a.Ingested())
	}
}

func TestWindowTweetsCanonicalOrder(t *testing.T) {
	a := hourlyAgg(t, Options{})
	fourBuckets(t, a)
	got, err := a.WindowTweets(math.MinInt64, math.MaxInt64)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("window tweets = %d, want 5", len(got))
	}
	for i := 1; i < len(got); i++ {
		a, b := got[i-1], got[i]
		if b.UserID < a.UserID || (b.UserID == a.UserID && b.TS < a.TS) {
			t.Fatalf("window tweets out of (user, time) order at %d", i)
		}
	}
	half, err := a.WindowTweets(0, 2*hourMS)
	if err != nil {
		t.Fatal(err)
	}
	if len(half) != 3 {
		t.Fatalf("half-window tweets = %d, want 3", len(half))
	}
}
