package live

import (
	"slices"

	"geomob/internal/geo"
	"geomob/internal/mobility"
)

// geo5 is the distinct-locations cell id the trajectory statistics count
// (Table I "locations") — the same ~5 km geohash cell the extractor uses.
func geo5(p geo.Point) uint64 { return geo.GeohashCellID(p, 5) }

// partial is the materialised aggregation state of one time bucket (or of
// the in-window residual slice of an edge bucket): everything the fold
// needs to reconstruct, together with the neighbouring partials, the
// exact observer state a serial streaming pass reaches over the union of
// their records.
//
// Per-user data is flattened into partial-level arrays indexed by the
// user's row; users are sorted by id, matching the canonical stream
// order. Interior quantities (waiting times, displacements, flows between
// consecutive in-bucket tweets) are precomputed with the very operations
// the streaming extractor performs — single-sourced in package mobility —
// so the fold only stitches bucket boundaries and replays addition
// sequences; it never re-derives a float differently.
type partial struct {
	tweets          int64
	bbox            geo.BBox
	firstTS, lastTS int64
	seen            bool

	users []userPart
	// firstArea/lastArea are the per-slot assignments of each user's
	// first and last in-range tweet (stride = slots).
	firstArea []int16
	lastArea  []int16
	// marks are per-user area bitsets over all slots (stride =
	// totalWords): which areas the user touched — the unique-user
	// counting primitive, unioned exactly across buckets.
	marks []uint64
	// flows[s] accumulates the interior transitions of scale slot s.
	flows []flowAcc
	// waits/disps hold each user's interior waiting times and
	// displacements (ranges on userPart; the two are 1:1). cells holds
	// each user's sorted distinct cell ids; vecs the per-tweet unit
	// vector addends in time order (3 floats per tweet).
	waits []float64
	disps []float64
	cells []uint64
	vecs  []float64
}

// userPart is one user's boundary summary within a partial.
type userPart struct {
	id              int64
	n               int32
	firstTS, lastTS int64
	firstPt, lastPt geo.Point
	w0, w1          int // waits/disps range
	c0, c1          int // cells range
	v0              int // vecs offset (3*n floats follow)
}

// flowAcc is a dense interior flow accumulator for one scale slot.
type flowAcc struct {
	flows [][]float64
	stays []float64
}

func newFlowAcc(n int) flowAcc {
	f := flowAcc{flows: make([][]float64, n), stays: make([]float64, n)}
	for i := range f.flows {
		f.flows[i] = make([]float64, n)
	}
	return f
}

// buildRange materialises the partial for b's records with timestamps in
// [lo, hi). b must be sorted; the caller holds the aggregator lock (the
// build reads bucket storage but writes only fresh memory).
func (a *Aggregator) buildRange(b *bucket, lo, hi int64) *partial {
	p := &partial{bbox: geo.EmptyBBox(), flows: make([]flowAcc, len(a.scales))}
	for s := range p.flows {
		p.flows[s] = newFlowAcc(len(a.regions[s].Areas))
	}
	slots := a.slots
	cellSeen := map[uint64]struct{}{}
	var cellTmp []uint64
	var cu *userPart
	closeUser := func() {
		if cu == nil {
			return
		}
		cu.w1 = len(p.waits)
		cellTmp = cellTmp[:0]
		for c := range cellSeen {
			cellTmp = append(cellTmp, c)
		}
		slices.Sort(cellTmp)
		cu.c0 = len(p.cells)
		p.cells = append(p.cells, cellTmp...)
		cu.c1 = len(p.cells)
		clear(cellSeen)
	}
	prevBase := -1
	for i := range b.tweets {
		t := &b.tweets[i]
		if t.TS < lo || t.TS >= hi {
			continue
		}
		base := i * slots
		pt := t.Point()
		p.tweets++
		p.bbox = p.bbox.Extend(pt)
		if !p.seen || t.TS < p.firstTS {
			p.firstTS = t.TS
		}
		if !p.seen || t.TS > p.lastTS {
			p.lastTS = t.TS
		}
		p.seen = true
		if cu == nil || cu.id != t.UserID {
			closeUser()
			p.users = append(p.users, userPart{
				id: t.UserID, firstTS: t.TS, firstPt: pt,
				w0: len(p.waits), v0: len(p.vecs),
			})
			cu = &p.users[len(p.users)-1]
			p.firstArea = append(p.firstArea, b.assign[base:base+slots]...)
			p.lastArea = append(p.lastArea, b.assign[base:base+slots]...)
			p.marks = append(p.marks, a.zeroWords...)
		} else {
			p.waits = append(p.waits, mobility.WaitingSecs(cu.lastTS, t.TS))
			p.disps = append(p.disps, mobility.DisplacementKM(cu.lastPt, pt))
			for s := range a.scales {
				pa, ca := b.assign[prevBase+s], b.assign[base+s]
				if pa >= 0 && ca >= 0 {
					if pa == ca {
						p.flows[s].stays[ca]++
					} else {
						p.flows[s].flows[pa][ca]++
					}
				}
			}
			copy(p.lastArea[(len(p.users)-1)*slots:], b.assign[base:base+slots])
		}
		cu.n++
		cu.lastTS = t.TS
		cu.lastPt = pt
		mbase := (len(p.users) - 1) * a.totalWords
		for s := 0; s < slots; s++ {
			if ar := b.assign[base+s]; ar >= 0 {
				p.marks[mbase+a.wordOff[s]+int(ar)>>6] |= 1 << (uint(ar) & 63)
			}
		}
		cellSeen[b.cells[i]] = struct{}{}
		p.vecs = append(p.vecs, b.vecs[3*i], b.vecs[3*i+1], b.vecs[3*i+2])
		prevBase = base
	}
	closeUser()
	return p
}
