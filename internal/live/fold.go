package live

import (
	"math/bits"
	"slices"

	"geomob/internal/census"
	"geomob/internal/core"
	"geomob/internal/geo"
	"geomob/internal/mobility"
)

// fold merges the chronological partials covering one request window into
// the folded pass core.AssembleFolded consumes. The merge walks users in
// ascending id — the canonical stream order — and, per user, visits that
// user's records bucket by bucket in time order, so:
//
//   - integer aggregates (tweet counts, flow matrices, unique-user
//     bitsets, distinct cells) union or add exactly;
//   - boundary quantities between buckets (the waiting time, displacement
//     and flow transition between a user's last tweet in one bucket and
//     first tweet in the next containing bucket) are computed with the
//     same single operations the streaming extractor performs;
//   - order-sensitive float series (per-user waiting/displacement series,
//     the unit-vector sums behind the radius of gyration) are emitted in
//     exactly the serial order, interior runs stitched with the boundary
//     values, the gyration sums replayed addend by addend.
//
// The folded state is therefore bit-identical to the merged observer set
// of a streaming pass over the same substream (property-tested).
func (a *Aggregator) fold(info *core.PlanInfo, parts []*partial) *core.FoldedPass {
	f, _ := a.foldInto(info, parts, false)
	return f
}

// foldInto is the fold with a selectable statistics sink. With perUser
// unset it fills FoldedPass.Stats — the flat Table I series of a local
// query. With perUser set the identical per-user values (the same waits,
// displacements, gyration addends and distinct-cell counts, in the same
// order) are emitted as id-keyed UserTrajectory records instead and
// FoldedPass.Stats stays nil: a cluster coordinator interleaves the
// user-disjoint records of several shards back into ascending-id order
// before flattening, which a shard-local flat series could not support.
func (a *Aggregator) foldInto(info *core.PlanInfo, parts []*partial, perUser bool) (*core.FoldedPass, []UserTrajectory) {
	f := &core.FoldedPass{BBox: geo.EmptyBBox()}
	for _, p := range parts {
		f.Tweets += p.tweets
		if p.seen {
			f.BBox = f.BBox.Union(p.bbox)
			if !f.Seen || p.firstTS < f.FirstTS {
				f.FirstTS = p.firstTS
			}
			if !f.Seen || p.lastTS > f.LastTS {
				f.LastTS = p.lastTS
			}
			f.Seen = true
		}
	}

	// The request's scale slots in plan order, plus which count targets
	// (per-scale counts, the metro variant) and flow matrices to fill.
	slots := make([]int, len(info.Scales))
	for i, sc := range info.Scales {
		slots[i] = a.slotOf[sc]
	}
	type countTarget struct {
		slot   int
		counts []float64
	}
	var countTargets []countTarget
	if info.Count {
		f.Counts = map[census.Scale][]float64{}
		for i, sc := range info.Scales {
			c := make([]float64, len(a.regions[slots[i]].Areas))
			f.Counts[sc] = c
			countTargets = append(countTargets, countTarget{slot: slots[i], counts: c})
		}
	}
	if info.Metro500 {
		f.Metro500 = make([]float64, len(a.regions[a.metroSlot].Areas))
		countTargets = append(countTargets, countTarget{slot: a.metroSlot, counts: f.Metro500})
	}
	var flowTargets []*mobility.FlowMatrix
	if info.Extract {
		f.Flows = map[census.Scale]*mobility.FlowMatrix{}
		flowTargets = make([]*mobility.FlowMatrix, len(info.Scales))
		for i, sc := range info.Scales {
			fm := mobility.NewFlowMatrix(a.regions[slots[i]].Areas)
			f.Flows[sc] = fm
			flowTargets[i] = fm
			// Interior transitions sum exactly in any order.
			for _, p := range parts {
				src := p.flows[slots[i]]
				for r := range src.flows {
					row := fm.Flows[r]
					for c, v := range src.flows[r] {
						row[c] += v
					}
					fm.Stays[r] += src.stays[r]
				}
			}
		}
	}
	var st *mobility.Stats
	var users []UserTrajectory
	if info.Stats && !perUser {
		st = &mobility.Stats{Tweets: int(f.Tweets)}
	}

	// k-way user-major merge across the chronological partials.
	type rec struct {
		p   *partial
		row int
	}
	heads := make([]int, len(parts))
	var recs []rec
	var cellScratch []uint64
	var waitsBuf, dispsBuf []float64
	for {
		u, found := int64(0), false
		for pi, p := range parts {
			if heads[pi] < len(p.users) && (!found || p.users[heads[pi]].id < u) {
				u = p.users[heads[pi]].id
				found = true
			}
		}
		if !found {
			break
		}
		recs = recs[:0]
		n := 0
		for pi, p := range parts {
			if heads[pi] < len(p.users) && p.users[heads[pi]].id == u {
				recs = append(recs, rec{p: p, row: heads[pi]})
				n += int(p.users[heads[pi]].n)
				heads[pi]++
			}
		}

		if info.Stats {
			waitsBuf, dispsBuf = waitsBuf[:0], dispsBuf[:0]
			var sx, sy, sz float64
			cellScratch = cellScratch[:0]
			for k, rc := range recs {
				r := &rc.p.users[rc.row]
				if k > 0 {
					pr := &recs[k-1].p.users[recs[k-1].row]
					waitsBuf = append(waitsBuf, mobility.WaitingSecs(pr.lastTS, r.firstTS))
					dispsBuf = append(dispsBuf, mobility.DisplacementKM(pr.lastPt, r.firstPt))
				}
				waitsBuf = append(waitsBuf, rc.p.waits[r.w0:r.w1]...)
				dispsBuf = append(dispsBuf, rc.p.disps[r.w0:r.w1]...)
				for j := r.v0; j < r.v0+3*int(r.n); j += 3 {
					sx += rc.p.vecs[j]
					sy += rc.p.vecs[j+1]
					sz += rc.p.vecs[j+2]
				}
				cellScratch = append(cellScratch, rc.p.cells[r.c0:r.c1]...)
			}
			slices.Sort(cellScratch)
			distinct := 0
			for i := range cellScratch {
				if i == 0 || cellScratch[i] != cellScratch[i-1] {
					distinct++
				}
			}
			if perUser {
				users = append(users, UserTrajectory{
					ID:            u,
					Tweets:        int64(n),
					SumX:          sx,
					SumY:          sy,
					SumZ:          sz,
					DistinctCells: int64(distinct),
					Waits:         cloneOrNil(waitsBuf),
					Disps:         cloneOrNil(dispsBuf),
				})
			} else {
				st.Users++
				st.TweetsPerUser = append(st.TweetsPerUser, float64(n))
				st.WaitingSecs = append(st.WaitingSecs, waitsBuf...)
				st.DisplacementsKM = append(st.DisplacementsKM, dispsBuf...)
				st.CellsPerUser = append(st.CellsPerUser, float64(distinct))
				st.GyrationKM = append(st.GyrationKM, mobility.GyrationRadiusKM(sx, sy, sz, n))
			}
		}

		for _, ct := range countTargets {
			off := a.wordOff[ct.slot]
			for w := 0; w < a.wordsPerSlot[ct.slot]; w++ {
				var word uint64
				for _, rc := range recs {
					word |= rc.p.marks[rc.row*a.totalWords+off+w]
				}
				for word != 0 {
					ct.counts[w*64+bits.TrailingZeros64(word)]++
					word &= word - 1
				}
			}
		}

		if info.Extract && len(recs) > 1 {
			for k := 1; k < len(recs); k++ {
				prev, cur := recs[k-1], recs[k]
				for i, slot := range slots {
					pa := prev.p.lastArea[prev.row*a.slots+slot]
					ca := cur.p.firstArea[cur.row*a.slots+slot]
					if pa >= 0 && ca >= 0 {
						if pa == ca {
							flowTargets[i].Stays[ca]++
						} else {
							flowTargets[i].Flows[pa][ca]++
						}
					}
				}
			}
		}
	}
	if st != nil {
		f.Stats = st
	}
	return f, users
}

// cloneOrNil copies a scratch slice into fresh memory, mapping empty to
// nil so wire codecs round-trip the value exactly.
func cloneOrNil(vs []float64) []float64 {
	if len(vs) == 0 {
		return nil
	}
	return slices.Clone(vs)
}
