package live

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"time"

	"geomob/internal/census"
	"geomob/internal/core"
	"geomob/internal/synth"
	"geomob/internal/tweet"
)

// bitEqual reports whether two values are bit-for-bit identical: floats
// compare by their IEEE-754 bits (NaN equals NaN, +0 differs from -0),
// everything else structurally. This is the repo's "bit-identical"
// invariant made executable — reflect.DeepEqual would falsely fail on
// identical NaNs from degenerate correlations.
func bitEqual(a, b reflect.Value) bool {
	if a.Kind() != b.Kind() || a.Type() != b.Type() {
		return false
	}
	switch a.Kind() {
	case reflect.Float32, reflect.Float64:
		return math.Float64bits(a.Float()) == math.Float64bits(b.Float())
	case reflect.Bool:
		return a.Bool() == b.Bool()
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return a.Int() == b.Int()
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		return a.Uint() == b.Uint()
	case reflect.String:
		return a.String() == b.String()
	case reflect.Ptr:
		if a.IsNil() || b.IsNil() {
			return a.IsNil() == b.IsNil()
		}
		if a.Pointer() == b.Pointer() {
			return true
		}
		return bitEqual(a.Elem(), b.Elem())
	case reflect.Interface:
		if a.IsNil() || b.IsNil() {
			return a.IsNil() == b.IsNil()
		}
		return bitEqual(a.Elem(), b.Elem())
	case reflect.Slice:
		if a.IsNil() != b.IsNil() || a.Len() != b.Len() {
			return false
		}
		for i := 0; i < a.Len(); i++ {
			if !bitEqual(a.Index(i), b.Index(i)) {
				return false
			}
		}
		return true
	case reflect.Array:
		for i := 0; i < a.Len(); i++ {
			if !bitEqual(a.Index(i), b.Index(i)) {
				return false
			}
		}
		return true
	case reflect.Map:
		if a.IsNil() != b.IsNil() || a.Len() != b.Len() {
			return false
		}
		for _, k := range a.MapKeys() {
			bv := b.MapIndex(k)
			if !bv.IsValid() || !bitEqual(a.MapIndex(k), bv) {
				return false
			}
		}
		return true
	case reflect.Struct:
		for i := 0; i < a.NumField(); i++ {
			if !bitEqual(a.Field(i), b.Field(i)) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

func resultsBitEqual(a, b *core.Result) bool {
	return bitEqual(reflect.ValueOf(a), reflect.ValueOf(b))
}

// randomBatches shuffles a corpus and splits it into 1..maxBatches random
// append batches — the adversarial arrival schedule: nothing about batch
// composition or order is aligned with users, time or buckets.
func randomBatches(rng *rand.Rand, all []tweet.Tweet, maxBatches int) [][]tweet.Tweet {
	shuffled := append([]tweet.Tweet(nil), all...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	n := 1 + rng.Intn(maxBatches)
	var batches [][]tweet.Tweet
	for off := 0; off < len(shuffled); {
		size := 1 + rng.Intn(2*len(shuffled)/n+1)
		end := off + size
		if end > len(shuffled) {
			end = len(shuffled)
		}
		batches = append(batches, shuffled[off:end])
		off = end
	}
	return batches
}

// TestBucketFoldMatchesExecuteProperty is the subsystem's signature
// invariant: for random append schedules and random [From, To) windows,
// the bucket-merged live results are bit-for-bit identical to a cold
// Study.Execute full rescan of the same records — across all analyses
// and across worker counts 1 and 8.
func TestBucketFoldMatchesExecuteProperty(t *testing.T) {
	widths := []time.Duration{6 * time.Hour, 24 * time.Hour, 31 * 24 * time.Hour}
	trials := len(widths)
	if testing.Short() {
		trials = 1
	}
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("width=%v", widths[trial]), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(41 + trial)))
			gen, err := synth.NewGenerator(synth.DefaultConfig(1200+200*trial, uint64(7+trial), 11))
			if err != nil {
				t.Fatal(err)
			}
			all, err := gen.GenerateAll()
			if err != nil {
				t.Fatal(err)
			}
			agg, err := NewAggregator(Options{BucketWidth: widths[trial]})
			if err != nil {
				t.Fatal(err)
			}
			for _, batch := range randomBatches(rng, all, 7) {
				if err := agg.Ingest(batch); err != nil {
					t.Fatal(err)
				}
			}
			sorted := append([]tweet.Tweet(nil), all...)
			sort.Sort(tweet.ByUserTime(sorted))
			minTS, maxTS := sorted[0].TS, sorted[0].TS
			for _, tw := range sorted {
				minTS = min(minTS, tw.TS)
				maxTS = max(maxTS, tw.TS)
			}

			study1 := core.NewStudyWithOptions(core.SliceSource(sorted), core.StudyOptions{Workers: 1})
			study8 := core.NewStudyWithOptions(core.SliceSource(sorted), core.StudyOptions{Workers: 8})

			randWindow := func() (time.Time, time.Time) {
				span := maxTS - minTS
				a := minTS + rng.Int63n(span)
				b := minTS + rng.Int63n(span)
				if a > b {
					a, b = b, a
				}
				return time.UnixMilli(a).UTC(), time.UnixMilli(b + 1).UTC()
			}

			reqs := []core.Request{
				{}, // the full study over the full stream
				{Analyses: []core.Analysis{core.AnalysisStats}},
				{Analyses: []core.Analysis{core.AnalysisFlows}, Scales: []census.Scale{census.ScaleNational}},
			}
			for i := 0; i < 4; i++ {
				from, to := randWindow()
				an := core.Analyses()[rng.Intn(4)]
				req := core.Request{Analyses: []core.Analysis{an}, From: from, To: to}
				if rng.Intn(2) == 0 {
					req.Scales = []census.Scale{census.Scales()[rng.Intn(3)]}
				}
				reqs = append(reqs, req)
			}
			// A window guaranteed to match nothing: both sides must agree
			// on ErrEmptyDataset.
			reqs = append(reqs, core.Request{
				From: time.UnixMilli(minTS - 10_000).UTC(),
				To:   time.UnixMilli(minTS - 1).UTC(),
			})

			for ri, req := range reqs {
				liveRes, liveErr := agg.Query(req)
				ref1, err1 := study1.Execute(context.Background(), req)
				ref8, err8 := study8.Execute(context.Background(), req)
				if (err1 == nil) != (err8 == nil) {
					t.Fatalf("req %d (%s): workers 1/8 disagree on error: %v vs %v", ri, req.Key(), err1, err8)
				}
				if err1 != nil {
					if !errors.Is(err1, core.ErrEmptyDataset) {
						t.Fatalf("req %d (%s): execute: %v", ri, req.Key(), err1)
					}
					if !errors.Is(liveErr, core.ErrEmptyDataset) {
						t.Fatalf("req %d (%s): live err = %v, want ErrEmptyDataset", ri, req.Key(), liveErr)
					}
					continue
				}
				if liveErr != nil {
					t.Fatalf("req %d (%s): live query: %v", ri, req.Key(), liveErr)
				}
				if !resultsBitEqual(ref1, ref8) {
					t.Fatalf("req %d (%s): workers 1 and 8 diverge", ri, req.Key())
				}
				if !resultsBitEqual(liveRes, ref1) {
					t.Fatalf("req %d (%s): bucket-merged result diverges from full rescan", ri, req.Key())
				}
			}
		})
	}
}
