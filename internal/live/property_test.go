package live

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"geomob/internal/census"
	"geomob/internal/core"
	"geomob/internal/synth"
	"geomob/internal/testx"
	"geomob/internal/tweet"
)

// resultsBitEqual is the repo's "bit-identical" invariant made
// executable; see testx.BitEqual.
func resultsBitEqual(a, b *core.Result) bool {
	return testx.ResultsBitEqual(a, b)
}

// randomBatches shuffles a corpus and splits it into 1..maxBatches random
// append batches — the adversarial arrival schedule: nothing about batch
// composition or order is aligned with users, time or buckets.
func randomBatches(rng *rand.Rand, all []tweet.Tweet, maxBatches int) [][]tweet.Tweet {
	shuffled := append([]tweet.Tweet(nil), all...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	n := 1 + rng.Intn(maxBatches)
	var batches [][]tweet.Tweet
	for off := 0; off < len(shuffled); {
		size := 1 + rng.Intn(2*len(shuffled)/n+1)
		end := off + size
		if end > len(shuffled) {
			end = len(shuffled)
		}
		batches = append(batches, shuffled[off:end])
		off = end
	}
	return batches
}

// TestBucketFoldMatchesExecuteProperty is the subsystem's signature
// invariant: for random append schedules and random [From, To) windows,
// the bucket-merged live results are bit-for-bit identical to a cold
// Study.Execute full rescan of the same records — across all analyses
// and across worker counts 1 and 8.
func TestBucketFoldMatchesExecuteProperty(t *testing.T) {
	widths := []time.Duration{6 * time.Hour, 24 * time.Hour, 31 * 24 * time.Hour}
	trials := len(widths)
	if testing.Short() {
		trials = 1
	}
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("width=%v", widths[trial]), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(41 + trial)))
			gen, err := synth.NewGenerator(synth.DefaultConfig(1200+200*trial, uint64(7+trial), 11))
			if err != nil {
				t.Fatal(err)
			}
			all, err := gen.GenerateAll()
			if err != nil {
				t.Fatal(err)
			}
			agg, err := NewAggregator(Options{BucketWidth: widths[trial]})
			if err != nil {
				t.Fatal(err)
			}
			for _, batch := range randomBatches(rng, all, 7) {
				if err := agg.Ingest(batch); err != nil {
					t.Fatal(err)
				}
			}
			sorted := append([]tweet.Tweet(nil), all...)
			sort.Sort(tweet.ByUserTime(sorted))
			minTS, maxTS := sorted[0].TS, sorted[0].TS
			for _, tw := range sorted {
				minTS = min(minTS, tw.TS)
				maxTS = max(maxTS, tw.TS)
			}

			study1 := core.NewStudyWithOptions(core.SliceSource(sorted), core.StudyOptions{Workers: 1})
			study8 := core.NewStudyWithOptions(core.SliceSource(sorted), core.StudyOptions{Workers: 8})

			randWindow := func() (time.Time, time.Time) {
				span := maxTS - minTS
				a := minTS + rng.Int63n(span)
				b := minTS + rng.Int63n(span)
				if a > b {
					a, b = b, a
				}
				return time.UnixMilli(a).UTC(), time.UnixMilli(b + 1).UTC()
			}

			reqs := []core.Request{
				{}, // the full study over the full stream
				{Analyses: []core.Analysis{core.AnalysisStats}},
				{Analyses: []core.Analysis{core.AnalysisFlows}, Scales: []census.Scale{census.ScaleNational}},
			}
			for i := 0; i < 4; i++ {
				from, to := randWindow()
				an := core.Analyses()[rng.Intn(4)]
				req := core.Request{Analyses: []core.Analysis{an}, From: from, To: to}
				if rng.Intn(2) == 0 {
					req.Scales = []census.Scale{census.Scales()[rng.Intn(3)]}
				}
				reqs = append(reqs, req)
			}
			// A window guaranteed to match nothing: both sides must agree
			// on ErrEmptyDataset.
			reqs = append(reqs, core.Request{
				From: time.UnixMilli(minTS - 10_000).UTC(),
				To:   time.UnixMilli(minTS - 1).UTC(),
			})

			for ri, req := range reqs {
				liveRes, liveErr := agg.Query(req)
				ref1, err1 := study1.Execute(context.Background(), req)
				ref8, err8 := study8.Execute(context.Background(), req)
				if (err1 == nil) != (err8 == nil) {
					t.Fatalf("req %d (%s): workers 1/8 disagree on error: %v vs %v", ri, req.Key(), err1, err8)
				}
				if err1 != nil {
					if !errors.Is(err1, core.ErrEmptyDataset) {
						t.Fatalf("req %d (%s): execute: %v", ri, req.Key(), err1)
					}
					if !errors.Is(liveErr, core.ErrEmptyDataset) {
						t.Fatalf("req %d (%s): live err = %v, want ErrEmptyDataset", ri, req.Key(), liveErr)
					}
					continue
				}
				if liveErr != nil {
					t.Fatalf("req %d (%s): live query: %v", ri, req.Key(), liveErr)
				}
				if !resultsBitEqual(ref1, ref8) {
					t.Fatalf("req %d (%s): workers 1 and 8 diverge", ri, req.Key())
				}
				if !resultsBitEqual(liveRes, ref1) {
					t.Fatalf("req %d (%s): bucket-merged result diverges from full rescan", ri, req.Key())
				}
			}
		})
	}
}
