package live

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"sync"
	"time"

	"geomob/internal/obs"
	"geomob/internal/tweet"
)

// Snapshot-commit metrics (DESIGN.md §12).
var (
	mSnapCommits    = obs.Def.Counter("geomob_snapshot_commits_total", "Snapshot manifest commits that wrote at least the manifest.")
	mSnapFiles      = obs.Def.Counter("geomob_snapshot_files_written_total", "Bucket blob files written by snapshot commits.")
	mSnapBytes      = obs.Def.Counter("geomob_snapshot_bytes_written_total", "Bucket blob bytes written by snapshot commits.")
	mSnapCommitSecs = obs.Def.Histogram("geomob_snapshot_commit_seconds", "Latency of one snapshot commit.", nil)
)

// Durable bucket snapshots (DESIGN.md §11): each bucket's pre-resolved
// columns — records plus the cached assignments, unit vectors and cell
// ids the ingest hot path computed — serialised to a versioned,
// per-section CRC'd, atomically renamed file beside the store. Floats
// travel as raw IEEE-754 bits, so a restored ring folds bit-identically
// to a cold Study.Execute rescan. A snapshot manifest records which
// store segments the bucket files collectively reflect; restart loads
// intact files, replays only the segment tail, and falls back to a
// windowed cold backfill per bucket on any missing, corrupt or
// version-mismatched file — never a panic, never a changed answer.

const (
	snapMagic        = uint32(0x4e534d47) // "GMSN"
	snapVersion      = uint16(1)
	snapSections     = 8
	snapHeader       = 40
	snapManifestName = "SNAPSHOT.json"
	snapSuffix       = ".gmsnap"
)

// ErrSnapshotCorrupt marks an unreadable or mismatched snapshot file.
var ErrSnapshotCorrupt = errors.New("live: snapshot corrupt")

func putU16(b []byte, v uint16) { binary.LittleEndian.PutUint16(b, v) }
func putU32(b []byte, v uint32) { binary.LittleEndian.PutUint32(b, v) }
func putU64(b []byte, v uint64) { binary.LittleEndian.PutUint64(b, v) }
func putI64(b []byte, v int64)  { binary.LittleEndian.PutUint64(b, uint64(v)) }
func getU16(b []byte) uint16    { return binary.LittleEndian.Uint16(b) }
func getU32(b []byte) uint32    { return binary.LittleEndian.Uint32(b) }
func getU64(b []byte) uint64    { return binary.LittleEndian.Uint64(b) }
func getI64(b []byte) int64     { return int64(binary.LittleEndian.Uint64(b)) }

// bucketRef identifies one live bucket at capture time.
type bucketRef struct {
	Idx   int64
	Rev   uint64
	Count int
}

// capturedBucket is one dirty bucket's columns, copied out of the ring
// in canonical order under the lock.
type capturedBucket struct {
	idx    int64
	rev    uint64
	tweets []tweet.Tweet
	assign []int16
	vecs   []float64
	cells  []uint64
}

// RingCapture is a consistent snapshot of ring state: every live
// bucket's identity plus full column copies of the dirty ones. Taken
// under the ingest lock, it lines up exactly with a store segment
// catalogue read at the same moment.
type RingCapture struct {
	shapeHash uint64
	width     int64
	slots     int
	hasFloor  bool
	floorIdx  int64
	live      []bucketRef
	dirty     []capturedBucket
}

// Dirty reports how many buckets changed since the last committed
// snapshot.
func (c *RingCapture) Dirty() int { return len(c.dirty) }

// Capture copies the ring's dirty buckets (canonically sorted) and the
// identities of all live buckets. Callers that pair the capture with a
// store catalogue must hold the lock that orders store appends before
// ring routes (the Ingestor's, or a cluster shard's).
func (a *Aggregator) Capture() *RingCapture {
	a.mu.Lock()
	defer a.mu.Unlock()
	c := &RingCapture{
		shapeHash: a.hash, width: a.width, slots: a.slots,
		hasFloor: a.hasFloor, floorIdx: a.floorIdx,
	}
	for idx, b := range a.buckets {
		if len(b.tweets) == 0 {
			continue
		}
		c.live = append(c.live, bucketRef{Idx: idx, Rev: b.rev, Count: len(b.tweets)})
		if b.rev != b.snapRev {
			ensureSortedLocked(b, a.slots)
			c.dirty = append(c.dirty, capturedBucket{
				idx: idx, rev: b.rev,
				tweets: slices.Clone(b.tweets),
				assign: slices.Clone(b.assign),
				vecs:   slices.Clone(b.vecs),
				cells:  slices.Clone(b.cells),
			})
		}
	}
	slices.SortFunc(c.live, func(x, y bucketRef) int { return cmpI64(x.Idx, y.Idx) })
	slices.SortFunc(c.dirty, func(x, y capturedBucket) int { return cmpI64(x.idx, y.idx) })
	return c
}

func cmpI64(x, y int64) int {
	if x < y {
		return -1
	}
	if x > y {
		return 1
	}
	return 0
}

// MarkSnapshotted records, after a successful commit, that the captured
// revisions are durable: a bucket untouched since capture goes clean; a
// bucket that advanced stays dirty for the next round.
func (a *Aggregator) MarkSnapshotted(c *RingCapture) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for i := range c.dirty {
		if b := a.buckets[c.dirty[i].idx]; b != nil {
			b.snapRev = c.dirty[i].rev
		}
	}
}

// encodeBucketBlob serialises one captured bucket: a CRC'd fixed header
// (magic, version, shape hash, bucket index, width, count) followed by
// eight individually CRC'd sections — ids, users, timestamps, raw
// latitude/longitude bits, assignments, unit-vector bits, cell ids.
func encodeBucketBlob(shapeHash uint64, width int64, slots int, cb *capturedBucket) []byte {
	n := len(cb.tweets)
	total := snapHeader
	lens := [snapSections]int{8 * n, 8 * n, 8 * n, 8 * n, 8 * n, 2 * n * slots, 8 * 3 * n, 8 * len(cb.cells)}
	for _, l := range lens {
		total += 12 + l
	}
	out := make([]byte, total)
	putU32(out[0:], snapMagic)
	putU16(out[4:], snapVersion)
	putU16(out[6:], snapSections)
	putU64(out[8:], shapeHash)
	putI64(out[16:], cb.idx)
	putI64(out[24:], width)
	putU32(out[32:], uint32(n))
	putU32(out[36:], crc32.ChecksumIEEE(out[:36]))
	off := snapHeader
	writeSection := func(id uint32, fill func(p []byte)) {
		l := lens[id-1]
		putU32(out[off:], id)
		putU32(out[off+4:], uint32(l))
		p := out[off+12 : off+12+l]
		fill(p)
		putU32(out[off+8:], crc32.ChecksumIEEE(p))
		off += 12 + l
	}
	writeSection(1, func(p []byte) {
		for i := range cb.tweets {
			putI64(p[8*i:], cb.tweets[i].ID)
		}
	})
	writeSection(2, func(p []byte) {
		for i := range cb.tweets {
			putI64(p[8*i:], cb.tweets[i].UserID)
		}
	})
	writeSection(3, func(p []byte) {
		for i := range cb.tweets {
			putI64(p[8*i:], cb.tweets[i].TS)
		}
	})
	writeSection(4, func(p []byte) {
		for i := range cb.tweets {
			putU64(p[8*i:], math.Float64bits(cb.tweets[i].Lat))
		}
	})
	writeSection(5, func(p []byte) {
		for i := range cb.tweets {
			putU64(p[8*i:], math.Float64bits(cb.tweets[i].Lon))
		}
	})
	writeSection(6, func(p []byte) {
		for i, v := range cb.assign {
			putU16(p[2*i:], uint16(v))
		}
	})
	writeSection(7, func(p []byte) {
		for i, v := range cb.vecs {
			putU64(p[8*i:], math.Float64bits(v))
		}
	})
	writeSection(8, func(p []byte) {
		for i, v := range cb.cells {
			putU64(p[8*i:], v)
		}
	})
	return out
}

// BucketSnapshot is one decoded, validated snapshot bucket: records plus
// their pre-resolved columns, in canonical (user, time, id) order.
type BucketSnapshot struct {
	Idx    int64
	tweets []tweet.Tweet
	assign []int16
	vecs   []float64
	cells  []uint64
}

// Count returns the number of records in the snapshot bucket.
func (bs *BucketSnapshot) Count() int { return len(bs.tweets) }

// Batch materialises the snapshot's records as a fresh column batch.
func (bs *BucketSnapshot) Batch() *tweet.Batch { return tweet.BatchOf(bs.tweets) }

// DecodeBucketSnapshot parses and fully validates a bucket blob against
// this shape: magic, version, header CRC, shape hash, width, section
// ids, lengths and CRCs, assignment bounds, and that every record's
// timestamp maps to the blob's bucket. Any mismatch returns
// ErrSnapshotCorrupt — callers degrade that bucket to a cold backfill.
func (sh *Shape) DecodeBucketSnapshot(blob []byte) (*BucketSnapshot, error) {
	fail := func(format string, args ...any) (*BucketSnapshot, error) {
		return nil, fmt.Errorf("%w: %s", ErrSnapshotCorrupt, fmt.Sprintf(format, args...))
	}
	if len(blob) < snapHeader {
		return fail("short header (%d bytes)", len(blob))
	}
	if getU32(blob) != snapMagic {
		return fail("bad magic %08x", getU32(blob))
	}
	if crc32.ChecksumIEEE(blob[:36]) != getU32(blob[36:]) {
		return fail("header checksum mismatch")
	}
	if v := getU16(blob[4:]); v != snapVersion {
		return fail("unsupported version %d", v)
	}
	if s := getU16(blob[6:]); s != snapSections {
		return fail("unexpected section count %d", s)
	}
	if h := getU64(blob[8:]); h != sh.hash {
		return fail("shape hash %016x does not match ring %016x", h, sh.hash)
	}
	if w := getI64(blob[24:]); w != sh.width {
		return fail("bucket width %d does not match ring %d", w, sh.width)
	}
	idx := getI64(blob[16:])
	n := int(getU32(blob[32:]))
	bs := &BucketSnapshot{Idx: idx}
	off := snapHeader
	var sections [snapSections][]byte
	for id := 1; id <= snapSections; id++ {
		if off+12 > len(blob) {
			return fail("truncated at section %d", id)
		}
		gotID, l := getU32(blob[off:]), int(getU32(blob[off+4:]))
		crc := getU32(blob[off+8:])
		if gotID != uint32(id) {
			return fail("section id %d, want %d", gotID, id)
		}
		if off+12+l > len(blob) {
			return fail("section %d payload truncated", id)
		}
		p := blob[off+12 : off+12+l]
		if crc32.ChecksumIEEE(p) != crc {
			return fail("section %d checksum mismatch", id)
		}
		sections[id-1] = p
		off += 12 + l
	}
	if off != len(blob) {
		return fail("%d trailing bytes", len(blob)-off)
	}
	for id, want := range [snapSections]int{8 * n, 8 * n, 8 * n, 8 * n, 8 * n, 2 * n * sh.slots, 8 * 3 * n, len(sections[7])} {
		if len(sections[id]) != want {
			return fail("section %d length %d, want %d", id+1, len(sections[id]), want)
		}
	}
	if len(sections[7])%8 != 0 {
		return fail("cells section length %d not 8-aligned", len(sections[7]))
	}
	bs.tweets = make([]tweet.Tweet, n)
	for i := 0; i < n; i++ {
		bs.tweets[i] = tweet.Tweet{
			ID:     getI64(sections[0][8*i:]),
			UserID: getI64(sections[1][8*i:]),
			TS:     getI64(sections[2][8*i:]),
			Lat:    math.Float64frombits(getU64(sections[3][8*i:])),
			Lon:    math.Float64frombits(getU64(sections[4][8*i:])),
		}
		if got := floorDiv(bs.tweets[i].TS, sh.width); got != idx {
			return fail("record %d timestamp maps to bucket %d, not %d", i, got, idx)
		}
	}
	bs.assign = make([]int16, n*sh.slots)
	for i := range bs.assign {
		v := int16(getU16(sections[5][2*i:]))
		if v < -1 || int(v) >= len(sh.regions[i%sh.slots].Areas) {
			return fail("assignment %d out of range at row %d", v, i/sh.slots)
		}
		bs.assign[i] = v
	}
	bs.vecs = make([]float64, 3*n)
	for i := range bs.vecs {
		bs.vecs[i] = math.Float64frombits(getU64(sections[6][8*i:]))
	}
	bs.cells = make([]uint64, len(sections[7])/8)
	if len(bs.cells) != n {
		return fail("cells count %d, want %d", len(bs.cells), n)
	}
	for i := range bs.cells {
		bs.cells[i] = getU64(sections[7][8*i:])
	}
	return bs, nil
}

// restoreBucket installs a decoded snapshot bucket into the ring. With
// clean set (boot restore into an empty slot) the bucket is marked as
// already durable; otherwise (handoff injection) the columns merge into
// any existing content and the bucket goes dirty.
func (a *Aggregator) restoreBucket(bs *BucketSnapshot, clean bool) {
	n := len(bs.tweets)
	if n == 0 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.hasFloor && bs.Idx < a.floorIdx {
		a.dropped.Add(int64(n))
		return
	}
	b := a.buckets[bs.Idx]
	if b == nil {
		b = &bucket{}
		a.buckets[bs.Idx] = b
	}
	fresh := len(b.tweets) == 0
	b.tweets = append(b.tweets, bs.tweets...)
	b.assign = append(b.assign, bs.assign...)
	b.vecs = append(b.vecs, bs.vecs...)
	b.cells = append(b.cells, bs.cells...)
	b.sorted = fresh // blobs carry canonical order
	b.part = nil
	a.rev++
	b.rev = a.rev
	if clean && fresh {
		b.snapRev = b.rev
	}
	a.ingested.Add(int64(n))
	a.evictLocked()
}

// InjectSnapshot merges a decoded snapshot bucket into the ring as
// freshly ingested (dirty) content — the receiving half of a
// snapshot-streamed shard handoff, which skips re-resolving columns the
// sender already computed.
func (a *Aggregator) InjectSnapshot(bs *BucketSnapshot) { a.restoreBucket(bs, false) }

// restoreFloor raises the ring's eviction floor to a recovered value.
func (a *Aggregator) restoreFloor(hasFloor bool, floorIdx int64) {
	if !hasFloor {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.hasFloor || floorIdx > a.floorIdx {
		a.hasFloor, a.floorIdx = true, floorIdx
	}
}

// ExportSnapshots streams every live bucket as an encoded snapshot blob
// in ascending bucket order. Over unchanged ring content the stream is
// deterministic — same blobs, same order — so an interrupted handoff
// re-run regenerates identical frames and the receiver's per-sender
// dedup resumes cleanly.
func (a *Aggregator) ExportSnapshots(fn func(blob []byte) error) error {
	a.mu.Lock()
	var caps []capturedBucket
	for idx, b := range a.buckets {
		if len(b.tweets) == 0 {
			continue
		}
		ensureSortedLocked(b, a.slots)
		caps = append(caps, capturedBucket{
			idx: idx, rev: b.rev,
			tweets: slices.Clone(b.tweets),
			assign: slices.Clone(b.assign),
			vecs:   slices.Clone(b.vecs),
			cells:  slices.Clone(b.cells),
		})
	}
	a.mu.Unlock()
	slices.SortFunc(caps, func(x, y capturedBucket) int { return cmpI64(x.idx, y.idx) })
	for i := range caps {
		if err := fn(encodeBucketBlob(a.hash, a.width, a.slots, &caps[i])); err != nil {
			return err
		}
	}
	return nil
}

// snapBucketMeta is one bucket file entry in the snapshot manifest.
type snapBucketMeta struct {
	Idx   int64  `json:"idx"`
	Rev   uint64 `json:"rev"`
	Count int    `json:"count"`
	File  string `json:"file"`
}

// snapManifest is the atomically renamed catalogue tying bucket files to
// the store segments they reflect. Covered lists the segment files whose
// records are fully contained in the bucket files; everything else in
// the store catalogue at boot is the tail to replay.
type snapManifest struct {
	Version   int              `json:"version"`
	ShapeHash string           `json:"shape_hash"`
	Width     int64            `json:"width_ms"`
	HasFloor  bool             `json:"has_floor"`
	FloorIdx  int64            `json:"floor_idx"`
	Covered   []string         `json:"covered_segments,omitempty"`
	Buckets   []snapBucketMeta `json:"buckets"`
	CRC       string           `json:"crc"`
}

func (m *snapManifest) computeCRC() string {
	cp := *m
	cp.CRC = ""
	raw, err := json.Marshal(&cp)
	if err != nil {
		return ""
	}
	return fmt.Sprintf("%08x", crc32.ChecksumIEEE(raw))
}

// SnapshotStats is a snapshot directory's health block.
type SnapshotStats struct {
	// Buckets and Bytes describe the last committed manifest's files on
	// disk; Written counts bucket files written by the last commit;
	// LastUnixMs is the wall-clock commit time (0 before the first).
	Buckets    int   `json:"buckets"`
	Bytes      int64 `json:"bytes"`
	Written    int   `json:"written"`
	LastUnixMs int64 `json:"last_unix_ms"`
}

// SnapshotStore owns one snapshot directory: bucket blob files plus the
// manifest, every write temp-file-fsync-renamed so a crash at any byte
// leaves either the old snapshot or the new one, never a torn hybrid.
type SnapshotStore struct {
	dir string

	mu      sync.Mutex
	man     *snapManifest
	bytes   int64
	written int
	last    int64
}

// OpenSnapshotStore opens (or initialises) the snapshot directory and
// loads its manifest if one is intact. A missing or corrupt manifest is
// not an error here — recovery treats it as "no snapshot".
func OpenSnapshotStore(dir string) (*SnapshotStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("live: open snapshot dir %s: %w", dir, err)
	}
	s := &SnapshotStore{dir: dir}
	if man, err := s.loadManifest(); err == nil {
		s.man = man
		s.bytes = s.manifestBytes(man)
		// The manifest rename is the commit point, so its mtime is the
		// last commit time — surviving restarts for health reporting.
		if info, err := os.Stat(filepath.Join(dir, snapManifestName)); err == nil {
			s.last = info.ModTime().UnixMilli()
		}
	}
	return s, nil
}

// Dir returns the snapshot directory.
func (s *SnapshotStore) Dir() string { return s.dir }

// loadManifest reads and validates the manifest. It returns an error
// wrapping ErrSnapshotCorrupt for a missing, unparsable or
// checksum-failing file.
func (s *SnapshotStore) loadManifest() (*snapManifest, error) {
	raw, err := os.ReadFile(filepath.Join(s.dir, snapManifestName))
	if err != nil {
		return nil, fmt.Errorf("%w: read manifest: %w", ErrSnapshotCorrupt, err)
	}
	man := &snapManifest{}
	if err := json.Unmarshal(raw, man); err != nil {
		return nil, fmt.Errorf("%w: parse manifest: %w", ErrSnapshotCorrupt, err)
	}
	if man.Version != 1 {
		return nil, fmt.Errorf("%w: unsupported manifest version %d", ErrSnapshotCorrupt, man.Version)
	}
	if man.CRC == "" || man.CRC != man.computeCRC() {
		return nil, fmt.Errorf("%w: manifest checksum mismatch", ErrSnapshotCorrupt)
	}
	return man, nil
}

// manifestBytes sums the on-disk size of the manifest and its files.
func (s *SnapshotStore) manifestBytes(man *snapManifest) int64 {
	var total int64
	if info, err := os.Stat(filepath.Join(s.dir, snapManifestName)); err == nil {
		total += info.Size()
	}
	for _, bm := range man.Buckets {
		if info, err := os.Stat(filepath.Join(s.dir, bm.File)); err == nil {
			total += info.Size()
		}
	}
	return total
}

// Stats reports the committed snapshot state.
func (s *SnapshotStore) Stats() SnapshotStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := SnapshotStats{Bytes: s.bytes, Written: s.written, LastUnixMs: s.last}
	if s.man != nil {
		st.Buckets = len(s.man.Buckets)
	}
	return st
}

// Commit durably persists a ring capture: every dirty bucket becomes a
// fresh blob file, clean buckets keep their files from the previous
// manifest, and the new manifest — naming covered as the segment files
// it reflects — lands with one atomic rename. Files no longer referenced
// are deleted afterwards. On success the caller marks the capture's
// revisions snapshotted.
func (s *SnapshotStore) Commit(c *RingCapture, covered []string) (SnapshotStats, error) {
	t0 := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(c.dirty) == 0 && s.man != nil &&
		s.man.HasFloor == c.hasFloor && s.man.FloorIdx == c.floorIdx &&
		len(s.man.Buckets) == len(c.live) && slices.Equal(s.man.Covered, covered) {
		st := SnapshotStats{Buckets: len(s.man.Buckets), Bytes: s.bytes, Written: 0, LastUnixMs: s.last}
		return st, nil
	}
	prev := map[int64]snapBucketMeta{}
	if s.man != nil {
		for _, bm := range s.man.Buckets {
			prev[bm.Idx] = bm
		}
	}
	dirty := map[int64]*capturedBucket{}
	for i := range c.dirty {
		dirty[c.dirty[i].idx] = &c.dirty[i]
	}
	man := &snapManifest{
		Version:   1,
		ShapeHash: fmt.Sprintf("%016x", c.shapeHash),
		Width:     c.width,
		HasFloor:  c.hasFloor,
		FloorIdx:  c.floorIdx,
		Covered:   covered,
	}
	written := 0
	var blobBytes int64
	for _, ref := range c.live {
		if cb := dirty[ref.Idx]; cb != nil {
			name := fmt.Sprintf("bk-%d-%016x%s", cb.idx, cb.rev, snapSuffix)
			blob := encodeBucketBlob(c.shapeHash, c.width, c.slots, cb)
			if err := atomicWriteFile(filepath.Join(s.dir, name), blob); err != nil {
				return SnapshotStats{}, fmt.Errorf("live: write snapshot bucket %d: %w", cb.idx, err)
			}
			blobBytes += int64(len(blob))
			man.Buckets = append(man.Buckets, snapBucketMeta{Idx: cb.idx, Rev: cb.rev, Count: len(cb.tweets), File: name})
			written++
			continue
		}
		pm, ok := prev[ref.Idx]
		if !ok {
			return SnapshotStats{}, fmt.Errorf("live: snapshot commit: clean bucket %d has no prior file", ref.Idx)
		}
		man.Buckets = append(man.Buckets, pm)
	}
	man.CRC = man.computeCRC()
	raw, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return SnapshotStats{}, fmt.Errorf("live: marshal snapshot manifest: %w", err)
	}
	if err := atomicWriteFile(filepath.Join(s.dir, snapManifestName), raw); err != nil {
		return SnapshotStats{}, fmt.Errorf("live: save snapshot manifest: %w", err)
	}
	referenced := map[string]bool{}
	for _, bm := range man.Buckets {
		referenced[bm.File] = true
	}
	if entries, err := os.ReadDir(s.dir); err == nil {
		for _, e := range entries {
			name := e.Name()
			if strings.HasSuffix(name, snapSuffix) && !referenced[name] {
				_ = os.Remove(filepath.Join(s.dir, name))
			}
		}
	}
	s.man = man
	s.bytes = s.manifestBytes(man)
	s.written = written
	s.last = time.Now().UnixMilli()
	mSnapCommits.Inc()
	mSnapFiles.Add(int64(written))
	mSnapBytes.Add(blobBytes)
	mSnapCommitSecs.Observe(time.Since(t0).Seconds())
	return SnapshotStats{Buckets: len(man.Buckets), Bytes: s.bytes, Written: written, LastUnixMs: s.last}, nil
}

// atomicWriteFile writes data via a temp file, fsync and rename, so
// readers — and the recovery path after a crash — never observe a
// partially written file.
func atomicWriteFile(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}
