package live

import (
	"math/rand"
	"sort"
	"testing"
	"time"

	"geomob/internal/tweet"
)

// TestRollupFactors pins the tier selection: tiers exist only when the
// bucket width divides the span and the tiers nest.
func TestRollupFactors(t *testing.T) {
	cases := []struct {
		width time.Duration
		want  []int64
	}{
		{time.Hour, []int64{24, 720}},
		{6 * time.Hour, []int64{4, 120}},
		{24 * time.Hour, []int64{30}},
		{31 * 24 * time.Hour, nil},
		{7 * time.Hour, nil},
		{45 * time.Minute, []int64{32, 960}},
	}
	for _, c := range cases {
		got := rollupFactors(int64(c.width / time.Millisecond))
		if len(got) != len(c.want) {
			t.Fatalf("rollupFactors(%v) = %v, want %v", c.width, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("rollupFactors(%v) = %v, want %v", c.width, got, c.want)
			}
		}
	}
}

// TestRollupTierExactness drives the rollup cache end to end on a
// 6-hour ring (tiers [4, 120]) over a 7-month corpus: full-window
// queries must hit the tiers — building groups first, then serving from
// cache — and stay bit-identical to a cold rescan before and after the
// caches exist, across new ingest that invalidates groups, and after
// eviction prunes them. The bit-identity of folding tier partials in
// place of their member buckets is the merge-associativity contract
// mergePartials carries (DESIGN.md §11).
func TestRollupTierExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	all, sorted := snapCorpus(t, 700, 57)
	agg, err := NewAggregator(Options{BucketWidth: 6 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if len(agg.tiers) != 2 {
		t.Fatalf("6h ring has %d tiers, want 2", len(agg.tiers))
	}
	batches := randomBatches(rng, all, 7)
	half := len(batches) / 2
	for _, batch := range batches[:half] {
		if err := agg.Ingest(batch); err != nil {
			t.Fatal(err)
		}
	}
	halfCorpus := make([]tweet.Tweet, 0, len(all))
	for _, batch := range batches[:half] {
		halfCorpus = append(halfCorpus, batch...)
	}
	_, halfSorted := sortedCopy(halfCorpus)
	reqs := snapRequests(halfSorted)
	assertAggMatchesRefs(t, agg, reqs, snapRefs(t, halfSorted, reqs), "half corpus, cold tiers")

	st := agg.RollupStats()
	if len(st) != 2 || st[0].Factor != 4 || st[1].Factor != 120 {
		t.Fatalf("tier stats %+v, want factors [4, 120]", st)
	}
	// The full-window queries are served by the month tier; the windowed
	// request falls back to day groups at its edges — both tiers must
	// have built something by now.
	if st[0].Builds == 0 || st[1].Builds == 0 {
		t.Fatalf("queries built no groups: %+v", st)
	}
	// The same queries again are pure cache: hits grow, builds do not.
	if _, err := agg.Query(reqs[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := agg.Query(reqs[3]); err != nil {
		t.Fatal(err)
	}
	st2 := agg.RollupStats()
	for i := range st2 {
		if st2[i].Builds != st[i].Builds || st2[i].Hits <= st[i].Hits {
			t.Fatalf("repeat queries rebuilt tier %d groups: %+v then %+v", i, st, st2)
		}
	}

	// More ingest dirties member buckets; stale groups must rebuild and
	// answers must track the grown corpus exactly.
	for _, batch := range batches[half:] {
		if err := agg.Ingest(batch); err != nil {
			t.Fatal(err)
		}
	}
	reqs = snapRequests(sorted)
	assertAggMatchesRefs(t, agg, reqs, snapRefs(t, sorted, reqs), "full corpus, stale tiers")

	// Eviction prunes groups wholly below the floor.
	before := agg.RollupStats()
	live := agg.Buckets()
	agg.mu.Lock()
	agg.maxBuckets = live / 2
	agg.evictLocked()
	agg.mu.Unlock()
	after := agg.RollupStats()
	if after[0].Groups >= before[0].Groups {
		t.Fatalf("eviction kept all %d day groups (was %d)", after[0].Groups, before[0].Groups)
	}
}

// sortedCopy returns the slice and a canonically sorted copy.
func sortedCopy(in []tweet.Tweet) ([]tweet.Tweet, []tweet.Tweet) {
	s := append([]tweet.Tweet(nil), in...)
	sort.Sort(tweet.ByUserTime(s))
	return in, s
}
