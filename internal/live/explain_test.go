package live

import (
	"reflect"
	"testing"
	"time"
)

// TestExplainCoverageMatchesFold pins the dry span selection against
// the real one: for every request shape, ExplainCoverage must report
// exactly the accounting FoldPartial records while actually folding —
// the two walk the same selection loop, and this test keeps them from
// drifting apart.
func TestExplainCoverageMatchesFold(t *testing.T) {
	_, sorted := snapCorpus(t, 300, 91)
	agg, err := NewAggregator(Options{BucketWidth: 6 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if err := agg.Ingest(sorted); err != nil {
		t.Fatal(err)
	}
	for i, req := range snapRequests(sorted) {
		// Dry first: on a cold aggregator the explain pass must not
		// warm anything the fold would then skip building.
		cov, err := agg.ExplainCoverage(req)
		if err != nil {
			t.Fatalf("req %d: ExplainCoverage: %v", i, err)
		}
		fp, err := agg.FoldPartial(req)
		if err != nil {
			t.Fatalf("req %d: FoldPartial: %v", i, err)
		}
		if !reflect.DeepEqual(cov, fp.Coverage) {
			t.Fatalf("req %d: ExplainCoverage %+v != fold coverage %+v", i, cov, fp.Coverage)
		}
		if cov.Buckets == 0 {
			t.Fatalf("req %d: fold covered no buckets", i)
		}
		// Repeat after the fold warmed the caches: still identical.
		again, err := agg.ExplainCoverage(req)
		if err != nil {
			t.Fatalf("req %d: warm ExplainCoverage: %v", i, err)
		}
		if !reflect.DeepEqual(again, cov) {
			t.Fatalf("req %d: warm ExplainCoverage %+v != cold %+v", i, again, cov)
		}
	}
}

// TestExplainCoverageReadOnly proves the dry pass builds nothing: on a
// freshly ingested ring, ExplainCoverage leaves the bucket build
// counter and every rollup tier untouched.
func TestExplainCoverageReadOnly(t *testing.T) {
	_, sorted := snapCorpus(t, 200, 17)
	agg, err := NewAggregator(Options{BucketWidth: 6 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if err := agg.Ingest(sorted); err != nil {
		t.Fatal(err)
	}
	for _, req := range snapRequests(sorted) {
		if _, err := agg.ExplainCoverage(req); err != nil {
			t.Fatalf("ExplainCoverage: %v", err)
		}
	}
	if b := agg.Builds(); b != 0 {
		t.Fatalf("explain pass built %d bucket partials, want 0", b)
	}
	for _, st := range agg.RollupStats() {
		if st.Builds != 0 || st.Groups != 0 {
			t.Fatalf("explain pass touched rollup tier %+v", st)
		}
	}
}

// TestFoldCoverageMerge pins coordinator-side accumulation across
// shard partials, including tier-fold merging by factor.
func TestFoldCoverageMerge(t *testing.T) {
	a := FoldCoverage{
		Buckets:     10,
		TierFolds:   []TierFold{{Factor: 24, Groups: 1, Buckets: 8}},
		FullBuckets: 1, ResidualBuckets: 1, ResidualRecords: 5,
	}
	b := FoldCoverage{
		Buckets:     12,
		TierFolds:   []TierFold{{Factor: 720, Groups: 1, Buckets: 9}, {Factor: 24, Groups: 1, Buckets: 2}},
		FullBuckets: 1, ResidualBuckets: 0, ResidualRecords: 0,
	}
	a.Merge(b)
	want := FoldCoverage{
		Buckets:     22,
		TierFolds:   []TierFold{{Factor: 24, Groups: 2, Buckets: 10}, {Factor: 720, Groups: 1, Buckets: 9}},
		FullBuckets: 2, ResidualBuckets: 1, ResidualRecords: 5,
	}
	if !reflect.DeepEqual(a, want) {
		t.Fatalf("Merge = %+v, want %+v", a, want)
	}
	var nilCov *FoldCoverage
	nilCov.Merge(b) // must not panic
}
