package live

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"geomob/internal/obs"
	"geomob/internal/tweet"
	"geomob/internal/tweetdb"
)

// Ingest-path metrics (DESIGN.md §12). All per-batch, never per-record:
// one counter add and one histogram observation per flush keeps the
// binary ingest hot path at 0 allocs/op per record.
var (
	mIngestRecords = obs.Def.Counter("geomob_ingest_records_total", "Records flushed durably through the ingest path.")
	mIngestBatches = obs.Def.Counter("geomob_ingest_batches_total", "Ingest batch flushes (store append + ring route).")
	mIngestFlush   = obs.Def.Histogram("geomob_ingest_flush_seconds", "Latency of one ingest batch flush.", nil)
	mIngestBad     = obs.Def.Counter("geomob_ingest_bad_input_total", "Ingest streams rejected for malformed records or frames.")
)

// Ingestor is the streaming write path: it buffers records and, per
// flushed batch, (1) persists the batch durably through a
// tweetdb.Appender and (2) routes the same batch into the aggregator's
// bucket ring, where each record passes the assignment hot path exactly
// once. The two sides flush together, so the ring never lags the store.
//
// Unlike the bare Appender, an Ingestor is safe for concurrent use —
// it is the front door of mobserve's POST /v1/ingest handler.
type Ingestor struct {
	mu    sync.Mutex
	app   *tweetdb.Appender
	store *tweetdb.Store
	agg   *Aggregator // nil disables ring routing (durable-only ingest)
	// batch buffers the records of the in-progress flush column-wise; the
	// first handed records were already handed to the appender, so a flush
	// retried after a transient failure never re-appends them (no
	// duplicate writes).
	batch  *tweet.Batch
	handed int
	limit  int
	total  atomic.Int64
}

// ErrBadInput marks ingest failures caused by the caller's records —
// malformed NDJSON or invalid tweets — as opposed to internal storage or
// routing failures. Service layers map it to a 400 instead of a 500.
var ErrBadInput = errors.New("live: bad ingest input")

// NewIngestor builds an ingestor over the store, routing flushed batches
// into agg (which may be nil for a durable-only ingest path). batchSize 0
// selects tweetdb.DefaultSegmentRecords.
func NewIngestor(store *tweetdb.Store, agg *Aggregator, batchSize int) (*Ingestor, error) {
	app, err := tweetdb.NewAppender(store, batchSize)
	if err != nil {
		return nil, err
	}
	if batchSize == 0 {
		batchSize = tweetdb.DefaultSegmentRecords
	}
	b := &tweet.Batch{}
	b.Grow(min(batchSize, 1<<14))
	return &Ingestor{
		app:   app,
		store: store,
		agg:   agg,
		batch: b,
		limit: batchSize,
	}, nil
}

// Snapshot captures the ring and the store's segment catalogue under
// the ingest lock — the lock that orders every store append before its
// ring route, which is exactly what makes "these segment files are
// fully reflected in these bucket files" a true statement — and commits
// the capture to snaps. On success the captured buckets go clean, so
// the next snapshot writes only what changed since.
func (i *Ingestor) Snapshot(snaps *SnapshotStore) (SnapshotStats, error) {
	if i.agg == nil {
		return SnapshotStats{}, fmt.Errorf("live: snapshot: ingestor has no ring")
	}
	i.mu.Lock()
	c := i.agg.Capture()
	var covered []string
	for _, m := range i.store.Segments() {
		covered = append(covered, m.File)
	}
	i.mu.Unlock()
	st, err := snaps.Commit(c, covered)
	if err == nil {
		i.agg.MarkSnapshotted(c)
	}
	return st, err
}

// Add buffers one record, flushing when the batch fills.
func (i *Ingestor) Add(t tweet.Tweet) error {
	if err := t.Validate(); err != nil {
		return fmt.Errorf("%w: %w", ErrBadInput, err)
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	i.batch.Append(t)
	if i.batch.Len() >= i.limit {
		return i.flushLocked()
	}
	return nil
}

// IngestBatch buffers a whole batch, flushing when the buffer fills —
// the column-wise counterpart of Add used by the binary ingest path.
// Invalid records reject the entire batch before any is buffered. The
// batch is copied in; the caller keeps ownership.
func (i *Ingestor) IngestBatch(b *tweet.Batch) error {
	if b.Len() == 0 {
		return nil
	}
	if err := b.Validate(); err != nil {
		return fmt.Errorf("%w: %w", ErrBadInput, err)
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	i.batch.AppendBatch(b)
	if i.batch.Len() >= i.limit {
		return i.flushLocked()
	}
	return nil
}

// Flush persists and routes any buffered records as one batch.
func (i *Ingestor) Flush() error {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.flushLocked()
}

func (i *Ingestor) flushLocked() error {
	n := i.batch.Len()
	if n == 0 {
		return nil
	}
	t0 := time.Now()
	// Hand the pending records to the appender exactly once: the appender
	// copies them into its own buffer before attempting any write and
	// keeps that buffer across failures, so a retried Flush resumes at
	// the high-water mark instead of re-appending records the appender
	// already owns. This makes flush retries on the same Ingestor safe;
	// delivery to the Ingestor itself is still at-least-once — a caller
	// that re-sends records it already handed in will duplicate them,
	// as the store keeps no dedup state.
	if i.handed < n {
		pending := i.batch.Slice(i.handed, n)
		i.handed = n
		if err := i.app.AppendBatch(pending); err != nil {
			return err
		}
	}
	if err := i.app.Flush(); err != nil {
		return err
	}
	// Past this point the batch is durable: it must not be retried even
	// if ring routing fails (it cannot — records were pre-validated —
	// but a duplicate store write would be the worse failure).
	routeErr := error(nil)
	if i.agg != nil {
		routeErr = i.agg.IngestBatch(i.batch)
	}
	i.total.Add(int64(n))
	i.batch.Reset()
	i.handed = 0
	mIngestRecords.Add(int64(n))
	mIngestBatches.Inc()
	mIngestFlush.Observe(time.Since(t0).Seconds())
	return routeErr
}

// Total returns the number of records flushed so far.
func (i *Ingestor) Total() int64 { return i.total.Load() }

// Backfill routes every record of the store into the aggregator's ring in
// one scan — the boot-time hydration of a live (or cluster shard) node:
// one scan now, then never again, because every later record arrives
// through an Ingestor and is resolved exactly once on its way in. It
// returns the number of records backfilled.
func Backfill(a *Aggregator, store *tweetdb.Store) (int64, error) {
	it := store.Scan(tweetdb.Query{})
	defer it.Close()
	total := int64(0)
	buf := &tweet.Batch{}
	const chunk = 1 << 14
	for {
		blk, ok := it.NextBlock()
		if !ok {
			break
		}
		// The block aliases the segment file bytes; records move into the
		// ring in bounded column chunks, never one at a time.
		for off := 0; off < blk.Len(); off += chunk {
			end := off + chunk
			if end > blk.Len() {
				end = blk.Len()
			}
			buf.Reset()
			blk.AppendTo(buf, off, end)
			err := a.IngestBatch(buf)
			total += int64(end - off)
			if err != nil {
				return total, err
			}
		}
	}
	return total, it.Err()
}

// IngestNDJSON drains an NDJSON stream through the ingestor and flushes
// at the end, returning how many records the stream contributed. On a
// malformed record the error carries the line number and everything
// before it is still flushed — the batch boundary the caller observes is
// exactly what was accepted.
func (i *Ingestor) IngestNDJSON(r io.Reader) (int, error) {
	return DrainNDJSON(r, i.Add, i.Flush)
}

// DrainNDJSON is the single NDJSON ingest loop every write front shares
// (Ingestor, cluster coordinator, cluster shard node): records stream
// into add one by one and flush runs at the end. The returned count is
// the records add accepted before the first failure — the resume point
// the at-least-once contract hands back to clients; a record whose add
// failed is never counted. On a malformed record (or a failed
// transport: the reader surfaces stream errors such as request-body
// bounds) everything accepted so far is still flushed, and the error
// wraps ErrBadInput plus the cause with %w on both sides so service
// layers can map it by walking the chain (400 for the caller's records,
// 413 for bufio.ErrTooLong / http.MaxBytesError size violations).
func DrainNDJSON(r io.Reader, add func(tweet.Tweet) error, flush func() error) (int, error) {
	rd := tweet.NewNDJSONReader(r)
	n := 0
	for {
		t, err := rd.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			mIngestBad.Inc()
			if ferr := flush(); ferr != nil {
				return n, ferr
			}
			return n, fmt.Errorf("%w: %w", ErrBadInput, err)
		}
		if err := add(t); err != nil {
			return n, err
		}
		n++
	}
	return n, flush()
}

// IngestBinary drains a length-prefixed binary batch stream (the
// tweet.BatchReader wire format) through the ingestor and flushes at the
// end, returning how many records the stream contributed.
func (i *Ingestor) IngestBinary(r io.Reader) (int, error) {
	return DrainBinary(r, 0, i.IngestBatch, i.Flush)
}

// DrainBinary is DrainNDJSON for the binary batch wire format: frames
// stream into add one whole batch at a time and flush runs at the end.
// maxFrame bounds a single frame (0 selects tweet.DefaultMaxFrameBytes);
// oversized frames surface tweet.ErrFrameTooLarge through the returned
// error chain so service layers can answer 413, exactly like
// http.MaxBytesError on the NDJSON path. The returned count is in
// records (not frames): all records of every frame add accepted before
// the first failure — a frame whose add failed contributes none. On a
// corrupt frame everything accepted so far is still flushed and the
// error wraps ErrBadInput plus the cause.
func DrainBinary(r io.Reader, maxFrame int64, add func(*tweet.Batch) error, flush func() error) (int, error) {
	rd := tweet.NewBatchReader(r, maxFrame)
	b := &tweet.Batch{}
	n := 0
	for {
		err := rd.Read(b)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			mIngestBad.Inc()
			if ferr := flush(); ferr != nil {
				return n, ferr
			}
			return n, fmt.Errorf("%w: %w", ErrBadInput, err)
		}
		if err := add(b); err != nil {
			return n, err
		}
		n += b.Len()
	}
	return n, flush()
}
