package live

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"geomob/internal/tweet"
	"geomob/internal/tweetdb"
)

// Ingestor is the streaming write path: it buffers records and, per
// flushed batch, (1) persists the batch durably through a
// tweetdb.Appender and (2) routes the same batch into the aggregator's
// bucket ring, where each record passes the assignment hot path exactly
// once. The two sides flush together, so the ring never lags the store.
//
// Unlike the bare Appender, an Ingestor is safe for concurrent use —
// it is the front door of mobserve's POST /v1/ingest handler.
type Ingestor struct {
	mu  sync.Mutex
	app *tweetdb.Appender
	agg *Aggregator // nil disables ring routing (durable-only ingest)
	// batch buffers the records of the in-progress flush; batch[:handed]
	// were already handed to the appender, so a flush retried after a
	// transient failure never re-appends them (no duplicate writes).
	batch  []tweet.Tweet
	handed int
	limit  int
	total  atomic.Int64
}

// ErrBadInput marks ingest failures caused by the caller's records —
// malformed NDJSON or invalid tweets — as opposed to internal storage or
// routing failures. Service layers map it to a 400 instead of a 500.
var ErrBadInput = errors.New("live: bad ingest input")

// NewIngestor builds an ingestor over the store, routing flushed batches
// into agg (which may be nil for a durable-only ingest path). batchSize 0
// selects tweetdb.DefaultSegmentRecords.
func NewIngestor(store *tweetdb.Store, agg *Aggregator, batchSize int) (*Ingestor, error) {
	app, err := tweetdb.NewAppender(store, batchSize)
	if err != nil {
		return nil, err
	}
	if batchSize == 0 {
		batchSize = tweetdb.DefaultSegmentRecords
	}
	return &Ingestor{
		app:   app,
		agg:   agg,
		batch: make([]tweet.Tweet, 0, min(batchSize, 1<<14)),
		limit: batchSize,
	}, nil
}

// Add buffers one record, flushing when the batch fills.
func (i *Ingestor) Add(t tweet.Tweet) error {
	if err := t.Validate(); err != nil {
		return fmt.Errorf("%w: %w", ErrBadInput, err)
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	i.batch = append(i.batch, t)
	if len(i.batch) >= i.limit {
		return i.flushLocked()
	}
	return nil
}

// Flush persists and routes any buffered records as one batch.
func (i *Ingestor) Flush() error {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.flushLocked()
}

func (i *Ingestor) flushLocked() error {
	if len(i.batch) == 0 {
		return nil
	}
	// Hand each record to the appender exactly once: a retried Flush
	// after a transient failure resumes at the high-water mark instead
	// of re-appending records the appender (or an internal auto-flush)
	// already owns. This makes flush retries on the same Ingestor safe;
	// delivery to the Ingestor itself is still at-least-once — a caller
	// that re-sends records it already handed in will duplicate them,
	// as the store keeps no dedup state.
	for i.handed < len(i.batch) {
		if err := i.app.Add(i.batch[i.handed]); err != nil {
			return err
		}
		i.handed++
	}
	if err := i.app.Flush(); err != nil {
		return err
	}
	// Past this point the batch is durable: it must not be retried even
	// if ring routing fails (it cannot — records were pre-validated —
	// but a duplicate store write would be the worse failure).
	routeErr := error(nil)
	if i.agg != nil {
		routeErr = i.agg.Ingest(i.batch)
	}
	i.total.Add(int64(len(i.batch)))
	i.batch = i.batch[:0]
	i.handed = 0
	return routeErr
}

// Total returns the number of records flushed so far.
func (i *Ingestor) Total() int64 { return i.total.Load() }

// Backfill routes every record of the store into the aggregator's ring in
// one scan — the boot-time hydration of a live (or cluster shard) node:
// one scan now, then never again, because every later record arrives
// through an Ingestor and is resolved exactly once on its way in. It
// returns the number of records backfilled.
func Backfill(a *Aggregator, store *tweetdb.Store) (int64, error) {
	it := store.Scan(tweetdb.Query{})
	defer it.Close()
	total := int64(0)
	batch := make([]tweet.Tweet, 0, 1<<14)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		err := a.Ingest(batch)
		total += int64(len(batch))
		batch = batch[:0]
		return err
	}
	for {
		t, ok := it.Next()
		if !ok {
			break
		}
		batch = append(batch, t)
		if len(batch) == cap(batch) {
			if err := flush(); err != nil {
				return total, err
			}
		}
	}
	if err := it.Err(); err != nil {
		return total, err
	}
	if err := flush(); err != nil {
		return total, err
	}
	return total, nil
}

// IngestNDJSON drains an NDJSON stream through the ingestor and flushes
// at the end, returning how many records the stream contributed. On a
// malformed record the error carries the line number and everything
// before it is still flushed — the batch boundary the caller observes is
// exactly what was accepted.
func (i *Ingestor) IngestNDJSON(r io.Reader) (int, error) {
	return DrainNDJSON(r, i.Add, i.Flush)
}

// DrainNDJSON is the single NDJSON ingest loop every write front shares
// (Ingestor, cluster coordinator, cluster shard node): records stream
// into add one by one and flush runs at the end. The returned count is
// the records add accepted before the first failure — the resume point
// the at-least-once contract hands back to clients; a record whose add
// failed is never counted. On a malformed record (or a failed
// transport: the reader surfaces stream errors such as request-body
// bounds) everything accepted so far is still flushed, and the error
// wraps ErrBadInput plus the cause with %w on both sides so service
// layers can map it by walking the chain (400 for the caller's records,
// 413 for bufio.ErrTooLong / http.MaxBytesError size violations).
func DrainNDJSON(r io.Reader, add func(tweet.Tweet) error, flush func() error) (int, error) {
	rd := tweet.NewNDJSONReader(r)
	n := 0
	for {
		t, err := rd.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			if ferr := flush(); ferr != nil {
				return n, ferr
			}
			return n, fmt.Errorf("%w: %w", ErrBadInput, err)
		}
		if err := add(t); err != nil {
			return n, err
		}
		n++
	}
	return n, flush()
}
