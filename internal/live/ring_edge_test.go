package live

import (
	"context"
	"errors"
	"math"
	"sort"
	"testing"
	"time"

	"geomob/internal/core"
	"geomob/internal/testx"
	"geomob/internal/tweet"
)

// Ring edge cases: bucket indexing far from the epoch (including the
// negative side, where naive integer division truncates toward zero
// instead of flooring), appends landing exactly on bucket boundaries,
// and query windows entirely outside the materialised coverage.

// TestBucketIdxFloorDivision pins the floor-division contract directly:
// for any timestamp, bucket b holds exactly [b·width, (b+1)·width).
func TestBucketIdxFloorDivision(t *testing.T) {
	agg, err := NewAggregator(Options{BucketWidth: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	w := int64(time.Hour / time.Millisecond)
	cases := []struct {
		ts   int64
		want int64
	}{
		{0, 0}, {1, 0}, {w - 1, 0}, {w, 1}, {w + 1, 1},
		{-1, -1}, {-w, -1}, {-w - 1, -2}, {-2 * w, -2},
		// Far from the epoch on both sides (centuries away).
		{w * 3_000_000, 3_000_000}, {w*3_000_000 + w - 1, 3_000_000},
		{-w * 3_000_000, -3_000_000}, {-w*3_000_000 - 1, -3_000_001},
		{math.MaxInt64 / w * w, math.MaxInt64 / w},
	}
	for _, c := range cases {
		if got := agg.bucketIdx(c.ts); got != c.want {
			t.Errorf("bucketIdx(%d) = %d, want %d", c.ts, got, c.want)
		}
	}
}

// edgeTweets builds a small two-user corpus at the given timestamps,
// alternating between two Sydney-area coordinates so flows and gyration
// are non-trivial.
func edgeTweets(tss []int64) []tweet.Tweet {
	out := make([]tweet.Tweet, 0, len(tss))
	for i, ts := range tss {
		lat, lon := -33.8688, 151.2093
		if i%2 == 1 {
			lat, lon = -33.7, 150.9
		}
		out = append(out, tweet.Tweet{
			ID: int64(i + 1), UserID: int64(1 + i%2), TS: ts, Lat: lat, Lon: lon,
		})
	}
	return out
}

// queryMatchesExecute ingests the records and checks the folded answer of
// every request equals a cold pass, including the empty-dataset cases.
func queryMatchesExecute(t *testing.T, width time.Duration, records []tweet.Tweet, reqs []core.Request) *Aggregator {
	t.Helper()
	agg, err := NewAggregator(Options{BucketWidth: width})
	if err != nil {
		t.Fatal(err)
	}
	if err := agg.Ingest(records); err != nil {
		t.Fatal(err)
	}
	sorted := append([]tweet.Tweet(nil), records...)
	sort.Sort(tweet.ByUserTime(sorted))
	study := core.NewStudyWithOptions(core.SliceSource(sorted), core.StudyOptions{Workers: 1})
	for ri, req := range reqs {
		liveRes, liveErr := agg.Query(req)
		ref, refErr := study.Execute(context.Background(), req)
		if refErr != nil {
			// Degenerate inputs (empty windows, corpora too sparse for a
			// fit) must fail identically on both paths: same sentinel for
			// empty datasets, same assembly error otherwise.
			if errors.Is(refErr, core.ErrEmptyDataset) {
				if !errors.Is(liveErr, core.ErrEmptyDataset) {
					t.Fatalf("req %d (%s): live err = %v, want ErrEmptyDataset", ri, req.Key(), liveErr)
				}
			} else if liveErr == nil || liveErr.Error() != refErr.Error() {
				t.Fatalf("req %d (%s): live err = %v, want %v", ri, req.Key(), liveErr, refErr)
			}
			continue
		}
		if liveErr != nil {
			t.Fatalf("req %d (%s): live query: %v", ri, req.Key(), liveErr)
		}
		if !testx.ResultsBitEqual(liveRes, ref) {
			t.Fatalf("req %d (%s): folded result diverges from cold pass", ri, req.Key())
		}
	}
	return agg
}

// TestRingFarFromEpoch: records centuries away from the epoch — on both
// sides — fold exactly. The negative side is the floor-division trap: a
// truncating index would put ts = -1 in bucket 0 and fold it into the
// wrong residual.
func TestRingFarFromEpoch(t *testing.T) {
	w := int64(time.Hour / time.Millisecond)
	for _, base := range []int64{-w * 3_000_000, w * 3_000_000, -5 * w} {
		tss := []int64{
			base - 1, base, base + 1,
			base + w/2, base + w - 1, base + w,
			base + 3*w + 7, base + 5*w,
		}
		records := edgeTweets(tss)
		reqs := []core.Request{
			{},
			{From: time.UnixMilli(base).UTC(), To: time.UnixMilli(base + w).UTC()},
			{From: time.UnixMilli(base - w).UTC(), To: time.UnixMilli(base + 6*w).UTC()},
			{Analyses: []core.Analysis{core.AnalysisStats},
				From: time.UnixMilli(base + 1).UTC(), To: time.UnixMilli(base + 3*w).UTC()},
		}
		queryMatchesExecute(t, time.Hour, records, reqs)
	}
}

// TestRingBucketBoundaryAppends: records landing exactly on bucket
// boundaries belong to the bucket they open ([b·width, (b+1)·width)),
// and window edges aligned to boundaries select exactly the covered
// buckets — no residual double-count, no dropped boundary record.
func TestRingBucketBoundaryAppends(t *testing.T) {
	w := int64(time.Hour / time.Millisecond)
	// Every record sits exactly on a boundary; user 1 and 2 alternate.
	records := edgeTweets([]int64{0, w, 2 * w, 3 * w, 4 * w, 0, w, 2 * w})
	// Distinct ids for the duplicate-timestamp tail.
	for i := 5; i < 8; i++ {
		records[i].ID += 100
	}
	stats := []core.Analysis{core.AnalysisStats}
	reqs := []core.Request{
		{},
		// Window edges exactly on bucket boundaries: fully covered
		// buckets only, the materialised partials answer directly.
		{Analyses: stats, From: time.UnixMilli(w).UTC(), To: time.UnixMilli(3 * w).UTC()},
		// Upper edge one past a boundary: the boundary record at 3w is a
		// one-record residual.
		{Analyses: stats, From: time.UnixMilli(w).UTC(), To: time.UnixMilli(3*w + 1).UTC()},
		// Lower edge one short of a boundary: residual on the left.
		{Analyses: stats, From: time.UnixMilli(w - 1).UTC(), To: time.UnixMilli(4 * w).UTC()},
		// A window that is exactly one boundary instant.
		{Analyses: stats, From: time.UnixMilli(2 * w).UTC(), To: time.UnixMilli(2*w + 1).UTC()},
	}
	agg := queryMatchesExecute(t, time.Hour, records, reqs)

	// The bucket-aligned window folds materialised partials: repeating it
	// must not rebuild anything.
	if _, err := agg.Query(reqs[1]); err != nil {
		t.Fatal(err)
	}
	builds := agg.Builds()
	if _, err := agg.Query(reqs[1]); err != nil {
		t.Fatal(err)
	}
	if got := agg.Builds(); got != builds {
		t.Fatalf("aligned repeat rebuilt %d partials, want 0", got-builds)
	}
}

// TestRingWindowOutsideCoverage: windows entirely before or after the
// materialised buckets must answer ErrEmptyDataset exactly like a cold
// pass over the same (absent) records — never fold a neighbouring
// bucket's data, and never invent state.
func TestRingWindowOutsideCoverage(t *testing.T) {
	w := int64(time.Hour / time.Millisecond)
	records := edgeTweets([]int64{10 * w, 10*w + 5, 11 * w, 12*w - 1})
	reqs := []core.Request{
		// Entirely before coverage.
		{From: time.UnixMilli(0).UTC(), To: time.UnixMilli(9 * w).UTC()},
		// Entirely after coverage.
		{From: time.UnixMilli(13 * w).UTC(), To: time.UnixMilli(20 * w).UTC()},
		// Adjacent but disjoint: ends exactly where coverage starts.
		{From: time.UnixMilli(9 * w).UTC(), To: time.UnixMilli(10 * w).UTC()},
		// Starts exactly where coverage ends.
		{From: time.UnixMilli(12 * w).UTC(), To: time.UnixMilli(13 * w).UTC()},
		// Inside the covered bucket range but between records: the
		// buckets exist, the window slices nothing.
		{From: time.UnixMilli(10*w + 6).UTC(), To: time.UnixMilli(10*w + 7).UTC()},
	}
	agg := queryMatchesExecute(t, time.Hour, records, reqs)

	// WindowTweets agrees: nothing materialises outside coverage.
	if tws, err := agg.WindowTweets(0, 9*w); err != nil || len(tws) != 0 {
		t.Fatalf("WindowTweets outside coverage: %d records, err=%v", len(tws), err)
	}
}
