// Package live is the streaming ingest and incremental aggregation
// subsystem: it absorbs a continuous feed of tweet batches and answers
// windowed Study requests by folding materialised per-bucket partial
// states instead of rescanning storage segments.
//
// The design (DESIGN.md §7) rests on three pieces:
//
//   - an ingest path that routes every tweet through the grid-resolved
//     assignment hot path (mobility.MultiScaleMapper) exactly once, at
//     arrival, caching the per-slot area assignments, the geohash cell id
//     and the unit sphere vector alongside the record in a time-bucket
//     ring;
//
//   - one materialised partial per bucket — per-user boundary summaries
//     (first/last timestamp, point and assignment), per-user interior
//     series (waiting times, displacements, unit-vector addends, distinct
//     cells) and interior flow matrices — rebuilt only when a batch lands
//     in that bucket;
//
//   - a fold that merges the partials covering a [From, To) window in
//     user-major order, stitching the cross-bucket boundaries (waiting
//     times, displacements, flow transitions, unique-user bitsets) and
//     replaying the per-user float accumulations in exactly the serial
//     order, so the folded observer state — and hence the assembled
//     Result — is bit-identical to a cold full pass over the same
//     substream at any worker count.
//
// Requests whose window edges are not bucket-aligned fold the covered
// buckets plus freshly built residual partials over the two partial edge
// buckets; no path touches the backing store, so repeated windowed
// queries leave tweetdb.Store.ScanCount unchanged.
package live

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"geomob/internal/census"
	"geomob/internal/core"
	"geomob/internal/geo"
	"geomob/internal/mobility"
	"geomob/internal/obs"
	"geomob/internal/tweet"
)

// Bucket-ring metrics (DESIGN.md §12). Ring counters are per-batch
// (one add per IngestBatch) so the hot path cost stays one atomic per
// batch, not per record.
var (
	mRingRecords = obs.Def.Counter("geomob_ring_records_total", "Records routed into the bucket ring.")
	mRingDropped = obs.Def.Counter("geomob_ring_dropped_total", "Records dropped below the ring's eviction floor.")
	mRingBuilds  = obs.Def.Counter("geomob_ring_builds_total", "Full-bucket partial materialisations.")
	mRingFold    = obs.Def.Histogram("geomob_ring_fold_seconds", "Latency of a windowed bucket-fold query (collect + fold + assemble).", nil)
)

// ErrNotCovered reports that a request's shape (scales or radius) is not
// materialised by this aggregator; callers fall back to a streaming pass.
var ErrNotCovered = errors.New("live: request shape not materialized by this aggregator")

// ErrEvicted reports that the request window reaches below the ring's
// eviction floor: the buckets that held the data were dropped under
// MaxBuckets pressure, so only the backing store can answer.
var ErrEvicted = errors.New("live: request window reaches below the ring's eviction floor")

// Options configure an Aggregator.
type Options struct {
	// BucketWidth is the fixed time-bucket width. Zero means one hour.
	BucketWidth time.Duration
	// Scales are the geographic scales to materialise. Empty means all
	// three paper scales.
	Scales []census.Scale
	// Radius overrides the area-search radius ε in metres at every
	// materialised scale, exactly like core.Request.Radius: zero keeps
	// each scale's paper default and additionally materialises the fixed
	// 0.5 km metropolitan variant (Fig. 3b) when the metropolitan scale
	// is included.
	Radius float64
	// MaxBuckets bounds the ring; zero means unbounded. When exceeded,
	// the oldest buckets are evicted and the eviction floor rises —
	// windows reaching below it answer ErrEvicted.
	MaxBuckets int
}

// Aggregator is the bucket ring: per fixed time bucket, the pre-resolved
// records and a lazily materialised partial covering the full default
// request shape (stats + population + mobility at every configured scale,
// plus the metro 0.5 km variant), which subsumes every analysis subset.
// It is safe for concurrent use.
// Shape is the immutable assignment machinery an Aggregator runs on:
// the resolved region sets, the multi-scale grid resolvers, and the
// flat bitset layout. Building one is the expensive part of aggregator
// construction (every grid resolver is materialised), so callers that
// need many aggregators over the same configuration — the cluster tier
// keeps one per placement slot — build one Shape and stamp aggregators
// out of it with Shape.NewAggregator.
type Shape struct {
	width  int64 // bucket width in ms
	scales []census.Scale
	// regions[s] is the region set of scale slot s; slot layout is the
	// configured scales in order, then (optionally) the metro 0.5 km
	// variant at metroSlot.
	regions    []census.RegionSet
	msm        *mobility.MultiScaleMapper
	slotRadius []float64
	slotOf     map[census.Scale]int
	metroSlot  int // -1 when not materialised
	slots      int
	// Per-user area bitsets are flat: wordOff[s] is slot s's word offset
	// within a user's totalWords-word row.
	wordsPerSlot []int
	wordOff      []int
	totalWords   int
	zeroWords    []uint64
	maxBuckets   int
	// hash fingerprints the assignment configuration (width, scales,
	// radii, area counts). Snapshot files record it so a restore never
	// injects pre-resolved columns into a ring with different machinery.
	hash uint64
	// rollups are the tier grouping factors, in base buckets, coarsening
	// left to right (day, then ~month, when the width divides them).
	rollups []int64
}

type Aggregator struct {
	*Shape

	builds   atomic.Int64 // full-bucket partial materialisations
	ingested atomic.Int64 // records accepted into the ring
	dropped  atomic.Int64 // late records below the eviction floor

	mu       sync.Mutex
	buckets  map[int64]*bucket
	rev      uint64
	floorIdx int64 // buckets below this index were evicted
	hasFloor bool
	// tiers are the rollup caches, one per grouping factor (finest
	// first): lazily merged multi-bucket partials that let a wide window
	// fold dozens of partials instead of thousands (DESIGN.md §11).
	tiers []*rollupTier
}

// bucket holds one time bucket's raw pre-resolved records plus the
// materialised partial. assign/vecs/cells are parallel to tweets with
// strides slots/3/1 — filled once at ingest, so a partial rebuild never
// re-runs the spatial resolvers or the trigonometry.
type bucket struct {
	rev    uint64
	tweets []tweet.Tweet
	assign []int16
	vecs   []float64
	cells  []uint64
	sorted bool
	part   *partial
	// snapRev is the revision last committed to a durable snapshot; the
	// bucket is dirty — and will be rewritten by the next snapshot
	// commit — exactly while rev != snapRev.
	snapRev uint64
}

// NewAggregator builds the ring and its assignment machinery (one grid
// resolver per slot, built once for the aggregator's lifetime).
func NewAggregator(opts Options) (*Aggregator, error) {
	sh, err := NewShape(opts)
	if err != nil {
		return nil, err
	}
	return sh.NewAggregator(), nil
}

// NewAggregator stamps a fresh empty aggregator onto the shared shape.
// Aggregators sharing a Shape are independent: only the immutable
// assignment machinery is shared.
func (sh *Shape) NewAggregator() *Aggregator {
	a := &Aggregator{Shape: sh, buckets: map[int64]*bucket{}}
	for _, f := range sh.rollups {
		a.tiers = append(a.tiers, &rollupTier{factor: f, groups: map[int64]*rollupGroup{}})
	}
	return a
}

// NewShape resolves opts into the immutable assignment machinery (one
// grid resolver per scale slot). The Shape can back any number of
// aggregators.
func NewShape(opts Options) (*Shape, error) {
	width := opts.BucketWidth
	if width == 0 {
		width = time.Hour
	}
	if width < time.Millisecond {
		return nil, fmt.Errorf("live: bucket width must be at least 1ms, got %v", width)
	}
	if opts.Radius < 0 || math.IsNaN(opts.Radius) || math.IsInf(opts.Radius, 0) {
		return nil, fmt.Errorf("live: radius must be finite and non-negative, got %v", opts.Radius)
	}
	if opts.MaxBuckets < 0 {
		return nil, fmt.Errorf("live: max buckets must be non-negative, got %d", opts.MaxBuckets)
	}
	scales := opts.Scales
	if len(scales) == 0 {
		scales = census.Scales()
	}
	a := &Shape{
		width:      width.Milliseconds(),
		metroSlot:  -1,
		slotOf:     map[census.Scale]int{},
		maxBuckets: opts.MaxBuckets,
	}
	gaz := census.Australia()
	var mappers []*mobility.AreaMapper
	hasMetro := false
	for _, sc := range scales {
		if _, dup := a.slotOf[sc]; dup {
			continue
		}
		rs, err := gaz.Regions(sc)
		if err != nil {
			return nil, fmt.Errorf("live: regions for %s: %w", sc, err)
		}
		m, err := mobility.NewAreaMapper(rs, opts.Radius)
		if err != nil {
			return nil, fmt.Errorf("live: mapper for %s: %w", sc, err)
		}
		a.slotOf[sc] = len(mappers)
		a.scales = append(a.scales, sc)
		a.regions = append(a.regions, rs)
		a.slotRadius = append(a.slotRadius, m.Radius())
		mappers = append(mappers, m)
		hasMetro = hasMetro || sc == census.ScaleMetropolitan
	}
	if opts.Radius == 0 && hasMetro {
		rs, err := gaz.Regions(census.ScaleMetropolitan)
		if err != nil {
			return nil, err
		}
		m, err := mobility.NewAreaMapper(rs, 500)
		if err != nil {
			return nil, fmt.Errorf("live: metro 0.5 km mapper: %w", err)
		}
		a.metroSlot = len(mappers)
		a.regions = append(a.regions, rs)
		a.slotRadius = append(a.slotRadius, m.Radius())
		mappers = append(mappers, m)
	}
	msm, err := mobility.NewMultiScaleMapper(mappers...)
	if err != nil {
		return nil, fmt.Errorf("live: bundle mappers: %w", err)
	}
	a.msm = msm
	a.slots = len(mappers)
	a.wordsPerSlot = make([]int, a.slots)
	a.wordOff = make([]int, a.slots)
	for s, rs := range a.regions {
		a.wordOff[s] = a.totalWords
		a.wordsPerSlot[s] = (len(rs.Areas) + 63) / 64
		a.totalWords += a.wordsPerSlot[s]
		if len(rs.Areas) > math.MaxInt16 {
			return nil, fmt.Errorf("live: %d areas at slot %d exceed the int16 assignment encoding", len(rs.Areas), s)
		}
	}
	a.zeroWords = make([]uint64, a.totalWords)
	h := fnv.New64a()
	fmt.Fprintf(h, "w=%d;slots=%d;metro=%d;", a.width, a.slots, a.metroSlot)
	for i, sc := range a.scales {
		fmt.Fprintf(h, "s%d=%s;", i, sc)
	}
	for s, rs := range a.regions {
		fmt.Fprintf(h, "r%d=%d:%x;", s, len(rs.Areas), math.Float64bits(a.slotRadius[s]))
	}
	a.hash = h.Sum64()
	a.rollups = rollupFactors(a.width)
	return a, nil
}

// Hash fingerprints the shape's assignment configuration: bucket width,
// scale slots, radii and per-slot area counts. Two shapes with equal
// hashes resolve records identically, so pre-resolved snapshot columns
// written under one can be restored under the other.
func (sh *Shape) Hash() uint64 { return sh.hash }

// Width returns the bucket width.
func (a *Aggregator) Width() time.Duration { return time.Duration(a.width) * time.Millisecond }

// Ingested returns the number of records accepted into the ring.
func (a *Aggregator) Ingested() int64 { return a.ingested.Load() }

// Dropped returns the number of late records rejected because they fall
// below the eviction floor.
func (a *Aggregator) Dropped() int64 { return a.dropped.Load() }

// Builds returns the number of full-bucket partial materialisations — the
// observable cost of invalidation: an ingest into bucket b forces at most
// one rebuild of b's partial, and no other bucket's.
func (a *Aggregator) Builds() int64 { return a.builds.Load() }

// Revision returns the ring's global revision — advanced once per
// (batch, touched bucket) pair. Cache layers key ring-wide fallback
// computations on it so the key and the computed data share one source
// of truth: a compute may observe a ring fresher than its key (which
// self-heals at the next lookup), never staler.
func (a *Aggregator) Revision() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.rev
}

// Buckets returns the number of live buckets in the ring.
func (a *Aggregator) Buckets() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.buckets)
}

// bucketIdx maps a timestamp to its bucket index (floor division, exact
// for negative timestamps too).
func (a *Aggregator) bucketIdx(ts int64) int64 {
	idx := ts / a.width
	if ts%a.width != 0 && ts < 0 {
		idx--
	}
	return idx
}

// BucketIndex is bucketIdx for callers outside the package — recovery
// uses it to route tail-replay records around cold-backfilled buckets.
func (a *Aggregator) BucketIndex(ts int64) int64 { return a.bucketIdx(ts) }

// Ingest routes one batch into the ring: every record is validated,
// resolved through the multi-scale assignment hot path exactly once, and
// appended — with its cached assignments, cell id and unit vector — to
// its time bucket. Each touched bucket's revision advances once per
// batch and its materialised partial is invalidated; untouched buckets
// (and every cached result derived from them alone) stay warm.
func (a *Aggregator) Ingest(batch []tweet.Tweet) error {
	if len(batch) == 0 {
		return nil
	}
	return a.IngestBatch(tweet.BatchOf(batch))
}

// IngestBatch is Ingest over columns — the hot path behind binary batch
// ingest. The batch is validated column-wise, its coordinate columns go
// through the multi-scale resolver as whole columns, and records are
// distributed into buckets with a one-entry bucket memo, so a
// time-clustered batch costs one map lookup per bucket run rather than
// one per record. The batch is only read, never retained.
func (a *Aggregator) IngestBatch(b *tweet.Batch) error {
	n := b.Len()
	if n == 0 {
		return nil
	}
	if err := b.Validate(); err != nil {
		return fmt.Errorf("live: ingest: %w", err)
	}
	// Resolve the whole batch before taking the lock: the mappers are
	// immutable (Execute's workers already share them concurrently), so
	// the expensive per-record work — grid resolution, trigonometry,
	// cell hashing — must not stall concurrent queries on a.mu. The
	// critical section below is pure appends and revision bumps. The
	// resolved columns live in pooled scratch (fully overwritten, bucket
	// appends copy out of them), so a steady batch feed allocates nothing
	// here.
	slots := a.slots
	sc := ingestScratchPool.Get().(*ingestScratch)
	defer ingestScratchPool.Put(sc)
	assign := growSlice(&sc.assign, n*slots)
	vecs := growSlice(&sc.vecs, 3*n)
	cells := growSlice(&sc.cells, n)
	a.msm.MapAllBatch(b.Lat, b.Lon, assign, slots)
	for i := 0; i < n; i++ {
		pt := geo.Point{Lat: b.Lat[i], Lon: b.Lon[i]}
		vecs[3*i], vecs[3*i+1], vecs[3*i+2] = mobility.UnitVec(pt)
		cells[i] = geo5(pt)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	touched := map[int64]*bucket{}
	accepted := int64(0)
	// Append run-wise: records land in bucket-contiguous runs (time-ordered
	// feeds put whole batches in one or two buckets), so each run costs one
	// map lookup and four bulk appends instead of per-record slice growth.
	for i := 0; i < n; {
		idx := a.bucketIdx(b.TS[i])
		j := i + 1
		for j < n && a.bucketIdx(b.TS[j]) == idx {
			j++
		}
		if a.hasFloor && idx < a.floorIdx {
			a.dropped.Add(int64(j - i))
			mRingDropped.Add(int64(j - i))
			i = j
			continue
		}
		bk := a.buckets[idx]
		if bk == nil {
			bk = &bucket{}
			a.buckets[idx] = bk
		}
		touched[idx] = bk
		bk.assign = append(bk.assign, assign[i*slots:j*slots]...)
		bk.vecs = append(bk.vecs, vecs[3*i:3*j]...)
		bk.cells = append(bk.cells, cells[i:j]...)
		off := len(bk.tweets)
		bk.tweets = slices.Grow(bk.tweets, j-i)[:off+j-i]
		for k := i; k < j; k++ {
			bk.tweets[off+k-i] = b.Row(k)
		}
		accepted += int64(j - i)
		i = j
	}
	for _, bk := range touched {
		a.rev++
		bk.rev = a.rev
		bk.sorted = false
		bk.part = nil
	}
	a.ingested.Add(accepted)
	mRingRecords.Add(accepted)
	a.evictLocked()
	return nil
}

// ingestScratch holds the per-batch resolved columns between IngestBatch
// calls. Every element is overwritten before use, so reuse needs no
// clearing.
type ingestScratch struct {
	assign []int16
	vecs   []float64
	cells  []uint64
}

// growSlice resizes *s to length n, reusing capacity when possible.
func growSlice[T any](s *[]T, n int) []T {
	if cap(*s) < n {
		*s = make([]T, n)
	} else {
		*s = (*s)[:n]
	}
	return *s
}

var ingestScratchPool = sync.Pool{New: func() any { return new(ingestScratch) }}

// evictLocked drops the oldest buckets until the ring fits MaxBuckets,
// raising the eviction floor past them.
func (a *Aggregator) evictLocked() {
	if a.maxBuckets <= 0 {
		return
	}
	for len(a.buckets) > a.maxBuckets {
		oldest := int64(math.MaxInt64)
		for idx := range a.buckets {
			if idx < oldest {
				oldest = idx
			}
		}
		delete(a.buckets, oldest)
		if !a.hasFloor || oldest+1 > a.floorIdx {
			a.floorIdx = oldest + 1
			a.hasFloor = true
		}
	}
	a.pruneTiersLocked()
}

// ensureSortedLocked establishes the canonical (user, time, id) order of
// the bucket's parallel arrays. Caller holds a.mu.
func ensureSortedLocked(b *bucket, slots int) {
	if !b.sorted {
		sort.Sort(&bucketOrder{b: b, slots: slots})
		b.sorted = true
	}
}

// bucketOrder co-sorts a bucket's parallel arrays by tweet.ByUserTime.
type bucketOrder struct {
	b     *bucket
	slots int
	tmp   [8]int16
}

func (s *bucketOrder) Len() int { return len(s.b.tweets) }
func (s *bucketOrder) Less(i, j int) bool {
	a, b := s.b.tweets[i], s.b.tweets[j]
	if a.UserID != b.UserID {
		return a.UserID < b.UserID
	}
	if a.TS != b.TS {
		return a.TS < b.TS
	}
	return a.ID < b.ID
}
func (s *bucketOrder) Swap(i, j int) {
	b := s.b
	b.tweets[i], b.tweets[j] = b.tweets[j], b.tweets[i]
	b.cells[i], b.cells[j] = b.cells[j], b.cells[i]
	for k := 0; k < 3; k++ {
		b.vecs[3*i+k], b.vecs[3*j+k] = b.vecs[3*j+k], b.vecs[3*i+k]
	}
	tmp := s.tmp[:s.slots]
	copy(tmp, b.assign[i*s.slots:(i+1)*s.slots])
	copy(b.assign[i*s.slots:(i+1)*s.slots], b.assign[j*s.slots:(j+1)*s.slots])
	copy(b.assign[j*s.slots:(j+1)*s.slots], tmp)
}

// window resolves a plan's [FromTS, ToTS) bounds into effective record
// bounds, replicating the streaming pass's epoch-sentinel semantics: a
// lower bound is applied whenever any in-stream filtering is on.
func window(info *core.PlanInfo) (lo, hi int64) {
	lo, hi = math.MinInt64, math.MaxInt64
	if info.FromTS != 0 || info.HasTo {
		lo = info.FromTS
	}
	if info.HasTo {
		hi = info.ToTS
	}
	return lo, hi
}

// bucketRange maps record bounds onto the bucket index range to visit,
// clamped to the ring's extent. ok is false when the ring is empty.
func (a *Aggregator) bucketRangeLocked(lo, hi int64) (loIdx, hiIdx int64, ok bool) {
	if len(a.buckets) == 0 {
		return 0, 0, false
	}
	minIdx, maxIdx := int64(math.MaxInt64), int64(math.MinInt64)
	for idx := range a.buckets {
		if idx < minIdx {
			minIdx = idx
		}
		if idx > maxIdx {
			maxIdx = idx
		}
	}
	loIdx = minIdx
	if lo != math.MinInt64 {
		if i := a.bucketIdx(lo); i > loIdx {
			loIdx = i
		}
	}
	hiIdx = maxIdx
	if hi != math.MaxInt64 {
		if i := a.bucketIdx(hi - 1); i < hiIdx {
			hiIdx = i
		}
	}
	return loIdx, hiIdx, loIdx <= hiIdx
}

// checkFloorLocked rejects windows that reach below the eviction floor.
func (a *Aggregator) checkFloorLocked(lo int64) error {
	if !a.hasFloor {
		return nil
	}
	if lo == math.MinInt64 || a.bucketIdx(lo) < a.floorIdx {
		return ErrEvicted
	}
	return nil
}

// collect gathers, under the lock, the chronological partials covering
// [lo, hi): cached rollup-tier partials for every aligned group of
// buckets the window fully covers (coarsest tier first), the
// materialised partial of every remaining fully covered bucket (built on
// demand), plus freshly built residual partials for the at most two
// partially covered edge buckets.
func (a *Aggregator) collect(lo, hi int64) ([]*partial, error) {
	return a.collectCov(lo, hi, nil, false)
}

// collectCov is collect with optional coverage accounting: a non-nil
// cov records which spans served the window (FoldCoverage). With dry
// set the same span selection runs in counting-only mode — no partials
// are built, merged, or returned and no build caches or counters are
// touched — which is what keeps EXPLAIN ANALYZE side-effect-free.
func (a *Aggregator) collectCov(lo, hi int64, cov *FoldCoverage, dry bool) ([]*partial, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if err := a.checkFloorLocked(lo); err != nil {
		return nil, err
	}
	loIdx, hiIdx, ok := a.bucketRangeLocked(lo, hi)
	if !ok {
		return nil, nil
	}
	idxs := make([]int64, 0, len(a.buckets))
	for idx := range a.buckets {
		if idx >= loIdx && idx <= hiIdx {
			idxs = append(idxs, idx)
		}
	}
	slices.Sort(idxs)
	type span struct {
		start int64
		p     *partial
	}
	var spans []span
	used := map[int64]bool{}
	// Coarsest tier first: a group is usable only when the window covers
	// its whole time range, so every live bucket inside it contributes
	// fully and the cached merge is window-independent.
	for t := len(a.tiers) - 1; t >= 0; t-- {
		tier := a.tiers[t]
		for g := floorDiv(loIdx, tier.factor); g <= floorDiv(hiIdx, tier.factor); g++ {
			gLo, gHi := g*tier.factor, (g+1)*tier.factor
			if !(lo == math.MinInt64 || lo <= gLo*a.width) || !(hi == math.MaxInt64 || hi >= gHi*a.width) {
				continue
			}
			members := make([]int64, 0, tier.factor)
			taken := false
			for idx := gLo; idx < gHi; idx++ {
				if used[idx] {
					taken = true
					break
				}
				if b := a.buckets[idx]; b != nil && len(b.tweets) > 0 {
					members = append(members, idx)
				}
			}
			if taken || len(members) < 2 {
				continue
			}
			if dry {
				// Every member bucket holds records, so the merged
				// rollup partial is necessarily seen.
				cov.addTier(tier.factor, len(members))
				for _, idx := range members {
					used[idx] = true
				}
				continue
			}
			p := a.rollupLocked(tier, g, members)
			if p.seen {
				spans = append(spans, span{start: gLo, p: p})
				cov.addTier(tier.factor, len(members))
			}
			for _, idx := range members {
				used[idx] = true
			}
		}
	}
	for _, idx := range idxs {
		if used[idx] {
			continue
		}
		b := a.buckets[idx]
		if len(b.tweets) == 0 {
			continue
		}
		start, end := idx*a.width, (idx+1)*a.width
		if !dry {
			ensureSortedLocked(b, a.slots)
		}
		if lo > start || hi < end {
			// Partially covered edge bucket: residual partial over the
			// in-window slice, built fresh (it depends on the request
			// window, not just the bucket).
			rLo, rHi := start, end
			if lo > rLo {
				rLo = lo
			}
			if hi < rHi {
				rHi = hi
			}
			if dry {
				var n int64
				for i := range b.tweets {
					if ts := b.tweets[i].TS; ts >= rLo && ts < rHi {
						n++
					}
				}
				if n > 0 {
					cov.addResidual(n)
				}
				continue
			}
			if p := a.buildRange(b, rLo, rHi); p.seen {
				spans = append(spans, span{start: idx, p: p})
				cov.addResidual(p.tweets)
			}
			continue
		}
		if dry {
			// len(b.tweets) > 0 was gated above, so the full bucket
			// partial is necessarily seen.
			cov.addFull()
			continue
		}
		if p := a.bucketPartLocked(b); p.seen {
			spans = append(spans, span{start: idx, p: p})
			cov.addFull()
		}
	}
	slices.SortFunc(spans, func(x, y span) int {
		if x.start < y.start {
			return -1
		}
		if x.start > y.start {
			return 1
		}
		return 0
	})
	parts := make([]*partial, len(spans))
	for i, sp := range spans {
		parts[i] = sp.p
	}
	return parts, nil
}

// bucketPartLocked returns b's full materialised partial, building it on
// demand. Caller holds a.mu.
func (a *Aggregator) bucketPartLocked(b *bucket) *partial {
	ensureSortedLocked(b, a.slots)
	if b.part == nil {
		b.part = a.buildRange(b, math.MinInt64, math.MaxInt64)
		a.builds.Add(1)
		mRingBuilds.Inc()
	}
	return b.part
}

// CoverageKey fingerprints the bucket coverage of the record window
// [lo, hi) (math.MinInt64/MaxInt64 for unbounded sides): the ring shape
// plus (index, revision) of every live bucket the window touches. A
// cached result keyed on it stays valid exactly until an ingest lands in
// one of those buckets — or, for unbounded windows, anywhere.
func (a *Aggregator) CoverageKey(lo, hi int64) string {
	a.mu.Lock()
	defer a.mu.Unlock()
	h := fnv.New64a()
	fmt.Fprintf(h, "w=%d;f=%v:%d;", a.width, a.hasFloor, a.floorIdx)
	if loIdx, hiIdx, ok := a.bucketRangeLocked(lo, hi); ok {
		idxs := make([]int64, 0, len(a.buckets))
		for idx := range a.buckets {
			if idx >= loIdx && idx <= hiIdx {
				idxs = append(idxs, idx)
			}
		}
		slices.Sort(idxs)
		for _, idx := range idxs {
			fmt.Fprintf(h, "%d:%d;", idx, a.buckets[idx].rev)
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// CoverageKeyRequest is CoverageKey for a request's window, after
// checking that the aggregator materialises the request's shape. The
// error is ErrNotCovered for foreign shapes, or the request's own
// validation error.
func (a *Aggregator) CoverageKeyRequest(req core.Request) (string, error) {
	info, err := core.PlanRequest(req)
	if err != nil {
		return "", err
	}
	if err := a.covers(info); err != nil {
		return "", err
	}
	lo, hi := window(info)
	return a.CoverageKey(lo, hi), nil
}

// covers reports whether the aggregator materialises the plan's shape:
// every plan scale at the plan's resolved radius, plus the metro 0.5 km
// variant when the plan runs it.
func (a *Aggregator) covers(info *core.PlanInfo) error {
	for i, sc := range info.Scales {
		slot, ok := a.slotOf[sc]
		if !ok {
			return fmt.Errorf("%w: scale %s", ErrNotCovered, sc)
		}
		if info.ScaleRadius[i] != a.slotRadius[slot] {
			return fmt.Errorf("%w: radius %g at %s (materialized %g)",
				ErrNotCovered, info.ScaleRadius[i], sc, a.slotRadius[slot])
		}
	}
	if info.Metro500 && a.metroSlot < 0 {
		return fmt.Errorf("%w: metro 0.5 km variant", ErrNotCovered)
	}
	return nil
}

// Query answers req by folding the materialised partials covering its
// window — no storage scan, no spatial lookup — and assembling the
// Result through core.AssembleFolded. The result is bit-identical to
// Study.Execute over the same records (see the property tests).
func (a *Aggregator) Query(req core.Request) (*core.Result, error) {
	info, err := core.PlanRequest(req)
	if err != nil {
		return nil, err
	}
	if err := a.covers(info); err != nil {
		return nil, err
	}
	lo, hi := window(info)
	t0 := time.Now()
	parts, err := a.collect(lo, hi)
	if err != nil {
		return nil, err
	}
	res, err := core.AssembleFolded(req, a.fold(info, parts))
	if err == nil {
		mRingFold.Observe(time.Since(t0).Seconds())
	}
	return res, err
}

// WindowTweetsRequest is WindowTweets for a request's window — the
// streaming-fallback substream for request shapes the aggregator does
// not materialise (custom radii).
func (a *Aggregator) WindowTweetsRequest(req core.Request) ([]tweet.Tweet, error) {
	info, err := core.PlanRequest(req)
	if err != nil {
		return nil, err
	}
	lo, hi := window(info)
	return a.WindowTweets(lo, hi)
}

// WindowTweets copies the ring's records in [lo, hi) (unbounded sides as
// math.MinInt64/MaxInt64) into a fresh slice in canonical (user, time)
// order — the exact substream a compacted store scan would yield. It
// backs streaming fallbacks for request shapes the aggregator does not
// materialise; like Query it never touches the store.
func (a *Aggregator) WindowTweets(lo, hi int64) ([]tweet.Tweet, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if err := a.checkFloorLocked(lo); err != nil {
		return nil, err
	}
	loIdx, hiIdx, ok := a.bucketRangeLocked(lo, hi)
	if !ok {
		return nil, nil
	}
	var out []tweet.Tweet
	for idx, b := range a.buckets {
		if idx < loIdx || idx > hiIdx {
			continue
		}
		for i := range b.tweets {
			if ts := b.tweets[i].TS; ts >= lo && (hi == math.MaxInt64 || ts < hi) {
				out = append(out, b.tweets[i])
			}
		}
	}
	sort.Sort(tweet.ByUserTime(out))
	return out, nil
}
