package live

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"geomob/internal/obs"
	"geomob/internal/tweet"
	"geomob/internal/tweetdb"
)

// Boot-recovery metrics (DESIGN.md §12): cumulative across every ring
// recovered in this process (cluster shards recover one ring per slot).
var (
	mRecovRestored   = obs.Def.Counter("geomob_recovery_restored_buckets_total", "Buckets restored intact from snapshot files at boot.")
	mRecovBackfilled = obs.Def.Counter("geomob_recovery_backfilled_buckets_total", "Buckets degraded to a windowed cold store backfill at boot.")
	mRecovSnapErrors = obs.Def.Counter("geomob_recovery_snapshot_errors_total", "Snapshot bucket files rejected during recovery.")
	mRecovFullScans  = obs.Def.Counter("geomob_recovery_full_rescans_total", "Boot recoveries that fell back to a full store rescan.")
	mRecovTailRecs   = obs.Def.Counter("geomob_recovery_tail_records_total", "Store-tail records replayed into rings at boot.")
	mRecovSeconds    = obs.Def.Histogram("geomob_recovery_seconds", "Latency of one ring recovery at boot.", nil)
)

// RecoverOpts tune Recover.
type RecoverOpts struct {
	// Keep filters records by author — cluster slot rings pass their
	// placement predicate so a shared store hydrates each ring with only
	// its own users. Nil keeps every record.
	Keep func(userID int64) bool
	// NoFullScan makes Recover report a needed full rescan (stats
	// FullRescan) without performing it, so a caller owning several
	// rings over one store can batch all their full rescans into a
	// single scan.
	NoFullScan bool
}

// RecoveryStats describes what a boot recovery actually did — the
// numbers /healthz surfaces and the restart smoke test asserts on.
type RecoveryStats struct {
	// Restored counts buckets loaded intact from snapshot files;
	// Backfilled counts buckets degraded to a windowed cold store scan
	// by a missing/corrupt/mismatched file; SnapErrors counts those
	// files. FullRescan reports the whole snapshot was unusable (no/
	// corrupt manifest, foreign shape, or covered segments missing from
	// the store) and the ring was hydrated by a full store scan.
	Restored   int  `json:"restored"`
	Backfilled int  `json:"backfilled"`
	SnapErrors int  `json:"snapshot_errors"`
	FullRescan bool `json:"full_rescan"`
	// TailSegments/TailRecords describe the manifest tail — segments
	// appended after the last snapshot commit — replayed at boot.
	TailSegments int   `json:"tail_segments"`
	TailRecords  int64 `json:"tail_records"`
}

// Merge accumulates another ring's recovery into s (cluster shards sum
// their per-slot recoveries for health reporting).
func (s *RecoveryStats) Merge(o RecoveryStats) {
	s.Restored += o.Restored
	s.Backfilled += o.Backfilled
	s.SnapErrors += o.SnapErrors
	s.FullRescan = s.FullRescan || o.FullRescan
	s.TailSegments += o.TailSegments
	s.TailRecords += o.TailRecords
}

// Recover hydrates an empty ring from its snapshot directory and store
// (DESIGN.md §11). The state machine per boot:
//
//  1. Load the snapshot manifest. Missing/corrupt/foreign-shape
//     manifest, or covered segments absent from the store catalogue
//     (a compaction ran) → full cold backfill, exactly like a node
//     that never snapshotted.
//  2. Restore the eviction floor, then every bucket file that decodes
//     and validates; any failure marks just that bucket for cold
//     backfill.
//  3. Replay the tail — store segments not covered by the manifest —
//     routing records around the failed buckets.
//  4. Cold-backfill each failed bucket with a windowed, segment-pruned
//     store scan.
//
// Every path converges on a ring whose folds are bit-identical to a
// cold Study.Execute over the store; corruption only ever costs time.
func Recover(a *Aggregator, store *tweetdb.Store, snaps *SnapshotStore, opts RecoverOpts) (RecoveryStats, error) {
	t0 := time.Now()
	st, err := recoverRing(a, store, snaps, opts)
	mRecovRestored.Add(int64(st.Restored))
	mRecovBackfilled.Add(int64(st.Backfilled))
	mRecovSnapErrors.Add(int64(st.SnapErrors))
	mRecovTailRecs.Add(st.TailRecords)
	if st.FullRescan {
		mRecovFullScans.Inc()
	}
	mRecovSeconds.Observe(time.Since(t0).Seconds())
	return st, err
}

func recoverRing(a *Aggregator, store *tweetdb.Store, snaps *SnapshotStore, opts RecoverOpts) (RecoveryStats, error) {
	st := RecoveryStats{}
	man, err := snaps.loadManifest()
	usable := err == nil &&
		man.ShapeHash == fmt.Sprintf("%016x", a.hash) &&
		man.Width == a.width
	segments := store.Segments()
	current := make(map[string]bool, len(segments))
	for _, m := range segments {
		current[m.File] = true
	}
	if usable {
		for _, f := range man.Covered {
			if !current[f] {
				// A covered segment vanished (compaction rewrote the
				// catalogue): the tail can no longer be identified, so
				// the snapshot cannot be trusted not to double-count.
				usable = false
				break
			}
		}
	}
	if !usable {
		st.FullRescan = true
		if opts.NoFullScan {
			return st, nil
		}
		n, err := backfillFiltered(a, store, tweetdb.Query{}, opts.Keep, nil, nil)
		st.TailRecords = n
		return st, err
	}

	a.restoreFloor(man.HasFloor, man.FloorIdx)
	covered := make(map[string]bool, len(man.Covered))
	for _, f := range man.Covered {
		covered[f] = true
	}
	failed := map[int64]bool{}
	for _, bm := range man.Buckets {
		blob, rerr := os.ReadFile(filepath.Join(snaps.dir, bm.File))
		if rerr != nil {
			failed[bm.Idx] = true
			st.SnapErrors++
			continue
		}
		bs, derr := a.DecodeBucketSnapshot(blob)
		if derr != nil || bs.Idx != bm.Idx || bs.Count() != bm.Count {
			failed[bm.Idx] = true
			st.SnapErrors++
			continue
		}
		a.restoreBucket(bs, true)
		st.Restored++
	}

	var tail []string
	for _, m := range segments {
		if !covered[m.File] {
			tail = append(tail, m.File)
		}
	}
	if len(tail) > 0 {
		st.TailSegments = len(tail)
		n, err := backfillFiltered(a, store, tweetdb.Query{Files: tail}, opts.Keep, failed, nil)
		st.TailRecords = n
		if err != nil {
			return st, err
		}
	}
	for idx := range failed {
		idx := idx
		q := tweetdb.Query{FromTS: idx * a.width}
		if hi := (idx + 1) * a.width; hi > 0 {
			q.ToTS = hi
		}
		if _, err := backfillFiltered(a, store, q, opts.Keep, nil, &idx); err != nil {
			return st, err
		}
		st.Backfilled++
	}
	return st, nil
}

// backfillFiltered scans the store with q and routes matching records
// into the ring, dropping rows whose author fails keep, whose bucket is
// in skip, or — when only is non-nil — whose bucket is not *only. It
// returns how many records were routed.
func backfillFiltered(a *Aggregator, store *tweetdb.Store, q tweetdb.Query, keep func(int64) bool, skip map[int64]bool, only *int64) (int64, error) {
	it := store.Scan(q)
	defer it.Close()
	buf := &tweet.Batch{}
	total := int64(0)
	flush := func() error {
		if buf.Len() == 0 {
			return nil
		}
		err := a.IngestBatch(buf)
		total += int64(buf.Len())
		buf.Reset()
		return err
	}
	for {
		blk, ok := it.NextBlock()
		if !ok {
			break
		}
		for i := 0; i < blk.Len(); i++ {
			if keep != nil && !keep(blk.UserID[i]) {
				continue
			}
			idx := a.bucketIdx(blk.TS[i])
			if skip != nil && skip[idx] {
				continue
			}
			if only != nil && idx != *only {
				continue
			}
			buf.Append(blk.Row(i))
			if buf.Len() >= 1<<14 {
				if err := flush(); err != nil {
					return total, err
				}
			}
		}
	}
	if err := flush(); err != nil {
		return total, err
	}
	return total, it.Err()
}
