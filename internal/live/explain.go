package live

import (
	"geomob/internal/core"
)

// TierFold is one rollup tier's contribution to a fold: how many
// aligned groups the window fully covered at this factor and how many
// live buckets those groups folded in one cached merge each.
type TierFold struct {
	Factor  int64 `json:"factor"`
	Groups  int   `json:"groups"`
	Buckets int   `json:"buckets"`
}

// FoldCoverage is the bucket-coverage accounting of one fold — the
// EXPLAIN ANALYZE answer to "which buckets served this window, and
// how": buckets absorbed through rollup tiers, fully covered buckets
// folded from their materialised partials, and partially covered edge
// buckets whose in-window records were replayed fresh (DESIGN.md §13).
type FoldCoverage struct {
	// Buckets is the total number of live buckets that contributed.
	Buckets int `json:"buckets"`
	// TierFolds lists per-tier group folds, coarsest tier first (the
	// order the span selection tries them).
	TierFolds []TierFold `json:"tier_folds,omitempty"`
	// FullBuckets were folded whole from materialised bucket partials.
	FullBuckets int `json:"full_buckets"`
	// ResidualBuckets are window-clipped edge buckets; ResidualRecords
	// is the number of their records replayed into fresh partials.
	ResidualBuckets int   `json:"residual_buckets"`
	ResidualRecords int64 `json:"residual_records"`
}

func (c *FoldCoverage) addTier(factor int64, members int) {
	if c == nil {
		return
	}
	c.Buckets += members
	for i := range c.TierFolds {
		if c.TierFolds[i].Factor == factor {
			c.TierFolds[i].Groups++
			c.TierFolds[i].Buckets += members
			return
		}
	}
	c.TierFolds = append(c.TierFolds, TierFold{Factor: factor, Groups: 1, Buckets: members})
}

func (c *FoldCoverage) addFull() {
	if c == nil {
		return
	}
	c.Buckets++
	c.FullBuckets++
}

func (c *FoldCoverage) addResidual(records int64) {
	if c == nil {
		return
	}
	c.Buckets++
	c.ResidualBuckets++
	c.ResidualRecords += records
}

// merge folds another coverage into this one (coordinator-side, across
// user-disjoint shard partials that scanned the same window).
func (c *FoldCoverage) Merge(o FoldCoverage) {
	if c == nil {
		return
	}
	c.Buckets += o.Buckets
	c.FullBuckets += o.FullBuckets
	c.ResidualBuckets += o.ResidualBuckets
	c.ResidualRecords += o.ResidualRecords
	for _, tf := range o.TierFolds {
		found := false
		for i := range c.TierFolds {
			if c.TierFolds[i].Factor == tf.Factor {
				c.TierFolds[i].Groups += tf.Groups
				c.TierFolds[i].Buckets += tf.Buckets
				found = true
				break
			}
		}
		if !found {
			c.TierFolds = append(c.TierFolds, tf)
		}
	}
}

// ExplainCoverage reports the span selection the fold for req uses,
// without folding: the same planning, coverage, and window checks as
// Query/FoldPartial, then a dry run of the span selection that only
// counts. Because it is called on the explain path of requests whose
// answer may come from the snapshot cache, it must stay observably
// read-only — no partials are built, no rollups merged, no build
// counters moved; residual records are counted by scanning bucket
// timestamps directly.
func (a *Aggregator) ExplainCoverage(req core.Request) (FoldCoverage, error) {
	var cov FoldCoverage
	info, err := core.PlanRequest(req)
	if err != nil {
		return cov, err
	}
	if err := a.covers(info); err != nil {
		return cov, err
	}
	lo, hi := window(info)
	_, err = a.collectCov(lo, hi, &cov, true)
	return cov, err
}
