package live

import (
	"hash/fnv"
	"slices"
	"sync/atomic"

	"geomob/internal/geo"
	"geomob/internal/mobility"
)

// Rollup tiers (DESIGN.md §11): cached partials merged over aligned
// groups of base buckets, so a multi-year window at an hourly bucket
// width folds dozens of day/month partials instead of tens of thousands
// of hour partials. A tier partial is produced by mergePartials, which
// reproduces exactly the stitching the fold itself performs — boundary
// waits/displacements/flow transitions via the same single-sourced
// mobility operations, order-preserving concatenation of the float
// series — so folding [tier partial] is bit-identical to folding its
// member bucket partials (property-tested).

const dayMs = int64(24 * 60 * 60 * 1000)

// rollupFactors picks the tier grouping factors for a bucket width:
// one day and one (30-day) month, whenever the width divides them and
// each tier nests the previous one. Hourly buckets get [24, 720].
func rollupFactors(width int64) []int64 {
	var fs []int64
	for _, span := range []int64{dayMs, 30 * dayMs} {
		if span <= width || span%width != 0 {
			continue
		}
		f := span / width
		if n := len(fs); n > 0 && (f <= fs[n-1] || f%fs[n-1] != 0) {
			continue
		}
		fs = append(fs, f)
	}
	return fs
}

// rollupTier caches the merged partials of one grouping factor.
type rollupTier struct {
	factor int64
	groups map[int64]*rollupGroup
	builds atomic.Int64
	hits   atomic.Int64
}

// rollupGroup is one aligned group's cached merge, valid exactly while
// the fingerprint of its member buckets' (index, revision) pairs holds.
type rollupGroup struct {
	fp   uint64
	part *partial
}

// floorDiv is exact floor division for possibly negative bucket indexes.
func floorDiv(x, d int64) int64 {
	q := x / d
	if x%d != 0 && (x < 0) != (d < 0) {
		q--
	}
	return q
}

// rollupLocked returns the cached merge of group g's member buckets,
// rebuilding it when any member changed. Caller holds a.mu; members are
// sorted non-empty live bucket indexes inside the group's range.
func (a *Aggregator) rollupLocked(t *rollupTier, g int64, members []int64) *partial {
	h := fnv.New64a()
	var kb [16]byte
	for _, idx := range members {
		putI64(kb[:8], idx)
		putU64(kb[8:], a.buckets[idx].rev)
		h.Write(kb[:])
	}
	fp := h.Sum64()
	if grp := t.groups[g]; grp != nil && grp.fp == fp {
		t.hits.Add(1)
		return grp.part
	}
	parts := make([]*partial, 0, len(members))
	for _, idx := range members {
		if p := a.bucketPartLocked(a.buckets[idx]); p.seen {
			parts = append(parts, p)
		}
	}
	merged := a.mergePartials(parts)
	t.groups[g] = &rollupGroup{fp: fp, part: merged}
	t.builds.Add(1)
	return merged
}

// pruneTiersLocked drops cached groups wholly below the eviction floor.
// Caller holds a.mu.
func (a *Aggregator) pruneTiersLocked() {
	if !a.hasFloor {
		return
	}
	for _, t := range a.tiers {
		for g := range t.groups {
			if (g+1)*t.factor <= a.floorIdx {
				delete(t.groups, g)
			}
		}
	}
}

// RollupTierStats is one tier's health snapshot.
type RollupTierStats struct {
	// Factor is the group size in base buckets; Groups the cached
	// merges currently held; Builds/Hits the lifetime cache counters.
	Factor int64 `json:"factor"`
	Groups int   `json:"groups"`
	Builds int64 `json:"builds"`
	Hits   int64 `json:"hits"`
}

// RollupStats reports the rollup tier caches, finest tier first.
func (a *Aggregator) RollupStats() []RollupTierStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]RollupTierStats, len(a.tiers))
	for i, t := range a.tiers {
		out[i] = RollupTierStats{Factor: t.factor, Groups: len(t.groups), Builds: t.builds.Load(), Hits: t.hits.Load()}
	}
	return out
}

// mergePartials merges chronologically ordered, non-overlapping partials
// into one partial covering their union, preserving the fold contract:
// folding [..., M, ...] is bit-identical to folding [..., p1..pk, ...].
// The construction is the fold's own per-user stitching — boundary
// waiting times, displacements and flow transitions computed with the
// same single mobility operations, interior float series concatenated in
// serial order — re-emitted as a partial instead of observer state.
func (a *Aggregator) mergePartials(parts []*partial) *partial {
	m := &partial{bbox: geo.EmptyBBox(), flows: make([]flowAcc, len(a.scales))}
	for s := range m.flows {
		m.flows[s] = newFlowAcc(len(a.regions[s].Areas))
	}
	for _, p := range parts {
		m.tweets += p.tweets
		if p.seen {
			m.bbox = m.bbox.Union(p.bbox)
			if !m.seen || p.firstTS < m.firstTS {
				m.firstTS = p.firstTS
			}
			if !m.seen || p.lastTS > m.lastTS {
				m.lastTS = p.lastTS
			}
			m.seen = true
		}
	}
	// Interior transitions are counts: they sum exactly in any order.
	for s := range m.flows {
		dst := m.flows[s]
		for _, p := range parts {
			src := p.flows[s]
			for r := range src.flows {
				row := dst.flows[r]
				for c, v := range src.flows[r] {
					row[c] += v
				}
				dst.stays[r] += src.stays[r]
			}
		}
	}
	slots := a.slots
	heads := make([]int, len(parts))
	var cellScratch []uint64
	for {
		u, found := int64(0), false
		for pi, p := range parts {
			if heads[pi] < len(p.users) && (!found || p.users[heads[pi]].id < u) {
				u = p.users[heads[pi]].id
				found = true
			}
		}
		if !found {
			break
		}
		row := -1
		cellScratch = cellScratch[:0]
		for pi, p := range parts {
			if heads[pi] >= len(p.users) || p.users[heads[pi]].id != u {
				continue
			}
			prow := heads[pi]
			r := &p.users[prow]
			heads[pi]++
			if row < 0 {
				m.users = append(m.users, userPart{
					id: u, firstTS: r.firstTS, firstPt: r.firstPt,
					w0: len(m.waits), v0: len(m.vecs),
				})
				row = len(m.users) - 1
				m.firstArea = append(m.firstArea, p.firstArea[prow*slots:(prow+1)*slots]...)
				m.lastArea = append(m.lastArea, p.lastArea[prow*slots:(prow+1)*slots]...)
				m.marks = append(m.marks, a.zeroWords...)
			} else {
				cu := &m.users[row]
				// Boundary between the previous member's last tweet and
				// this member's first — the exact stitch the fold does.
				m.waits = append(m.waits, mobility.WaitingSecs(cu.lastTS, r.firstTS))
				m.disps = append(m.disps, mobility.DisplacementKM(cu.lastPt, r.firstPt))
				for s := range a.scales {
					pa, ca := m.lastArea[row*slots+s], p.firstArea[prow*slots+s]
					if pa >= 0 && ca >= 0 {
						if pa == ca {
							m.flows[s].stays[ca]++
						} else {
							m.flows[s].flows[pa][ca]++
						}
					}
				}
				copy(m.lastArea[row*slots:(row+1)*slots], p.lastArea[prow*slots:(prow+1)*slots])
			}
			m.waits = append(m.waits, p.waits[r.w0:r.w1]...)
			m.disps = append(m.disps, p.disps[r.w0:r.w1]...)
			m.vecs = append(m.vecs, p.vecs[r.v0:r.v0+3*int(r.n)]...)
			cellScratch = append(cellScratch, p.cells[r.c0:r.c1]...)
			mb, pb := row*a.totalWords, prow*a.totalWords
			for w := 0; w < a.totalWords; w++ {
				m.marks[mb+w] |= p.marks[pb+w]
			}
			cu := &m.users[row]
			cu.n += r.n
			cu.lastTS = r.lastTS
			cu.lastPt = r.lastPt
		}
		cu := &m.users[row]
		cu.w1 = len(m.waits)
		slices.Sort(cellScratch)
		cu.c0 = len(m.cells)
		for i, c := range cellScratch {
			if i == 0 || c != cellScratch[i-1] {
				m.cells = append(m.cells, c)
			}
		}
		cu.c1 = len(m.cells)
	}
	return m
}
