package live

import (
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"geomob/internal/census"
	"geomob/internal/core"
	"geomob/internal/synth"
	"geomob/internal/tweet"
	"geomob/internal/tweetdb"
)

// snapCorpus generates a deterministic corpus and its canonical sort.
// Coordinates are pre-quantised to the microdegree grid, matching real
// feed data (and mobgen): restart exactness is defined over store
// round-trips, and the storage codec quantises (DESIGN.md §10).
func snapCorpus(t *testing.T, users int, seed uint64) (all, sorted []tweet.Tweet) {
	t.Helper()
	gen, err := synth.NewGenerator(synth.DefaultConfig(users, seed, 11))
	if err != nil {
		t.Fatal(err)
	}
	all, err = gen.GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	for i := range all {
		all[i].Lat = tweet.DegreesFromMicro(tweet.Microdegrees(all[i].Lat))
		all[i].Lon = tweet.DegreesFromMicro(tweet.Microdegrees(all[i].Lon))
	}
	sorted = append([]tweet.Tweet(nil), all...)
	sort.Sort(tweet.ByUserTime(sorted))
	return all, sorted
}

// snapRequests is the request matrix restart tests compare on: the full
// study, single analyses, and a mid-corpus window.
func snapRequests(sorted []tweet.Tweet) []core.Request {
	minTS, maxTS := sorted[0].TS, sorted[0].TS
	for _, tw := range sorted {
		minTS = min(minTS, tw.TS)
		maxTS = max(maxTS, tw.TS)
	}
	span := maxTS - minTS
	return []core.Request{
		{},
		{Analyses: []core.Analysis{core.AnalysisStats}},
		{Analyses: []core.Analysis{core.AnalysisFlows}, Scales: []census.Scale{census.ScaleNational}},
		{
			Analyses: []core.Analysis{core.AnalysisStats},
			From:     time.UnixMilli(minTS + span/5).UTC(),
			To:       time.UnixMilli(maxTS - span/5).UTC(),
		},
	}
}

// snapRefs cold-executes the request matrix over the sorted corpus.
func snapRefs(t *testing.T, sorted []tweet.Tweet, reqs []core.Request) []*core.Result {
	t.Helper()
	study := core.NewStudyWithOptions(core.SliceSource(sorted), core.StudyOptions{Workers: 1})
	refs := make([]*core.Result, len(reqs))
	for i, req := range reqs {
		res, err := study.Execute(context.Background(), req)
		if err != nil {
			t.Fatalf("ref req %d (%s): %v", i, req.Key(), err)
		}
		refs[i] = res
	}
	return refs
}

// assertAggMatchesRefs queries the ring for every request and requires
// bit-identical results.
func assertAggMatchesRefs(t *testing.T, a *Aggregator, reqs []core.Request, refs []*core.Result, label string) {
	t.Helper()
	for i, req := range reqs {
		res, err := a.Query(req)
		if err != nil {
			t.Fatalf("%s: req %d (%s): %v", label, i, req.Key(), err)
		}
		if !resultsBitEqual(res, refs[i]) {
			t.Fatalf("%s: req %d (%s): result diverges from cold rescan", label, i, req.Key())
		}
	}
}

// TestSnapshotRestartProperty is the restart invariant: ingest through a
// store-backed Ingestor with a mid-stream snapshot commit, append a tail
// after the commit, then boot a fresh ring with Recover. The recovered
// ring must answer every request bit-identically to a cold
// Study.Execute, touching only the manifest tail — never the covered
// segments.
func TestSnapshotRestartProperty(t *testing.T) {
	widths := []time.Duration{24 * time.Hour, 31 * 24 * time.Hour}
	for _, width := range widths {
		width := width
		t.Run(width.String(), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(width)))
			all, sorted := snapCorpus(t, 400, 21)
			dir := t.TempDir()
			store, err := tweetdb.Open(filepath.Join(dir, "store"))
			if err != nil {
				t.Fatal(err)
			}
			agg, err := NewAggregator(Options{BucketWidth: width})
			if err != nil {
				t.Fatal(err)
			}
			ing, err := NewIngestor(store, agg, 512)
			if err != nil {
				t.Fatal(err)
			}
			snaps, err := OpenSnapshotStore(filepath.Join(dir, "snap"))
			if err != nil {
				t.Fatal(err)
			}

			batches := randomBatches(rng, all, 9)
			cutAt := len(batches) / 2
			for bi, batch := range batches {
				if err := ing.IngestBatch(tweet.BatchOf(batch)); err != nil {
					t.Fatal(err)
				}
				if bi == cutAt {
					if err := ing.Flush(); err != nil {
						t.Fatal(err)
					}
					if _, err := ing.Snapshot(snaps); err != nil {
						t.Fatal(err)
					}
				}
			}
			if err := ing.Flush(); err != nil {
				t.Fatal(err)
			}
			// A second commit after more ingest: the incremental path
			// rewrites only buckets the tail batches touched.
			if _, err := ing.Snapshot(snaps); err != nil {
				t.Fatal(err)
			}
			// Tail beyond the last commit, replayed from the store at boot.
			tailBatches := randomBatches(rng, all[:len(all)/4], 3)
			for _, batch := range tailBatches {
				if err := ing.IngestBatch(tweet.BatchOf(batch)); err != nil {
					t.Fatal(err)
				}
			}
			if err := ing.Flush(); err != nil {
				t.Fatal(err)
			}

			// The reference corpus is what the store now holds: all plus the
			// replayed quarter.
			full := append([]tweet.Tweet(nil), all...)
			for _, batch := range tailBatches {
				full = append(full, batch...)
			}
			fullSorted := append([]tweet.Tweet(nil), full...)
			sort.Sort(tweet.ByUserTime(fullSorted))
			reqs := snapRequests(sorted)
			refs := snapRefs(t, fullSorted, reqs)
			assertAggMatchesRefs(t, agg, reqs, refs, "pre-restart ring")

			// Restart: fresh ring, reopened snapshot dir, same store.
			agg2, err := NewAggregator(Options{BucketWidth: width})
			if err != nil {
				t.Fatal(err)
			}
			snaps2, err := OpenSnapshotStore(filepath.Join(dir, "snap"))
			if err != nil {
				t.Fatal(err)
			}
			loads0, scans0 := store.SegmentLoads(), store.ScanCount()
			st, err := Recover(agg2, store, snaps2, RecoverOpts{})
			if err != nil {
				t.Fatal(err)
			}
			if st.FullRescan {
				t.Fatalf("recovery fell back to a full rescan: %+v", st)
			}
			if st.Restored == 0 {
				t.Fatalf("recovery restored no buckets: %+v", st)
			}
			if st.SnapErrors != 0 || st.Backfilled != 0 {
				t.Fatalf("clean snapshot recovery reported errors: %+v", st)
			}
			if st.TailSegments == 0 {
				t.Fatalf("expected a manifest tail to replay: %+v", st)
			}
			if got := store.SegmentLoads() - loads0; got != int64(st.TailSegments) {
				t.Fatalf("recovery decoded %d segments, want exactly the %d tail segments", got, st.TailSegments)
			}
			if store.ScanCount()-scans0 != 1 {
				t.Fatalf("recovery started %d scans, want 1 (tail only)", store.ScanCount()-scans0)
			}
			assertAggMatchesRefs(t, agg2, reqs, refs, "recovered ring")
		})
	}
}

// TestSnapshotCleanRestartZeroReplay pins the graceful-drain promise: a
// snapshot taken after the final flush makes the next boot pure snapshot
// restore — zero store scans, zero segment decodes, zero WAL-tail work.
func TestSnapshotCleanRestartZeroReplay(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	all, sorted := snapCorpus(t, 300, 23)
	dir := t.TempDir()
	store, err := tweetdb.Open(filepath.Join(dir, "store"))
	if err != nil {
		t.Fatal(err)
	}
	agg, err := NewAggregator(Options{BucketWidth: 31 * 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	ing, err := NewIngestor(store, agg, 1024)
	if err != nil {
		t.Fatal(err)
	}
	snaps, err := OpenSnapshotStore(filepath.Join(dir, "snap"))
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range randomBatches(rng, all, 5) {
		if err := ing.IngestBatch(tweet.BatchOf(batch)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ing.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := ing.Snapshot(snaps); err != nil {
		t.Fatal(err)
	}

	agg2, err := NewAggregator(Options{BucketWidth: 31 * 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	snaps2, err := OpenSnapshotStore(filepath.Join(dir, "snap"))
	if err != nil {
		t.Fatal(err)
	}
	loads0, scans0 := store.SegmentLoads(), store.ScanCount()
	st, err := Recover(agg2, store, snaps2, RecoverOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if st.FullRescan || st.Backfilled != 0 || st.SnapErrors != 0 || st.TailSegments != 0 || st.TailRecords != 0 {
		t.Fatalf("clean restart did store work: %+v", st)
	}
	if store.SegmentLoads() != loads0 || store.ScanCount() != scans0 {
		t.Fatalf("clean restart touched the store: loads %d→%d scans %d→%d",
			loads0, store.SegmentLoads(), scans0, store.ScanCount())
	}
	reqs := snapRequests(sorted)
	assertAggMatchesRefs(t, agg2, reqs, snapRefs(t, sorted, reqs), "zero-replay ring")
}

// TestSnapshotIncrementalCommit pins the incremental contract: unchanged
// buckets are never rewritten, a no-change commit writes nothing, and
// files a new manifest no longer references are garbage-collected.
func TestSnapshotIncrementalCommit(t *testing.T) {
	all, _ := snapCorpus(t, 200, 31)
	sort.Slice(all, func(i, j int) bool { return all[i].TS < all[j].TS })
	dir := t.TempDir()
	store, err := tweetdb.Open(filepath.Join(dir, "store"))
	if err != nil {
		t.Fatal(err)
	}
	agg, err := NewAggregator(Options{BucketWidth: 31 * 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	ing, err := NewIngestor(store, agg, 1024)
	if err != nil {
		t.Fatal(err)
	}
	snaps, err := OpenSnapshotStore(filepath.Join(dir, "snap"))
	if err != nil {
		t.Fatal(err)
	}
	// First half: everything dirty, everything written.
	if err := ing.IngestBatch(tweet.BatchOf(all[:len(all)/2])); err != nil {
		t.Fatal(err)
	}
	if err := ing.Flush(); err != nil {
		t.Fatal(err)
	}
	st1, err := ing.Snapshot(snaps)
	if err != nil {
		t.Fatal(err)
	}
	if st1.Written == 0 || st1.Written != st1.Buckets {
		t.Fatalf("first commit wrote %d of %d buckets, want all", st1.Written, st1.Buckets)
	}
	// Second half arrives time-sorted, so early buckets stay untouched.
	if err := ing.IngestBatch(tweet.BatchOf(all[len(all)/2:])); err != nil {
		t.Fatal(err)
	}
	if err := ing.Flush(); err != nil {
		t.Fatal(err)
	}
	st2, err := ing.Snapshot(snaps)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Written == 0 || st2.Written >= st2.Buckets {
		t.Fatalf("second commit wrote %d of %d buckets, want a strict subset", st2.Written, st2.Buckets)
	}
	// No changes since: the commit is a no-op.
	st3, err := ing.Snapshot(snaps)
	if err != nil {
		t.Fatal(err)
	}
	if st3.Written != 0 {
		t.Fatalf("no-change commit rewrote %d buckets", st3.Written)
	}
	// Exactly the manifest's files remain on disk — superseded revisions
	// were collected.
	entries, err := os.ReadDir(filepath.Join(dir, "snap"))
	if err != nil {
		t.Fatal(err)
	}
	blobs := 0
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), snapSuffix) {
			blobs++
		}
	}
	if blobs != st2.Buckets {
		t.Fatalf("snapshot dir holds %d blob files, manifest references %d", blobs, st2.Buckets)
	}
}

// TestSnapshotExportInjectRoundTrip drives the handoff path: a full
// export stream decoded and injected into an empty ring reproduces every
// answer bit-identically, and re-running the export over unchanged ring
// content yields byte-identical frames (the dedup-friendly determinism
// an interrupted handoff retry relies on).
func TestSnapshotExportInjectRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	all, sorted := snapCorpus(t, 300, 41)
	sh, err := NewShape(Options{BucketWidth: 31 * 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	agg := sh.NewAggregator()
	for _, batch := range randomBatches(rng, all, 6) {
		if err := agg.Ingest(batch); err != nil {
			t.Fatal(err)
		}
	}
	var stream1, stream2 [][]byte
	collect := func(dst *[][]byte) func([]byte) error {
		return func(blob []byte) error {
			*dst = append(*dst, append([]byte(nil), blob...))
			return nil
		}
	}
	if err := agg.ExportSnapshots(collect(&stream1)); err != nil {
		t.Fatal(err)
	}
	if err := agg.ExportSnapshots(collect(&stream2)); err != nil {
		t.Fatal(err)
	}
	if len(stream1) == 0 || len(stream1) != len(stream2) {
		t.Fatalf("export streams differ in length: %d vs %d", len(stream1), len(stream2))
	}
	for i := range stream1 {
		if string(stream1[i]) != string(stream2[i]) {
			t.Fatalf("export frame %d not deterministic across runs", i)
		}
	}
	dst := sh.NewAggregator()
	for i, blob := range stream1 {
		bs, err := sh.DecodeBucketSnapshot(blob)
		if err != nil {
			t.Fatalf("decode frame %d: %v", i, err)
		}
		dst.InjectSnapshot(bs)
	}
	reqs := snapRequests(sorted)
	assertAggMatchesRefs(t, dst, reqs, snapRefs(t, sorted, reqs), "injected ring")
	if dst.Ingested() != int64(len(all)) {
		t.Fatalf("injected ring ingested %d records, want %d", dst.Ingested(), len(all))
	}
}
