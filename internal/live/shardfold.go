package live

import (
	"geomob/internal/census"
	"geomob/internal/core"
)

// This file is the live subsystem's contribution to the cluster scale-out
// (internal/cluster, DESIGN.md §8): a shard node answers a scatter query
// not with an assembled Result but with a ShardPartial — its own folded
// observer state at per-user granularity — which the coordinator merges
// with the user-disjoint partials of the other shards.

// UserTrajectory is one user's folded trajectory state over a request
// window. A user-hash-partitioned cluster keeps each user's records whole
// on one shard, but the global stream order interleaves the users of all
// shards by ascending id, so the flat Table I series (per-user counts,
// waiting/displacement runs, gyration radii) cannot be concatenated shard
// by shard. Shipping the state per user lets the coordinator re-interleave
// users into exactly the serial order and reassemble the flat series a
// single-node pass emits, bit for bit.
type UserTrajectory struct {
	// ID is the user id; Tweets the user's in-window record count.
	ID     int64
	Tweets int64
	// SumX, SumY and SumZ are the radius-of-gyration unit-vector addends,
	// accumulated in serial record order on the shard (where the complete
	// trajectory lives). The coordinator derives the radius with the same
	// mobility.GyrationRadiusKM call a local fold performs, so the result
	// carries identical bits.
	SumX, SumY, SumZ float64
	// DistinctCells is the user's distinct ~5 km geohash cell count
	// (Table I "locations"), exact on the shard because the whole
	// trajectory is local.
	DistinctCells int64
	// Waits and Disps are the user's complete waiting-time and
	// displacement series in record order (length Tweets-1 each),
	// cross-bucket boundaries already stitched by the shard's fold.
	Waits, Disps []float64
}

// ShardPartial is the scatter-gather unit of internal/cluster: the folded
// observer state of one aggregator — one user partition — over one request
// window. The aggregate fields ride the embedded core.FoldedPass, whose
// additive pieces (tweet count, span, per-area unique-user counts, flow
// matrices) merge exactly across user-disjoint shards; Stats stays nil and
// the trajectory statistics travel per user in Users instead.
//
// Per-area unique-user counts are additive here — with no bitset on the
// wire — precisely because the partitioner keeps users whole: each user is
// counted toward an area by exactly one shard, so the per-shard count
// vectors sum to the global ones.
type ShardPartial struct {
	core.FoldedPass
	// Scales are the request plan's scales in plan order — the canonical
	// iteration order of the Counts and Flows maps for wire codecs.
	Scales []census.Scale
	// Users holds the per-user trajectory state in ascending id order.
	// Nil unless the plan wants stats.
	Users []UserTrajectory
	// Coverage is the shard's bucket-coverage accounting for this fold
	// (rollup-tier groups, full buckets, residual edge records) — free
	// to record during the fold, carried on the wire for EXPLAIN
	// ANALYZE's per-shard breakdown (DESIGN.md §13).
	Coverage FoldCoverage
}

// FoldPartial folds the materialised partials covering req's window into
// the shard partial a cluster coordinator merges. Like Query it touches no
// storage and reuses every covered bucket's materialised partial; unlike
// Query it stops before assembly, leaving the trajectory statistics at
// per-user granularity so user-disjoint shard partials can be interleaved
// exactly. Shapes the aggregator does not materialise answer ErrNotCovered
// and windows below the eviction floor ErrEvicted, exactly like Query.
func (a *Aggregator) FoldPartial(req core.Request) (*ShardPartial, error) {
	info, err := core.PlanRequest(req)
	if err != nil {
		return nil, err
	}
	if err := a.covers(info); err != nil {
		return nil, err
	}
	lo, hi := window(info)
	var cov FoldCoverage
	parts, err := a.collectCov(lo, hi, &cov, false)
	if err != nil {
		return nil, err
	}
	fp, users := a.foldInto(info, parts, true)
	return &ShardPartial{
		FoldedPass: *fp,
		Scales:     append([]census.Scale(nil), info.Scales...),
		Users:      users,
		Coverage:   cov,
	}, nil
}
