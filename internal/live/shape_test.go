package live

import (
	"testing"
	"time"

	"geomob/internal/testx"
	"geomob/internal/tweet"
)

// TestShapeSharedAggregators: aggregators stamped from one Shape are
// independent (separate buckets, counters, revisions) while sharing
// the assignment machinery, and they fold bit-identically to an
// aggregator built standalone over the same options.
func TestShapeSharedAggregators(t *testing.T) {
	opts := Options{BucketWidth: time.Hour}
	sh, err := NewShape(opts)
	if err != nil {
		t.Fatal(err)
	}
	a, b := sh.NewAggregator(), sh.NewAggregator()
	standalone, err := NewAggregator(opts)
	if err != nil {
		t.Fatal(err)
	}

	mk := func(id, user int64, ts int64) tweet.Tweet {
		return tweet.Tweet{ID: id, UserID: user, TS: ts, Lat: -33.87, Lon: 151.21}
	}
	base := int64(1378000000000)
	batchA := tweet.BatchOf([]tweet.Tweet{
		mk(1, 100, base), mk(2, 100, base+60000), mk(3, 101, base+120000),
	})
	batchB := tweet.BatchOf([]tweet.Tweet{
		mk(4, 200, base), mk(5, 200, base+30000),
	})
	if err := a.IngestBatch(batchA); err != nil {
		t.Fatal(err)
	}
	if err := b.IngestBatch(batchB); err != nil {
		t.Fatal(err)
	}
	if err := standalone.IngestBatch(batchA); err != nil {
		t.Fatal(err)
	}

	if a.Ingested() != 3 || b.Ingested() != 2 {
		t.Fatalf("counters leaked across shared shape: a=%d b=%d", a.Ingested(), b.Ingested())
	}
	if a.Buckets() == 0 || b.Buckets() == 0 {
		t.Fatal("aggregator over shared shape holds no buckets")
	}

	lo, hi := base-1, base+600000
	got, err := a.WindowTweets(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	want, err := standalone.WindowTweets(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if !testx.ValuesBitEqual(got, want) {
		t.Fatal("shared-shape aggregator diverges from standalone over identical input")
	}
	// b never saw batchA's users.
	bRows, err := b.WindowTweets(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range bRows {
		if row.UserID != 200 {
			t.Fatalf("aggregator b leaked user %d from aggregator a", row.UserID)
		}
	}
}
