package obs

import (
	"sync"
	"time"
)

// TraceRecord is one completed request trace as retained by TraceStore
// and served from GET /debug/traces. It is a flattened, JSON-ready copy
// of what the traced() middleware saw: identity, outcome, and the
// per-stage timings the Trace accumulated while the request ran.
type TraceRecord struct {
	ID       string        `json:"id"`
	Endpoint string        `json:"endpoint"`
	URL      string        `json:"url"`
	Status   int           `json:"status"`
	Start    time.Time     `json:"start"`
	TotalMs  float64       `json:"total_ms"`
	Stages   []StageTiming `json:"stages,omitempty"`
	Slow     bool          `json:"slow"`
	Error    bool          `json:"error"`

	seq uint64
}

// TraceStore is a bounded in-memory ring of recent completed traces
// with priority retention: slow and error traces survive normal churn.
// The store holds at most cap records split across two FIFO queues —
// when full, the oldest *normal* trace is evicted first, so a burst of
// healthy traffic cannot flush out the interesting outliers; only when
// no normal traces remain does the oldest priority trace go. At most
// a quarter of capacity is reserved for priority traces so a pathological
// error storm cannot pin the store forever either (oldest priority
// evicts once the reserve is exceeded).
type TraceStore struct {
	mu       sync.Mutex
	capacity int
	seq      uint64
	normal   []*TraceRecord // FIFO, oldest first
	priority []*TraceRecord // FIFO, oldest first (slow/error)
	byID     map[string]*TraceRecord
}

// DefaultTraceCapacity is the retention bound used when NewTraceStore
// is given a non-positive capacity.
const DefaultTraceCapacity = 512

// NewTraceStore returns a store retaining at most capacity traces.
func NewTraceStore(capacity int) *TraceStore {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &TraceStore{
		capacity: capacity,
		byID:     map[string]*TraceRecord{},
	}
}

// Add retains one completed trace, evicting per the retention policy.
// Records with an empty ID are dropped (nothing could look them up).
// Nil-safe, so servers without a store wired just skip retention.
func (s *TraceStore) Add(rec TraceRecord) {
	if s == nil || rec.ID == "" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	rec.seq = s.seq
	r := &rec
	// An ID collision (client re-sent the same X-Geomob-Trace) keeps
	// the newest record findable; the stale entry ages out of its queue
	// normally but no longer owns the ID.
	s.byID[r.ID] = r
	if r.Slow || r.Error {
		s.priority = append(s.priority, r)
	} else {
		s.normal = append(s.normal, r)
	}
	reserve := s.capacity / 4
	if reserve < 1 {
		reserve = 1
	}
	for len(s.normal)+len(s.priority) > s.capacity {
		switch {
		case len(s.priority) > reserve && len(s.priority) > 0:
			s.evictLocked(&s.priority)
		case len(s.normal) > 0:
			s.evictLocked(&s.normal)
		default:
			s.evictLocked(&s.priority)
		}
	}
}

func (s *TraceStore) evictLocked(q *[]*TraceRecord) {
	old := (*q)[0]
	*q = (*q)[1:]
	if cur, ok := s.byID[old.ID]; ok && cur == old {
		delete(s.byID, old.ID)
	}
}

// Get returns the retained trace with the given ID.
func (s *TraceStore) Get(id string) (TraceRecord, bool) {
	if s == nil {
		return TraceRecord{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.byID[id]
	if !ok {
		return TraceRecord{}, false
	}
	return *r, true
}

// List returns up to limit retained traces, newest first (limit <= 0
// means all).
func (s *TraceStore) List(limit int) []TraceRecord {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	all := make([]*TraceRecord, 0, len(s.normal)+len(s.priority))
	all = append(all, s.normal...)
	all = append(all, s.priority...)
	s.mu.Unlock()
	// Merge the two FIFO queues into one newest-first view by sequence.
	out := make([]TraceRecord, 0, len(all))
	for _, r := range all {
		out = append(out, *r)
	}
	sortTracesBySeqDesc(out)
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// Len reports how many traces are currently retained.
func (s *TraceStore) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.normal) + len(s.priority)
}

func sortTracesBySeqDesc(recs []TraceRecord) {
	// Insertion sort: queues are already mostly ordered and the store
	// is small (hundreds), so this avoids pulling in sort for a hot
	// debug path that is anything but hot.
	for i := 1; i < len(recs); i++ {
		for j := i; j > 0 && recs[j].seq > recs[j-1].seq; j-- {
			recs[j], recs[j-1] = recs[j-1], recs[j]
		}
	}
}
