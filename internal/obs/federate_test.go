package obs

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestMergeExpositionsTwoNodes(t *testing.T) {
	a := []byte(`# HELP geomob_store_tweets Tweets in the store.
# TYPE geomob_store_tweets gauge
geomob_store_tweets 100
# TYPE geomob_shard_folds_total counter
geomob_shard_folds_total 7
# TYPE geomob_query_duration_seconds histogram
geomob_query_duration_seconds_bucket{endpoint="/v1/stats",le="0.01"} 3
geomob_query_duration_seconds_bucket{endpoint="/v1/stats",le="+Inf"} 4
geomob_query_duration_seconds_sum{endpoint="/v1/stats"} 0.05
geomob_query_duration_seconds_count{endpoint="/v1/stats"} 4
`)
	b := []byte(`# TYPE geomob_store_tweets gauge
geomob_store_tweets 250
# TYPE geomob_shard_folds_total counter
geomob_shard_folds_total 9
`)
	var buf bytes.Buffer
	err := MergeExpositions(&buf, []ScrapeResult{
		{Node: "member-000", Body: a},
		{Node: "member-001", Body: b},
	})
	if err != nil {
		t.Fatalf("MergeExpositions: %v", err)
	}
	out := buf.String()

	for _, want := range []string{
		`geomob_store_tweets{node="member-000"} 100`,
		`geomob_store_tweets{node="member-001"} 250`,
		`geomob_shard_folds_total{node="member-000"} 7`,
		`geomob_shard_folds_total{node="member-001"} 9`,
		`geomob_query_duration_seconds_bucket{node="member-000",endpoint="/v1/stats",le="0.01"} 3`,
		`geomob_query_duration_seconds_sum{node="member-000",endpoint="/v1/stats"} 0.05`,
		`geomob_member_up{node="member-000"} 1`,
		`geomob_member_up{node="member-001"} 1`,
		`geomob_member_scrape_errors{node="member-000"} 0`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("merged exposition missing %q\n---\n%s", want, out)
		}
	}
	// One TYPE header per family even though both nodes declared it.
	if n := strings.Count(out, "# TYPE geomob_store_tweets gauge\n"); n != 1 {
		t.Errorf("geomob_store_tweets TYPE header appears %d times, want 1", n)
	}
	// HELP from the node that provided it survives.
	if !strings.Contains(out, "# HELP geomob_store_tweets Tweets in the store.\n") {
		t.Error("HELP line lost in merge")
	}
	validateExposition(t, out)
}

func TestMergeExpositionsDownMember(t *testing.T) {
	up := []byte("# TYPE geomob_store_tweets gauge\ngeomob_store_tweets 5\n")
	var buf bytes.Buffer
	err := MergeExpositions(&buf, []ScrapeResult{
		{Node: "member-000", Body: up},
		{Node: "member-001", Err: errors.New("connection refused")},
	})
	if err != nil {
		t.Fatalf("MergeExpositions with down member: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		`geomob_store_tweets{node="member-000"} 5`,
		`geomob_member_up{node="member-000"} 1`,
		`geomob_member_up{node="member-001"} 0`,
		`geomob_member_scrape_errors{node="member-001"} 1`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("missing %q\n---\n%s", want, out)
		}
	}
	if strings.Contains(out, `geomob_store_tweets{node="member-001"`) {
		t.Error("down member contributed data series")
	}
	validateExposition(t, out)
}

func TestMergeExpositionsAllDown(t *testing.T) {
	var buf bytes.Buffer
	err := MergeExpositions(&buf, []ScrapeResult{
		{Node: "member-000", Err: errors.New("x")},
		{Node: "member-001", Err: errors.New("y")},
	})
	if err != nil {
		t.Fatalf("MergeExpositions all down: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, `geomob_member_up{node="member-000"} 0`) ||
		!strings.Contains(out, `geomob_member_up{node="member-001"} 0`) {
		t.Fatalf("all-down exposition lacks down markers:\n%s", out)
	}
	validateExposition(t, out)
}

func TestMergeExpositionsBareNameGetsNodeLabel(t *testing.T) {
	var buf bytes.Buffer
	err := MergeExpositions(&buf, []ScrapeResult{
		{Node: "n0", Body: []byte("geomob_untyped_thing 3\n")},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `geomob_untyped_thing{node="n0"} 3`) {
		t.Fatalf("bare series not relabelled:\n%s", out)
	}
	if !strings.Contains(out, "# TYPE geomob_untyped_thing untyped\n") {
		t.Fatalf("untyped family lacks TYPE header:\n%s", out)
	}
}

func TestMergeExpositionsMalformed(t *testing.T) {
	var buf bytes.Buffer
	err := MergeExpositions(&buf, []ScrapeResult{
		{Node: "n0", Body: []byte("{oops} 3\n")},
	})
	if err == nil {
		t.Fatal("malformed sample line accepted")
	}
}

// validateExposition enforces text-format invariants on the merged
// output: every sample line parses, every series belongs to a family
// whose TYPE header preceded it, and no family name is declared twice.
func validateExposition(t *testing.T, doc string) {
	t.Helper()
	typed := map[string]string{}
	for _, line := range strings.Split(doc, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			if _, dup := typed[fields[2]]; dup {
				t.Fatalf("family %s declared twice", fields[2])
			}
			typed[fields[2]] = fields[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		name, rest, ok := splitSample(line)
		if !ok {
			t.Fatalf("unparseable sample line %q", line)
		}
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if cut, found := strings.CutSuffix(name, suf); found {
				if typ, ok := typed[cut]; ok && (typ == "histogram" || typ == "summary") {
					base = cut
					break
				}
			}
		}
		if _, ok := typed[base]; !ok {
			t.Fatalf("sample %q has no preceding TYPE header", line)
		}
		val := strings.TrimSpace(rest)
		if i := strings.LastIndex(val, "}"); i >= 0 {
			val = strings.TrimSpace(val[i+1:])
		}
		if val == "" {
			t.Fatalf("sample %q has no value", line)
		}
	}
}
