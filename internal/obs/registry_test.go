package obs

import (
	"fmt"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_total", "help")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Re-registration returns the same series.
	if r.Counter("t_total", "help") != c {
		t.Fatal("re-registration returned a different counter")
	}

	g := r.Gauge("t_gauge", "help")
	g.Set(2.5)
	g.Add(0.5)
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge = %v, want 3", got)
	}
	g.SetInt(7)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %v, want 7", got)
	}

	v := 41.0
	r.GaugeFunc("t_fn", "help", func() float64 { return v })
	v = 42
	if got := r.Snapshot().Value("t_fn"); got != 42 {
		t.Fatalf("gaugefunc snapshot = %v, want 42", got)
	}
}

func TestLabelledSeries(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("lane_total", "h", "node", "n1")
	b := r.Counter("lane_total", "h", "node", "n2")
	if a == b {
		t.Fatal("distinct labels shared a series")
	}
	a.Add(3)
	b.Add(9)
	snap := r.Snapshot()
	if snap.Int(`lane_total{node="n1"}`) != 3 || snap.Int(`lane_total{node="n2"}`) != 9 {
		t.Fatalf("labelled snapshot wrong: %v", snap)
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dual", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("registering one name as counter and gauge did not panic")
		}
	}()
	r.Gauge("dual", "h")
}

func TestSnapshotHistogramKeys(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "h", nil)
	h.Observe(0.002)
	h.Observe(0.004)
	snap := r.Snapshot()
	if snap.Value("lat_seconds_count") != 2 {
		t.Fatalf("histogram count = %v, want 2", snap.Value("lat_seconds_count"))
	}
	if got := snap.Value("lat_seconds_sum"); got < 0.0059 || got > 0.0061 {
		t.Fatalf("histogram sum = %v, want ~0.006", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram(nil)
	// 90 fast observations, 10 slow: p50 must land in the fast bucket,
	// p99 in the slow one.
	for i := 0; i < 90; i++ {
		h.Observe(0.002)
	}
	for i := 0; i < 10; i++ {
		h.Observe(0.4)
	}
	if p50 := h.Quantile(0.50); p50 > 0.0025 {
		t.Fatalf("p50 = %v, want <= 0.0025", p50)
	}
	if p99 := h.Quantile(0.99); p99 < 0.25 || p99 > 0.5 {
		t.Fatalf("p99 = %v, want in (0.25, 0.5]", p99)
	}
	if q := h.Quantile(0.95); q < 0.002 {
		t.Fatalf("p95 = %v, want >= 0.002", q)
	}
	eh := newHistogram(nil)
	if got := eh.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := newHistogram([]float64{0.001, 0.01})
	h.Observe(5) // beyond every bound -> +Inf bucket
	n, sum := h.CountSum()
	if n != 1 || sum != 5 {
		t.Fatalf("count,sum = %d,%v want 1,5", n, sum)
	}
	if got := h.Quantile(0.99); got != 0.01 {
		t.Fatalf("overflow quantile = %v, want largest finite bound 0.01", got)
	}
}

// TestRegistryConcurrency hammers registration, writes and snapshot
// reads together; run with -race this is the registry's data-race
// proof.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("conc_total", "h", "w", fmt.Sprint(w%2))
			h := r.Histogram("conc_seconds", "h", nil)
			for i := 0; i < 2000; i++ {
				c.Inc()
				h.Observe(float64(i) * 1e-6)
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	snap := r.Snapshot()
	total := snap.Int(`conc_total{w="0"}`) + snap.Int(`conc_total{w="1"}`)
	if total != 8*2000 {
		t.Fatalf("concurrent counter total = %d, want %d", total, 8*2000)
	}
	if snap.Value("conc_seconds_count") != 8*2000 {
		t.Fatalf("concurrent histogram count = %v, want %d", snap.Value("conc_seconds_count"), 8*2000)
	}
}
