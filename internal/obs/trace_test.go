package obs

import (
	"context"
	"testing"
	"time"
)

func TestTraceStages(t *testing.T) {
	tr := NewTrace("")
	if len(tr.ID) != 16 {
		t.Fatalf("generated ID %q, want 16 hex digits", tr.ID)
	}
	end := tr.StartStage("fold")
	time.Sleep(time.Millisecond)
	end()
	tr.AddStage("merge", 5*time.Millisecond)
	st := tr.Stages()
	if len(st) != 2 || st[0].Name != "fold" || st[1].Name != "merge" {
		t.Fatalf("stages = %+v", st)
	}
	if st[0].D <= 0 || st[0].Ms <= 0 {
		t.Fatalf("fold stage not timed: %+v", st[0])
	}
	if st[1].Ms != 5 {
		t.Fatalf("merge ms = %v, want 5", st[1].Ms)
	}
	if tr.Total() <= 0 {
		t.Fatal("zero total")
	}
}

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	tr.StartStage("x")()
	tr.AddStage("y", time.Second)
	if tr.Stages() != nil || tr.Total() != 0 {
		t.Fatal("nil trace recorded something")
	}
}

func TestTraceContext(t *testing.T) {
	tr := NewTrace("abc123")
	ctx := WithTrace(context.Background(), tr)
	if TraceFrom(ctx) != tr {
		t.Fatal("TraceFrom lost the trace")
	}
	if TraceID(ctx) != "abc123" {
		t.Fatalf("TraceID = %q", TraceID(ctx))
	}
	if TraceFrom(context.Background()) != nil || TraceID(context.Background()) != "" {
		t.Fatal("empty context produced a trace")
	}
}
