package obs

import (
	"context"
	"sync"
)

// Explain is a request-scoped carrier for EXPLAIN ANALYZE sections
// (DESIGN.md §13). Like Trace, every method is nil-safe: instrumented
// layers call Set unconditionally and a request without ?explain=1
// simply carries no Explain, so the non-explain path does not branch —
// and cannot diverge. The carrier only collects; it never influences
// the computation it describes, which is what keeps explain observably
// side-effect-free.
type Explain struct {
	mu       sync.Mutex
	sections map[string]any
}

// NewExplain starts an empty explain collection.
func NewExplain() *Explain {
	return &Explain{sections: map[string]any{}}
}

// Set records one named section, replacing any previous value. Nil-safe.
func (e *Explain) Set(section string, v any) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.sections[section] = v
	e.mu.Unlock()
}

// Sections returns a copy of the recorded sections. Nil-safe (returns
// nil).
func (e *Explain) Sections() map[string]any {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[string]any, len(e.sections))
	for k, v := range e.sections {
		out[k] = v
	}
	return out
}

type explainKey struct{}

// WithExplain attaches e to ctx.
func WithExplain(ctx context.Context, e *Explain) context.Context {
	return context.WithValue(ctx, explainKey{}, e)
}

// ExplainFrom returns the explain carrier attached to ctx, or nil.
func ExplainFrom(ctx context.Context) *Explain {
	if ctx == nil {
		return nil
	}
	e, _ := ctx.Value(explainKey{}).(*Explain)
	return e
}
