package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"sort"
	"strings"
)

// ScrapeResult is one member's /metrics scrape as collected by the
// coordinator before federation. Err non-nil (or a nil Body with no
// error, for members that expose no scrapeable endpoint) marks the
// member down/unscrapeable; Body is the raw text exposition otherwise.
type ScrapeResult struct {
	Node string
	Body []byte
	Err  error
}

// mergedFamily accumulates one metric family across all scraped nodes.
type mergedFamily struct {
	name  string
	typ   string
	help  string
	lines []string // fully rendered sample lines, node label applied
}

// MergeExpositions re-renders per-node Prometheus text expositions as
// one valid exposition document (DESIGN.md §13): families are merged by
// name with a single # HELP/# TYPE header each, every sample line gains
// a leading node="…" label, and two synthesized gauge families report
// scrape health — geomob_member_up{node=…} 0|1 and
// geomob_member_scrape_errors{node=…}. A failed scrape degrades to its
// down markers; the healthy members' series still render.
func MergeExpositions(w io.Writer, results []ScrapeResult) error {
	fams := map[string]*mergedFamily{}
	var order []string
	family := func(name string) *mergedFamily {
		f, ok := fams[name]
		if !ok {
			f = &mergedFamily{name: name}
			fams[name] = f
			order = append(order, name)
		}
		return f
	}

	for _, res := range results {
		if res.Err != nil || res.Body == nil {
			continue
		}
		if err := mergeOne(res.Node, res.Body, family); err != nil {
			return fmt.Errorf("federate %s: %w", res.Node, err)
		}
	}

	sort.Strings(order)
	var buf bytes.Buffer
	for _, name := range order {
		f := fams[name]
		if len(f.lines) == 0 {
			continue
		}
		if f.help != "" {
			fmt.Fprintf(&buf, "# HELP %s %s\n", f.name, f.help)
		}
		typ := f.typ
		if typ == "" {
			typ = "untyped"
		}
		fmt.Fprintf(&buf, "# TYPE %s %s\n", f.name, typ)
		for _, ln := range f.lines {
			buf.WriteString(ln)
			buf.WriteByte('\n')
		}
	}

	// Scrape-health gauges, one series per member regardless of outcome.
	fmt.Fprintf(&buf, "# HELP geomob_member_up Whether the member's metrics endpoint answered the federated scrape.\n")
	fmt.Fprintf(&buf, "# TYPE geomob_member_up gauge\n")
	for _, res := range results {
		up := 0
		if res.Err == nil && res.Body != nil {
			up = 1
		}
		fmt.Fprintf(&buf, "geomob_member_up{node=%q} %d\n", res.Node, up)
	}
	fmt.Fprintf(&buf, "# HELP geomob_member_scrape_errors Whether the federated scrape of the member failed.\n")
	fmt.Fprintf(&buf, "# TYPE geomob_member_scrape_errors gauge\n")
	for _, res := range results {
		errv := 0
		if res.Err != nil {
			errv = 1
		}
		fmt.Fprintf(&buf, "geomob_member_scrape_errors{node=%q} %d\n", res.Node, errv)
	}

	_, err := w.Write(buf.Bytes())
	return err
}

// mergeOne streams one node's exposition into the family accumulator.
// HELP/TYPE comments set the current family; sample lines attach to the
// family whose name they carry (resolving histogram/summary suffixes
// _bucket/_sum/_count to their base family when typed).
func mergeOne(node string, body []byte, family func(string) *mergedFamily) error {
	histos := map[string]bool{}
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimRight(sc.Text(), " \t")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 {
				continue
			}
			switch fields[1] {
			case "HELP":
				f := family(fields[2])
				if f.help == "" && len(fields) == 4 {
					f.help = fields[3]
				}
			case "TYPE":
				if len(fields) < 4 {
					continue
				}
				f := family(fields[2])
				if f.typ == "" {
					f.typ = fields[3]
				}
				if fields[3] == "histogram" || fields[3] == "summary" {
					histos[fields[2]] = true
				}
			}
			continue
		}
		name, rest, ok := splitSample(line)
		if !ok {
			return fmt.Errorf("malformed sample line %q", line)
		}
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if trimmed, found := strings.CutSuffix(name, suf); found && histos[trimmed] {
				base = trimmed
				break
			}
		}
		f := family(base)
		f.lines = append(f.lines, relabel(name, rest, node))
	}
	return sc.Err()
}

// splitSample splits a sample line into the series name and the
// remainder (label block, if any, plus value). The name ends at the
// first '{' or space.
func splitSample(line string) (name, rest string, ok bool) {
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '{':
			return line[:i], line[i:], i > 0
		case ' ':
			return line[:i], line[i:], i > 0
		}
	}
	return "", "", false
}

// relabel renders one sample line with node="…" injected as the first
// label. Values are carried through as raw strings — federation must
// not reformat a member's numbers.
func relabel(name, rest, node string) string {
	nodeLabel := fmt.Sprintf("node=%q", node)
	if strings.HasPrefix(rest, "{") && !strings.HasPrefix(rest, "{}") {
		return name + "{" + nodeLabel + "," + rest[1:]
	}
	rest = strings.TrimPrefix(rest, "{}")
	return name + "{" + nodeLabel + "}" + rest
}
