package obs

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// WritePrometheus renders every family in the registry in the
// Prometheus text exposition format (version 0.0.4): sorted families,
// each with # HELP / # TYPE headers; histograms as cumulative
// `_bucket{le=…}` series plus `_sum` and `_count`.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.sortedFamilies() {
		f.mu.Lock()
		series := append([]*series(nil), f.series...)
		f.mu.Unlock()
		if len(series) == 0 {
			continue
		}
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, s := range series {
			if err := writeSeries(w, f.name, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func escapeHelp(h string) string {
	if !strings.ContainsAny(h, "\\\n") {
		return h
	}
	return strings.NewReplacer(`\`, `\\`, "\n", `\n`).Replace(h)
}

func formatValue(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func writeSeries(w io.Writer, name string, s *series) error {
	switch {
	case s.c != nil:
		_, err := fmt.Fprintf(w, "%s%s %d\n", name, braced(s.labels), s.c.Value())
		return err
	case s.gf != nil:
		_, err := fmt.Fprintf(w, "%s%s %s\n", name, braced(s.labels), formatValue(s.gf()))
		return err
	case s.g != nil:
		_, err := fmt.Fprintf(w, "%s%s %s\n", name, braced(s.labels), formatValue(s.g.Value()))
		return err
	case s.h != nil:
		return writeHistogram(w, name, s)
	}
	return nil
}

func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// writeHistogram emits cumulative buckets: each le bound reports the
// count of observations at or below it, ending at the +Inf bucket whose
// value equals _count.
func writeHistogram(w io.Writer, name string, s *series) error {
	h := s.h
	counts := h.bucketCounts()
	var cum int64
	for i, b := range h.bounds {
		cum += counts[i]
		le := strconv.FormatFloat(b, 'g', -1, 64)
		ls := joinLabels(s.labels, `le="`+le+`"`)
		if _, err := fmt.Fprintf(w, "%s_bucket{%s} %d\n", name, ls, cum); err != nil {
			return err
		}
	}
	cum += counts[len(counts)-1]
	ls := joinLabels(s.labels, `le="+Inf"`)
	if _, err := fmt.Fprintf(w, "%s_bucket{%s} %d\n", name, ls, cum); err != nil {
		return err
	}
	_, sum := h.CountSum()
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, braced(s.labels), strconv.FormatFloat(sum, 'g', -1, 64)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, braced(s.labels), cum)
	return err
}

func joinLabels(base, extra string) string {
	if base == "" {
		return extra
	}
	return base + "," + extra
}

// Handler serves the given registries concatenated as one exposition
// document (Def first by convention, then any instance registries).
func Handler(regs ...*Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		for _, r := range regs {
			if r == nil {
				continue
			}
			if err := r.WritePrometheus(w); err != nil {
				return
			}
		}
	})
}
