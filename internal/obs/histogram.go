package obs

import (
	"math"
	"sync/atomic"
)

// LatencyBuckets is the shared bucket layout for every latency
// histogram (DESIGN.md §12): roughly ×3 steps from 100µs to 60s, wide
// enough that a cold multi-second scan and a 3ms warm bucket fold land
// in distinct buckets, small enough (18 buckets) that one histogram is
// ~200 bytes of atomics.
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05,
	0.1, 0.25, 0.5,
	1, 2.5, 5,
	10, 30, 60,
}

// Histogram is a fixed-bucket distribution. Observe is wait-free and
// allocation-free: one bucket search over a small immutable bounds
// slice, one atomic bucket increment, one atomic count increment, and a
// CAS loop folding the value into the float sum.
type Histogram struct {
	bounds []float64      // ascending upper bounds; bucket i counts v <= bounds[i]
	counts []atomic.Int64 // len(bounds)+1; last is +Inf overflow
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-added
}

func newHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = LatencyBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds not ascending")
		}
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records v (in the bounds' unit — seconds for LatencyBuckets).
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveSeconds records a duration given in nanoseconds. Callers hold
// a time.Duration; d.Seconds() at the call site works equally — this
// exists so hot paths can pass time.Since(t0) without a conversion
// dance.
func (h *Histogram) ObserveSeconds(nanos int64) { h.Observe(float64(nanos) / 1e9) }

// CountSum returns the total observation count and value sum.
func (h *Histogram) CountSum() (int64, float64) {
	return h.count.Load(), math.Float64frombits(h.sum.Load())
}

// Quantile estimates the q-quantile (0 < q < 1) by linear interpolation
// within the bucket containing the target rank. Values in the +Inf
// overflow bucket report the largest finite bound. Returns 0 when the
// histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			cum += n
			continue
		}
		if float64(cum+n) >= rank {
			if i >= len(h.bounds) {
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - float64(cum)) / float64(n)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// bucketCounts returns the per-bucket (non-cumulative) counts; the
// exposition writer cumulates them.
func (h *Histogram) bucketCounts() []int64 {
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}
