package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"
)

// TraceHeader carries the request trace ID across coordinator→shard
// HTTP hops. mobserve reads it from incoming requests (generating a
// fresh ID when absent), echoes it on responses, and HTTPShard forwards
// it on every shard call so one query's fan-out shares one ID.
const TraceHeader = "X-Geomob-Trace"

// StageTiming is one named span inside a trace.
type StageTiming struct {
	Name string        `json:"stage"`
	D    time.Duration `json:"-"`
	Ms   float64       `json:"ms"`
}

// Trace is a request-scoped span collector. All methods are nil-safe so
// instrumented code paths never branch on whether tracing is active —
// a nil *Trace records nothing at the cost of a nil check.
type Trace struct {
	ID    string
	start time.Time

	mu     sync.Mutex
	stages []StageTiming
}

// NewTrace starts a trace. An empty id generates a random 16-hex-digit
// one.
func NewTrace(id string) *Trace {
	if id == "" {
		var b [8]byte
		if _, err := rand.Read(b[:]); err == nil {
			id = hex.EncodeToString(b[:])
		} else {
			id = "trace-rand-unavailable"
		}
	}
	return &Trace{ID: id, start: time.Now()}
}

// StartStage begins a named stage and returns the function that ends
// it: `defer tr.StartStage("fold")()`.
func (t *Trace) StartStage(name string) func() {
	if t == nil {
		return func() {}
	}
	t0 := time.Now()
	return func() { t.AddStage(name, time.Since(t0)) }
}

// AddStage records an externally measured stage duration.
func (t *Trace) AddStage(name string, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.stages = append(t.stages, StageTiming{Name: name, D: d, Ms: float64(d) / float64(time.Millisecond)})
	t.mu.Unlock()
}

// Stages returns a copy of the recorded stages in record order.
func (t *Trace) Stages() []StageTiming {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]StageTiming(nil), t.stages...)
}

// Total is the wall time since the trace started.
func (t *Trace) Total() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.start)
}

type traceKey struct{}

// WithTrace attaches tr to ctx.
func WithTrace(ctx context.Context, tr *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, tr)
}

// TraceFrom returns the trace attached to ctx, or nil.
func TraceFrom(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	tr, _ := ctx.Value(traceKey{}).(*Trace)
	return tr
}

// TraceID returns the attached trace's ID, or "".
func TraceID(ctx context.Context) string {
	if tr := TraceFrom(ctx); tr != nil {
		return tr.ID
	}
	return ""
}
