package obs

import (
	"context"
	"sync"
	"testing"
)

func TestExplainNilSafe(t *testing.T) {
	var e *Explain
	e.Set("plan", 1) // must not panic
	if got := e.Sections(); got != nil {
		t.Fatalf("nil explain Sections() = %v, want nil", got)
	}
	if got := ExplainFrom(context.Background()); got != nil {
		t.Fatalf("ExplainFrom(bare ctx) = %v, want nil", got)
	}
	if got := ExplainFrom(nil); got != nil { //nolint:staticcheck // nil ctx tolerance is the point
		t.Fatalf("ExplainFrom(nil) = %v, want nil", got)
	}
}

func TestExplainRoundTrip(t *testing.T) {
	e := NewExplain()
	ctx := WithExplain(context.Background(), e)
	if got := ExplainFrom(ctx); got != e {
		t.Fatalf("ExplainFrom returned %p, want %p", got, e)
	}
	e.Set("cache", map[string]any{"hit": true})
	e.Set("cache", map[string]any{"hit": false}) // replace
	e.Set("plan", "x")
	secs := e.Sections()
	if len(secs) != 2 {
		t.Fatalf("Sections() has %d entries, want 2: %v", len(secs), secs)
	}
	if m, ok := secs["cache"].(map[string]any); !ok || m["hit"] != false {
		t.Fatalf("cache section = %v, want replaced value", secs["cache"])
	}
	// Sections is a copy: mutating it must not leak back.
	secs["plan"] = "mutated"
	if e.Sections()["plan"] != "x" {
		t.Fatal("Sections() copy leaked a mutation back into the carrier")
	}
}

func TestExplainConcurrentSet(t *testing.T) {
	e := NewExplain()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				e.Set("shared", i)
				_ = e.Sections()
			}
		}(i)
	}
	wg.Wait()
	if _, ok := e.Sections()["shared"]; !ok {
		t.Fatal("concurrent Set lost the section")
	}
}
