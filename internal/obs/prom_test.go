package obs

import (
	"bufio"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// parseExposition validates the text format line by line: every
// non-comment line must be `name{labels} value` with a parseable float,
// every series name must be announced by a preceding # TYPE.
func parseExposition(t *testing.T, body string) map[string]float64 {
	t.Helper()
	typed := map[string]string{}
	vals := map[string]float64{}
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			switch parts[3] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("unknown metric type in %q", line)
			}
			typed[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line: %q", line)
		}
		key, valstr := line[:sp], line[sp+1:]
		v, err := strconv.ParseFloat(valstr, 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		name := key
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, suf)
			if trimmed != name && typed[trimmed] == "histogram" {
				base = trimmed
				break
			}
		}
		if _, ok := typed[base]; !ok {
			t.Fatalf("series %q has no # TYPE header", name)
		}
		vals[key] = v
	}
	return vals
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("app_events_total", "Total events.").Add(7)
	r.Gauge("app_depth", "Queue depth.", "node", `we"ird\`).Set(3)
	h := r.Histogram("app_lat_seconds", "Latency.", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	body := b.String()
	vals := parseExposition(t, body)

	if vals["app_events_total"] != 7 {
		t.Fatalf("counter sample = %v, want 7", vals["app_events_total"])
	}
	if vals[`app_depth{node="we\"ird\\"}`] != 3 {
		t.Fatalf("escaped gauge sample missing; body:\n%s", body)
	}

	// Histogram: cumulative, monotone buckets ending at +Inf == _count.
	buckets := []struct {
		key  string
		want float64
	}{
		{`app_lat_seconds_bucket{le="0.01"}`, 1},
		{`app_lat_seconds_bucket{le="0.1"}`, 2},
		{`app_lat_seconds_bucket{le="1"}`, 3},
		{`app_lat_seconds_bucket{le="+Inf"}`, 4},
	}
	prev := -1.0
	for _, bk := range buckets {
		got, ok := vals[bk.key]
		if !ok {
			t.Fatalf("missing bucket %s; body:\n%s", bk.key, body)
		}
		if got != bk.want {
			t.Fatalf("%s = %v, want %v", bk.key, got, bk.want)
		}
		if got < prev {
			t.Fatalf("bucket counts not monotone at %s", bk.key)
		}
		prev = got
	}
	if vals["app_lat_seconds_count"] != 4 {
		t.Fatalf("_count = %v, want 4", vals["app_lat_seconds_count"])
	}
	if s := vals["app_lat_seconds_sum"]; s < 5.5 || s > 5.6 {
		t.Fatalf("_sum = %v, want ~5.555", s)
	}

	// Families must be sorted by name.
	iEvents := strings.Index(body, "# TYPE app_events_total")
	iLat := strings.Index(body, "# TYPE app_lat_seconds")
	if iEvents < 0 || iLat < 0 || iEvents > iLat {
		t.Fatalf("families not sorted:\n%s", body)
	}
}

func TestHandlerConcatenatesRegistries(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("first_total", "h").Inc()
	b.GaugeFunc("second_value", "h", func() float64 { return 9 })

	rec := httptest.NewRecorder()
	Handler(a, b, nil).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content-type = %q", ct)
	}
	vals := parseExposition(t, rec.Body.String())
	if vals["first_total"] != 1 || vals["second_value"] != 9 {
		t.Fatalf("concatenated body wrong:\n%s", rec.Body.String())
	}
}

func TestBuildMetrics(t *testing.T) {
	r := NewRegistry()
	RegisterBuildMetrics(r)
	RegisterBuildMetrics(r) // idempotent
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	body := b.String()
	if !strings.Contains(body, "geomob_build_info{") {
		t.Fatalf("no build info gauge:\n%s", body)
	}
	vals := parseExposition(t, body)
	if vals["geomob_uptime_seconds"] < 0 {
		t.Fatal("negative uptime")
	}
	bi := Build()
	if bi.GoVersion == "" {
		t.Fatal("empty go version")
	}
}
