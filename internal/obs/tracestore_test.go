package obs

import (
	"fmt"
	"testing"
	"time"
)

func mkTrace(id string, slow, errt bool) TraceRecord {
	return TraceRecord{
		ID:       id,
		Endpoint: "/v1/stats",
		URL:      "/v1/stats?scale=national",
		Status:   200,
		Start:    time.Unix(1420070400, 0),
		TotalMs:  1.5,
		Slow:     slow,
		Error:    errt,
	}
}

func TestTraceStoreAddGetList(t *testing.T) {
	s := NewTraceStore(8)
	for i := 0; i < 5; i++ {
		s.Add(mkTrace(fmt.Sprintf("t%d", i), false, false))
	}
	if s.Len() != 5 {
		t.Fatalf("Len = %d, want 5", s.Len())
	}
	if r, ok := s.Get("t3"); !ok || r.ID != "t3" {
		t.Fatalf("Get(t3) = %v %v", r, ok)
	}
	if _, ok := s.Get("missing"); ok {
		t.Fatal("Get(missing) found a trace")
	}
	list := s.List(0)
	if len(list) != 5 || list[0].ID != "t4" || list[4].ID != "t0" {
		t.Fatalf("List not newest-first: %v", ids(list))
	}
	if got := s.List(2); len(got) != 2 || got[0].ID != "t4" || got[1].ID != "t3" {
		t.Fatalf("List(2) = %v", ids(got))
	}
}

func TestTraceStorePriorityRetention(t *testing.T) {
	s := NewTraceStore(8)
	// Two outliers early, then a flood of healthy traces.
	s.Add(mkTrace("slow", true, false))
	s.Add(mkTrace("err", false, true))
	for i := 0; i < 50; i++ {
		s.Add(mkTrace(fmt.Sprintf("ok%d", i), false, false))
	}
	if s.Len() != 8 {
		t.Fatalf("Len = %d, want capacity 8", s.Len())
	}
	if _, ok := s.Get("slow"); !ok {
		t.Fatal("slow trace evicted by healthy churn")
	}
	if _, ok := s.Get("err"); !ok {
		t.Fatal("error trace evicted by healthy churn")
	}
	// Newest normals survive, oldest were evicted.
	if _, ok := s.Get("ok49"); !ok {
		t.Fatal("newest normal trace missing")
	}
	if _, ok := s.Get("ok0"); ok {
		t.Fatal("oldest normal trace should have been evicted")
	}
}

func TestTraceStorePriorityStormBounded(t *testing.T) {
	s := NewTraceStore(8)
	for i := 0; i < 50; i++ {
		s.Add(mkTrace(fmt.Sprintf("e%d", i), false, true))
	}
	if s.Len() != 8 {
		t.Fatalf("Len = %d after error storm, want 8", s.Len())
	}
	// Some normal headroom must remain usable after the storm.
	s.Add(mkTrace("fresh", false, false))
	if _, ok := s.Get("fresh"); !ok {
		t.Fatal("normal trace could not enter after an error storm")
	}
	if s.Len() != 8 {
		t.Fatalf("Len = %d, want 8", s.Len())
	}
}

func TestTraceStoreIDCollision(t *testing.T) {
	s := NewTraceStore(8)
	first := mkTrace("dup", false, false)
	first.Status = 200
	second := mkTrace("dup", false, false)
	second.Status = 204
	s.Add(first)
	s.Add(second)
	if r, ok := s.Get("dup"); !ok || r.Status != 204 {
		t.Fatalf("Get(dup) = %v %v, want newest record", r, ok)
	}
}

func TestTraceStoreNilAndEmptyID(t *testing.T) {
	var s *TraceStore
	s.Add(mkTrace("x", false, false)) // must not panic
	if s.Len() != 0 || s.List(0) != nil {
		t.Fatal("nil store should be inert")
	}
	if _, ok := s.Get("x"); ok {
		t.Fatal("nil store returned a trace")
	}
	real := NewTraceStore(4)
	real.Add(TraceRecord{ID: ""})
	if real.Len() != 0 {
		t.Fatal("empty-ID trace was retained")
	}
}

func ids(recs []TraceRecord) []string {
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = r.ID
	}
	return out
}
