package obs

import (
	"testing"
)

// BenchmarkObsOverhead prices the per-event cost instrumentation adds
// to hot paths: a counter add plus a histogram observation. The report
// must stay 0 allocs/op — the ingest path's 0-alloc gate depends on it.
func BenchmarkObsOverhead(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_events_total", "h")
	h := r.Histogram("bench_lat_seconds", "h", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(1)
		h.Observe(0.0042)
	}
	if c.Value() != int64(b.N) {
		b.Fatal("count drift")
	}
}

func BenchmarkObsOverheadParallel(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("benchp_events_total", "h")
	h := r.Histogram("benchp_lat_seconds", "h", nil)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Add(1)
			h.Observe(0.0042)
		}
	})
}
