package obs

import (
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// BuildInfo is the process identity surfaced in /healthz and as the
// geomob_build_info gauge.
type BuildInfo struct {
	Version   string `json:"version"`
	Revision  string `json:"revision"`
	GoVersion string `json:"go"`
	Modified  bool   `json:"modified,omitempty"`
}

var (
	buildOnce sync.Once
	buildInfo BuildInfo
	procStart = time.Now()
)

// Build reads module/VCS identity once via debug.ReadBuildInfo.
func Build() BuildInfo {
	buildOnce.Do(func() {
		buildInfo = BuildInfo{Version: "unknown", Revision: "unknown", GoVersion: runtime.Version()}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		if bi.Main.Version != "" {
			buildInfo.Version = bi.Main.Version
		}
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				buildInfo.Revision = s.Value
			case "vcs.modified":
				buildInfo.Modified = s.Value == "true"
			}
		}
	})
	return buildInfo
}

// Uptime is the time since process start (more precisely, since the obs
// package was initialised — first in any main that imports it).
func Uptime() time.Duration { return time.Since(procStart) }

// RegisterBuildMetrics publishes geomob_build_info{version,revision,
// goversion} = 1 and a live geomob_uptime_seconds gauge on r.
// Idempotent; mobserve calls it once at startup.
func RegisterBuildMetrics(r *Registry) {
	b := Build()
	r.Gauge("geomob_build_info", "Build identity; value is always 1.",
		"version", b.Version, "revision", b.Revision, "goversion", b.GoVersion).Set(1)
	r.GaugeFunc("geomob_uptime_seconds", "Seconds since process start.",
		func() float64 { return Uptime().Seconds() })
}
