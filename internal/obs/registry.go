// Package obs is the dependency-free observability layer every runtime
// component shares (DESIGN.md §12): a metrics registry of atomic
// counters, gauges and fixed-bucket latency histograms with Prometheus
// text exposition, plus a lightweight request-scoped span tracer whose
// IDs propagate across coordinator→shard HTTP hops.
//
// Two registries exist in practice. Def is the process-global registry
// that package-level instrumentation (ingest counters, WAL fsync
// timings, lane delivery counters, …) registers on at init; its values
// are cumulative over the process, exactly like standard Prometheus
// client counters. Service layers may additionally build private
// registries of GaugeFuncs over per-instance accessors — mobserve's
// /healthz reads one such registry in a single Snapshot pass so its
// numbers are mutually coherent.
//
// Hot-path cost: a counter add is one atomic add; a histogram
// observation is a branch-free bucket search plus three atomic
// operations; neither allocates. The binary-batch ingest path therefore
// stays 0 allocs/op per record with instrumentation on (gated by
// mobbench -compare against BenchmarkIngestBatch).
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Metric family types, as emitted in Prometheus # TYPE headers.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// Counter is a monotonically increasing integer metric. The zero value
// is usable, but counters obtained from a Registry render in /metrics.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are a programming error; they would break
// Prometheus rate() — callers never pass them).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable float metric.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// SetInt stores an integer value.
func (g *Gauge) SetInt(v int64) { g.Set(float64(v)) }

// Add adjusts the gauge by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// series is one labelled instance inside a family.
type series struct {
	labels string // rendered `k="v",…` (no braces), "" for unlabelled
	c      *Counter
	g      *Gauge
	gf     func() float64
	h      *Histogram
}

// family groups every labelled series of one metric name under its type
// and help text.
type family struct {
	name, help, typ string
	mu              sync.Mutex
	series          []*series
	byLabel         map[string]*series
}

// Registry holds metric families. All methods are safe for concurrent
// use; metric reads (counter adds, histogram observations) never take
// the registry lock.
type Registry struct {
	mu   sync.RWMutex
	fams map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry { return &Registry{fams: map[string]*family{}} }

// Def is the process-global registry package-level instrumentation
// registers on.
var Def = NewRegistry()

// renderLabels turns k,v pairs into the canonical `k="v",…` form. Label
// values are escaped per the exposition format.
func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list %q", labels))
	}
	var b strings.Builder
	for i := 0; i < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[i+1]))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// familyFor returns (creating if needed) the family for name, checking
// the type stays consistent — one name registered as both counter and
// gauge is a programming error the process should not limp past.
func (r *Registry) familyFor(name, help, typ string) *family {
	r.mu.RLock()
	f := r.fams[name]
	r.mu.RUnlock()
	if f == nil {
		r.mu.Lock()
		f = r.fams[name]
		if f == nil {
			f = &family{name: name, help: help, typ: typ, byLabel: map[string]*series{}}
			r.fams[name] = f
		}
		r.mu.Unlock()
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %s registered as %s and %s", name, f.typ, typ))
	}
	return f
}

// Counter returns the counter for name (+ optional k,v label pairs),
// creating it on first use. Re-registration returns the same counter,
// so package-level vars and per-instance components can share series.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	f := r.familyFor(name, help, typeCounter)
	ls := renderLabels(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.byLabel[ls]; ok {
		return s.c
	}
	s := &series{labels: ls, c: &Counter{}}
	f.series = append(f.series, s)
	f.byLabel[ls] = s
	return s.c
}

// Gauge returns the gauge for name (+ optional label pairs), creating
// it on first use.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	f := r.familyFor(name, help, typeGauge)
	ls := renderLabels(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.byLabel[ls]; ok {
		return s.g
	}
	s := &series{labels: ls, g: &Gauge{}}
	f.series = append(f.series, s)
	f.byLabel[ls] = s
	return s.g
}

// GaugeFunc registers a gauge whose value is computed by fn at read
// time — the bridge from existing per-instance accessors (store counts,
// queue depths) into the registry without double bookkeeping.
// Re-registering the same name+labels replaces fn (a restarted
// component re-binds its accessor).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	f := r.familyFor(name, help, typeGauge)
	ls := renderLabels(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.byLabel[ls]; ok {
		s.gf = fn
		s.g = nil
		return
	}
	s := &series{labels: ls, gf: fn}
	f.series = append(f.series, s)
	f.byLabel[ls] = s
}

// Histogram returns the histogram for name (+ optional label pairs),
// creating it with the given upper bounds on first use (nil selects
// LatencyBuckets). Bounds must be ascending; a +Inf overflow bucket is
// implicit.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	f := r.familyFor(name, help, typeHistogram)
	ls := renderLabels(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.byLabel[ls]; ok {
		return s.h
	}
	s := &series{labels: ls, h: newHistogram(bounds)}
	f.series = append(f.series, s)
	f.byLabel[ls] = s
	return s.h
}

// Snapshot is one coherent pass over a registry: every series read
// once, keyed by name plus rendered labels (histograms contribute
// name_count and name_sum). Callers that assemble multi-field reports
// (mobserve's /healthz) read one Snapshot instead of re-reading each
// accessor at a different instant.
type Snapshot map[string]float64

// Value returns the snapshot value for the full series key ("" labels →
// bare name; labelled → name{k="v"}). Missing keys read as 0.
func (s Snapshot) Value(key string) float64 { return s[key] }

// Int returns the snapshot value truncated to int64.
func (s Snapshot) Int(key string) int64 { return int64(s[key]) }

// Snapshot reads every series in one pass.
func (r *Registry) Snapshot() Snapshot {
	out := Snapshot{}
	r.mu.RLock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	for _, f := range fams {
		f.mu.Lock()
		series := append([]*series(nil), f.series...)
		f.mu.Unlock()
		for _, s := range series {
			key := f.name
			if s.labels != "" {
				key = f.name + "{" + s.labels + "}"
			}
			switch {
			case s.c != nil:
				out[key] = float64(s.c.Value())
			case s.gf != nil:
				out[key] = s.gf()
			case s.g != nil:
				out[key] = s.g.Value()
			case s.h != nil:
				n, sum := s.h.CountSum()
				out[key+"_count"] = float64(n)
				out[key+"_sum"] = sum
			}
		}
	}
	return out
}

// sortedFamilies returns the families in name order (exposition and
// tests want deterministic output).
func (r *Registry) sortedFamilies() []*family {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}
