package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"geomob/internal/tweet"
)

// testFrame builds a small valid binary batch frame whose rows are
// recognisable by base id.
func testFrame(t *testing.T, base int64, rows int) []byte {
	t.Helper()
	tweets := make([]tweet.Tweet, rows)
	for i := range tweets {
		tweets[i] = tweet.Tweet{
			ID: base + int64(i), UserID: base, TS: 1378000000000 + base*1000 + int64(i),
			Lat: -33.8, Lon: 151.2,
		}
	}
	frame, err := tweet.AppendFrame(nil, tweet.BatchOf(tweets))
	if err != nil {
		t.Fatal(err)
	}
	return frame
}

func pendingSeqs(t *testing.T, s *Spool, node int) []uint64 {
	t.Helper()
	recs, err := s.PendingForNode(node, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	seqs := make([]uint64, len(recs))
	for i, r := range recs {
		seqs[i] = r.Seq
	}
	return seqs
}

func TestSpoolRoundtrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	sender := s.SenderID()
	if sender == "" {
		t.Fatal("empty sender id")
	}
	var seqs []uint64
	for i := 0; i < 3; i++ {
		seq, err := s.Append(i, 0b11, testFrame(t, int64(i)*100, 4))
		if err != nil {
			t.Fatal(err)
		}
		seqs = append(seqs, seq)
	}
	if seqs[0] >= seqs[1] || seqs[1] >= seqs[2] {
		t.Fatalf("sequence numbers not monotone: %v", seqs)
	}
	if got := s.PendingRowsNode(0); got != 12 {
		t.Fatalf("node 0 pending rows = %d, want 12", got)
	}
	if got := s.PendingRowsSlotNode(1, 2); got != 4 {
		t.Fatalf("node 1 slot 2 pending rows = %d, want 4", got)
	}

	// Ack node 0 for everything; node 1 stays owed.
	for _, seq := range seqs {
		if err := s.Ack(seq, 0); err != nil {
			t.Fatal(err)
		}
	}
	if got := pendingSeqs(t, s, 0); len(got) != 0 {
		t.Fatalf("node 0 still pending %v after acks", got)
	}
	if got := pendingSeqs(t, s, 1); len(got) != 3 {
		t.Fatalf("node 1 pending %v, want all three", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: node 1's debt and the sender identity must survive.
	s2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if s2.SenderID() != sender {
		t.Fatalf("sender changed across reopen: %q vs %q", s2.SenderID(), sender)
	}
	recs, err := s2.PendingForNode(1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("recovered %d pending records for node 1, want 3", len(recs))
	}
	for i, r := range recs {
		if r.Seq != seqs[i] || r.Slot != i || r.Rows != 4 {
			t.Fatalf("recovered record %d = %+v, want seq %d slot %d rows 4", i, r, seqs[i], i)
		}
		if FrameRows(r.Frame) != 4 {
			t.Fatalf("recovered frame %d has %d rows", i, FrameRows(r.Frame))
		}
	}
	for _, seq := range seqs {
		if err := s2.Ack(seq, 1); err != nil {
			t.Fatal(err)
		}
	}
	if st := s2.Stats(); st.PendingRecords != 0 {
		t.Fatalf("pending records = %d after full ack", st.PendingRecords)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	// A fully-drained spool must never reuse sequence numbers: reused
	// seqs would be silently deduplicated by shards.
	s3, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := s3.Append(0, 0b1, testFrame(t, 900, 2))
	if err != nil {
		t.Fatal(err)
	}
	if seq <= seqs[2] {
		t.Fatalf("seq %d reused after drain (max issued was %d)", seq, seqs[2])
	}
	s3.Close()
}

func TestSpoolPendingWindow(t *testing.T) {
	s, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var seqs []uint64
	for i := 0; i < 6; i++ {
		seq, err := s.Append(0, 0b1, testFrame(t, int64(i)*10, 1))
		if err != nil {
			t.Fatal(err)
		}
		seqs = append(seqs, seq)
	}
	recs, err := s.PendingForNode(0, seqs[1], 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[0].Seq != seqs[2] || recs[2].Seq != seqs[4] {
		t.Fatalf("window after=%d max=3 returned %+v", seqs[1], recs)
	}
}

// TestSpoolSegmentReclaim: tiny segments roll, and fully-acked
// segments are unlinked — except the highest, which carries the
// sequence floor.
func TestSpoolSegmentReclaim(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	var seqs []uint64
	for i := 0; i < 12; i++ {
		seq, err := s.Append(0, 0b1, testFrame(t, int64(i)*10, 3))
		if err != nil {
			t.Fatal(err)
		}
		seqs = append(seqs, seq)
	}
	before := countSegments(t, dir)
	if before < 3 {
		t.Fatalf("expected multiple segments from 256-byte roll threshold, got %d", before)
	}
	for _, seq := range seqs {
		if err := s.Ack(seq, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	after := countSegments(t, dir)
	if after >= before {
		t.Fatalf("no segments reclaimed: %d before, %d after full ack", before, after)
	}
	// Reopen after drain: nothing pending, sequencing continues upward.
	s2, err := Open(Options{Dir: dir, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if st := s2.Stats(); st.PendingRecords != 0 || st.Corrupt {
		t.Fatalf("reopened stats = %+v, want clean and empty", st)
	}
	seq, err := s2.Append(0, 0b1, testFrame(t, 999, 1))
	if err != nil {
		t.Fatal(err)
	}
	if seq <= seqs[len(seqs)-1] {
		t.Fatalf("seq %d not above previous max %d", seq, seqs[len(seqs)-1])
	}
}

func countSegments(t *testing.T, dir string) int {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "spool-*.wal"))
	if err != nil {
		t.Fatal(err)
	}
	return len(matches)
}

// TestSpoolConcurrentAppend exercises the group-commit path: parallel
// appenders must each get a unique sequence number and every record
// must survive a reopen.
func TestSpoolConcurrentAppend(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 16
	frames := make([][][]byte, workers)
	for w := 0; w < workers; w++ {
		frames[w] = make([][]byte, per)
		for i := 0; i < per; i++ {
			frames[w][i] = testFrame(t, int64(w*1000+i), 1)
		}
	}
	var mu sync.Mutex
	seen := map[uint64]bool{}
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				seq, err := s.Append(w%8, 0b1, frames[w][i])
				if err != nil {
					errs <- err
					return
				}
				mu.Lock()
				if seen[seq] {
					errs <- fmt.Errorf("duplicate seq %d", seq)
				}
				seen[seq] = true
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(Options{Dir: dir, SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := len(pendingSeqs(t, s2, 0)); got != workers*per {
		t.Fatalf("recovered %d records, want %d", got, workers*per)
	}
}

func TestFrameRows(t *testing.T) {
	if got := FrameRows(testFrame(t, 0, 7)); got != 7 {
		t.Fatalf("FrameRows = %d, want 7", got)
	}
	if got := FrameRows(nil); got != 0 {
		t.Fatalf("FrameRows(nil) = %d, want 0", got)
	}
}

func TestSpoolRejectsBadArgs(t *testing.T) {
	s, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Append(0, 0, testFrame(t, 0, 1)); err == nil {
		t.Error("empty destination mask accepted")
	}
	if _, err := s.Append(300, 1, testFrame(t, 0, 1)); err == nil {
		t.Error("out-of-range slot accepted")
	}
	if err := s.Ack(1, 64); err == nil {
		t.Error("out-of-range node accepted")
	}
	if _, err := Open(Options{}); err == nil {
		t.Error("empty dir accepted")
	}
}

func TestSpoolAckNode(t *testing.T) {
	s, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 4; i++ {
		if _, err := s.Append(i, 0b11, testFrame(t, int64(i), 2)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.AckNode(1); err != nil {
		t.Fatal(err)
	}
	if got := s.PendingRowsNode(1); got != 0 {
		t.Fatalf("node 1 pending rows = %d after AckNode", got)
	}
	if got := len(pendingSeqs(t, s, 0)); got != 4 {
		t.Fatalf("node 0 lost records to AckNode(1): %d pending, want 4", got)
	}
}

// TestSpoolDirLayout pins the on-disk names other tooling greps for.
func TestSpoolDirLayout(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(0, 1, testFrame(t, 1, 1)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := os.Stat(filepath.Join(dir, "SENDER")); err != nil {
		t.Errorf("SENDER file missing: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "spool-00000000.wal")); err != nil {
		t.Errorf("first segment missing: %v", err)
	}
}
