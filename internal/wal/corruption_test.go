package wal

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

// corruptionFixture builds a spool with nRecords data records in one
// segment, closes it, and returns the segment path plus the byte
// boundaries [start, end) of each record within the file.
func corruptionFixture(t *testing.T, dir string, nRecords int) (segPath string, seqs []uint64, bounds [][2]int64) {
	t.Helper()
	s, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nRecords; i++ {
		seq, err := s.Append(i%8, 0b1, testFrame(t, int64(i)*100, 2+i%3))
		if err != nil {
			t.Fatal(err)
		}
		seqs = append(seqs, seq)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segPath = filepath.Join(dir, "spool-00000000.wal")
	raw, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	off := int64(segHeader)
	for off < int64(len(raw)) {
		plen := int64(binary.LittleEndian.Uint32(raw[off : off+4]))
		end := off + recHeader + plen
		bounds = append(bounds, [2]int64{off, end})
		off = end
	}
	if len(bounds) != nRecords {
		t.Fatalf("fixture parsed %d records, want %d", len(bounds), nRecords)
	}
	return segPath, seqs, bounds
}

// expectPrefix reports how many leading records survive damage at byte
// offset p: every record whose bytes all precede p.
func expectPrefix(bounds [][2]int64, p int64) int {
	n := 0
	for _, b := range bounds {
		if b[1] <= p {
			n++
		} else {
			break
		}
	}
	return n
}

// reopenScratch copies the damaged segment (and SENDER) into a fresh
// dir and opens a spool over it.
func reopenScratch(t *testing.T, srcDir string, seg []byte) (*Spool, error) {
	t.Helper()
	dir := t.TempDir()
	sender, err := os.ReadFile(filepath.Join(srcDir, "SENDER"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "SENDER"), sender, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "spool-00000000.wal"), seg, 0o644); err != nil {
		t.Fatal(err)
	}
	return Open(Options{Dir: dir})
}

// TestSpoolCorruptionMatrix flips every byte of a spool segment in
// turn: recovery must keep exactly the records preceding the damage,
// must flag the spool corrupt, and must never panic — the same
// contract the PR 6 store corruption matrix pins for segments.
func TestSpoolCorruptionMatrix(t *testing.T) {
	srcDir := t.TempDir()
	segPath, seqs, bounds := corruptionFixture(t, srcDir, 8)
	raw, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	for p := int64(0); p < int64(len(raw)); p++ {
		damaged := append([]byte(nil), raw...)
		damaged[p] ^= 0xA5
		s, err := reopenScratch(t, srcDir, damaged)
		if err != nil {
			t.Fatalf("flip at byte %d: Open failed: %v", p, err)
		}
		want := expectPrefix(bounds, p)
		got := pendingSeqs(t, s, 0)
		if len(got) != want {
			s.Close()
			t.Fatalf("flip at byte %d: recovered %d records (%v), want prefix of %d", p, len(got), got, want)
		}
		for i := 0; i < want; i++ {
			if got[i] != seqs[i] {
				s.Close()
				t.Fatalf("flip at byte %d: recovered seq %d at position %d, want %d", p, got[i], i, seqs[i])
			}
		}
		if st := s.Stats(); !st.Corrupt {
			s.Close()
			t.Fatalf("flip at byte %d: spool not flagged corrupt", p)
		}
		// The damaged spool must keep working: new appends get fresh
		// sequence numbers far above anything possibly issued before.
		// (Sampled — the append itself is the expensive part.)
		if p%13 == 0 {
			seq, err := s.Append(0, 0b1, testFrame(t, 7777, 1))
			if err != nil {
				s.Close()
				t.Fatalf("flip at byte %d: append after recovery failed: %v", p, err)
			}
			if seq <= seqs[len(seqs)-1] {
				s.Close()
				t.Fatalf("flip at byte %d: post-recovery seq %d not above issued max %d", p, seq, seqs[len(seqs)-1])
			}
		}
		s.Close()
	}
}

// TestSpoolTruncationMatrix truncates the segment at every length:
// recovery keeps the wholly-contained records and never panics. A torn
// final record — the normal kill -9 shape — flags the spool corrupt
// but loses nothing that was acknowledged durable before the cut.
func TestSpoolTruncationMatrix(t *testing.T) {
	srcDir := t.TempDir()
	segPath, seqs, bounds := corruptionFixture(t, srcDir, 8)
	raw, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	for cut := int64(0); cut < int64(len(raw)); cut++ {
		s, err := reopenScratch(t, srcDir, raw[:cut])
		if err != nil {
			t.Fatalf("truncate at %d: Open failed: %v", cut, err)
		}
		want := expectPrefix(bounds, cut)
		got := pendingSeqs(t, s, 0)
		if len(got) != want {
			s.Close()
			t.Fatalf("truncate at %d: recovered %d records, want %d", cut, len(got), want)
		}
		for i := 0; i < want; i++ {
			if got[i] != seqs[i] {
				s.Close()
				t.Fatalf("truncate at %d: recovered seq %d, want %d", cut, got[i], seqs[i])
			}
		}
		s.Close()
	}
}

// TestSpoolAckCorruption: damaging an ack record re-pends the acked
// data — redelivery is safe (shards deduplicate), losing data is not.
func TestSpoolAckCorruption(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := s.Append(3, 0b1, testFrame(t, 5, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Ack(seq, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segPath := filepath.Join(dir, "spool-00000000.wal")
	raw, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	// The ack is the final record; flip a byte inside its payload.
	damaged := append([]byte(nil), raw...)
	damaged[len(damaged)-1] ^= 0xFF
	if err := os.WriteFile(segPath, damaged, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got := pendingSeqs(t, s2, 0)
	if len(got) != 1 || got[0] != seq {
		t.Fatalf("lost-ack recovery pending = %v, want [%d]", got, seq)
	}
}
