// Package wal implements the coordinator's segmented write-ahead
// ingest spool (DESIGN.md §10). The cluster acknowledges /v1/ingest
// only after the batch frame is durably appended here; per-shard
// delivery lanes then replay spooled frames with retry, and a record
// is dropped once every replica destination has acknowledged it.
//
// A spool is a directory of append-only segment files plus a SENDER
// file holding the coordinator's stable sender identity. Each data
// record wraps one PR 6 binary batch frame (the exact bytes shipped to
// shards) together with its destination slot, a bitmask of replica
// node indexes still owed the frame, and a monotone sequence number.
// Shards deduplicate on (sender, seq), which makes replay after a
// crash or a redelivery after an ambiguous failure idempotent.
//
// Durability model: Append returns only after the record bytes have
// reached the file and fsync has covered them. Concurrent appenders
// share fsyncs (group commit): whichever appender syncs first covers
// everything written before it, and the rest return without issuing
// their own. Ack records are appended without an immediate sync — a
// lost ack merely causes a redelivery that the shard deduplicates.
//
// Recovery scans segments in order and keeps every record up to the
// first corruption (CRC mismatch, truncated tail, bad header);
// everything after it, including later segments, is abandoned — the
// intact-prefix contract the corruption tests pin. Recovery never
// panics on arbitrary byte damage. When a corruption is detected the
// next sequence number is additionally bumped by a large safety margin
// so seqs that may have been issued beyond the damaged point are never
// reused with different payloads.
package wal

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"geomob/internal/obs"
)

// Spool metrics (DESIGN.md §12). Appends time the full durability path
// including the group-commit fsync; fsyncs count Sync calls actually
// issued, so appends/fsyncs is the group-commit sharing ratio. Ack
// counters cover delivery acknowledgements only — boot replay restores
// pending state without touching them.
var (
	mWalAppends     = obs.Def.Counter("geomob_wal_appends_total", "Batch frames durably appended to the ingest spool.")
	mWalAppendBytes = obs.Def.Counter("geomob_wal_append_bytes_total", "Payload bytes durably appended to the ingest spool.")
	mWalAppendSecs  = obs.Def.Histogram("geomob_wal_append_seconds", "Latency of one durable spool append including fsync.", nil)
	mWalFsyncs      = obs.Def.Counter("geomob_wal_fsyncs_total", "fsync calls issued by the spool (group commit shares them).")
	mWalAcks        = obs.Def.Counter("geomob_wal_acks_total", "Per-node delivery acknowledgements recorded in the spool.")
	mWalReplayed    = obs.Def.Counter("geomob_wal_replayed_frames_total", "Still-pending frames restored from spool segments at boot.")
)

const (
	segMagic   = 0x4c574d47 // "GMWL" little-endian
	segVersion = 1
	// magic u32 | version u16 | reserved u16 | floorSeq u64 | crc32 of
	// the preceding 16 bytes — any damaged header byte reads as
	// corruption, keeping the intact-prefix rule uniform.
	segHeader = 20

	recHeader  = 8  // payloadLen u32 | crc32(payload) u32
	dataHeader = 24 // kind u8 | slot u8 | reserved u16 | rows u32 | seq u64 | destMask u64

	kindData = 1
	kindAck  = 2 // kind u8 | reserved u8+u16 | node u32 | seq u64 (16 bytes)
	ackLen   = 16

	// maxPayloadBytes rejects absurd lengths during recovery so a
	// corrupted length field cannot trigger a giant allocation.
	maxPayloadBytes = 256 << 20

	// seqSkipOnCorruption is added to the recovered sequence floor when
	// a damaged segment is found: records beyond the corruption point
	// may have carried seqs we can no longer read, and reusing a seq
	// with a different payload would be silently deduplicated by shards.
	seqSkipOnCorruption = 1 << 20

	// DefaultSegmentBytes rolls the active segment once it crosses
	// 64 MiB, bounding both the recovery scan unit and how long a
	// fully-acked range can pin disk space.
	DefaultSegmentBytes = 64 << 20
)

// Options configures Open.
type Options struct {
	// Dir is the spool directory; created if absent.
	Dir string
	// SegmentBytes overrides the roll threshold (DefaultSegmentBytes
	// when <= 0). Tests use tiny segments to exercise rolling.
	SegmentBytes int64
}

// Record is one pending spooled frame, returned by PendingForNode with
// the frame bytes loaded back from disk.
type Record struct {
	Seq   uint64
	Slot  int
	Dests uint64 // bitmask of node indexes still owed this frame
	Rows  int
	Frame []byte
}

// Stats summarises spool state for health reporting.
type Stats struct {
	PendingRecords int
	PendingRows    int64
	Segments       int
	NextSeq        uint64
	Corrupt        bool // recovery abandoned a damaged suffix
}

type prec struct {
	seq  uint64
	slot uint8
	mask uint64
	rows int32
	seg  int
	off  int64 // record start (length field) within its segment
	n    int32 // total record bytes including the 8-byte header
}

// Spool is a durable ingest spool. All methods are safe for concurrent
// use.
type Spool struct {
	dir      string
	sender   string
	segBytes int64

	mu         sync.Mutex
	f          *os.File // active segment, nil until first append
	fIdx       int
	fSize      int64
	maxSeg     int // highest segment index present (never deleted)
	nextSeq    uint64
	nextSeg    int
	index      map[uint64]*prec
	segPending map[int]int           // unacked data records per segment
	rowsNode   map[int]int64         // pending rows per destination node
	rowsSN     map[int]map[int]int64 // node -> slot -> pending rows
	corrupt    bool

	syncMu  sync.Mutex
	syncIdx int
	syncOff int64
}

// Open opens or creates the spool at opts.Dir, recovering any pending
// records from existing segments.
func Open(opts Options) (*Spool, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("wal: empty spool directory")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create spool dir: %w", err)
	}
	s := &Spool{
		dir:        opts.Dir,
		segBytes:   opts.SegmentBytes,
		fIdx:       -1,
		maxSeg:     -1,
		nextSeq:    1,
		index:      map[uint64]*prec{},
		segPending: map[int]int{},
		rowsNode:   map[int]int64{},
		rowsSN:     map[int]map[int]int64{},
		syncIdx:    -1,
	}
	if s.segBytes <= 0 {
		s.segBytes = DefaultSegmentBytes
	}
	if err := s.loadSender(); err != nil {
		return nil, err
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

// SenderID returns the spool's stable sender identity. Shards key
// their delivery high-water marks on it, so it persists across
// coordinator restarts — replayed frames keep deduplicating.
func (s *Spool) SenderID() string { return s.sender }

func (s *Spool) loadSender() error {
	path := filepath.Join(s.dir, "SENDER")
	if raw, err := os.ReadFile(path); err == nil {
		id := strings.TrimSpace(string(raw))
		if id == "" {
			return fmt.Errorf("wal: empty SENDER file %s", path)
		}
		s.sender = id
		return nil
	}
	var buf [16]byte
	if _, err := rand.Read(buf[:]); err != nil {
		return fmt.Errorf("wal: generate sender id: %w", err)
	}
	s.sender = hex.EncodeToString(buf[:])
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(s.sender+"\n"), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return nil
}

func segName(idx int) string { return fmt.Sprintf("spool-%08d.wal", idx) }

func (s *Spool) segPath(idx int) string { return filepath.Join(s.dir, segName(idx)) }

func (s *Spool) recover() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return err
	}
	var segs []int
	for _, e := range entries {
		var idx int
		if n, _ := fmt.Sscanf(e.Name(), "spool-%d.wal", &idx); n == 1 {
			segs = append(segs, idx)
		}
	}
	sort.Ints(segs)
	var floor uint64
	for _, idx := range segs {
		if idx > s.maxSeg {
			s.maxSeg = idx
		}
		if idx >= s.nextSeg {
			s.nextSeg = idx + 1
		}
		if s.corrupt {
			// A damaged earlier segment already ended the intact
			// prefix; later segments are abandoned, not parsed.
			continue
		}
		segFloor, clean := s.scanSegment(idx)
		if segFloor > floor {
			floor = segFloor
		}
		if !clean {
			s.corrupt = true
		}
	}
	if floor >= s.nextSeq {
		s.nextSeq = floor
	}
	if s.corrupt {
		s.nextSeq += seqSkipOnCorruption
	}
	// Drop cleanly fully-acked segments, keeping the highest so the
	// sequence floor in its header survives a fully-drained spool.
	if !s.corrupt {
		for _, idx := range segs {
			if s.segPending[idx] == 0 && idx != s.maxSeg {
				os.Remove(s.segPath(idx))
				delete(s.segPending, idx)
			}
		}
	}
	return nil
}

// scanSegment indexes one segment's records, returning the smallest
// sequence number the spool may issue next (one past everything seen,
// and at least the segment's header floor) and whether the whole
// segment parsed cleanly.
func (s *Spool) scanSegment(idx int) (floor uint64, clean bool) {
	raw, err := os.ReadFile(s.segPath(idx))
	if err != nil {
		return 0, false
	}
	if len(raw) < segHeader {
		return 0, false
	}
	le := binary.LittleEndian
	if le.Uint32(raw[0:4]) != segMagic || le.Uint16(raw[4:6]) != segVersion {
		return 0, false
	}
	if crc32.ChecksumIEEE(raw[0:16]) != le.Uint32(raw[16:20]) {
		return 0, false
	}
	floor = le.Uint64(raw[8:16])
	off := int64(segHeader)
	for int(off)+recHeader <= len(raw) {
		plen := int64(le.Uint32(raw[off : off+4]))
		crc := le.Uint32(raw[off+4 : off+8])
		if plen <= 0 || plen > maxPayloadBytes || off+recHeader+plen > int64(len(raw)) {
			return floor, false
		}
		payload := raw[off+recHeader : off+recHeader+plen]
		if crc32.ChecksumIEEE(payload) != crc {
			return floor, false
		}
		switch payload[0] {
		case kindData:
			if plen < dataHeader {
				return floor, false
			}
			seq := le.Uint64(payload[8:16])
			mask := le.Uint64(payload[16:24])
			rec := &prec{
				seq:  seq,
				slot: payload[1],
				mask: mask,
				rows: int32(le.Uint32(payload[4:8])),
				seg:  idx,
				off:  off,
				n:    int32(recHeader + plen),
			}
			if seq >= floor {
				floor = seq + 1
			}
			if mask != 0 {
				s.index[seq] = rec
				s.segPending[idx]++
				s.addPending(rec, mask)
				mWalReplayed.Inc()
			}
		case kindAck:
			if plen != ackLen {
				return floor, false
			}
			node := int(le.Uint32(payload[4:8]))
			seq := le.Uint64(payload[8:16])
			s.clearPendingLocked(seq, node)
		default:
			return floor, false
		}
		off += recHeader + plen
	}
	// Trailing bytes shorter than a record header are a torn final
	// write: the prefix stands but the segment is not clean.
	return floor, int(off) == len(raw)
}

func (s *Spool) addPending(rec *prec, mask uint64) {
	for node := 0; mask != 0; node++ {
		if mask&1 != 0 {
			s.rowsNode[node] += int64(rec.rows)
			sn := s.rowsSN[node]
			if sn == nil {
				sn = map[int]int64{}
				s.rowsSN[node] = sn
			}
			sn[int(rec.slot)] += int64(rec.rows)
		}
		mask >>= 1
	}
}

// clearPendingLocked applies one ack to the in-memory index. Caller
// holds mu (or is single-threaded recovery).
func (s *Spool) clearPendingLocked(seq uint64, node int) (cleared bool) {
	rec := s.index[seq]
	if rec == nil || rec.mask&(1<<uint(node)) == 0 {
		return false
	}
	rec.mask &^= 1 << uint(node)
	s.rowsNode[node] -= int64(rec.rows)
	if sn := s.rowsSN[node]; sn != nil {
		sn[int(rec.slot)] -= int64(rec.rows)
		if sn[int(rec.slot)] <= 0 {
			delete(sn, int(rec.slot))
		}
	}
	if rec.mask == 0 {
		delete(s.index, seq)
		s.segPending[rec.seg]--
		if s.segPending[rec.seg] == 0 && rec.seg != s.fIdx && rec.seg != s.maxSeg {
			os.Remove(s.segPath(rec.seg))
			delete(s.segPending, rec.seg)
		}
	}
	return true
}

func (s *Spool) ensureActiveLocked() error {
	if s.f != nil && s.fSize < s.segBytes {
		return nil
	}
	if s.f != nil {
		// Roll: the old segment must be fully durable before it stops
		// receiving group-commit syncs.
		if err := s.f.Sync(); err != nil {
			return err
		}
		s.f.Close()
		s.f = nil
	}
	idx := s.nextSeg
	f, err := os.OpenFile(s.segPath(idx), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	var hdr [segHeader]byte
	le := binary.LittleEndian
	le.PutUint32(hdr[0:4], segMagic)
	le.PutUint16(hdr[4:6], segVersion)
	le.PutUint64(hdr[8:16], s.nextSeq)
	le.PutUint32(hdr[16:20], crc32.ChecksumIEEE(hdr[0:16]))
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	s.f, s.fIdx, s.fSize = f, idx, segHeader
	s.nextSeg = idx + 1
	if idx > s.maxSeg {
		s.maxSeg = idx
	}
	return nil
}

// appendRecordLocked writes one CRC-framed record to the active
// segment. Caller holds mu.
func (s *Spool) appendRecordLocked(payload []byte) error {
	if err := s.ensureActiveLocked(); err != nil {
		return err
	}
	buf := make([]byte, recHeader+len(payload))
	le := binary.LittleEndian
	le.PutUint32(buf[0:4], uint32(len(payload)))
	le.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[recHeader:], payload)
	if _, err := s.f.Write(buf); err != nil {
		return err
	}
	s.fSize += int64(len(buf))
	return nil
}

// FrameRows peeks the record count out of a PR 6 binary batch frame
// without decoding it (count lives at bytes [12:16] of the frame).
func FrameRows(frame []byte) int {
	if len(frame) < 16 {
		return 0
	}
	return int(binary.LittleEndian.Uint32(frame[12:16]))
}

// Append durably spools one batch frame bound for the replica nodes in
// destMask and returns its sequence number. On return the record has
// been fsynced — this is the cluster's ingest acknowledgement point.
func (s *Spool) Append(slot int, destMask uint64, frame []byte) (uint64, error) {
	if destMask == 0 {
		return 0, fmt.Errorf("wal: empty destination mask")
	}
	if slot < 0 || slot > 255 {
		return 0, fmt.Errorf("wal: slot %d out of range", slot)
	}
	t0 := time.Now()
	rows := FrameRows(frame)
	payload := make([]byte, dataHeader+len(frame))
	le := binary.LittleEndian
	payload[0] = kindData
	payload[1] = byte(slot)
	le.PutUint32(payload[4:8], uint32(rows))
	le.PutUint64(payload[16:24], destMask)
	copy(payload[dataHeader:], frame)

	s.mu.Lock()
	seq := s.nextSeq
	le.PutUint64(payload[8:16], seq)
	// Recompute nothing: appendRecordLocked CRCs the payload as given.
	if err := s.appendRecordLocked(payload); err != nil {
		s.mu.Unlock()
		return 0, err
	}
	s.nextSeq = seq + 1
	rec := &prec{
		seq:  seq,
		slot: uint8(slot),
		mask: destMask,
		rows: int32(rows),
		seg:  s.fIdx,
		off:  s.fSize - int64(recHeader+len(payload)),
		n:    int32(recHeader + len(payload)),
	}
	s.index[seq] = rec
	s.segPending[rec.seg]++
	s.addPending(rec, destMask)
	f, fileIdx, target := s.f, s.fIdx, s.fSize
	s.mu.Unlock()

	err := s.syncTo(f, fileIdx, target)
	if err == nil {
		mWalAppends.Inc()
		mWalAppendBytes.Add(int64(len(payload)))
		mWalAppendSecs.Observe(time.Since(t0).Seconds())
	}
	return seq, err
}

// syncTo implements group commit: returns once bytes [0, target) of
// segment fileIdx are durable, piggybacking on any fsync that already
// covered them.
func (s *Spool) syncTo(f *os.File, fileIdx int, target int64) error {
	s.syncMu.Lock()
	defer s.syncMu.Unlock()
	if fileIdx < s.syncIdx || (fileIdx == s.syncIdx && target <= s.syncOff) {
		return nil
	}
	// Rolling syncs the old file before retiring it, so if the active
	// segment moved past fileIdx these bytes are already durable.
	s.mu.Lock()
	curIdx, curSize := s.fIdx, s.fSize
	s.mu.Unlock()
	if fileIdx < curIdx {
		if fileIdx > s.syncIdx {
			s.syncIdx, s.syncOff = fileIdx, target
		}
		return nil
	}
	if err := f.Sync(); err != nil {
		// A concurrent roll may have synced and closed this handle
		// between the size snapshot and our Sync; those bytes are
		// already durable.
		if errors.Is(err, os.ErrClosed) {
			return nil
		}
		return err
	}
	mWalFsyncs.Inc()
	s.syncIdx, s.syncOff = curIdx, curSize
	return nil
}

// Ack marks seq delivered to node. When every destination has acked,
// the record is dropped and its segment reclaimed once empty. Acks are
// logged but not individually fsynced: a lost ack is redelivered and
// deduplicated by the shard.
func (s *Spool) Ack(seq uint64, node int) error {
	if node < 0 || node >= 64 {
		return fmt.Errorf("wal: node %d out of range", node)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.clearPendingLocked(seq, node) {
		return nil
	}
	mWalAcks.Inc()
	payload := make([]byte, ackLen)
	le := binary.LittleEndian
	payload[0] = kindAck
	le.PutUint32(payload[4:8], uint32(node))
	le.PutUint64(payload[8:16], seq)
	return s.appendRecordLocked(payload)
}

// AckBatch marks several sequences delivered to node in one locked
// pass — the lane's companion to a batched shard delivery: one lock
// acquisition and one contiguous run of ack records instead of one
// round trip per frame. Like Ack, the records are logged but not
// individually fsynced; a lost ack redelivers and deduplicates.
func (s *Spool) AckBatch(seqs []uint64, node int) error {
	if node < 0 || node >= 64 {
		return fmt.Errorf("wal: node %d out of range", node)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	le := binary.LittleEndian
	for _, seq := range seqs {
		if !s.clearPendingLocked(seq, node) {
			continue
		}
		mWalAcks.Inc()
		payload := make([]byte, ackLen)
		payload[0] = kindAck
		le.PutUint32(payload[4:8], uint32(node))
		le.PutUint64(payload[8:16], seq)
		if err := s.appendRecordLocked(payload); err != nil {
			return err
		}
	}
	return nil
}

// AckNode force-acks every pending record for node — used when a
// member is removed from the ring and its deliveries become moot.
func (s *Spool) AckNode(node int) error {
	if node < 0 || node >= 64 {
		return fmt.Errorf("wal: node %d out of range", node)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var seqs []uint64
	for seq, rec := range s.index {
		if rec.mask&(1<<uint(node)) != 0 {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(a, b int) bool { return seqs[a] < seqs[b] })
	le := binary.LittleEndian
	for _, seq := range seqs {
		if !s.clearPendingLocked(seq, node) {
			continue
		}
		mWalAcks.Inc()
		payload := make([]byte, ackLen)
		payload[0] = kindAck
		le.PutUint32(payload[4:8], uint32(node))
		le.PutUint64(payload[8:16], seq)
		if err := s.appendRecordLocked(payload); err != nil {
			return err
		}
	}
	return nil
}

// PendingForNode returns up to max pending records destined for node
// with seq > after, in ascending seq order, frames reloaded from disk.
// Delivery lanes use it both for boot replay and to refill after a
// queue overflow spilled to the spool.
func (s *Spool) PendingForNode(node int, after uint64, max int) ([]Record, error) {
	s.mu.Lock()
	var recs []*prec
	for seq, rec := range s.index {
		if seq > after && rec.mask&(1<<uint(node)) != 0 {
			recs = append(recs, rec)
		}
	}
	sort.Slice(recs, func(a, b int) bool { return recs[a].seq < recs[b].seq })
	if max > 0 && len(recs) > max {
		recs = recs[:max]
	}
	// Snapshot the location fields before unlocking; the record itself
	// may be acked concurrently (the frame bytes on disk are immutable
	// until the whole segment is reclaimed, and reclaim requires the
	// ack we have not sent yet).
	snap := make([]prec, len(recs))
	for i, r := range recs {
		snap[i] = *r
	}
	s.mu.Unlock()

	out := make([]Record, 0, len(snap))
	for i := range snap {
		frame, err := s.load(&snap[i])
		if err != nil {
			return out, err
		}
		out = append(out, Record{
			Seq:   snap[i].seq,
			Slot:  int(snap[i].slot),
			Dests: snap[i].mask,
			Rows:  int(snap[i].rows),
			Frame: frame,
		})
	}
	return out, nil
}

// load re-reads one data record's frame bytes from its segment,
// re-validating the CRC.
func (s *Spool) load(rec *prec) ([]byte, error) {
	f, err := os.Open(s.segPath(rec.seg))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, rec.n)
	if _, err := f.ReadAt(buf, rec.off); err != nil {
		return nil, fmt.Errorf("wal: reload seq %d: %w", rec.seq, err)
	}
	le := binary.LittleEndian
	plen := int(le.Uint32(buf[0:4]))
	if plen != int(rec.n)-recHeader {
		return nil, fmt.Errorf("wal: reload seq %d: length mismatch", rec.seq)
	}
	payload := buf[recHeader:]
	if crc32.ChecksumIEEE(payload) != le.Uint32(buf[4:8]) {
		return nil, fmt.Errorf("wal: reload seq %d: checksum mismatch", rec.seq)
	}
	return payload[dataHeader:], nil
}

// PendingRowsNode reports how many tweet rows are spooled for node.
func (s *Spool) PendingRowsNode(node int) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rowsNode[node]
}

// PendingRowsSlotNode reports how many rows of slot are still owed to
// node — zero means the node's copy of the slot is current and safe to
// serve reads from.
func (s *Spool) PendingRowsSlotNode(node, slot int) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sn := s.rowsSN[node]; sn != nil {
		return sn[slot]
	}
	return 0
}

// Stats summarises the spool for health endpoints.
func (s *Spool) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		PendingRecords: len(s.index),
		NextSeq:        s.nextSeq,
		Corrupt:        s.corrupt,
	}
	for _, rec := range s.index {
		st.PendingRows += int64(rec.rows)
	}
	segs := map[int]bool{}
	for _, rec := range s.index {
		segs[rec.seg] = true
	}
	if s.f != nil {
		segs[s.fIdx] = true
	}
	st.Segments = len(segs)
	return st
}

// Close syncs and closes the active segment. Pending records stay on
// disk for the next Open to replay.
func (s *Spool) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Sync()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.f = nil
	return err
}
