// Package population implements §III of the paper: estimating the census
// population distribution from the per-area unique Twitter user counts,
// via a single rescaling factor C with C·p_Twitter ≈ p_Census, and
// quantifying the agreement with a pooled Pearson correlation over the
// three geographic scales.
package population

import (
	"fmt"

	"geomob/internal/census"
	"geomob/internal/linalg"
	"geomob/internal/stats"
)

// Estimate is the population estimate for one region set.
type Estimate struct {
	Scale        census.Scale
	Radius       float64   // search radius ε used to extract users, metres
	TwitterUsers []float64 // unique users per area
	Census       []float64 // census population per area
	C            float64   // rescaling factor: C·TwitterUsers ≈ Census
	Rescaled     []float64 // C·TwitterUsers
	MedianUsers  float64   // median per-area user count (paper §III)
}

// NewEstimate computes the rescaling for one scale. twitterUsers[i] must
// correspond to rs.Areas[i].
func NewEstimate(rs census.RegionSet, radius float64, twitterUsers []float64) (*Estimate, error) {
	if len(twitterUsers) != len(rs.Areas) {
		return nil, fmt.Errorf("population: %d user counts for %d areas", len(twitterUsers), len(rs.Areas))
	}
	censusPop := rs.Populations()
	c, err := linalg.ScaleThroughOrigin(twitterUsers, censusPop)
	if err != nil {
		return nil, fmt.Errorf("population: rescaling factor: %w", err)
	}
	rescaled := make([]float64, len(twitterUsers))
	for i, v := range twitterUsers {
		rescaled[i] = c * v
	}
	med, err := stats.Median(twitterUsers)
	if err != nil {
		return nil, fmt.Errorf("population: median users: %w", err)
	}
	return &Estimate{
		Scale:        rs.Scale,
		Radius:       radius,
		TwitterUsers: twitterUsers,
		Census:       censusPop,
		C:            c,
		Rescaled:     rescaled,
		MedianUsers:  med,
	}, nil
}

// Correlation reports the scale's own Pearson test between the rescaled
// Twitter population and the census population, computed on log10 values
// (the quantities span three decades; Fig. 3 plots them log-log).
func (e *Estimate) Correlation() (*stats.CorrelationTest, error) {
	lx, ly, dropped, err := stats.Log10Positive(e.Rescaled, e.Census)
	if err != nil {
		return nil, err
	}
	if dropped > 0 && len(lx) < 3 {
		return nil, fmt.Errorf("population: only %d usable areas after dropping %d empty ones", len(lx), dropped)
	}
	return stats.PearsonTest(lx, ly)
}

// Pooled combines the per-scale estimates into the paper's headline
// statistic: the Pearson correlation (with two-tailed p) over all areas of
// all scales pooled together — 60 samples in the paper, r = 0.816,
// p = 2.06e-15.
type Pooled struct {
	Test     *stats.CorrelationTest
	TestLog  *stats.CorrelationTest
	NSamples int
}

// Pool runs the pooled correlation across the estimates.
func Pool(estimates []*Estimate) (*Pooled, error) {
	if len(estimates) == 0 {
		return nil, fmt.Errorf("population: no estimates to pool")
	}
	var x, y []float64
	for _, e := range estimates {
		x = append(x, e.Rescaled...)
		y = append(y, e.Census...)
	}
	raw, err := stats.PearsonTest(x, y)
	if err != nil {
		return nil, fmt.Errorf("population: pooled correlation: %w", err)
	}
	lx, ly, _, err := stats.Log10Positive(x, y)
	if err != nil {
		return nil, err
	}
	logTest, err := stats.PearsonTest(lx, ly)
	if err != nil {
		return nil, fmt.Errorf("population: pooled log correlation: %w", err)
	}
	return &Pooled{Test: raw, TestLog: logTest, NSamples: len(x)}, nil
}
