package population

import (
	"math"
	"math/rand/v2"
	"testing"

	"geomob/internal/census"
)

// fakeUsers derives per-area user counts from census populations with a
// known penetration rate and multiplicative noise.
func fakeUsers(t *testing.T, rs census.RegionSet, rate, noise float64, seed uint64) []float64 {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, seed+3))
	users := make([]float64, len(rs.Areas))
	for i, a := range rs.Areas {
		users[i] = math.Round(rate * float64(a.Population) * math.Exp(rng.NormFloat64()*noise))
	}
	return users
}

func TestNewEstimateRecoversScale(t *testing.T) {
	rs, _ := census.Australia().Regions(census.ScaleNational)
	users := fakeUsers(t, rs, 0.01, 0, 5) // exactly 1% penetration
	e, err := NewEstimate(rs, rs.Scale.SearchRadius(), users)
	if err != nil {
		t.Fatal(err)
	}
	// C should recover ~1/rate = 100.
	if math.Abs(e.C-100) > 2 {
		t.Errorf("C = %v, want ~100", e.C)
	}
	for i := range e.Rescaled {
		if math.Abs(e.Rescaled[i]-e.C*users[i]) > 1e-9 {
			t.Fatal("Rescaled inconsistent with C")
		}
	}
	if e.MedianUsers <= 0 {
		t.Errorf("median users = %v", e.MedianUsers)
	}
}

func TestEstimateCorrelationStrongForLowNoise(t *testing.T) {
	rs, _ := census.Australia().Regions(census.ScaleNational)
	users := fakeUsers(t, rs, 0.01, 0.1, 7)
	e, err := NewEstimate(rs, 50_000, users)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := e.Correlation()
	if err != nil {
		t.Fatal(err)
	}
	if ct.R < 0.9 {
		t.Errorf("r = %v, want > 0.9 for 10%% noise", ct.R)
	}
	if ct.P > 1e-6 {
		t.Errorf("p = %v, want tiny", ct.P)
	}
}

func TestCorrelationDegradesWithNoise(t *testing.T) {
	rs, _ := census.Australia().Regions(census.ScaleMetropolitan)
	low, err := NewEstimate(rs, 2000, fakeUsers(t, rs, 0.02, 0.1, 11))
	if err != nil {
		t.Fatal(err)
	}
	high, err := NewEstimate(rs, 500, fakeUsers(t, rs, 0.02, 1.2, 11))
	if err != nil {
		t.Fatal(err)
	}
	rLow, err := low.Correlation()
	if err != nil {
		t.Fatal(err)
	}
	rHigh, err := high.Correlation()
	if err != nil {
		t.Fatal(err)
	}
	// This is Fig. 3's ε = 2 km vs ε = 0.5 km story: more noise, weaker r.
	if rHigh.R >= rLow.R {
		t.Errorf("noisy estimate r=%v should be below clean r=%v", rHigh.R, rLow.R)
	}
}

func TestNewEstimateErrors(t *testing.T) {
	rs, _ := census.Australia().Regions(census.ScaleNational)
	if _, err := NewEstimate(rs, 50_000, []float64{1, 2}); err == nil {
		t.Error("length mismatch should fail")
	}
	zeros := make([]float64, len(rs.Areas))
	if _, err := NewEstimate(rs, 50_000, zeros); err == nil {
		t.Error("all-zero users should fail (no rescaling possible)")
	}
}

func TestPoolMatchesPaperShape(t *testing.T) {
	// Pool the three scales like Fig. 3(a): 60 samples, strong correlation,
	// extremely small p.
	gaz := census.Australia()
	var estimates []*Estimate
	for i, scale := range census.Scales() {
		rs, err := gaz.Regions(scale)
		if err != nil {
			t.Fatal(err)
		}
		// Noise grows as the scale shrinks, mirroring the paper.
		noise := []float64{0.15, 0.3, 0.45}[i]
		e, err := NewEstimate(rs, scale.SearchRadius(), fakeUsers(t, rs, 0.012, noise, uint64(13+i)))
		if err != nil {
			t.Fatal(err)
		}
		estimates = append(estimates, e)
	}
	pooled, err := Pool(estimates)
	if err != nil {
		t.Fatal(err)
	}
	if pooled.NSamples != 60 {
		t.Errorf("pooled samples = %d, want 60", pooled.NSamples)
	}
	if pooled.TestLog.R < 0.75 {
		t.Errorf("pooled log r = %v, want >= 0.75 (paper: 0.816 raw)", pooled.TestLog.R)
	}
	if pooled.TestLog.P > 1e-10 {
		t.Errorf("pooled p = %v, want < 1e-10 (paper: 2.06e-15)", pooled.TestLog.P)
	}
	if pooled.Test.R <= 0 {
		t.Errorf("raw pooled r = %v, want positive", pooled.Test.R)
	}
}

func TestPoolEmpty(t *testing.T) {
	if _, err := Pool(nil); err == nil {
		t.Error("empty pool should fail")
	}
}
