package census

import (
	"testing"

	"geomob/internal/geo"
)

func TestAllRegionSetsValidate(t *testing.T) {
	g := Australia()
	for _, rs := range g.AllRegions() {
		if err := rs.Validate(); err != nil {
			t.Errorf("%s: %v", rs.Scale, err)
		}
		if rs.Len() != 20 {
			t.Errorf("%s: %d areas, the paper uses 20 per scale", rs.Scale, rs.Len())
		}
	}
}

func TestScaleStringsAndRadii(t *testing.T) {
	cases := []struct {
		s      Scale
		name   string
		radius float64
	}{
		{ScaleNational, "National", 50_000},
		{ScaleState, "State", 25_000},
		{ScaleMetropolitan, "Metropolitan", 2_000},
	}
	for _, c := range cases {
		if c.s.String() != c.name {
			t.Errorf("String() = %q, want %q", c.s.String(), c.name)
		}
		if c.s.SearchRadius() != c.radius {
			t.Errorf("%s radius = %v, want %v", c.name, c.s.SearchRadius(), c.radius)
		}
	}
	if Scale(99).SearchRadius() != 0 {
		t.Error("unknown scale should have zero radius")
	}
	if Scale(99).String() != "Scale(99)" {
		t.Errorf("unknown scale string: %q", Scale(99).String())
	}
	if len(Scales()) != 3 {
		t.Error("Scales() should list three scales")
	}
}

func TestRegionsLookup(t *testing.T) {
	g := Australia()
	nat, err := g.Regions(ScaleNational)
	if err != nil {
		t.Fatal(err)
	}
	if nat.Areas[0].Name != "Sydney" {
		t.Errorf("largest national city = %q, want Sydney", nat.Areas[0].Name)
	}
	st, _ := g.Regions(ScaleState)
	for _, a := range st.Areas {
		if a.State != "NSW" {
			t.Errorf("state scale contains non-NSW area %q (%s)", a.Name, a.State)
		}
	}
	if _, err := g.Regions(Scale(42)); err == nil {
		t.Error("unknown scale should error")
	}
}

func TestMeanPairwiseDistancesMatchPaper(t *testing.T) {
	// Paper §III: average inter-area distances of 1422 km, 341 km, 7.5 km.
	// Our gazetteer approximates the same area sets, so the means must land
	// in the same regime.
	g := Australia()
	cases := []struct {
		scale  Scale
		lo, hi float64 // metres
	}{
		{ScaleNational, 1_000_000, 2_000_000},
		{ScaleState, 200_000, 500_000},
		// The paper reports 7.5 km; our population-faithful suburb list
		// spans greater Sydney (~22 km mean). Recorded in EXPERIMENTS.md.
		{ScaleMetropolitan, 3_000, 30_000},
	}
	for _, c := range cases {
		rs, _ := g.Regions(c.scale)
		d := rs.MeanPairwiseDistance()
		if d < c.lo || d > c.hi {
			t.Errorf("%s mean pairwise distance = %.0f m, want within [%v, %v]", c.scale, d, c.lo, c.hi)
		}
	}
}

func TestTotalPopulationAndVectors(t *testing.T) {
	g := Australia()
	nat, _ := g.Regions(ScaleNational)
	total := nat.TotalPopulation()
	// The 20 largest cities held roughly 16-17M people in 2012-13.
	if total < 14_000_000 || total > 19_000_000 {
		t.Errorf("national total population = %d, implausible", total)
	}
	pops := nat.Populations()
	centers := nat.Centers()
	if len(pops) != nat.Len() || len(centers) != nat.Len() {
		t.Fatal("vector lengths disagree with Len()")
	}
	if pops[0] != float64(nat.Areas[0].Population) {
		t.Error("Populations() order broken")
	}
	if centers[0] != nat.Areas[0].Center {
		t.Error("Centers() order broken")
	}
}

func TestIndex(t *testing.T) {
	g := Australia()
	nat, _ := g.Regions(ScaleNational)
	if i := nat.Index("Perth"); i < 0 || nat.Areas[i].Name != "Perth" {
		t.Errorf("Index(Perth) = %d", i)
	}
	if i := nat.Index("Atlantis"); i != -1 {
		t.Errorf("Index(Atlantis) = %d, want -1", i)
	}
}

func TestMetroAreasAreWithinSydney(t *testing.T) {
	g := Australia()
	metro, _ := g.Regions(ScaleMetropolitan)
	sydney := geo.Point{Lat: -33.8688, Lon: 151.2093}
	for _, a := range metro.Areas {
		if d := geo.Haversine(sydney, a.Center); d > 60_000 {
			t.Errorf("suburb %q is %.0f m from Sydney CBD — outside the metro area", a.Name, d)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	bad := RegionSet{Scale: ScaleNational, Areas: []Area{
		{"A", "NSW", geo.Point{Lat: -33, Lon: 151}, 100},
		{"B", "NSW", geo.Point{Lat: -33, Lon: 151}, 200}, // out of order
	}}
	if err := bad.Validate(); err == nil {
		t.Error("unsorted set should fail validation")
	}
	dup := RegionSet{Scale: ScaleNational, Areas: []Area{
		{"A", "NSW", geo.Point{Lat: -33, Lon: 151}, 200},
		{"A", "NSW", geo.Point{Lat: -34, Lon: 151}, 100},
	}}
	if err := dup.Validate(); err == nil {
		t.Error("duplicate names should fail validation")
	}
	empty := RegionSet{Scale: ScaleState}
	if err := empty.Validate(); err == nil {
		t.Error("empty set should fail validation")
	}
	outside := RegionSet{Scale: ScaleNational, Areas: []Area{
		{"NYC", "NY", geo.Point{Lat: 40.7, Lon: -74.0}, 8_000_000},
	}}
	if err := outside.Validate(); err == nil {
		t.Error("area outside Australia should fail validation")
	}
	zeroPop := RegionSet{Scale: ScaleNational, Areas: []Area{
		{"A", "NSW", geo.Point{Lat: -33, Lon: 151}, 0},
	}}
	if err := zeroPop.Validate(); err == nil {
		t.Error("zero population should fail validation")
	}
}

func TestMeanPairwiseDistanceDegenerate(t *testing.T) {
	one := RegionSet{Areas: []Area{{"A", "NSW", geo.Point{Lat: -33, Lon: 151}, 1}}}
	if d := one.MeanPairwiseDistance(); d != 0 {
		t.Errorf("single area distance = %v, want 0", d)
	}
}
