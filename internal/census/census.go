// Package census embeds the Australian gazetteer the paper's experiments
// are run against: the 20 most populated cities nationally, the 20 most
// populated cities in New South Wales, and the 20 most populated suburbs of
// Sydney, each with a representative centre coordinate and a census-based
// population (§III of the paper, ABS catalogue 3218.0, 2012-13 estimated
// resident population).
//
// Data provenance: the original paper reads these values from ABS census
// tables we cannot redistribute; the values embedded here are public-domain
// approximations of the same 2012-13 estimates, accurate to a few percent.
// DESIGN.md §1 records this substitution. The analysis code consumes only
// (population, coordinate) pairs, so small absolute deviations shift fitted
// constants without affecting any of the paper's qualitative results.
package census

import (
	"fmt"

	"geomob/internal/geo"
)

// Scale identifies one of the paper's three geographic scales.
type Scale int

const (
	// ScaleNational covers the 20 most populated cities in Australia.
	ScaleNational Scale = iota
	// ScaleState covers the 20 most populated cities in New South Wales.
	ScaleState
	// ScaleMetropolitan covers the 20 most populated suburbs in Sydney.
	ScaleMetropolitan
)

// String returns the scale name as used in the paper's tables.
func (s Scale) String() string {
	switch s {
	case ScaleNational:
		return "National"
	case ScaleState:
		return "State"
	case ScaleMetropolitan:
		return "Metropolitan"
	default:
		return fmt.Sprintf("Scale(%d)", int(s))
	}
}

// SearchRadius returns the paper's tweet-extraction search radius ε for the
// scale, in metres: 50 km national, 25 km state, 2 km metropolitan (§III).
func (s Scale) SearchRadius() float64 {
	switch s {
	case ScaleNational:
		return 50_000
	case ScaleState:
		return 25_000
	case ScaleMetropolitan:
		return 2_000
	default:
		return 0
	}
}

// Scales lists the three scales in the paper's order.
func Scales() []Scale {
	return []Scale{ScaleNational, ScaleState, ScaleMetropolitan}
}

// Area is one census region: a named population centre.
type Area struct {
	Name       string    // area name, e.g. "Sydney" or "Blacktown"
	State      string    // state or territory abbreviation
	Center     geo.Point // representative centre coordinate
	Population int       // census-based resident population
}

// RegionSet is the ordered list of areas studied at one scale.
type RegionSet struct {
	Scale Scale
	Label string
	Areas []Area
}

// national: 20 most populated significant urban areas, 2012-13 ERP.
var national = RegionSet{
	Scale: ScaleNational,
	Label: "Australia: 20 most populated cities",
	Areas: []Area{
		{"Sydney", "NSW", geo.Point{Lat: -33.8688, Lon: 151.2093}, 4293000},
		{"Melbourne", "VIC", geo.Point{Lat: -37.8136, Lon: 144.9631}, 4087000},
		{"Brisbane", "QLD", geo.Point{Lat: -27.4698, Lon: 153.0251}, 2147000},
		{"Perth", "WA", geo.Point{Lat: -31.9523, Lon: 115.8613}, 1897000},
		{"Adelaide", "SA", geo.Point{Lat: -34.9285, Lon: 138.6007}, 1277000},
		{"Gold Coast", "QLD", geo.Point{Lat: -28.0167, Lon: 153.4000}, 614000},
		{"Newcastle", "NSW", geo.Point{Lat: -32.9283, Lon: 151.7817}, 430000},
		{"Canberra", "ACT", geo.Point{Lat: -35.2809, Lon: 149.1300}, 423000},
		{"Sunshine Coast", "QLD", geo.Point{Lat: -26.6500, Lon: 153.0667}, 297000},
		{"Wollongong", "NSW", geo.Point{Lat: -34.4278, Lon: 150.8931}, 289000},
		{"Hobart", "TAS", geo.Point{Lat: -42.8821, Lon: 147.3272}, 216000},
		{"Geelong", "VIC", geo.Point{Lat: -38.1499, Lon: 144.3617}, 184000},
		{"Townsville", "QLD", geo.Point{Lat: -19.2590, Lon: 146.8169}, 178000},
		{"Cairns", "QLD", geo.Point{Lat: -16.9186, Lon: 145.7781}, 147000},
		{"Darwin", "NT", geo.Point{Lat: -12.4634, Lon: 130.8456}, 132000},
		{"Toowoomba", "QLD", geo.Point{Lat: -27.5598, Lon: 151.9507}, 113000},
		{"Ballarat", "VIC", geo.Point{Lat: -37.5622, Lon: 143.8503}, 98000},
		{"Bendigo", "VIC", geo.Point{Lat: -36.7570, Lon: 144.2794}, 91000},
		{"Albury-Wodonga", "NSW", geo.Point{Lat: -36.0737, Lon: 146.9135}, 87000},
		{"Launceston", "TAS", geo.Point{Lat: -41.4332, Lon: 147.1441}, 86000},
	},
}

// state: 20 most populated cities in New South Wales.
var state = RegionSet{
	Scale: ScaleState,
	Label: "New South Wales: 20 most populated cities",
	Areas: []Area{
		{"Sydney", "NSW", geo.Point{Lat: -33.8688, Lon: 151.2093}, 4293000},
		{"Newcastle", "NSW", geo.Point{Lat: -32.9283, Lon: 151.7817}, 430000},
		{"Wollongong", "NSW", geo.Point{Lat: -34.4278, Lon: 150.8931}, 289000},
		{"Coffs Harbour", "NSW", geo.Point{Lat: -30.2963, Lon: 153.1135}, 69000},
		{"Wagga Wagga", "NSW", geo.Point{Lat: -35.1180, Lon: 147.3598}, 55000},
		{"Albury", "NSW", geo.Point{Lat: -36.0737, Lon: 146.9135}, 51000},
		{"Tamworth", "NSW", geo.Point{Lat: -31.0833, Lon: 150.9167}, 47000},
		{"Port Macquarie", "NSW", geo.Point{Lat: -31.4333, Lon: 152.9000}, 45000},
		{"Orange", "NSW", geo.Point{Lat: -33.2833, Lon: 149.1000}, 39000},
		{"Dubbo", "NSW", geo.Point{Lat: -32.2569, Lon: 148.6011}, 38000},
		{"Queanbeyan", "NSW", geo.Point{Lat: -35.3533, Lon: 149.2342}, 37000},
		{"Bathurst", "NSW", geo.Point{Lat: -33.4193, Lon: 149.5775}, 36000},
		{"Nowra", "NSW", geo.Point{Lat: -34.8850, Lon: 150.6000}, 36000},
		{"Lismore", "NSW", geo.Point{Lat: -28.8167, Lon: 153.2833}, 28000},
		{"Taree", "NSW", geo.Point{Lat: -31.9000, Lon: 152.4500}, 26000},
		{"Armidale", "NSW", geo.Point{Lat: -30.5000, Lon: 151.6500}, 24000},
		{"Goulburn", "NSW", geo.Point{Lat: -34.7547, Lon: 149.6186}, 23000},
		{"Cessnock", "NSW", geo.Point{Lat: -32.8342, Lon: 151.3555}, 21000},
		{"Grafton", "NSW", geo.Point{Lat: -29.6833, Lon: 152.9333}, 19000},
		{"Griffith", "NSW", geo.Point{Lat: -34.2900, Lon: 146.0400}, 19000},
	},
}

// metro: 20 most populated suburbs of Sydney.
var metro = RegionSet{
	Scale: ScaleMetropolitan,
	Label: "Sydney: 20 most populated suburbs",
	Areas: []Area{
		{"Blacktown", "NSW", geo.Point{Lat: -33.7668, Lon: 150.9054}, 47000},
		{"Castle Hill", "NSW", geo.Point{Lat: -33.7333, Lon: 151.0042}, 37000},
		{"Auburn", "NSW", geo.Point{Lat: -33.8494, Lon: 151.0331}, 35000},
		{"Baulkham Hills", "NSW", geo.Point{Lat: -33.7629, Lon: 150.9928}, 34000},
		{"Bankstown", "NSW", geo.Point{Lat: -33.9171, Lon: 151.0349}, 32000},
		{"Maroubra", "NSW", geo.Point{Lat: -33.9500, Lon: 151.2370}, 30000},
		{"Randwick", "NSW", geo.Point{Lat: -33.9146, Lon: 151.2437}, 29000},
		{"Mosman", "NSW", geo.Point{Lat: -33.8284, Lon: 151.2406}, 28000},
		{"Quakers Hill", "NSW", geo.Point{Lat: -33.7344, Lon: 150.8789}, 27000},
		{"Liverpool", "NSW", geo.Point{Lat: -33.9200, Lon: 150.9230}, 27000},
		{"Merrylands", "NSW", geo.Point{Lat: -33.8372, Lon: 150.9919}, 26000},
		{"Parramatta", "NSW", geo.Point{Lat: -33.8150, Lon: 151.0011}, 25000},
		{"Marrickville", "NSW", geo.Point{Lat: -33.9111, Lon: 151.1552}, 25000},
		{"Cabramatta", "NSW", geo.Point{Lat: -33.8947, Lon: 150.9357}, 21000},
		{"Dee Why", "NSW", geo.Point{Lat: -33.7511, Lon: 151.2853}, 21000},
		{"Hornsby", "NSW", geo.Point{Lat: -33.7045, Lon: 151.0993}, 21000},
		{"Epping", "NSW", geo.Point{Lat: -33.7728, Lon: 151.0818}, 20000},
		{"Glenmore Park", "NSW", geo.Point{Lat: -33.7906, Lon: 150.6696}, 20000},
		{"Fairfield", "NSW", geo.Point{Lat: -33.8732, Lon: 150.9556}, 18000},
		{"Cronulla", "NSW", geo.Point{Lat: -34.0581, Lon: 151.1543}, 18000},
	},
}

// Gazetteer bundles the three region sets the paper studies.
type Gazetteer struct {
	sets [3]RegionSet
}

// Australia returns the embedded Australian gazetteer. The returned value
// shares the package-level data; callers must treat areas as read-only.
func Australia() *Gazetteer {
	return &Gazetteer{sets: [3]RegionSet{national, state, metro}}
}

// Regions returns the region set for the given scale.
func (g *Gazetteer) Regions(s Scale) (RegionSet, error) {
	switch s {
	case ScaleNational, ScaleState, ScaleMetropolitan:
		return g.sets[s], nil
	default:
		return RegionSet{}, fmt.Errorf("census: unknown scale %d", int(s))
	}
}

// AllRegions returns the three region sets in paper order (national, state,
// metropolitan).
func (g *Gazetteer) AllRegions() []RegionSet {
	return []RegionSet{g.sets[0], g.sets[1], g.sets[2]}
}

// Len returns the number of areas in the set.
func (rs RegionSet) Len() int { return len(rs.Areas) }

// TotalPopulation returns the summed census population across the set.
func (rs RegionSet) TotalPopulation() int {
	var total int
	for _, a := range rs.Areas {
		total += a.Population
	}
	return total
}

// Populations returns the per-area populations as float64, in set order.
func (rs RegionSet) Populations() []float64 {
	out := make([]float64, len(rs.Areas))
	for i, a := range rs.Areas {
		out[i] = float64(a.Population)
	}
	return out
}

// Centers returns the per-area centre coordinates in set order.
func (rs RegionSet) Centers() []geo.Point {
	out := make([]geo.Point, len(rs.Areas))
	for i, a := range rs.Areas {
		out[i] = a.Center
	}
	return out
}

// Index returns the position of the named area, or -1 when absent.
func (rs RegionSet) Index(name string) int {
	for i, a := range rs.Areas {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// MeanPairwiseDistance returns the mean great-circle distance in metres
// over all unordered area pairs. The paper reports 1422 km, 341 km and
// 7.5 km for the three scales.
func (rs RegionSet) MeanPairwiseDistance() float64 {
	n := len(rs.Areas)
	if n < 2 {
		return 0
	}
	var sum float64
	var count int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			sum += geo.Haversine(rs.Areas[i].Center, rs.Areas[j].Center)
			count++
		}
	}
	return sum / float64(count)
}

// Validate checks structural invariants: non-empty, valid coordinates,
// positive populations, unique names, descending population order.
func (rs RegionSet) Validate() error {
	if len(rs.Areas) == 0 {
		return fmt.Errorf("census: %s region set is empty", rs.Scale)
	}
	seen := map[string]bool{}
	for i, a := range rs.Areas {
		if a.Name == "" {
			return fmt.Errorf("census: %s area %d has no name", rs.Scale, i)
		}
		if seen[a.Name] {
			return fmt.Errorf("census: %s has duplicate area %q", rs.Scale, a.Name)
		}
		seen[a.Name] = true
		if !a.Center.Valid() {
			return fmt.Errorf("census: area %q has invalid coordinates %v", a.Name, a.Center)
		}
		if !geo.AustraliaBBox.Contains(a.Center) {
			return fmt.Errorf("census: area %q lies outside the study region", a.Name)
		}
		if a.Population <= 0 {
			return fmt.Errorf("census: area %q has non-positive population %d", a.Name, a.Population)
		}
		if i > 0 && a.Population > rs.Areas[i-1].Population {
			return fmt.Errorf("census: %s not sorted by population at %q", rs.Scale, a.Name)
		}
	}
	return nil
}
