package heatmap

import (
	"bytes"
	"image/png"
	"math/rand/v2"
	"strings"
	"testing"

	"geomob/internal/geo"
)

func TestNewGridValidation(t *testing.T) {
	if _, err := NewGrid(geo.EmptyBBox(), 10, 10); err == nil {
		t.Error("empty box should fail")
	}
	if _, err := NewGrid(geo.AustraliaBBox, 0, 10); err == nil {
		t.Error("zero width should fail")
	}
	if _, err := NewGrid(geo.AustraliaBBox, 10, -1); err == nil {
		t.Error("negative height should fail")
	}
}

func TestGridAddAndCounts(t *testing.T) {
	g, err := NewGrid(geo.AustraliaBBox, 100, 80)
	if err != nil {
		t.Fatal(err)
	}
	sydney := geo.Point{Lat: -33.8688, Lon: 151.2093}
	for i := 0; i < 50; i++ {
		if !g.Add(sydney) {
			t.Fatal("point inside box rejected")
		}
	}
	if g.Add(geo.Point{Lat: 40, Lon: -74}) {
		t.Error("point outside box accepted")
	}
	if g.Total() != 50 {
		t.Errorf("Total = %v", g.Total())
	}
	if g.Max() != 50 {
		t.Errorf("Max = %v, want all mass in one cell", g.Max())
	}
}

func TestGridCornersLandInGrid(t *testing.T) {
	box := geo.AustraliaBBox
	g, _ := NewGrid(box, 10, 10)
	corners := []geo.Point{
		{Lat: box.MinLat, Lon: box.MinLon},
		{Lat: box.MinLat, Lon: box.MaxLon},
		{Lat: box.MaxLat, Lon: box.MinLon},
		{Lat: box.MaxLat, Lon: box.MaxLon},
	}
	for _, c := range corners {
		if !g.Add(c) {
			t.Errorf("corner %v rejected", c)
		}
	}
	if g.Total() != 4 {
		t.Errorf("Total = %v", g.Total())
	}
}

func TestWritePNG(t *testing.T) {
	g, _ := NewGrid(geo.AustraliaBBox, 60, 48)
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 10000; i++ {
		g.Add(geo.Point{
			Lat: -34 + rng.NormFloat64(),
			Lon: 151 + rng.NormFloat64(),
		})
	}
	var buf bytes.Buffer
	if err := g.WritePNG(&buf); err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatalf("output is not a valid PNG: %v", err)
	}
	b := img.Bounds()
	if b.Dx() != 60 || b.Dy() != 48 {
		t.Errorf("image is %dx%d", b.Dx(), b.Dy())
	}
}

func TestWriteASCII(t *testing.T) {
	g, _ := NewGrid(geo.AustraliaBBox, 40, 20)
	sydney := geo.Point{Lat: -33.8688, Lon: 151.2093}
	for i := 0; i < 1000; i++ {
		g.Add(sydney)
	}
	var buf bytes.Buffer
	if err := g.WriteASCII(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 20 {
		t.Fatalf("got %d lines, want 20", len(lines))
	}
	for i, line := range lines {
		if len(line) != 40 {
			t.Fatalf("line %d has %d chars", i, len(line))
		}
	}
	// The dense Sydney cell must use the darkest glyph.
	if !strings.Contains(buf.String(), "@") {
		t.Error("densest glyph missing")
	}
}

func TestDensityDecades(t *testing.T) {
	g, _ := NewGrid(geo.AustraliaBBox, 50, 40)
	sydney := geo.Point{Lat: -33.8688, Lon: 151.2093}
	perth := geo.Point{Lat: -31.9523, Lon: 115.8613}
	for i := 0; i < 100000; i++ {
		g.Add(sydney)
	}
	g.Add(perth) // single tweet far away
	if d := g.DensityDecades(); d < 4.9 || d > 5.1 {
		t.Errorf("decades = %v, want ~5", d)
	}
	empty, _ := NewGrid(geo.AustraliaBBox, 5, 5)
	if d := empty.DensityDecades(); d != 0 {
		t.Errorf("empty grid decades = %v", d)
	}
}

func TestLogScaleMonotone(t *testing.T) {
	g, _ := NewGrid(geo.AustraliaBBox, 2, 2)
	prev := -1.0
	for _, v := range []float64{0, 1, 10, 100, 1000} {
		s := g.logScale(v, 1000)
		if s < prev {
			t.Fatalf("logScale not monotone at %v", v)
		}
		if s < 0 || s > 1 {
			t.Fatalf("logScale out of range: %v", s)
		}
		prev = s
	}
}
