// Package heatmap renders tweet-density maps (the paper's Fig. 1): points
// are binned on a regular latitude/longitude grid and drawn with a
// logarithmic colour scale, as PNG for inspection and as ASCII for
// terminal-friendly experiment output.
package heatmap

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
	"math"
	"strings"

	"geomob/internal/geo"
)

// Grid is a density histogram over a bounding box.
type Grid struct {
	Box    geo.BBox
	NX, NY int
	Counts []float64 // row-major, NY rows of NX cells; row 0 is the north edge
	total  float64
}

// NewGrid allocates an NX×NY density grid over the box.
func NewGrid(box geo.BBox, nx, ny int) (*Grid, error) {
	if box.IsEmpty() {
		return nil, fmt.Errorf("heatmap: empty bounding box")
	}
	if nx < 1 || ny < 1 {
		return nil, fmt.Errorf("heatmap: grid must be at least 1x1, got %dx%d", nx, ny)
	}
	return &Grid{Box: box, NX: nx, NY: ny, Counts: make([]float64, nx*ny)}, nil
}

// Add accumulates one point; points outside the box are ignored and
// reported by the return value.
func (g *Grid) Add(p geo.Point) bool {
	if !g.Box.Contains(p) {
		return false
	}
	fx := (p.Lon - g.Box.MinLon) / (g.Box.MaxLon - g.Box.MinLon)
	fy := (g.Box.MaxLat - p.Lat) / (g.Box.MaxLat - g.Box.MinLat)
	x := int(fx * float64(g.NX))
	y := int(fy * float64(g.NY))
	if x >= g.NX {
		x = g.NX - 1
	}
	if y >= g.NY {
		y = g.NY - 1
	}
	g.Counts[y*g.NX+x]++
	g.total++
	return true
}

// Total returns the number of accumulated points.
func (g *Grid) Total() float64 { return g.total }

// Max returns the largest cell count.
func (g *Grid) Max() float64 {
	var max float64
	for _, v := range g.Counts {
		if v > max {
			max = v
		}
	}
	return max
}

// logScale maps a count to [0, 1] on a log scale against the grid maximum.
func (g *Grid) logScale(v, max float64) float64 {
	if v <= 0 || max <= 0 {
		return 0
	}
	return math.Log1p(v) / math.Log1p(max)
}

// WritePNG renders the grid with the classic black→blue→red→yellow heat
// palette on a log colour scale (the paper's Fig. 1 uses a log colourbar
// spanning 10⁰..10⁵).
func (g *Grid) WritePNG(w io.Writer) error {
	img := image.NewRGBA(image.Rect(0, 0, g.NX, g.NY))
	max := g.Max()
	for y := 0; y < g.NY; y++ {
		for x := 0; x < g.NX; x++ {
			img.Set(x, y, heatColor(g.logScale(g.Counts[y*g.NX+x], max)))
		}
	}
	if err := png.Encode(w, img); err != nil {
		return fmt.Errorf("heatmap: encode png: %w", err)
	}
	return nil
}

// heatColor maps t in [0,1] to a black-body-style palette.
func heatColor(t float64) color.RGBA {
	if t <= 0 {
		return color.RGBA{8, 8, 24, 255} // near-black ocean/empty
	}
	switch {
	case t < 0.25:
		f := t / 0.25
		return color.RGBA{uint8(8 + f*40), uint8(8 + f*40), uint8(24 + f*180), 255}
	case t < 0.5:
		f := (t - 0.25) / 0.25
		return color.RGBA{uint8(48 + f*160), uint8(48 + f*20), uint8(204 - f*120), 255}
	case t < 0.75:
		f := (t - 0.5) / 0.25
		return color.RGBA{uint8(208 + f*47), uint8(68 + f*120), uint8(84 - f*60), 255}
	default:
		f := (t - 0.75) / 0.25
		return color.RGBA{255, uint8(188 + f*67), uint8(24 + f*200), 255}
	}
}

// asciiRamp orders glyphs from empty to dense.
const asciiRamp = " .:-=+*#%@"

// WriteASCII renders the grid as text, one glyph per cell, densest cells
// darkest. Suitable for experiment logs.
func (g *Grid) WriteASCII(w io.Writer) error {
	max := g.Max()
	var sb strings.Builder
	sb.Grow((g.NX + 1) * g.NY)
	for y := 0; y < g.NY; y++ {
		for x := 0; x < g.NX; x++ {
			t := g.logScale(g.Counts[y*g.NX+x], max)
			idx := int(t * float64(len(asciiRamp)-1))
			sb.WriteByte(asciiRamp[idx])
		}
		sb.WriteByte('\n')
	}
	if _, err := io.WriteString(w, sb.String()); err != nil {
		return fmt.Errorf("heatmap: write ascii: %w", err)
	}
	return nil
}

// DensityDecades returns how many powers of ten the non-zero cell counts
// span — Fig. 1's colourbar covers five decades (10⁰..10⁵).
func (g *Grid) DensityDecades() float64 {
	min := math.Inf(1)
	max := 0.0
	for _, v := range g.Counts {
		if v > 0 {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
	}
	if max == 0 || math.IsInf(min, 1) || min == 0 {
		return 0
	}
	return math.Log10(max / min)
}
