// Package report renders experiment outputs: aligned text tables (the
// shape of the paper's Table I and Table II), CSV series files for the
// figure data, and Markdown tables for EXPERIMENTS.md.
package report

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// Table is a simple rectangular table with a header row.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends one row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n%s\n", t.Title, strings.Repeat("=", len(t.Title))); err != nil {
			return fmt.Errorf("report: write title: %w", err)
		}
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if _, err := fmt.Fprintln(tw, strings.Join(t.Headers, "\t")); err != nil {
		return fmt.Errorf("report: write header: %w", err)
	}
	sep := make([]string, len(t.Headers))
	for i, h := range t.Headers {
		sep[i] = strings.Repeat("-", len(h))
	}
	if _, err := fmt.Fprintln(tw, strings.Join(sep, "\t")); err != nil {
		return fmt.Errorf("report: write separator: %w", err)
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(tw, strings.Join(row, "\t")); err != nil {
			return fmt.Errorf("report: write row: %w", err)
		}
	}
	if err := tw.Flush(); err != nil {
		return fmt.Errorf("report: flush table: %w", err)
	}
	return nil
}

// WriteMarkdown renders the table as GitHub-flavoured Markdown.
func (t *Table) WriteMarkdown(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "### %s\n\n", t.Title); err != nil {
			return fmt.Errorf("report: write title: %w", err)
		}
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(t.Headers, " | ")); err != nil {
		return fmt.Errorf("report: write header: %w", err)
	}
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = "---"
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(sep, " | ")); err != nil {
		return fmt.Errorf("report: write separator: %w", err)
	}
	for _, row := range t.Rows {
		escaped := make([]string, len(row))
		for i, c := range row {
			escaped[i] = strings.ReplaceAll(c, "|", "\\|")
		}
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(escaped, " | ")); err != nil {
			return fmt.Errorf("report: write row: %w", err)
		}
	}
	return nil
}

// WriteCSV emits headers and rows as RFC-4180-ish CSV (fields containing
// commas or quotes are quoted).
func (t *Table) WriteCSV(w io.Writer) error {
	writeLine := func(cells []string) error {
		quoted := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				quoted[i] = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			} else {
				quoted[i] = c
			}
		}
		_, err := fmt.Fprintln(w, strings.Join(quoted, ","))
		return err
	}
	if err := writeLine(t.Headers); err != nil {
		return fmt.Errorf("report: write csv header: %w", err)
	}
	for _, row := range t.Rows {
		if err := writeLine(row); err != nil {
			return fmt.Errorf("report: write csv row: %w", err)
		}
	}
	return nil
}

// Series is a named sequence of (x, y) points — one figure curve.
type Series struct {
	Name string
	X, Y []float64
}

// WriteSeriesCSV writes one or more series in long format
// (series,x,y per row), the layout plotting tools ingest directly.
func WriteSeriesCSV(w io.Writer, series ...Series) error {
	if _, err := fmt.Fprintln(w, "series,x,y"); err != nil {
		return fmt.Errorf("report: write series header: %w", err)
	}
	for _, s := range series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("report: series %q has %d x values and %d y values", s.Name, len(s.X), len(s.Y))
		}
		for i := range s.X {
			if _, err := fmt.Fprintf(w, "%s,%g,%g\n", s.Name, s.X[i], s.Y[i]); err != nil {
				return fmt.Errorf("report: write series row: %w", err)
			}
		}
	}
	return nil
}

// F formats a float compactly for table cells.
func F(v float64) string { return fmt.Sprintf("%.3f", v) }

// FScientific formats with scientific notation for p-values.
func FScientific(v float64) string { return fmt.Sprintf("%.2e", v) }

// FInt formats an integer with thousands separators.
func FInt(v int64) string {
	s := fmt.Sprintf("%d", v)
	if v < 0 {
		return "-" + FInt(-v)
	}
	var out []byte
	for i, c := range []byte(s) {
		if i > 0 && (len(s)-i)%3 == 0 {
			out = append(out, ',')
		}
		out = append(out, c)
	}
	return string(out)
}
