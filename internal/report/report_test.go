package report

import (
	"bytes"
	"strings"
	"testing"
)

func sampleTable() *Table {
	t := NewTable("Model Performance", "Scale", "Gravity", "Radiation")
	t.AddRow("National", "0.912", "0.840")
	t.AddRow("State", "0.896", "0.742")
	return t
}

func TestWriteText(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTable().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Model Performance", "Scale", "National", "0.912", "0.742"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + underline + header + separator + 2 rows.
	if len(lines) != 6 {
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
}

func TestWriteMarkdown(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTable().WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "### Model Performance") {
		t.Error("markdown title missing")
	}
	if !strings.Contains(out, "| Scale | Gravity | Radiation |") {
		t.Error("markdown header missing")
	}
	if !strings.Contains(out, "| --- | --- | --- |") {
		t.Error("markdown separator missing")
	}
}

func TestMarkdownEscapesPipes(t *testing.T) {
	tab := NewTable("", "A")
	tab.AddRow("x|y")
	var buf bytes.Buffer
	if err := tab.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `x\|y`) {
		t.Errorf("pipe not escaped: %s", buf.String())
	}
}

func TestWriteCSV(t *testing.T) {
	tab := NewTable("", "name", "value")
	tab.AddRow("plain", "1")
	tab.AddRow("with,comma", "2")
	tab.AddRow(`with"quote`, "3")
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines", len(lines))
	}
	if lines[1] != "plain,1" {
		t.Errorf("line 1: %q", lines[1])
	}
	if lines[2] != `"with,comma",2` {
		t.Errorf("line 2: %q", lines[2])
	}
	if lines[3] != `"with""quote",3` {
		t.Errorf("line 3: %q", lines[3])
	}
}

func TestAddRowPadsShortRows(t *testing.T) {
	tab := NewTable("", "a", "b", "c")
	tab.AddRow("only")
	if len(tab.Rows[0]) != 3 {
		t.Errorf("row not padded: %v", tab.Rows[0])
	}
}

func TestWriteSeriesCSV(t *testing.T) {
	var buf bytes.Buffer
	err := WriteSeriesCSV(&buf,
		Series{Name: "national", X: []float64{1, 2}, Y: []float64{10, 20}},
		Series{Name: "state", X: []float64{3}, Y: []float64{30}},
	)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	want := "series,x,y\nnational,1,10\nnational,2,20\nstate,3,30\n"
	if out != want {
		t.Errorf("got:\n%s\nwant:\n%s", out, want)
	}
}

func TestWriteSeriesCSVLengthMismatch(t *testing.T) {
	var buf bytes.Buffer
	err := WriteSeriesCSV(&buf, Series{Name: "bad", X: []float64{1}, Y: []float64{1, 2}})
	if err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestFormatters(t *testing.T) {
	if F(0.8163) != "0.816" {
		t.Errorf("F: %s", F(0.8163))
	}
	if FScientific(2.06e-15) != "2.06e-15" {
		t.Errorf("FScientific: %s", FScientific(2.06e-15))
	}
	cases := map[int64]string{
		0:       "0",
		999:     "999",
		1000:    "1,000",
		6304176: "6,304,176",
		-473956: "-473,956",
		1234567: "1,234,567",
	}
	for v, want := range cases {
		if got := FInt(v); got != want {
			t.Errorf("FInt(%d) = %q, want %q", v, got, want)
		}
	}
}
