package experiments

import (
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"geomob/internal/census"
	"geomob/internal/epidemic"
)

// sharedEnv builds one moderate environment for the whole test package.
var sharedEnv *Env

func getEnv(t *testing.T) *Env {
	t.Helper()
	if sharedEnv == nil {
		env, err := DefaultEnv(12000, 42, 43, "")
		if err != nil {
			t.Fatal(err)
		}
		sharedEnv = env
	}
	return sharedEnv
}

func TestTableI(t *testing.T) {
	env := getEnv(t)
	tab, err := TableI(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 13 {
		t.Errorf("Table I has %d rows", len(tab.Rows))
	}
	// The measured column must carry real values.
	for _, row := range tab.Rows {
		if row[1] == "" {
			t.Errorf("row %q has empty measured value", row[0])
		}
	}
}

func TestFigure1(t *testing.T) {
	env := getEnv(t)
	grid, err := Figure1(env)
	if err != nil {
		t.Fatal(err)
	}
	if grid.Total() == 0 {
		t.Fatal("no tweets binned")
	}
	// Fig. 1's density scale spans several decades.
	if d := grid.DensityDecades(); d < 2 {
		t.Errorf("density spans %.1f decades, want >= 2", d)
	}
}

func TestFigure2aPowerLaw(t *testing.T) {
	env := getEnv(t)
	bins, fit, err := Figure2a(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(bins) < 5 {
		t.Errorf("only %d bins", len(bins))
	}
	// The generator plants alpha = 1.8.
	if math.Abs(fit.Alpha-env.Config.ActivityAlpha) > 0.3 {
		t.Errorf("fitted alpha %.2f, planted %.2f", fit.Alpha, env.Config.ActivityAlpha)
	}
	// Density must decrease overall (heavy tail): compare first vs last
	// non-empty bin.
	var first, last float64
	for _, b := range bins {
		if b.Count > 0 {
			if first == 0 {
				first = b.Density
			}
			last = b.Density
		}
	}
	if last >= first {
		t.Errorf("density did not decay: first %v last %v", first, last)
	}
}

func TestFigure2bSpansDecades(t *testing.T) {
	env := getEnv(t)
	bins, err := Figure2b(env)
	if err != nil {
		t.Fatal(err)
	}
	var lo, hi float64
	for _, b := range bins {
		if b.Count > 0 {
			if lo == 0 {
				lo = b.Center
			}
			hi = b.Center
		}
	}
	if hi/lo < 1e4 {
		t.Errorf("waiting times span %.1f decades, want >= 4", math.Log10(hi/lo))
	}
}

func TestFigure3a(t *testing.T) {
	env := getEnv(t)
	tab, err := Figure3a(env)
	if err != nil {
		t.Fatal(err)
	}
	// 3 scales + pooled + paper reference.
	if len(tab.Rows) != 5 {
		t.Errorf("Figure 3a table has %d rows", len(tab.Rows))
	}
	// Pooled r (4th row, 5th column) must be strongly positive.
	pooled := tab.Rows[3][4]
	r, err := strconv.ParseFloat(pooled, 64)
	if err != nil {
		t.Fatalf("pooled r cell %q", pooled)
	}
	if r < 0.6 {
		t.Errorf("pooled r = %v", r)
	}
}

func TestFigure3bDegradation(t *testing.T) {
	env := getEnv(t)
	tab, err := Figure3b(env)
	if err != nil {
		t.Fatal(err)
	}
	r2km, err := strconv.ParseFloat(tab.Rows[0][1], 64)
	if err != nil {
		t.Fatal(err)
	}
	r05km, err := strconv.ParseFloat(tab.Rows[1][1], 64)
	if err != nil {
		t.Fatal(err)
	}
	if r05km >= r2km {
		t.Errorf("0.5 km r=%.3f should degrade below 2 km r=%.3f", r05km, r2km)
	}
}

func TestFigure4AndTableII(t *testing.T) {
	env := getEnv(t)
	fits, err := Figure4(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(fits) != 3 {
		t.Fatalf("Figure 4 has %d scales", len(fits))
	}
	for scale, fs := range fits {
		if len(fs) != 3 {
			t.Errorf("%s: %d models", scale, len(fs))
		}
	}
	tab, err := TableII(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 9 {
		t.Errorf("Table II has %d rows, want 9", len(tab.Rows))
	}
	if err := TableIIShapeCheck(env); err != nil {
		t.Errorf("Table II qualitative shape violated: %v", err)
	}
}

func TestAblationRadius(t *testing.T) {
	env := getEnv(t)
	tab, err := AblationRadius(env, []float64{500, 2000})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	// Larger radius captures at least as many users.
	u500, _ := strconv.ParseFloat(tab.Rows[0][2], 64)
	u2000, _ := strconv.ParseFloat(tab.Rows[1][2], 64)
	if u2000 < u500 {
		t.Errorf("2 km captured fewer users (%v) than 0.5 km (%v)", u2000, u500)
	}
}

func TestAblationSampleSize(t *testing.T) {
	env := getEnv(t)
	tab, err := AblationSampleSize(env, []float64{0.3, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		r, err := strconv.ParseFloat(row[1], 64)
		if err != nil || r < 0.3 {
			t.Errorf("fraction %s: r=%s", row[0], row[1])
		}
	}
	if _, err := AblationSampleSize(env, []float64{1.5}); err == nil {
		t.Error("fraction > 1 should fail")
	}
}

func TestAblationGammaRecovery(t *testing.T) {
	env := getEnv(t)
	tab, err := AblationGamma(env, []float64{1.5, 2.5}, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	// Direct fits must recover the planted exponents almost exactly (only
	// flow rounding perturbs them).
	for i, planted := range []float64{1.5, 2.5} {
		direct, err := strconv.ParseFloat(tab.Rows[i][1], 64)
		if err != nil {
			t.Fatalf("unparseable direct gamma %q", tab.Rows[i][1])
		}
		if math.Abs(direct-planted) > 0.1 {
			t.Errorf("direct fit for planted %.1f recovered %.2f", planted, direct)
		}
	}
	// Pipeline fits are flattened by the destination-choice normalisation,
	// but must still rank with the planted exponent.
	g1, err1 := strconv.ParseFloat(tab.Rows[0][2], 64)
	g2, err2 := strconv.ParseFloat(tab.Rows[1][2], 64)
	if err1 != nil || err2 != nil {
		t.Fatalf("unparseable pipeline gammas: %v %v", tab.Rows[0][2], tab.Rows[1][2])
	}
	if g2 <= g1 {
		t.Errorf("planted 2.5 should recover larger pipeline gamma than 1.5: %v vs %v", g2, g1)
	}
}

func TestEpidemicExperiment(t *testing.T) {
	env := getEnv(t)
	tab, res, err := Epidemic(env, epidemic.DefaultParams(), "Sydney")
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 21 { // 20 cities + summary row
		t.Errorf("%d rows", len(tab.Rows))
	}
	if res.PeakI <= 0 {
		t.Error("epidemic never took off")
	}
	// Sydney must be the first city hit.
	if tab.Rows[0][0] != "Sydney" {
		t.Errorf("first-hit city is %q", tab.Rows[0][0])
	}
	if _, _, err := Epidemic(env, epidemic.DefaultParams(), "Atlantis"); err == nil {
		t.Error("unknown seed city should fail")
	}
}

func TestArtefactWriting(t *testing.T) {
	dir := t.TempDir()
	env, err := DefaultEnv(2000, 7, 9, dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TableI(env); err != nil {
		t.Fatal(err)
	}
	if _, err := Figure1(env); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Figure2a(env); err != nil {
		t.Fatal(err)
	}
	if _, err := Figure3a(env); err != nil {
		t.Fatal(err)
	}
	if _, err := TableII(env); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"table1.txt", "table1.csv", "figure1.png", "figure1.txt",
		"figure2a.csv", "figure3a.csv", "figure3a.txt", "table2.txt", "table2.csv",
	} {
		info, err := os.Stat(filepath.Join(dir, want))
		if err != nil {
			t.Errorf("artefact %s missing: %v", want, err)
			continue
		}
		if info.Size() == 0 {
			t.Errorf("artefact %s is empty", want)
		}
	}
}

func TestScaleSlug(t *testing.T) {
	if scaleSlug(census.ScaleNational) != "national" ||
		scaleSlug(census.ScaleState) != "state" ||
		scaleSlug(census.ScaleMetropolitan) != "metropolitan" {
		t.Error("bad slugs")
	}
	if !strings.Contains(scaleSlug(census.Scale(9)), "unknown") {
		t.Error("unknown scale slug")
	}
}
