package experiments

import (
	"fmt"
	"io"
	"math/rand/v2"

	"geomob/internal/census"
	"geomob/internal/core"
	"geomob/internal/population"
	"geomob/internal/report"
	"geomob/internal/tweet"
)

// Figure3a regenerates Fig. 3a: rescaled Twitter population vs census
// population at the three scales with the paper's default radii, plus the
// pooled Pearson test (paper: r = 0.816, p = 2.06e-15 over 60 samples).
func Figure3a(env *Env) (*report.Table, error) {
	res := env.Result
	t := report.NewTable(
		"Figure 3a — Twitter population vs census (ε = 50/25/2 km)",
		"Scale", "Radius (km)", "C", "Median users/area", "Pearson r (log)", "p (log)",
	)
	var series []report.Series
	for _, scale := range census.Scales() {
		est := res.Population[scale]
		ct, err := est.Correlation()
		if err != nil {
			return nil, fmt.Errorf("figure 3a %s: %w", scale, err)
		}
		t.AddRow(scale.String(),
			fmt.Sprintf("%.1f", est.Radius/1000),
			fmt.Sprintf("%.2f", est.C),
			fmt.Sprintf("%.0f", est.MedianUsers),
			report.F(ct.R),
			report.FScientific(ct.P),
		)
		series = append(series, report.Series{
			Name: scale.String(),
			X:    est.Rescaled,
			Y:    est.Census,
		})
	}
	t.AddRow("Pooled (60 samples)", "", "", "",
		report.F(res.Pooled.TestLog.R), report.FScientific(res.Pooled.TestLog.P))
	t.AddRow("Paper pooled", "", "", "", "0.816", "2.06e-15")

	if err := env.writeArtefact("figure3a.csv", func(w io.Writer) error {
		return report.WriteSeriesCSV(w, series...)
	}); err != nil {
		return nil, err
	}
	if err := env.writeArtefact("figure3a.txt", t.WriteText); err != nil {
		return nil, err
	}
	return t, nil
}

// Figure3b regenerates Fig. 3b: the metropolitan estimate degrades when
// the search radius shrinks from 2 km to 0.5 km.
func Figure3b(env *Env) (*report.Table, error) {
	res := env.Result
	full := res.Population[census.ScaleMetropolitan]
	half := res.PopulationMetro500m
	fullCT, err := full.Correlation()
	if err != nil {
		return nil, fmt.Errorf("figure 3b: %w", err)
	}
	halfCT, err := half.Correlation()
	if err != nil {
		return nil, fmt.Errorf("figure 3b: %w", err)
	}
	t := report.NewTable(
		"Figure 3b — Metropolitan radius sensitivity",
		"Radius (km)", "Pearson r (log)", "p",
	)
	t.AddRow("2.0", report.F(fullCT.R), report.FScientific(fullCT.P))
	t.AddRow("0.5", report.F(halfCT.R), report.FScientific(halfCT.P))
	if err := env.writeArtefact("figure3b.csv", func(w io.Writer) error {
		return report.WriteSeriesCSV(w,
			report.Series{Name: "eps2km", X: full.Rescaled, Y: full.Census},
			report.Series{Name: "eps0.5km", X: half.Rescaled, Y: half.Census},
		)
	}); err != nil {
		return nil, err
	}
	if err := env.writeArtefact("figure3b.txt", t.WriteText); err != nil {
		return nil, err
	}
	return t, nil
}

// AblationRadius sweeps the metropolitan search radius (DESIGN.md A1) and
// reports the correlation at each ε, extending the paper's two-point
// comparison into a full curve.
func AblationRadius(env *Env, radiiMeters []float64) (*report.Table, error) {
	if len(radiiMeters) == 0 {
		radiiMeters = []float64{250, 500, 1000, 2000, 4000}
	}
	t := report.NewTable(
		"Ablation A1 — Metropolitan search-radius sweep",
		"Radius (km)", "Pearson r (log)", "Total users counted",
	)
	for _, radius := range radiiMeters {
		est, err := env.Study.PopulationAtRadius(census.ScaleMetropolitan, radius)
		if err != nil {
			return nil, fmt.Errorf("ablation radius %.0f: %w", radius, err)
		}
		ct, err := est.Correlation()
		if err != nil {
			return nil, fmt.Errorf("ablation radius %.0f: %w", radius, err)
		}
		var total float64
		for _, u := range est.TwitterUsers {
			total += u
		}
		t.AddRow(fmt.Sprintf("%.2f", radius/1000), report.F(ct.R), fmt.Sprintf("%.0f", total))
	}
	if err := env.writeArtefact("ablation_radius.txt", t.WriteText); err != nil {
		return nil, err
	}
	return t, nil
}

// AblationSampleSize subsamples users at the given fractions (DESIGN.md
// A2) and reports the pooled correlation, probing the paper's §III
// discussion of sample-size effects.
func AblationSampleSize(env *Env, fractions []float64) (*report.Table, error) {
	if len(fractions) == 0 {
		fractions = []float64{0.1, 0.25, 0.5, 1.0}
	}
	t := report.NewTable(
		"Ablation A2 — User sample-size sensitivity",
		"Fraction of users", "Pooled Pearson r (log)", "p",
	)
	for _, frac := range fractions {
		if frac <= 0 || frac > 1 {
			return nil, fmt.Errorf("ablation sample: fraction %v outside (0,1]", frac)
		}
		sub := subsampleUsers(env.Tweets, frac, 97)
		res, err := core.NewStudyWithOptions(core.SliceSource(sub), env.Opts).Run()
		if err != nil {
			return nil, fmt.Errorf("ablation sample %.2f: %w", frac, err)
		}
		t.AddRow(fmt.Sprintf("%.0f%%", frac*100),
			report.F(res.Pooled.TestLog.R),
			report.FScientific(res.Pooled.TestLog.P))
	}
	if err := env.writeArtefact("ablation_sample.txt", t.WriteText); err != nil {
		return nil, err
	}
	return t, nil
}

// subsampleUsers keeps each user with probability frac (deterministic in
// the seed), preserving stream order.
func subsampleUsers(tweets []tweet.Tweet, frac float64, seed uint64) []tweet.Tweet {
	rng := rand.New(rand.NewPCG(seed, seed*2+1))
	keep := map[int64]bool{}
	decided := map[int64]bool{}
	var out []tweet.Tweet
	for _, tw := range tweets {
		if !decided[tw.UserID] {
			decided[tw.UserID] = true
			keep[tw.UserID] = rng.Float64() < frac
		}
		if keep[tw.UserID] {
			out = append(out, tw)
		}
	}
	return out
}

// PopulationEstimates returns the per-scale estimates in paper order —
// convenience for examples.
func PopulationEstimates(env *Env) []*population.Estimate {
	var out []*population.Estimate
	for _, scale := range census.Scales() {
		out = append(out, env.Result.Population[scale])
	}
	return out
}
