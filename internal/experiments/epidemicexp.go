package experiments

import (
	"fmt"
	"io"
	"sort"

	"geomob/internal/census"
	"geomob/internal/epidemic"
	"geomob/internal/report"
)

// Epidemic runs the paper's future-work experiment (E1): a metapopulation
// SIR outbreak seeded in Sydney, propagating over the *Twitter-extracted*
// national mobility matrix, and reports per-city arrival days plus the
// aggregate epidemic curve.
func Epidemic(env *Env, params epidemic.Params, seedCity string) (*report.Table, *epidemic.Result, error) {
	mr := env.Result.Mobility[census.ScaleNational]
	if mr == nil {
		return nil, nil, fmt.Errorf("epidemic: no national mobility result")
	}
	seed := -1
	for i, a := range mr.Flows.Areas {
		if a.Name == seedCity {
			seed = i
			break
		}
	}
	if seed < 0 {
		return nil, nil, fmt.Errorf("epidemic: unknown seed city %q", seedCity)
	}
	res, err := epidemic.Simulate(mr.Flows.Areas, mr.Flows.Flows, seed, 10, params)
	if err != nil {
		return nil, nil, fmt.Errorf("epidemic: %w", err)
	}

	t := report.NewTable(
		fmt.Sprintf("Extension E1 — SIR outbreak seeded in %s over Twitter mobility (R0=%.1f)", seedCity, params.R0()),
		"City", "Population", "Arrival day (1/100k prevalence)",
	)
	type row struct {
		name string
		pop  int
		day  float64
	}
	var rows []row
	for i, a := range mr.Flows.Areas {
		rows = append(rows, row{a.Name, a.Population, res.ArrivalDay[i]})
	}
	sort.Slice(rows, func(i, j int) bool {
		di, dj := rows[i].day, rows[j].day
		if di < 0 {
			di = 1e18
		}
		if dj < 0 {
			dj = 1e18
		}
		return di < dj
	})
	for _, r := range rows {
		day := "never"
		if r.day >= 0 {
			day = fmt.Sprintf("%.0f", r.day)
		}
		t.AddRow(r.name, report.FInt(int64(r.pop)), day)
	}
	t.AddRow("— national peak", fmt.Sprintf("day %.0f", res.PeakDay),
		fmt.Sprintf("attack rate %.1f%%", res.AttackPct))

	if err := env.writeArtefact("epidemic.txt", t.WriteText); err != nil {
		return nil, nil, err
	}
	if err := env.writeArtefact("epidemic_curve.csv", func(w io.Writer) error {
		curve := report.Series{Name: "total infectious"}
		for _, snap := range res.Series {
			curve.X = append(curve.X, snap.Day)
			curve.Y = append(curve.Y, snap.TotalI())
		}
		return report.WriteSeriesCSV(w, curve)
	}); err != nil {
		return nil, nil, err
	}
	return t, res, nil
}
