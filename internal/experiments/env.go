// Package experiments contains one deterministic regenerator per table and
// figure of the paper, plus the ablations called out in DESIGN.md §3. Each
// experiment consumes a shared Env (synthetic corpus + completed study) and
// returns render-ready tables/series; when Env.OutDir is set the artefacts
// are also written to disk.
package experiments

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"geomob/internal/core"
	"geomob/internal/synth"
	"geomob/internal/tweet"
)

// Env is the shared experiment environment: one synthetic corpus, one
// completed multi-scale study, and an optional output directory.
type Env struct {
	Config synth.Config
	Tweets []tweet.Tweet
	Study  *core.Study
	Result *core.Result
	Opts   core.StudyOptions // execution options for the study and reruns
	OutDir string            // when non-empty, experiments write artefacts here
}

// NewEnv generates the corpus for cfg, runs the full study with default
// options, and prepares outDir (which may be empty to skip writing
// artefacts).
func NewEnv(cfg synth.Config, outDir string) (*Env, error) {
	return NewEnvWithOptions(cfg, outDir, core.StudyOptions{})
}

// NewEnvWithOptions is NewEnv with explicit study execution options, which
// also apply to every study rerun the ablations perform.
func NewEnvWithOptions(cfg synth.Config, outDir string, opts core.StudyOptions) (*Env, error) {
	return NewEnvContext(context.Background(), cfg, outDir, opts)
}

// NewEnvContext is NewEnvWithOptions under a cancellation context: the
// full-study pass aborts promptly (with an error wrapping ctx.Err()) when
// ctx is cancelled, so an interrupted reproduction run stops mid-scan
// instead of finishing a multi-minute pass nobody will read.
func NewEnvContext(ctx context.Context, cfg synth.Config, outDir string, opts core.StudyOptions) (*Env, error) {
	gen, err := synth.NewGenerator(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	tweets, err := gen.GenerateAll()
	if err != nil {
		return nil, fmt.Errorf("experiments: generate corpus: %w", err)
	}
	study := core.NewStudyWithOptions(core.SliceSource(tweets), opts)
	result, err := study.Execute(ctx, core.Request{})
	if err != nil {
		return nil, fmt.Errorf("experiments: run study: %w", err)
	}
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return nil, fmt.Errorf("experiments: create output dir: %w", err)
		}
	}
	return &Env{Config: cfg, Tweets: tweets, Study: study, Result: result, Opts: opts, OutDir: outDir}, nil
}

// DefaultEnv builds an Env with the calibrated default corpus at the given
// scale (number of users) and seed.
func DefaultEnv(users int, seed1, seed2 uint64, outDir string) (*Env, error) {
	return NewEnv(synth.DefaultConfig(users, seed1, seed2), outDir)
}

// DefaultEnvWithWorkers is DefaultEnv with an explicit study worker count
// (0 means one worker per CPU).
func DefaultEnvWithWorkers(users int, seed1, seed2 uint64, outDir string, workers int) (*Env, error) {
	return NewEnvWithOptions(synth.DefaultConfig(users, seed1, seed2), outDir, core.StudyOptions{Workers: workers})
}

// DefaultEnvContext is DefaultEnvWithWorkers under a cancellation context.
func DefaultEnvContext(ctx context.Context, users int, seed1, seed2 uint64, outDir string, workers int) (*Env, error) {
	return NewEnvContext(ctx, synth.DefaultConfig(users, seed1, seed2), outDir, core.StudyOptions{Workers: workers})
}

// writeArtefact writes one named artefact via the render callback when
// OutDir is set; otherwise it is a no-op.
func (e *Env) writeArtefact(name string, render func(io.Writer) error) error {
	if e.OutDir == "" {
		return nil
	}
	path := filepath.Join(e.OutDir, name)
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("experiments: create %s: %w", name, err)
	}
	defer f.Close()
	if err := render(f); err != nil {
		return fmt.Errorf("experiments: render %s: %w", name, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("experiments: close %s: %w", name, err)
	}
	return nil
}
