package experiments

import (
	"fmt"
	"io"
	"math"

	"geomob/internal/census"
	"geomob/internal/core"
	"geomob/internal/models"
	"geomob/internal/report"
	"geomob/internal/synth"
)

// Figure4 regenerates the Fig. 4 scatter data: per scale and per model,
// the (estimated, extracted) traffic pairs and the log-binned means. When
// an output directory is set, one CSV per scale is written with the three
// models' scatter and binned series.
func Figure4(env *Env) (map[census.Scale][]core.ModelFit, error) {
	out := map[census.Scale][]core.ModelFit{}
	for _, scale := range census.Scales() {
		mr := env.Result.Mobility[scale]
		if mr == nil {
			return nil, fmt.Errorf("figure 4: no mobility result for %s", scale)
		}
		out[scale] = mr.Fits
		name := fmt.Sprintf("figure4_%s.csv", scaleSlug(scale))
		if err := env.writeArtefact(name, func(w io.Writer) error {
			var series []report.Series
			for _, fit := range mr.Fits {
				series = append(series, report.Series{
					Name: fit.Name + " scatter",
					X:    fit.Est,
					Y:    fit.Obs,
				})
				binned := report.Series{Name: fit.Name + " binned"}
				for _, b := range fit.Binned {
					binned.X = append(binned.X, b.Center)
					binned.Y = append(binned.Y, b.MeanY)
				}
				series = append(series, binned)
			}
			return report.WriteSeriesCSV(w, series...)
		}); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// scaleSlug maps a scale to a file-name fragment.
func scaleSlug(s census.Scale) string {
	switch s {
	case census.ScaleNational:
		return "national"
	case census.ScaleState:
		return "state"
	case census.ScaleMetropolitan:
		return "metropolitan"
	default:
		return "unknown"
	}
}

// paperTableII holds the published Table II values for side-by-side
// comparison: Pearson (upper) and HitRate@50% (lower) per scale × model.
var paperTableII = map[census.Scale]map[string][2]float64{
	census.ScaleNational: {
		"Gravity 4Param": {0.877, 0.330},
		"Gravity 2Param": {0.912, 0.397},
		"Radiation":      {0.840, 0.184},
	},
	census.ScaleState: {
		"Gravity 4Param": {0.893, 0.487},
		"Gravity 2Param": {0.896, 0.397},
		"Radiation":      {0.742, 0.166},
	},
	census.ScaleMetropolitan: {
		"Gravity 4Param": {0.948, 0.530},
		"Gravity 2Param": {0.963, 0.600},
		"Radiation":      {0.918, 0.397},
	},
}

// TableII regenerates the paper's Table II: per scale and model, the
// Pearson coefficient and HitRate@50%, with the paper's numbers alongside.
func TableII(env *Env) (*report.Table, error) {
	t := report.NewTable(
		"Table II — Model performance: Pearson (upper) / HitRate@50% (lower)",
		"Scale", "Model", "Pearson (measured)", "Pearson (paper)", "HitRate@50% (measured)", "HitRate@50% (paper)",
	)
	for _, scale := range census.Scales() {
		mr := env.Result.Mobility[scale]
		if mr == nil {
			return nil, fmt.Errorf("table II: no mobility result for %s", scale)
		}
		for _, fit := range mr.Fits {
			paper := paperTableII[scale][fit.Name]
			t.AddRow(scale.String(), fit.Name,
				report.F(fit.Metrics.PearsonLog), report.F(paper[0]),
				report.F(fit.Metrics.HitRate50), report.F(paper[1]),
			)
		}
	}
	if err := env.writeArtefact("table2.txt", t.WriteText); err != nil {
		return nil, err
	}
	if err := env.writeArtefact("table2.csv", t.WriteCSV); err != nil {
		return nil, err
	}
	return t, nil
}

// TableIIShapeCheck verifies the qualitative claims of Table II on the
// measured metrics: Gravity 2Param has the best overall Pearson, and
// Radiation is never the best model at any scale. It returns an error
// describing the first violated claim.
func TableIIShapeCheck(env *Env) error {
	var g2Sum, g4Sum, radSum float64
	for _, scale := range census.Scales() {
		mr := env.Result.Mobility[scale]
		byName := map[string]*core.ModelFit{}
		for i := range mr.Fits {
			byName[mr.Fits[i].Name] = &mr.Fits[i]
		}
		g2 := byName["Gravity 2Param"]
		g4 := byName["Gravity 4Param"]
		rad := byName["Radiation"]
		if g2 == nil || g4 == nil || rad == nil {
			return fmt.Errorf("table II shape: missing fits at %s", scale)
		}
		if rad.Metrics.PearsonLog > g2.Metrics.PearsonLog && rad.Metrics.PearsonLog > g4.Metrics.PearsonLog {
			return fmt.Errorf("table II shape: radiation wins Pearson at %s (%.3f)", scale, rad.Metrics.PearsonLog)
		}
		g2Sum += g2.Metrics.PearsonLog
		g4Sum += g4.Metrics.PearsonLog
		radSum += rad.Metrics.PearsonLog
	}
	if g2Sum < radSum {
		return fmt.Errorf("table II shape: gravity-2 overall Pearson %.3f below radiation %.3f", g2Sum/3, radSum/3)
	}
	return nil
}

// AblationGamma probes exponent recovery (DESIGN.md A3) in two settings.
//
// "Direct" fits the Gravity 2Param estimator on flows generated *exactly*
// from the gravity law over the national areas — the estimator must
// recover the planted γ, validating the fitting code.
//
// "Pipeline" regenerates a full corpus with the planted γ driving the
// trip model and fits on the extracted flows. The trip model is a
// destination-choice process (per-origin normalised), so the effective
// distance decay in the observed flows is systematically flatter than the
// kernel exponent — remote origins renormalise their choice sets. The
// table shows both, quantifying that distortion; the recovered pipeline
// exponent must still increase with the planted one.
func AblationGamma(env *Env, gammas []float64, users int) (*report.Table, error) {
	if len(gammas) == 0 {
		gammas = []float64{1.5, 2.0, 2.5}
	}
	if users <= 0 {
		users = 8000
	}
	t := report.NewTable(
		"Ablation A3 — Gravity exponent recovery",
		"Planted γ", "Direct fit γ̂", "Pipeline fit γ̂ (choice-model flattening)",
	)
	for _, gamma := range gammas {
		direct, err := directGammaFit(gamma)
		if err != nil {
			return nil, fmt.Errorf("ablation gamma %.1f direct: %w", gamma, err)
		}
		cfg := env.Config
		cfg.NumUsers = users
		cfg.Gamma = gamma
		gen, err := synth.NewGenerator(cfg)
		if err != nil {
			return nil, fmt.Errorf("ablation gamma %.1f: %w", gamma, err)
		}
		tweets, err := gen.GenerateAll()
		if err != nil {
			return nil, fmt.Errorf("ablation gamma %.1f: %w", gamma, err)
		}
		res, err := core.NewStudyWithOptions(core.SliceSource(tweets), env.Opts).Run()
		if err != nil {
			return nil, fmt.Errorf("ablation gamma %.1f: %w", gamma, err)
		}
		mr := res.Mobility[census.ScaleNational]
		g2 := &models.Gravity2{}
		if err := g2.Fit(mr.OD); err != nil {
			return nil, fmt.Errorf("ablation gamma %.1f pipeline fit: %w", gamma, err)
		}
		t.AddRow(fmt.Sprintf("%.1f", gamma), fmt.Sprintf("%.2f", direct), fmt.Sprintf("%.2f", g2.Gamma))
	}
	if err := env.writeArtefact("ablation_gamma.txt", t.WriteText); err != nil {
		return nil, err
	}
	return t, nil
}

// directGammaFit generates flows exactly from F = C·m·n/d^γ over the
// national areas and returns the Gravity 2Param fitted exponent.
func directGammaFit(gamma float64) (float64, error) {
	rs, err := census.Australia().Regions(census.ScaleNational)
	if err != nil {
		return 0, err
	}
	pop := rs.Populations()
	for i := range pop {
		pop[i] /= 100 // Twitter-population magnitudes
	}
	n := len(pop)
	// Choose C so the largest pair lands near 3e4 flows (the paper's Fig. 4
	// traffic range), keeping small pairs above the rounding floor.
	var maxKernel float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			d := rs.Areas[i].Center.Distance(rs.Areas[j].Center) / 1000
			if k := pop[i] * pop[j] / powKM(d, gamma); k > maxKernel {
				maxKernel = k
			}
		}
	}
	c := 3e4 / maxKernel
	flow := make([][]float64, n)
	for i := range flow {
		flow[i] = make([]float64, n)
		for j := range flow[i] {
			if i == j {
				continue
			}
			d := rs.Areas[i].Center.Distance(rs.Areas[j].Center) / 1000
			flow[i][j] = float64(int(c*pop[i]*pop[j]/powKM(d, gamma) + 0.5))
		}
	}
	od, err := models.BuildOD(rs.Areas, pop, flow)
	if err != nil {
		return 0, err
	}
	m := &models.Gravity2{}
	if err := m.Fit(od); err != nil {
		return 0, err
	}
	return m.Gamma, nil
}

// powKM raises a distance in kilometres to the gamma power, clamping the
// sub-kilometre regime.
func powKM(d, gamma float64) float64 {
	if d < 1 {
		d = 1
	}
	return pow(d, gamma)
}

func pow(base, exp float64) float64 {
	return math.Pow(base, exp)
}
