package experiments

import (
	"fmt"
	"io"

	"geomob/internal/geo"
	"geomob/internal/heatmap"
	"geomob/internal/report"
	"geomob/internal/stats"
)

// TableI regenerates the paper's Table I (dataset statistics) and, when an
// output directory is configured, writes table1.txt and table1.csv.
func TableI(env *Env) (*report.Table, error) {
	st := env.Result.Stats
	t := report.NewTable(
		"Table I — Statistics of the dataset",
		"Statistic", "Measured", "Paper",
	)
	t.AddRow("Range of longitude",
		fmt.Sprintf("[%.6f, %.6f]", st.BBox.MinLon, st.BBox.MaxLon),
		"[112.921112, 159.278717]")
	t.AddRow("Range of latitude",
		fmt.Sprintf("[%.6f, %.6f]", st.BBox.MinLat, st.BBox.MaxLat),
		"[-54.640301, -9.228820]")
	t.AddRow("Collection period",
		fmt.Sprintf("%s – %s", st.First.Format("Jan.2006"), st.Last.Format("Jan.2006")),
		"Sept.2013-Apr.2014")
	t.AddRow("No. Tweets", report.FInt(st.Tweets), "6,304,176")
	t.AddRow("No. unique users", report.FInt(st.Users), "473,956")
	t.AddRow("Avg. Tweets/user", fmt.Sprintf("%.1f", st.AvgTweetsPerUser), "13.3")
	t.AddRow("Avg. waiting time", fmt.Sprintf("%.1fhr", st.AvgWaitingHours), "35.5hr")
	t.AddRow("Avg. no. locations/user", fmt.Sprintf("%.2f", st.AvgLocations), "4.76")
	for _, k := range []int{50, 100, 500, 1000} {
		t.AddRow(fmt.Sprintf("Users with > %d Tweets", k),
			report.FInt(st.HeavyUsers[k]), heavyPaper(k))
	}
	t.AddRow("Mean radius of gyration",
		fmt.Sprintf("%.1f km", st.MeanGyrationKM),
		"(not reported)")
	if err := env.writeArtefact("table1.txt", t.WriteText); err != nil {
		return nil, err
	}
	if err := env.writeArtefact("table1.csv", t.WriteCSV); err != nil {
		return nil, err
	}
	return t, nil
}

// heavyPaper returns the paper's §II heavy-user counts.
func heavyPaper(k int) string {
	switch k {
	case 50:
		return "23,462"
	case 100:
		return "10,031"
	case 500:
		return "766"
	case 1000:
		return "180"
	default:
		return ""
	}
}

// Figure1 regenerates the tweet-density map of Australia (Fig. 1) on a
// 360×280 grid, writing figure1.png and figure1.txt when configured.
func Figure1(env *Env) (*heatmap.Grid, error) {
	grid, err := heatmap.NewGrid(geo.AustraliaBBox, 360, 280)
	if err != nil {
		return nil, err
	}
	for _, tw := range env.Tweets {
		grid.Add(tw.Point())
	}
	if err := env.writeArtefact("figure1.png", grid.WritePNG); err != nil {
		return nil, err
	}
	if err := env.writeArtefact("figure1.txt", func(w io.Writer) error {
		// A coarser companion grid keeps the ASCII render terminal-sized.
		small, err := heatmap.NewGrid(geo.AustraliaBBox, 110, 42)
		if err != nil {
			return err
		}
		for _, tw := range env.Tweets {
			small.Add(tw.Point())
		}
		return small.WriteASCII(w)
	}); err != nil {
		return nil, err
	}
	return grid, nil
}

// Figure2a regenerates the distribution of tweets per user (Fig. 2a):
// log-binned density plus the MLE power-law exponent of the tail.
func Figure2a(env *Env) ([]stats.Bin, *stats.PowerLawFit, error) {
	counts := env.Result.Stats.TweetsPerUser
	bins, _, err := stats.LogHistogram(counts, 4)
	if err != nil {
		return nil, nil, fmt.Errorf("figure 2a: %w", err)
	}
	fit, err := stats.FitPowerLaw(counts, 2, true)
	if err != nil {
		return nil, nil, fmt.Errorf("figure 2a power-law fit: %w", err)
	}
	if err := env.writeArtefact("figure2a.csv", func(w io.Writer) error {
		s := binsToSeries("P(tweets_per_user)", bins)
		return report.WriteSeriesCSV(w, s)
	}); err != nil {
		return nil, nil, err
	}
	return bins, fit, nil
}

// Figure2b regenerates the waiting-time distribution (Fig. 2b) from the
// inter-tweet gaps in seconds.
func Figure2b(env *Env) ([]stats.Bin, error) {
	gaps := env.Result.Stats.WaitingSecs
	bins, _, err := stats.LogHistogram(gaps, 4)
	if err != nil {
		return nil, fmt.Errorf("figure 2b: %w", err)
	}
	if err := env.writeArtefact("figure2b.csv", func(w io.Writer) error {
		s := binsToSeries("P(DT)", bins)
		return report.WriteSeriesCSV(w, s)
	}); err != nil {
		return nil, err
	}
	return bins, nil
}

// binsToSeries converts non-empty histogram bins into a plot series.
func binsToSeries(name string, bins []stats.Bin) report.Series {
	s := report.Series{Name: name}
	for _, b := range bins {
		if b.Count > 0 {
			s.X = append(s.X, b.Center)
			s.Y = append(s.Y, b.Density)
		}
	}
	return s
}
