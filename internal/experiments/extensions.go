package experiments

import (
	"fmt"
	"io"

	"geomob/internal/census"
	"geomob/internal/epidemic"
	"geomob/internal/models"
	"geomob/internal/report"
	"geomob/internal/stats"
)

// FigureDisplacement is an extension figure in the style of Hawelka et al.
// (the paper's ref. [9]): the distribution of displacements between
// consecutive tweets, log-binned. Its shape diagnoses the movement model —
// a sharp local mode (intra-city jitter) with a long inter-city tail.
func FigureDisplacement(env *Env) ([]stats.Bin, error) {
	disp := env.Result.Stats.DisplacementsKM
	bins, _, err := stats.LogHistogram(disp, 4)
	if err != nil {
		return nil, fmt.Errorf("figure displacement: %w", err)
	}
	if err := env.writeArtefact("figure_displacement.csv", func(w io.Writer) error {
		return report.WriteSeriesCSV(w, binsToSeries("P(dr_km)", bins))
	}); err != nil {
		return nil, err
	}
	return bins, nil
}

// TableIIExtended scores the paper's three models plus the intervening-
// opportunities baseline on every scale, reporting Pearson, HitRate@50%
// and the Common Part of Commuters.
func TableIIExtended(env *Env) (*report.Table, error) {
	t := report.NewTable(
		"Table II (extended) — four models × three scales",
		"Scale", "Model", "Pearson", "HitRate@50%", "CPC", "RMSE(log)",
	)
	for _, scale := range census.Scales() {
		mr := env.Result.Mobility[scale]
		if mr == nil {
			return nil, fmt.Errorf("table II extended: no mobility result for %s", scale)
		}
		for _, m := range models.AllExtended() {
			if err := m.Fit(mr.OD); err != nil {
				return nil, fmt.Errorf("table II extended: fit %s at %s: %w", m.Name(), scale, err)
			}
			met, err := models.Evaluate(mr.OD, m)
			if err != nil {
				return nil, fmt.Errorf("table II extended: evaluate %s at %s: %w", m.Name(), scale, err)
			}
			t.AddRow(scale.String(), m.Name(),
				report.F(met.PearsonLog), report.F(met.HitRate50),
				report.F(met.CPC), report.F(met.RMSELog))
		}
	}
	if err := env.writeArtefact("table2_extended.txt", t.WriteText); err != nil {
		return nil, err
	}
	if err := env.writeArtefact("table2_extended.csv", t.WriteCSV); err != nil {
		return nil, err
	}
	return t, nil
}

// EpidemicStochastic runs the stochastic ensemble extension (E1b): many
// discrete outbreak realisations from a small seed, reporting the
// extinction share and the spread of peak timing — the uncertainty band a
// responsive forecasting system must carry.
func EpidemicStochastic(env *Env, runs, seedCases int) (*report.Table, error) {
	if runs <= 0 {
		runs = 50
	}
	if seedCases <= 0 {
		seedCases = 3
	}
	mr := env.Result.Mobility[census.ScaleNational]
	if mr == nil {
		return nil, fmt.Errorf("epidemic stochastic: no national mobility result")
	}
	seed := -1
	for i, a := range mr.Flows.Areas {
		if a.Name == "Sydney" {
			seed = i
		}
	}
	if seed < 0 {
		return nil, fmt.Errorf("epidemic stochastic: no Sydney")
	}
	p := epidemic.DefaultParams()
	res, err := epidemic.SimulateStochastic(mr.Flows.Areas, mr.Flows.Flows, seed, seedCases, p, runs, env.Config.Seed1^0xE91, env.Config.Seed2^0xE92)
	if err != nil {
		return nil, fmt.Errorf("epidemic stochastic: %w", err)
	}
	t := report.NewTable(
		fmt.Sprintf("Extension E1b — stochastic ensemble (%d runs, %d seed cases, R0=%.1f)", runs, seedCases, p.R0()),
		"Statistic", "Value",
	)
	t.AddRow("Extinct runs", fmt.Sprintf("%d (%.0f%%)", res.ExtinctRuns, res.ExtinctShare*100))
	t.AddRow("Mean attack rate", fmt.Sprintf("%.1f%%", res.MeanAttack))
	t.AddRow("Mean peak day (established runs)", fmt.Sprintf("%.0f", res.MeanPeakDay))
	if len(res.PeakDays) > 1 {
		sd, err := stats.StdDev(res.PeakDays)
		if err != nil {
			return nil, err
		}
		t.AddRow("Peak-day std dev", fmt.Sprintf("%.1f days", sd))
	}
	if err := env.writeArtefact("epidemic_stochastic.txt", t.WriteText); err != nil {
		return nil, err
	}
	return t, nil
}

// PooledCorrelationCI supplements Fig. 3a with a bootstrap confidence
// interval on the pooled correlation — quantifying the uncertainty the
// paper's single point estimate (r = 0.816) leaves implicit.
func PooledCorrelationCI(env *Env, level float64, resamples int) (*stats.BootstrapCI, error) {
	if level == 0 {
		level = 0.95
	}
	if resamples == 0 {
		resamples = 2000
	}
	var x, y []float64
	for _, scale := range census.Scales() {
		est := env.Result.Population[scale]
		lx, ly, _, err := stats.Log10Positive(est.Rescaled, est.Census)
		if err != nil {
			return nil, err
		}
		x = append(x, lx...)
		y = append(y, ly...)
	}
	ci, err := stats.BootstrapPearsonCI(x, y, level, resamples, env.Config.Seed1^0xB007, env.Config.Seed2^0x57A9)
	if err != nil {
		return nil, fmt.Errorf("pooled correlation CI: %w", err)
	}
	if err := env.writeArtefact("figure3a_ci.txt", func(w io.Writer) error {
		_, err := fmt.Fprintf(w, "pooled log-Pearson r = %.3f, %d%% bootstrap CI [%.3f, %.3f] (%d resamples)\n",
			ci.Point, int(level*100), ci.Lo, ci.Hi, ci.Resample)
		return err
	}); err != nil {
		return nil, err
	}
	return ci, nil
}
