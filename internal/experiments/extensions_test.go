package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestFigureDisplacement(t *testing.T) {
	env := getEnv(t)
	bins, err := FigureDisplacement(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(bins) < 4 {
		t.Fatalf("only %d bins", len(bins))
	}
	// The displacement distribution must have both a local mode (km-scale
	// jitter) and an inter-city tail beyond 500 km.
	var hasLocal, hasLong bool
	for _, b := range bins {
		if b.Count > 0 && b.Center < 10 {
			hasLocal = true
		}
		if b.Count > 0 && b.Center > 500 {
			hasLong = true
		}
	}
	if !hasLocal || !hasLong {
		t.Errorf("displacement shape wrong: local=%v long=%v", hasLocal, hasLong)
	}
}

func TestTableIIExtended(t *testing.T) {
	env := getEnv(t)
	tab, err := TableIIExtended(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 12 { // 3 scales × 4 models
		t.Fatalf("%d rows, want 12", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		cpc, err := strconv.ParseFloat(row[4], 64)
		if err != nil || cpc < 0 || cpc > 1 {
			t.Errorf("%s/%s: CPC %q invalid", row[0], row[1], row[4])
		}
	}
	// The extension baseline must appear at every scale.
	var opp int
	for _, row := range tab.Rows {
		if strings.Contains(row[1], "Intervening") {
			opp++
		}
	}
	if opp != 3 {
		t.Errorf("intervening opportunities appears %d times, want 3", opp)
	}
}

func TestEpidemicStochastic(t *testing.T) {
	env := getEnv(t)
	tab, err := EpidemicStochastic(env, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 3 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	if tab.Rows[0][0] != "Extinct runs" {
		t.Errorf("first row %q", tab.Rows[0][0])
	}
}

func TestPooledCorrelationCI(t *testing.T) {
	env := getEnv(t)
	ci, err := PooledCorrelationCI(env, 0.95, 400)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Lo > ci.Point || ci.Hi < ci.Point {
		t.Errorf("CI [%v, %v] does not cover point %v", ci.Lo, ci.Hi, ci.Point)
	}
	if ci.Point < 0.6 {
		t.Errorf("pooled r = %v unexpectedly weak", ci.Point)
	}
	// The pooled sample has 60 points; the CI must be informative.
	if ci.Hi-ci.Lo > 0.5 {
		t.Errorf("CI too wide: [%v, %v]", ci.Lo, ci.Hi)
	}
}
