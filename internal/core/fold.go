package core

// This file is the bridge between the streaming Study pipeline and
// external incremental aggregation layers (internal/live): PlanRequest
// exposes the execution plan a Request resolves to without building any
// spatial machinery, and AssembleFolded turns externally folded observer
// outputs into a Result through the exact assembly path Execute uses —
// same fits, same correlations, same float pipeline — so a fold that
// reproduces the observer state bit-for-bit yields a bit-identical
// Result. See DESIGN.md §7 for the bucket-merge contract built on top.

import (
	"fmt"

	"geomob/internal/census"
	"geomob/internal/geo"
	"geomob/internal/mobility"
)

// PlanInfo describes the execution plan a Request resolves to — the
// scales in plan order, the resolved radii, which observer families run
// and the normalised time window — without the cost of building the
// per-scale grid resolvers. External aggregators use it to fold exactly
// the state Execute would compute for the request.
type PlanInfo struct {
	// Analyses is the canonical analysis set (empty input expands to the
	// full study; flows are dropped when mobility subsumes them), in
	// Analyses() order.
	Analyses []Analysis
	// Scales are the plan's scales in plan order (request order, deduped;
	// all three when the request named none). Empty for stats-only plans,
	// which build no per-scale machinery at all.
	Scales []census.Scale
	// ScaleRadius[i] is the resolved search radius ε for Scales[i]: the
	// request override, or the scale's paper default.
	ScaleRadius []float64
	// Stats, Extract and Count report which observer families the plan
	// runs: the trajectory statistics, the per-scale flow extractors and
	// the per-scale unique-user counters.
	Stats, Extract, Count bool
	// Metro500 reports whether the fixed ε = 0.5 km metropolitan variant
	// (Fig. 3b) is part of the plan.
	Metro500 bool
	// FromTS and ToTS bound tweet timestamps to [FromTS, ToTS) in Unix
	// milliseconds. HasTo (not a zero sentinel) marks whether the window
	// is bounded above, so a bound at exactly the epoch is representable.
	FromTS, ToTS int64
	HasTo        bool
}

// PlanRequest validates req and reports the plan it would execute,
// against the embedded Australian gazetteer NewStudy binds to.
func PlanRequest(req Request) (*PlanInfo, error) {
	p, err := buildPlan(census.Australia(), req, false)
	if err != nil {
		return nil, err
	}
	info := &PlanInfo{
		Stats:    p.wants(AnalysisStats),
		Extract:  p.wants(AnalysisMobility) || p.wants(AnalysisFlows),
		Count:    p.wants(AnalysisMobility) || p.wants(AnalysisPopulation),
		Metro500: p.metro,
		FromTS:   p.fromTS,
		ToTS:     p.toTS,
		HasTo:    p.hasTo,
	}
	for _, a := range Analyses() {
		if p.want[a] {
			info.Analyses = append(info.Analyses, a)
		}
	}
	for _, sc := range p.scales {
		info.Scales = append(info.Scales, sc.scale)
		info.ScaleRadius = append(info.ScaleRadius, sc.radius)
	}
	return info, nil
}

// FoldedPass carries externally reconstructed observer outputs for one
// request — the exact values the streaming pass's merged observer set
// would have produced over the same in-window substream. Only the fields
// the request's plan needs are consulted; see PlanRequest for which.
type FoldedPass struct {
	// Tweets is the number of in-window tweets observed; zero folds to
	// ErrEmptyDataset like an empty streaming pass.
	Tweets int64
	// Stats are the trajectory statistics in serial (user-major) order.
	// Required iff the plan wants stats. MappedTweets is not consulted.
	Stats *mobility.Stats
	// BBox, FirstTS, LastTS and Seen reproduce the span accumulator:
	// observed coordinate ranges and collection period. Consulted iff the
	// plan wants stats; Seen marks whether any tweet was observed.
	BBox            geo.BBox
	FirstTS, LastTS int64
	Seen            bool
	// Counts holds, per plan scale, the per-area unique-user counts.
	// Required for every plan scale iff the plan counts.
	Counts map[census.Scale][]float64
	// Flows holds, per plan scale, the extracted flow matrix. Required
	// for every plan scale iff the plan extracts.
	Flows map[census.Scale]*mobility.FlowMatrix
	// Metro500 is the per-area unique-user counts of the fixed 0.5 km
	// metropolitan variant. Required iff the plan's Metro500 is set.
	Metro500 []float64
}

// AssembleFolded builds the Result for req from a folded pass, through
// the same assembly code path Execute uses. A fold that reproduces the
// observer state exactly therefore yields a Result bit-identical to a
// cold full pass over the same substream.
func AssembleFolded(req Request, f *FoldedPass) (*Result, error) {
	p, err := buildPlan(census.Australia(), req, false)
	if err != nil {
		return nil, err
	}
	outs := &passOutputs{
		tweets: f.Tweets,
		span:   spanAcc{bbox: f.BBox, first: f.FirstTS, last: f.LastTS, seen: f.Seen},
		counts: make([][]float64, len(p.scales)),
		flows:  make([]*mobility.FlowMatrix, len(p.scales)),
	}
	if f.Tweets == 0 {
		return nil, ErrEmptyDataset
	}
	if p.wants(AnalysisStats) {
		if f.Stats == nil {
			return nil, fmt.Errorf("core: folded pass missing trajectory statistics")
		}
		outs.stats = f.Stats
	}
	for i, sc := range p.scales {
		if sc.count {
			c := f.Counts[sc.scale]
			if len(c) != len(sc.regions.Areas) {
				return nil, fmt.Errorf("core: folded counts for %s: got %d areas, want %d",
					sc.scale, len(c), len(sc.regions.Areas))
			}
			outs.counts[i] = c
		}
		if sc.extract {
			fm := f.Flows[sc.scale]
			if fm == nil || len(fm.Flows) != len(sc.regions.Areas) {
				return nil, fmt.Errorf("core: folded flow matrix for %s missing or mis-sized", sc.scale)
			}
			outs.flows[i] = fm
		}
	}
	if p.metro {
		if len(f.Metro500) != len(p.metroRS.Areas) {
			return nil, fmt.Errorf("core: folded metro 0.5 km counts: got %d areas, want %d",
				len(f.Metro500), len(p.metroRS.Areas))
		}
		outs.metro = f.Metro500
	}
	return assemble(p, outs)
}
