package core

import (
	"context"
	"reflect"
	"testing"
	"time"

	"geomob/internal/census"
	"geomob/internal/mobility"
	"geomob/internal/synth"
	"geomob/internal/tweet"
	"geomob/internal/tweetdb"
)

// assertResultsIdentical requires every reported number of two study
// results to be exactly equal — the acceptance bar for the sharded
// pipeline is bit-identical output, not approximate agreement.
func assertResultsIdentical(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if !reflect.DeepEqual(a.Stats, b.Stats) {
		t.Errorf("%s: dataset stats differ:\n%+v\nvs\n%+v", label, a.Stats, b.Stats)
	}
	if !reflect.DeepEqual(a.Population, b.Population) {
		t.Errorf("%s: population estimates differ", label)
	}
	if !reflect.DeepEqual(a.PopulationMetro500m, b.PopulationMetro500m) {
		t.Errorf("%s: metro 0.5 km estimates differ", label)
	}
	if !reflect.DeepEqual(a.Pooled, b.Pooled) {
		t.Errorf("%s: pooled correlations differ", label)
	}
	for _, scale := range census.Scales() {
		ma, mb := a.Mobility[scale], b.Mobility[scale]
		if !reflect.DeepEqual(ma.Flows, mb.Flows) {
			t.Errorf("%s/%s: flow matrices differ", label, scale)
		}
		if ma.TotalFlow != mb.TotalFlow || ma.FlowPairs != mb.FlowPairs {
			t.Errorf("%s/%s: flow totals differ", label, scale)
		}
		if !reflect.DeepEqual(ma.Fits, mb.Fits) {
			t.Errorf("%s/%s: model fits differ", label, scale)
		}
	}
}

// TestWorkerCountInvariance is the shard/merge equivalence property test:
// on the same seeded synthetic corpus, Workers: 1 and Workers: 8 (and an
// awkward in-between) must produce identical results in every reported
// quantity — stats, population estimates and flow matrices alike.
func TestWorkerCountInvariance(t *testing.T) {
	gen, err := synth.NewGenerator(synth.DefaultConfig(4000, 21, 22))
	if err != nil {
		t.Fatal(err)
	}
	tweets, err := gen.GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	serial, err := NewStudyWithOptions(SliceSource(tweets), StudyOptions{Workers: 1}).Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{3, 8} {
		parallel, err := NewStudyWithOptions(SliceSource(tweets), StudyOptions{Workers: workers}).Run()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		assertResultsIdentical(t, "slice", serial, parallel)
	}

	// The generator itself is a sharded source: studying it directly must
	// agree with studying the materialised corpus.
	fromGen, err := NewStudyWithOptions(gen, StudyOptions{Workers: 8}).Run()
	if err != nil {
		t.Fatal(err)
	}
	assertResultsIdentical(t, "generator", serial, fromGen)
}

// TestStoreShardedEquivalence runs the parallel pipeline over a compacted
// multi-segment store and requires identical results to the serial
// in-memory pass.
func TestStoreShardedEquivalence(t *testing.T) {
	gen, err := synth.NewGenerator(synth.DefaultConfig(1500, 31, 32))
	if err != nil {
		t.Fatal(err)
	}
	tweets, err := gen.GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	store, err := tweetdb.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Small segments force a genuinely multi-segment catalogue so the
	// shard planner has real work to do.
	if err := store.SetSegmentRecords(2000); err != nil {
		t.Fatal(err)
	}
	if err := store.Append(tweets); err != nil {
		t.Fatal(err)
	}
	if err := store.Compact(); err != nil {
		t.Fatal(err)
	}
	if len(store.Segments()) < 3 {
		t.Fatalf("want multi-segment store, got %d segments", len(store.Segments()))
	}
	// The reference is a serial pass over the store's own stream: the
	// binary codec quantises coordinates, so the decoded records (not the
	// pre-storage originals) are the ground truth both runs must agree on.
	stored, err := store.Scan(tweetdb.Query{}).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	serial, err := NewStudyWithOptions(SliceSource(stored), StudyOptions{Workers: 1}).Run()
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := NewStudyWithOptions(StoreSource{Store: store}, StudyOptions{Workers: 4}).Run()
	if err != nil {
		t.Fatal(err)
	}
	assertResultsIdentical(t, "store", serial, parallel)
}

func TestSliceSourceShards(t *testing.T) {
	gen, err := synth.NewGenerator(synth.DefaultConfig(200, 41, 42))
	if err != nil {
		t.Fatal(err)
	}
	tweets, err := gen.GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	src := SliceSource(tweets)
	for _, n := range []int{1, 2, 5, 16} {
		shards, err := src.Shards(n)
		if err != nil {
			t.Fatal(err)
		}
		if len(shards) == 0 || len(shards) > n {
			t.Fatalf("n=%d: %d shards", n, len(shards))
		}
		var concat []tweet.Tweet
		lastUser := int64(-1)
		for _, sh := range shards {
			first := true
			if err := sh.Each(func(tw tweet.Tweet) error {
				if first && tw.UserID <= lastUser && lastUser >= 0 {
					t.Fatalf("n=%d: shard starts at user %d, previous shard ended at %d", n, tw.UserID, lastUser)
				}
				first = false
				lastUser = tw.UserID
				concat = append(concat, tw)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		}
		if len(concat) != len(tweets) {
			t.Fatalf("n=%d: shards cover %d of %d tweets", n, len(concat), len(tweets))
		}
		for i := range tweets {
			if concat[i] != tweets[i] {
				t.Fatalf("n=%d: tweet %d differs", n, i)
			}
		}
	}
}

func TestExtractFlowsMatchesSerial(t *testing.T) {
	gen, err := synth.NewGenerator(synth.DefaultConfig(800, 51, 52))
	if err != nil {
		t.Fatal(err)
	}
	tweets, err := gen.GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	rs, err := census.Australia().Regions(census.ScaleNational)
	if err != nil {
		t.Fatal(err)
	}
	mapper, err := mobility.NewAreaMapper(rs, 0)
	if err != nil {
		t.Fatal(err)
	}
	serialExt := mobility.NewExtractor(mapper)
	for _, tw := range tweets {
		if err := serialExt.Observe(tw); err != nil {
			t.Fatal(err)
		}
	}
	parallel, err := ExtractFlows(context.Background(), SliceSource(tweets), mapper, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serialExt.Flows(), parallel) {
		t.Error("parallel flow extraction differs from serial")
	}
}

// TestSpanAccEpochZero covers the former first == 0 sentinel bug: a
// legitimate tweet at the Unix epoch must register as the earliest
// observation instead of being skipped.
func TestSpanAccEpochZero(t *testing.T) {
	acc := newSpanAcc()
	acc.observe(tweet.Tweet{TS: 0, Lat: -33.9, Lon: 151.2})
	acc.observe(tweet.Tweet{TS: 1378000000000, Lat: -37.8, Lon: 144.9})
	if !acc.seen || acc.first != 0 || acc.last != 1378000000000 {
		t.Fatalf("span = [%d, %d] seen=%v, want [0, 1378000000000]", acc.first, acc.last, acc.seen)
	}

	// Merging preserves the epoch-zero first observation.
	other := newSpanAcc()
	other.observe(tweet.Tweet{TS: 1378000001000, Lat: -27.5, Lon: 153.0})
	acc.merge(&other)
	if acc.first != 0 || acc.last != 1378000001000 {
		t.Fatalf("merged span = [%d, %d]", acc.first, acc.last)
	}
	// Merging into an empty accumulator adopts the other side verbatim.
	fresh := newSpanAcc()
	fresh.merge(&acc)
	if fresh.first != 0 || fresh.last != acc.last || !fresh.seen {
		t.Fatalf("merge into empty lost the span: %+v", fresh)
	}
	// An epoch-zero-only stream must still count as seen.
	zero := newSpanAcc()
	zero.observe(tweet.Tweet{TS: 0, Lat: -33.9, Lon: 151.2})
	if !zero.seen || zero.first != 0 || zero.last != 0 {
		t.Fatalf("epoch-zero-only span = %+v", zero)
	}
}

// TestStudyRunEpochZeroFirst drives the sentinel fix end to end: a corpus
// whose earliest tweet is at the epoch must report First = 1970-01-01.
func TestStudyRunEpochZeroFirst(t *testing.T) {
	gen, err := synth.NewGenerator(synth.DefaultConfig(1500, 61, 62))
	if err != nil {
		t.Fatal(err)
	}
	tweets, err := gen.GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	// Prepend an epoch tweet for the first user (keeps (user, time) order).
	epoch := tweets[0]
	epoch.TS = 0
	tweets = append([]tweet.Tweet{epoch}, tweets...)
	res, err := NewStudyWithOptions(SliceSource(tweets), StudyOptions{Workers: 4}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.First.Equal(time.UnixMilli(0).UTC()) {
		t.Errorf("First = %v, want the Unix epoch", res.Stats.First)
	}
}
