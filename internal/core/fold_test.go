package core

import (
	"testing"
	"time"

	"geomob/internal/census"
)

// TestPlanRequest: the exported plan introspection matches the execution
// plan semantics external aggregators (internal/live) depend on.
func TestPlanRequest(t *testing.T) {
	t.Run("zero request is the full study", func(t *testing.T) {
		info, err := PlanRequest(Request{})
		if err != nil {
			t.Fatal(err)
		}
		if len(info.Analyses) != 3 || len(info.Scales) != 3 {
			t.Fatalf("analyses=%v scales=%v", info.Analyses, info.Scales)
		}
		if !info.Stats || !info.Extract || !info.Count || !info.Metro500 {
			t.Fatalf("flags: %+v", info)
		}
		if info.ScaleRadius[0] != census.ScaleNational.SearchRadius() {
			t.Fatalf("national radius %v", info.ScaleRadius[0])
		}
	})
	t.Run("stats only builds no scales", func(t *testing.T) {
		info, err := PlanRequest(Request{Analyses: []Analysis{AnalysisStats}})
		if err != nil {
			t.Fatal(err)
		}
		if len(info.Scales) != 0 || info.Extract || info.Count || info.Metro500 {
			t.Fatalf("stats-only plan grew machinery: %+v", info)
		}
	})
	t.Run("radius override disables the metro variant", func(t *testing.T) {
		info, err := PlanRequest(Request{
			Analyses: []Analysis{AnalysisPopulation},
			Scales:   []census.Scale{census.ScaleMetropolitan, census.ScaleMetropolitan},
			Radius:   750,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(info.Scales) != 1 || info.Scales[0] != census.ScaleMetropolitan {
			t.Fatalf("scales not deduped: %v", info.Scales)
		}
		if info.ScaleRadius[0] != 750 || info.Metro500 {
			t.Fatalf("radius=%v metro=%v", info.ScaleRadius[0], info.Metro500)
		}
	})
	t.Run("window normalisation", func(t *testing.T) {
		from := time.UnixMilli(1000).UTC()
		to := time.UnixMilli(5000).UTC()
		info, err := PlanRequest(Request{From: from, To: to})
		if err != nil {
			t.Fatal(err)
		}
		if info.FromTS != 1000 || info.ToTS != 5000 || !info.HasTo {
			t.Fatalf("window: %+v", info)
		}
	})
	t.Run("validation errors propagate", func(t *testing.T) {
		if _, err := PlanRequest(Request{Analyses: []Analysis{"bogus"}}); err == nil {
			t.Error("unknown analysis accepted")
		}
		if _, err := PlanRequest(Request{Radius: -1}); err == nil {
			t.Error("negative radius accepted")
		}
		from := time.UnixMilli(5000).UTC()
		if _, err := PlanRequest(Request{From: from, To: from}); err == nil {
			t.Error("empty window accepted")
		}
	})
}
