// Package core is the paper's primary contribution as a reusable pipeline:
// multi-scale population and mobility estimation from a geo-tagged tweet
// stream. A Study binds a tweet source to the census gazetteer and runs,
// in a single streaming pass, the dataset statistics of Table I, the
// population estimation of §III (Fig. 3) and the mobility extraction and
// model comparison of §IV (Fig. 4, Table II) at the three geographic
// scales.
//
// The streaming pass is sharded and worker-parallel (DESIGN.md §4): when
// the source can split into user-disjoint sub-streams, each worker owns a
// private observer set and the per-shard observers are merged in shard
// order, which makes the result bit-identical to a serial pass regardless
// of the worker count.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"geomob/internal/census"
	"geomob/internal/geo"
	"geomob/internal/mobility"
	"geomob/internal/models"
	"geomob/internal/population"
	"geomob/internal/stats"
	"geomob/internal/tweet"
	"geomob/internal/tweetdb"
)

// Source yields a tweet stream in (user, time) order — the canonical order
// produced by the synthesizer and by compacted tweetdb stores.
type Source = tweet.Source

// ShardedSource is a Source that can split into user-disjoint,
// (user, time)-ordered sub-streams for parallel consumption; see the
// contract on tweet.ShardedSource.
type ShardedSource = tweet.ShardedSource

// SliceSource adapts an in-memory tweet slice (already sorted) to Source.
type SliceSource []tweet.Tweet

// Each implements Source.
func (s SliceSource) Each(fn func(tweet.Tweet) error) error {
	for _, t := range s {
		if err := fn(t); err != nil {
			return err
		}
	}
	return nil
}

// Shards implements ShardedSource by cutting the slice into at most n
// contiguous runs at user boundaries, balanced by tweet count.
func (s SliceSource) Shards(n int) ([]tweet.Source, error) {
	if n < 1 {
		return nil, fmt.Errorf("core: shard count must be positive, got %d", n)
	}
	out := make([]tweet.Source, 0, n)
	start := 0
	for k := 0; k < n && start < len(s); k++ {
		end := start + (len(s)-start)/(n-k)
		if end <= start {
			end = start + 1
		}
		// Never split a user across shards: extend to the next boundary.
		for end < len(s) && s[end].UserID == s[end-1].UserID {
			end++
		}
		out = append(out, s[start:end])
		start = end
	}
	if len(out) == 0 {
		out = append(out, SliceSource(nil))
	}
	return out, nil
}

// EachContext implements tweet.ContextSource: the loop polls ctx every
// few thousand tweets, so a cancelled pass over a large in-memory corpus
// stops promptly.
func (s SliceSource) EachContext(ctx context.Context, fn func(tweet.Tweet) error) error {
	for i, t := range s {
		if i&1023 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if err := fn(t); err != nil {
			return err
		}
	}
	return nil
}

// StoreSource adapts a tweetdb store to Source. The store must be
// compacted (global user/time order); see tweetdb.Store.Compact.
type StoreSource struct {
	Store *tweetdb.Store
	Query tweetdb.Query
}

// Each implements Source.
func (s StoreSource) Each(fn func(tweet.Tweet) error) error {
	it := s.Store.Scan(s.Query)
	defer it.Close()
	for {
		t, ok := it.Next()
		if !ok {
			break
		}
		if err := fn(t); err != nil {
			return err
		}
	}
	return it.Err()
}

// EachContext implements tweet.ContextSource: cancellation is polled
// between records, so a cancelled scan stops after at most one further
// segment decode instead of draining the store.
func (s StoreSource) EachContext(ctx context.Context, fn func(tweet.Tweet) error) error {
	it := s.Store.Scan(s.Query)
	defer it.Close()
	n := 0
	for {
		if n&255 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		n++
		t, ok := it.Next()
		if !ok {
			break
		}
		if err := fn(t); err != nil {
			return err
		}
	}
	return it.Err()
}

// Window implements tweet.TimeWindowed by intersecting the half-open
// [fromTS, toTS) window with the source's query, so a request window
// rides the store's predicate pushdown — pruned segments are never read
// — instead of being filtered after the fact.
func (s StoreSource) Window(fromTS, toTS int64) tweet.Source {
	q := s.Query
	if fromTS > q.FromTS {
		q.FromTS = fromTS
	}
	if toTS != 0 && (q.ToTS == 0 || toTS < q.ToTS) {
		q.ToTS = toTS
	}
	return StoreSource{Store: s.Store, Query: q}
}

// Shards implements ShardedSource: the store's segment metadata is used to
// split the query into user-disjoint ranges (tweetdb.Store.ShardQueries)
// whose scans decode disjoint segment runs concurrently.
func (s StoreSource) Shards(n int) ([]tweet.Source, error) {
	if n < 1 {
		return nil, fmt.Errorf("core: shard count must be positive, got %d", n)
	}
	qs := s.Store.ShardQueries(s.Query, n)
	out := make([]tweet.Source, len(qs))
	for i, q := range qs {
		out[i] = StoreSource{Store: s.Store, Query: q}
	}
	return out, nil
}

// DatasetStats reproduces Table I: the corpus-level statistics.
type DatasetStats struct {
	BBox             geo.BBox  // observed coordinate ranges
	First, Last      time.Time // observed collection period
	Tweets           int64
	Users            int64
	AvgTweetsPerUser float64
	AvgWaitingHours  float64
	AvgLocations     float64 // mean distinct ~5 km geohash cells per user
	// HeavyUsers[k] counts users with more than k tweets, for the paper's
	// thresholds 50, 100, 500 and 1000.
	HeavyUsers map[int]int64

	TweetsPerUser   []float64 // raw per-user counts (Fig. 2a input)
	WaitingSecs     []float64 // raw waiting times in seconds (Fig. 2b input)
	DisplacementsKM []float64 // consecutive-tweet displacements in km (extension)
	GyrationKM      []float64 // per-user radius of gyration in km (extension)

	// MedianGyrationKM and MeanGyrationKM summarise GyrationKM; the median
	// is dominated by single-tweet users (r_g = 0), so the mean is the
	// more informative headline.
	MedianGyrationKM float64
	MeanGyrationKM   float64
}

// StudyOptions configure how a Study executes.
type StudyOptions struct {
	// Workers is the number of parallel stream consumers. Zero means
	// runtime.GOMAXPROCS(0). Sources that do not implement ShardedSource
	// fall back to a single serial pass. The worker count never changes
	// the result: per-shard observers are merged in shard order, so the
	// output is bit-identical to Workers: 1.
	Workers int
}

// Analysis names one family of the paper's deliverables that a Request
// can select independently.
type Analysis string

const (
	// AnalysisStats is the Table I corpus statistics plus the Fig. 2
	// series: counts, waiting times, displacements, gyration radii and
	// the observed bounding box / collection period.
	AnalysisStats Analysis = "stats"
	// AnalysisPopulation is the §III population estimation: per-area
	// unique-user counts, the rescaling fit and correlations (Fig. 3).
	AnalysisPopulation Analysis = "population"
	// AnalysisMobility is the §IV model comparison: OD flows plus the
	// gravity/radiation fits and Table II metrics. It implies the
	// per-scale user counts the models take their populations from.
	AnalysisMobility Analysis = "mobility"
	// AnalysisFlows is the raw OD flow extraction alone — no model
	// fitting and no population rescaling.
	AnalysisFlows Analysis = "flows"
)

// Analyses returns every analysis in canonical order.
func Analyses() []Analysis {
	return []Analysis{AnalysisStats, AnalysisPopulation, AnalysisMobility, AnalysisFlows}
}

// Request scopes one Study execution: which analyses to compute, at which
// scales, over which time window, with which search radius. The zero
// value requests everything Run computes — all analyses at all scales
// over the full stream with the paper's default radii. See DESIGN.md §5
// for the contract.
type Request struct {
	// Analyses selects the deliverable families. Empty means the full
	// study: stats, population and mobility (flows ride along with
	// mobility).
	Analyses []Analysis
	// Scales restricts the geographic scales. Empty means all three.
	Scales []census.Scale
	// From and To bound tweet timestamps to the half-open window
	// [From, To). A zero time leaves that side unbounded. When the
	// source implements tweet.TimeWindowed (tweetdb stores), the window
	// is pushed down into the scan so pruned segments are never
	// decoded; otherwise it is applied in-stream before the observers.
	From, To time.Time
	// Radius overrides the area-search radius ε in metres at every
	// requested scale. Zero keeps each scale's paper default. A
	// non-zero radius also skips the fixed 0.5 km metropolitan variant
	// (Fig. 3b), which only makes sense against the defaults.
	Radius float64
}

// Key renders the request in canonical form: two requests with equal keys
// select the same computation regardless of the order or duplication of
// their Analyses and Scales. Service layers use it as a cache key (paired
// with a source-identity component such as tweetdb.Store.Generation).
func (r Request) Key() string {
	want := analysisSet(r.Analyses)
	var as []string
	for _, a := range Analyses() {
		if want[a] {
			as = append(as, string(a))
		}
	}
	inScale := map[census.Scale]bool{}
	scales := r.Scales
	if len(scales) == 0 {
		scales = census.Scales()
	}
	for _, sc := range scales {
		inScale[sc] = true
	}
	var ss []string
	for _, sc := range census.Scales() {
		if inScale[sc] {
			ss = append(ss, sc.String())
		}
	}
	// Unbounded sides render as "-" so a bound at exactly the epoch
	// (UnixMilli 0) keys differently from no bound at all.
	from, to := "-", "-"
	if !r.From.IsZero() {
		from = strconv.FormatInt(r.From.UnixMilli(), 10)
	}
	if !r.To.IsZero() {
		to = strconv.FormatInt(r.To.UnixMilli(), 10)
	}
	return fmt.Sprintf("a=%s|s=%s|w=[%s,%s)|r=%g",
		strings.Join(as, ","), strings.Join(ss, ","), from, to, r.Radius)
}

// analysisSet normalises the analysis selection: empty selects the full
// study, and flows are dropped when mobility is also selected (mobility
// subsumes them), so equivalent selections share one plan and one key.
func analysisSet(as []Analysis) map[Analysis]bool {
	want := map[Analysis]bool{}
	if len(as) == 0 {
		want[AnalysisStats] = true
		want[AnalysisPopulation] = true
		want[AnalysisMobility] = true
		return want
	}
	for _, a := range as {
		want[a] = true
	}
	if want[AnalysisMobility] {
		delete(want, AnalysisFlows)
	}
	return want
}

// Study is the multi-scale estimation pipeline over one tweet source.
type Study struct {
	src  Source
	gaz  *census.Gazetteer
	opts StudyOptions
}

// NewStudy binds a source to the embedded Australian gazetteer with
// default options (one worker per CPU).
func NewStudy(src Source) *Study {
	return NewStudyWithOptions(src, StudyOptions{})
}

// NewStudyWithOptions binds a source to the embedded Australian gazetteer
// with explicit options.
func NewStudyWithOptions(src Source, opts StudyOptions) *Study {
	return &Study{src: src, gaz: census.Australia(), opts: opts}
}

// workers resolves the configured worker count.
func (s *Study) workers() int {
	if s.opts.Workers > 0 {
		return s.opts.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// ModelFit is one fitted model with its Table II metrics and the Fig. 4
// scatter data.
type ModelFit struct {
	Name    string
	Params  string // human-readable fitted parameters
	Metrics *models.Metrics
	Est     []float64   // estimated traffic per OD pair (Fig. 4 x-axis)
	Obs     []float64   // extracted traffic per OD pair (Fig. 4 y-axis)
	Binned  []stats.Bin // log-binned means (Fig. 4 red dots)
}

// MobilityResult is the §IV analysis for one scale.
type MobilityResult struct {
	Scale     census.Scale
	Flows     *mobility.FlowMatrix
	OD        *models.OD
	Fits      []ModelFit
	TotalFlow float64
	FlowPairs int
}

// Result bundles everything the paper reports. Fields whose analysis was
// not requested stay nil (Execute) — Run fills everything.
type Result struct {
	Stats *DatasetStats

	// Population estimates per requested scale (Fig. 3a). Pooled is the
	// cross-scale correlation, computed when at least two scales were
	// estimated; PopulationMetro500m is the 0.5 km metropolitan variant
	// (Fig. 3b), computed for default-radius requests covering the
	// metropolitan scale.
	Population          map[census.Scale]*population.Estimate
	PopulationMetro500m *population.Estimate
	Pooled              *population.Pooled

	// Mobility holds, per requested scale, the §IV analysis (Fig. 4,
	// Table II) — or, for flows-only requests, just the extracted flow
	// matrix with OD and Fits left nil.
	Mobility map[census.Scale]*MobilityResult

	// Observers is the number of live stream observers each worker ran
	// — the quantity the request-scoped API minimises. A full Run
	// builds eight (three extractors, three counters, the metro 0.5 km
	// counter and the span accumulator); a single-scale flows request
	// builds one.
	Observers int
}

// spanAcc accumulates the corpus bounding box and observation period —
// the remaining Table I inputs — inline with the streaming pass, so the
// source is read exactly once. The seen flag (not a zero sentinel) marks
// whether any tweet was observed, so a legitimate tweet at epoch 0 is
// handled correctly.
type spanAcc struct {
	bbox        geo.BBox
	first, last int64
	seen        bool
}

func newSpanAcc() spanAcc { return spanAcc{bbox: geo.EmptyBBox()} }

func (a *spanAcc) observe(t tweet.Tweet) {
	a.bbox = a.bbox.Extend(t.Point())
	if !a.seen || t.TS < a.first {
		a.first = t.TS
	}
	if !a.seen || t.TS > a.last {
		a.last = t.TS
	}
	a.seen = true
}

// merge folds another accumulator in; min/max reductions are exact and
// order-independent.
func (a *spanAcc) merge(o *spanAcc) {
	if !o.seen {
		return
	}
	a.bbox = a.bbox.Union(o.bbox)
	if !a.seen || o.first < a.first {
		a.first = o.first
	}
	if !a.seen || o.last > a.last {
		a.last = o.last
	}
	a.seen = true
}

// planScale is one requested scale's machinery plus which observers the
// request actually needs there.
type planScale struct {
	scale   census.Scale
	regions census.RegionSet
	// mapper is the spatial assignment machinery; nil on shape-only plans
	// (AssembleFolded, PlanRequest), which never assign a point.
	mapper *mobility.AreaMapper
	// radius is the resolved search radius ε in metres (the request
	// override, or the scale's paper default) — recorded on the plan so
	// assembly does not need the mapper.
	radius  float64
	extract bool // flows or mobility requested: run an Extractor
	count   bool // population or mobility requested: run a UserCounter
}

// requestPlan is the per-request execution plan: the shared, read-only
// per-scale machinery (region sets, immutable area mappers — all workers
// share them) plus which observers the analysis selection needs. Only the
// asked-for observers are ever instantiated. Every tweet is assigned once
// per scale through the shared multi-scale mapper; the per-worker
// observers consume the precomputed assignment vector instead of querying
// a spatial index each.
type requestPlan struct {
	want   map[Analysis]bool
	scales []planScale

	// mapper bundles every distinct (region set, radius) assignment the
	// plan needs — slot i is scale i of the plan, followed by the fixed
	// metro 0.5 km variant at metroSlot — so each tweet's coordinates are
	// resolved exactly once per slot, shared by all observers of all
	// workers. Nil for plans that assign nothing (stats-only).
	mapper *mobility.MultiScaleMapper

	// statsIdx is the index of the scale whose extractor doubles as the
	// (mapper-independent) trajectory-statistics carrier; -1 with stats
	// wanted means a dedicated mapper-less stats extractor runs instead.
	statsIdx  int
	statsOnly bool

	// metro marks that the fixed ε = 0.5 km metropolitan variant
	// (Fig. 3b) is part of the plan; metro500Mapper drives it (nil on
	// shape-only plans) and metroSlot is its position in the shared
	// mapper's output vector.
	metro          bool
	metroRS        census.RegionSet
	metro500Mapper *mobility.AreaMapper
	metroSlot      int

	// fromTS/toTS is the [From, To) window in Unix ms. hasTo (not a zero
	// sentinel) marks whether the window is bounded above, so a bound at
	// exactly the epoch is honoured instead of collapsing to unbounded.
	// filterInStream stays true unless a TimeWindowed source accepted
	// the pushdown.
	fromTS, toTS   int64
	hasTo          bool
	filterInStream bool
}

func (p *requestPlan) wants(a Analysis) bool { return p.want[a] }

// observerCount reports how many live observers one worker of this plan
// runs — the quantity the request-scoped API minimises. Both the
// streaming pass and AssembleFolded derive Result.Observers from it, so
// the two execution paths report identically.
func (p *requestPlan) observerCount() int {
	n := 0
	for _, sc := range p.scales {
		if sc.extract {
			n++
		}
		if sc.count {
			n++
		}
	}
	if p.statsOnly {
		n++ // the dedicated mapper-less stats extractor
	}
	if p.metro {
		n++ // the metro 0.5 km counter
	}
	if p.wants(AnalysisStats) {
		n++ // the span accumulator
	}
	return n
}

// buildPlan validates req against the gazetteer and resolves it into an
// execution plan. The expensive spatial machinery (the grid resolvers
// behind the area mappers) is built only when withMappers is set; a
// shape-only plan carries the scales, radii and observer flags, which is
// all that plan introspection (PlanRequest) and folded assembly
// (AssembleFolded) need.
func buildPlan(gaz *census.Gazetteer, req Request, withMappers bool) (*requestPlan, error) {
	for _, a := range req.Analyses {
		switch a {
		case AnalysisStats, AnalysisPopulation, AnalysisMobility, AnalysisFlows:
		default:
			return nil, fmt.Errorf("core: unknown analysis %q", a)
		}
	}
	if req.Radius < 0 || math.IsNaN(req.Radius) || math.IsInf(req.Radius, 0) {
		return nil, fmt.Errorf("core: search radius must be finite and non-negative, got %v", req.Radius)
	}
	if !req.From.IsZero() && !req.To.IsZero() && !req.To.After(req.From) {
		return nil, fmt.Errorf("core: empty time window [%v, %v)", req.From, req.To)
	}
	p := &requestPlan{want: analysisSet(req.Analyses), statsIdx: -1}
	if !req.From.IsZero() {
		// A From at exactly the epoch coincides with the 0 sentinel's
		// semantics (TS >= 0), so no flag is needed on this side.
		p.fromTS = req.From.UnixMilli()
	}
	if !req.To.IsZero() {
		p.toTS = req.To.UnixMilli()
		p.hasTo = true
	}
	p.filterInStream = p.fromTS != 0 || p.hasTo

	scales := req.Scales
	if len(scales) == 0 {
		scales = census.Scales()
	}
	extract := p.wants(AnalysisMobility) || p.wants(AnalysisFlows)
	count := p.wants(AnalysisMobility) || p.wants(AnalysisPopulation)
	seen := map[census.Scale]bool{}
	// A stats-only request needs no per-scale machinery at all: the
	// trajectory statistics are scale-independent, so no mapper (and no
	// per-tweet nearest-area lookup) is built for it.
	if extract || count {
		for _, scale := range scales {
			if seen[scale] {
				continue
			}
			seen[scale] = true
			rs, err := gaz.Regions(scale)
			if err != nil {
				return nil, fmt.Errorf("core: regions for %s: %w", scale, err)
			}
			radius := req.Radius
			if radius == 0 {
				radius = scale.SearchRadius()
			}
			ps := planScale{
				scale: scale, regions: rs, radius: radius,
				extract: extract, count: count,
			}
			if withMappers {
				ps.mapper, err = mobility.NewAreaMapper(rs, req.Radius)
				if err != nil {
					return nil, fmt.Errorf("core: mapper for %s: %w", scale, err)
				}
			}
			p.scales = append(p.scales, ps)
		}
	}
	if p.wants(AnalysisStats) {
		// The trajectory statistics are mapper-independent, so they ride
		// the first scale's extractor when one runs anyway; a stats-only
		// request gets a dedicated extractor with no area mapping at all.
		if extract && len(p.scales) > 0 {
			p.statsIdx = 0
		} else {
			p.statsOnly = true
		}
	}
	if p.wants(AnalysisPopulation) && req.Radius == 0 && seen[census.ScaleMetropolitan] {
		metroRS, err := gaz.Regions(census.ScaleMetropolitan)
		if err != nil {
			return nil, err
		}
		p.metroRS = metroRS
		p.metro = true
		if withMappers {
			p.metro500Mapper, err = mobility.NewAreaMapper(metroRS, 500)
			if err != nil {
				return nil, err
			}
		}
	}
	if !withMappers {
		return p, nil
	}
	// Bundle every assignment the plan performs into one shared
	// multi-scale mapper: the streaming pass resolves each tweet once per
	// slot and every observer of every worker reads the shared vector.
	if len(p.scales) > 0 || p.metro500Mapper != nil {
		mappers := make([]*mobility.AreaMapper, 0, len(p.scales)+1)
		for _, sc := range p.scales {
			mappers = append(mappers, sc.mapper)
		}
		p.metroSlot = -1
		if p.metro500Mapper != nil {
			p.metroSlot = len(mappers)
			mappers = append(mappers, p.metro500Mapper)
		}
		msm, err := mobility.NewMultiScaleMapper(mappers...)
		if err != nil {
			return nil, fmt.Errorf("core: bundle mappers: %w", err)
		}
		p.mapper = msm
	}
	return p, nil
}

// observerSet is one worker's private observers over the shared plan.
// Slots the plan does not need stay nil — the point of the request-scoped
// design: a single-scale flows request runs one extractor, not the full
// eight-observer set of the everything pass.
type observerSet struct {
	plan       *requestPlan
	extractors []*mobility.Extractor   // parallel to plan.scales; nil unless extract
	counters   []*mobility.UserCounter // parallel to plan.scales; nil unless count
	statsExt   *mobility.Extractor     // mapper-less; only for stats-only plans
	metro500   *mobility.UserCounter
	span       spanAcc
	tweets     int64 // in-window tweets observed; 0 means an empty dataset

	// assign is the per-tweet assignment vector: one area index (or -1)
	// per slot of the plan's shared mapper, filled once per tweet and read
	// by every observer of this set.
	assign []int
}

func newObserverSet(p *requestPlan) *observerSet {
	o := &observerSet{
		plan:       p,
		extractors: make([]*mobility.Extractor, len(p.scales)),
		counters:   make([]*mobility.UserCounter, len(p.scales)),
		span:       newSpanAcc(),
	}
	if p.mapper != nil {
		o.assign = make([]int, p.mapper.Len())
	}
	for i, sc := range p.scales {
		if sc.extract {
			// Only the statistics-carrying extractor pays for the
			// trajectory series; the other scales extract flows lean.
			if i == p.statsIdx {
				o.extractors[i] = mobility.NewExtractor(sc.mapper)
			} else {
				o.extractors[i] = mobility.NewFlowExtractor(sc.mapper)
			}
		}
		if sc.count {
			o.counters[i] = mobility.NewUserCounter(sc.mapper)
		}
	}
	if p.statsOnly {
		o.statsExt = mobility.NewStatsExtractor()
	}
	if p.metro500Mapper != nil {
		o.metro500 = mobility.NewUserCounter(p.metro500Mapper)
	}
	return o
}

// passOutputs are the finalised products of one completed pass — whether
// merged from worker shards (Execute) or folded from materialised bucket
// partials (AssembleFolded). Slices are parallel to the plan's scales;
// slots the plan does not need stay nil.
type passOutputs struct {
	tweets int64
	stats  *mobility.Stats // nil unless the plan wants stats
	span   spanAcc
	counts [][]float64
	flows  []*mobility.FlowMatrix
	metro  []float64
}

// outputs extracts the final observer products of a completed (merged)
// observer set — the values an external bucket fold reproduces.
func (o *observerSet) outputs() *passOutputs {
	p := o.plan
	outs := &passOutputs{
		tweets: o.tweets,
		span:   o.span,
		counts: make([][]float64, len(p.scales)),
		flows:  make([]*mobility.FlowMatrix, len(p.scales)),
	}
	if p.wants(AnalysisStats) {
		statsExt := o.statsExt
		if p.statsIdx >= 0 {
			statsExt = o.extractors[p.statsIdx]
		}
		st := statsExt.Stats()
		outs.stats = &st
	}
	for i := range p.scales {
		if o.counters[i] != nil {
			outs.counts[i] = o.counters[i].Counts()
		}
		if o.extractors[i] != nil {
			outs.flows[i] = o.extractors[i].Flows()
		}
	}
	if o.metro500 != nil {
		outs.metro = o.metro500.Counts()
	}
	return outs
}

// observe feeds one tweet to every live observer, applying the request
// window first when it could not be pushed down into the source. The
// tweet's coordinates are resolved exactly once per assignment slot
// through the plan's shared mapper; the observers consume the precomputed
// assignments.
func (o *observerSet) observe(t tweet.Tweet) error {
	if o.plan.filterInStream {
		if t.TS < o.plan.fromTS || (o.plan.hasTo && t.TS >= o.plan.toTS) {
			return nil
		}
	}
	if err := t.Validate(); err != nil {
		return err
	}
	o.tweets++
	if o.plan.mapper != nil {
		o.plan.mapper.MapAll(t.Point(), o.assign)
	}
	for i := range o.extractors {
		if o.extractors[i] != nil {
			if err := o.extractors[i].ObserveArea(t, o.assign[i]); err != nil {
				return err
			}
		}
		if o.counters[i] != nil {
			if err := o.counters[i].ObserveArea(t, o.assign[i]); err != nil {
				return err
			}
		}
	}
	if o.statsExt != nil {
		if err := o.statsExt.ObserveArea(t, -1); err != nil {
			return err
		}
	}
	if o.metro500 != nil {
		if err := o.metro500.ObserveArea(t, o.assign[o.plan.metroSlot]); err != nil {
			return err
		}
	}
	if o.plan.wants(AnalysisStats) {
		o.span.observe(t)
	}
	return nil
}

// merge folds a later shard's observer set into o, in shard order.
func (o *observerSet) merge(next *observerSet) error {
	for i := range o.extractors {
		if o.extractors[i] != nil {
			if err := o.extractors[i].Merge(next.extractors[i]); err != nil {
				return err
			}
		}
		if o.counters[i] != nil {
			if err := o.counters[i].Merge(next.counters[i]); err != nil {
				return err
			}
		}
	}
	if o.statsExt != nil {
		if err := o.statsExt.Merge(next.statsExt); err != nil {
			return err
		}
	}
	if o.metro500 != nil {
		if err := o.metro500.Merge(next.metro500); err != nil {
			return err
		}
	}
	o.span.merge(&next.span)
	o.tweets += next.tweets
	return nil
}

// shardSource splits src into up to n user-disjoint sub-streams, falling
// back to a single serial shard when the source cannot split.
func shardSource(src Source, n int) ([]Source, error) {
	if n <= 1 {
		return []Source{src}, nil
	}
	ss, ok := src.(ShardedSource)
	if !ok {
		return []Source{src}, nil
	}
	shards, err := ss.Shards(n)
	if err != nil {
		return nil, fmt.Errorf("core: shard source: %w", err)
	}
	if len(shards) == 0 {
		return []Source{src}, nil
	}
	return shards, nil
}

// ErrEmptyDataset reports that the requested source (or time window)
// contained no tweets, so the dataset statistics are undefined. Service
// layers typically map it to a "no data" response rather than a failure.
var ErrEmptyDataset = errors.New("core: empty dataset")

// errShardAborted is the sentinel a worker returns when it stops because a
// sibling shard already failed; it never escapes runSharded.
var errShardAborted = errors.New("core: shard aborted")

// runSharded is the fan-out/merge skeleton shared by Execute, ExtractFlows
// and PopulationAtRadius: one private observer per shard, concurrent
// consumption with cooperative abort on the first failure (so a corrupt
// shard does not leave siblings scanning to completion), then a fold of
// observers [1:] into observer [0] in shard order — the order the merge
// contract (DESIGN.md §4) requires for serial-identical results. Workers
// iterate via tweet.EachContext, so cancelling ctx aborts every shard
// promptly and surfaces ctx.Err().
func runSharded[T any](ctx context.Context, shards []Source, newObs func() T, observe func(T, tweet.Tweet) error, merge func(T, T) error) (T, error) {
	obs := make([]T, len(shards))
	for i := range obs {
		obs[i] = newObs()
	}
	errs := make([]error, len(shards))
	if len(shards) == 1 {
		errs[0] = tweet.EachContext(ctx, shards[0], func(t tweet.Tweet) error { return observe(obs[0], t) })
	} else {
		var aborted atomic.Bool
		var wg sync.WaitGroup
		for i := range shards {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				errs[i] = tweet.EachContext(ctx, shards[i], func(t tweet.Tweet) error {
					if aborted.Load() {
						return errShardAborted
					}
					if err := observe(obs[i], t); err != nil {
						aborted.Store(true)
						return err
					}
					return nil
				})
			}(i)
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil && !errors.Is(err, errShardAborted) {
			var zero T
			return zero, err
		}
	}
	for _, next := range obs[1:] {
		if err := merge(obs[0], next); err != nil {
			var zero T
			return zero, fmt.Errorf("core: merge shards: %w", err)
		}
	}
	return obs[0], nil
}

// Run executes the full study — every analysis at every scale over the
// entire stream. It is Execute with the zero Request on a background
// context, kept as the convenience entry point; its output is identical
// to the pre-request-API pipeline.
func (s *Study) Run() (*Result, error) {
	return s.Execute(context.Background(), Request{})
}

// Execute runs exactly the analyses req selects, in a single sharded pass
// over the source followed by the requested per-scale post-processing.
// The source is read exactly once and only the asked-for observers run;
// the worker count (StudyOptions.Workers) never affects the result.
// Cancelling ctx aborts the pass promptly and returns an error wrapping
// ctx.Err().
func (s *Study) Execute(ctx context.Context, req Request) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	p, err := buildPlan(s.gaz, req, true)
	if err != nil {
		return nil, err
	}
	src := s.src
	if p.filterInStream {
		// Push the time window down into the source when it can scan a
		// restriction natively (tweetdb segment pruning); otherwise the
		// observers filter in-stream, which yields the same substream.
		// An upper bound at exactly the epoch cannot be expressed in the
		// pushdown's 0-means-unbounded encoding and stays in-stream.
		if ws, ok := src.(tweet.TimeWindowed); ok && !(p.hasTo && p.toTS == 0) {
			src = ws.Window(p.fromTS, p.toTS)
			p.filterInStream = false
		}
	}
	shards, err := shardSource(src, s.workers())
	if err != nil {
		return nil, err
	}

	// Fan out one private observer set per shard (mappers shared) and
	// merge in shard order: shards are user-ascending, so the merged
	// observers match a serial pass exactly.
	merged, err := runSharded(ctx, shards,
		func() *observerSet { return newObserverSet(p) },
		(*observerSet).observe,
		(*observerSet).merge)
	if err != nil {
		return nil, fmt.Errorf("core: stream pass: %w", err)
	}
	return assemble(p, merged.outputs())
}

// assemble turns the finalised pass outputs into the requested parts of
// Result. It is shared by the streaming pass and by AssembleFolded, so
// every downstream fit and correlation runs the identical float pipeline
// regardless of how the observer state was produced.
func assemble(p *requestPlan, outs *passOutputs) (*Result, error) {
	// Every analysis is undefined over nothing: an empty source (or a
	// window matching no tweets) is reported uniformly, not as whatever
	// downstream fit happens to fail first.
	if outs.tweets == 0 {
		return nil, ErrEmptyDataset
	}
	res := &Result{Observers: p.observerCount()}
	var err error

	// Table I statistics come from the first scale's extractor (the
	// trajectory statistics are mapper-independent) — or the dedicated
	// mapper-less one — plus the span accumulator from the same pass.
	if p.wants(AnalysisStats) {
		res.Stats, err = buildStats(*outs.stats, &outs.span)
		if err != nil {
			return nil, err
		}
	}

	// Population estimates are computed whenever counters ran (the
	// mobility models need them too) but exposed on the Result only when
	// population was asked for — unrequested fields stay nil, as the
	// Result contract promises. Pooled correlation and the Fig. 3b
	// variant are population-only extras.
	estByScale := map[census.Scale]*population.Estimate{}
	var estimates []*population.Estimate
	for i, sc := range p.scales {
		if !sc.count {
			continue
		}
		est, err := population.NewEstimate(sc.regions, sc.radius, outs.counts[i])
		if err != nil {
			return nil, fmt.Errorf("core: population estimate for %s: %w", sc.scale, err)
		}
		estByScale[sc.scale] = est
		estimates = append(estimates, est)
	}
	if p.wants(AnalysisPopulation) && len(estimates) > 0 {
		res.Population = estByScale
		if len(estimates) >= 2 {
			res.Pooled, err = population.Pool(estimates)
			if err != nil {
				return nil, fmt.Errorf("core: pooled correlation: %w", err)
			}
		}
		if outs.metro != nil {
			res.PopulationMetro500m, err = population.NewEstimate(p.metroRS, 500, outs.metro)
			if err != nil {
				return nil, fmt.Errorf("core: metro 0.5 km estimate: %w", err)
			}
		}
	}

	// Mobility model comparison per scale, with m and n taken from the
	// Twitter-derived populations as in §IV — or, for flows-only
	// requests, just the extracted matrices.
	if p.wants(AnalysisMobility) || p.wants(AnalysisFlows) {
		res.Mobility = map[census.Scale]*MobilityResult{}
		for i, sc := range p.scales {
			if !sc.extract {
				continue
			}
			flows := outs.flows[i]
			if p.wants(AnalysisMobility) {
				mr, err := buildMobility(sc.scale, flows, estByScale[sc.scale].TwitterUsers)
				if err != nil {
					return nil, fmt.Errorf("core: mobility study for %s: %w", sc.scale, err)
				}
				res.Mobility[sc.scale] = mr
			} else {
				mr := &MobilityResult{Scale: sc.scale, Flows: flows, TotalFlow: flows.Total()}
				_, _, pairFlows := flows.Pairs()
				mr.FlowPairs = len(pairFlows)
				res.Mobility[sc.scale] = mr
			}
		}
	}
	return res, nil
}

// buildStats assembles Table I from the pass's trajectory statistics and
// span accumulator.
func buildStats(st mobility.Stats, span *spanAcc) (*DatasetStats, error) {
	ds := &DatasetStats{
		BBox:            span.bbox,
		Tweets:          int64(st.Tweets),
		Users:           int64(st.Users),
		TweetsPerUser:   st.TweetsPerUser,
		WaitingSecs:     st.WaitingSecs,
		DisplacementsKM: st.DisplacementsKM,
		GyrationKM:      st.GyrationKM,
		HeavyUsers:      map[int]int64{},
	}
	if len(st.GyrationKM) > 0 {
		med, err := stats.Median(st.GyrationKM)
		if err != nil {
			return nil, err
		}
		ds.MedianGyrationKM = med
		mean, err := stats.Mean(st.GyrationKM)
		if err != nil {
			return nil, err
		}
		ds.MeanGyrationKM = mean
	}
	if st.Users == 0 || !span.seen {
		return nil, ErrEmptyDataset
	}
	mean, err := stats.Mean(st.TweetsPerUser)
	if err != nil {
		return nil, err
	}
	ds.AvgTweetsPerUser = mean
	if len(st.WaitingSecs) > 0 {
		mw, err := stats.Mean(st.WaitingSecs)
		if err != nil {
			return nil, err
		}
		ds.AvgWaitingHours = mw / 3600
	}
	if len(st.CellsPerUser) > 0 {
		ml, err := stats.Mean(st.CellsPerUser)
		if err != nil {
			return nil, err
		}
		ds.AvgLocations = ml
	}
	for _, threshold := range []int{50, 100, 500, 1000} {
		var count int64
		for _, c := range st.TweetsPerUser {
			if c > float64(threshold) {
				count++
			}
		}
		ds.HeavyUsers[threshold] = count
	}
	ds.First = time.UnixMilli(span.first).UTC()
	ds.Last = time.UnixMilli(span.last).UTC()
	return ds, nil
}

// buildMobility fits and evaluates the three models on one scale's flows.
func buildMobility(scale census.Scale, flows *mobility.FlowMatrix, twitterPop []float64) (*MobilityResult, error) {
	od, err := models.BuildOD(flows.Areas, twitterPop, flows.Flows)
	if err != nil {
		return nil, err
	}
	mr := &MobilityResult{
		Scale:     scale,
		Flows:     flows,
		OD:        od,
		TotalFlow: flows.Total(),
	}
	_, _, pairFlows := flows.Pairs()
	mr.FlowPairs = len(pairFlows)
	for _, m := range models.All() {
		if err := m.Fit(od); err != nil {
			return nil, fmt.Errorf("fit %s: %w", m.Name(), err)
		}
		met, err := models.Evaluate(od, m)
		if err != nil {
			return nil, fmt.Errorf("evaluate %s: %w", m.Name(), err)
		}
		est, obs, binned, err := models.ScatterSeries(od, m, 2)
		if err != nil {
			return nil, fmt.Errorf("scatter %s: %w", m.Name(), err)
		}
		mr.Fits = append(mr.Fits, ModelFit{
			Name:    m.Name(),
			Params:  describeModel(m),
			Metrics: met,
			Est:     est,
			Obs:     obs,
			Binned:  binned,
		})
	}
	return mr, nil
}

// describeModel renders the fitted parameters of a known model.
func describeModel(m models.Model) string {
	switch v := m.(type) {
	case *models.Gravity4:
		return fmt.Sprintf("C=%.3g α=%.3f β=%.3f γ=%.3f", v.C, v.Alpha, v.Beta, v.Gamma)
	case *models.Gravity2:
		return fmt.Sprintf("C=%.3g γ=%.3f", v.C, v.Gamma)
	case *models.Radiation:
		return fmt.Sprintf("C=%.3g", v.C)
	default:
		return ""
	}
}

// ExtractFlows runs the §IV flow extraction alone over the source with the
// given worker count (0 means one per CPU), sharding when the source
// supports it and honouring ctx like Execute. It is the primitive behind
// single-scale flow queries that bring their own mapper; callers wanting
// the standard scales should prefer Execute with AnalysisFlows.
func ExtractFlows(ctx context.Context, src Source, mapper *mobility.AreaMapper, workers int) (*mobility.FlowMatrix, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	shards, err := shardSource(src, workers)
	if err != nil {
		return nil, err
	}
	ext, err := runSharded(ctx, shards,
		func() *mobility.Extractor { return mobility.NewFlowExtractor(mapper) },
		(*mobility.Extractor).Observe,
		(*mobility.Extractor).Merge)
	if err != nil {
		return nil, err
	}
	return ext.Flows(), nil
}

// PopulationAtRadius reruns the §III user counting for one scale at an
// arbitrary search radius — the Fig. 3b / ablation A1 primitive, now a
// thin population-only Execute.
func (s *Study) PopulationAtRadius(scale census.Scale, radius float64) (*population.Estimate, error) {
	res, err := s.Execute(context.Background(), Request{
		Analyses: []Analysis{AnalysisPopulation},
		Scales:   []census.Scale{scale},
		Radius:   radius,
	})
	if err != nil {
		return nil, err
	}
	return res.Population[scale], nil
}
