// Package core is the paper's primary contribution as a reusable pipeline:
// multi-scale population and mobility estimation from a geo-tagged tweet
// stream. A Study binds a tweet source to the census gazetteer and runs,
// in a single streaming pass, the dataset statistics of Table I, the
// population estimation of §III (Fig. 3) and the mobility extraction and
// model comparison of §IV (Fig. 4, Table II) at the three geographic
// scales.
package core

import (
	"fmt"
	"time"

	"geomob/internal/census"
	"geomob/internal/geo"
	"geomob/internal/mobility"
	"geomob/internal/models"
	"geomob/internal/population"
	"geomob/internal/stats"
	"geomob/internal/tweet"
	"geomob/internal/tweetdb"
)

// Source yields a tweet stream in (user, time) order — the canonical order
// produced by the synthesizer and by compacted tweetdb stores.
type Source interface {
	Each(func(tweet.Tweet) error) error
}

// SliceSource adapts an in-memory tweet slice (already sorted) to Source.
type SliceSource []tweet.Tweet

// Each implements Source.
func (s SliceSource) Each(fn func(tweet.Tweet) error) error {
	for _, t := range s {
		if err := fn(t); err != nil {
			return err
		}
	}
	return nil
}

// StoreSource adapts a tweetdb store to Source. The store must be
// compacted (global user/time order); see tweetdb.Store.Compact.
type StoreSource struct {
	Store *tweetdb.Store
	Query tweetdb.Query
}

// Each implements Source.
func (s StoreSource) Each(fn func(tweet.Tweet) error) error {
	it := s.Store.Scan(s.Query)
	for {
		t, ok := it.Next()
		if !ok {
			break
		}
		if err := fn(t); err != nil {
			return err
		}
	}
	return it.Err()
}

// DatasetStats reproduces Table I: the corpus-level statistics.
type DatasetStats struct {
	BBox             geo.BBox  // observed coordinate ranges
	First, Last      time.Time // observed collection period
	Tweets           int64
	Users            int64
	AvgTweetsPerUser float64
	AvgWaitingHours  float64
	AvgLocations     float64 // mean distinct ~5 km geohash cells per user
	// HeavyUsers[k] counts users with more than k tweets, for the paper's
	// thresholds 50, 100, 500 and 1000.
	HeavyUsers map[int]int64

	TweetsPerUser   []float64 // raw per-user counts (Fig. 2a input)
	WaitingSecs     []float64 // raw waiting times in seconds (Fig. 2b input)
	DisplacementsKM []float64 // consecutive-tweet displacements in km (extension)
	GyrationKM      []float64 // per-user radius of gyration in km (extension)

	// MedianGyrationKM and MeanGyrationKM summarise GyrationKM; the median
	// is dominated by single-tweet users (r_g = 0), so the mean is the
	// more informative headline.
	MedianGyrationKM float64
	MeanGyrationKM   float64
}

// Study is the multi-scale estimation pipeline over one tweet source.
type Study struct {
	src Source
	gaz *census.Gazetteer
}

// NewStudy binds a source to the embedded Australian gazetteer.
func NewStudy(src Source) *Study {
	return &Study{src: src, gaz: census.Australia()}
}

// ModelFit is one fitted model with its Table II metrics and the Fig. 4
// scatter data.
type ModelFit struct {
	Name    string
	Params  string // human-readable fitted parameters
	Metrics *models.Metrics
	Est     []float64   // estimated traffic per OD pair (Fig. 4 x-axis)
	Obs     []float64   // extracted traffic per OD pair (Fig. 4 y-axis)
	Binned  []stats.Bin // log-binned means (Fig. 4 red dots)
}

// MobilityResult is the §IV analysis for one scale.
type MobilityResult struct {
	Scale     census.Scale
	Flows     *mobility.FlowMatrix
	OD        *models.OD
	Fits      []ModelFit
	TotalFlow float64
	FlowPairs int
}

// Result bundles everything the paper reports.
type Result struct {
	Stats *DatasetStats

	// Population estimates per scale with the paper's default radii
	// (Fig. 3a), plus the 0.5 km metropolitan variant (Fig. 3b).
	Population          map[census.Scale]*population.Estimate
	PopulationMetro500m *population.Estimate
	Pooled              *population.Pooled

	// Mobility model comparison per scale (Fig. 4, Table II).
	Mobility map[census.Scale]*MobilityResult
}

// Run executes the full study in a single pass over the source followed by
// per-scale model fitting.
func (s *Study) Run() (*Result, error) {
	type scaleObs struct {
		scale     census.Scale
		mapper    *mobility.AreaMapper
		extractor *mobility.Extractor
		counter   *mobility.UserCounter
		regions   census.RegionSet
	}
	var obs []*scaleObs
	for _, scale := range census.Scales() {
		rs, err := s.gaz.Regions(scale)
		if err != nil {
			return nil, fmt.Errorf("core: regions for %s: %w", scale, err)
		}
		mapper, err := mobility.NewAreaMapper(rs, 0)
		if err != nil {
			return nil, fmt.Errorf("core: mapper for %s: %w", scale, err)
		}
		obs = append(obs, &scaleObs{
			scale:     scale,
			mapper:    mapper,
			extractor: mobility.NewExtractor(mapper),
			counter:   mobility.NewUserCounter(mapper),
			regions:   rs,
		})
	}
	// The Fig. 3b variant: metropolitan counting with ε = 0.5 km.
	metroRS, err := s.gaz.Regions(census.ScaleMetropolitan)
	if err != nil {
		return nil, err
	}
	metro500Mapper, err := mobility.NewAreaMapper(metroRS, 500)
	if err != nil {
		return nil, err
	}
	metro500 := mobility.NewUserCounter(metro500Mapper)

	// Single streaming pass.
	err = s.src.Each(func(t tweet.Tweet) error {
		if err := t.Validate(); err != nil {
			return err
		}
		for _, o := range obs {
			if err := o.extractor.Observe(t); err != nil {
				return err
			}
			if err := o.counter.Observe(t); err != nil {
				return err
			}
		}
		return metro500.Observe(t)
	})
	if err != nil {
		return nil, fmt.Errorf("core: stream pass: %w", err)
	}

	res := &Result{
		Population: map[census.Scale]*population.Estimate{},
		Mobility:   map[census.Scale]*MobilityResult{},
	}

	// Table I statistics come from the national-scale extractor (the
	// trajectory statistics are mapper-independent).
	res.Stats, err = buildStats(obs[0].extractor, s.src)
	if err != nil {
		return nil, err
	}

	// Population estimates and the pooled correlation.
	var estimates []*population.Estimate
	for _, o := range obs {
		est, err := population.NewEstimate(o.regions, o.mapper.Radius(), o.counter.Counts())
		if err != nil {
			return nil, fmt.Errorf("core: population estimate for %s: %w", o.scale, err)
		}
		res.Population[o.scale] = est
		estimates = append(estimates, est)
	}
	res.Pooled, err = population.Pool(estimates)
	if err != nil {
		return nil, fmt.Errorf("core: pooled correlation: %w", err)
	}
	res.PopulationMetro500m, err = population.NewEstimate(metroRS, 500, metro500.Counts())
	if err != nil {
		return nil, fmt.Errorf("core: metro 0.5 km estimate: %w", err)
	}

	// Mobility model comparison per scale, with m and n taken from the
	// Twitter-derived populations as in §IV.
	for _, o := range obs {
		mr, err := buildMobility(o.scale, o.extractor.Flows(), res.Population[o.scale].TwitterUsers)
		if err != nil {
			return nil, fmt.Errorf("core: mobility study for %s: %w", o.scale, err)
		}
		res.Mobility[o.scale] = mr
	}
	return res, nil
}

// buildStats assembles Table I from the extractor's trajectory statistics
// plus a cheap second pass for the bbox and period (kept separate so the
// extractor stays scale-agnostic).
func buildStats(e *mobility.Extractor, src Source) (*DatasetStats, error) {
	st := e.Stats()
	ds := &DatasetStats{
		BBox:            geo.EmptyBBox(),
		Tweets:          int64(st.Tweets),
		Users:           int64(st.Users),
		TweetsPerUser:   st.TweetsPerUser,
		WaitingSecs:     st.WaitingSecs,
		DisplacementsKM: st.DisplacementsKM,
		GyrationKM:      st.GyrationKM,
		HeavyUsers:      map[int]int64{},
	}
	if len(st.GyrationKM) > 0 {
		med, err := stats.Median(st.GyrationKM)
		if err != nil {
			return nil, err
		}
		ds.MedianGyrationKM = med
		mean, err := stats.Mean(st.GyrationKM)
		if err != nil {
			return nil, err
		}
		ds.MeanGyrationKM = mean
	}
	if st.Users == 0 {
		return nil, fmt.Errorf("core: empty dataset")
	}
	mean, err := stats.Mean(st.TweetsPerUser)
	if err != nil {
		return nil, err
	}
	ds.AvgTweetsPerUser = mean
	if len(st.WaitingSecs) > 0 {
		mw, err := stats.Mean(st.WaitingSecs)
		if err != nil {
			return nil, err
		}
		ds.AvgWaitingHours = mw / 3600
	}
	if len(st.CellsPerUser) > 0 {
		ml, err := stats.Mean(st.CellsPerUser)
		if err != nil {
			return nil, err
		}
		ds.AvgLocations = ml
	}
	for _, threshold := range []int{50, 100, 500, 1000} {
		var count int64
		for _, c := range st.TweetsPerUser {
			if c > float64(threshold) {
				count++
			}
		}
		ds.HeavyUsers[threshold] = count
	}
	var first, last int64
	err = src.Each(func(t tweet.Tweet) error {
		ds.BBox = ds.BBox.Extend(t.Point())
		if first == 0 || t.TS < first {
			first = t.TS
		}
		if t.TS > last {
			last = t.TS
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("core: stats pass: %w", err)
	}
	ds.First = time.UnixMilli(first).UTC()
	ds.Last = time.UnixMilli(last).UTC()
	return ds, nil
}

// buildMobility fits and evaluates the three models on one scale's flows.
func buildMobility(scale census.Scale, flows *mobility.FlowMatrix, twitterPop []float64) (*MobilityResult, error) {
	od, err := models.BuildOD(flows.Areas, twitterPop, flows.Flows)
	if err != nil {
		return nil, err
	}
	mr := &MobilityResult{
		Scale:     scale,
		Flows:     flows,
		OD:        od,
		TotalFlow: flows.Total(),
	}
	_, _, pairFlows := flows.Pairs()
	mr.FlowPairs = len(pairFlows)
	for _, m := range models.All() {
		if err := m.Fit(od); err != nil {
			return nil, fmt.Errorf("fit %s: %w", m.Name(), err)
		}
		met, err := models.Evaluate(od, m)
		if err != nil {
			return nil, fmt.Errorf("evaluate %s: %w", m.Name(), err)
		}
		est, obs, binned, err := models.ScatterSeries(od, m, 2)
		if err != nil {
			return nil, fmt.Errorf("scatter %s: %w", m.Name(), err)
		}
		mr.Fits = append(mr.Fits, ModelFit{
			Name:    m.Name(),
			Params:  describeModel(m),
			Metrics: met,
			Est:     est,
			Obs:     obs,
			Binned:  binned,
		})
	}
	return mr, nil
}

// describeModel renders the fitted parameters of a known model.
func describeModel(m models.Model) string {
	switch v := m.(type) {
	case *models.Gravity4:
		return fmt.Sprintf("C=%.3g α=%.3f β=%.3f γ=%.3f", v.C, v.Alpha, v.Beta, v.Gamma)
	case *models.Gravity2:
		return fmt.Sprintf("C=%.3g γ=%.3f", v.C, v.Gamma)
	case *models.Radiation:
		return fmt.Sprintf("C=%.3g", v.C)
	default:
		return ""
	}
}

// PopulationAtRadius reruns the §III user counting for one scale at an
// arbitrary search radius — the Fig. 3b / ablation A1 primitive.
func (s *Study) PopulationAtRadius(scale census.Scale, radius float64) (*population.Estimate, error) {
	rs, err := s.gaz.Regions(scale)
	if err != nil {
		return nil, err
	}
	mapper, err := mobility.NewAreaMapper(rs, radius)
	if err != nil {
		return nil, err
	}
	counter := mobility.NewUserCounter(mapper)
	if err := s.src.Each(counter.Observe); err != nil {
		return nil, fmt.Errorf("core: radius pass: %w", err)
	}
	return population.NewEstimate(rs, radius, counter.Counts())
}
