// Package core is the paper's primary contribution as a reusable pipeline:
// multi-scale population and mobility estimation from a geo-tagged tweet
// stream. A Study binds a tweet source to the census gazetteer and runs,
// in a single streaming pass, the dataset statistics of Table I, the
// population estimation of §III (Fig. 3) and the mobility extraction and
// model comparison of §IV (Fig. 4, Table II) at the three geographic
// scales.
//
// The streaming pass is sharded and worker-parallel (DESIGN.md §4): when
// the source can split into user-disjoint sub-streams, each worker owns a
// private observer set and the per-shard observers are merged in shard
// order, which makes the result bit-identical to a serial pass regardless
// of the worker count.
package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"geomob/internal/census"
	"geomob/internal/geo"
	"geomob/internal/mobility"
	"geomob/internal/models"
	"geomob/internal/population"
	"geomob/internal/stats"
	"geomob/internal/tweet"
	"geomob/internal/tweetdb"
)

// Source yields a tweet stream in (user, time) order — the canonical order
// produced by the synthesizer and by compacted tweetdb stores.
type Source = tweet.Source

// ShardedSource is a Source that can split into user-disjoint,
// (user, time)-ordered sub-streams for parallel consumption; see the
// contract on tweet.ShardedSource.
type ShardedSource = tweet.ShardedSource

// SliceSource adapts an in-memory tweet slice (already sorted) to Source.
type SliceSource []tweet.Tweet

// Each implements Source.
func (s SliceSource) Each(fn func(tweet.Tweet) error) error {
	for _, t := range s {
		if err := fn(t); err != nil {
			return err
		}
	}
	return nil
}

// Shards implements ShardedSource by cutting the slice into at most n
// contiguous runs at user boundaries, balanced by tweet count.
func (s SliceSource) Shards(n int) ([]tweet.Source, error) {
	if n < 1 {
		return nil, fmt.Errorf("core: shard count must be positive, got %d", n)
	}
	out := make([]tweet.Source, 0, n)
	start := 0
	for k := 0; k < n && start < len(s); k++ {
		end := start + (len(s)-start)/(n-k)
		if end <= start {
			end = start + 1
		}
		// Never split a user across shards: extend to the next boundary.
		for end < len(s) && s[end].UserID == s[end-1].UserID {
			end++
		}
		out = append(out, s[start:end])
		start = end
	}
	if len(out) == 0 {
		out = append(out, SliceSource(nil))
	}
	return out, nil
}

// StoreSource adapts a tweetdb store to Source. The store must be
// compacted (global user/time order); see tweetdb.Store.Compact.
type StoreSource struct {
	Store *tweetdb.Store
	Query tweetdb.Query
}

// Each implements Source.
func (s StoreSource) Each(fn func(tweet.Tweet) error) error {
	it := s.Store.Scan(s.Query)
	for {
		t, ok := it.Next()
		if !ok {
			break
		}
		if err := fn(t); err != nil {
			return err
		}
	}
	return it.Err()
}

// Shards implements ShardedSource: the store's segment metadata is used to
// split the query into user-disjoint ranges (tweetdb.Store.ShardQueries)
// whose scans decode disjoint segment runs concurrently.
func (s StoreSource) Shards(n int) ([]tweet.Source, error) {
	if n < 1 {
		return nil, fmt.Errorf("core: shard count must be positive, got %d", n)
	}
	qs := s.Store.ShardQueries(s.Query, n)
	out := make([]tweet.Source, len(qs))
	for i, q := range qs {
		out[i] = StoreSource{Store: s.Store, Query: q}
	}
	return out, nil
}

// DatasetStats reproduces Table I: the corpus-level statistics.
type DatasetStats struct {
	BBox             geo.BBox  // observed coordinate ranges
	First, Last      time.Time // observed collection period
	Tweets           int64
	Users            int64
	AvgTweetsPerUser float64
	AvgWaitingHours  float64
	AvgLocations     float64 // mean distinct ~5 km geohash cells per user
	// HeavyUsers[k] counts users with more than k tweets, for the paper's
	// thresholds 50, 100, 500 and 1000.
	HeavyUsers map[int]int64

	TweetsPerUser   []float64 // raw per-user counts (Fig. 2a input)
	WaitingSecs     []float64 // raw waiting times in seconds (Fig. 2b input)
	DisplacementsKM []float64 // consecutive-tweet displacements in km (extension)
	GyrationKM      []float64 // per-user radius of gyration in km (extension)

	// MedianGyrationKM and MeanGyrationKM summarise GyrationKM; the median
	// is dominated by single-tweet users (r_g = 0), so the mean is the
	// more informative headline.
	MedianGyrationKM float64
	MeanGyrationKM   float64
}

// StudyOptions configure how a Study executes.
type StudyOptions struct {
	// Workers is the number of parallel stream consumers. Zero means
	// runtime.GOMAXPROCS(0). Sources that do not implement ShardedSource
	// fall back to a single serial pass. The worker count never changes
	// the result: per-shard observers are merged in shard order, so the
	// output is bit-identical to Workers: 1.
	Workers int
}

// Study is the multi-scale estimation pipeline over one tweet source.
type Study struct {
	src  Source
	gaz  *census.Gazetteer
	opts StudyOptions
}

// NewStudy binds a source to the embedded Australian gazetteer with
// default options (one worker per CPU).
func NewStudy(src Source) *Study {
	return NewStudyWithOptions(src, StudyOptions{})
}

// NewStudyWithOptions binds a source to the embedded Australian gazetteer
// with explicit options.
func NewStudyWithOptions(src Source, opts StudyOptions) *Study {
	return &Study{src: src, gaz: census.Australia(), opts: opts}
}

// workers resolves the configured worker count.
func (s *Study) workers() int {
	if s.opts.Workers > 0 {
		return s.opts.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// ModelFit is one fitted model with its Table II metrics and the Fig. 4
// scatter data.
type ModelFit struct {
	Name    string
	Params  string // human-readable fitted parameters
	Metrics *models.Metrics
	Est     []float64   // estimated traffic per OD pair (Fig. 4 x-axis)
	Obs     []float64   // extracted traffic per OD pair (Fig. 4 y-axis)
	Binned  []stats.Bin // log-binned means (Fig. 4 red dots)
}

// MobilityResult is the §IV analysis for one scale.
type MobilityResult struct {
	Scale     census.Scale
	Flows     *mobility.FlowMatrix
	OD        *models.OD
	Fits      []ModelFit
	TotalFlow float64
	FlowPairs int
}

// Result bundles everything the paper reports.
type Result struct {
	Stats *DatasetStats

	// Population estimates per scale with the paper's default radii
	// (Fig. 3a), plus the 0.5 km metropolitan variant (Fig. 3b).
	Population          map[census.Scale]*population.Estimate
	PopulationMetro500m *population.Estimate
	Pooled              *population.Pooled

	// Mobility model comparison per scale (Fig. 4, Table II).
	Mobility map[census.Scale]*MobilityResult
}

// spanAcc accumulates the corpus bounding box and observation period —
// the remaining Table I inputs — inline with the streaming pass, so the
// source is read exactly once. The seen flag (not a zero sentinel) marks
// whether any tweet was observed, so a legitimate tweet at epoch 0 is
// handled correctly.
type spanAcc struct {
	bbox        geo.BBox
	first, last int64
	seen        bool
}

func newSpanAcc() spanAcc { return spanAcc{bbox: geo.EmptyBBox()} }

func (a *spanAcc) observe(t tweet.Tweet) {
	a.bbox = a.bbox.Extend(t.Point())
	if !a.seen || t.TS < a.first {
		a.first = t.TS
	}
	if !a.seen || t.TS > a.last {
		a.last = t.TS
	}
	a.seen = true
}

// merge folds another accumulator in; min/max reductions are exact and
// order-independent.
func (a *spanAcc) merge(o *spanAcc) {
	if !o.seen {
		return
	}
	a.bbox = a.bbox.Union(o.bbox)
	if !a.seen || o.first < a.first {
		a.first = o.first
	}
	if !a.seen || o.last > a.last {
		a.last = o.last
	}
	a.seen = true
}

// studyPlan holds the shared, read-only per-scale machinery (region sets
// and area mappers). Mappers are immutable after construction, so all
// workers share them.
type studyPlan struct {
	scales []struct {
		scale   census.Scale
		mapper  *mobility.AreaMapper
		regions census.RegionSet
	}
	metroRS        census.RegionSet
	metro500Mapper *mobility.AreaMapper
}

func (s *Study) plan() (*studyPlan, error) {
	p := &studyPlan{}
	for _, scale := range census.Scales() {
		rs, err := s.gaz.Regions(scale)
		if err != nil {
			return nil, fmt.Errorf("core: regions for %s: %w", scale, err)
		}
		mapper, err := mobility.NewAreaMapper(rs, 0)
		if err != nil {
			return nil, fmt.Errorf("core: mapper for %s: %w", scale, err)
		}
		p.scales = append(p.scales, struct {
			scale   census.Scale
			mapper  *mobility.AreaMapper
			regions census.RegionSet
		}{scale, mapper, rs})
	}
	// The Fig. 3b variant: metropolitan counting with ε = 0.5 km.
	metroRS, err := s.gaz.Regions(census.ScaleMetropolitan)
	if err != nil {
		return nil, err
	}
	p.metroRS = metroRS
	p.metro500Mapper, err = mobility.NewAreaMapper(metroRS, 500)
	if err != nil {
		return nil, err
	}
	return p, nil
}

// observerSet is one worker's private observers over the shared plan.
type observerSet struct {
	extractors []*mobility.Extractor
	counters   []*mobility.UserCounter
	metro500   *mobility.UserCounter
	span       spanAcc
}

func newObserverSet(p *studyPlan) *observerSet {
	o := &observerSet{
		metro500: mobility.NewUserCounter(p.metro500Mapper),
		span:     newSpanAcc(),
	}
	for _, sc := range p.scales {
		o.extractors = append(o.extractors, mobility.NewExtractor(sc.mapper))
		o.counters = append(o.counters, mobility.NewUserCounter(sc.mapper))
	}
	return o
}

// observe feeds one tweet to every observer of the set.
func (o *observerSet) observe(t tweet.Tweet) error {
	if err := t.Validate(); err != nil {
		return err
	}
	for i := range o.extractors {
		if err := o.extractors[i].Observe(t); err != nil {
			return err
		}
		if err := o.counters[i].Observe(t); err != nil {
			return err
		}
	}
	if err := o.metro500.Observe(t); err != nil {
		return err
	}
	o.span.observe(t)
	return nil
}

// merge folds a later shard's observer set into o, in shard order.
func (o *observerSet) merge(next *observerSet) error {
	for i := range o.extractors {
		if err := o.extractors[i].Merge(next.extractors[i]); err != nil {
			return err
		}
		if err := o.counters[i].Merge(next.counters[i]); err != nil {
			return err
		}
	}
	if err := o.metro500.Merge(next.metro500); err != nil {
		return err
	}
	o.span.merge(&next.span)
	return nil
}

// shardSource splits src into up to n user-disjoint sub-streams, falling
// back to a single serial shard when the source cannot split.
func shardSource(src Source, n int) ([]Source, error) {
	if n <= 1 {
		return []Source{src}, nil
	}
	ss, ok := src.(ShardedSource)
	if !ok {
		return []Source{src}, nil
	}
	shards, err := ss.Shards(n)
	if err != nil {
		return nil, fmt.Errorf("core: shard source: %w", err)
	}
	if len(shards) == 0 {
		return []Source{src}, nil
	}
	return shards, nil
}

// errShardAborted is the sentinel a worker returns when it stops because a
// sibling shard already failed; it never escapes runSharded.
var errShardAborted = errors.New("core: shard aborted")

// runSharded is the fan-out/merge skeleton shared by Run, ExtractFlows and
// PopulationAtRadius: one private observer per shard, concurrent
// consumption with cooperative abort on the first failure (so a corrupt
// shard does not leave siblings scanning to completion), then a fold of
// observers [1:] into observer [0] in shard order — the order the merge
// contract (DESIGN.md §4) requires for serial-identical results.
func runSharded[T any](shards []Source, newObs func() T, observe func(T, tweet.Tweet) error, merge func(T, T) error) (T, error) {
	obs := make([]T, len(shards))
	for i := range obs {
		obs[i] = newObs()
	}
	errs := make([]error, len(shards))
	if len(shards) == 1 {
		errs[0] = shards[0].Each(func(t tweet.Tweet) error { return observe(obs[0], t) })
	} else {
		var aborted atomic.Bool
		var wg sync.WaitGroup
		for i := range shards {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				errs[i] = shards[i].Each(func(t tweet.Tweet) error {
					if aborted.Load() {
						return errShardAborted
					}
					if err := observe(obs[i], t); err != nil {
						aborted.Store(true)
						return err
					}
					return nil
				})
			}(i)
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil && !errors.Is(err, errShardAborted) {
			var zero T
			return zero, err
		}
	}
	for _, next := range obs[1:] {
		if err := merge(obs[0], next); err != nil {
			var zero T
			return zero, fmt.Errorf("core: merge shards: %w", err)
		}
	}
	return obs[0], nil
}

// Run executes the full study in a single sharded pass over the source
// followed by per-scale model fitting. The source is read exactly once;
// the worker count (StudyOptions.Workers) does not affect the result.
func (s *Study) Run() (*Result, error) {
	p, err := s.plan()
	if err != nil {
		return nil, err
	}
	shards, err := shardSource(s.src, s.workers())
	if err != nil {
		return nil, err
	}

	// Fan out one private observer set per shard (mappers shared) and
	// merge in shard order: shards are user-ascending, so the merged
	// observers match a serial pass exactly.
	merged, err := runSharded(shards,
		func() *observerSet { return newObserverSet(p) },
		(*observerSet).observe,
		(*observerSet).merge)
	if err != nil {
		return nil, fmt.Errorf("core: stream pass: %w", err)
	}

	res := &Result{
		Population: map[census.Scale]*population.Estimate{},
		Mobility:   map[census.Scale]*MobilityResult{},
	}

	// Table I statistics come from the national-scale extractor (the
	// trajectory statistics are mapper-independent) plus the span
	// accumulator folded into the same pass.
	res.Stats, err = buildStats(merged.extractors[0], &merged.span)
	if err != nil {
		return nil, err
	}

	// Population estimates and the pooled correlation.
	var estimates []*population.Estimate
	for i, sc := range p.scales {
		est, err := population.NewEstimate(sc.regions, sc.mapper.Radius(), merged.counters[i].Counts())
		if err != nil {
			return nil, fmt.Errorf("core: population estimate for %s: %w", sc.scale, err)
		}
		res.Population[sc.scale] = est
		estimates = append(estimates, est)
	}
	res.Pooled, err = population.Pool(estimates)
	if err != nil {
		return nil, fmt.Errorf("core: pooled correlation: %w", err)
	}
	res.PopulationMetro500m, err = population.NewEstimate(p.metroRS, 500, merged.metro500.Counts())
	if err != nil {
		return nil, fmt.Errorf("core: metro 0.5 km estimate: %w", err)
	}

	// Mobility model comparison per scale, with m and n taken from the
	// Twitter-derived populations as in §IV.
	for i, sc := range p.scales {
		mr, err := buildMobility(sc.scale, merged.extractors[i].Flows(), res.Population[sc.scale].TwitterUsers)
		if err != nil {
			return nil, fmt.Errorf("core: mobility study for %s: %w", sc.scale, err)
		}
		res.Mobility[sc.scale] = mr
	}
	return res, nil
}

// buildStats assembles Table I from the extractor's trajectory statistics
// and the span accumulator, both filled by the single streaming pass.
func buildStats(e *mobility.Extractor, span *spanAcc) (*DatasetStats, error) {
	st := e.Stats()
	ds := &DatasetStats{
		BBox:            span.bbox,
		Tweets:          int64(st.Tweets),
		Users:           int64(st.Users),
		TweetsPerUser:   st.TweetsPerUser,
		WaitingSecs:     st.WaitingSecs,
		DisplacementsKM: st.DisplacementsKM,
		GyrationKM:      st.GyrationKM,
		HeavyUsers:      map[int]int64{},
	}
	if len(st.GyrationKM) > 0 {
		med, err := stats.Median(st.GyrationKM)
		if err != nil {
			return nil, err
		}
		ds.MedianGyrationKM = med
		mean, err := stats.Mean(st.GyrationKM)
		if err != nil {
			return nil, err
		}
		ds.MeanGyrationKM = mean
	}
	if st.Users == 0 || !span.seen {
		return nil, fmt.Errorf("core: empty dataset")
	}
	mean, err := stats.Mean(st.TweetsPerUser)
	if err != nil {
		return nil, err
	}
	ds.AvgTweetsPerUser = mean
	if len(st.WaitingSecs) > 0 {
		mw, err := stats.Mean(st.WaitingSecs)
		if err != nil {
			return nil, err
		}
		ds.AvgWaitingHours = mw / 3600
	}
	if len(st.CellsPerUser) > 0 {
		ml, err := stats.Mean(st.CellsPerUser)
		if err != nil {
			return nil, err
		}
		ds.AvgLocations = ml
	}
	for _, threshold := range []int{50, 100, 500, 1000} {
		var count int64
		for _, c := range st.TweetsPerUser {
			if c > float64(threshold) {
				count++
			}
		}
		ds.HeavyUsers[threshold] = count
	}
	ds.First = time.UnixMilli(span.first).UTC()
	ds.Last = time.UnixMilli(span.last).UTC()
	return ds, nil
}

// buildMobility fits and evaluates the three models on one scale's flows.
func buildMobility(scale census.Scale, flows *mobility.FlowMatrix, twitterPop []float64) (*MobilityResult, error) {
	od, err := models.BuildOD(flows.Areas, twitterPop, flows.Flows)
	if err != nil {
		return nil, err
	}
	mr := &MobilityResult{
		Scale:     scale,
		Flows:     flows,
		OD:        od,
		TotalFlow: flows.Total(),
	}
	_, _, pairFlows := flows.Pairs()
	mr.FlowPairs = len(pairFlows)
	for _, m := range models.All() {
		if err := m.Fit(od); err != nil {
			return nil, fmt.Errorf("fit %s: %w", m.Name(), err)
		}
		met, err := models.Evaluate(od, m)
		if err != nil {
			return nil, fmt.Errorf("evaluate %s: %w", m.Name(), err)
		}
		est, obs, binned, err := models.ScatterSeries(od, m, 2)
		if err != nil {
			return nil, fmt.Errorf("scatter %s: %w", m.Name(), err)
		}
		mr.Fits = append(mr.Fits, ModelFit{
			Name:    m.Name(),
			Params:  describeModel(m),
			Metrics: met,
			Est:     est,
			Obs:     obs,
			Binned:  binned,
		})
	}
	return mr, nil
}

// describeModel renders the fitted parameters of a known model.
func describeModel(m models.Model) string {
	switch v := m.(type) {
	case *models.Gravity4:
		return fmt.Sprintf("C=%.3g α=%.3f β=%.3f γ=%.3f", v.C, v.Alpha, v.Beta, v.Gamma)
	case *models.Gravity2:
		return fmt.Sprintf("C=%.3g γ=%.3f", v.C, v.Gamma)
	case *models.Radiation:
		return fmt.Sprintf("C=%.3g", v.C)
	default:
		return ""
	}
}

// ExtractFlows runs the §IV flow extraction alone over the source with the
// given worker count (0 means one per CPU), sharding when the source
// supports it. It is the primitive behind single-scale flow queries such
// as mobserve's /flows endpoint.
func ExtractFlows(src Source, mapper *mobility.AreaMapper, workers int) (*mobility.FlowMatrix, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	shards, err := shardSource(src, workers)
	if err != nil {
		return nil, err
	}
	ext, err := runSharded(shards,
		func() *mobility.Extractor { return mobility.NewExtractor(mapper) },
		(*mobility.Extractor).Observe,
		(*mobility.Extractor).Merge)
	if err != nil {
		return nil, err
	}
	return ext.Flows(), nil
}

// PopulationAtRadius reruns the §III user counting for one scale at an
// arbitrary search radius — the Fig. 3b / ablation A1 primitive. The
// counting pass shards like Run.
func (s *Study) PopulationAtRadius(scale census.Scale, radius float64) (*population.Estimate, error) {
	rs, err := s.gaz.Regions(scale)
	if err != nil {
		return nil, err
	}
	mapper, err := mobility.NewAreaMapper(rs, radius)
	if err != nil {
		return nil, err
	}
	shards, err := shardSource(s.src, s.workers())
	if err != nil {
		return nil, err
	}
	counter, err := runSharded(shards,
		func() *mobility.UserCounter { return mobility.NewUserCounter(mapper) },
		(*mobility.UserCounter).Observe,
		(*mobility.UserCounter).Merge)
	if err != nil {
		return nil, fmt.Errorf("core: radius pass: %w", err)
	}
	return population.NewEstimate(rs, radius, counter.Counts())
}
