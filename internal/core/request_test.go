package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"reflect"
	"testing"
	"time"

	"geomob/internal/census"
	"geomob/internal/synth"
	"geomob/internal/tweet"
	"geomob/internal/tweetdb"
)

// requestCorpus generates a small deterministic corpus for the request
// API tests.
func requestCorpus(t *testing.T, users int) []tweet.Tweet {
	t.Helper()
	gen, err := synth.NewGenerator(synth.DefaultConfig(users, 77, 78))
	if err != nil {
		t.Fatal(err)
	}
	tweets, err := gen.GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	return tweets
}

// TestExecuteFullMatchesRun is the redesign's compatibility bar: the zero
// Request must reproduce Run bit-identically in every reported quantity,
// and — since the grid-resolved shared mapper replaced the per-observer
// KD-tree walks — the resolver-backed path must stay bit-identical across
// worker counts too.
func TestExecuteFullMatchesRun(t *testing.T) {
	tweets := requestCorpus(t, 3000)
	study := NewStudyWithOptions(SliceSource(tweets), StudyOptions{Workers: 2})
	fromRun, err := study.Run()
	if err != nil {
		t.Fatal(err)
	}
	fromExec, err := study.Execute(context.Background(), Request{})
	if err != nil {
		t.Fatal(err)
	}
	assertResultsIdentical(t, "Run vs Execute(zero)", fromRun, fromExec)
	if fromRun.Observers != 8 || fromExec.Observers != 8 {
		t.Errorf("full study observers = %d / %d, want 8", fromRun.Observers, fromExec.Observers)
	}

	// Shard equivalence on the resolver-backed assignment path: one worker
	// and eight workers share the plan's multi-scale mapper and must agree
	// bit for bit, through Run and Execute alike.
	for _, workers := range []int{1, 8} {
		s := NewStudyWithOptions(SliceSource(tweets), StudyOptions{Workers: workers})
		run, err := s.Run()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		assertResultsIdentical(t, fmt.Sprintf("workers=2 vs workers=%d", workers), fromRun, run)
		exec, err := s.Execute(context.Background(), Request{})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		assertResultsIdentical(t, fmt.Sprintf("Execute workers=%d", workers), fromRun, exec)
	}
}

// TestExecuteFlowsRunsFewerObservers asserts the core promise of the
// request-scoped API: a single-scale flows request instantiates strictly
// fewer observers than the everything pass — one extractor instead of
// eight observers — while extracting the identical matrix.
func TestExecuteFlowsRunsFewerObservers(t *testing.T) {
	tweets := requestCorpus(t, 2000)
	study := NewStudy(SliceSource(tweets))
	full, err := study.Run()
	if err != nil {
		t.Fatal(err)
	}
	flows, err := study.Execute(context.Background(), Request{
		Analyses: []Analysis{AnalysisFlows},
		Scales:   []census.Scale{census.ScaleState},
	})
	if err != nil {
		t.Fatal(err)
	}
	if flows.Observers >= full.Observers {
		t.Errorf("flows request ran %d observers, full run %d: want strictly fewer",
			flows.Observers, full.Observers)
	}
	if flows.Observers != 1 {
		t.Errorf("single-scale flows request ran %d observers, want 1", flows.Observers)
	}
	if flows.Stats != nil || flows.Population != nil || flows.Pooled != nil {
		t.Error("flows-only request filled analyses that were not asked for")
	}
	mr := flows.Mobility[census.ScaleState]
	if mr == nil {
		t.Fatal("flows-only request returned no state-scale result")
	}
	if mr.OD != nil || mr.Fits != nil {
		t.Error("flows-only request fitted models")
	}
	if !reflect.DeepEqual(mr.Flows, full.Mobility[census.ScaleState].Flows) {
		t.Error("flows-only matrix differs from the full run's")
	}
}

// TestExecuteStatsOnly: a stats request runs no mapper at all (the
// mapper-less extractor plus the span accumulator) and reproduces the
// full run's Table I numbers exactly.
func TestExecuteStatsOnly(t *testing.T) {
	tweets := requestCorpus(t, 2000)
	study := NewStudy(SliceSource(tweets))
	full, err := study.Run()
	if err != nil {
		t.Fatal(err)
	}
	statsOnly, err := study.Execute(context.Background(), Request{
		Analyses: []Analysis{AnalysisStats},
	})
	if err != nil {
		t.Fatal(err)
	}
	if statsOnly.Observers != 2 {
		t.Errorf("stats-only request ran %d observers, want 2", statsOnly.Observers)
	}
	if !reflect.DeepEqual(statsOnly.Stats, full.Stats) {
		t.Errorf("stats-only result differs from the full run:\n%+v\nvs\n%+v",
			statsOnly.Stats, full.Stats)
	}
	if statsOnly.Population != nil || statsOnly.Mobility != nil {
		t.Error("stats-only request filled analyses that were not asked for")
	}
}

// TestExecutePopulationSingleScale: a metropolitan population request
// reproduces the full run's estimate and Fig. 3b variant; the pooled
// correlation needs at least two scales and must stay nil.
func TestExecutePopulationSingleScale(t *testing.T) {
	tweets := requestCorpus(t, 2000)
	study := NewStudy(SliceSource(tweets))
	full, err := study.Run()
	if err != nil {
		t.Fatal(err)
	}
	res, err := study.Execute(context.Background(), Request{
		Analyses: []Analysis{AnalysisPopulation},
		Scales:   []census.Scale{census.ScaleMetropolitan},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Population[census.ScaleMetropolitan], full.Population[census.ScaleMetropolitan]) {
		t.Error("single-scale population estimate differs from the full run's")
	}
	if !reflect.DeepEqual(res.PopulationMetro500m, full.PopulationMetro500m) {
		t.Error("metro 0.5 km variant differs from the full run's")
	}
	if res.Pooled != nil {
		t.Error("pooled correlation computed over a single scale")
	}
	if res.Stats != nil || res.Mobility != nil {
		t.Error("population-only request filled analyses that were not asked for")
	}
}

// cancellingSource yields a fixed slice and cancels the study's context
// after `after` tweets, recording how far consumption got. It implements
// neither ShardedSource nor ContextSource, so it exercises the generic
// polling fallback of tweet.EachContext.
type cancellingSource struct {
	tweets   []tweet.Tweet
	cancel   context.CancelFunc
	after    int
	consumed int
}

func (c *cancellingSource) Each(fn func(tweet.Tweet) error) error {
	for i, t := range c.tweets {
		if i == c.after {
			c.cancel()
		}
		c.consumed = i + 1
		if err := fn(t); err != nil {
			return err
		}
	}
	return nil
}

// TestExecuteCancelledMidScan: cancelling the context mid-stream must
// abort the pass promptly — within one polling interval, long before the
// stream ends — and surface ctx.Err().
func TestExecuteCancelledMidScan(t *testing.T) {
	tweets := requestCorpus(t, 2000)
	if len(tweets) < 8000 {
		t.Fatalf("corpus too small for the test: %d tweets", len(tweets))
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	src := &cancellingSource{tweets: tweets, cancel: cancel, after: 1000}
	_, err := NewStudy(src).Execute(ctx, Request{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The fallback poll runs every 1024 tweets: consumption must stop
	// right after the cancellation point, not drain the stream.
	if src.consumed > src.after+1025 {
		t.Errorf("consumed %d tweets after cancelling at %d", src.consumed, src.after)
	}
}

// TestExecutePreCancelled: an already-cancelled context fails before any
// record is read.
func TestExecutePreCancelled(t *testing.T) {
	tweets := requestCorpus(t, 800)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	src := &cancellingSource{tweets: tweets, cancel: func() {}, after: len(tweets)}
	_, err := NewStudy(src).Execute(ctx, Request{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if src.consumed != 0 {
		t.Errorf("consumed %d tweets under a pre-cancelled context", src.consumed)
	}
}

// TestExecuteWindowPushdownMatchesFilter: the same window request must
// yield identical results whether the window is pushed down into the
// store scan (segment pruning) or applied in-stream over a slice.
func TestExecuteWindowPushdownMatchesFilter(t *testing.T) {
	tweets := requestCorpus(t, 2000)
	store, err := tweetdb.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Small segments so the window prunes whole segments, exercising the
	// pushdown rather than just the per-record match.
	if err := store.SetSegmentRecords(2048); err != nil {
		t.Fatal(err)
	}
	if err := store.Append(tweets); err != nil {
		t.Fatal(err)
	}
	if err := store.Compact(); err != nil {
		t.Fatal(err)
	}

	// Both paths must see the same records: the store quantises
	// coordinates (~1e-6°) in its binary encoding, so the in-stream
	// reference reads the round-tripped records back out of the store.
	stored, err := store.Scan(tweetdb.Query{}).ReadAll()
	if err != nil {
		t.Fatal(err)
	}

	req := Request{
		From: time.Date(2013, 10, 15, 0, 0, 0, 0, time.UTC),
		To:   time.Date(2013, 12, 15, 0, 0, 0, 0, time.UTC),
	}
	fromStore, err := NewStudyWithOptions(StoreSource{Store: store}, StudyOptions{Workers: 3}).
		Execute(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	fromSlice, err := NewStudy(SliceSource(stored)).Execute(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	assertResultsIdentical(t, "pushdown vs in-stream filter", fromStore, fromSlice)

	st := fromStore.Stats
	if st.First.Before(req.From) || !st.Last.Before(req.To) {
		t.Errorf("window [%v, %v) not honoured: observed [%v, %v]",
			req.From, req.To, st.First, st.Last)
	}
	full, err := NewStudy(SliceSource(stored)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Tweets >= full.Stats.Tweets {
		t.Errorf("windowed pass saw %d tweets, full pass %d: window did not restrict",
			st.Tweets, full.Stats.Tweets)
	}
}

// TestExecuteEmptyWindowIsEmptyDataset: a valid window containing no
// tweets reports ErrEmptyDataset uniformly for every analysis selection,
// instead of whatever downstream fit fails first.
func TestExecuteEmptyWindowIsEmptyDataset(t *testing.T) {
	tweets := requestCorpus(t, 400)
	study := NewStudy(SliceSource(tweets))
	req := Request{
		From: time.Date(1999, 1, 1, 0, 0, 0, 0, time.UTC),
		To:   time.Date(1999, 2, 1, 0, 0, 0, 0, time.UTC),
	}
	for _, analyses := range [][]Analysis{
		nil,
		{AnalysisStats},
		{AnalysisPopulation},
		{AnalysisFlows},
		{AnalysisMobility},
	} {
		req.Analyses = analyses
		if _, err := study.Execute(context.Background(), req); !errors.Is(err, ErrEmptyDataset) {
			t.Errorf("analyses %v: err = %v, want ErrEmptyDataset", analyses, err)
		}
	}
}

// TestExecuteEpochWindowBoundary: a To bound at exactly the epoch must
// behave as a bound (excluding the whole non-negative-TS corpus), not
// collapse into the 0 "unbounded" sentinel — the same bug class as the
// epoch-sentinel fixes elsewhere in the pipeline.
func TestExecuteEpochWindowBoundary(t *testing.T) {
	tweets := requestCorpus(t, 400)
	study := NewStudy(SliceSource(tweets))
	req := Request{
		Analyses: []Analysis{AnalysisStats},
		From:     time.Date(1969, 1, 1, 0, 0, 0, 0, time.UTC),
		To:       time.UnixMilli(0).UTC(),
	}
	if _, err := study.Execute(context.Background(), req); !errors.Is(err, ErrEmptyDataset) {
		t.Errorf("epoch-bounded window over a post-epoch corpus: err = %v, want ErrEmptyDataset", err)
	}
}

// TestExecuteRejectsBadRequests: malformed requests fail fast, before any
// streaming.
func TestExecuteRejectsBadRequests(t *testing.T) {
	study := NewStudy(SliceSource(nil))
	cases := []Request{
		{Analyses: []Analysis{"sentiment"}},
		{Radius: -1},
		{Radius: math.NaN()},
		{Radius: math.Inf(1)},
		{From: time.Date(2014, 1, 1, 0, 0, 0, 0, time.UTC), To: time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC)},
	}
	for _, req := range cases {
		if _, err := study.Execute(context.Background(), req); err == nil {
			t.Errorf("request %+v: expected an error", req)
		}
	}
}

// TestRequestKeyCanonical: the cache key must not depend on selection
// order or duplication, must equate the zero request with the spelled-out
// default, and must separate genuinely different requests.
func TestRequestKeyCanonical(t *testing.T) {
	zero := Request{}
	spelled := Request{
		Analyses: []Analysis{AnalysisMobility, AnalysisStats, AnalysisPopulation, AnalysisStats},
		Scales: []census.Scale{
			census.ScaleMetropolitan, census.ScaleNational, census.ScaleState, census.ScaleNational,
		},
	}
	if zero.Key() != spelled.Key() {
		t.Errorf("zero key %q != spelled-out default key %q", zero.Key(), spelled.Key())
	}
	distinct := []Request{
		{Analyses: []Analysis{AnalysisFlows}},
		{Analyses: []Analysis{AnalysisFlows}, Scales: []census.Scale{census.ScaleState}},
		{Analyses: []Analysis{AnalysisFlows}, Scales: []census.Scale{census.ScaleState}, Radius: 750},
		{From: time.Date(2013, 10, 1, 0, 0, 0, 0, time.UTC)},
		// A bound at exactly the epoch is a real bound, not "unbounded".
		{To: time.UnixMilli(0).UTC()},
		{From: time.UnixMilli(0).UTC()},
		zero,
	}
	seen := map[string]int{}
	for i, req := range distinct {
		key := req.Key()
		if j, dup := seen[key]; dup {
			t.Errorf("requests %d and %d share key %q", i, j, key)
		}
		seen[key] = i
	}
}
