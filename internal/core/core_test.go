package core

import (
	"testing"
	"time"

	"geomob/internal/census"
	"geomob/internal/synth"
	"geomob/internal/tweet"
	"geomob/internal/tweetdb"
)

// studyResult runs the full pipeline once on a moderate corpus and caches
// it for the package's tests.
var cachedResult *Result

func runStudy(t *testing.T) *Result {
	t.Helper()
	if cachedResult != nil {
		return cachedResult
	}
	gen, err := synth.NewGenerator(synth.DefaultConfig(15000, 42, 43))
	if err != nil {
		t.Fatal(err)
	}
	tweets, err := gen.GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewStudy(SliceSource(tweets)).Run()
	if err != nil {
		t.Fatal(err)
	}
	cachedResult = res
	return res
}

func TestRunProducesTableIStats(t *testing.T) {
	res := runStudy(t)
	st := res.Stats
	if st.Users != 15000 {
		t.Errorf("Users = %d, want 15000", st.Users)
	}
	if st.Tweets < st.Users {
		t.Errorf("Tweets = %d below user count", st.Tweets)
	}
	// Paper regime: 13.3 tweets/user, 35.5 h waiting, 4.76 locations.
	if st.AvgTweetsPerUser < 5 || st.AvgTweetsPerUser > 30 {
		t.Errorf("AvgTweetsPerUser = %.2f", st.AvgTweetsPerUser)
	}
	if st.AvgWaitingHours < 1 || st.AvgWaitingHours > 100 {
		t.Errorf("AvgWaitingHours = %.1f", st.AvgWaitingHours)
	}
	if st.AvgLocations < 1 || st.AvgLocations > 15 {
		t.Errorf("AvgLocations = %.2f", st.AvgLocations)
	}
	// Heavy-user thresholds must be monotone decreasing.
	prev := int64(1 << 62)
	for _, k := range []int{50, 100, 500, 1000} {
		if st.HeavyUsers[k] > prev {
			t.Errorf("heavy user counts not monotone at %d", k)
		}
		prev = st.HeavyUsers[k]
	}
	if st.HeavyUsers[50] == 0 {
		t.Error("no users above 50 tweets — tail too thin")
	}
	// The observed window must sit inside the configured collection period.
	start := time.Date(2013, time.September, 1, 0, 0, 0, 0, time.UTC)
	end := time.Date(2014, time.April, 1, 0, 0, 0, 0, time.UTC)
	if st.First.Before(start) || st.Last.After(end) {
		t.Errorf("period [%v, %v] outside configuration", st.First, st.Last)
	}
	// The observed bbox must be a sub-box of the Australian study region
	// (Table I's coordinate ranges).
	if st.BBox.IsEmpty() {
		t.Fatal("empty observed bbox")
	}
	au := res.Stats.BBox
	if au.MinLat < -54.640302 || au.MaxLat > -9.228819 || au.MinLon < 112.921111 || au.MaxLon > 159.278718 {
		t.Errorf("observed bbox %+v outside Table I ranges", au)
	}
}

func TestRunPopulationEstimates(t *testing.T) {
	res := runStudy(t)
	for _, scale := range census.Scales() {
		est := res.Population[scale]
		if est == nil {
			t.Fatalf("no estimate for %s", scale)
		}
		if len(est.TwitterUsers) != 20 {
			t.Errorf("%s: %d areas", scale, len(est.TwitterUsers))
		}
		if est.C <= 0 {
			t.Errorf("%s: C = %v", scale, est.C)
		}
	}
	// Pooled correlation: the paper's Fig. 3 headline (r=0.816, p=2e-15).
	if res.Pooled.NSamples != 60 {
		t.Errorf("pooled samples = %d, want 60", res.Pooled.NSamples)
	}
	if res.Pooled.TestLog.R < 0.6 {
		t.Errorf("pooled log r = %.3f, want strong positive", res.Pooled.TestLog.R)
	}
	if res.Pooled.TestLog.P > 1e-6 {
		t.Errorf("pooled p = %v, want tiny", res.Pooled.TestLog.P)
	}
}

func TestRunMetro500mDegrades(t *testing.T) {
	res := runStudy(t)
	full, err := res.Population[census.ScaleMetropolitan].Correlation()
	if err != nil {
		t.Fatal(err)
	}
	half, err := res.PopulationMetro500m.Correlation()
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 3b: shrinking ε from 2 km to 0.5 km increases error.
	if half.R >= full.R {
		t.Errorf("ε=0.5km r=%.3f should be below ε=2km r=%.3f", half.R, full.R)
	}
}

func TestRunMobilityModelComparison(t *testing.T) {
	res := runStudy(t)
	for _, scale := range census.Scales() {
		mr := res.Mobility[scale]
		if mr == nil {
			t.Fatalf("no mobility result for %s", scale)
		}
		if mr.TotalFlow <= 0 {
			t.Errorf("%s: no flow extracted", scale)
		}
		if len(mr.Fits) != 3 {
			t.Fatalf("%s: %d fits", scale, len(mr.Fits))
		}
		for _, f := range mr.Fits {
			if f.Metrics.PearsonLog < 0.2 || f.Metrics.PearsonLog > 1 {
				t.Errorf("%s/%s: r = %.3f", scale, f.Name, f.Metrics.PearsonLog)
			}
			if len(f.Est) != len(f.Obs) || len(f.Est) == 0 {
				t.Errorf("%s/%s: scatter empty", scale, f.Name)
			}
			if len(f.Binned) == 0 {
				t.Errorf("%s/%s: no binned points", scale, f.Name)
			}
			if f.Params == "" {
				t.Errorf("%s/%s: no parameter description", scale, f.Name)
			}
		}
		// Table II ordering: gravity beats radiation on Pearson.
		byName := map[string]*ModelFit{}
		for i := range mr.Fits {
			byName[mr.Fits[i].Name] = &mr.Fits[i]
		}
		g2 := byName["Gravity 2Param"]
		rad := byName["Radiation"]
		if g2 == nil || rad == nil {
			t.Fatalf("%s: missing models", scale)
		}
		if g2.Metrics.PearsonLog <= rad.Metrics.PearsonLog {
			t.Errorf("%s: gravity-2 r=%.3f should beat radiation r=%.3f",
				scale, g2.Metrics.PearsonLog, rad.Metrics.PearsonLog)
		}
	}
}

func TestStoreSourceEquivalentToSlice(t *testing.T) {
	gen, err := synth.NewGenerator(synth.DefaultConfig(500, 7, 8))
	if err != nil {
		t.Fatal(err)
	}
	tweets, err := gen.GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	store, err := tweetdb.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Append(tweets); err != nil {
		t.Fatal(err)
	}
	if err := store.Compact(); err != nil {
		t.Fatal(err)
	}
	fromSlice, err := NewStudy(SliceSource(tweets)).Run()
	if err != nil {
		t.Fatal(err)
	}
	fromStore, err := NewStudy(StoreSource{Store: store}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if fromSlice.Stats.Tweets != fromStore.Stats.Tweets {
		t.Errorf("tweet counts differ: %d vs %d", fromSlice.Stats.Tweets, fromStore.Stats.Tweets)
	}
	if fromSlice.Stats.Users != fromStore.Stats.Users {
		t.Errorf("user counts differ")
	}
	for _, scale := range census.Scales() {
		a := fromSlice.Population[scale].TwitterUsers
		b := fromStore.Population[scale].TwitterUsers
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("%s: user counts differ at area %d: %v vs %v", scale, i, a[i], b[i])
			}
		}
	}
}

func TestPopulationAtRadiusSweep(t *testing.T) {
	gen, err := synth.NewGenerator(synth.DefaultConfig(4000, 11, 12))
	if err != nil {
		t.Fatal(err)
	}
	tweets, err := gen.GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	study := NewStudy(SliceSource(tweets))
	var prevUsers float64
	for _, radius := range []float64{250, 1000, 4000} {
		est, err := study.PopulationAtRadius(census.ScaleMetropolitan, radius)
		if err != nil {
			t.Fatal(err)
		}
		var total float64
		for _, u := range est.TwitterUsers {
			total += u
		}
		if total < prevUsers {
			t.Errorf("radius %v captured fewer users (%v) than a smaller radius (%v)", radius, total, prevUsers)
		}
		prevUsers = total
	}
}

func TestRunRejectsInvalidTweets(t *testing.T) {
	bad := SliceSource([]tweet.Tweet{{ID: 1, UserID: 1, TS: 1, Lat: 200, Lon: 0}})
	if _, err := NewStudy(bad).Run(); err == nil {
		t.Error("invalid tweet should abort the run")
	}
}

func TestRunEmptySource(t *testing.T) {
	if _, err := NewStudy(SliceSource(nil)).Run(); err == nil {
		t.Error("empty source should fail")
	}
}
