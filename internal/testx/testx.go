// Package testx holds test-only helpers shared across packages. It is a
// normal (non _test) package so several packages' tests can import it,
// but it must only ever be imported from test files.
package testx

import (
	"math"
	"reflect"

	"geomob/internal/core"
)

// BitEqual reports whether two values are bit-for-bit identical: floats
// compare by their IEEE-754 bits (NaN equals NaN, +0 differs from -0),
// everything else structurally. This is the repo's "bit-identical"
// invariant made executable — reflect.DeepEqual would falsely fail on
// identical NaNs from degenerate correlations.
func BitEqual(a, b reflect.Value) bool {
	if a.Kind() != b.Kind() || a.Type() != b.Type() {
		return false
	}
	switch a.Kind() {
	case reflect.Float32, reflect.Float64:
		return math.Float64bits(a.Float()) == math.Float64bits(b.Float())
	case reflect.Bool:
		return a.Bool() == b.Bool()
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return a.Int() == b.Int()
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		return a.Uint() == b.Uint()
	case reflect.String:
		return a.String() == b.String()
	case reflect.Ptr:
		if a.IsNil() || b.IsNil() {
			return a.IsNil() == b.IsNil()
		}
		if a.Pointer() == b.Pointer() {
			return true
		}
		return BitEqual(a.Elem(), b.Elem())
	case reflect.Interface:
		if a.IsNil() || b.IsNil() {
			return a.IsNil() == b.IsNil()
		}
		return BitEqual(a.Elem(), b.Elem())
	case reflect.Slice:
		if a.IsNil() != b.IsNil() || a.Len() != b.Len() {
			return false
		}
		for i := 0; i < a.Len(); i++ {
			if !BitEqual(a.Index(i), b.Index(i)) {
				return false
			}
		}
		return true
	case reflect.Array:
		for i := 0; i < a.Len(); i++ {
			if !BitEqual(a.Index(i), b.Index(i)) {
				return false
			}
		}
		return true
	case reflect.Map:
		if a.IsNil() != b.IsNil() || a.Len() != b.Len() {
			return false
		}
		for _, k := range a.MapKeys() {
			bv := b.MapIndex(k)
			if !bv.IsValid() || !BitEqual(a.MapIndex(k), bv) {
				return false
			}
		}
		return true
	case reflect.Struct:
		for i := 0; i < a.NumField(); i++ {
			if !BitEqual(a.Field(i), b.Field(i)) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// ValuesBitEqual is BitEqual over arbitrary values.
func ValuesBitEqual(a, b any) bool {
	return BitEqual(reflect.ValueOf(a), reflect.ValueOf(b))
}

// ResultsBitEqual is BitEqual over two study results — the comparison the
// merge-contract property tests (DESIGN.md §4/§7/§8) are stated in.
func ResultsBitEqual(a, b *core.Result) bool {
	return BitEqual(reflect.ValueOf(a), reflect.ValueOf(b))
}
