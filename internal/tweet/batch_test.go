package tweet

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand/v2"
	"strings"
	"testing"
	"testing/quick"
)

// randomBatch builds n records mixing ordinary study-region coordinates
// with wire edge cases: poles, the antimeridian, negative and far-future
// timestamps. The frame codec carries coordinates as raw float64 bits, so
// round trips must be bit-exact — no quantisation tolerance.
func randomBatch(rng *rand.Rand, n int) *Batch {
	b := &Batch{}
	b.Grow(n)
	for i := 0; i < n; i++ {
		tw := Tweet{
			ID:     rng.Int64N(1 << 50),
			UserID: rng.Int64N(1 << 40),
			TS:     rng.Int64N(1<<52) - (1 << 51), // negative and far-future
			Lat:    -90 + rng.Float64()*180,
			Lon:    -180 + rng.Float64()*360,
		}
		switch rng.IntN(10) {
		case 0:
			tw.Lat, tw.Lon = 90, 180 // north pole on the antimeridian
		case 1:
			tw.Lat, tw.Lon = -90, -180
		case 2:
			tw.Lon = 180 // antimeridian, either sign
		case 3:
			tw.Lon = -180
		}
		b.Append(tw)
	}
	return b
}

func batchesEqual(a, b *Batch) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		if a.Row(i) != b.Row(i) {
			return false
		}
	}
	return true
}

func TestBatchFrameRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	var buf bytes.Buffer
	w := NewBatchWriter(&buf)
	var want []*Batch
	records := int64(0)
	for _, n := range []int{1, 7, 1000, 0, 8192} {
		b := randomBatch(rng, n)
		want = append(want, b)
		records += int64(n)
		if err := w.Write(b); err != nil {
			t.Fatal(err)
		}
	}
	if w.Total() != records {
		t.Errorf("Total = %d, want %d records", w.Total(), records)
	}
	r := NewBatchReader(&buf, 0)
	got := &Batch{}
	for i := 0; ; i++ {
		err := r.Read(got)
		if errors.Is(err, io.EOF) {
			if i != len(want) {
				t.Fatalf("read %d frames, want %d", i, len(want))
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if i >= len(want) {
			t.Fatalf("unexpected extra frame %d", i)
		}
		if !batchesEqual(got, want[i]) {
			t.Fatalf("frame %d: round trip mismatch", i)
		}
	}
	// A latched reader keeps returning EOF.
	if err := r.Read(got); !errors.Is(err, io.EOF) {
		t.Errorf("post-EOF read: %v", err)
	}
}

func TestBatchFrameProperty(t *testing.T) {
	f := func(seed uint64, nSeed uint16) bool {
		local := rand.New(rand.NewPCG(seed, uint64(nSeed)))
		b := randomBatch(local, 1+int(nSeed)%257)
		frame, err := AppendFrame(nil, b)
		if err != nil {
			return false
		}
		got := &Batch{}
		if err := NewBatchReader(bytes.NewReader(frame), 0).Read(got); err != nil {
			return false
		}
		return batchesEqual(b, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBatchFrameCorruptColumnCRC(t *testing.T) {
	b := randomBatch(rand.New(rand.NewPCG(31, 32)), 100)
	frame, err := AppendFrame(nil, b)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte inside the first column's data (after the 16-byte
	// frame header and the 8-byte column header).
	corrupt := append([]byte(nil), frame...)
	corrupt[24] ^= 0xff
	got := &Batch{}
	err = NewBatchReader(bytes.NewReader(corrupt), 0).Read(got)
	if err == nil {
		t.Fatal("corrupted column accepted")
	}
	if !strings.Contains(err.Error(), "checksum mismatch") {
		t.Errorf("want checksum error, got %v", err)
	}
}

func TestBatchFrameArbitraryCorruptionNoPanic(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 42))
	b := randomBatch(rng, 64)
	frame, err := AppendFrame(nil, b)
	if err != nil {
		t.Fatal(err)
	}
	got := &Batch{}
	// Every single-byte flip either still round-trips (flips confined to
	// unchecked reserved bits do not exist in this format — every region
	// is length- or CRC-checked) or fails cleanly. Either way: no panic.
	for off := 0; off < len(frame); off++ {
		corrupt := append([]byte(nil), frame...)
		corrupt[off] ^= 0xa5
		r := NewBatchReader(bytes.NewReader(corrupt), 0)
		if err := r.Read(got); err == nil && !batchesEqual(got, b) {
			t.Fatalf("byte %d: silent corruption accepted", off)
		}
	}
	// Random truncations fail cleanly too.
	for i := 0; i < 200; i++ {
		cut := rng.IntN(len(frame))
		r := NewBatchReader(bytes.NewReader(frame[:cut]), 0)
		for {
			if err := r.Read(got); err != nil {
				break
			}
		}
	}
}

func TestBatchFrameSizeLimits(t *testing.T) {
	b := randomBatch(rand.New(rand.NewPCG(51, 52)), 1000)
	frame, err := AppendFrame(nil, b)
	if err != nil {
		t.Fatal(err)
	}
	// A reader with a tight cap refuses the frame with the 413 sentinel.
	err = NewBatchReader(bytes.NewReader(frame), 128).Read(&Batch{})
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("want ErrFrameTooLarge, got %v", err)
	}
	// A corrupt length prefix smaller than the fixed header is rejected
	// before any allocation.
	short := append([]byte(nil), frame...)
	binary.LittleEndian.PutUint32(short[:4], 10)
	err = NewBatchReader(bytes.NewReader(short), 0).Read(&Batch{})
	if err == nil || !strings.Contains(err.Error(), "corrupt batch frame length") {
		t.Errorf("want corrupt-length error, got %v", err)
	}
	// An absurd length prefix trips the default cap rather than an OOM.
	huge := append([]byte(nil), frame...)
	binary.LittleEndian.PutUint32(huge[:4], 1<<31)
	err = NewBatchReader(bytes.NewReader(huge), 0).Read(&Batch{})
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("want ErrFrameTooLarge for absurd prefix, got %v", err)
	}
}

func FuzzBatchFrameDecode(f *testing.F) {
	rng := rand.New(rand.NewPCG(61, 62))
	for _, n := range []int{1, 3, 100} {
		frame, err := AppendFrame(nil, randomBatch(rng, n))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewBatchReader(bytes.NewReader(data), 0)
		b := &Batch{}
		for {
			if err := r.Read(b); err != nil {
				return // clean error or EOF — never a panic
			}
			// Decoded frames must re-encode and re-decode identically.
			frame, err := AppendFrame(nil, b)
			if err != nil {
				t.Fatalf("re-encode of decoded batch: %v", err)
			}
			again := &Batch{}
			if err := NewBatchReader(bytes.NewReader(frame), 0).Read(again); err != nil {
				t.Fatalf("re-decode: %v", err)
			}
			if !batchesEqual(b, again) {
				t.Fatal("re-encode round trip diverged")
			}
		}
	})
}

func TestBatchSortAndValidate(t *testing.T) {
	b := &Batch{}
	for _, tw := range []Tweet{
		{ID: 3, UserID: 2, TS: 100, Lat: 1, Lon: 1},
		{ID: 1, UserID: 1, TS: 300, Lat: 1, Lon: 1},
		{ID: 2, UserID: 1, TS: 200, Lat: 1, Lon: 1},
		{ID: 4, UserID: 2, TS: 100, Lat: 1, Lon: 1},
	} {
		b.Append(tw)
	}
	if b.IsSorted() {
		t.Error("unsorted batch reported sorted")
	}
	b.Sort()
	if !b.IsSorted() {
		t.Error("sorted batch reported unsorted")
	}
	wantIDs := []int64{2, 1, 3, 4}
	for i, id := range wantIDs {
		if b.ID[i] != id {
			t.Fatalf("sort order: got %v", b.ID)
		}
	}
	if err := b.Validate(); err != nil {
		t.Errorf("valid batch rejected: %v", err)
	}
	bad := &Batch{}
	bad.Append(Tweet{ID: 1, UserID: 1, Lat: 95, Lon: 0})
	if err := bad.Validate(); err == nil {
		t.Error("invalid coordinates accepted")
	}
	ragged := &Batch{ID: []int64{1, 2}, UserID: []int64{1}, TS: []int64{1, 2}, Lat: []float64{0, 0}, Lon: []float64{0, 0}}
	if err := ragged.Validate(); err == nil {
		t.Error("ragged batch accepted")
	}
}

func TestBatchSliceAliases(t *testing.T) {
	b := randomBatch(rand.New(rand.NewPCG(71, 72)), 10)
	s := b.Slice(2, 7)
	if s.Len() != 5 {
		t.Fatalf("slice len %d", s.Len())
	}
	for i := 0; i < 5; i++ {
		if s.Row(i) != b.Row(i+2) {
			t.Fatalf("slice row %d mismatch", i)
		}
	}
	// The slice is a view: mutating it shows through.
	s.ID[0] = -99
	if b.ID[2] != -99 {
		t.Error("Slice copied instead of aliasing")
	}
}

func TestBatchOfDoesNotAliasInput(t *testing.T) {
	tweets := []Tweet{validTweet(), validTweet()}
	b := BatchOf(tweets)
	b.ID[0] = 42
	if tweets[0].ID == 42 {
		t.Error("BatchOf aliased the input slice")
	}
	if got := b.Rows(); len(got) != 2 || got[1] != tweets[1] {
		t.Errorf("Rows: %+v", got)
	}
}
