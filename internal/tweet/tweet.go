// Package tweet defines the geo-tagged tweet record the whole pipeline
// consumes — (tweet id, user id, timestamp, coordinate) — together with a
// human-readable NDJSON codec for interchange and a compact delta-encoded
// binary codec used by the tweetdb storage engine.
package tweet

import (
	"fmt"
	"time"

	"geomob/internal/geo"
)

// Tweet is one geo-tagged tweet. This is the entire schema the paper's
// analyses require; free-text content is never needed and never stored.
type Tweet struct {
	ID     int64   `json:"id"`   // unique tweet identifier
	UserID int64   `json:"user"` // author identifier
	TS     int64   `json:"ts"`   // Unix time in milliseconds, UTC
	Lat    float64 `json:"lat"`  // latitude, decimal degrees
	Lon    float64 `json:"lon"`  // longitude, decimal degrees
}

// Time returns the tweet timestamp as a time.Time in UTC.
func (t Tweet) Time() time.Time { return time.UnixMilli(t.TS).UTC() }

// Point returns the tweet coordinate.
func (t Tweet) Point() geo.Point { return geo.Point{Lat: t.Lat, Lon: t.Lon} }

// Validate reports the first structural problem with the record, if any.
func (t Tweet) Validate() error {
	if t.ID < 0 {
		return fmt.Errorf("tweet %d: negative id", t.ID)
	}
	if t.UserID < 0 {
		return fmt.Errorf("tweet %d: negative user id %d", t.ID, t.UserID)
	}
	if !t.Point().Valid() {
		return fmt.Errorf("tweet %d: invalid coordinates (%v, %v)", t.ID, t.Lat, t.Lon)
	}
	return nil
}

// ByUserTime sorts tweets by (UserID, TS, ID); this is the canonical order
// for mobility extraction, which walks consecutive tweets per user.
type ByUserTime []Tweet

func (s ByUserTime) Len() int      { return len(s) }
func (s ByUserTime) Swap(i, j int) { s[i], s[j] = s[j], s[i] }
func (s ByUserTime) Less(i, j int) bool {
	if s[i].UserID != s[j].UserID {
		return s[i].UserID < s[j].UserID
	}
	if s[i].TS != s[j].TS {
		return s[i].TS < s[j].TS
	}
	return s[i].ID < s[j].ID
}

// ByTime sorts tweets chronologically by (TS, ID).
type ByTime []Tweet

func (s ByTime) Len() int      { return len(s) }
func (s ByTime) Swap(i, j int) { s[i], s[j] = s[j], s[i] }
func (s ByTime) Less(i, j int) bool {
	if s[i].TS != s[j].TS {
		return s[i].TS < s[j].TS
	}
	return s[i].ID < s[j].ID
}
