package tweet

// Source yields a tweet stream in (user, time) order — the canonical order
// produced by the synthesizer and by compacted tweetdb stores. Every
// consumer in the repository (the Study pipeline, the mobility observers)
// assumes this order; violations are detected and reported downstream.
type Source interface {
	Each(func(Tweet) error) error
}

// ShardedSource is a Source that can split itself into user-disjoint
// sub-streams for parallel consumption. The contract (see DESIGN.md §4):
//
//   - every shard is itself in (user, time) order;
//   - no user appears in more than one shard;
//   - shards are ordered by user id: all users of shard k precede all
//     users of shard k+1;
//   - the concatenation of the shards in order is exactly the stream the
//     plain Each would yield.
//
// The ordering clause is what lets a parallel consumer merge per-shard
// observers in shard order and obtain results bit-identical to a serial
// pass, even for order-sensitive reductions (floating-point sums over
// per-user series).
type ShardedSource interface {
	Source
	// Shards returns up to n sub-sources satisfying the contract above.
	// Implementations may return fewer shards than requested (a small
	// corpus cannot be split further than one user per shard) but must
	// return at least one when the source is non-empty.
	Shards(n int) ([]Source, error)
}
