package tweet

import "context"

// Source yields a tweet stream in (user, time) order — the canonical order
// produced by the synthesizer and by compacted tweetdb stores. Every
// consumer in the repository (the Study pipeline, the mobility observers)
// assumes this order; violations are detected and reported downstream.
type Source interface {
	Each(func(Tweet) error) error
}

// ShardedSource is a Source that can split itself into user-disjoint
// sub-streams for parallel consumption. The contract (see DESIGN.md §4):
//
//   - every shard is itself in (user, time) order;
//   - no user appears in more than one shard;
//   - shards are ordered by user id: all users of shard k precede all
//     users of shard k+1;
//   - the concatenation of the shards in order is exactly the stream the
//     plain Each would yield.
//
// The ordering clause is what lets a parallel consumer merge per-shard
// observers in shard order and obtain results bit-identical to a serial
// pass, even for order-sensitive reductions (floating-point sums over
// per-user series).
type ShardedSource interface {
	Source
	// Shards returns up to n sub-sources satisfying the contract above.
	// Implementations may return fewer shards than requested (a small
	// corpus cannot be split further than one user per shard) but must
	// return at least one when the source is non-empty.
	Shards(n int) ([]Source, error)
}

// ContextSource is a Source that can honour cancellation natively while
// iterating: EachContext stops and returns ctx.Err() promptly once ctx is
// done, without waiting for the stream to drain. Sources backed by long
// scans (store segments, synthetic generation) implement this so that a
// cancelled request does not keep decoding gigabytes nobody will read.
type ContextSource interface {
	Source
	EachContext(ctx context.Context, fn func(Tweet) error) error
}

// cancelPollMask throttles the fallback cancellation poll in EachContext:
// ctx.Err() is checked once every cancelPollMask+1 tweets, keeping the
// per-tweet overhead negligible while still bounding cancellation latency
// to a few thousand records.
const cancelPollMask = 1<<10 - 1

// EachContext iterates src under ctx. Sources implementing ContextSource
// cancel natively; for any other source the stream is polled every few
// thousand tweets and aborted with ctx.Err() once ctx is done. A nil or
// never-cancelled ctx degrades to a plain Each with no per-tweet overhead.
func EachContext(ctx context.Context, src Source, fn func(Tweet) error) error {
	if ctx == nil {
		return src.Each(fn)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if cs, ok := src.(ContextSource); ok {
		return cs.EachContext(ctx, fn)
	}
	if ctx.Done() == nil {
		return src.Each(fn)
	}
	n := 0
	return src.Each(func(t Tweet) error {
		if n++; n&cancelPollMask == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		return fn(t)
	})
}

// TimeWindowed is a Source that can restrict itself to the half-open
// timestamp window [fromTS, toTS) in Unix milliseconds *before* yielding
// records — the predicate-pushdown hook the request-scoped Study API uses
// so a windowed analysis skips whole storage segments instead of
// post-filtering a full scan. A zero toTS means unbounded above; a zero
// fromTS means unbounded below. The returned Source must yield exactly
// the in-window subsequence of the original stream, in the same order.
type TimeWindowed interface {
	Source
	Window(fromTS, toTS int64) Source
}
