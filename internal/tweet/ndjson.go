package tweet

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// NDJSONWriter streams tweets as newline-delimited JSON, one object per
// line — the standard interchange format for tweet corpora.
type NDJSONWriter struct {
	w   *bufio.Writer
	enc *json.Encoder
	n   int
}

// NewNDJSONWriter wraps w. Call Flush when done.
func NewNDJSONWriter(w io.Writer) *NDJSONWriter {
	bw := bufio.NewWriterSize(w, 1<<16)
	return &NDJSONWriter{w: bw, enc: json.NewEncoder(bw)}
}

// Write appends one tweet as a JSON line. Invalid tweets are rejected.
func (w *NDJSONWriter) Write(t Tweet) error {
	if err := t.Validate(); err != nil {
		return fmt.Errorf("ndjson write: %w", err)
	}
	if err := w.enc.Encode(t); err != nil {
		return fmt.Errorf("ndjson write: %w", err)
	}
	w.n++
	return nil
}

// Count returns the number of tweets written so far.
func (w *NDJSONWriter) Count() int { return w.n }

// Flush drains the internal buffer to the underlying writer.
func (w *NDJSONWriter) Flush() error {
	if err := w.w.Flush(); err != nil {
		return fmt.Errorf("ndjson flush: %w", err)
	}
	return nil
}

// NDJSONReader streams tweets back from newline-delimited JSON.
type NDJSONReader struct {
	sc   *bufio.Scanner
	line int
}

// NewNDJSONReader wraps r. Lines up to 1 MiB are accepted.
func NewNDJSONReader(r io.Reader) *NDJSONReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	return &NDJSONReader{sc: sc}
}

// Read returns the next tweet. It returns io.EOF at the end of the stream,
// and a descriptive error (with line number) for malformed or invalid
// records. Blank lines are skipped.
func (r *NDJSONReader) Read() (Tweet, error) {
	for r.sc.Scan() {
		r.line++
		line := r.sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var t Tweet
		if err := json.Unmarshal(line, &t); err != nil {
			return Tweet{}, r.lineErr(err)
		}
		if err := t.Validate(); err != nil {
			return Tweet{}, r.lineErr(err)
		}
		return t, nil
	}
	if err := r.sc.Err(); err != nil {
		return Tweet{}, fmt.Errorf("ndjson line %d: %w", r.line, err)
	}
	return Tweet{}, io.EOF
}

// lineErr wraps a per-record failure, preferring a pending stream error:
// when the underlying reader failed mid-line (a bounded request body, a
// dropped connection), the scanner still surfaces the truncated tail as
// a final token, and the resulting parse failure is an artifact of the
// transport — the transport error is the one service layers must see
// (e.g. to answer 413 rather than blaming the caller's records).
func (r *NDJSONReader) lineErr(err error) error {
	if serr := r.sc.Err(); serr != nil {
		return fmt.Errorf("ndjson line %d: %w", r.line, serr)
	}
	return fmt.Errorf("ndjson line %d: %w", r.line, err)
}

// ReadAll drains the stream into a slice.
func (r *NDJSONReader) ReadAll() ([]Tweet, error) {
	var out []Tweet
	for {
		t, err := r.Read()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
}
