package tweet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"net/http"
	"sort"

	"geomob/internal/geo"
)

// Batch is the struct-of-arrays form of a tweet slice: one column per
// field, all of equal length. It is the unit of the batched ingest path —
// the wire frame codec below, tweetdb's columnar v2 segments and the live
// aggregator's batch resolvers all consume columns directly, so a record
// never has to materialise as a Tweet value on its way through the hot
// path.
type Batch struct {
	ID     []int64
	UserID []int64
	TS     []int64
	Lat    []float64
	Lon    []float64
}

// Len returns the number of records in the batch.
func (b *Batch) Len() int { return len(b.ID) }

// Reset empties the batch, keeping column capacity for reuse.
func (b *Batch) Reset() {
	b.ID = b.ID[:0]
	b.UserID = b.UserID[:0]
	b.TS = b.TS[:0]
	b.Lat = b.Lat[:0]
	b.Lon = b.Lon[:0]
}

// Grow ensures capacity for n additional records without reallocating.
func (b *Batch) Grow(n int) {
	if need := len(b.ID) + n; need > cap(b.ID) {
		b.ID = append(make([]int64, 0, need), b.ID...)
		b.UserID = append(make([]int64, 0, need), b.UserID...)
		b.TS = append(make([]int64, 0, need), b.TS...)
		b.Lat = append(make([]float64, 0, need), b.Lat...)
		b.Lon = append(make([]float64, 0, need), b.Lon...)
	}
}

// Append adds one record to the batch.
func (b *Batch) Append(t Tweet) {
	b.ID = append(b.ID, t.ID)
	b.UserID = append(b.UserID, t.UserID)
	b.TS = append(b.TS, t.TS)
	b.Lat = append(b.Lat, t.Lat)
	b.Lon = append(b.Lon, t.Lon)
}

// AppendBatch appends every record of o.
func (b *Batch) AppendBatch(o *Batch) {
	b.ID = append(b.ID, o.ID...)
	b.UserID = append(b.UserID, o.UserID...)
	b.TS = append(b.TS, o.TS...)
	b.Lat = append(b.Lat, o.Lat...)
	b.Lon = append(b.Lon, o.Lon...)
}

// Row materialises record i as a Tweet value.
func (b *Batch) Row(i int) Tweet {
	return Tweet{ID: b.ID[i], UserID: b.UserID[i], TS: b.TS[i], Lat: b.Lat[i], Lon: b.Lon[i]}
}

// Rows materialises the whole batch as a fresh Tweet slice.
func (b *Batch) Rows() []Tweet {
	out := make([]Tweet, b.Len())
	for i := range out {
		out[i] = b.Row(i)
	}
	return out
}

// Slice returns a view of records [i, j): the columns alias b, no copy.
func (b *Batch) Slice(i, j int) *Batch {
	return &Batch{
		ID:     b.ID[i:j],
		UserID: b.UserID[i:j],
		TS:     b.TS[i:j],
		Lat:    b.Lat[i:j],
		Lon:    b.Lon[i:j],
	}
}

// BatchOf converts a tweet slice into a fresh batch.
func BatchOf(tweets []Tweet) *Batch {
	b := &Batch{}
	b.Grow(len(tweets))
	for _, t := range tweets {
		b.Append(t)
	}
	return b
}

// Validate reports the first invalid record, column-wise — the batched
// twin of Tweet.Validate, checked once per record for the whole ingest
// path.
func (b *Batch) Validate() error {
	n := b.Len()
	if len(b.UserID) != n || len(b.TS) != n || len(b.Lat) != n || len(b.Lon) != n {
		return fmt.Errorf("batch: ragged columns: id=%d user=%d ts=%d lat=%d lon=%d",
			n, len(b.UserID), len(b.TS), len(b.Lat), len(b.Lon))
	}
	for i := 0; i < n; i++ {
		if b.ID[i] < 0 {
			return fmt.Errorf("batch record %d: negative id %d", i, b.ID[i])
		}
		if b.UserID[i] < 0 {
			return fmt.Errorf("batch record %d: negative user id %d", i, b.UserID[i])
		}
		if !(geo.Point{Lat: b.Lat[i], Lon: b.Lon[i]}).Valid() {
			return fmt.Errorf("batch record %d: invalid coordinates (%v, %v)", i, b.Lat[i], b.Lon[i])
		}
	}
	return nil
}

// IsSorted reports whether the batch is in canonical (user, time, id)
// order — an O(n) scan that lets already-ordered feeds skip the sort
// entirely.
func (b *Batch) IsSorted() bool {
	for i := 1; i < b.Len(); i++ {
		if b.less(i, i-1) {
			return false
		}
	}
	return true
}

func (b *Batch) less(i, j int) bool {
	if b.UserID[i] != b.UserID[j] {
		return b.UserID[i] < b.UserID[j]
	}
	if b.TS[i] != b.TS[j] {
		return b.TS[i] < b.TS[j]
	}
	return b.ID[i] < b.ID[j]
}

func (b *Batch) swap(i, j int) {
	b.ID[i], b.ID[j] = b.ID[j], b.ID[i]
	b.UserID[i], b.UserID[j] = b.UserID[j], b.UserID[i]
	b.TS[i], b.TS[j] = b.TS[j], b.TS[i]
	b.Lat[i], b.Lat[j] = b.Lat[j], b.Lat[i]
	b.Lon[i], b.Lon[j] = b.Lon[j], b.Lon[i]
}

// Sort establishes canonical (user, time, id) order in place, co-sorting
// all columns. Already-sorted batches return after the O(n) check.
func (b *Batch) Sort() {
	if b.IsSorted() {
		return
	}
	sort.Sort((*batchOrder)(b))
}

// batchOrder adapts Batch to sort.Interface by tweet.ByUserTime order.
type batchOrder Batch

func (s *batchOrder) Len() int           { return (*Batch)(s).Len() }
func (s *batchOrder) Less(i, j int) bool { return (*Batch)(s).less(i, j) }
func (s *batchOrder) Swap(i, j int)      { (*Batch)(s).swap(i, j) }

// Microdegrees quantises a coordinate in degrees to microdegrees (1e-6°,
// ~0.11 m), rounding half away from zero — the exact quantisation of the
// v1 row codec, exported so the columnar segment format stays
// bit-compatible with it. Valid coordinates fit int32 (±180e6).
func Microdegrees(deg float64) int32 { return int32(quantiseCoord(deg)) }

// DegreesFromMicro is the inverse of Microdegrees, bit-identical to the
// v1 row codec's decode (float64(micro) / 1e6).
func DegreesFromMicro(m int32) float64 { return float64(m) / coordScale }

// Binary batch frame format. Every frame is one Batch, length-prefixed so
// frames stream back to back over one connection. Following the cluster
// wire codec conventions: little-endian fixed-width integers, magic + u16
// version, coordinates as raw IEEE-754 bits so a binary round-trip is
// bit-exact (unlike the storage codec, the wire does not quantise).
//
//	u32 frameLen            length of everything after this field
//	u32 magic "GMTB"        0x42544d47 little-endian
//	u16 version (1)
//	u16 reserved (0)
//	u32 count               records in the frame
//	5 × column:             id, user, ts (i64), lat, lon (f64 bits)
//	  u32 colLen            column byte length (8 × count)
//	  u32 colCRC            CRC-32 (IEEE) of the column bytes
//	  bytes
const (
	batchMagic   uint32 = 0x42544d47 // "GMTB" little-endian
	batchVersion uint16 = 1
	// batchFixedLen is the frame byte length after the length prefix,
	// excluding the column bytes: magic, version, reserved, count, and
	// five (len, crc) column headers.
	batchFixedLen = 4 + 2 + 2 + 4 + 5*8
)

// BatchContentType is the media type of a binary batch frame stream, the
// content-negotiation key of POST /v1/ingest.
const BatchContentType = "application/x-geomob-batch"

// DefaultMaxFrameBytes bounds a single decoded frame when the reader is
// given no explicit limit — matching the services' default request-body
// bound, so a corrupt or hostile length prefix cannot trigger an
// unbounded allocation.
const DefaultMaxFrameBytes int64 = 64 << 20

// ErrFrameTooLarge marks a frame whose length prefix exceeds the reader's
// limit. Service layers map it to 413, like the other size bounds.
var ErrFrameTooLarge = errors.New("tweet: batch frame exceeds size limit")

// MaxBatchLen is the largest record count a single frame may carry
// (bounded so count × 40 bytes stays within any sane frame limit).
const MaxBatchLen = 1 << 26

// AppendFrame encodes b as one binary frame appended to dst.
func AppendFrame(dst []byte, b *Batch) ([]byte, error) {
	n := b.Len()
	if n > MaxBatchLen {
		return dst, fmt.Errorf("tweet: batch of %d records exceeds the %d frame cap", n, MaxBatchLen)
	}
	frameLen := batchFixedLen + 5*8*n
	need := 4 + frameLen
	off := len(dst)
	dst = append(dst, make([]byte, need)...)
	buf := dst[off:]
	le := binary.LittleEndian
	le.PutUint32(buf[0:4], uint32(frameLen))
	le.PutUint32(buf[4:8], batchMagic)
	le.PutUint16(buf[8:10], batchVersion)
	le.PutUint16(buf[10:12], 0)
	le.PutUint32(buf[12:16], uint32(n))
	p := 16
	putInts := func(col []int64) {
		le.PutUint32(buf[p:], uint32(8*n))
		body := buf[p+8 : p+8+8*n]
		for i, v := range col {
			le.PutUint64(body[8*i:], uint64(v))
		}
		le.PutUint32(buf[p+4:], crc32.ChecksumIEEE(body))
		p += 8 + 8*n
	}
	putFloats := func(col []float64) {
		le.PutUint32(buf[p:], uint32(8*n))
		body := buf[p+8 : p+8+8*n]
		for i, v := range col {
			le.PutUint64(body[8*i:], math.Float64bits(v))
		}
		le.PutUint32(buf[p+4:], crc32.ChecksumIEEE(body))
		p += 8 + 8*n
	}
	putInts(b.ID)
	putInts(b.UserID)
	putInts(b.TS)
	putFloats(b.Lat)
	putFloats(b.Lon)
	return dst, nil
}

// decodeFrame decodes one frame body (everything after the length prefix)
// into b, replacing its contents. Structural errors (magic, version,
// lengths, CRC) are reported without panicking on any input.
func decodeFrame(buf []byte, b *Batch) error {
	if len(buf) < batchFixedLen {
		return fmt.Errorf("tweet: batch frame truncated: %d bytes", len(buf))
	}
	le := binary.LittleEndian
	if m := le.Uint32(buf[0:4]); m != batchMagic {
		return fmt.Errorf("tweet: bad batch frame magic %08x", m)
	}
	if v := le.Uint16(buf[4:6]); v != batchVersion {
		return fmt.Errorf("tweet: unsupported batch frame version %d", v)
	}
	n := int(le.Uint32(buf[8:12]))
	if n > MaxBatchLen {
		return fmt.Errorf("tweet: batch frame count %d exceeds the %d cap", n, MaxBatchLen)
	}
	if want := batchFixedLen + 5*8*n; len(buf) != want {
		return fmt.Errorf("tweet: batch frame of %d records has %d bytes, want %d", n, len(buf), want)
	}
	b.Reset()
	b.Grow(n)
	p := 12
	col := func(name string) ([]byte, error) {
		colLen := int(le.Uint32(buf[p:]))
		crc := le.Uint32(buf[p+4:])
		if colLen != 8*n {
			return nil, fmt.Errorf("tweet: batch frame column %s: length %d, want %d", name, colLen, 8*n)
		}
		body := buf[p+8 : p+8+colLen]
		if got := crc32.ChecksumIEEE(body); got != crc {
			return nil, fmt.Errorf("tweet: batch frame column %s: checksum mismatch (stored %08x, computed %08x)", name, crc, got)
		}
		p += 8 + colLen
		return body, nil
	}
	ints := func(name string, dst *[]int64) error {
		body, err := col(name)
		if err != nil {
			return err
		}
		out := (*dst)[:0]
		for i := 0; i < n; i++ {
			out = append(out, int64(le.Uint64(body[8*i:])))
		}
		*dst = out
		return nil
	}
	floats := func(name string, dst *[]float64) error {
		body, err := col(name)
		if err != nil {
			return err
		}
		out := (*dst)[:0]
		for i := 0; i < n; i++ {
			out = append(out, math.Float64frombits(le.Uint64(body[8*i:])))
		}
		*dst = out
		return nil
	}
	if err := ints("id", &b.ID); err != nil {
		return err
	}
	if err := ints("user", &b.UserID); err != nil {
		return err
	}
	if err := ints("ts", &b.TS); err != nil {
		return err
	}
	if err := floats("lat", &b.Lat); err != nil {
		return err
	}
	return floats("lon", &b.Lon)
}

// BatchWriter streams batches as binary frames onto w.
type BatchWriter struct {
	w   io.Writer
	buf []byte
	n   int64
}

// NewBatchWriter wraps w.
func NewBatchWriter(w io.Writer) *BatchWriter { return &BatchWriter{w: w} }

// Write encodes b as one frame and writes it out.
func (w *BatchWriter) Write(b *Batch) error {
	buf, err := AppendFrame(w.buf[:0], b)
	if err != nil {
		return err
	}
	w.buf = buf
	if _, err := w.w.Write(buf); err != nil {
		return err
	}
	w.n += int64(b.Len())
	return nil
}

// Total returns the number of records written.
func (w *BatchWriter) Total() int64 { return w.n }

// BatchReader streams binary frames off r.
type BatchReader struct {
	r        io.Reader
	maxFrame int64
	buf      []byte
	err      error
}

// NewBatchReader wraps r, bounding single frames at maxFrame bytes
// (DefaultMaxFrameBytes when maxFrame <= 0).
func NewBatchReader(r io.Reader, maxFrame int64) *BatchReader {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrameBytes
	}
	return &BatchReader{r: r, maxFrame: maxFrame}
}

// Read decodes the next frame into b, replacing its contents. At a clean
// end of stream it returns io.EOF. A stream error from the underlying
// reader (e.g. http.MaxBytesError from a bounded request body) is
// returned as-is so transport bounds keep their status mapping; a frame
// whose length prefix exceeds the reader's limit returns
// ErrFrameTooLarge; structural corruption returns a descriptive error. No
// input makes Read panic.
func (r *BatchReader) Read(b *Batch) error {
	if r.err != nil {
		return r.err
	}
	var pfx [4]byte
	if _, err := io.ReadFull(r.r, pfx[:]); err != nil {
		if errors.Is(err, io.EOF) {
			r.err = io.EOF
			return io.EOF
		}
		r.err = r.streamErr(err, "frame length")
		return r.err
	}
	frameLen := int64(binary.LittleEndian.Uint32(pfx[:]))
	if frameLen > r.maxFrame {
		r.err = fmt.Errorf("%w: frame of %d bytes, limit %d", ErrFrameTooLarge, frameLen, r.maxFrame)
		return r.err
	}
	if frameLen < batchFixedLen {
		r.err = fmt.Errorf("tweet: corrupt batch frame length %d", frameLen)
		return r.err
	}
	if int64(cap(r.buf)) < frameLen {
		r.buf = make([]byte, frameLen)
	}
	buf := r.buf[:frameLen]
	if _, err := io.ReadFull(r.r, buf); err != nil {
		r.err = r.streamErr(err, "frame body")
		return r.err
	}
	if err := decodeFrame(buf, b); err != nil {
		r.err = err
		return err
	}
	return nil
}

// streamErr wraps an underlying read failure, preserving transport
// sentinels (http.MaxBytesError, unexpected EOF) in the chain.
func (r *BatchReader) streamErr(err error, what string) error {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return fmt.Errorf("tweet: batch %s: %w", what, err)
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return fmt.Errorf("tweet: truncated batch %s: %w", what, io.ErrUnexpectedEOF)
	}
	return fmt.Errorf("tweet: batch %s: %w", what, err)
}
