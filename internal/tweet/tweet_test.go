package tweet

import (
	"bytes"
	"errors"
	"io"
	"math"
	"math/rand/v2"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func validTweet() Tweet {
	return Tweet{ID: 1, UserID: 2, TS: 1380000000000, Lat: -33.8688, Lon: 151.2093}
}

func TestTweetAccessors(t *testing.T) {
	tw := validTweet()
	if got := tw.Time(); !got.Equal(time.UnixMilli(1380000000000)) {
		t.Errorf("Time() = %v", got)
	}
	if tw.Time().Location() != time.UTC {
		t.Error("Time() should be UTC")
	}
	p := tw.Point()
	if p.Lat != tw.Lat || p.Lon != tw.Lon {
		t.Error("Point() mismatch")
	}
}

func TestTweetValidate(t *testing.T) {
	if err := validTweet().Validate(); err != nil {
		t.Errorf("valid tweet rejected: %v", err)
	}
	bad := []Tweet{
		{ID: -1, UserID: 1, Lat: 0, Lon: 0},
		{ID: 1, UserID: -2, Lat: 0, Lon: 0},
		{ID: 1, UserID: 1, Lat: 95, Lon: 0},
		{ID: 1, UserID: 1, Lat: 0, Lon: 185},
	}
	for i, tw := range bad {
		if err := tw.Validate(); err == nil {
			t.Errorf("bad tweet %d accepted", i)
		}
	}
}

func TestSortOrders(t *testing.T) {
	tweets := []Tweet{
		{ID: 3, UserID: 2, TS: 100},
		{ID: 1, UserID: 1, TS: 300},
		{ID: 2, UserID: 1, TS: 200},
		{ID: 4, UserID: 2, TS: 100}, // TS tie, larger ID
	}
	byUser := append([]Tweet(nil), tweets...)
	sort.Sort(ByUserTime(byUser))
	wantIDs := []int64{2, 1, 3, 4}
	for i, id := range wantIDs {
		if byUser[i].ID != id {
			t.Fatalf("ByUserTime order: got %v", byUser)
		}
	}
	byTime := append([]Tweet(nil), tweets...)
	sort.Sort(ByTime(byTime))
	wantIDs = []int64{3, 4, 2, 1}
	for i, id := range wantIDs {
		if byTime[i].ID != id {
			t.Fatalf("ByTime order: got %v", byTime)
		}
	}
}

func TestNDJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewNDJSONWriter(&buf)
	tweets := []Tweet{
		{ID: 1, UserID: 10, TS: 1000, Lat: -33.8688, Lon: 151.2093},
		{ID: 2, UserID: 10, TS: 2000, Lat: -37.8136, Lon: 144.9631},
		{ID: 3, UserID: 11, TS: 1500, Lat: -27.4698, Lon: 153.0251},
	}
	for _, tw := range tweets {
		if err := w.Write(tw); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 3 {
		t.Errorf("Count = %d", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := NewNDJSONReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(tweets) {
		t.Fatalf("got %d tweets", len(got))
	}
	for i := range tweets {
		if got[i] != tweets[i] {
			t.Errorf("tweet %d: %+v != %+v", i, got[i], tweets[i])
		}
	}
}

func TestNDJSONWriterRejectsInvalid(t *testing.T) {
	w := NewNDJSONWriter(io.Discard)
	if err := w.Write(Tweet{ID: -1}); err == nil {
		t.Error("invalid tweet should be rejected")
	}
}

func TestNDJSONReaderErrors(t *testing.T) {
	// Malformed JSON.
	r := NewNDJSONReader(strings.NewReader("{bad json\n"))
	if _, err := r.Read(); err == nil || errors.Is(err, io.EOF) {
		t.Error("malformed line should error")
	}
	// Valid JSON but invalid tweet.
	r = NewNDJSONReader(strings.NewReader(`{"id":1,"user":1,"ts":0,"lat":999,"lon":0}` + "\n"))
	if _, err := r.Read(); err == nil || errors.Is(err, io.EOF) {
		t.Error("invalid tweet should error")
	}
	if _, err := r.Read(); err != nil && !errors.Is(err, io.EOF) {
		// After the error the scanner continues; eventually EOF.
		t.Logf("post-error read: %v", err)
	}
	// Blank lines are skipped.
	r = NewNDJSONReader(strings.NewReader("\n\n" + `{"id":1,"user":1,"ts":5,"lat":0,"lon":0}` + "\n\n"))
	all, err := r.ReadAll()
	if err != nil || len(all) != 1 {
		t.Errorf("blank-line handling: %v, %v", all, err)
	}
	// Error line numbers point at the offending line.
	r = NewNDJSONReader(strings.NewReader(`{"id":1,"user":1,"ts":5,"lat":0,"lon":0}` + "\nnot json\n"))
	if _, err := r.Read(); err != nil {
		t.Fatal(err)
	}
	_, err = r.Read()
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("want line-2 error, got %v", err)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	enc := NewEncoder()
	var tweets []Tweet
	ts := int64(1378000000000)
	for u := int64(0); u < 20; u++ {
		for k := 0; k < 50; k++ {
			ts += int64(rng.IntN(100000))
			tw := Tweet{
				ID:     int64(len(tweets)),
				UserID: u,
				TS:     ts,
				Lat:    -34 + rng.Float64(),
				Lon:    150 + rng.Float64(),
			}
			tweets = append(tweets, tw)
			if err := enc.Append(tw); err != nil {
				t.Fatal(err)
			}
		}
	}
	if enc.Len() != len(tweets) {
		t.Fatalf("encoder Len = %d", enc.Len())
	}
	got, err := DecodeAll(enc.Bytes(), enc.Len())
	if err != nil {
		t.Fatal(err)
	}
	for i := range tweets {
		want := tweets[i]
		g := got[i]
		if g.ID != want.ID || g.UserID != want.UserID || g.TS != want.TS {
			t.Fatalf("record %d: %+v != %+v", i, g, want)
		}
		// Coordinates are quantised to microdegrees.
		if d := g.Lat - want.Lat; d > 1e-6 || d < -1e-6 {
			t.Fatalf("record %d lat error %v", i, d)
		}
		if d := g.Lon - want.Lon; d > 1e-6 || d < -1e-6 {
			t.Fatalf("record %d lon error %v", i, d)
		}
	}
}

func TestBinaryCompressionBeatsFixedWidth(t *testing.T) {
	// Sorted-by-user streams must encode well below the 36-byte fixed-width
	// record footprint.
	enc := NewEncoder()
	ts := int64(1378000000000)
	n := 5000
	for i := 0; i < n; i++ {
		ts += 60000
		if err := enc.Append(Tweet{
			ID: int64(i), UserID: int64(i / 100), TS: ts,
			Lat: -33.8688, Lon: 151.2093,
		}); err != nil {
			t.Fatal(err)
		}
	}
	perRecord := float64(len(enc.Bytes())) / float64(n)
	if perRecord > 12 {
		t.Errorf("%.1f bytes/record — delta coding is not engaging", perRecord)
	}
}

func TestBinaryQuantisationProperty(t *testing.T) {
	f := func(latSeed, lonSeed float64, id, user uint32, ts int64) bool {
		lat := mod(latSeed, 90)
		lon := mod(lonSeed, 180)
		tw := Tweet{ID: int64(id), UserID: int64(user), TS: ts % (1 << 48), Lat: lat, Lon: lon}
		enc := NewEncoder()
		if err := enc.Append(tw); err != nil {
			return false
		}
		got, err := DecodeAll(enc.Bytes(), 1)
		if err != nil || len(got) != 1 {
			return false
		}
		g := got[0]
		return g.ID == tw.ID && g.UserID == tw.UserID && g.TS == tw.TS &&
			abs(g.Lat-tw.Lat) <= 5e-7+1e-12 && abs(g.Lon-tw.Lon) <= 5e-7+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBinaryEncoderReset(t *testing.T) {
	enc := NewEncoder()
	if err := enc.Append(validTweet()); err != nil {
		t.Fatal(err)
	}
	enc.Reset()
	if enc.Len() != 0 || len(enc.Bytes()) != 0 {
		t.Error("Reset did not clear the encoder")
	}
	// After reset, deltas restart from the zero tweet.
	if err := enc.Append(validTweet()); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeAll(enc.Bytes(), 1)
	if err != nil || got[0] != validTweet() {
		t.Errorf("post-reset roundtrip: %+v, %v", got, err)
	}
}

func TestBinaryDecodeTruncated(t *testing.T) {
	enc := NewEncoder()
	for i := 0; i < 10; i++ {
		tw := validTweet()
		tw.ID = int64(i)
		if err := enc.Append(tw); err != nil {
			t.Fatal(err)
		}
	}
	full := enc.Bytes()
	if _, err := DecodeAll(full[:len(full)/2], 10); err == nil {
		t.Error("truncated block should fail")
	}
	// Claiming more records than encoded must also fail.
	if _, err := DecodeAll(full, 11); err == nil {
		t.Error("over-claimed record count should fail")
	}
}

func TestBinaryEncoderRejectsInvalid(t *testing.T) {
	enc := NewEncoder()
	if err := enc.Append(Tweet{ID: 1, UserID: 1, Lat: 200, Lon: 0}); err == nil {
		t.Error("invalid tweet should be rejected")
	}
}

func mod(v, m float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, m)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
