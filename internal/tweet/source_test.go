package tweet

import (
	"context"
	"errors"
	"testing"
)

// plainSource is a minimal Source with no ContextSource support, so tests
// exercise the generic polling fallback of EachContext.
type plainSource []Tweet

func (s plainSource) Each(fn func(Tweet) error) error {
	for _, t := range s {
		if err := fn(t); err != nil {
			return err
		}
	}
	return nil
}

func makeTweets(n int) plainSource {
	out := make(plainSource, n)
	for i := range out {
		out[i] = Tweet{ID: int64(i), UserID: int64(i / 4), TS: int64(i) * 1000}
	}
	return out
}

func TestEachContextNilAndBackground(t *testing.T) {
	src := makeTweets(100)
	for _, ctx := range []context.Context{nil, context.Background()} {
		n := 0
		if err := EachContext(ctx, src, func(Tweet) error { n++; return nil }); err != nil {
			t.Fatal(err)
		}
		if n != len(src) {
			t.Errorf("consumed %d of %d tweets", n, len(src))
		}
	}
}

func TestEachContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	n := 0
	err := EachContext(ctx, makeTweets(100), func(Tweet) error { n++; return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n != 0 {
		t.Errorf("consumed %d tweets under a pre-cancelled context", n)
	}
}

// TestEachContextCancelMidStream: after an in-stream cancel, the polling
// fallback must stop within one poll interval instead of draining the
// stream.
func TestEachContextCancelMidStream(t *testing.T) {
	const total, cancelAt = 10000, 100
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	n := 0
	err := EachContext(ctx, makeTweets(total), func(Tweet) error {
		n++
		if n == cancelAt {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n >= total {
		t.Errorf("stream drained to the end despite cancellation")
	}
	if n > cancelAt+cancelPollMask+1 {
		t.Errorf("consumed %d tweets after cancelling at %d", n, cancelAt)
	}
}

// TestEachContextPropagatesCallbackError: a callback failure surfaces
// unchanged, with or without cancellation support in play.
func TestEachContextPropagatesCallbackError(t *testing.T) {
	boom := errors.New("boom")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	err := EachContext(ctx, makeTweets(10), func(tw Tweet) error {
		if tw.ID == 5 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}
