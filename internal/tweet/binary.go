package tweet

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary codec: tweets are serialised as a delta-encoded varint stream.
// Within a block, successive records store zig-zag varint deltas of ID,
// UserID and TS against the previous record, and coordinates as zig-zag
// varint deltas of microdegree-quantised values. On streams sorted by
// (user, time) — tweetdb's segment order — this typically compresses to a
// few bytes per field because a user's consecutive tweets are close in
// both time and space.
//
// Quantisation: coordinates are stored in microdegrees (1e-6°, ~0.11 m),
// far below GPS noise; decoding is therefore lossy only at the seventh
// decimal.

// coordScale converts degrees to microdegrees.
const coordScale = 1e6

// quantiseCoord converts a coordinate in degrees to microdegrees, rounding
// half away from zero.
func quantiseCoord(deg float64) int64 {
	return int64(math.Round(deg * coordScale))
}

// Encoder serialises tweets into an in-memory block.
type Encoder struct {
	buf  []byte
	prev Tweet
	n    int
}

// NewEncoder returns an empty block encoder.
func NewEncoder() *Encoder { return &Encoder{} }

// Append adds one tweet to the block.
func (e *Encoder) Append(t Tweet) error {
	if err := t.Validate(); err != nil {
		return fmt.Errorf("binary encode: %w", err)
	}
	var scratch [binary.MaxVarintLen64]byte
	put := func(v int64) {
		n := binary.PutVarint(scratch[:], v)
		e.buf = append(e.buf, scratch[:n]...)
	}
	put(t.ID - e.prev.ID)
	put(t.UserID - e.prev.UserID)
	put(t.TS - e.prev.TS)
	put(quantiseCoord(t.Lat) - quantiseCoord(e.prev.Lat))
	put(quantiseCoord(t.Lon) - quantiseCoord(e.prev.Lon))
	e.prev = t
	e.n++
	return nil
}

// Len returns the number of encoded records.
func (e *Encoder) Len() int { return e.n }

// Bytes returns the encoded block. The slice aliases the encoder's buffer;
// callers that keep it must copy before further Append calls.
func (e *Encoder) Bytes() []byte { return e.buf }

// Reset clears the encoder for reuse.
func (e *Encoder) Reset() {
	e.buf = e.buf[:0]
	e.prev = Tweet{}
	e.n = 0
}

// Decoder deserialises a block produced by Encoder.
type Decoder struct {
	buf  []byte
	off  int
	prev Tweet
	read int
	n    int
}

// NewDecoder wraps an encoded block holding n records.
func NewDecoder(block []byte, n int) *Decoder {
	return &Decoder{buf: block, n: n}
}

// Next decodes the next record. ok is false when the block is exhausted or
// corrupt; in the corrupt case err explains the problem.
func (d *Decoder) Next() (t Tweet, ok bool, err error) {
	if d.read >= d.n {
		return Tweet{}, false, nil
	}
	get := func() (int64, error) {
		v, n := binary.Varint(d.buf[d.off:])
		if n <= 0 {
			return 0, fmt.Errorf("binary decode: truncated varint at offset %d (record %d of %d)", d.off, d.read, d.n)
		}
		d.off += n
		return v, nil
	}
	var dID, dUser, dTS, dLat, dLon int64
	for _, dst := range []*int64{&dID, &dUser, &dTS, &dLat, &dLon} {
		v, err := get()
		if err != nil {
			return Tweet{}, false, err
		}
		*dst = v
	}
	t = Tweet{
		ID:     d.prev.ID + dID,
		UserID: d.prev.UserID + dUser,
		TS:     d.prev.TS + dTS,
		Lat:    float64(quantiseCoord(d.prev.Lat)+dLat) / coordScale,
		Lon:    float64(quantiseCoord(d.prev.Lon)+dLon) / coordScale,
	}
	d.prev = t
	d.read++
	if err := t.Validate(); err != nil {
		return Tweet{}, false, fmt.Errorf("binary decode: record %d invalid: %w", d.read-1, err)
	}
	return t, true, nil
}

// DecodeAll decodes an entire block of n records.
func DecodeAll(block []byte, n int) ([]Tweet, error) {
	d := NewDecoder(block, n)
	out := make([]Tweet, 0, n)
	for {
		t, ok, err := d.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		out = append(out, t)
	}
	if len(out) != n {
		return nil, fmt.Errorf("binary decode: expected %d records, decoded %d", n, len(out))
	}
	return out, nil
}
