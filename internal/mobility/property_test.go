package mobility

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"geomob/internal/census"
	"geomob/internal/tweet"
)

// randomWalk is a quick.Generator producing multi-user (user, time)-ordered
// streams whose tweets sit exactly on national area centres, so the area
// assignment is unambiguous and flow accounting can be checked exactly.
type randomWalk []tweet.Tweet

// Generate implements quick.Generator (math/rand v1 signature).
func (randomWalk) Generate(r *rand.Rand, size int) reflect.Value {
	rs, err := census.Australia().Regions(census.ScaleNational)
	if err != nil {
		panic(err)
	}
	nUsers := 1 + r.Intn(5)
	var stream randomWalk
	var id int64
	for u := 0; u < nUsers; u++ {
		steps := 1 + r.Intn(size*2+1)
		ts := int64(1_000_000 + r.Intn(1000))
		for s := 0; s < steps; s++ {
			area := rs.Areas[r.Intn(rs.Len())]
			ts += int64(1 + r.Intn(60_000))
			stream = append(stream, tweet.Tweet{
				ID: id, UserID: int64(u), TS: ts,
				Lat: area.Center.Lat, Lon: area.Center.Lon,
			})
			id++
		}
	}
	return reflect.ValueOf(stream)
}

// TestPropertyFlowConservation: total off-diagonal flow + stays equals the
// number of consecutive same-user pairs, for any walk over area centres.
func TestPropertyFlowConservation(t *testing.T) {
	rs, err := census.Australia().Regions(census.ScaleNational)
	if err != nil {
		t.Fatal(err)
	}
	f := func(stream randomWalk) bool {
		mapper, err := NewAreaMapper(rs, 0)
		if err != nil {
			return false
		}
		e := NewExtractor(mapper)
		pairs := 0
		var prevUser int64 = -1
		for _, tw := range stream {
			if tw.UserID == prevUser {
				pairs++
			}
			prevUser = tw.UserID
			if err := e.Observe(tw); err != nil {
				return false
			}
		}
		flows := e.Flows()
		var total float64
		for i := range flows.Flows {
			for j := range flows.Flows[i] {
				total += flows.Flows[i][j]
			}
		}
		for _, s := range flows.Stays {
			total += s
		}
		return int(total) == pairs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyUserCounterBounds: each area's unique-user count never
// exceeds the number of distinct users, and the per-area counts sum to at
// most users × areas.
func TestPropertyUserCounterBounds(t *testing.T) {
	rs, err := census.Australia().Regions(census.ScaleNational)
	if err != nil {
		t.Fatal(err)
	}
	f := func(stream randomWalk) bool {
		mapper, err := NewAreaMapper(rs, 0)
		if err != nil {
			return false
		}
		c := NewUserCounter(mapper)
		users := map[int64]bool{}
		for _, tw := range stream {
			users[tw.UserID] = true
			if err := c.Observe(tw); err != nil {
				return false
			}
		}
		counts := c.Counts()
		for _, v := range counts {
			if v < 0 || v > float64(len(users)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestEndToEndHandCraftedFlows drives the full extraction on a stream with
// exactly known ground truth.
func TestEndToEndHandCraftedFlows(t *testing.T) {
	rs, err := census.Australia().Regions(census.ScaleNational)
	if err != nil {
		t.Fatal(err)
	}
	mapper, err := NewAreaMapper(rs, 0)
	if err != nil {
		t.Fatal(err)
	}
	syd := rs.Index("Sydney")
	mel := rs.Index("Melbourne")
	bri := rs.Index("Brisbane")
	at := func(i int) (float64, float64) {
		return rs.Areas[i].Center.Lat, rs.Areas[i].Center.Lon
	}
	var stream []tweet.Tweet
	add := func(user int64, ts int64, area int) {
		lat, lon := at(area)
		stream = append(stream, tweet.Tweet{
			ID: int64(len(stream)), UserID: user, TS: ts, Lat: lat, Lon: lon,
		})
	}
	// User 0: Sydney → Sydney → Melbourne → Sydney.
	add(0, 1000, syd)
	add(0, 2000, syd)
	add(0, 3000, mel)
	add(0, 4000, syd)
	// User 1: Brisbane → Melbourne → Melbourne.
	add(1, 1500, bri)
	add(1, 2500, mel)
	add(1, 3500, mel)

	e := NewExtractor(mapper)
	for _, tw := range stream {
		if err := e.Observe(tw); err != nil {
			t.Fatal(err)
		}
	}
	flows := e.Flows()
	type expect struct {
		i, j int
		want float64
	}
	for _, c := range []expect{
		{syd, mel, 1}, {mel, syd, 1}, {bri, mel, 1},
		{syd, bri, 0}, {mel, bri, 0},
	} {
		if got := flows.Flows[c.i][c.j]; got != c.want {
			t.Errorf("flow %s→%s = %v, want %v",
				rs.Areas[c.i].Name, rs.Areas[c.j].Name, got, c.want)
		}
	}
	if flows.Stays[syd] != 1 || flows.Stays[mel] != 1 {
		t.Errorf("stays wrong: syd=%v mel=%v", flows.Stays[syd], flows.Stays[mel])
	}
	st := e.Stats()
	if st.Users != 2 || st.Tweets != 7 {
		t.Errorf("stats: %+v", st)
	}
	if len(st.DisplacementsKM) != 5 {
		t.Fatalf("displacements: %v", st.DisplacementsKM)
	}
	// Sydney→Melbourne displacement ~713 km appears twice (out and back).
	var far int
	for _, d := range st.DisplacementsKM {
		if d > 700 && d < 730 {
			far++
		}
	}
	if far != 2 {
		t.Errorf("expected 2 Sydney–Melbourne displacements, got %d (%v)", far, st.DisplacementsKM)
	}
}
