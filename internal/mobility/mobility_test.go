package mobility

import (
	"testing"

	"geomob/internal/census"
	"geomob/internal/geo"
	"geomob/internal/tweet"
)

func nationalMapper(t *testing.T) *AreaMapper {
	t.Helper()
	rs, err := census.Australia().Regions(census.ScaleNational)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewAreaMapper(rs, 0)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestAreaMapperDefaults(t *testing.T) {
	m := nationalMapper(t)
	if m.Radius() != 50_000 {
		t.Errorf("national default radius = %v, want 50000", m.Radius())
	}
	if m.NumAreas() != 20 {
		t.Errorf("NumAreas = %d", m.NumAreas())
	}
}

func TestAreaMapperAssignment(t *testing.T) {
	m := nationalMapper(t)
	sydneyIdx := -1
	for i := 0; i < m.NumAreas(); i++ {
		if m.Area(i).Name == "Sydney" {
			sydneyIdx = i
		}
	}
	if sydneyIdx < 0 {
		t.Fatal("no Sydney in mapper")
	}
	sydney := m.Area(sydneyIdx).Center
	if got := m.Map(sydney); got != sydneyIdx {
		t.Errorf("CBD maps to %d, want %d", got, sydneyIdx)
	}
	// 30 km out is still within the 50 km radius.
	if got := m.Map(geo.Destination(sydney, 90, 30_000)); got != sydneyIdx {
		t.Errorf("30km point maps to %d", got)
	}
	// Deep outback: no area within 50 km.
	if got := m.Map(geo.Point{Lat: -25.0, Lon: 131.0}); got != -1 {
		t.Errorf("outback point maps to %d, want -1", got)
	}
}

func TestAreaMapperCustomRadius(t *testing.T) {
	rs, _ := census.Australia().Regions(census.ScaleMetropolitan)
	m, err := NewAreaMapper(rs, 500)
	if err != nil {
		t.Fatal(err)
	}
	if m.Radius() != 500 {
		t.Errorf("radius = %v", m.Radius())
	}
	center := m.Area(0).Center
	if m.Map(geo.Destination(center, 0, 400)) != 0 {
		t.Error("400 m point should map inside a 500 m radius")
	}
	if m.Map(geo.Destination(center, 0, 1500)) != -1 {
		t.Error("1.5 km point should not map inside a 500 m radius")
	}
}

func TestAreaMapperErrors(t *testing.T) {
	if _, err := NewAreaMapper(census.RegionSet{}, 0); err == nil {
		t.Error("empty region set should fail")
	}
	rs, _ := census.Australia().Regions(census.ScaleNational)
	if _, err := NewAreaMapper(rs, -1); err == nil {
		t.Error("negative radius should fail")
	}
}

// streamTweets builds a (user, time)-ordered stream visiting the given area
// centres in sequence for one user.
func streamTweets(m *AreaMapper, userID int64, startTS int64, areaIdxs ...int) []tweet.Tweet {
	out := make([]tweet.Tweet, len(areaIdxs))
	for i, a := range areaIdxs {
		p := m.Area(a).Center
		out[i] = tweet.Tweet{
			ID: int64(i), UserID: userID, TS: startTS + int64(i)*60_000,
			Lat: p.Lat, Lon: p.Lon,
		}
	}
	return out
}

func TestExtractorCountsConsecutivePairs(t *testing.T) {
	m := nationalMapper(t)
	e := NewExtractor(m)
	// User 1: A→B→B→C produces flows A→B (1), B→C (1), stay at B (1).
	for _, tw := range streamTweets(m, 1, 1_000_000, 0, 1, 1, 2) {
		if err := e.Observe(tw); err != nil {
			t.Fatal(err)
		}
	}
	// User 2: C→A produces C→A (1).
	for _, tw := range streamTweets(m, 2, 1_000_000, 2, 0) {
		if err := e.Observe(tw); err != nil {
			t.Fatal(err)
		}
	}
	f := e.Flows()
	if f.Flows[0][1] != 1 || f.Flows[1][2] != 1 || f.Flows[2][0] != 1 {
		t.Errorf("flows wrong: %v", f.Flows)
	}
	if f.Stays[1] != 1 {
		t.Errorf("stays wrong: %v", f.Stays)
	}
	if f.Total() != 3 {
		t.Errorf("total = %v, want 3", f.Total())
	}
	// No cross-user pair: last tweet of user 1 (C) and first of user 2 (C)
	// must not create a flow.
	if f.Flows[2][2] != 0 {
		t.Error("self-flow recorded in off-diagonal")
	}
}

func TestExtractorSkipsUnmappedEnds(t *testing.T) {
	m := nationalMapper(t)
	e := NewExtractor(m)
	sydney := m.Area(0).Center
	outback := geo.Point{Lat: -25, Lon: 131}
	stream := []tweet.Tweet{
		{ID: 1, UserID: 1, TS: 1000, Lat: sydney.Lat, Lon: sydney.Lon},
		{ID: 2, UserID: 1, TS: 2000, Lat: outback.Lat, Lon: outback.Lon},
		{ID: 3, UserID: 1, TS: 3000, Lat: sydney.Lat, Lon: sydney.Lon},
	}
	for _, tw := range stream {
		if err := e.Observe(tw); err != nil {
			t.Fatal(err)
		}
	}
	f := e.Flows()
	if f.Total() != 0 {
		t.Errorf("unmapped middle tweet should break the pair chain, total=%v", f.Total())
	}
	s := e.Stats()
	if s.Tweets != 3 || s.MappedTweets != 2 {
		t.Errorf("stats: %+v", s)
	}
}

func TestExtractorRejectsOutOfOrder(t *testing.T) {
	m := nationalMapper(t)
	e := NewExtractor(m)
	p := m.Area(0).Center
	if err := e.Observe(tweet.Tweet{ID: 1, UserID: 5, TS: 2000, Lat: p.Lat, Lon: p.Lon}); err != nil {
		t.Fatal(err)
	}
	if err := e.Observe(tweet.Tweet{ID: 2, UserID: 5, TS: 1000, Lat: p.Lat, Lon: p.Lon}); err == nil {
		t.Error("time regression should be rejected")
	}
	e2 := NewExtractor(m)
	if err := e2.Observe(tweet.Tweet{ID: 1, UserID: 5, TS: 1000, Lat: p.Lat, Lon: p.Lon}); err != nil {
		t.Fatal(err)
	}
	if err := e2.Observe(tweet.Tweet{ID: 2, UserID: 3, TS: 1000, Lat: p.Lat, Lon: p.Lon}); err == nil {
		t.Error("user regression should be rejected")
	}
}

func TestExtractorStats(t *testing.T) {
	m := nationalMapper(t)
	e := NewExtractor(m)
	// Two users: 3 tweets and 2 tweets, gaps of 60 s each.
	for _, tw := range streamTweets(m, 1, 1_000_000, 0, 1, 2) {
		if err := e.Observe(tw); err != nil {
			t.Fatal(err)
		}
	}
	for _, tw := range streamTweets(m, 2, 5_000_000, 3, 4) {
		if err := e.Observe(tw); err != nil {
			t.Fatal(err)
		}
	}
	s := e.Stats()
	if s.Users != 2 {
		t.Errorf("Users = %d", s.Users)
	}
	if len(s.TweetsPerUser) != 2 || s.TweetsPerUser[0] != 3 || s.TweetsPerUser[1] != 2 {
		t.Errorf("TweetsPerUser = %v", s.TweetsPerUser)
	}
	if len(s.WaitingSecs) != 3 { // 2 gaps for user1 + 1 gap for user2
		t.Errorf("WaitingSecs = %v", s.WaitingSecs)
	}
	for _, w := range s.WaitingSecs {
		if w != 60 {
			t.Errorf("gap = %v, want 60", w)
		}
	}
	if len(s.CellsPerUser) != 2 || s.CellsPerUser[0] < 2 {
		t.Errorf("CellsPerUser = %v", s.CellsPerUser)
	}
}

func TestStatsIdempotentFinalisation(t *testing.T) {
	m := nationalMapper(t)
	e := NewExtractor(m)
	for _, tw := range streamTweets(m, 1, 1_000, 0, 1) {
		if err := e.Observe(tw); err != nil {
			t.Fatal(err)
		}
	}
	s1 := e.Stats()
	s2 := e.Stats()
	if len(s1.TweetsPerUser) != 1 || len(s2.TweetsPerUser) != 1 {
		t.Errorf("double finalisation corrupted stats: %v vs %v", s1.TweetsPerUser, s2.TweetsPerUser)
	}
	f := e.Flows()
	if f.Total() != 1 {
		t.Errorf("total = %v", f.Total())
	}
}

func TestUserCounter(t *testing.T) {
	m := nationalMapper(t)
	c := NewUserCounter(m)
	// User 1 tweets twice in Sydney (area 0) and once in Melbourne (1):
	// counts once for each area. User 2 tweets once in Melbourne.
	stream := append(streamTweets(m, 1, 1000, 0, 0, 1), streamTweets(m, 2, 9000, 1)...)
	for _, tw := range stream {
		if err := c.Observe(tw); err != nil {
			t.Fatal(err)
		}
	}
	counts := c.Counts()
	if counts[0] != 1 {
		t.Errorf("area 0 users = %v, want 1", counts[0])
	}
	if counts[1] != 2 {
		t.Errorf("area 1 users = %v, want 2", counts[1])
	}
}

func TestUserCounterRejectsOutOfOrder(t *testing.T) {
	m := nationalMapper(t)
	c := NewUserCounter(m)
	p := m.Area(0).Center
	if err := c.Observe(tweet.Tweet{ID: 1, UserID: 5, TS: 1, Lat: p.Lat, Lon: p.Lon}); err != nil {
		t.Fatal(err)
	}
	if err := c.Observe(tweet.Tweet{ID: 2, UserID: 4, TS: 2, Lat: p.Lat, Lon: p.Lon}); err == nil {
		t.Error("user regression should be rejected")
	}
}

func TestFlowMatrixPairs(t *testing.T) {
	rs, _ := census.Australia().Regions(census.ScaleNational)
	f := NewFlowMatrix(rs.Areas)
	f.Flows[0][1] = 5
	f.Flows[1][0] = 3
	f.Flows[2][2] = 9 // diagonal must be ignored
	src, dst, flow := f.Pairs()
	if len(src) != 2 {
		t.Fatalf("pairs = %v %v %v", src, dst, flow)
	}
	if src[0] != 0 || dst[0] != 1 || flow[0] != 5 {
		t.Errorf("first pair wrong: %v %v %v", src, dst, flow)
	}
	if f.Total() != 8 {
		t.Errorf("total = %v", f.Total())
	}
}

func TestRadiusOfGyration(t *testing.T) {
	m := nationalMapper(t)
	// User 1: all tweets at one point → r_g = 0.
	e := NewExtractor(m)
	p := m.Area(0).Center
	for i := 0; i < 5; i++ {
		if err := e.Observe(tweet.Tweet{ID: int64(i), UserID: 1, TS: int64(1000 + i), Lat: p.Lat, Lon: p.Lon}); err != nil {
			t.Fatal(err)
		}
	}
	// User 2: split evenly between Sydney and Melbourne → r_g ≈ half the
	// chord distance (~356 km for the ~713 km pair).
	syd := m.Area(0).Center
	var melIdx int
	for i := 0; i < m.NumAreas(); i++ {
		if m.Area(i).Name == "Melbourne" {
			melIdx = i
		}
	}
	mel := m.Area(melIdx).Center
	stream := []tweet.Tweet{
		{ID: 10, UserID: 2, TS: 1000, Lat: syd.Lat, Lon: syd.Lon},
		{ID: 11, UserID: 2, TS: 2000, Lat: mel.Lat, Lon: mel.Lon},
		{ID: 12, UserID: 2, TS: 3000, Lat: syd.Lat, Lon: syd.Lon},
		{ID: 13, UserID: 2, TS: 4000, Lat: mel.Lat, Lon: mel.Lon},
	}
	for _, tw := range stream {
		if err := e.Observe(tw); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if len(st.GyrationKM) != 2 {
		t.Fatalf("gyration entries: %v", st.GyrationKM)
	}
	if st.GyrationKM[0] > 0.001 {
		t.Errorf("stationary user r_g = %v, want ~0", st.GyrationKM[0])
	}
	d := geo.Haversine(syd, mel) / 1000
	if got := st.GyrationKM[1]; got < d/2*0.95 || got > d/2*1.05 {
		t.Errorf("two-city user r_g = %v km, want ~%v", got, d/2)
	}
}
