package mobility

import "fmt"

// This file implements the merge contract of the sharded pipeline (see
// DESIGN.md §4): every observer can fold a second observer that consumed a
// later, user-disjoint shard of the same stream into itself, producing
// exactly the state a single observer would have reached over the
// concatenated stream. Merging finalises both observers (per-user
// accumulators are flushed), so it must happen after the last Observe.

// Merge folds o into f by elementwise addition. Both matrices must be over
// the same number of areas. Flow counts are whole numbers, so the addition
// is exact and independent of merge order.
func (f *FlowMatrix) Merge(o *FlowMatrix) error {
	if len(f.Flows) != len(o.Flows) {
		return fmt.Errorf("mobility: merge flow matrices over %d and %d areas", len(f.Flows), len(o.Flows))
	}
	for i := range f.Flows {
		for j := range f.Flows[i] {
			f.Flows[i][j] += o.Flows[i][j]
		}
		f.Stays[i] += o.Stays[i]
	}
	return nil
}

// Merge folds o — an extractor that consumed a strictly later user shard of
// the same stream — into e. Both extractors must share the same mapper.
// After the merge, e's statistics and flows are exactly what a single
// extractor would have produced over the concatenated stream: the per-user
// series are appended in shard order, so even order-sensitive floating-
// point reductions downstream see the serial order.
func (e *Extractor) Merge(o *Extractor) error {
	if e.mapper != o.mapper {
		return fmt.Errorf("mobility: merge extractors with different mappers")
	}
	if e.trackStats != o.trackStats {
		return fmt.Errorf("mobility: merge extractors with different stats modes")
	}
	e.flushUser()
	e.userTweets = 0
	o.flushUser()
	o.userTweets = 0
	if o.started {
		if e.started && o.firstUser <= e.prevUser {
			return fmt.Errorf("mobility: merge shards out of order: user %d after user %d", o.firstUser, e.prevUser)
		}
		if !e.started {
			e.firstUser = o.firstUser
		}
		e.started = true
		e.prevUser = o.prevUser
		e.prevTS = o.prevTS
		e.prevArea = o.prevArea
		e.prevPoint = o.prevPoint
	}
	e.tweetsSeen += o.tweetsSeen
	e.mappedSeen += o.mappedSeen
	e.userCount += o.userCount
	e.perUserCount = append(e.perUserCount, o.perUserCount...)
	e.waitingSecs = append(e.waitingSecs, o.waitingSecs...)
	e.perUserCells = append(e.perUserCells, o.perUserCells...)
	e.displacementsKM = append(e.displacementsKM, o.displacementsKM...)
	e.perUserGyration = append(e.perUserGyration, o.perUserGyration...)
	return e.flows.Merge(o.flows)
}

// Merge folds o — a counter that consumed a strictly later user shard of
// the same stream — into c. Both counters must share the same mapper. The
// per-area unique-user counts are whole numbers, so the addition is exact.
func (c *UserCounter) Merge(o *UserCounter) error {
	if c.mapper != o.mapper {
		return fmt.Errorf("mobility: merge user counters with different mappers")
	}
	if o.started {
		if c.started && o.firstUser <= c.prevUser {
			return fmt.Errorf("mobility: merge shards out of order: user %d after user %d", o.firstUser, c.prevUser)
		}
		if !c.started {
			c.firstUser = o.firstUser
		}
		c.started = true
		c.prevUser = o.prevUser
	}
	// Keep serials unique should anything observe after the merge: the
	// merged counter has logically seen both sides' users.
	c.serial += o.serial
	for a, n := range o.counts {
		c.counts[a] += n
	}
	return nil
}
