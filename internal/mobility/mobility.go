// Package mobility extracts origin–destination flows and trajectory
// statistics from geo-tagged tweet streams, implementing §IV of the paper:
// a tweet is assigned to the nearest census area within the scale's search
// radius ε, and every pair of *consecutive tweets by the same user* whose
// assignments differ contributes one unit of flow from the first area to
// the second.
package mobility

import (
	"fmt"
	"math"

	"geomob/internal/census"
	"geomob/internal/geo"
	"geomob/internal/index"
	"geomob/internal/tweet"
)

// AreaMapper assigns coordinates to census areas using the paper's
// search-radius rule: a point belongs to the nearest area centre within
// radius ε, and to no area otherwise. Assignment goes through a
// precomputed index.Resolver, so the per-point cost is an array lookup for
// the overwhelming majority of points; the resolver's internal k-d tree
// remains the exact oracle it verifies against.
type AreaMapper struct {
	areas    []census.Area
	radius   float64
	resolver *index.Resolver
}

// NewAreaMapper builds a mapper over the region set with the given search
// radius in metres. Radius zero uses the scale's paper default.
func NewAreaMapper(rs census.RegionSet, radius float64) (*AreaMapper, error) {
	if len(rs.Areas) == 0 {
		return nil, fmt.Errorf("mobility: empty region set")
	}
	if radius == 0 {
		radius = rs.Scale.SearchRadius()
	}
	if radius <= 0 {
		return nil, fmt.Errorf("mobility: search radius must be positive, got %v", radius)
	}
	entries := make([]index.Entry, len(rs.Areas))
	for i, a := range rs.Areas {
		entries[i] = index.Entry{ID: int64(i), P: a.Center}
	}
	resolver, err := index.NewResolver(entries, radius)
	if err != nil {
		return nil, fmt.Errorf("mobility: build area index: %w", err)
	}
	return &AreaMapper{areas: rs.Areas, radius: radius, resolver: resolver}, nil
}

// Radius returns the mapper's search radius in metres.
func (m *AreaMapper) Radius() float64 { return m.radius }

// NumAreas returns the number of areas in the mapper.
func (m *AreaMapper) NumAreas() int { return len(m.areas) }

// Area returns the i-th area.
func (m *AreaMapper) Area(i int) census.Area { return m.areas[i] }

// Map returns the area index for p, or -1 when no centre lies within the
// search radius. It performs no heap allocations.
func (m *AreaMapper) Map(p geo.Point) int {
	return int(m.resolver.Resolve(p))
}

// Resolver exposes the precomputed assignment index.
func (m *AreaMapper) Resolver() *index.Resolver { return m.resolver }

// MultiScaleMapper bundles the area mappers of several scales so a point
// is decoded once and assigned at every scale in a single call — the §III
// assignment the study pipeline repeats per scale, without repeating the
// per-scale index walk per observer.
type MultiScaleMapper struct {
	mappers []*AreaMapper
}

// NewMultiScaleMapper builds the bundle. At least one mapper is required.
func NewMultiScaleMapper(mappers ...*AreaMapper) (*MultiScaleMapper, error) {
	if len(mappers) == 0 {
		return nil, fmt.Errorf("mobility: multi-scale mapper needs at least one mapper")
	}
	for i, m := range mappers {
		if m == nil {
			return nil, fmt.Errorf("mobility: multi-scale mapper slot %d is nil", i)
		}
	}
	return &MultiScaleMapper{mappers: append([]*AreaMapper(nil), mappers...)}, nil
}

// Len returns the number of bundled mappers.
func (m *MultiScaleMapper) Len() int { return len(m.mappers) }

// Mapper returns the i-th bundled mapper.
func (m *MultiScaleMapper) Mapper(i int) *AreaMapper { return m.mappers[i] }

// MapAll assigns p at every bundled scale, writing the area index (or -1)
// for mapper i into out[i]. out must have at least Len() elements. The
// call performs no heap allocations.
func (m *MultiScaleMapper) MapAll(p geo.Point, out []int) {
	for i, am := range m.mappers {
		out[i] = am.Map(p)
	}
}

// MapAllBatch assigns whole coordinate columns at every bundled scale:
// the assignment of point i at mapper s lands in out[i*stride+s] as an
// int16 area index (area counts are far below 32k at every census scale;
// -1 marks unassigned). stride must be at least Len() and out must hold
// len(lats)*stride elements. This is the batched-ingest counterpart of
// MapAll: per scale it resolves one whole column before scattering, so
// the per-point cost is the resolver's array lookup and nothing else.
func (m *MultiScaleMapper) MapAllBatch(lats, lons []float64, out []int16, stride int) {
	n := len(lats)
	if n == 0 {
		return
	}
	scratch := make([]int64, n)
	for s, am := range m.mappers {
		am.resolver.ResolveBatch(lats, lons, scratch)
		for i, v := range scratch {
			out[i*stride+s] = int16(v)
		}
	}
}

// FlowMatrix holds the directed flow counts between the areas of one
// region set. Flows[i][j] counts observed transitions i→j; the diagonal
// (non-moves between mapped tweets) is tracked separately by Stays.
type FlowMatrix struct {
	Areas []census.Area
	Flows [][]float64
	Stays []float64 // consecutive pairs mapped to the same area
}

// NewFlowMatrix allocates a zero matrix over the areas.
func NewFlowMatrix(areas []census.Area) *FlowMatrix {
	f := &FlowMatrix{
		Areas: areas,
		Flows: make([][]float64, len(areas)),
		Stays: make([]float64, len(areas)),
	}
	for i := range f.Flows {
		f.Flows[i] = make([]float64, len(areas))
	}
	return f
}

// Total returns the total off-diagonal flow.
func (f *FlowMatrix) Total() float64 {
	var s float64
	for i := range f.Flows {
		for j, v := range f.Flows[i] {
			if i != j {
				s += v
			}
		}
	}
	return s
}

// Pairs returns the off-diagonal (origin, destination, flow) triples with
// positive flow, in row-major order.
func (f *FlowMatrix) Pairs() (src, dst []int, flow []float64) {
	for i := range f.Flows {
		for j, v := range f.Flows[i] {
			if i != j && v > 0 {
				src = append(src, i)
				dst = append(dst, j)
				flow = append(flow, v)
			}
		}
	}
	return src, dst, flow
}

// Extractor accumulates flows and trajectory statistics from a tweet
// stream that arrives in (user, time) order — the canonical tweetdb order.
// Feed every tweet via Observe (or ObserveArea when the assignment was
// already computed by a shared mapper), then read the results.
type Extractor struct {
	mapper *AreaMapper
	flows  *FlowMatrix
	// trackStats selects whether the trajectory statistics (Table I,
	// Fig. 2, the displacement and gyration series) are accumulated. Flow
	// extraction never needs them, and the study pipeline reads them from
	// a single extractor, so the others run lean.
	trackStats bool

	firstUser int64
	prevUser  int64
	prevArea  int
	prevTS    int64
	started   bool

	// Trajectory statistics for Table I.
	tweetsSeen   int
	mappedSeen   int
	userCount    int
	userTweets   int
	perUserCount []float64
	waitingSecs  []float64
	userCells    map[uint64]struct{} // geohash-5 cell IDs (geo.GeohashCellID)
	perUserCells []float64
	// Displacements between consecutive tweets of the same user, in
	// kilometres (the Δr distribution of Hawelka et al., the paper's
	// ref. [9]); zero-displacement pairs are recorded too.
	displacementsKM []float64
	prevPoint       geo.Point

	// Per-user radius of gyration accumulators: running sums of the unit
	// sphere vector of each tweet. The chord-based identity
	// E‖p − p̄‖² = 1 − ‖p̄‖² turns the radius of gyration into an O(1)
	// per-tweet computation.
	sumX, sumY, sumZ float64
	perUserGyration  []float64
}

// NewExtractor builds an extractor over the mapper that accumulates both
// flows and the full trajectory statistics.
func NewExtractor(mapper *AreaMapper) *Extractor {
	return &Extractor{
		mapper:     mapper,
		flows:      NewFlowMatrix(mapper.areas),
		trackStats: true,
		prevArea:   -1,
		userCells:  map[uint64]struct{}{},
	}
}

// NewFlowExtractor builds a lean extractor over the mapper: it accumulates
// the flow matrix and the tweet/user counters but skips the trajectory
// statistics (waiting times, displacements, geohash cells, gyration),
// which cost a per-tweet hash insert and trig the flow extraction never
// reads. Stats on a lean extractor returns empty series.
func NewFlowExtractor(mapper *AreaMapper) *Extractor {
	return &Extractor{
		mapper:   mapper,
		flows:    NewFlowMatrix(mapper.areas),
		prevArea: -1,
	}
}

// NewStatsExtractor builds an extractor that accumulates only the
// trajectory statistics, skipping area assignment entirely: Observe costs
// no nearest-area lookup and Flows returns an empty matrix. It serves
// stats-only requests of the Study pipeline, where no flow matrix or
// per-area count is wanted.
func NewStatsExtractor() *Extractor {
	return &Extractor{
		flows:      NewFlowMatrix(nil),
		trackStats: true,
		prevArea:   -1,
		userCells:  map[uint64]struct{}{},
	}
}

// Observe consumes the next tweet, assigning it through the extractor's
// own mapper. Tweets must arrive sorted by (user, time); violations are
// reported as errors because they would silently corrupt the flow counts.
func (e *Extractor) Observe(t tweet.Tweet) error {
	area := -1
	if e.mapper != nil {
		area = e.mapper.Map(t.Point())
	}
	return e.ObserveArea(t, area)
}

// ObserveArea consumes the next tweet with its area assignment already
// resolved (by the extractor's own mapper or an equivalent shared one);
// area is the assigned area index, -1 for unassigned. This is the hot
// path of the study pipeline: a shared mobility.MultiScaleMapper resolves
// every scale once per tweet and fans the assignments out to the
// observers, so no observer repeats the spatial lookup.
func (e *Extractor) ObserveArea(t tweet.Tweet, area int) error {
	if e.started && t.UserID == e.prevUser && t.TS < e.prevTS {
		return fmt.Errorf("mobility: stream out of order: user %d saw ts %d after %d", t.UserID, t.TS, e.prevTS)
	}
	if e.started && t.UserID < e.prevUser {
		return fmt.Errorf("mobility: stream out of order: user %d after user %d", t.UserID, e.prevUser)
	}
	e.tweetsSeen++
	if area >= 0 {
		e.mappedSeen++
	}

	if !e.started || t.UserID != e.prevUser {
		e.flushUser()
		if !e.started {
			e.firstUser = t.UserID
		}
		e.started = true
		e.prevUser = t.UserID
		e.userCount++
		e.userTweets = 0
	} else {
		if e.trackStats {
			// Same user: waiting time between consecutive tweets (Fig. 2b).
			e.waitingSecs = append(e.waitingSecs, WaitingSecs(e.prevTS, t.TS))
			// Displacement between consecutive tweets (extension figure).
			e.displacementsKM = append(e.displacementsKM, DisplacementKM(e.prevPoint, t.Point()))
		}
		// Flow contribution when both ends are mapped (§IV).
		if e.prevArea >= 0 && area >= 0 {
			if e.prevArea == area {
				e.flows.Stays[area]++
			} else {
				e.flows.Flows[e.prevArea][area]++
			}
		}
	}
	e.userTweets++
	if e.trackStats {
		e.userCells[geo.GeohashCellID(t.Point(), 5)] = struct{}{}
		x, y, z := UnitVec(t.Point())
		e.sumX += x
		e.sumY += y
		e.sumZ += z
		e.prevPoint = t.Point()
	}
	e.prevTS = t.TS
	e.prevArea = area
	return nil
}

// flushUser closes out the per-user accumulators.
func (e *Extractor) flushUser() {
	if e.userTweets > 0 && e.trackStats {
		e.perUserCount = append(e.perUserCount, float64(e.userTweets))
		e.perUserCells = append(e.perUserCells, float64(len(e.userCells)))
		clear(e.userCells)
		e.perUserGyration = append(e.perUserGyration, GyrationRadiusKM(e.sumX, e.sumY, e.sumZ, e.userTweets))
		e.sumX, e.sumY, e.sumZ = 0, 0, 0
	}
}

// The per-tweet floating-point operations of the trajectory statistics
// live in exactly one place each, so any external aggregation layer that
// replays them (internal/live folds per-bucket partials) performs the
// bit-identical computation the streaming extractor performs.

// UnitVec returns the unit sphere vector of p — the per-tweet addend of
// the radius-of-gyration accumulators.
func UnitVec(p geo.Point) (x, y, z float64) {
	lat, lon := p.Radians()
	cosLat := cos(lat)
	return cosLat * cos(lon), cosLat * sin(lon), sin(lat)
}

// GyrationRadiusKM turns the summed unit vectors of one user's n tweets
// into the chord-based radius of gyration in km: ‖p̄‖ <= 1 with equality
// only when every tweet sits at the same point.
func GyrationRadiusKM(sumX, sumY, sumZ float64, n int) float64 {
	fn := float64(n)
	norm2 := (sumX*sumX + sumY*sumY + sumZ*sumZ) / (fn * fn)
	if norm2 > 1 {
		norm2 = 1
	}
	return geo.EarthRadius / 1000 * sqrt(1-norm2)
}

// WaitingSecs is the waiting time between consecutive tweets of one user
// (Fig. 2b), in seconds.
func WaitingSecs(prevTS, ts int64) float64 { return float64(ts-prevTS) / 1000 }

// DisplacementKM is the displacement between consecutive tweets of one
// user, in kilometres.
func DisplacementKM(prev, cur geo.Point) float64 { return geo.Haversine(prev, cur) / 1000 }

// Flows finalises and returns the flow matrix. Call after the last Observe.
func (e *Extractor) Flows() *FlowMatrix {
	e.flushUser()
	e.userTweets = 0
	return e.flows
}

// Stats summarises the trajectory statistics of the observed stream.
type Stats struct {
	Tweets          int       // total tweets observed
	MappedTweets    int       // tweets assigned to some area
	Users           int       // distinct users
	TweetsPerUser   []float64 // per-user tweet counts (Fig. 2a input)
	WaitingSecs     []float64 // inter-tweet gaps in seconds (Fig. 2b input)
	CellsPerUser    []float64 // distinct ~5 km geohash cells per user (Table I "locations")
	DisplacementsKM []float64 // consecutive-tweet displacements, km
	GyrationKM      []float64 // per-user radius of gyration, km (González et al.)
}

// Stats finalises and returns the trajectory statistics.
func (e *Extractor) Stats() Stats {
	e.flushUser()
	e.userTweets = 0
	return Stats{
		Tweets:          e.tweetsSeen,
		MappedTweets:    e.mappedSeen,
		Users:           e.userCount,
		TweetsPerUser:   e.perUserCount,
		WaitingSecs:     e.waitingSecs,
		CellsPerUser:    e.perUserCells,
		DisplacementsKM: e.displacementsKM,
		GyrationKM:      e.perUserGyration,
	}
}

// Trigonometric aliases keep the accumulator code compact.
func cos(v float64) float64  { return math.Cos(v) }
func sin(v float64) float64  { return math.Sin(v) }
func sqrt(v float64) float64 { return math.Sqrt(v) }

// UniqueUsersPerArea counts, per area, the distinct users with at least one
// tweet mapped to the area — the paper's "Twitter population" (§III).
// The stream must arrive in (user, time) order so per-user deduplication
// reduces to an epoch-stamped mark array: mark[a] records the serial of
// the last user who touched area a, so the per-tweet cost is two array
// accesses and no allocation.
type UserCounter struct {
	mapper    *AreaMapper
	counts    []float64
	mark      []int64 // mark[a] == serial of the last user counted in a
	serial    int64   // current user's serial, starting at 1
	firstUser int64
	prevUser  int64
	started   bool
}

// NewUserCounter builds a counter over the mapper.
func NewUserCounter(mapper *AreaMapper) *UserCounter {
	return &UserCounter{
		mapper: mapper,
		counts: make([]float64, mapper.NumAreas()),
		mark:   make([]int64, mapper.NumAreas()),
	}
}

// Observe consumes the next tweet (sorted by user), assigning it through
// the counter's own mapper.
func (c *UserCounter) Observe(t tweet.Tweet) error {
	return c.ObserveArea(t, c.mapper.Map(t.Point()))
}

// ObserveArea consumes the next tweet with its area assignment already
// resolved; area is the assigned area index, -1 for unassigned.
func (c *UserCounter) ObserveArea(t tweet.Tweet, area int) error {
	if c.started && t.UserID < c.prevUser {
		return fmt.Errorf("mobility: user counter stream out of order: user %d after %d", t.UserID, c.prevUser)
	}
	if !c.started || t.UserID != c.prevUser {
		if !c.started {
			c.firstUser = t.UserID
		}
		c.prevUser = t.UserID
		c.started = true
		c.serial++
	}
	if area >= 0 && c.mark[area] != c.serial {
		c.mark[area] = c.serial
		c.counts[area]++
	}
	return nil
}

// Counts returns the per-area unique user counts.
func (c *UserCounter) Counts() []float64 {
	return c.counts
}
