package mobility

import (
	"math/rand/v2"
	"reflect"
	"testing"

	"geomob/internal/census"
	"geomob/internal/geo"
	"geomob/internal/tweet"
)

// studyMappers builds the four mappers the full study runs: the three
// paper scales at their default radii plus the fixed metro 0.5 km variant.
func studyMappers(t *testing.T) []*AreaMapper {
	t.Helper()
	var out []*AreaMapper
	for _, scale := range census.Scales() {
		rs, err := census.Australia().Regions(scale)
		if err != nil {
			t.Fatal(err)
		}
		m, err := NewAreaMapper(rs, 0)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, m)
	}
	metroRS, err := census.Australia().Regions(census.ScaleMetropolitan)
	if err != nil {
		t.Fatal(err)
	}
	metro500, err := NewAreaMapper(metroRS, 500)
	if err != nil {
		t.Fatal(err)
	}
	return append(out, metro500)
}

// TestMultiScaleMapperMatchesPerScale: MapAll must agree with calling each
// mapper's Map individually, across random points including unmappable
// ones.
func TestMultiScaleMapperMatchesPerScale(t *testing.T) {
	mappers := studyMappers(t)
	msm, err := NewMultiScaleMapper(mappers...)
	if err != nil {
		t.Fatal(err)
	}
	if msm.Len() != len(mappers) {
		t.Fatalf("Len = %d, want %d", msm.Len(), len(mappers))
	}
	rng := rand.New(rand.NewPCG(81, 82))
	out := make([]int, msm.Len())
	for i := 0; i < 20000; i++ {
		p := geo.Point{
			Lat: -45 + rng.Float64()*36,
			Lon: 112 + rng.Float64()*48,
		}
		msm.MapAll(p, out)
		for j, m := range mappers {
			if want := m.Map(p); out[j] != want {
				t.Fatalf("point %v slot %d: MapAll = %d, Map = %d", p, j, out[j], want)
			}
		}
	}
}

func TestMultiScaleMapperRejectsBadInput(t *testing.T) {
	if _, err := NewMultiScaleMapper(); err == nil {
		t.Error("empty mapper list should fail")
	}
	if _, err := NewMultiScaleMapper(nil); err == nil {
		t.Error("nil mapper should fail")
	}
}

// TestMultiScaleMapperNoAllocs: the per-tweet multi-scale assignment is
// the pipeline's hot path and must not touch the heap.
func TestMultiScaleMapperNoAllocs(t *testing.T) {
	msm, err := NewMultiScaleMapper(studyMappers(t)...)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(83, 84))
	queries := make([]geo.Point, 512)
	for i := range queries {
		queries[i] = geo.Point{Lat: -45 + rng.Float64()*36, Lon: 112 + rng.Float64()*48}
	}
	out := make([]int, msm.Len())
	i := 0
	allocs := testing.AllocsPerRun(2000, func() {
		msm.MapAll(queries[i%len(queries)], out)
		i++
	})
	if allocs != 0 {
		t.Errorf("MapAll allocated %v times per op, want 0", allocs)
	}
}

// syntheticStream builds a small (user, time)-ordered stream hopping
// between area centres and unmappable points.
func syntheticStream(rng *rand.Rand, m *AreaMapper, users, perUser int) []tweet.Tweet {
	var tweets []tweet.Tweet
	ts := int64(1_378_000_000_000)
	id := int64(0)
	for u := 0; u < users; u++ {
		for k := 0; k < perUser; k++ {
			ts += int64(rng.IntN(100_000))
			var p geo.Point
			if rng.IntN(5) == 0 {
				p = geo.Point{Lat: -25, Lon: 131} // deep outback, unmapped
			} else {
				c := m.Area(rng.IntN(m.NumAreas())).Center
				p = geo.Destination(c, rng.Float64()*360, rng.Float64()*m.Radius()*1.2)
			}
			tweets = append(tweets, tweet.Tweet{
				ID: id, UserID: int64(u), TS: ts, Lat: p.Lat, Lon: p.Lon,
			})
			id++
		}
	}
	return tweets
}

// TestObserveAreaMatchesObserve: feeding precomputed assignments through
// ObserveArea must reproduce Observe exactly, for the extractor and the
// user counter alike.
func TestObserveAreaMatchesObserve(t *testing.T) {
	m := nationalMapper(t)
	rng := rand.New(rand.NewPCG(85, 86))
	tweets := syntheticStream(rng, m, 40, 30)

	extA, extB := NewExtractor(m), NewExtractor(m)
	cntA, cntB := NewUserCounter(m), NewUserCounter(m)
	for _, tw := range tweets {
		if err := extA.Observe(tw); err != nil {
			t.Fatal(err)
		}
		if err := cntA.Observe(tw); err != nil {
			t.Fatal(err)
		}
		area := m.Map(tw.Point())
		if err := extB.ObserveArea(tw, area); err != nil {
			t.Fatal(err)
		}
		if err := cntB.ObserveArea(tw, area); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(extA.Flows(), extB.Flows()) {
		t.Error("ObserveArea flows differ from Observe")
	}
	if !reflect.DeepEqual(extA.Stats(), extB.Stats()) {
		t.Error("ObserveArea stats differ from Observe")
	}
	if !reflect.DeepEqual(cntA.Counts(), cntB.Counts()) {
		t.Error("ObserveArea counts differ from Observe")
	}
}

// TestFlowExtractorMatchesFullFlows: the lean extractor must produce the
// identical flow matrix and tweet/user counters while skipping the
// trajectory series.
func TestFlowExtractorMatchesFullFlows(t *testing.T) {
	m := nationalMapper(t)
	rng := rand.New(rand.NewPCG(87, 88))
	tweets := syntheticStream(rng, m, 40, 25)

	full, lean := NewExtractor(m), NewFlowExtractor(m)
	for _, tw := range tweets {
		if err := full.Observe(tw); err != nil {
			t.Fatal(err)
		}
		if err := lean.Observe(tw); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(full.Flows(), lean.Flows()) {
		t.Error("lean flow matrix differs from the full extractor's")
	}
	fs, ls := full.Stats(), lean.Stats()
	if ls.Tweets != fs.Tweets || ls.MappedTweets != fs.MappedTweets || ls.Users != fs.Users {
		t.Errorf("lean counters differ: %d/%d/%d vs %d/%d/%d",
			ls.Tweets, ls.MappedTweets, ls.Users, fs.Tweets, fs.MappedTweets, fs.Users)
	}
	if len(ls.WaitingSecs) != 0 || len(ls.TweetsPerUser) != 0 || len(ls.GyrationKM) != 0 {
		t.Error("lean extractor accumulated trajectory series")
	}
}

// TestUserCounterMatchesBrute: the epoch-stamped counter must equal a
// brute-force distinct-(user, area) count.
func TestUserCounterMatchesBrute(t *testing.T) {
	m := nationalMapper(t)
	rng := rand.New(rand.NewPCG(89, 90))
	tweets := syntheticStream(rng, m, 60, 20)

	c := NewUserCounter(m)
	brute := map[[2]int64]bool{}
	for _, tw := range tweets {
		if err := c.Observe(tw); err != nil {
			t.Fatal(err)
		}
		if a := m.Map(tw.Point()); a >= 0 {
			brute[[2]int64{tw.UserID, int64(a)}] = true
		}
	}
	want := make([]float64, m.NumAreas())
	for k := range brute {
		want[k[1]]++
	}
	if !reflect.DeepEqual(c.Counts(), want) {
		t.Errorf("counts = %v, want %v", c.Counts(), want)
	}
}
