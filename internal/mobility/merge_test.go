package mobility

import (
	"reflect"
	"testing"

	"geomob/internal/census"
	"geomob/internal/tweet"
)

// mergeTestMapper builds a metropolitan-scale mapper shared by all
// observers of a test (Merge requires pointer-equal mappers).
func mergeTestMapper(t *testing.T) *AreaMapper {
	t.Helper()
	rs, err := census.Australia().Regions(census.ScaleMetropolitan)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewAreaMapper(rs, 0)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// mergeTestStream is a small (user, time)-ordered stream hopping between
// real suburb centres, with some unmapped noise points.
func mergeTestStream(t *testing.T, mapper *AreaMapper) []tweet.Tweet {
	t.Helper()
	var out []tweet.Tweet
	id := int64(0)
	for u := int64(0); u < 9; u++ {
		n := 1 + int(u)%4
		for i := 0; i < n; i++ {
			a := mapper.Area(int((u + int64(i)) % 5))
			p := a.Center
			if i == 2 {
				p.Lat -= 2 // far from any suburb: unmapped
			}
			out = append(out, tweet.Tweet{
				ID: id, UserID: u, TS: 1378000000000 + int64(i)*60000,
				Lat: p.Lat, Lon: p.Lon,
			})
			id++
		}
	}
	return out
}

func feed(t *testing.T, e *Extractor, tweets []tweet.Tweet) {
	t.Helper()
	for _, tw := range tweets {
		if err := e.Observe(tw); err != nil {
			t.Fatal(err)
		}
	}
}

func TestExtractorMergeMatchesSerial(t *testing.T) {
	mapper := mergeTestMapper(t)
	stream := mergeTestStream(t, mapper)

	serial := NewExtractor(mapper)
	feed(t, serial, stream)

	// Split at every user boundary into three shards.
	cut1, cut2 := 0, 0
	for i := 1; i < len(stream); i++ {
		if stream[i].UserID != stream[i-1].UserID {
			if stream[i].UserID == 3 {
				cut1 = i
			}
			if stream[i].UserID == 6 {
				cut2 = i
			}
		}
	}
	parts := [][]tweet.Tweet{stream[:cut1], stream[cut1:cut2], stream[cut2:]}
	shards := make([]*Extractor, len(parts))
	for k, part := range parts {
		shards[k] = NewExtractor(mapper)
		feed(t, shards[k], part)
	}
	for _, next := range shards[1:] {
		if err := shards[0].Merge(next); err != nil {
			t.Fatal(err)
		}
	}

	if !reflect.DeepEqual(serial.Stats(), shards[0].Stats()) {
		t.Errorf("merged stats differ from serial:\n%+v\nvs\n%+v", shards[0].Stats(), serial.Stats())
	}
	if !reflect.DeepEqual(serial.Flows(), shards[0].Flows()) {
		t.Error("merged flows differ from serial")
	}
}

func TestExtractorMergeEmptyShards(t *testing.T) {
	mapper := mergeTestMapper(t)
	stream := mergeTestStream(t, mapper)

	serial := NewExtractor(mapper)
	feed(t, serial, stream)

	empty1 := NewExtractor(mapper)
	full := NewExtractor(mapper)
	feed(t, full, stream)
	empty2 := NewExtractor(mapper)
	if err := empty1.Merge(full); err != nil {
		t.Fatal(err)
	}
	if err := empty1.Merge(empty2); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Stats(), empty1.Stats()) {
		t.Error("merge through empty shards changed the stats")
	}
}

func TestExtractorMergeRejectsMisuse(t *testing.T) {
	mapper := mergeTestMapper(t)
	stream := mergeTestStream(t, mapper)
	a := NewExtractor(mapper)
	feed(t, a, stream)
	b := NewExtractor(mapper)
	feed(t, b, stream) // same users again: not a later shard
	if err := a.Merge(b); err == nil {
		t.Error("overlapping user ranges must be rejected")
	}
	other := NewExtractor(mergeTestMapper(t))
	if err := a.Merge(other); err == nil {
		t.Error("different mappers must be rejected")
	}
}

func TestUserCounterMergeMatchesSerial(t *testing.T) {
	mapper := mergeTestMapper(t)
	stream := mergeTestStream(t, mapper)

	serial := NewUserCounter(mapper)
	for _, tw := range stream {
		if err := serial.Observe(tw); err != nil {
			t.Fatal(err)
		}
	}

	var cut int
	for i := 1; i < len(stream); i++ {
		if stream[i].UserID == 5 && stream[i-1].UserID != 5 {
			cut = i
		}
	}
	a, b := NewUserCounter(mapper), NewUserCounter(mapper)
	for _, tw := range stream[:cut] {
		if err := a.Observe(tw); err != nil {
			t.Fatal(err)
		}
	}
	for _, tw := range stream[cut:] {
		if err := b.Observe(tw); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Counts(), a.Counts()) {
		t.Errorf("merged counts %v differ from serial %v", a.Counts(), serial.Counts())
	}
}

func TestUserCounterMergeRejectsOverlap(t *testing.T) {
	mapper := mergeTestMapper(t)
	stream := mergeTestStream(t, mapper)
	a, b := NewUserCounter(mapper), NewUserCounter(mapper)
	for _, tw := range stream {
		if err := a.Observe(tw); err != nil {
			t.Fatal(err)
		}
		if err := b.Observe(tw); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Merge(b); err == nil {
		t.Error("overlapping user ranges must be rejected")
	}
}

func TestFlowMatrixMergeAdds(t *testing.T) {
	mapper := mergeTestMapper(t)
	a := NewFlowMatrix(mapper.areas)
	b := NewFlowMatrix(mapper.areas)
	a.Flows[0][1] = 2
	a.Stays[3] = 1
	b.Flows[0][1] = 3
	b.Flows[2][0] = 4
	b.Stays[3] = 2
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Flows[0][1] != 5 || a.Flows[2][0] != 4 || a.Stays[3] != 3 {
		t.Errorf("merge arithmetic wrong: %v %v", a.Flows, a.Stays)
	}
	small := NewFlowMatrix(mapper.areas[:3])
	if err := a.Merge(small); err == nil {
		t.Error("mismatched area counts must be rejected")
	}
}
