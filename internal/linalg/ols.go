package linalg

import (
	"errors"
	"fmt"
	"math"
)

// OLSResult holds an ordinary-least-squares fit y ≈ X·β.
type OLSResult struct {
	Coef      []float64 // fitted coefficients β, one per design column
	Residuals []float64 // y − X·β
	RSS       float64   // residual sum of squares
	TSS       float64   // total sum of squares about the mean of y
	R2        float64   // coefficient of determination, 1 − RSS/TSS
	N         int       // number of observations
	P         int       // number of parameters
}

// OLS fits y ≈ X·β by least squares. Each row of x is one observation; the
// caller includes an explicit intercept column (of ones) if desired. The fit
// uses Householder QR, which is numerically preferable to forming the normal
// equations.
func OLS(x [][]float64, y []float64) (*OLSResult, error) {
	if len(x) == 0 {
		return nil, errors.New("linalg: OLS requires at least one observation")
	}
	if len(x) != len(y) {
		return nil, fmt.Errorf("linalg: OLS design has %d rows but y has %d values", len(x), len(y))
	}
	a, err := FromRows(x)
	if err != nil {
		return nil, err
	}
	if a.Rows < a.Cols {
		return nil, fmt.Errorf("linalg: OLS is underdetermined: %d observations for %d parameters", a.Rows, a.Cols)
	}
	coef, err := SolveLeastSquares(a, y)
	if err != nil {
		return nil, err
	}
	fitted, err := a.MulVec(coef)
	if err != nil {
		return nil, err
	}
	res := &OLSResult{Coef: coef, N: a.Rows, P: a.Cols}
	res.Residuals = make([]float64, len(y))
	var meanY float64
	for _, v := range y {
		meanY += v
	}
	meanY /= float64(len(y))
	for i, v := range y {
		r := v - fitted[i]
		res.Residuals[i] = r
		res.RSS += r * r
		d := v - meanY
		res.TSS += d * d
	}
	if res.TSS > 0 {
		res.R2 = 1 - res.RSS/res.TSS
	}
	return res, nil
}

// SimpleOLS fits the univariate line y ≈ a + b·x and returns the intercept
// and slope.
func SimpleOLS(x, y []float64) (intercept, slope float64, err error) {
	if len(x) != len(y) {
		return 0, 0, fmt.Errorf("linalg: SimpleOLS length mismatch: %d vs %d", len(x), len(y))
	}
	if len(x) < 2 {
		return 0, 0, errors.New("linalg: SimpleOLS requires at least two points")
	}
	design := make([][]float64, len(x))
	for i, v := range x {
		design[i] = []float64{1, v}
	}
	res, err := OLS(design, y)
	if err != nil {
		return 0, 0, err
	}
	return res.Coef[0], res.Coef[1], nil
}

// ScaleThroughOrigin returns the c minimising ‖y − c·x‖₂, i.e. the least-
// squares proportionality constant, together with an error when x is all
// zeros. This is the estimator used for the paper's population rescaling
// factor C (Fig. 3).
func ScaleThroughOrigin(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("linalg: ScaleThroughOrigin length mismatch: %d vs %d", len(x), len(y))
	}
	var xy, xx float64
	for i := range x {
		xy += x[i] * y[i]
		xx += x[i] * x[i]
	}
	if xx == 0 || math.IsNaN(xx) {
		return 0, errors.New("linalg: ScaleThroughOrigin needs a nonzero x vector")
	}
	return xy / xx, nil
}
