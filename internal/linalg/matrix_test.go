package linalg

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestNewAndAccessors(t *testing.T) {
	m := New(2, 3)
	if m.Rows != 2 || m.Cols != 3 || len(m.Data) != 6 {
		t.Fatalf("bad shape: %+v", m)
	}
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatal("Set/At roundtrip failed")
	}
	if m.At(0, 0) != 0 {
		t.Fatal("new matrix not zeroed")
	}
}

func TestNewPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 0x3 matrix")
		}
	}()
	New(0, 3)
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 3 || m.Cols != 2 || m.At(2, 1) != 6 {
		t.Fatalf("bad matrix: %+v", m)
	}
	if _, err := FromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("expected error for ragged rows")
	}
	if _, err := FromRows(nil); err == nil {
		t.Fatal("expected error for empty input")
	}
}

func TestTranspose(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("bad transpose shape %dx%d", tr.Rows, tr.Cols)
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("transpose mismatch at %d,%d", i, j)
			}
		}
	}
}

func TestMulIdentity(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	id := Identity(2)
	got, err := m.Mul(id)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.Data {
		if got.Data[i] != m.Data[i] {
			t.Fatal("m * I != m")
		}
	}
}

func TestMulKnown(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	b, _ := FromRows([][]float64{{7, 8}, {9, 10}, {11, 12}})
	got, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{58, 64}, {139, 154}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if got.At(i, j) != want[i][j] {
				t.Fatalf("at %d,%d: got %v want %v", i, j, got.At(i, j), want[i][j])
			}
		}
	}
	if _, err := a.Mul(a); err == nil {
		t.Fatal("expected dimension mismatch error")
	}
}

func TestMulVec(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	got, err := a.MulVec([]float64{5, 6})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 17 || got[1] != 39 {
		t.Fatalf("MulVec wrong: %v", got)
	}
	if _, err := a.MulVec([]float64{1}); err == nil {
		t.Fatal("expected dimension mismatch error")
	}
}

func TestSolveGaussKnown(t *testing.T) {
	a, _ := FromRows([][]float64{{2, 1, -1}, {-3, -1, 2}, {-2, 1, 2}})
	b := []float64{8, -11, -3}
	x, err := SolveGauss(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-10 {
			t.Fatalf("x[%d]: got %v want %v", i, x[i], want[i])
		}
	}
}

func TestSolveGaussSingular(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := SolveGauss(a, []float64{1, 2}); err == nil {
		t.Fatal("expected singular matrix error")
	}
}

func TestSolveGaussDoesNotMutateInputs(t *testing.T) {
	a, _ := FromRows([][]float64{{4, 1}, {1, 3}})
	b := []float64{1, 2}
	orig := a.Clone()
	origB := []float64{1, 2}
	if _, err := SolveGauss(a, b); err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		if a.Data[i] != orig.Data[i] {
			t.Fatal("SolveGauss mutated A")
		}
	}
	for i := range b {
		if b[i] != origB[i] {
			t.Fatal("SolveGauss mutated b")
		}
	}
}

func TestSolveGaussRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.IntN(6)
		a := New(n, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		// Diagonal dominance guarantees non-singularity.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n)*3)
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64() * 10
		}
		b, err := a.MulVec(want)
		if err != nil {
			t.Fatal(err)
		}
		got, err := SolveGauss(a, b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-8 {
				t.Fatalf("trial %d: x[%d] = %v, want %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestSolveLeastSquaresExact(t *testing.T) {
	// Square non-singular system: least squares must equal the exact solve.
	a, _ := FromRows([][]float64{{2, 1, -1}, {-3, -1, 2}, {-2, 1, 2}})
	b := []float64{8, -11, -3}
	x, err := SolveLeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-10 {
			t.Fatalf("x[%d]: got %v want %v", i, x[i], want[i])
		}
	}
}

func TestSolveLeastSquaresOverdetermined(t *testing.T) {
	// y = 3 + 2x sampled with symmetric noise that cancels exactly.
	a, _ := FromRows([][]float64{{1, 0}, {1, 1}, {1, 2}, {1, 3}})
	b := []float64{3.1, 4.9, 7.1, 8.9}
	x, err := SolveLeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-3.06) > 1e-9 || math.Abs(x[1]-1.96) > 1e-9 {
		t.Fatalf("got %v", x)
	}
}

func TestSolveLeastSquaresRankDeficient(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	if _, err := SolveLeastSquares(a, []float64{1, 2, 3}); err == nil {
		t.Fatal("expected error for rank-deficient design")
	}
}

func TestSolveLeastSquaresWideRejected(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2, 3}})
	if _, err := SolveLeastSquares(a, []float64{1}); err == nil {
		t.Fatal("expected error for wide matrix")
	}
}

// Property: for random well-conditioned overdetermined systems, the residual
// must be orthogonal to every design column (the normal equations).
func TestLeastSquaresResidualOrthogonality(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 5))
	for trial := 0; trial < 30; trial++ {
		n := 10 + rng.IntN(40)
		p := 1 + rng.IntN(4)
		a := New(n, p)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		y := make([]float64, n)
		for i := range y {
			y[i] = rng.NormFloat64() * 5
		}
		x, err := SolveLeastSquares(a, y)
		if err != nil {
			t.Fatal(err)
		}
		fitted, _ := a.MulVec(x)
		for j := 0; j < p; j++ {
			var dot, norm float64
			for i := 0; i < n; i++ {
				r := y[i] - fitted[i]
				dot += a.At(i, j) * r
				norm += math.Abs(a.At(i, j))
			}
			if math.Abs(dot) > 1e-8*(1+norm) {
				t.Fatalf("trial %d: residual not orthogonal to column %d: dot=%v", trial, j, dot)
			}
		}
	}
}

func TestMaxAbs(t *testing.T) {
	m, _ := FromRows([][]float64{{1, -5}, {3, 2}})
	if m.MaxAbs() != 5 {
		t.Fatalf("MaxAbs = %v, want 5", m.MaxAbs())
	}
}

func TestCloneIndependence(t *testing.T) {
	f := func(v float64) bool {
		if math.IsNaN(v) {
			v = 1
		}
		m := New(2, 2)
		m.Set(0, 0, v)
		c := m.Clone()
		c.Set(0, 0, v+1)
		return m.At(0, 0) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
