// Package linalg provides the small dense linear-algebra kernel used by the
// model-fitting code: column-major-free dense matrices, Gaussian elimination
// with partial pivoting, Householder QR, and ordinary least squares.
//
// The matrices involved in this project are tiny (design matrices of a few
// hundred rows by ≤4 columns), so the implementation optimises for clarity
// and numerical robustness rather than cache blocking.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix of float64.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// New returns a zeroed Rows×Cols matrix. It panics if either dimension is
// not positive, which always indicates a programming error.
func New(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, errors.New("linalg: FromRows requires a non-empty row set")
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			return nil, fmt.Errorf("linalg: row %d has %d columns, want %d", i, len(r), m.Cols)
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m, nil
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i, j). Bounds are checked by the slice access.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	t := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns m·b. It returns an error when the inner dimensions disagree.
func (m *Matrix) Mul(b *Matrix) (*Matrix, error) {
	if m.Cols != b.Rows {
		return nil, fmt.Errorf("linalg: cannot multiply %dx%d by %dx%d", m.Rows, m.Cols, b.Rows, b.Cols)
	}
	out := New(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			rowB := b.Data[k*b.Cols : (k+1)*b.Cols]
			rowOut := out.Data[i*out.Cols : (i+1)*out.Cols]
			for j, v := range rowB {
				rowOut[j] += a * v
			}
		}
	}
	return out, nil
}

// MulVec returns the matrix–vector product m·x.
func (m *Matrix) MulVec(x []float64) ([]float64, error) {
	if m.Cols != len(x) {
		return nil, fmt.Errorf("linalg: cannot multiply %dx%d by vector of length %d", m.Rows, m.Cols, len(x))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out, nil
}

// MaxAbs returns the largest absolute element value, used in tolerance
// computations.
func (m *Matrix) MaxAbs() float64 {
	var max float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// ErrSingular is returned when a solve encounters a (numerically) singular
// system.
var ErrSingular = errors.New("linalg: matrix is singular to working precision")

// SolveGauss solves the square system A·x = b using Gaussian elimination
// with partial pivoting. A and b are left unmodified.
func SolveGauss(a *Matrix, b []float64) ([]float64, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: SolveGauss requires a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	if a.Rows != len(b) {
		return nil, fmt.Errorf("linalg: dimension mismatch: %dx%d vs b of length %d", a.Rows, a.Cols, len(b))
	}
	n := a.Rows
	// Working copies.
	m := a.Clone()
	x := make([]float64, n)
	copy(x, b)

	for col := 0; col < n; col++ {
		// Partial pivot: find the row with the largest magnitude in col.
		pivot := col
		maxAbs := math.Abs(m.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m.At(r, col)); v > maxAbs {
				maxAbs, pivot = v, r
			}
		}
		if maxAbs < 1e-13*(1+m.MaxAbs()) {
			return nil, ErrSingular
		}
		if pivot != col {
			for j := 0; j < n; j++ {
				m.Data[col*n+j], m.Data[pivot*n+j] = m.Data[pivot*n+j], m.Data[col*n+j]
			}
			x[col], x[pivot] = x[pivot], x[col]
		}
		inv := 1 / m.At(col, col)
		for r := col + 1; r < n; r++ {
			f := m.At(r, col) * inv
			if f == 0 {
				continue
			}
			m.Set(r, col, 0)
			for j := col + 1; j < n; j++ {
				m.Set(r, j, m.At(r, j)-f*m.At(col, j))
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= m.At(i, j) * x[j]
		}
		x[i] = s / m.At(i, i)
	}
	return x, nil
}

// qr holds a packed Householder QR factorisation of an m×n matrix (m >= n),
// following the LINPACK convention: the reflector vectors v_k live in column
// k at rows k..m-1 (with v_k[k] stored on the diagonal), and the diagonal of
// R is kept separately in rdiag. The strict upper triangle holds R.
type qr struct {
	a     *Matrix
	rdiag []float64
	ncols int
}

// factorQR computes the Householder QR factorisation of a (copied, not
// modified). It requires a.Rows >= a.Cols.
func factorQR(a *Matrix) (*qr, error) {
	if a.Rows < a.Cols {
		return nil, fmt.Errorf("linalg: QR requires rows >= cols, got %dx%d", a.Rows, a.Cols)
	}
	m := a.Clone()
	n := m.Cols
	rdiag := make([]float64, n)
	for k := 0; k < n; k++ {
		// Norm of column k over rows k..m-1.
		var norm float64
		for i := k; i < m.Rows; i++ {
			norm = math.Hypot(norm, m.At(i, k))
		}
		if norm == 0 {
			rdiag[k] = 0
			continue
		}
		// Choose the sign so that v_k[k] = 1 + |x_k|/norm >= 1, which keeps
		// the reflector application well conditioned.
		if m.At(k, k) < 0 {
			norm = -norm
		}
		for i := k; i < m.Rows; i++ {
			m.Set(i, k, m.At(i, k)/norm)
		}
		m.Set(k, k, m.At(k, k)+1)
		// Apply the reflector H_k = I − v vᵀ / v[k] to the remaining columns.
		for j := k + 1; j < n; j++ {
			var s float64
			for i := k; i < m.Rows; i++ {
				s += m.At(i, k) * m.At(i, j)
			}
			s = -s / m.At(k, k)
			for i := k; i < m.Rows; i++ {
				m.Set(i, j, m.At(i, j)+s*m.At(i, k))
			}
		}
		rdiag[k] = -norm
	}
	return &qr{a: m, rdiag: rdiag, ncols: n}, nil
}

// solve computes the least-squares solution of A·x ≈ b given the packed
// factorisation. b is not modified.
func (f *qr) solve(b []float64) ([]float64, error) {
	m := f.a
	if m.Rows != len(b) {
		return nil, fmt.Errorf("linalg: QR solve dimension mismatch: %d rows vs b of length %d", m.Rows, len(b))
	}
	n := f.ncols
	y := make([]float64, len(b))
	copy(y, b)
	// Apply the reflectors in order: y = Qᵀ b.
	for k := 0; k < n; k++ {
		if f.rdiag[k] == 0 {
			return nil, ErrSingular
		}
		vk := m.At(k, k)
		var s float64
		for i := k; i < m.Rows; i++ {
			s += m.At(i, k) * y[i]
		}
		s = -s / vk
		for i := k; i < m.Rows; i++ {
			y[i] += s * m.At(i, k)
		}
	}
	// Back substitution against R (diagonal in rdiag, rest in the packed
	// upper triangle).
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= m.At(i, j) * x[j]
		}
		rkk := f.rdiag[i]
		if math.Abs(rkk) < 1e-13 {
			return nil, ErrSingular
		}
		x[i] = s / rkk
	}
	return x, nil
}

// SolveLeastSquares returns the x minimising ‖A·x − b‖₂ via Householder QR.
// It requires A.Rows >= A.Cols and full column rank.
func SolveLeastSquares(a *Matrix, b []float64) ([]float64, error) {
	f, err := factorQR(a)
	if err != nil {
		return nil, err
	}
	return f.solve(b)
}
