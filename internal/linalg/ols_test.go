package linalg

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestOLSRecoversPlantedCoefficients(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	trueBeta := []float64{4.0, -1.5, 0.75}
	n := 500
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := []float64{1, rng.NormFloat64() * 3, rng.NormFloat64() * 2}
		x[i] = row
		y[i] = trueBeta[0]*row[0] + trueBeta[1]*row[1] + trueBeta[2]*row[2] + rng.NormFloat64()*0.01
	}
	res, err := OLS(x, y)
	if err != nil {
		t.Fatal(err)
	}
	for j, want := range trueBeta {
		if math.Abs(res.Coef[j]-want) > 0.01 {
			t.Errorf("coef[%d]: got %v want %v", j, res.Coef[j], want)
		}
	}
	if res.R2 < 0.999 {
		t.Errorf("R2 = %v, want near 1 for near-noiseless data", res.R2)
	}
	if res.N != n || res.P != 3 {
		t.Errorf("bookkeeping wrong: N=%d P=%d", res.N, res.P)
	}
}

func TestOLSPerfectFitHasZeroResiduals(t *testing.T) {
	x := [][]float64{{1, 1}, {1, 2}, {1, 3}}
	y := []float64{5, 7, 9} // y = 3 + 2x exactly
	res, err := OLS(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Coef[0]-3) > 1e-10 || math.Abs(res.Coef[1]-2) > 1e-10 {
		t.Fatalf("coef: %v", res.Coef)
	}
	if res.RSS > 1e-18 {
		t.Errorf("RSS = %v, want 0", res.RSS)
	}
	if math.Abs(res.R2-1) > 1e-12 {
		t.Errorf("R2 = %v, want 1", res.R2)
	}
}

func TestOLSErrors(t *testing.T) {
	if _, err := OLS(nil, nil); err == nil {
		t.Error("expected error for empty design")
	}
	if _, err := OLS([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("expected error for length mismatch")
	}
	if _, err := OLS([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("expected error for underdetermined system")
	}
}

func TestSimpleOLS(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4}
	y := []float64{1, 3, 5, 7, 9} // y = 1 + 2x
	a, b, err := SimpleOLS(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-1) > 1e-10 || math.Abs(b-2) > 1e-10 {
		t.Fatalf("got intercept %v slope %v", a, b)
	}
	if _, _, err := SimpleOLS([]float64{1}, []float64{1}); err == nil {
		t.Error("expected error for single point")
	}
	if _, _, err := SimpleOLS([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("expected error for mismatched lengths")
	}
}

func TestScaleThroughOrigin(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{2.5, 5, 7.5} // y = 2.5x
	c, err := ScaleThroughOrigin(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-2.5) > 1e-12 {
		t.Fatalf("c = %v, want 2.5", c)
	}
	if _, err := ScaleThroughOrigin([]float64{0, 0}, []float64{1, 2}); err == nil {
		t.Error("expected error for all-zero x")
	}
	if _, err := ScaleThroughOrigin([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("expected error for mismatched lengths")
	}
}

func TestScaleThroughOriginMinimises(t *testing.T) {
	// The analytic solution must beat small perturbations of itself.
	rng := rand.New(rand.NewPCG(9, 9))
	x := make([]float64, 100)
	y := make([]float64, 100)
	for i := range x {
		x[i] = rng.Float64()*10 + 0.1
		y[i] = 3*x[i] + rng.NormFloat64()
	}
	c, err := ScaleThroughOrigin(x, y)
	if err != nil {
		t.Fatal(err)
	}
	loss := func(k float64) float64 {
		var s float64
		for i := range x {
			d := y[i] - k*x[i]
			s += d * d
		}
		return s
	}
	base := loss(c)
	for _, eps := range []float64{-0.01, 0.01, -0.1, 0.1} {
		if loss(c+eps) < base {
			t.Errorf("perturbation %v improved the loss; c is not the minimiser", eps)
		}
	}
}
