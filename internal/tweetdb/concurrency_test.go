package tweetdb

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"geomob/internal/tweet"
)

// mkTweet fabricates a valid record.
func mkTweet(id, user, ts int64) tweet.Tweet {
	return tweet.Tweet{ID: id, UserID: user, TS: ts, Lat: -33.8, Lon: 151.2}
}

// TestScanSurvivesConcurrentCompact: an iterator opened before a Compact
// keeps its catalogue snapshot — the retired segment files must not be
// unlinked from under it. Before deferred garbage collection, the scan
// below failed with a missing-segment read error.
func TestScanSurvivesConcurrentCompact(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetSegmentRecords(4); err != nil {
		t.Fatal(err)
	}
	var all []tweet.Tweet
	for i := int64(0); i < 40; i++ {
		all = append(all, mkTweet(i, i%7, i*1000))
	}
	if err := s.Append(all); err != nil {
		t.Fatal(err)
	}

	it := s.Scan(Query{})
	if _, ok := it.Next(); !ok {
		t.Fatalf("first record: %v", it.Err())
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	// The pre-compact iterator must still drain its snapshot completely.
	n := 1
	for {
		_, ok := it.Next()
		if !ok {
			break
		}
		n++
	}
	if err := it.Err(); err != nil {
		t.Fatalf("scan across compact: %v", err)
	}
	if n != len(all) {
		t.Fatalf("scan across compact read %d records, want %d", n, len(all))
	}
	// With the last iterator released, the retired files are gone: only
	// the live catalogue's segments remain on disk.
	liveFiles := map[string]bool{}
	for _, m := range s.Segments() {
		liveFiles[m.File] = true
	}
	entries, err := os.ReadDir(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".gmseg") && !liveFiles[name] {
			t.Errorf("retired segment %s still on disk after scan release", name)
		}
	}
}

// TestIteratorCloseReclaimsGarbage: abandoning an iterator early via
// Close must also let a concurrent Compact's retired files be reclaimed.
func TestIteratorCloseReclaimsGarbage(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetSegmentRecords(2); err != nil {
		t.Fatal(err)
	}
	var all []tweet.Tweet
	for i := int64(0); i < 10; i++ {
		all = append(all, mkTweet(i, i, i*1000))
	}
	if err := s.Append(all); err != nil {
		t.Fatal(err)
	}
	it := s.Scan(Query{})
	if _, ok := it.Next(); !ok {
		t.Fatal("no first record")
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	it.Close()
	if _, ok := it.Next(); ok {
		t.Error("closed iterator yielded a record")
	}
	s.mu.Lock()
	garbage := len(s.garbage)
	s.mu.Unlock()
	if garbage != 0 {
		t.Errorf("%d garbage files left after last iterator closed", garbage)
	}
	if _, err := os.Stat(filepath.Join(s.Dir(), manifestName)); err != nil {
		t.Fatal(err)
	}
}

// TestFlushConcurrentWithScanAndCompact drives an appender's flushes
// against concurrent full scans and compactions (run under -race in CI):
// every flush must land, every scan must decode cleanly from whatever
// catalogue snapshot it took, and the final store must verify.
func TestFlushConcurrentWithScanAndCompact(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetSegmentRecords(8); err != nil {
		t.Fatal(err)
	}
	app, err := NewAppender(s, 8)
	if err != nil {
		t.Fatal(err)
	}

	const batches, perBatch = 24, 8
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	done := make(chan struct{})

	wg.Add(1)
	go func() { // writer: one flush per batch
		defer wg.Done()
		defer close(done)
		id := int64(0)
		for b := 0; b < batches; b++ {
			for i := 0; i < perBatch; i++ {
				if err := app.Add(mkTweet(id, id%11, id*500)); err != nil {
					errs <- err
					return
				}
				id++
			}
			if err := app.Flush(); err != nil {
				errs <- err
				return
			}
		}
	}()
	for r := 0; r < 2; r++ { // readers: full drains, snapshot-consistent
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				if _, err := s.Scan(Query{}).ReadAll(); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() { // compactor
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if err := s.Compact(); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if got, want := s.Count(), int64(batches*perBatch); got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestGenerationBumpsOncePerFlush: every non-empty Flush changes the
// store generation exactly once (one new segment per flush at this batch
// size), and an empty Flush changes nothing.
func TestGenerationBumpsOncePerFlush(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	app, err := NewAppender(s, 16)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{s.Generation(): true}
	id := int64(0)
	for flush := 0; flush < 5; flush++ {
		segsBefore := len(s.Segments())
		for i := 0; i < 10; i++ {
			if err := app.Add(mkTweet(id, id%3, id*1000)); err != nil {
				t.Fatal(err)
			}
			id++
		}
		if err := app.Flush(); err != nil {
			t.Fatal(err)
		}
		if got := len(s.Segments()); got != segsBefore+1 {
			t.Fatalf("flush %d wrote %d segments, want exactly 1", flush, got-segsBefore)
		}
		g := s.Generation()
		if seen[g] {
			t.Fatalf("flush %d did not change the generation", flush)
		}
		seen[g] = true
		// Generation is a pure function of the catalogue: reading it
		// again without writes must not move it.
		if s.Generation() != g {
			t.Fatal("generation moved without a write")
		}
	}
	g := s.Generation()
	if err := app.Flush(); err != nil { // empty flush: no-op
		t.Fatal(err)
	}
	if s.Generation() != g {
		t.Fatal("empty flush changed the generation")
	}
}
