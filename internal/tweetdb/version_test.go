package tweetdb

import (
	"math/rand/v2"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"geomob/internal/geo"
	"geomob/internal/tweet"
)

// edgeBatch builds n records mixing corridor coordinates with the exact
// domain edges (poles, antimeridian) and pre-epoch timestamps — every
// value the v2 column codec must carry without drift.
func edgeBatch(rng *rand.Rand, n int) *tweet.Batch {
	b := &tweet.Batch{}
	b.Grow(n)
	for i := 0; i < n; i++ {
		tw := tweet.Tweet{
			ID:     rng.Int64N(1 << 50),
			UserID: rng.Int64N(1 << 40),
			TS:     rng.Int64N(1<<50) - (1 << 49),
			Lat:    -90 + rng.Float64()*180,
			Lon:    -180 + rng.Float64()*360,
		}
		switch rng.IntN(8) {
		case 0:
			tw.Lat, tw.Lon = 90, 180
		case 1:
			tw.Lat, tw.Lon = -90, -180
		case 2:
			tw.Lon = 180
		case 3:
			tw.Lon = -180
		}
		b.Append(tw)
	}
	return b
}

// quantised maps a record to what any segment round trip may legally
// return: ids and timestamps exact, coordinates quantised to microdegrees
// — identically in v1 and v2.
func quantised(t tweet.Tweet) tweet.Tweet {
	t.Lat = tweet.DegreesFromMicro(tweet.Microdegrees(t.Lat))
	t.Lon = tweet.DegreesFromMicro(tweet.Microdegrees(t.Lon))
	return t
}

func TestColumnPayloadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(81, 82))
	for _, n := range []int{1, 2, 333, 5000} {
		b := edgeBatch(rng, n)
		payload := encodeColumnsV2(nil, b, 0, n)
		blk, err := decodeColumnsV2(payload, n)
		if err != nil {
			t.Fatal(err)
		}
		if blk.Len() != n {
			t.Fatalf("decoded %d rows, want %d", blk.Len(), n)
		}
		for i := 0; i < n; i++ {
			if got, want := blk.Row(i), quantised(b.Row(i)); got != want {
				t.Fatalf("n=%d row %d: %+v != %+v", n, i, got, want)
			}
			if blk.LatMicro(i) != tweet.Microdegrees(b.Lat[i]) || blk.LonMicro(i) != tweet.Microdegrees(b.Lon[i]) {
				t.Fatalf("n=%d row %d: microdegree mismatch", n, i)
			}
		}
	}
	// Sub-range encodes only [from, to).
	b := edgeBatch(rng, 100)
	payload := encodeColumnsV2(nil, b, 25, 75)
	blk, err := decodeColumnsV2(payload, 50)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if blk.Row(i) != quantised(b.Row(i+25)) {
			t.Fatalf("sub-range row %d mismatch", i)
		}
	}
}

func TestColumnPayloadProperty(t *testing.T) {
	f := func(seed uint64, nSeed uint16) bool {
		rng := rand.New(rand.NewPCG(seed, uint64(nSeed)))
		n := 1 + int(nSeed)%129
		b := edgeBatch(rng, n)
		blk, err := decodeColumnsV2(encodeColumnsV2(nil, b, 0, n), n)
		if err != nil || blk.Len() != n {
			return false
		}
		for i := 0; i < n; i++ {
			if blk.Row(i) != quantised(b.Row(i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestColumnPayloadCorruptionNoPanic(t *testing.T) {
	rng := rand.New(rand.NewPCG(91, 92))
	b := edgeBatch(rng, 64)
	payload := encodeColumnsV2(nil, b, 0, 64)
	// Every single-byte flip either fails cleanly (directory bounds or
	// per-column CRC) or — never — decodes to different rows silently.
	for off := 0; off < len(payload); off++ {
		corrupt := append([]byte(nil), payload...)
		corrupt[off] ^= 0x5a
		blk, err := decodeColumnsV2(corrupt, 64)
		if err != nil {
			continue
		}
		for i := 0; i < 64; i++ {
			if blk.Row(i) != quantised(b.Row(i)) {
				t.Fatalf("byte %d: silent corruption", off)
			}
		}
	}
	// Truncations fail cleanly.
	for i := 0; i < 200; i++ {
		cut := rng.IntN(len(payload))
		if _, err := decodeColumnsV2(payload[:cut], 64); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
	// A wrong record count is rejected.
	if _, err := decodeColumnsV2(payload, 63); err == nil {
		t.Error("under-claimed count accepted")
	}
	if _, err := decodeColumnsV2(payload, 65); err == nil {
		t.Error("over-claimed count accepted")
	}
}

// appendWithVersion appends tweets to s, writing segments in the given
// format version.
func appendWithVersion(t *testing.T, s *Store, version uint16, tweets []tweet.Tweet) {
	t.Helper()
	s.mu.Lock()
	s.segVersion = version
	s.mu.Unlock()
	if err := s.Append(tweets); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	s.segVersion = segVersionV2
	s.mu.Unlock()
}

// TestMixedVersionScanBitIdentical: a store holding both v1 and v2
// segments answers every query bit-identically to an all-v1 store over
// the same appends — the compatibility contract that let the v2 format
// land without a migration.
func TestMixedVersionScanBitIdentical(t *testing.T) {
	batch1 := makeTweets(7, 1200)
	batch2 := makeTweets(8, 900)

	mixed := openStore(t)
	if err := mixed.SetSegmentRecords(500); err != nil {
		t.Fatal(err)
	}
	appendWithVersion(t, mixed, segVersionV1, batch1)
	appendWithVersion(t, mixed, segVersionV2, batch2)

	allV1 := openStore(t)
	if err := allV1.SetSegmentRecords(500); err != nil {
		t.Fatal(err)
	}
	appendWithVersion(t, allV1, segVersionV1, batch1)
	appendWithVersion(t, allV1, segVersionV1, batch2)

	user := int64(7)
	minU, maxU := int64(10), int64(30)
	bbox := &geo.BBox{MinLat: -37, MinLon: 145, MaxLat: -34, MaxLon: 151}
	queries := []Query{
		{},
		{FromTS: 1378000020000, ToTS: 1378000090000},
		{UserID: &user},
		{MinUserID: &minU, MaxUserID: &maxU},
		{BBox: bbox},
		{FromTS: 1378000010000, BBox: bbox, MinUserID: &minU},
	}
	for qi, q := range queries {
		got, err := mixed.Scan(q).ReadAll()
		if err != nil {
			t.Fatal(err)
		}
		want, err := allV1.Scan(q).ReadAll()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("query %d: mixed %d rows, all-v1 %d rows", qi, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("query %d row %d: %+v != %+v", qi, i, got[i], want[i])
			}
		}
		if qi == 0 && len(got) != len(batch1)+len(batch2) {
			t.Fatalf("full scan returned %d rows", len(got))
		}
	}
}

// segmentVersions reads the on-disk header version of every catalogued
// segment file.
func segmentVersions(t *testing.T, s *Store) []uint16 {
	t.Helper()
	var out []uint16
	for _, meta := range s.Segments() {
		raw, err := os.ReadFile(filepath.Join(s.Dir(), meta.File))
		if err != nil {
			t.Fatal(err)
		}
		h, err := unmarshalHeader(raw)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, h.version)
	}
	return out
}

// TestCompactUpgradesMixedToV2: compacting a store with mixed v1/v2
// segments emits only v2 segments, preserves every record bit-for-bit
// (modulo the global sort Compact exists to establish), keeps manifest
// semantics — one catalogue swap, so Generation moves exactly once — and
// survives a reopen.
func TestCompactUpgradesMixedToV2(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetSegmentRecords(700); err != nil {
		t.Fatal(err)
	}
	appendWithVersion(t, s, segVersionV1, makeTweets(11, 1000))
	appendWithVersion(t, s, segVersionV2, makeTweets(12, 800))
	appendWithVersion(t, s, segVersionV1, makeTweets(13, 300))

	hasV1 := false
	for _, v := range segmentVersions(t, s) {
		if v == segVersionV1 {
			hasV1 = true
		}
	}
	if !hasV1 {
		t.Fatal("setup: no v1 segments on disk")
	}

	before, err := s.Scan(Query{}).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	genBefore := s.Generation()

	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}

	genAfter := s.Generation()
	if genAfter == genBefore {
		t.Error("Compact did not change the generation")
	}
	// Generation is a pure function of the swapped catalogue: it moved
	// with the compaction and now holds still.
	if s.Generation() != genAfter {
		t.Error("generation unstable after Compact")
	}

	for i, v := range segmentVersions(t, s) {
		if v != segVersionV2 {
			t.Errorf("post-compact segment %d still version %d", i, v)
		}
	}
	want := (len(before) + 699) / 700
	if got := len(s.Segments()); got != want {
		t.Errorf("post-compact segments = %d, want %d", got, want)
	}

	after, err := s.Scan(Query{}).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) {
		t.Fatalf("compact changed row count %d -> %d", len(before), len(after))
	}
	seen := map[tweet.Tweet]int{}
	for _, tw := range before {
		seen[tw]++
	}
	for _, tw := range after {
		seen[tw]--
		if seen[tw] < 0 {
			t.Fatalf("compact invented record %+v", tw)
		}
	}
	sorted, err := s.IsSorted()
	if err != nil {
		t.Fatal(err)
	}
	if !sorted {
		t.Error("compacted store is not globally sorted")
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}

	// The upgraded catalogue is what a reopen sees.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Generation() != genAfter {
		t.Error("reopened generation differs")
	}
	if err := s2.Verify(); err != nil {
		t.Fatal(err)
	}
}
