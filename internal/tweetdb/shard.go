package tweetdb

// Shard planning for the parallel Study pipeline: a query is split into
// user-disjoint sub-queries using only segment metadata, so the split
// costs no payload reads. On a compacted store the catalogue is in global
// (user, time) order and segments are user-ranged, which makes each
// sub-query's matching records a contiguous run of the catalogue: scanning
// the sub-queries concurrently touches each segment payload at most a
// couple of times (boundary users may straddle two segments).

// ShardQueries splits q into at most n user-disjoint sub-queries whose
// union matches exactly the records q matches. The split is balanced by
// record count using the per-segment metadata and is deterministic for a
// given catalogue. Fewer than n sub-queries are returned when the live
// segment count cannot support the requested parallelism.
func (s *Store) ShardQueries(q Query, n int) []Query {
	live := make([]SegmentMeta, 0)
	var total int64
	for _, m := range s.Segments() {
		if q.prunes(m) {
			continue
		}
		live = append(live, m)
		total += int64(m.Count)
	}
	if n <= 1 || len(live) < 2 || total == 0 {
		return []Query{q}
	}

	// Choose user-id cut points at segment boundaries so that each shard
	// holds roughly total/n records. A cut at user id c ends a shard with
	// the half-open user range (prev, c]; records of user c that spill
	// into the next segment still belong to this shard by id.
	var cuts []int64
	var cum int64
	next := int64(1)
	for i, m := range live {
		cum += int64(m.Count)
		if i == len(live)-1 {
			break // the final shard always runs to the end of the range
		}
		if cum >= next*total/int64(n) {
			if len(cuts) == 0 || m.MaxUser > cuts[len(cuts)-1] {
				cuts = append(cuts, m.MaxUser)
			}
			next++
			if next >= int64(n) {
				break
			}
		}
	}
	if len(cuts) == 0 {
		return []Query{q}
	}

	out := make([]Query, 0, len(cuts)+1)
	var lo *int64
	for _, c := range cuts {
		sub := q
		sub.MinUserID = maxUserBound(q.MinUserID, lo)
		cc := c
		sub.MaxUserID = minUserBound(q.MaxUserID, &cc)
		out = append(out, sub)
		nextLo := c + 1
		lo = &nextLo
	}
	last := q
	last.MinUserID = maxUserBound(q.MinUserID, lo)
	out = append(out, last)
	return out
}

// maxUserBound returns the tighter (larger) of two optional lower bounds.
func maxUserBound(a, b *int64) *int64 {
	if a == nil {
		return b
	}
	if b == nil || *a > *b {
		return a
	}
	return b
}

// minUserBound returns the tighter (smaller) of two optional upper bounds.
func minUserBound(a, b *int64) *int64 {
	if a == nil {
		return b
	}
	if b == nil || *a < *b {
		return a
	}
	return b
}
