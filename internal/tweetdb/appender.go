package tweetdb

import (
	"fmt"

	"geomob/internal/tweet"
)

// Appender buffers streaming writes into batched Append calls, bounding
// memory while ingesting corpora far larger than RAM would allow as a
// single slice. It is the ingestion front door used by cmd/mobgen and the
// live ingest path. The buffer is columnar, so batched callers hand whole
// column slices through to segment encoding without materialising
// per-record values.
//
// An Appender is not safe for concurrent use; wrap it or shard streams by
// writer. Always call Flush (or Close) at the end — buffered records are
// otherwise lost.
type Appender struct {
	store *Store
	buf   *tweet.Batch
	limit int
	total int64
}

// NewAppender creates an appender flushing every batchSize records.
// batchSize 0 selects DefaultSegmentRecords.
func NewAppender(store *Store, batchSize int) (*Appender, error) {
	if store == nil {
		return nil, fmt.Errorf("tweetdb: appender requires a store")
	}
	if batchSize == 0 {
		batchSize = DefaultSegmentRecords
	}
	if batchSize < 1 {
		return nil, fmt.Errorf("tweetdb: appender batch size must be positive, got %d", batchSize)
	}
	b := &tweet.Batch{}
	b.Grow(batchSize)
	return &Appender{
		store: store,
		buf:   b,
		limit: batchSize,
	}, nil
}

// Add buffers one record, flushing when the batch fills.
func (a *Appender) Add(t tweet.Tweet) error {
	if err := t.Validate(); err != nil {
		return fmt.Errorf("tweetdb: appender: %w", err)
	}
	a.buf.Append(t)
	if a.buf.Len() >= a.limit {
		return a.Flush()
	}
	return nil
}

// AppendBatch buffers a whole batch column-wise, flushing if the buffer
// reaches its limit. The records are copied into the appender's buffer
// before any write is attempted, so the appender owns every record handed
// to it even when a flush fails — a later Flush retries them.
func (a *Appender) AppendBatch(b *tweet.Batch) error {
	if b.Len() == 0 {
		return nil
	}
	a.buf.AppendBatch(b)
	if a.buf.Len() >= a.limit {
		return a.Flush()
	}
	return nil
}

// Flush writes any buffered records as a segment batch. On failure the
// buffer is retained for retry.
func (a *Appender) Flush() error {
	if a.buf.Len() == 0 {
		return nil
	}
	if err := a.store.AppendBatch(a.buf); err != nil {
		return fmt.Errorf("tweetdb: appender flush: %w", err)
	}
	a.total += int64(a.buf.Len())
	a.buf.Reset()
	return nil
}

// Close flushes outstanding records. The appender may not be used after
// Close.
func (a *Appender) Close() error {
	err := a.Flush()
	a.buf = &tweet.Batch{}
	a.limit = 0
	return err
}

// Total returns the number of records durably written so far (excluding
// any still buffered).
func (a *Appender) Total() int64 { return a.total }
