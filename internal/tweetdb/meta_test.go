package tweetdb

import (
	"testing"

	"geomob/internal/tweet"
)

// TestManifestMeta: meta entries commit atomically with the append's
// manifest save and survive reopen — the cluster's delivery high-water
// marks depend on exactly this coupling.
func TestManifestMeta(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	b := tweet.BatchOf([]tweet.Tweet{
		{ID: 1, UserID: 10, TS: 1378000000000, Lat: -33.8, Lon: 151.2},
		{ID: 2, UserID: 10, TS: 1378000001000, Lat: -33.8, Lon: 151.2},
	})
	if err := s.AppendBatchMeta(b, map[string]string{"hwm:abc": "7"}); err != nil {
		t.Fatal(err)
	}
	if got := s.Meta("hwm:abc"); got != "7" {
		t.Fatalf("Meta(hwm:abc) = %q, want 7", got)
	}
	if got := s.Meta("absent"); got != "" {
		t.Fatalf("Meta(absent) = %q, want empty", got)
	}

	// Meta-only update (no rows) must still persist.
	if err := s.AppendBatchMeta(&tweet.Batch{}, map[string]string{"hwm:def": "3"}); err != nil {
		t.Fatal(err)
	}
	// Merge semantics: later appends overwrite the same key.
	b2 := tweet.BatchOf([]tweet.Tweet{
		{ID: 3, UserID: 11, TS: 1378000002000, Lat: -33.8, Lon: 151.2},
	})
	if err := s.AppendBatchMeta(b2, map[string]string{"hwm:abc": "9"}); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Meta("hwm:abc"); got != "9" {
		t.Fatalf("reopened Meta(hwm:abc) = %q, want 9", got)
	}
	all := s2.MetaPrefix("hwm:")
	if len(all) != 2 || all["hwm:def"] != "3" {
		t.Fatalf("MetaPrefix(hwm:) = %v", all)
	}
	if got := s2.Count(); got != 3 {
		t.Fatalf("Count = %d, want 3", got)
	}
}
