package tweetdb

import (
	"fmt"

	"geomob/internal/geo"
	"geomob/internal/tweet"
)

// Query restricts a scan. Zero-value fields impose no restriction.
type Query struct {
	// FromTS and ToTS bound the tweet timestamp in milliseconds:
	// FromTS <= TS < ToTS. A zero ToTS means unbounded above.
	FromTS, ToTS int64
	// BBox restricts results spatially when non-nil.
	BBox *geo.BBox
	// UserID restricts results to one author when non-nil.
	UserID *int64
	// MinUserID and MaxUserID bound the author id inclusively when
	// non-nil. User ranges are the shard primitive of the parallel Study
	// pipeline: ShardQueries splits a query into user-disjoint ranges
	// that can be scanned concurrently.
	MinUserID, MaxUserID *int64
	// Files restricts the scan to the named segment files when non-nil.
	// Recovery uses it to replay exactly the manifest tail — the
	// segments appended after the last durable snapshot — without
	// touching the (much larger) covered prefix.
	Files []string
}

// matches reports whether a single record satisfies the query.
func (q Query) matches(t tweet.Tweet) bool {
	if t.TS < q.FromTS {
		return false
	}
	if q.ToTS != 0 && t.TS >= q.ToTS {
		return false
	}
	if q.UserID != nil && t.UserID != *q.UserID {
		return false
	}
	if q.MinUserID != nil && t.UserID < *q.MinUserID {
		return false
	}
	if q.MaxUserID != nil && t.UserID > *q.MaxUserID {
		return false
	}
	if q.BBox != nil && !q.BBox.Contains(t.Point()) {
		return false
	}
	return true
}

// matchesRow is matches over a column block row, without materialising
// the record.
func (q Query) matchesRow(blk *ColumnBlock, i int) bool {
	ts := blk.TS[i]
	if ts < q.FromTS {
		return false
	}
	if q.ToTS != 0 && ts >= q.ToTS {
		return false
	}
	u := blk.UserID[i]
	if q.UserID != nil && u != *q.UserID {
		return false
	}
	if q.MinUserID != nil && u < *q.MinUserID {
		return false
	}
	if q.MaxUserID != nil && u > *q.MaxUserID {
		return false
	}
	if q.BBox != nil && !q.BBox.Contains(blk.Point(i)) {
		return false
	}
	return true
}

// coversSegment reports whether every record of the segment is known to
// match from metadata alone — the dual of prunes, and the condition for
// handing a loaded block to the consumer without per-row filtering.
// Spatial queries never take the fast path: segment bounding boxes track
// unquantised coordinates, so edge rows are only decided exactly by the
// per-row check.
func (q Query) coversSegment(m SegmentMeta) bool {
	if q.BBox != nil {
		return false
	}
	if m.MinTS < q.FromTS {
		return false
	}
	if q.ToTS != 0 && m.MaxTS >= q.ToTS {
		return false
	}
	if q.UserID != nil && (m.MinUser != *q.UserID || m.MaxUser != *q.UserID) {
		return false
	}
	if q.MinUserID != nil && m.MinUser < *q.MinUserID {
		return false
	}
	if q.MaxUserID != nil && m.MaxUser > *q.MaxUserID {
		return false
	}
	return true
}

// prunes reports whether an entire segment can be skipped without reading
// its payload — the predicate-pushdown fast path.
func (q Query) prunes(m SegmentMeta) bool {
	if q.ToTS != 0 && m.MinTS >= q.ToTS {
		return true
	}
	if m.MaxTS < q.FromTS {
		return true
	}
	if q.UserID != nil && (*q.UserID < m.MinUser || *q.UserID > m.MaxUser) {
		return true
	}
	if q.MinUserID != nil && m.MaxUser < *q.MinUserID {
		return true
	}
	if q.MaxUserID != nil && m.MinUser > *q.MaxUserID {
		return true
	}
	if q.BBox != nil && !q.BBox.Intersects(m.BBox()) {
		return true
	}
	return false
}

// Iterator streams query results segment by segment. It is not safe for
// concurrent use. An iterator holds a catalogue snapshot: it keeps
// observing the segment set of its Scan call even across a concurrent
// Compact (whose retired files are unlinked only once every in-flight
// iterator finishes or is closed).
type Iterator struct {
	store    *Store
	query    Query
	segments []SegmentMeta
	segIdx   int
	block    *ColumnBlock
	rowIdx   int
	covered  bool // every row of block matches; no per-row filtering needed
	err      error
	released bool
	scanned  int // segments whose payload was decoded
	prunedN  int // segments skipped via metadata
}

// Scan returns an iterator over all records matching q. Results arrive in
// (user, time) order within each segment; use Compact for global order.
// Iterators release themselves when drained or failed; abandon one early
// only via Close, which lets the store reclaim compacted-away files.
func (s *Store) Scan(q Query) *Iterator {
	s.scans.Add(1)
	mScans.Inc()
	s.activeScans.Add(1)
	segments := s.Segments()
	if q.Files != nil {
		want := make(map[string]bool, len(q.Files))
		for _, f := range q.Files {
			want[f] = true
		}
		kept := segments[:0]
		for _, m := range segments {
			if want[m.File] {
				kept = append(kept, m)
			}
		}
		segments = kept
	}
	return &Iterator{store: s, query: q, segments: segments}
}

// release marks the iterator finished exactly once.
func (it *Iterator) release() {
	if !it.released {
		it.released = true
		it.store.scanReleased()
	}
}

// Close releases the iterator without draining it. It is idempotent and
// also implied by draining to exhaustion or hitting an error; every
// early-exiting consumer must call it (typically via defer) so a
// concurrent Compact's retired files do not linger.
func (it *Iterator) Close() {
	it.segIdx = len(it.segments)
	it.block = nil
	it.release()
}

// loadNext decodes the next non-pruned segment into it.block. It returns
// false when the scan is exhausted or failed.
func (it *Iterator) loadNext() bool {
	for {
		if it.segIdx >= len(it.segments) {
			it.release()
			return false
		}
		meta := it.segments[it.segIdx]
		it.segIdx++
		if it.query.prunes(meta) {
			it.prunedN++
			continue
		}
		blk, err := it.store.loadBlock(meta)
		if err != nil {
			it.err = err
			it.release()
			return false
		}
		it.scanned++
		it.block = blk
		it.rowIdx = 0
		it.covered = it.query.coversSegment(meta)
		return true
	}
}

// Next returns the next matching tweet. ok is false when the scan is
// exhausted or failed; check Err afterwards.
func (it *Iterator) Next() (t tweet.Tweet, ok bool) {
	if it.err != nil {
		it.release()
		return tweet.Tweet{}, false
	}
	for {
		for it.block != nil && it.rowIdx < it.block.Len() {
			i := it.rowIdx
			it.rowIdx++
			if it.covered || it.query.matchesRow(it.block, i) {
				return it.block.Row(i), true
			}
		}
		if !it.loadNext() {
			return tweet.Tweet{}, false
		}
	}
}

// NextBlock returns the next run of matching records as a column block —
// the zero-copy scan path. When the query covers a whole segment (always
// the case for the unrestricted scans of backfill and compaction) the
// block aliases the segment file bytes directly; otherwise matching rows
// are gathered into a fresh block. ok is false when the scan is exhausted
// or failed; check Err afterwards. Mixing NextBlock with Next is allowed:
// NextBlock resumes from the first unconsumed row.
func (it *Iterator) NextBlock() (blk *ColumnBlock, ok bool) {
	if it.err != nil {
		it.release()
		return nil, false
	}
	for {
		if it.block != nil && it.rowIdx < it.block.Len() {
			cur, start := it.block, it.rowIdx
			it.block, it.rowIdx = nil, 0
			if it.covered && start == 0 {
				return cur, true
			}
			out := &ColumnBlock{}
			for i := start; i < cur.Len(); i++ {
				if it.covered || it.query.matchesRow(cur, i) {
					out.appendRow(cur, i)
				}
			}
			if out.Len() > 0 {
				return out, true
			}
			continue
		}
		it.block = nil
		if !it.loadNext() {
			return nil, false
		}
	}
}

// Err returns the first error the iterator hit, if any.
func (it *Iterator) Err() error { return it.err }

// Stats returns how many segments were decoded and how many were pruned by
// metadata alone — the observable effect of predicate pushdown.
func (it *Iterator) Stats() (scanned, pruned int) { return it.scanned, it.prunedN }

// ReadAll drains the iterator into a slice.
func (it *Iterator) ReadAll() ([]tweet.Tweet, error) {
	var out []tweet.Tweet
	for {
		t, ok := it.Next()
		if !ok {
			break
		}
		out = append(out, t)
	}
	return out, it.Err()
}

// Compact merges every segment into a fresh set of segments holding all
// records in global (user, time) order, replacing the old catalogue and
// deleting the old files. Mobility extraction requires this order.
// Compacted segments are always written in the current format, so a
// compaction pass also upgrades any remaining v1 segments to v2.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.man.Segments) == 0 {
		return nil
	}
	all := &tweet.Batch{}
	for _, meta := range s.man.Segments {
		blk, err := s.loadBlock(meta)
		if err != nil {
			return fmt.Errorf("tweetdb: compact: %w", err)
		}
		blk.AppendTo(all, 0, blk.Len())
	}
	all.Sort()
	old := s.man.Segments
	s.man.Segments = nil
	for off := 0; off < all.Len(); off += s.segRecords {
		end := off + s.segRecords
		if end > all.Len() {
			end = all.Len()
		}
		if err := s.writeSegmentLocked(all, off, end); err != nil {
			return fmt.Errorf("tweetdb: compact: %w", err)
		}
	}
	if err := s.saveManifestLocked(); err != nil {
		return err
	}
	// Old files are garbage only after the manifest no longer references
	// them — but an in-flight iterator's catalogue snapshot may still,
	// so deletion is deferred until the store goes scan-idle instead of
	// yanking files out from under concurrent readers.
	for _, meta := range old {
		s.garbage = append(s.garbage, meta.File)
	}
	s.dropGarbageLocked()
	mCompactions.Inc()
	return nil
}

// IsSorted reports whether the catalogue as a whole yields records in
// global (user, time) order, i.e. Compact has established the canonical
// layout and no appends broke it.
func (s *Store) IsSorted() (bool, error) {
	it := s.Scan(Query{})
	defer it.Close()
	var prev tweet.Tweet
	first := true
	for {
		t, ok := it.Next()
		if !ok {
			break
		}
		if !first {
			if t.UserID < prev.UserID || (t.UserID == prev.UserID && t.TS < prev.TS) {
				return false, nil
			}
		}
		prev, first = t, false
	}
	return it.Err() == nil, it.Err()
}
