package tweetdb

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"geomob/internal/tweet"
)

// randomBatch is a quick.Generator producing valid tweet batches with
// adversarial shapes: duplicate users, identical timestamps, boundary
// coordinates. Note the math/rand (v1) signature required by
// quick.Generator.
type randomBatch []tweet.Tweet

// Generate implements quick.Generator.
func (randomBatch) Generate(r *rand.Rand, size int) reflect.Value {
	n := 1 + r.Intn(size*4+1)
	batch := make(randomBatch, n)
	ts := int64(1_000_000_000_000) + int64(r.Intn(1_000_000))
	for i := range batch {
		if r.Intn(4) > 0 { // mostly increasing timestamps, some ties
			ts += int64(r.Intn(100_000))
		}
		lat := -90 + r.Float64()*180
		lon := -180 + r.Float64()*360
		switch r.Intn(10) {
		case 0:
			lat, lon = -90, -180 // corner
		case 1:
			lat, lon = 90, 180 // corner
		}
		batch[i] = tweet.Tweet{
			ID:     int64(i),
			UserID: int64(r.Intn(7)), // heavy duplication
			TS:     ts,
			Lat:    lat,
			Lon:    lon,
		}
	}
	return reflect.ValueOf(batch)
}

// TestPropertyStoreRoundTrip: any valid batch survives append + scan as an
// identical multiset, up to coordinate quantisation.
func TestPropertyStoreRoundTrip(t *testing.T) {
	f := func(batch randomBatch) bool {
		dir := t.TempDir()
		store, err := Open(dir)
		if err != nil {
			return false
		}
		if err := store.Append(batch); err != nil {
			return false
		}
		got, err := store.Scan(Query{}).ReadAll()
		if err != nil {
			return false
		}
		if len(got) != len(batch) {
			return false
		}
		// Compare as multisets keyed by ID; coordinates are microdegree-
		// quantised by the codec.
		byID := map[int64]tweet.Tweet{}
		for _, tw := range batch {
			byID[tw.ID] = tw
		}
		for _, g := range got {
			want, ok := byID[g.ID]
			if !ok {
				return false
			}
			if g.UserID != want.UserID || g.TS != want.TS {
				return false
			}
			if absF(g.Lat-want.Lat) > 5.1e-7 || absF(g.Lon-want.Lon) > 5.1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestPropertyCompactPreservesMultiset: compaction never loses or invents
// records, for any batch composition.
func TestPropertyCompactPreservesMultiset(t *testing.T) {
	f := func(b1, b2 randomBatch) bool {
		dir := t.TempDir()
		store, err := Open(dir)
		if err != nil {
			return false
		}
		// Re-key IDs so the two batches do not collide.
		for i := range b2 {
			b2[i].ID += int64(len(b1)) + 1000
		}
		if err := store.Append(b1); err != nil {
			return false
		}
		if err := store.Append(b2); err != nil {
			return false
		}
		before := store.Count()
		if err := store.Compact(); err != nil {
			return false
		}
		if store.Count() != before {
			return false
		}
		got, err := store.Scan(Query{}).ReadAll()
		if err != nil || int64(len(got)) != before {
			return false
		}
		return sort.IsSorted(tweet.ByUserTime(got))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestPropertyQueryIsFilter: for any batch and any time window, scanning
// with the window equals scanning everything and filtering client-side.
func TestPropertyQueryIsFilter(t *testing.T) {
	f := func(batch randomBatch, fromOff, width uint32) bool {
		dir := t.TempDir()
		store, err := Open(dir)
		if err != nil {
			return false
		}
		if err := store.Append(batch); err != nil {
			return false
		}
		from := int64(1_000_000_000_000) + int64(fromOff%2_000_000)
		to := from + int64(width%2_000_000) + 1
		q := Query{FromTS: from, ToTS: to}
		got, err := store.Scan(q).ReadAll()
		if err != nil {
			return false
		}
		all, err := store.Scan(Query{}).ReadAll()
		if err != nil {
			return false
		}
		want := 0
		for _, tw := range all {
			if tw.TS >= from && tw.TS < to {
				want++
			}
		}
		return len(got) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func absF(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
