package tweetdb

import (
	"math/rand/v2"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"geomob/internal/geo"
	"geomob/internal/tweet"
)

// makeTweets builds a deterministic batch of n tweets across users spread
// over the Sydney–Melbourne corridor.
func makeTweets(seed uint64, n int) []tweet.Tweet {
	rng := rand.New(rand.NewPCG(seed, seed+1))
	out := make([]tweet.Tweet, n)
	ts := int64(1378000000000)
	for i := range out {
		ts += int64(rng.IntN(120000))
		out[i] = tweet.Tweet{
			ID:     int64(i),
			UserID: int64(rng.IntN(50)),
			TS:     ts,
			Lat:    -38 + rng.Float64()*5, // [-38, -33]
			Lon:    144 + rng.Float64()*8, // [144, 152]
		}
	}
	return out
}

func openStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestAppendScanRoundTrip(t *testing.T) {
	s := openStore(t)
	tweets := makeTweets(1, 3000)
	if err := s.Append(tweets); err != nil {
		t.Fatal(err)
	}
	if s.Count() != int64(len(tweets)) {
		t.Fatalf("Count = %d, want %d", s.Count(), len(tweets))
	}
	got, err := s.Scan(Query{}).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(tweets) {
		t.Fatalf("scanned %d, want %d", len(got), len(tweets))
	}
	// Same multiset of IDs.
	seen := map[int64]bool{}
	for _, tw := range got {
		if seen[tw.ID] {
			t.Fatalf("duplicate id %d", tw.ID)
		}
		seen[tw.ID] = true
	}
	for _, tw := range tweets {
		if !seen[tw.ID] {
			t.Fatalf("missing id %d", tw.ID)
		}
	}
}

func TestReopenPersists(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	tweets := makeTweets(2, 500)
	if err := s.Append(tweets); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Count() != int64(len(tweets)) {
		t.Fatalf("reopened Count = %d", s2.Count())
	}
	if err := s2.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestAppendEmptyIsNoop(t *testing.T) {
	s := openStore(t)
	if err := s.Append(nil); err != nil {
		t.Fatal(err)
	}
	if s.Count() != 0 || len(s.Segments()) != 0 {
		t.Error("empty append should not create segments")
	}
}

func TestTimeRangeQueryAndPruning(t *testing.T) {
	s := openStore(t)
	// Three batches with disjoint time ranges → three segments.
	base := int64(1378000000000)
	for b := 0; b < 3; b++ {
		var batch []tweet.Tweet
		for i := 0; i < 100; i++ {
			batch = append(batch, tweet.Tweet{
				ID: int64(b*100 + i), UserID: int64(i % 5),
				TS:  base + int64(b)*1_000_000_000 + int64(i)*1000,
				Lat: -33.8, Lon: 151.2,
			})
		}
		if err := s.Append(batch); err != nil {
			t.Fatal(err)
		}
	}
	// Query only the middle batch's range.
	q := Query{FromTS: base + 1_000_000_000, ToTS: base + 2_000_000_000}
	it := s.Scan(q)
	got, err := it.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("got %d, want 100", len(got))
	}
	for _, tw := range got {
		if tw.TS < q.FromTS || tw.TS >= q.ToTS {
			t.Fatalf("tweet %d outside range", tw.ID)
		}
	}
	scanned, pruned := it.Stats()
	if scanned != 1 || pruned != 2 {
		t.Errorf("pushdown failed: scanned=%d pruned=%d, want 1/2", scanned, pruned)
	}
}

func TestBBoxQueryAndPruning(t *testing.T) {
	s := openStore(t)
	sydneyBatch := make([]tweet.Tweet, 100)
	perthBatch := make([]tweet.Tweet, 100)
	for i := 0; i < 100; i++ {
		sydneyBatch[i] = tweet.Tweet{ID: int64(i), UserID: 1, TS: int64(i + 1), Lat: -33.8, Lon: 151.2}
		perthBatch[i] = tweet.Tweet{ID: int64(100 + i), UserID: 2, TS: int64(i + 1), Lat: -31.9, Lon: 115.8}
	}
	if err := s.Append(sydneyBatch); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(perthBatch); err != nil {
		t.Fatal(err)
	}
	box := geo.BoundAround(geo.Point{Lat: -33.8, Lon: 151.2}, 100_000)
	it := s.Scan(Query{BBox: &box})
	got, err := it.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("got %d, want 100", len(got))
	}
	if scanned, pruned := it.Stats(); scanned != 1 || pruned != 1 {
		t.Errorf("bbox pushdown failed: scanned=%d pruned=%d", scanned, pruned)
	}
}

func TestUserQueryAndPruning(t *testing.T) {
	s := openStore(t)
	// Users 0..9 in one segment, users 100..109 in another.
	var lo, hi []tweet.Tweet
	for i := 0; i < 200; i++ {
		lo = append(lo, tweet.Tweet{ID: int64(i), UserID: int64(i % 10), TS: int64(i + 1), Lat: -33, Lon: 151})
		hi = append(hi, tweet.Tweet{ID: int64(1000 + i), UserID: int64(100 + i%10), TS: int64(i + 1), Lat: -33, Lon: 151})
	}
	if err := s.Append(lo); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(hi); err != nil {
		t.Fatal(err)
	}
	uid := int64(105)
	it := s.Scan(Query{UserID: &uid})
	got, err := it.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 20 {
		t.Fatalf("got %d, want 20", len(got))
	}
	for _, tw := range got {
		if tw.UserID != uid {
			t.Fatalf("wrong user %d", tw.UserID)
		}
	}
	if scanned, pruned := it.Stats(); scanned != 1 || pruned != 1 {
		t.Errorf("user pushdown failed: scanned=%d pruned=%d", scanned, pruned)
	}
}

func TestCompactEstablishesGlobalOrder(t *testing.T) {
	s := openStore(t)
	// Append in time-interleaved batches so user order is split across
	// segments.
	all := makeTweets(7, 4000)
	for off := 0; off < len(all); off += 400 {
		if err := s.Append(all[off : off+400]); err != nil {
			t.Fatal(err)
		}
	}
	if sorted, err := s.IsSorted(); err != nil || sorted {
		t.Fatalf("pre-compact: sorted=%v err=%v (want unsorted)", sorted, err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if s.Count() != int64(len(all)) {
		t.Fatalf("post-compact Count = %d", s.Count())
	}
	sorted, err := s.IsSorted()
	if err != nil {
		t.Fatal(err)
	}
	if !sorted {
		t.Fatal("compact did not establish (user, time) order")
	}
	// Old segment files must be gone: only current catalogue + manifest.
	entries, err := os.ReadDir(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{manifestName: true}
	for _, meta := range s.Segments() {
		want[meta.File] = true
	}
	for _, e := range entries {
		if !want[e.Name()] {
			t.Errorf("stale file %s after compaction", e.Name())
		}
	}
}

func TestCompactEmptyStore(t *testing.T) {
	s := openStore(t)
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentSplitAtCap(t *testing.T) {
	s := openStore(t)
	n := DefaultSegmentRecords + 10
	tweets := make([]tweet.Tweet, n)
	for i := range tweets {
		tweets[i] = tweet.Tweet{ID: int64(i), UserID: int64(i), TS: int64(i + 1), Lat: -33, Lon: 151}
	}
	if err := s.Append(tweets); err != nil {
		t.Fatal(err)
	}
	segs := s.Segments()
	if len(segs) != 2 {
		t.Fatalf("got %d segments, want 2", len(segs))
	}
	if segs[0].Count != DefaultSegmentRecords || segs[1].Count != 10 {
		t.Errorf("segment sizes %d/%d", segs[0].Count, segs[1].Count)
	}
}

func TestVerifyDetectsPayloadCorruption(t *testing.T) {
	s := openStore(t)
	if err := s.Append(makeTweets(3, 1000)); err != nil {
		t.Fatal(err)
	}
	seg := s.Segments()[0]
	path := filepath.Join(s.Dir(), seg.File)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte.
	raw[headerSize+len(raw)/2] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	err = s.Verify()
	if err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Errorf("corruption not detected: %v", err)
	}
	// Scans must surface the same failure.
	_, err = s.Scan(Query{}).ReadAll()
	if err == nil {
		t.Error("scan of corrupt segment should fail")
	}
}

func TestVerifyDetectsTruncation(t *testing.T) {
	s := openStore(t)
	if err := s.Append(makeTweets(4, 1000)); err != nil {
		t.Fatal(err)
	}
	seg := s.Segments()[0]
	path := filepath.Join(s.Dir(), seg.File)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)*2/3], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(); err == nil {
		t.Error("truncation not detected")
	}
}

func TestVerifyDetectsBadMagic(t *testing.T) {
	s := openStore(t)
	if err := s.Append(makeTweets(5, 100)); err != nil {
		t.Fatal(err)
	}
	seg := s.Segments()[0]
	path := filepath.Join(s.Dir(), seg.File)
	raw, _ := os.ReadFile(path)
	copy(raw[0:4], "XXXX")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	err := s.Verify()
	if err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("bad magic not detected: %v", err)
	}
}

func TestOpenRejectsMissingSegment(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(makeTweets(6, 100)); err != nil {
		t.Fatal(err)
	}
	seg := s.Segments()[0]
	if err := os.Remove(filepath.Join(dir, seg.File)); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Error("open should fail when the manifest references a missing segment")
	}
}

func TestOpenRejectsCorruptManifest(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Error("open should fail on a corrupt manifest")
	}
}

func TestScanResultsSortedWithinSegment(t *testing.T) {
	s := openStore(t)
	tweets := makeTweets(8, 2000)
	if err := s.Append(tweets); err != nil {
		t.Fatal(err)
	}
	got, err := s.Scan(Query{}).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// A single Append of < segment cap records is one segment, so the whole
	// result must be (user, time) sorted.
	if !sort.IsSorted(tweet.ByUserTime(got)) {
		t.Error("single-segment scan should be (user, time) sorted")
	}
}

func TestQueryMatchSemantics(t *testing.T) {
	tw := tweet.Tweet{ID: 1, UserID: 5, TS: 100, Lat: -33, Lon: 151}
	box := geo.NewBBox(geo.Point{Lat: -34, Lon: 150}, geo.Point{Lat: -32, Lon: 152})
	uid5, uid6 := int64(5), int64(6)
	cases := []struct {
		q    Query
		want bool
	}{
		{Query{}, true},
		{Query{FromTS: 100}, true},  // inclusive lower bound
		{Query{FromTS: 101}, false}, // below range
		{Query{ToTS: 100}, false},   // exclusive upper bound
		{Query{ToTS: 101}, true},
		{Query{UserID: &uid5}, true},
		{Query{UserID: &uid6}, false},
		{Query{BBox: &box}, true},
	}
	for i, c := range cases {
		if got := c.q.matches(tw); got != c.want {
			t.Errorf("case %d: matches = %v, want %v", i, got, c.want)
		}
	}
	outside := geo.NewBBox(geo.Point{Lat: 0, Lon: 0}, geo.Point{Lat: 1, Lon: 1})
	if (Query{BBox: &outside}).matches(tw) {
		t.Error("point outside bbox should not match")
	}
}

func TestRemoveFileSafety(t *testing.T) {
	if err := removeFile(t.TempDir(), "../escape"); err == nil {
		t.Error("path traversal should be rejected")
	}
	if err := removeFile(t.TempDir(), "/etc/passwd"); err == nil {
		t.Error("absolute path should be rejected")
	}
}
