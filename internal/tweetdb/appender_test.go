package tweetdb

import (
	"testing"

	"geomob/internal/tweet"
)

func TestAppenderBatchesAndFlushes(t *testing.T) {
	s := openStore(t)
	a, err := NewAppender(s, 100)
	if err != nil {
		t.Fatal(err)
	}
	tweets := makeTweets(9, 250)
	for _, tw := range tweets {
		if err := a.Add(tw); err != nil {
			t.Fatal(err)
		}
	}
	// 250 records with batch 100: two auto-flushes, 50 still buffered.
	if a.Total() != 200 {
		t.Errorf("Total = %d, want 200 before final flush", a.Total())
	}
	if s.Count() != 200 {
		t.Errorf("store Count = %d, want 200", s.Count())
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if a.Total() != 250 || s.Count() != 250 {
		t.Errorf("after close: total=%d store=%d", a.Total(), s.Count())
	}
}

func TestAppenderRejectsInvalid(t *testing.T) {
	s := openStore(t)
	a, err := NewAppender(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.limit != DefaultSegmentRecords {
		t.Errorf("default batch = %d", a.limit)
	}
	if err := a.Add(tweet.Tweet{ID: 1, UserID: 1, Lat: 999, Lon: 0}); err == nil {
		t.Error("invalid tweet should be rejected")
	}
}

func TestAppenderConstructionErrors(t *testing.T) {
	if _, err := NewAppender(nil, 10); err == nil {
		t.Error("nil store should fail")
	}
	s := openStore(t)
	if _, err := NewAppender(s, -1); err == nil {
		t.Error("negative batch should fail")
	}
}

func TestAppenderEmptyFlush(t *testing.T) {
	s := openStore(t)
	a, err := NewAppender(s, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if s.Count() != 0 {
		t.Errorf("empty appender wrote %d records", s.Count())
	}
}
