// Package tweetdb is an embedded, append-only storage engine for geo-tagged
// tweets, built for the scan-heavy analytical workloads of the paper:
// write-once segments hold delta-encoded record blocks with CRC-32
// integrity, a JSON manifest tracks per-segment metadata (time range,
// bounding box, user-id range), and queries push time/space/user predicates
// down to segment pruning before any byte of payload is read.
//
// The design follows the classic log-structured table layout: immutable
// segment files written atomically (temp file + rename), a manifest that is
// the single source of truth, and an offline compaction that merges
// segments into global (user, time) order — the order mobility extraction
// consumes.
package tweetdb

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"geomob/internal/geo"
)

// File format constants. Both segment versions share the magic and the
// fixed header; they differ only in the payload layout — v1 is the
// row-wise delta varint stream of tweet.Encoder, v2 the columnar layout
// of column.go. New segments are written as v2; v1 stays readable and
// Compact rewrites it.
const (
	segMagic     = "GMSEG1\x00\x00" // 8 bytes
	segVersionV1 = 1
	segVersionV2 = 2
	headerSize   = 8 + 2 + 2 + 4 + 8*4 + 8*4 + 4 + 4 // magic, ver, flags, count, ts/user ranges, bbox, payload len, crc
)

// SegmentMeta describes one immutable segment file. All ranges are
// inclusive.
type SegmentMeta struct {
	File    string  `json:"file"`     // file name relative to the store directory
	Count   int     `json:"count"`    // number of records
	MinTS   int64   `json:"min_ts"`   // earliest tweet timestamp (ms)
	MaxTS   int64   `json:"max_ts"`   // latest tweet timestamp (ms)
	MinUser int64   `json:"min_user"` // smallest user id
	MaxUser int64   `json:"max_user"` // largest user id
	MinLat  float64 `json:"min_lat"`
	MinLon  float64 `json:"min_lon"`
	MaxLat  float64 `json:"max_lat"`
	MaxLon  float64 `json:"max_lon"`
	Bytes   int64   `json:"bytes"` // file size, header included
}

// BBox returns the segment's spatial bounds.
func (m SegmentMeta) BBox() geo.BBox {
	return geo.BBox{MinLat: m.MinLat, MinLon: m.MinLon, MaxLat: m.MaxLat, MaxLon: m.MaxLon}
}

// header is the fixed-size binary prefix of a segment file.
type header struct {
	version    uint16
	count      uint32
	minTS      int64
	maxTS      int64
	minUser    int64
	maxUser    int64
	bbox       geo.BBox
	payloadLen uint32
	crc        uint32
}

// marshalHeader encodes the header into a fresh slice.
func marshalHeader(h header) []byte {
	buf := make([]byte, headerSize)
	copy(buf[0:8], segMagic)
	binary.LittleEndian.PutUint16(buf[8:10], h.version)
	// buf[10:12] reserved flags, zero.
	binary.LittleEndian.PutUint32(buf[12:16], h.count)
	binary.LittleEndian.PutUint64(buf[16:24], uint64(h.minTS))
	binary.LittleEndian.PutUint64(buf[24:32], uint64(h.maxTS))
	binary.LittleEndian.PutUint64(buf[32:40], uint64(h.minUser))
	binary.LittleEndian.PutUint64(buf[40:48], uint64(h.maxUser))
	binary.LittleEndian.PutUint64(buf[48:56], math.Float64bits(h.bbox.MinLat))
	binary.LittleEndian.PutUint64(buf[56:64], math.Float64bits(h.bbox.MinLon))
	binary.LittleEndian.PutUint64(buf[64:72], math.Float64bits(h.bbox.MaxLat))
	binary.LittleEndian.PutUint64(buf[72:80], math.Float64bits(h.bbox.MaxLon))
	binary.LittleEndian.PutUint32(buf[80:84], h.payloadLen)
	binary.LittleEndian.PutUint32(buf[84:88], h.crc)
	return buf
}

// unmarshalHeader decodes and validates the fixed-size header.
func unmarshalHeader(buf []byte) (header, error) {
	var h header
	if len(buf) < headerSize {
		return h, fmt.Errorf("tweetdb: segment header truncated: %d bytes", len(buf))
	}
	if string(buf[0:8]) != segMagic {
		return h, fmt.Errorf("tweetdb: bad segment magic %q", buf[0:8])
	}
	switch v := binary.LittleEndian.Uint16(buf[8:10]); v {
	case segVersionV1, segVersionV2:
		h.version = v
	default:
		return h, fmt.Errorf("tweetdb: unsupported segment version %d", v)
	}
	h.count = binary.LittleEndian.Uint32(buf[12:16])
	h.minTS = int64(binary.LittleEndian.Uint64(buf[16:24]))
	h.maxTS = int64(binary.LittleEndian.Uint64(buf[24:32]))
	h.minUser = int64(binary.LittleEndian.Uint64(buf[32:40]))
	h.maxUser = int64(binary.LittleEndian.Uint64(buf[40:48]))
	h.bbox.MinLat = math.Float64frombits(binary.LittleEndian.Uint64(buf[48:56]))
	h.bbox.MinLon = math.Float64frombits(binary.LittleEndian.Uint64(buf[56:64]))
	h.bbox.MaxLat = math.Float64frombits(binary.LittleEndian.Uint64(buf[64:72]))
	h.bbox.MaxLon = math.Float64frombits(binary.LittleEndian.Uint64(buf[72:80]))
	h.payloadLen = binary.LittleEndian.Uint32(buf[80:84])
	h.crc = binary.LittleEndian.Uint32(buf[84:88])
	return h, nil
}

// checksum is the payload CRC used throughout the store (CRC-32, IEEE).
func checksum(payload []byte) uint32 { return crc32.ChecksumIEEE(payload) }
