package tweetdb

// The version-2 columnar segment payload (DESIGN.md §9): a struct-of-
// arrays layout replacing the v1 row-wise varint stream. Each segment
// stores five columns behind a fixed directory of (length, CRC-32) pairs:
// id, user and ts as zig-zag varint deltas down the column, lat and lon as
// fixed-width little-endian int32 microdegrees. The delta columns decode
// with no per-record branching on field order, and the packed coordinate
// columns are readable in place — a ColumnBlock aliases them straight out
// of the segment file bytes, so a full-segment scan hands batches of
// column data to consumers without materialising tweet.Tweet values.
//
// Quantisation is identical to the v1 codec (tweet.Microdegrees), so a
// v1 → v2 compaction rewrite is lossless with respect to what v1 decode
// produced, and mixed-version stores scan bit-identically.

import (
	"encoding/binary"
	"fmt"

	"geomob/internal/geo"
	"geomob/internal/tweet"
)

// v2 column directory: five (u32 length, u32 crc) entries, in column
// order id, user, ts, lat, lon, followed by the column bytes back to
// back.
const (
	colID = iota
	colUser
	colTS
	colLat
	colLon
	numCols
)

const colDirSize = numCols * 8

var colNames = [numCols]string{"id", "user", "ts", "lat", "lon"}

// ColumnBlock is the zero-copy read view of one segment: decoded integer
// columns plus coordinate columns aliasing the raw segment payload
// (microdegree int32, little-endian). Iterators and live.Backfill consume
// blocks wholesale instead of materialising records one at a time.
type ColumnBlock struct {
	ID     []int64
	UserID []int64
	TS     []int64
	// latRaw/lonRaw alias the segment payload (4 bytes per record,
	// little-endian int32 microdegrees); Lat/Lon decode on access.
	latRaw []byte
	lonRaw []byte
}

// Len returns the number of records in the block.
func (c *ColumnBlock) Len() int { return len(c.ID) }

// LatMicro returns record i's latitude in microdegrees.
func (c *ColumnBlock) LatMicro(i int) int32 {
	return int32(binary.LittleEndian.Uint32(c.latRaw[4*i:]))
}

// LonMicro returns record i's longitude in microdegrees.
func (c *ColumnBlock) LonMicro(i int) int32 {
	return int32(binary.LittleEndian.Uint32(c.lonRaw[4*i:]))
}

// Lat returns record i's latitude in degrees.
func (c *ColumnBlock) Lat(i int) float64 { return tweet.DegreesFromMicro(c.LatMicro(i)) }

// Lon returns record i's longitude in degrees.
func (c *ColumnBlock) Lon(i int) float64 { return tweet.DegreesFromMicro(c.LonMicro(i)) }

// Point returns record i's coordinate.
func (c *ColumnBlock) Point(i int) geo.Point { return geo.Point{Lat: c.Lat(i), Lon: c.Lon(i)} }

// Row materialises record i as a Tweet value.
func (c *ColumnBlock) Row(i int) tweet.Tweet {
	return tweet.Tweet{ID: c.ID[i], UserID: c.UserID[i], TS: c.TS[i], Lat: c.Lat(i), Lon: c.Lon(i)}
}

// AppendTo appends records [from, to) to the batch column-wise.
func (c *ColumnBlock) AppendTo(b *tweet.Batch, from, to int) {
	b.Grow(to - from)
	b.ID = append(b.ID, c.ID[from:to]...)
	b.UserID = append(b.UserID, c.UserID[from:to]...)
	b.TS = append(b.TS, c.TS[from:to]...)
	for i := from; i < to; i++ {
		b.Lat = append(b.Lat, c.Lat(i))
		b.Lon = append(b.Lon, c.Lon(i))
	}
}

// appendRow copies record i of src onto the end of a materialised block —
// the filtered-scan path, where a block is rebuilt from matching rows.
func (c *ColumnBlock) appendRow(src *ColumnBlock, i int) {
	c.ID = append(c.ID, src.ID[i])
	c.UserID = append(c.UserID, src.UserID[i])
	c.TS = append(c.TS, src.TS[i])
	var raw [4]byte
	binary.LittleEndian.PutUint32(raw[:], uint32(src.LatMicro(i)))
	c.latRaw = append(c.latRaw, raw[:]...)
	binary.LittleEndian.PutUint32(raw[:], uint32(src.LonMicro(i)))
	c.lonRaw = append(c.lonRaw, raw[:]...)
}

// encodeColumnsV2 serialises records [from, to) of the batch as a v2
// payload appended to dst: the column directory, then each column.
// Coordinates are quantised exactly like the v1 codec.
func encodeColumnsV2(dst []byte, b *tweet.Batch, from, to int) []byte {
	n := to - from
	le := binary.LittleEndian
	dirOff := len(dst)
	dst = append(dst, make([]byte, colDirSize)...)
	putDir := func(col, length int, crc uint32) {
		le.PutUint32(dst[dirOff+8*col:], uint32(length))
		le.PutUint32(dst[dirOff+8*col+4:], crc)
	}
	var scratch [binary.MaxVarintLen64]byte
	deltaCol := func(col int, vals []int64) {
		start := len(dst)
		prev := int64(0)
		for _, v := range vals {
			k := binary.PutVarint(scratch[:], v-prev)
			dst = append(dst, scratch[:k]...)
			prev = v
		}
		putDir(col, len(dst)-start, checksum(dst[start:]))
	}
	deltaCol(colID, b.ID[from:to])
	deltaCol(colUser, b.UserID[from:to])
	deltaCol(colTS, b.TS[from:to])
	microCol := func(col int, vals []float64) {
		start := len(dst)
		dst = append(dst, make([]byte, 4*n)...)
		body := dst[start:]
		for i, v := range vals {
			le.PutUint32(body[4*i:], uint32(tweet.Microdegrees(v)))
		}
		putDir(col, 4*n, checksum(body))
	}
	microCol(colLat, b.Lat[from:to])
	microCol(colLon, b.Lon[from:to])
	return dst
}

// decodeColumnsV2 parses a v2 payload of n records into a block. The
// coordinate columns alias payload; the caller must keep it alive (and
// immutable) for the block's lifetime. Every structural defect — bad
// directory, short columns, CRC mismatch — is a clean error, never a
// panic.
func decodeColumnsV2(payload []byte, n int) (*ColumnBlock, error) {
	if len(payload) < colDirSize {
		return nil, fmt.Errorf("column directory truncated: %d bytes", len(payload))
	}
	le := binary.LittleEndian
	var cols [numCols][]byte
	off := colDirSize
	for c := 0; c < numCols; c++ {
		length := int(le.Uint32(payload[8*c:]))
		crc := le.Uint32(payload[8*c+4:])
		if length < 0 || off+length > len(payload) {
			return nil, fmt.Errorf("column %s: length %d overruns payload (%d of %d bytes used)",
				colNames[c], length, off, len(payload))
		}
		body := payload[off : off+length]
		if got := checksum(body); got != crc {
			return nil, fmt.Errorf("column %s: checksum mismatch (stored %08x, computed %08x)",
				colNames[c], crc, got)
		}
		cols[c] = body
		off += length
	}
	if off != len(payload) {
		return nil, fmt.Errorf("payload has %d trailing bytes after columns", len(payload)-off)
	}
	blk := &ColumnBlock{}
	deltaCol := func(c int) ([]int64, error) {
		out := make([]int64, 0, n)
		buf := cols[c]
		pos := 0
		prev := int64(0)
		for i := 0; i < n; i++ {
			v, k := binary.Varint(buf[pos:])
			if k <= 0 {
				return nil, fmt.Errorf("column %s: truncated varint at offset %d (record %d of %d)",
					colNames[c], pos, i, n)
			}
			pos += k
			prev += v
			out = append(out, prev)
		}
		if pos != len(buf) {
			return nil, fmt.Errorf("column %s: %d trailing bytes after %d records", colNames[c], len(buf)-pos, n)
		}
		return out, nil
	}
	var err error
	if blk.ID, err = deltaCol(colID); err != nil {
		return nil, err
	}
	if blk.UserID, err = deltaCol(colUser); err != nil {
		return nil, err
	}
	if blk.TS, err = deltaCol(colTS); err != nil {
		return nil, err
	}
	for _, c := range []int{colLat, colLon} {
		if len(cols[c]) != 4*n {
			return nil, fmt.Errorf("column %s: %d bytes for %d records, want %d",
				colNames[c], len(cols[c]), n, 4*n)
		}
	}
	blk.latRaw = cols[colLat]
	blk.lonRaw = cols[colLon]
	return blk, nil
}

// blockFromTweets converts decoded v1 records into a block, so the
// iterator serves both segment versions through one view.
func blockFromTweets(tweets []tweet.Tweet) *ColumnBlock {
	n := len(tweets)
	blk := &ColumnBlock{
		ID:     make([]int64, n),
		UserID: make([]int64, n),
		TS:     make([]int64, n),
		latRaw: make([]byte, 4*n),
		lonRaw: make([]byte, 4*n),
	}
	le := binary.LittleEndian
	for i, t := range tweets {
		blk.ID[i] = t.ID
		blk.UserID[i] = t.UserID
		blk.TS[i] = t.TS
		le.PutUint32(blk.latRaw[4*i:], uint32(tweet.Microdegrees(t.Lat)))
		le.PutUint32(blk.lonRaw[4*i:], uint32(tweet.Microdegrees(t.Lon)))
	}
	return blk
}
