package tweetdb

import (
	"testing"

	"geomob/internal/tweet"
)

// shardStore builds a compacted store whose catalogue holds several
// user-ranged segments: 300 users x 10 tweets, 500 records per segment.
func shardStore(t *testing.T) *Store {
	t.Helper()
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := store.SetSegmentRecords(500); err != nil {
		t.Fatal(err)
	}
	var tweets []tweet.Tweet
	id := int64(0)
	for u := int64(0); u < 300; u++ {
		for i := int64(0); i < 10; i++ {
			tweets = append(tweets, tweet.Tweet{
				ID: id, UserID: u, TS: 1378000000000 + u*1000 + i,
				Lat: -33.9, Lon: 151.2,
			})
			id++
		}
	}
	if err := store.Append(tweets); err != nil {
		t.Fatal(err)
	}
	if err := store.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := len(store.Segments()); got < 4 {
		t.Fatalf("want a multi-segment catalogue, got %d segments", got)
	}
	return store
}

func TestShardQueriesPartition(t *testing.T) {
	store := shardStore(t)
	full, err := store.Scan(Query{}).ReadAll()
	if err != nil {
		t.Fatal(err)
	}

	for _, n := range []int{2, 3, 4, 8} {
		qs := store.ShardQueries(Query{}, n)
		if len(qs) < 2 || len(qs) > n {
			t.Fatalf("n=%d: got %d shard queries", n, len(qs))
		}
		var concat []tweet.Tweet
		seenUsers := map[int64]int{}
		for k, q := range qs {
			part, err := store.Scan(q).ReadAll()
			if err != nil {
				t.Fatal(err)
			}
			for _, tw := range part {
				if prev, ok := seenUsers[tw.UserID]; ok && prev != k {
					t.Fatalf("n=%d: user %d appears in shards %d and %d", n, tw.UserID, prev, k)
				}
				seenUsers[tw.UserID] = k
			}
			concat = append(concat, part...)
		}
		if len(concat) != len(full) {
			t.Fatalf("n=%d: shards cover %d records, full scan %d", n, len(concat), len(full))
		}
		for i := range full {
			if concat[i] != full[i] {
				t.Fatalf("n=%d: record %d differs: %+v vs %+v", n, i, concat[i], full[i])
			}
		}
	}
}

func TestShardQueriesRespectBaseQuery(t *testing.T) {
	store := shardStore(t)
	lo, hi := int64(50), int64(249)
	base := Query{MinUserID: &lo, MaxUserID: &hi, FromTS: 1378000050000}
	full, err := store.Scan(base).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(full) == 0 {
		t.Fatal("base query matched nothing")
	}
	var concat []tweet.Tweet
	for _, q := range store.ShardQueries(base, 4) {
		part, err := store.Scan(q).ReadAll()
		if err != nil {
			t.Fatal(err)
		}
		concat = append(concat, part...)
	}
	if len(concat) != len(full) {
		t.Fatalf("shards cover %d records, base query %d", len(concat), len(full))
	}
	for i := range full {
		if concat[i] != full[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestShardQueriesDegenerate(t *testing.T) {
	store := shardStore(t)
	if qs := store.ShardQueries(Query{}, 1); len(qs) != 1 {
		t.Errorf("n=1: got %d queries", len(qs))
	}
	// A query matching nothing must still yield one (empty) shard.
	qs := store.ShardQueries(Query{FromTS: 1e18}, 4)
	if len(qs) != 1 {
		t.Errorf("empty query: got %d shards", len(qs))
	}
	// An empty store must not split.
	empty, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if qs := empty.ShardQueries(Query{}, 4); len(qs) != 1 {
		t.Errorf("empty store: got %d shards", len(qs))
	}
}

func TestQueryUserRangeFilters(t *testing.T) {
	store := shardStore(t)
	lo, hi := int64(10), int64(12)
	got, err := store.Scan(Query{MinUserID: &lo, MaxUserID: &hi}).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 30 {
		t.Fatalf("got %d records for 3 users x 10 tweets", len(got))
	}
	for _, tw := range got {
		if tw.UserID < lo || tw.UserID > hi {
			t.Fatalf("user %d outside [%d, %d]", tw.UserID, lo, hi)
		}
	}
}
