package tweetdb

import (
	"os"
	"path/filepath"
	"strings"
)

// removeFile deletes one file under dir, refusing to step outside it.
func removeFile(dir, name string) error {
	clean := filepath.Clean(name)
	if strings.Contains(clean, "..") || filepath.IsAbs(clean) {
		return os.ErrPermission
	}
	return os.Remove(filepath.Join(dir, clean))
}
