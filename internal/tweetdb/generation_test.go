package tweetdb

import (
	"testing"

	"geomob/internal/tweet"
)

func genTweets(n int, base int64) []tweet.Tweet {
	out := make([]tweet.Tweet, n)
	for i := range out {
		out[i] = tweet.Tweet{
			ID: base + int64(i), UserID: base + int64(i/3),
			TS: 1380000000000 + int64(i)*60000, Lat: -33.8, Lon: 151.2,
		}
	}
	return out
}

// TestGenerationTracksSegmentSet: the generation is the snapshot-cache
// invalidation key — it must hold still while the segment set does, move
// on Append and Compact, and survive a reopen unchanged.
func TestGenerationTracksSegmentSet(t *testing.T) {
	dir := t.TempDir()
	store, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	empty := store.Generation()
	if err := store.Append(genTweets(100, 0)); err != nil {
		t.Fatal(err)
	}
	afterAppend := store.Generation()
	if afterAppend == empty {
		t.Error("generation unchanged by Append")
	}
	if again := store.Generation(); again != afterAppend {
		t.Errorf("generation moved without a catalogue change: %x vs %x", again, afterAppend)
	}

	reopened, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := reopened.Generation(); got != afterAppend {
		t.Errorf("generation not stable across reopen: %x vs %x", got, afterAppend)
	}

	if err := store.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := store.Generation(); got == afterAppend {
		t.Error("generation unchanged by Compact")
	}
}

func TestScanCount(t *testing.T) {
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Append(genTweets(50, 0)); err != nil {
		t.Fatal(err)
	}
	if got := store.ScanCount(); got != 0 {
		t.Fatalf("fresh store reports %d scans", got)
	}
	if _, err := store.Scan(Query{}).ReadAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Scan(Query{}).ReadAll(); err != nil {
		t.Fatal(err)
	}
	if got := store.ScanCount(); got != 2 {
		t.Errorf("ScanCount = %d, want 2", got)
	}
}
