package tweetdb

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"geomob/internal/geo"
	"geomob/internal/obs"
	"geomob/internal/tweet"
)

// Store metrics (DESIGN.md §12): cumulative over every Store in the
// process (cluster shards open one per node).
var (
	mScans       = obs.Def.Counter("geomob_store_scans_total", "Store scans started (cache misses that went back to segments).")
	mSegLoads    = obs.Def.Counter("geomob_store_segment_loads_total", "Segment payloads decoded — the unit of real scan work.")
	mAppends     = obs.Def.Counter("geomob_store_appends_total", "Durable batch appends (segment writes + manifest rename).")
	mAppendSecs  = obs.Def.Histogram("geomob_store_append_seconds", "Latency of one durable batch append.", nil)
	mCompactions = obs.Def.Counter("geomob_store_compactions_total", "Store compactions completed.")
)

const manifestName = "MANIFEST.json"

// DefaultSegmentRecords caps how many records a single segment holds. A
// segment is the unit of decode, so this bounds peak memory per iterator.
const DefaultSegmentRecords = 1 << 18

// manifest is the on-disk catalogue of segments.
type manifest struct {
	Version  int           `json:"version"`
	NextSeq  int           `json:"next_seq"`
	Segments []SegmentMeta `json:"segments"`
	// Meta holds small application key/values that must commit
	// atomically with an append — the cluster stores per-sender
	// delivery high-water marks here, so a batch and the mark that
	// deduplicates its redelivery land in one manifest rename.
	Meta map[string]string `json:"meta,omitempty"`
}

// Store is an append-only tweet database rooted in one directory. A Store
// is safe for concurrent use: appends serialise on an internal mutex,
// scans read immutable files.
type Store struct {
	dir string

	// scans counts Scan calls over the store's lifetime — a cheap
	// observability hook that lets callers (and tests) assert whether a
	// request was answered from a cache or went back to the segments.
	scans atomic.Int64
	// segLoads counts segment payload decodes — the unit of real scan
	// work. ScanCount says a reader went back to the store; SegmentLoads
	// says how much of it was actually read, which is what distinguishes
	// an O(tail) recovery replay from a full-store rescan.
	segLoads atomic.Int64
	// activeScans counts iterators that have not finished (or been
	// closed) yet. Compact defers deleting retired segment files while
	// any are live, because their catalogue snapshots may still
	// reference the old files.
	activeScans atomic.Int64

	mu         sync.Mutex
	man        manifest
	segRecords int // max records per segment; DefaultSegmentRecords unless overridden
	// segVersion is the format new segments are written in — always
	// segVersionV2 in production; tests dial it back to segVersionV1 to
	// exercise mixed-version stores.
	segVersion uint16
	// garbage lists segment files retired by Compact that could not be
	// unlinked yet because scans were in flight; dropped as soon as the
	// store goes scan-idle.
	garbage []string
}

// Open opens (or initialises) the store in dir, creating the directory as
// needed and loading the manifest.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("tweetdb: open %s: %w", dir, err)
	}
	s := &Store{dir: dir, man: manifest{Version: 1}, segRecords: DefaultSegmentRecords, segVersion: segVersionV2}
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	switch {
	case errors.Is(err, os.ErrNotExist):
		// Fresh store.
	case err != nil:
		return nil, fmt.Errorf("tweetdb: read manifest: %w", err)
	default:
		if err := json.Unmarshal(raw, &s.man); err != nil {
			return nil, fmt.Errorf("tweetdb: parse manifest: %w", err)
		}
		for _, seg := range s.man.Segments {
			if _, err := os.Stat(filepath.Join(dir, seg.File)); err != nil {
				return nil, fmt.Errorf("tweetdb: manifest references missing segment %s: %w", seg.File, err)
			}
		}
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// SetSegmentRecords overrides the per-segment record cap for subsequent
// appends and compactions. Smaller segments raise catalogue overhead but
// increase scan and shard parallelism; tests also use this to exercise
// multi-segment layouts on small corpora.
func (s *Store) SetSegmentRecords(n int) error {
	if n < 1 {
		return fmt.Errorf("tweetdb: segment record cap must be positive, got %d", n)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.segRecords = n
	return nil
}

// Count returns the total number of records across all segments.
func (s *Store) Count() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int64
	for _, seg := range s.man.Segments {
		n += int64(seg.Count)
	}
	return n
}

// Generation identifies the current segment catalogue. It changes
// whenever the segment set changes (Append, Compact) and is stable across
// reopens of the same directory, which makes it the invalidation key for
// snapshot caches layered over the store: results derived from a scan
// stay valid exactly as long as Generation holds still.
func (s *Store) Generation() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := fnv.New64a()
	for _, seg := range s.man.Segments {
		fmt.Fprintf(h, "%s:%d;", seg.File, seg.Count)
	}
	return h.Sum64()
}

// ScanCount reports how many scans were started on this store.
func (s *Store) ScanCount() int64 { return s.scans.Load() }

// SegmentLoads reports how many segment payloads were decoded over the
// store's lifetime (scans and compactions alike).
func (s *Store) SegmentLoads() int64 { return s.segLoads.Load() }

// Segments returns a snapshot of the segment catalogue.
func (s *Store) Segments() []SegmentMeta {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]SegmentMeta(nil), s.man.Segments...)
}

// Append writes the tweets as one or more new segments (respecting
// DefaultSegmentRecords) and commits them to the manifest. Records are
// sorted by (user, time) within each segment so the binary delta coding
// compresses well; global order across segments is only established by
// Compact. The caller's slice is never mutated.
func (s *Store) Append(tweets []tweet.Tweet) error {
	if len(tweets) == 0 {
		return nil
	}
	return s.AppendBatch(tweet.BatchOf(tweets))
}

// AppendBatch is Append over columns: the batch is validated once,
// sorted in place into canonical (user, time, id) order — an O(n) no-op
// when the feed is already ordered, which the batched ingest path
// usually is — and written as one or more columnar segments without ever
// materialising tweet.Tweet values. The batch is owned by the store for
// the duration of the call (it may be reordered); its columns are not
// retained.
func (s *Store) AppendBatch(b *tweet.Batch) error {
	return s.AppendBatchMeta(b, nil)
}

// AppendBatchMeta appends a batch and merges meta into the manifest's
// key/value table in the same manifest save. Because AppendBatch
// publishes all of an append's segments with one atomic manifest
// rename, the batch and its meta updates commit together or not at
// all — the property cluster shards rely on to make redelivery
// deduplication exact across kill -9.
func (s *Store) AppendBatchMeta(b *tweet.Batch, meta map[string]string) error {
	if b.Len() == 0 && len(meta) == 0 {
		return nil
	}
	if b.Len() > 0 {
		if err := b.Validate(); err != nil {
			return fmt.Errorf("tweetdb: append: %w", err)
		}
		b.Sort()
	}
	t0 := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	for off := 0; off < b.Len(); off += s.segRecords {
		end := off + s.segRecords
		if end > b.Len() {
			end = b.Len()
		}
		if err := s.writeSegmentLocked(b, off, end); err != nil {
			return err
		}
	}
	if len(meta) > 0 {
		if s.man.Meta == nil {
			s.man.Meta = make(map[string]string, len(meta))
		}
		for k, v := range meta {
			s.man.Meta[k] = v
		}
	}
	err := s.saveManifestLocked()
	if err == nil {
		mAppends.Inc()
		mAppendSecs.Observe(time.Since(t0).Seconds())
	}
	return err
}

// Meta returns the manifest meta value for key ("" when absent).
func (s *Store) Meta(key string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.man.Meta[key]
}

// MetaPrefix returns a copy of every manifest meta entry whose key
// starts with prefix.
func (s *Store) MetaPrefix(prefix string) map[string]string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := map[string]string{}
	for k, v := range s.man.Meta {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			out[k] = v
		}
	}
	return out
}

// writeSegmentLocked serialises records [from, to) of the (validated)
// batch into a new segment file and adds it to the in-memory manifest
// (not yet persisted). Caller holds s.mu.
func (s *Store) writeSegmentLocked(b *tweet.Batch, from, to int) error {
	h := header{
		version: s.segVersion,
		minTS:   b.TS[from],
		maxTS:   b.TS[from],
		minUser: b.UserID[from],
		maxUser: b.UserID[from],
		bbox:    geo.EmptyBBox(),
	}
	for i := from; i < to; i++ {
		if ts := b.TS[i]; ts < h.minTS {
			h.minTS = ts
		} else if ts > h.maxTS {
			h.maxTS = ts
		}
		if u := b.UserID[i]; u < h.minUser {
			h.minUser = u
		} else if u > h.maxUser {
			h.maxUser = u
		}
		h.bbox = h.bbox.Extend(geo.Point{Lat: b.Lat[i], Lon: b.Lon[i]})
	}
	var payload []byte
	switch s.segVersion {
	case segVersionV2:
		payload = encodeColumnsV2(nil, b, from, to)
	default:
		enc := tweet.NewEncoder()
		for i := from; i < to; i++ {
			if err := enc.Append(b.Row(i)); err != nil {
				return fmt.Errorf("tweetdb: encode: %w", err)
			}
		}
		payload = enc.Bytes()
	}
	h.count = uint32(to - from)
	h.payloadLen = uint32(len(payload))
	h.crc = checksum(payload)

	name := fmt.Sprintf("seg-%06d.gmseg", s.man.NextSeq)
	s.man.NextSeq++
	path := filepath.Join(s.dir, name)
	if err := atomicWrite(path, append(marshalHeader(h), payload...)); err != nil {
		return fmt.Errorf("tweetdb: write segment %s: %w", name, err)
	}
	info, err := os.Stat(path)
	if err != nil {
		return fmt.Errorf("tweetdb: stat segment %s: %w", name, err)
	}
	s.man.Segments = append(s.man.Segments, SegmentMeta{
		File:    name,
		Count:   to - from,
		MinTS:   h.minTS,
		MaxTS:   h.maxTS,
		MinUser: h.minUser,
		MaxUser: h.maxUser,
		MinLat:  h.bbox.MinLat,
		MinLon:  h.bbox.MinLon,
		MaxLat:  h.bbox.MaxLat,
		MaxLon:  h.bbox.MaxLon,
		Bytes:   info.Size(),
	})
	return nil
}

// saveManifestLocked persists the manifest atomically. Caller holds s.mu.
func (s *Store) saveManifestLocked() error {
	raw, err := json.MarshalIndent(s.man, "", "  ")
	if err != nil {
		return fmt.Errorf("tweetdb: marshal manifest: %w", err)
	}
	if err := atomicWrite(filepath.Join(s.dir, manifestName), raw); err != nil {
		return fmt.Errorf("tweetdb: save manifest: %w", err)
	}
	return nil
}

// atomicWrite writes data to path via a temp file and rename, so readers
// never observe a partial file.
func atomicWrite(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

// loadBlock reads, CRC-verifies and decodes one segment file into a
// column block. v2 segments decode their integer columns and alias the
// coordinate columns straight out of the file bytes (zero copy); v1
// segments decode row-wise and are bridged into the same view.
func (s *Store) loadBlock(meta SegmentMeta) (*ColumnBlock, error) {
	raw, err := os.ReadFile(filepath.Join(s.dir, meta.File))
	if err != nil {
		return nil, fmt.Errorf("tweetdb: read segment %s: %w", meta.File, err)
	}
	s.segLoads.Add(1)
	mSegLoads.Inc()
	h, err := unmarshalHeader(raw)
	if err != nil {
		return nil, fmt.Errorf("tweetdb: segment %s: %w", meta.File, err)
	}
	if int(h.payloadLen) != len(raw)-headerSize {
		return nil, fmt.Errorf("tweetdb: segment %s: payload length %d does not match file size %d", meta.File, h.payloadLen, len(raw)-headerSize)
	}
	payload := raw[headerSize:]
	if got := checksum(payload); got != h.crc {
		return nil, fmt.Errorf("tweetdb: segment %s: checksum mismatch (stored %08x, computed %08x)", meta.File, h.crc, got)
	}
	switch h.version {
	case segVersionV2:
		blk, err := decodeColumnsV2(payload, int(h.count))
		if err != nil {
			return nil, fmt.Errorf("tweetdb: segment %s: %w", meta.File, err)
		}
		return blk, nil
	default:
		tweets, err := tweet.DecodeAll(payload, int(h.count))
		if err != nil {
			return nil, fmt.Errorf("tweetdb: segment %s: %w", meta.File, err)
		}
		return blockFromTweets(tweets), nil
	}
}

// dropGarbageLocked unlinks segment files retired by Compact once no
// in-flight iterator can still reference them. Caller holds s.mu.
// Removal failures are retried at the next opportunity and are never
// fatal to correctness: the manifest no longer references the files.
func (s *Store) dropGarbageLocked() {
	if len(s.garbage) == 0 || s.activeScans.Load() != 0 {
		return
	}
	kept := s.garbage[:0]
	for _, f := range s.garbage {
		if err := removeFile(s.dir, f); err != nil {
			kept = append(kept, f)
		}
	}
	s.garbage = kept
	if len(s.garbage) == 0 {
		s.garbage = nil
	}
}

// scanReleased is the iterator's end-of-life hook: the last live iterator
// sweeps any segment files Compact retired while scans were in flight.
func (s *Store) scanReleased() {
	if s.activeScans.Add(-1) == 0 {
		s.mu.Lock()
		s.dropGarbageLocked()
		s.mu.Unlock()
	}
}

// Verify re-reads every segment, checking magic, checksums and record
// counts. It returns the first corruption found.
func (s *Store) Verify() error {
	for _, meta := range s.Segments() {
		blk, err := s.loadBlock(meta)
		if err != nil {
			return err
		}
		if blk.Len() != meta.Count {
			return fmt.Errorf("tweetdb: segment %s: manifest count %d != decoded %d", meta.File, meta.Count, blk.Len())
		}
	}
	return nil
}
