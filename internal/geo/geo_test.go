package geo

import (
	"math"
	"testing"
	"testing/quick"
)

// Reference city coordinates used across the geo tests.
var (
	sydney    = Point{Lat: -33.8688, Lon: 151.2093}
	melbourne = Point{Lat: -37.8136, Lon: 144.9631}
	perth     = Point{Lat: -31.9523, Lon: 115.8613}
	brisbane  = Point{Lat: -27.4698, Lon: 153.0251}
)

func TestHaversineKnownDistances(t *testing.T) {
	cases := []struct {
		name string
		a, b Point
		want float64 // metres
		tol  float64 // relative tolerance
	}{
		{"sydney-melbourne", sydney, melbourne, 713_000, 0.01},
		{"sydney-perth", sydney, perth, 3_290_000, 0.01},
		{"sydney-brisbane", sydney, brisbane, 732_000, 0.01},
		{"zero", sydney, sydney, 0, 0},
		{"equator-quarter", Point{0, 0}, Point{0, 90}, math.Pi / 2 * EarthRadius, 1e-9},
		{"pole-to-pole", Point{90, 0}, Point{-90, 0}, math.Pi * EarthRadius, 1e-9},
	}
	for _, c := range cases {
		got := Haversine(c.a, c.b)
		if c.want == 0 {
			if got != 0 {
				t.Errorf("%s: got %v, want 0", c.name, got)
			}
			continue
		}
		if rel := math.Abs(got-c.want) / c.want; rel > c.tol {
			t.Errorf("%s: got %.0f m, want %.0f m (rel err %.4f)", c.name, got, c.want, rel)
		}
	}
}

func TestHaversineSymmetry(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := Point{clampLat(lat1), wrapLon(lon1)}
		b := Point{clampLat(lat2), wrapLon(lon2)}
		d1, d2 := Haversine(a, b), Haversine(b, a)
		return math.Abs(d1-d2) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHaversineTriangleInequality(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2, lat3, lon3 float64) bool {
		a := Point{clampLat(lat1), wrapLon(lon1)}
		b := Point{clampLat(lat2), wrapLon(lon2)}
		c := Point{clampLat(lat3), wrapLon(lon3)}
		return Haversine(a, c) <= Haversine(a, b)+Haversine(b, c)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestHaversineNonNegative(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := Point{clampLat(lat1), wrapLon(lon1)}
		b := Point{clampLat(lat2), wrapLon(lon2)}
		d := Haversine(a, b)
		return d >= 0 && d <= math.Pi*EarthRadius+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDestinationRoundTrip(t *testing.T) {
	// Travelling dist metres then measuring the distance back must agree.
	f := func(latSeed, lonSeed, brgSeed, distSeed float64) bool {
		p := Point{clampLat(latSeed) * 0.8, wrapLon(lonSeed)} // keep away from poles
		brg := math.Mod(math.Abs(brgSeed), 360)
		dist := math.Mod(math.Abs(distSeed), 2_000_000) // up to 2000 km
		q := Destination(p, brg, dist)
		if !q.Valid() {
			return false
		}
		return math.Abs(Haversine(p, q)-dist) < 1.0 // within 1 m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDestinationKnownBearing(t *testing.T) {
	// 100 km due north from Sydney raises latitude by ~0.8993 degrees.
	q := Destination(sydney, 0, 100_000)
	wantLat := sydney.Lat + 100_000/MetersPerDegreeLat
	if math.Abs(q.Lat-wantLat) > 1e-6 {
		t.Errorf("north lat: got %v want %v", q.Lat, wantLat)
	}
	if math.Abs(q.Lon-sydney.Lon) > 1e-9 {
		t.Errorf("north lon changed: %v", q.Lon)
	}
}

func TestInitialBearingCardinal(t *testing.T) {
	p := Point{0, 100}
	cases := []struct {
		to   Point
		want float64
	}{
		{Point{1, 100}, 0},    // north
		{Point{-1, 100}, 180}, // south
		{Point{0, 101}, 90},   // east
		{Point{0, 99}, 270},   // west
	}
	for _, c := range cases {
		got := InitialBearing(p, c.to)
		if math.Abs(got-c.want) > 1e-6 {
			t.Errorf("bearing to %v: got %v want %v", c.to, got, c.want)
		}
	}
}

func TestMidpoint(t *testing.T) {
	m := Midpoint(Point{0, 0}, Point{0, 90})
	if math.Abs(m.Lat) > 1e-9 || math.Abs(m.Lon-45) > 1e-9 {
		t.Errorf("equatorial midpoint: got %v", m)
	}
	// Midpoint must be equidistant from both ends.
	m2 := Midpoint(sydney, perth)
	d1, d2 := Haversine(sydney, m2), Haversine(perth, m2)
	if math.Abs(d1-d2) > 1 {
		t.Errorf("midpoint not equidistant: %v vs %v", d1, d2)
	}
}

func TestPointValid(t *testing.T) {
	valid := []Point{{0, 0}, {-90, -180}, {90, 180}, sydney}
	for _, p := range valid {
		if !p.Valid() {
			t.Errorf("%v should be valid", p)
		}
	}
	invalid := []Point{{91, 0}, {-91, 0}, {0, 181}, {0, -181}, {math.NaN(), 0}, {0, math.NaN()}}
	for _, p := range invalid {
		if p.Valid() {
			t.Errorf("%v should be invalid", p)
		}
	}
}

func TestBBoxContainsExtend(t *testing.T) {
	b := EmptyBBox()
	if !b.IsEmpty() {
		t.Fatal("EmptyBBox not empty")
	}
	b = b.Extend(sydney)
	if b.IsEmpty() || !b.Contains(sydney) {
		t.Fatal("box should contain its only point")
	}
	b = b.Extend(perth)
	for _, p := range []Point{sydney, perth, Midpoint(sydney, perth)} {
		// Midpoint of a great circle may bow outside a lat/lon box in
		// general, but for these two nearly co-latitudinal cities it works.
		if !b.Contains(Point{Lat: (sydney.Lat + perth.Lat) / 2, Lon: (sydney.Lon + perth.Lon) / 2}) {
			t.Errorf("box should contain linear midpoint, missing %v", p)
		}
	}
	if b.Contains(Point{0, 0}) {
		t.Error("box should not contain the origin")
	}
}

func TestBBoxUnionIntersects(t *testing.T) {
	b1 := NewBBox(Point{-35, 150}, Point{-33, 152})
	b2 := NewBBox(Point{-34, 151}, Point{-32, 153})
	b3 := NewBBox(Point{-20, 130}, Point{-19, 131})
	if !b1.Intersects(b2) || !b2.Intersects(b1) {
		t.Error("b1 and b2 should intersect")
	}
	if b1.Intersects(b3) {
		t.Error("b1 and b3 should not intersect")
	}
	u := b1.Union(b3)
	for _, p := range []Point{{-34, 151}, {-19.5, 130.5}} {
		if !u.Contains(p) {
			t.Errorf("union should contain %v", p)
		}
	}
	if got := EmptyBBox().Union(b1); got != b1 {
		t.Error("empty union b1 should be b1")
	}
	if got := b1.Union(EmptyBBox()); got != b1 {
		t.Error("b1 union empty should be b1")
	}
}

func TestBoundAroundCoversDisc(t *testing.T) {
	f := func(latSeed, lonSeed, brgSeed float64) bool {
		p := Point{clampLat(latSeed) * 0.9, wrapLon(lonSeed)}
		radius := 50_000.0
		box := BoundAround(p, radius)
		brg := math.Mod(math.Abs(brgSeed), 360)
		edge := Destination(p, brg, radius*0.999)
		return box.Contains(edge)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBoundAroundPolar(t *testing.T) {
	box := BoundAround(Point{89.999, 0}, 100_000)
	if box.MaxLat != 90 {
		t.Errorf("polar box should clamp MaxLat to 90, got %v", box.MaxLat)
	}
	if box.MinLon != -180 || box.MaxLon != 180 {
		t.Errorf("polar box should span all longitudes, got %+v", box)
	}
}

func TestAustraliaBBox(t *testing.T) {
	for _, p := range []Point{sydney, melbourne, perth, brisbane} {
		if !AustraliaBBox.Contains(p) {
			t.Errorf("Australia box should contain %v", p)
		}
	}
	if AustraliaBBox.Contains(Point{40.7, -74.0}) { // New York
		t.Error("Australia box should not contain New York")
	}
}

func TestMetersPerDegreeLon(t *testing.T) {
	if got := MetersPerDegreeLon(0); math.Abs(got-MetersPerDegreeLat) > 1e-6 {
		t.Errorf("equator: got %v want %v", got, MetersPerDegreeLat)
	}
	if got := MetersPerDegreeLon(90); math.Abs(got) > 1e-6 {
		t.Errorf("pole: got %v want 0", got)
	}
	if got := MetersPerDegreeLon(60); math.Abs(got-MetersPerDegreeLat/2) > 1 {
		t.Errorf("60deg: got %v want %v", got, MetersPerDegreeLat/2)
	}
}

func clampLat(v float64) float64 {
	v = math.Mod(v, 90)
	if math.IsNaN(v) {
		return 0
	}
	return v
}

func wrapLon(v float64) float64 {
	v = math.Mod(v, 180)
	if math.IsNaN(v) {
		return 0
	}
	return v
}
