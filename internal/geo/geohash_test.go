package geo

import (
	"math"
	"math/rand/v2"
	"strings"
	"testing"
	"testing/quick"
)

func TestGeohashKnownValues(t *testing.T) {
	cases := []struct {
		p    Point
		hash string
	}{
		// Reference values from the canonical geohash implementation.
		{Point{Lat: 57.64911, Lon: 10.40744}, "u4pruydqqvj"},
		{Point{Lat: -33.8688, Lon: 151.2093}, "r3gx2f7"},
		{Point{Lat: 0, Lon: 0}, "s0000"},
	}
	for _, c := range cases {
		got := EncodeGeohash(c.p, len(c.hash))
		if got != c.hash {
			t.Errorf("EncodeGeohash(%v, %d) = %q, want %q", c.p, len(c.hash), got, c.hash)
		}
	}
}

func TestGeohashRoundTrip(t *testing.T) {
	f := func(latSeed, lonSeed float64) bool {
		p := Point{clampLat(latSeed), wrapLon(lonSeed)}
		for prec := 1; prec <= 12; prec++ {
			h := EncodeGeohash(p, prec)
			if len(h) != prec {
				return false
			}
			box, err := DecodeGeohash(h)
			if err != nil || !box.Contains(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestGeohashPrefixNesting(t *testing.T) {
	// The cell of a longer hash must be contained in the cell of its prefix.
	p := Point{Lat: -27.4698, Lon: 153.0251}
	h := EncodeGeohash(p, 9)
	outer, err := DecodeGeohash(h[:4])
	if err != nil {
		t.Fatal(err)
	}
	inner, err := DecodeGeohash(h)
	if err != nil {
		t.Fatal(err)
	}
	for _, corner := range []Point{
		{inner.MinLat, inner.MinLon}, {inner.MaxLat, inner.MaxLon},
	} {
		if !outer.Contains(corner) {
			t.Errorf("outer cell does not contain inner corner %v", corner)
		}
	}
}

func TestGeohashPrecisionClamping(t *testing.T) {
	p := Point{Lat: 10, Lon: 10}
	if got := EncodeGeohash(p, 0); len(got) != 1 {
		t.Errorf("precision 0 should clamp to 1, got %q", got)
	}
	if got := EncodeGeohash(p, 99); len(got) != 12 {
		t.Errorf("precision 99 should clamp to 12, got %q", got)
	}
}

func TestDecodeGeohashInvalid(t *testing.T) {
	for _, bad := range []string{"a", "i", "l", "o", "Aa", "r3a!"} {
		if !strings.ContainsAny(bad, "ailoAB!") {
			continue
		}
		if _, err := DecodeGeohash(bad); err == nil {
			t.Errorf("DecodeGeohash(%q) should fail", bad)
		}
	}
}

func TestGeohashCenterAccuracy(t *testing.T) {
	p := Point{Lat: -33.8688, Lon: 151.2093}
	c, err := GeohashCenter(EncodeGeohash(p, 8))
	if err != nil {
		t.Fatal(err)
	}
	if d := Haversine(p, c); d > 40 { // 8 chars resolves to ~19 m x 19 m
		t.Errorf("centre too far from original point: %.1f m", d)
	}
}

func TestGeohashCellSizeShrinks(t *testing.T) {
	p := Point{Lat: -37.8136, Lon: 144.9631}
	prev := math.Inf(1)
	for prec := 1; prec <= 10; prec++ {
		box, err := DecodeGeohash(EncodeGeohash(p, prec))
		if err != nil {
			t.Fatal(err)
		}
		size := (box.MaxLat - box.MinLat) * (box.MaxLon - box.MinLon)
		if size >= prev {
			t.Errorf("cell area did not shrink at precision %d: %v >= %v", prec, size, prev)
		}
		prev = size
	}
}

// TestGeohashCellIDMatchesString: the integer cell ID must induce exactly
// the same partition of the plane as the base-32 string — two points share
// a geohash string at a precision iff they share the cell ID — because the
// mobility extractor counts distinct cells through the ID.
func TestGeohashCellIDMatchesString(t *testing.T) {
	rng := rand.New(rand.NewPCG(71, 72))
	randPoint := func() Point {
		return Point{Lat: -90 + rng.Float64()*180, Lon: -180 + rng.Float64()*360}
	}
	var pts []Point
	for i := 0; i < 3000; i++ {
		pts = append(pts, randPoint())
	}
	// Adversarial points on subdivision boundaries, where >= vs > would
	// first disagree between the two implementations.
	for _, lat := range []float64{-90, -45, 0, 45, 90, -33.75, 11.25} {
		for _, lon := range []float64{-180, -90, 0, 90, 180, 151.171875, -0.0000001} {
			pts = append(pts, Point{Lat: lat, Lon: lon})
		}
	}
	// Pairs nudged a ULP apart straddle cell edges at high precisions.
	for i := 0; i < 500; i++ {
		p := randPoint()
		pts = append(pts, p, Point{Lat: math.Nextafter(p.Lat, 90), Lon: p.Lon})
	}
	for _, prec := range []int{1, 3, 5, 8, 12} {
		byString := map[string]uint64{}
		byID := map[uint64]string{}
		for _, p := range pts {
			s := EncodeGeohash(p, prec)
			id := GeohashCellID(p, prec)
			if prev, ok := byString[s]; ok && prev != id {
				t.Fatalf("precision %d: string %q maps to IDs %d and %d", prec, s, prev, id)
			}
			byString[s] = id
			if prev, ok := byID[id]; ok && prev != s {
				t.Fatalf("precision %d: ID %d maps to strings %q and %q", prec, id, prev, s)
			}
			byID[id] = s
		}
		if len(byString) != len(byID) {
			t.Fatalf("precision %d: %d distinct strings vs %d distinct IDs", prec, len(byString), len(byID))
		}
	}
	// IDs of different precisions never collide (sentinel bit).
	if GeohashCellID(Point{}, 1) == GeohashCellID(Point{}, 2) {
		t.Error("cell IDs of different precisions collide")
	}
}
