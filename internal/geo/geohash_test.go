package geo

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestGeohashKnownValues(t *testing.T) {
	cases := []struct {
		p    Point
		hash string
	}{
		// Reference values from the canonical geohash implementation.
		{Point{Lat: 57.64911, Lon: 10.40744}, "u4pruydqqvj"},
		{Point{Lat: -33.8688, Lon: 151.2093}, "r3gx2f7"},
		{Point{Lat: 0, Lon: 0}, "s0000"},
	}
	for _, c := range cases {
		got := EncodeGeohash(c.p, len(c.hash))
		if got != c.hash {
			t.Errorf("EncodeGeohash(%v, %d) = %q, want %q", c.p, len(c.hash), got, c.hash)
		}
	}
}

func TestGeohashRoundTrip(t *testing.T) {
	f := func(latSeed, lonSeed float64) bool {
		p := Point{clampLat(latSeed), wrapLon(lonSeed)}
		for prec := 1; prec <= 12; prec++ {
			h := EncodeGeohash(p, prec)
			if len(h) != prec {
				return false
			}
			box, err := DecodeGeohash(h)
			if err != nil || !box.Contains(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestGeohashPrefixNesting(t *testing.T) {
	// The cell of a longer hash must be contained in the cell of its prefix.
	p := Point{Lat: -27.4698, Lon: 153.0251}
	h := EncodeGeohash(p, 9)
	outer, err := DecodeGeohash(h[:4])
	if err != nil {
		t.Fatal(err)
	}
	inner, err := DecodeGeohash(h)
	if err != nil {
		t.Fatal(err)
	}
	for _, corner := range []Point{
		{inner.MinLat, inner.MinLon}, {inner.MaxLat, inner.MaxLon},
	} {
		if !outer.Contains(corner) {
			t.Errorf("outer cell does not contain inner corner %v", corner)
		}
	}
}

func TestGeohashPrecisionClamping(t *testing.T) {
	p := Point{Lat: 10, Lon: 10}
	if got := EncodeGeohash(p, 0); len(got) != 1 {
		t.Errorf("precision 0 should clamp to 1, got %q", got)
	}
	if got := EncodeGeohash(p, 99); len(got) != 12 {
		t.Errorf("precision 99 should clamp to 12, got %q", got)
	}
}

func TestDecodeGeohashInvalid(t *testing.T) {
	for _, bad := range []string{"a", "i", "l", "o", "Aa", "r3a!"} {
		if !strings.ContainsAny(bad, "ailoAB!") {
			continue
		}
		if _, err := DecodeGeohash(bad); err == nil {
			t.Errorf("DecodeGeohash(%q) should fail", bad)
		}
	}
}

func TestGeohashCenterAccuracy(t *testing.T) {
	p := Point{Lat: -33.8688, Lon: 151.2093}
	c, err := GeohashCenter(EncodeGeohash(p, 8))
	if err != nil {
		t.Fatal(err)
	}
	if d := Haversine(p, c); d > 40 { // 8 chars resolves to ~19 m x 19 m
		t.Errorf("centre too far from original point: %.1f m", d)
	}
}

func TestGeohashCellSizeShrinks(t *testing.T) {
	p := Point{Lat: -37.8136, Lon: 144.9631}
	prev := math.Inf(1)
	for prec := 1; prec <= 10; prec++ {
		box, err := DecodeGeohash(EncodeGeohash(p, prec))
		if err != nil {
			t.Fatal(err)
		}
		size := (box.MaxLat - box.MinLat) * (box.MaxLon - box.MinLon)
		if size >= prev {
			t.Errorf("cell area did not shrink at precision %d: %v >= %v", prec, size, prev)
		}
		prev = size
	}
}
