// Package geo provides geodesic primitives on the WGS-84 sphere:
// points, distances, bearings, destination points and bounding boxes.
//
// All angles at the package boundary are expressed in decimal degrees and
// all distances in metres unless a name says otherwise. Computations use a
// spherical Earth of radius EarthRadius, which is accurate to ~0.5% — far
// below the noise floor of GPS-tagged social-media data.
package geo

import (
	"fmt"
	"math"
)

// EarthRadius is the mean Earth radius in metres (IUGG).
const EarthRadius = 6371008.8

// Point is a WGS-84 coordinate in decimal degrees.
type Point struct {
	Lat float64 // latitude, degrees, [-90, 90]
	Lon float64 // longitude, degrees, [-180, 180]
}

// Valid reports whether p lies within the legal WGS-84 ranges and is not NaN.
func (p Point) Valid() bool {
	if math.IsNaN(p.Lat) || math.IsNaN(p.Lon) {
		return false
	}
	return p.Lat >= -90 && p.Lat <= 90 && p.Lon >= -180 && p.Lon <= 180
}

// String renders the point as "lat,lon" with six decimal places (~0.1 m).
func (p Point) String() string {
	return fmt.Sprintf("%.6f,%.6f", p.Lat, p.Lon)
}

// Radians returns the latitude and longitude converted to radians.
func (p Point) Radians() (lat, lon float64) {
	return p.Lat * math.Pi / 180, p.Lon * math.Pi / 180
}

// Distance returns the great-circle distance in metres between p and q.
func (p Point) Distance(q Point) float64 { return Haversine(p, q) }

// Haversine returns the great-circle distance in metres between a and b
// using the haversine formula, which is numerically stable for small
// separations (unlike the spherical law of cosines).
func Haversine(a, b Point) float64 {
	lat1, lon1 := a.Radians()
	lat2, lon2 := b.Radians()
	dLat := lat2 - lat1
	dLon := lon2 - lon1
	s1 := math.Sin(dLat / 2)
	s2 := math.Sin(dLon / 2)
	h := s1*s1 + math.Cos(lat1)*math.Cos(lat2)*s2*s2
	if h > 1 {
		h = 1
	}
	return 2 * EarthRadius * math.Asin(math.Sqrt(h))
}

// InitialBearing returns the initial great-circle bearing in degrees
// (clockwise from true north, [0, 360)) when travelling from a to b.
func InitialBearing(a, b Point) float64 {
	lat1, lon1 := a.Radians()
	lat2, lon2 := b.Radians()
	dLon := lon2 - lon1
	y := math.Sin(dLon) * math.Cos(lat2)
	x := math.Cos(lat1)*math.Sin(lat2) - math.Sin(lat1)*math.Cos(lat2)*math.Cos(dLon)
	deg := math.Atan2(y, x) * 180 / math.Pi
	return math.Mod(deg+360, 360)
}

// Destination returns the point reached by travelling dist metres from p on
// the initial bearing bearingDeg (degrees clockwise from north).
func Destination(p Point, bearingDeg, dist float64) Point {
	lat1, lon1 := p.Radians()
	brg := bearingDeg * math.Pi / 180
	ang := dist / EarthRadius
	sinLat2 := math.Sin(lat1)*math.Cos(ang) + math.Cos(lat1)*math.Sin(ang)*math.Cos(brg)
	lat2 := math.Asin(sinLat2)
	y := math.Sin(brg) * math.Sin(ang) * math.Cos(lat1)
	x := math.Cos(ang) - math.Sin(lat1)*sinLat2
	lon2 := lon1 + math.Atan2(y, x)
	return Point{
		Lat: lat2 * 180 / math.Pi,
		Lon: normalizeLon(lon2 * 180 / math.Pi),
	}
}

// Midpoint returns the great-circle midpoint of a and b.
func Midpoint(a, b Point) Point {
	lat1, lon1 := a.Radians()
	lat2, lon2 := b.Radians()
	dLon := lon2 - lon1
	bx := math.Cos(lat2) * math.Cos(dLon)
	by := math.Cos(lat2) * math.Sin(dLon)
	lat3 := math.Atan2(math.Sin(lat1)+math.Sin(lat2),
		math.Sqrt((math.Cos(lat1)+bx)*(math.Cos(lat1)+bx)+by*by))
	lon3 := lon1 + math.Atan2(by, math.Cos(lat1)+bx)
	return Point{Lat: lat3 * 180 / math.Pi, Lon: normalizeLon(lon3 * 180 / math.Pi)}
}

// normalizeLon wraps a longitude in degrees into [-180, 180].
func normalizeLon(lon float64) float64 {
	for lon > 180 {
		lon -= 360
	}
	for lon < -180 {
		lon += 360
	}
	return lon
}

// MetersPerDegreeLat is the north–south extent of one degree of latitude.
const MetersPerDegreeLat = EarthRadius * math.Pi / 180

// MetersPerDegreeLon returns the east–west extent in metres of one degree of
// longitude at the given latitude (degrees).
func MetersPerDegreeLon(latDeg float64) float64 {
	return MetersPerDegreeLat * math.Cos(latDeg*math.Pi/180)
}

// BBox is an axis-aligned bounding box in degrees. A box never crosses the
// antimeridian; callers working near ±180° must split queries themselves
// (Australia, the paper's study region, is safely clear of it).
type BBox struct {
	MinLat, MinLon, MaxLat, MaxLon float64
}

// NewBBox returns the box spanning the two corner points in either order.
func NewBBox(a, b Point) BBox {
	return BBox{
		MinLat: math.Min(a.Lat, b.Lat),
		MinLon: math.Min(a.Lon, b.Lon),
		MaxLat: math.Max(a.Lat, b.Lat),
		MaxLon: math.Max(a.Lon, b.Lon),
	}
}

// EmptyBBox returns a degenerate box that contains nothing and expands to
// exactly the first point added via Extend.
func EmptyBBox() BBox {
	return BBox{MinLat: 91, MinLon: 181, MaxLat: -91, MaxLon: -181}
}

// IsEmpty reports whether the box is the degenerate empty box.
func (b BBox) IsEmpty() bool { return b.MinLat > b.MaxLat || b.MinLon > b.MaxLon }

// Contains reports whether p lies inside the box (inclusive of edges).
func (b BBox) Contains(p Point) bool {
	return p.Lat >= b.MinLat && p.Lat <= b.MaxLat && p.Lon >= b.MinLon && p.Lon <= b.MaxLon
}

// Extend grows the box to include p and returns the result.
func (b BBox) Extend(p Point) BBox {
	if p.Lat < b.MinLat {
		b.MinLat = p.Lat
	}
	if p.Lat > b.MaxLat {
		b.MaxLat = p.Lat
	}
	if p.Lon < b.MinLon {
		b.MinLon = p.Lon
	}
	if p.Lon > b.MaxLon {
		b.MaxLon = p.Lon
	}
	return b
}

// Union returns the smallest box containing both b and o.
func (b BBox) Union(o BBox) BBox {
	if b.IsEmpty() {
		return o
	}
	if o.IsEmpty() {
		return b
	}
	return BBox{
		MinLat: math.Min(b.MinLat, o.MinLat),
		MinLon: math.Min(b.MinLon, o.MinLon),
		MaxLat: math.Max(b.MaxLat, o.MaxLat),
		MaxLon: math.Max(b.MaxLon, o.MaxLon),
	}
}

// Intersects reports whether the two boxes share any point.
func (b BBox) Intersects(o BBox) bool {
	if b.IsEmpty() || o.IsEmpty() {
		return false
	}
	return b.MinLat <= o.MaxLat && o.MinLat <= b.MaxLat &&
		b.MinLon <= o.MaxLon && o.MinLon <= b.MaxLon
}

// Center returns the centre point of the box.
func (b BBox) Center() Point {
	return Point{Lat: (b.MinLat + b.MaxLat) / 2, Lon: (b.MinLon + b.MaxLon) / 2}
}

// BoundAround returns a bounding box guaranteed to contain the disc of the
// given radius (metres) centred at p. The box over-covers near the poles;
// callers must still verify candidates with Haversine.
func BoundAround(p Point, radius float64) BBox {
	dLat := radius / MetersPerDegreeLat
	mpl := MetersPerDegreeLon(p.Lat)
	var dLon float64
	if mpl < 1 { // polar degenerate case: cover all longitudes
		dLon = 360
	} else {
		dLon = radius / mpl
	}
	b := BBox{
		MinLat: p.Lat - dLat,
		MinLon: p.Lon - dLon,
		MaxLat: p.Lat + dLat,
		MaxLon: p.Lon + dLon,
	}
	if b.MinLat < -90 {
		b.MinLat = -90
	}
	if b.MaxLat > 90 {
		b.MaxLat = 90
	}
	if b.MinLon < -180 {
		b.MinLon = -180
	}
	if b.MaxLon > 180 {
		b.MaxLon = 180
	}
	return b
}

// AustraliaBBox is the study region used throughout the paper (Table I):
// longitude [112.921112, 159.278717], latitude [-54.640301, -9.228820].
var AustraliaBBox = BBox{
	MinLat: -54.640301,
	MinLon: 112.921112,
	MaxLat: -9.228820,
	MaxLon: 159.278717,
}
