package geo

import (
	"errors"
	"strings"
)

// geohash implements the standard base-32 geohash encoding. The tweet store
// uses geohash prefixes as coarse spatial keys for segment pruning.

const geohashBase32 = "0123456789bcdefghjkmnpqrstuvwxyz"

var geohashDecodeTable = func() [256]int8 {
	var t [256]int8
	for i := range t {
		t[i] = -1
	}
	for i, c := range geohashBase32 {
		t[c] = int8(i)
	}
	return t
}()

// EncodeGeohash returns the geohash of p with the given precision
// (number of base-32 characters, 1..12). Precision 12 resolves to ~37 mm.
func EncodeGeohash(p Point, precision int) string {
	if precision < 1 {
		precision = 1
	}
	if precision > 12 {
		precision = 12
	}
	latMin, latMax := -90.0, 90.0
	lonMin, lonMax := -180.0, 180.0
	var sb strings.Builder
	sb.Grow(precision)
	evenBit := true // true: longitude bit next
	var ch, bit int
	for sb.Len() < precision {
		if evenBit {
			mid := (lonMin + lonMax) / 2
			if p.Lon >= mid {
				ch = ch<<1 | 1
				lonMin = mid
			} else {
				ch <<= 1
				lonMax = mid
			}
		} else {
			mid := (latMin + latMax) / 2
			if p.Lat >= mid {
				ch = ch<<1 | 1
				latMin = mid
			} else {
				ch <<= 1
				latMax = mid
			}
		}
		evenBit = !evenBit
		bit++
		if bit == 5 {
			sb.WriteByte(geohashBase32[ch])
			bit, ch = 0, 0
		}
	}
	return sb.String()
}

// GeohashCellID returns the geohash cell of p at the given precision as an
// integer: the same interleaved subdivision bits EncodeGeohash renders in
// base-32, preceded by a sentinel 1 bit so identifiers of different
// precisions never collide. Two points share a geohash string at some
// precision exactly when they share the cell ID at that precision, so the
// ID can stand in for the string wherever only cell identity matters —
// without allocating. Precision is clamped to 1..12 like EncodeGeohash.
func GeohashCellID(p Point, precision int) uint64 {
	if precision < 1 {
		precision = 1
	}
	if precision > 12 {
		precision = 12
	}
	latMin, latMax := -90.0, 90.0
	lonMin, lonMax := -180.0, 180.0
	evenBit := true // true: longitude bit next
	id := uint64(1)
	for bit := 0; bit < 5*precision; bit++ {
		if evenBit {
			mid := (lonMin + lonMax) / 2
			if p.Lon >= mid {
				id = id<<1 | 1
				lonMin = mid
			} else {
				id <<= 1
				lonMax = mid
			}
		} else {
			mid := (latMin + latMax) / 2
			if p.Lat >= mid {
				id = id<<1 | 1
				latMin = mid
			} else {
				id <<= 1
				latMax = mid
			}
		}
		evenBit = !evenBit
	}
	return id
}

// ErrBadGeohash is returned by DecodeGeohash for strings containing
// characters outside the geohash base-32 alphabet.
var ErrBadGeohash = errors.New("geo: invalid geohash character")

// DecodeGeohash returns the bounding box represented by the geohash string.
func DecodeGeohash(h string) (BBox, error) {
	latMin, latMax := -90.0, 90.0
	lonMin, lonMax := -180.0, 180.0
	evenBit := true
	for i := 0; i < len(h); i++ {
		v := geohashDecodeTable[h[i]]
		if v < 0 {
			return BBox{}, ErrBadGeohash
		}
		for b := 4; b >= 0; b-- {
			bit := (v >> uint(b)) & 1
			if evenBit {
				mid := (lonMin + lonMax) / 2
				if bit == 1 {
					lonMin = mid
				} else {
					lonMax = mid
				}
			} else {
				mid := (latMin + latMax) / 2
				if bit == 1 {
					latMin = mid
				} else {
					latMax = mid
				}
			}
			evenBit = !evenBit
		}
	}
	return BBox{MinLat: latMin, MinLon: lonMin, MaxLat: latMax, MaxLon: lonMax}, nil
}

// GeohashCenter decodes h and returns the centre point of its cell.
func GeohashCenter(h string) (Point, error) {
	b, err := DecodeGeohash(h)
	if err != nil {
		return Point{}, err
	}
	return b.Center(), nil
}
