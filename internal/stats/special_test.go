package stats

import (
	"math"
	"testing"
)

func TestRegIncompleteBetaKnownValues(t *testing.T) {
	cases := []struct {
		a, b, x float64
		want    float64
		tol     float64
	}{
		// I_x(1,1) = x (uniform CDF).
		{1, 1, 0.3, 0.3, 1e-12},
		{1, 1, 0.75, 0.75, 1e-12},
		// I_x(2,2) = x²(3−2x).
		{2, 2, 0.5, 0.5, 1e-12},
		{2, 2, 0.25, 0.25 * 0.25 * (3 - 0.5), 1e-12},
		// I_x(1,b) = 1 − (1−x)^b.
		{1, 3, 0.2, 1 - math.Pow(0.8, 3), 1e-12},
		// Symmetry point.
		{5, 5, 0.5, 0.5, 1e-12},
		// Edge values.
		{3, 4, 0, 0, 0},
		{3, 4, 1, 1, 0},
		// Half-integer case occurring in the t-test: I_x(a, 1/2).
		// Reference computed by high-resolution midpoint quadrature of the
		// beta integral: I_0.9(14, 0.5) = 0.088670006487...
		{14, 0.5, 0.9, 0.0886700064877, 1e-9},
	}
	for _, c := range cases {
		got, err := RegIncompleteBeta(c.a, c.b, c.x)
		if err != nil {
			t.Errorf("I_%v(%v,%v): %v", c.x, c.a, c.b, err)
			continue
		}
		if !almost(got, c.want, c.tol) {
			t.Errorf("I_%v(%v,%v) = %.15g, want %.15g", c.x, c.a, c.b, got, c.want)
		}
	}
}

func TestRegIncompleteBetaSymmetry(t *testing.T) {
	// I_x(a,b) + I_{1−x}(b,a) = 1.
	for _, a := range []float64{0.5, 1, 2.5, 10} {
		for _, b := range []float64{0.5, 1, 3, 7.5} {
			for _, x := range []float64{0.1, 0.3, 0.5, 0.8, 0.99} {
				i1, err1 := RegIncompleteBeta(a, b, x)
				i2, err2 := RegIncompleteBeta(b, a, 1-x)
				if err1 != nil || err2 != nil {
					t.Fatalf("a=%v b=%v x=%v: %v %v", a, b, x, err1, err2)
				}
				if !almost(i1+i2, 1, 1e-10) {
					t.Errorf("symmetry violated at a=%v b=%v x=%v: %v + %v", a, b, x, i1, i2)
				}
			}
		}
	}
}

func TestRegIncompleteBetaMonotonic(t *testing.T) {
	prev := -1.0
	for x := 0.0; x <= 1.0; x += 0.01 {
		v, err := RegIncompleteBeta(3, 2, x)
		if err != nil {
			t.Fatal(err)
		}
		if v < prev {
			t.Fatalf("not monotonic at x=%v: %v < %v", x, v, prev)
		}
		prev = v
	}
}

func TestRegIncompleteBetaErrors(t *testing.T) {
	if _, err := RegIncompleteBeta(0, 1, 0.5); err == nil {
		t.Error("a=0 should fail")
	}
	if _, err := RegIncompleteBeta(1, -1, 0.5); err == nil {
		t.Error("b<0 should fail")
	}
	if _, err := RegIncompleteBeta(1, 1, -0.1); err == nil {
		t.Error("x<0 should fail")
	}
	if _, err := RegIncompleteBeta(1, 1, 1.1); err == nil {
		t.Error("x>1 should fail")
	}
	if _, err := RegIncompleteBeta(1, 1, math.NaN()); err == nil {
		t.Error("NaN x should fail")
	}
}

func TestStudentTCDFKnownValues(t *testing.T) {
	cases := []struct {
		t, df float64
		want  float64
		tol   float64
	}{
		// df=1 is the Cauchy distribution: CDF(t) = 1/2 + atan(t)/π.
		{0, 1, 0.5, 1e-12},
		{1, 1, 0.75, 1e-10},
		{-1, 1, 0.25, 1e-10},
		// df=2 closed form: CDF(t) = 1/2 + t / (2·sqrt(2+t²)).
		{1, 2, 0.5 + 1/(2*math.Sqrt(3)), 1e-10},
		// Large df approaches the normal distribution.
		{1.959963985, 100000, 0.975, 1e-4},
		// scipy.stats.t.cdf(2.0, 10) = 0.963306.
		{2.0, 10, 0.9633059826, 1e-8},
	}
	for _, c := range cases {
		got, err := StudentTCDF(c.t, c.df)
		if err != nil {
			t.Errorf("t=%v df=%v: %v", c.t, c.df, err)
			continue
		}
		if !almost(got, c.want, c.tol) {
			t.Errorf("StudentTCDF(%v, %v) = %.10f, want %.10f", c.t, c.df, got, c.want)
		}
	}
}

func TestStudentTCDFSymmetry(t *testing.T) {
	for _, df := range []float64{1, 2, 5, 30, 58} {
		for _, tv := range []float64{0.1, 0.5, 1, 2, 5, 10} {
			up, err1 := StudentTCDF(tv, df)
			down, err2 := StudentTCDF(-tv, df)
			if err1 != nil || err2 != nil {
				t.Fatalf("df=%v t=%v: %v %v", df, tv, err1, err2)
			}
			if !almost(up+down, 1, 1e-10) {
				t.Errorf("CDF symmetry violated at t=%v df=%v", tv, df)
			}
		}
	}
}

func TestStudentTTwoTailedP(t *testing.T) {
	// p must equal 2·(1 − CDF(|t|)).
	for _, df := range []float64{3, 10, 58} {
		for _, tv := range []float64{0.5, 1.5, 3, 8} {
			p, err := StudentTTwoTailedP(tv, df)
			if err != nil {
				t.Fatal(err)
			}
			cdf, _ := StudentTCDF(tv, df)
			if !almost(p, 2*(1-cdf), 1e-9) {
				t.Errorf("p mismatch at t=%v df=%v: %v vs %v", tv, df, p, 2*(1-cdf))
			}
		}
	}
	// scipy.stats.t.sf(2.0, 10)*2 = 0.0733880348.
	p, err := StudentTTwoTailedP(2.0, 10)
	if err != nil || !almost(p, 0.0733880348, 1e-8) {
		t.Errorf("p(2.0, 10) = %.10f, %v", p, err)
	}
	if p2, _ := StudentTTwoTailedP(math.Inf(1), 5); p2 != 0 {
		t.Errorf("p at +inf should be 0, got %v", p2)
	}
}

func TestStudentTErrors(t *testing.T) {
	if _, err := StudentTCDF(1, 0); err == nil {
		t.Error("df=0 should fail")
	}
	if _, err := StudentTCDF(math.NaN(), 5); err == nil {
		t.Error("NaN t should fail")
	}
	if _, err := StudentTTwoTailedP(1, -1); err == nil {
		t.Error("negative df should fail")
	}
}

func TestNormalCDF(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1.959963985, 0.975},
		{-1.959963985, 0.025},
		{3, 0.9986501},
	}
	for _, c := range cases {
		if got := NormalCDF(c.x); !almost(got, c.want, 1e-6) {
			t.Errorf("NormalCDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}
