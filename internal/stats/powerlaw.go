package stats

import (
	"fmt"
	"math"
	"sort"
)

// PowerLawFit is the result of fitting P(x) ∝ x^(−Alpha) for x >= XMin.
type PowerLawFit struct {
	Alpha float64 // fitted exponent
	XMin  float64 // lower cutoff used in the fit
	N     int     // number of tail observations (x >= XMin)
	KS    float64 // Kolmogorov–Smirnov distance between data and fit
}

// FitPowerLaw estimates the exponent of a continuous power-law tail by
// maximum likelihood (the Hill/Clauset estimator):
//
//	α̂ = 1 + n / Σ ln(x_i / xmin)
//
// for the observations with x >= xmin. The discrete-data correction
// (xmin − ½) is applied when discrete is true, which is appropriate for
// count data such as tweets-per-user (Fig. 2a).
func FitPowerLaw(xs []float64, xmin float64, discrete bool) (*PowerLawFit, error) {
	if xmin <= 0 {
		return nil, fmt.Errorf("stats: power-law xmin must be positive, got %v", xmin)
	}
	tail := make([]float64, 0, len(xs))
	for _, v := range xs {
		if v >= xmin {
			tail = append(tail, v)
		}
	}
	if len(tail) < 2 {
		return nil, fmt.Errorf("stats: power-law fit needs >= 2 tail observations, got %d", len(tail))
	}
	denomRef := xmin
	if discrete {
		denomRef = xmin - 0.5
	}
	var logSum float64
	for _, v := range tail {
		logSum += math.Log(v / denomRef)
	}
	if logSum <= 0 {
		return nil, fmt.Errorf("stats: degenerate power-law tail (all observations at xmin)")
	}
	alpha := 1 + float64(len(tail))/logSum
	fit := &PowerLawFit{Alpha: alpha, XMin: xmin, N: len(tail)}
	fit.KS = powerLawKS(tail, alpha, xmin)
	return fit, nil
}

// FitPowerLawAuto selects xmin by minimising the KS distance over the
// candidate xmins (Clauset, Shalizi & Newman 2009) and returns the best fit.
// Candidates are the distinct data values between the 1st and 90th
// percentile, capped at maxCandidates evenly spread choices to bound cost.
func FitPowerLawAuto(xs []float64, discrete bool, maxCandidates int) (*PowerLawFit, error) {
	if len(xs) < 10 {
		return nil, fmt.Errorf("stats: automatic power-law fit needs >= 10 observations, got %d", len(xs))
	}
	if maxCandidates < 1 {
		maxCandidates = 20
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	lo := sorted[len(sorted)/100]
	hi := sorted[len(sorted)*9/10]
	if lo <= 0 {
		lo = sorted[0]
		for _, v := range sorted {
			if v > 0 {
				lo = v
				break
			}
		}
	}
	// Distinct candidate xmins in [lo, hi].
	var candidates []float64
	prev := math.NaN()
	for _, v := range sorted {
		if v < lo || v > hi || v <= 0 {
			continue
		}
		if v != prev {
			candidates = append(candidates, v)
			prev = v
		}
	}
	if len(candidates) == 0 {
		return nil, fmt.Errorf("stats: no valid xmin candidates in [%v, %v]", lo, hi)
	}
	stride := 1
	if len(candidates) > maxCandidates {
		stride = len(candidates) / maxCandidates
	}
	var best *PowerLawFit
	for i := 0; i < len(candidates); i += stride {
		fit, err := FitPowerLaw(xs, candidates[i], discrete)
		if err != nil {
			continue
		}
		if best == nil || fit.KS < best.KS {
			best = fit
		}
	}
	if best == nil {
		return nil, fmt.Errorf("stats: power-law fit failed for all %d candidate xmins", len(candidates))
	}
	return best, nil
}

// powerLawKS returns the KS distance between the empirical CDF of the tail
// and the fitted continuous power-law CDF 1 − (x/xmin)^(1−α).
func powerLawKS(tail []float64, alpha, xmin float64) float64 {
	sorted := append([]float64(nil), tail...)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	var maxDist float64
	for i, v := range sorted {
		model := 1 - math.Pow(v/xmin, 1-alpha)
		empLo := float64(i) / n
		empHi := float64(i+1) / n
		d := math.Max(math.Abs(model-empLo), math.Abs(model-empHi))
		if d > maxDist {
			maxDist = d
		}
	}
	return maxDist
}
