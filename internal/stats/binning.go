package stats

import (
	"fmt"
	"math"
	"sort"
)

// Bin is one bin of a histogram or binned scatter series.
type Bin struct {
	Lo, Hi  float64 // bin edges, Lo inclusive, Hi exclusive (last bin inclusive)
	Center  float64 // representative x (geometric centre for log bins)
	Count   int     // number of observations in the bin
	Density float64 // probability density: share/width
	MeanY   float64 // mean of the paired y values (binned scatter only)
}

// Histogram bins xs into nbins equal-width bins over [min, max] and returns
// normalised densities (the integral over all bins is 1).
func Histogram(xs []float64, nbins int) ([]Bin, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	if nbins < 1 {
		return nil, fmt.Errorf("stats: histogram requires nbins >= 1, got %d", nbins)
	}
	min, max, _ := MinMax(xs)
	if min == max {
		max = min + 1 // degenerate: single spike
	}
	width := (max - min) / float64(nbins)
	bins := make([]Bin, nbins)
	for i := range bins {
		bins[i].Lo = min + float64(i)*width
		bins[i].Hi = bins[i].Lo + width
		bins[i].Center = (bins[i].Lo + bins[i].Hi) / 2
	}
	for _, v := range xs {
		i := int((v - min) / width)
		if i >= nbins {
			i = nbins - 1
		}
		if i < 0 {
			i = 0
		}
		bins[i].Count++
	}
	n := float64(len(xs))
	for i := range bins {
		bins[i].Density = float64(bins[i].Count) / (n * width)
	}
	return bins, nil
}

// LogHistogram bins the strictly positive values of xs into logarithmically
// spaced bins (binsPerDecade bins per factor of ten) and returns normalised
// densities. This is the estimator behind the log-log distribution plots of
// Fig. 2: with heavy-tailed data, equal-width bins starve the tail while
// log-spaced bins keep per-bin counts meaningful across many decades.
// Non-positive values are skipped and reported via the skipped count.
func LogHistogram(xs []float64, binsPerDecade int) (bins []Bin, skipped int, err error) {
	if binsPerDecade < 1 {
		return nil, 0, fmt.Errorf("stats: LogHistogram requires binsPerDecade >= 1, got %d", binsPerDecade)
	}
	pos := make([]float64, 0, len(xs))
	for _, v := range xs {
		if v > 0 && !math.IsInf(v, 0) && !math.IsNaN(v) {
			pos = append(pos, v)
		} else {
			skipped++
		}
	}
	if len(pos) == 0 {
		return nil, skipped, ErrEmpty
	}
	min, max, _ := MinMax(pos)
	loExp := math.Floor(math.Log10(min) * float64(binsPerDecade))
	hiExp := math.Ceil(math.Log10(max) * float64(binsPerDecade))
	nbins := int(hiExp-loExp) + 1
	step := 1 / float64(binsPerDecade)
	bins = make([]Bin, nbins)
	for i := range bins {
		bins[i].Lo = math.Pow(10, (loExp+float64(i))*step)
		bins[i].Hi = math.Pow(10, (loExp+float64(i)+1)*step)
		bins[i].Center = math.Sqrt(bins[i].Lo * bins[i].Hi)
	}
	for _, v := range pos {
		i := int(math.Floor(math.Log10(v)*float64(binsPerDecade)) - loExp)
		if i < 0 {
			i = 0
		}
		if i >= nbins {
			i = nbins - 1
		}
		bins[i].Count++
	}
	n := float64(len(pos))
	for i := range bins {
		width := bins[i].Hi - bins[i].Lo
		bins[i].Density = float64(bins[i].Count) / (n * width)
	}
	return bins, skipped, nil
}

// LogBinScatter groups the (x, y) pairs into logarithmic bins over x and
// returns, per non-empty bin, the geometric bin centre and the mean y. This
// produces the red averaged dots of Fig. 4. Pairs with non-positive x are
// skipped.
func LogBinScatter(x, y []float64, binsPerDecade int) ([]Bin, error) {
	if len(x) != len(y) {
		return nil, fmt.Errorf("stats: LogBinScatter length mismatch: %d vs %d", len(x), len(y))
	}
	if binsPerDecade < 1 {
		return nil, fmt.Errorf("stats: LogBinScatter requires binsPerDecade >= 1, got %d", binsPerDecade)
	}
	type acc struct {
		sumY  float64
		count int
	}
	accs := map[int]*acc{}
	factor := float64(binsPerDecade)
	for i := range x {
		if x[i] <= 0 || math.IsNaN(x[i]) || math.IsNaN(y[i]) {
			continue
		}
		k := int(math.Floor(math.Log10(x[i]) * factor))
		a := accs[k]
		if a == nil {
			a = &acc{}
			accs[k] = a
		}
		a.sumY += y[i]
		a.count++
	}
	if len(accs) == 0 {
		return nil, ErrEmpty
	}
	keys := make([]int, 0, len(accs))
	for k := range accs {
		keys = append(keys, k)
	}
	sortInts(keys)
	step := 1 / factor
	bins := make([]Bin, 0, len(keys))
	for _, k := range keys {
		a := accs[k]
		lo := math.Pow(10, float64(k)*step)
		hi := math.Pow(10, float64(k+1)*step)
		bins = append(bins, Bin{
			Lo:     lo,
			Hi:     hi,
			Center: math.Sqrt(lo * hi),
			Count:  a.count,
			MeanY:  a.sumY / float64(a.count),
		})
	}
	return bins, nil
}

func sortInts(xs []int) {
	// Insertion sort: bin key sets are tiny (tens of entries).
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// CCDF returns the complementary cumulative distribution of xs as parallel
// slices (values ascending, P(X >= value)). Useful for plotting heavy tails
// without binning artefacts.
func CCDF(xs []float64) (values, prob []float64, err error) {
	if len(xs) == 0 {
		return nil, nil, ErrEmpty
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := len(sorted)
	values = make([]float64, 0, n)
	prob = make([]float64, 0, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && sorted[j+1] == sorted[i] {
			j++
		}
		values = append(values, sorted[i])
		prob = append(prob, float64(n-i)/float64(n))
		i = j + 1
	}
	return values, prob, nil
}
