package stats

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestHistogramBasic(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	bins, err := Histogram(xs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(bins) != 5 {
		t.Fatalf("got %d bins", len(bins))
	}
	total := 0
	for _, b := range bins {
		total += b.Count
	}
	if total != len(xs) {
		t.Errorf("counts sum to %d, want %d", total, len(xs))
	}
	// Density must integrate to 1.
	var integral float64
	for _, b := range bins {
		integral += b.Density * (b.Hi - b.Lo)
	}
	if !almost(integral, 1, 1e-9) {
		t.Errorf("density integrates to %v", integral)
	}
}

func TestHistogramDegenerate(t *testing.T) {
	bins, err := Histogram([]float64{3, 3, 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, b := range bins {
		total += b.Count
	}
	if total != 3 {
		t.Errorf("degenerate histogram lost observations: %d", total)
	}
	if _, err := Histogram(nil, 3); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := Histogram([]float64{1}, 0); err == nil {
		t.Error("zero bins should fail")
	}
}

func TestLogHistogramConservesAndNormalises(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 4))
	xs := make([]float64, 5000)
	for i := range xs {
		// Heavy-tailed: x = u^(-1), spanning several decades.
		xs[i] = 1 / (rng.Float64() + 1e-4)
	}
	bins, skipped, err := LogHistogram(xs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Errorf("skipped %d positive values", skipped)
	}
	total := 0
	var integral float64
	for _, b := range bins {
		total += b.Count
		integral += b.Density * (b.Hi - b.Lo)
		if b.Center < b.Lo || b.Center > b.Hi {
			t.Errorf("bin centre %v outside [%v,%v]", b.Center, b.Lo, b.Hi)
		}
	}
	if total != len(xs) {
		t.Errorf("counts sum to %d, want %d", total, len(xs))
	}
	if !almost(integral, 1, 1e-9) {
		t.Errorf("density integrates to %v", integral)
	}
	// Bin widths must grow geometrically.
	for i := 1; i < len(bins); i++ {
		if bins[i].Hi-bins[i].Lo <= bins[i-1].Hi-bins[i-1].Lo {
			t.Errorf("bin widths not increasing at %d", i)
		}
	}
}

func TestLogHistogramSkipsNonPositive(t *testing.T) {
	xs := []float64{-1, 0, 1, 10, 100, math.NaN(), math.Inf(1)}
	bins, skipped, err := LogHistogram(xs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 4 {
		t.Errorf("skipped = %d, want 4", skipped)
	}
	total := 0
	for _, b := range bins {
		total += b.Count
	}
	if total != 3 {
		t.Errorf("kept %d, want 3", total)
	}
	if _, _, err := LogHistogram([]float64{-5}, 2); err == nil {
		t.Error("all-nonpositive input should fail")
	}
	if _, _, err := LogHistogram([]float64{1}, 0); err == nil {
		t.Error("zero binsPerDecade should fail")
	}
}

func TestLogBinScatterMeans(t *testing.T) {
	// Two decades; values in the same decade must average together.
	x := []float64{1, 2, 3, 10, 20, 90}
	y := []float64{10, 20, 30, 100, 200, 300}
	bins, err := LogBinScatter(x, y, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(bins) != 2 {
		t.Fatalf("got %d bins, want 2", len(bins))
	}
	if bins[0].Count != 3 || !almost(bins[0].MeanY, 20, 1e-12) {
		t.Errorf("decade 1: %+v", bins[0])
	}
	if bins[1].Count != 3 || !almost(bins[1].MeanY, 200, 1e-12) {
		t.Errorf("decade 2: %+v", bins[1])
	}
}

func TestLogBinScatterSkipsBadPairs(t *testing.T) {
	x := []float64{-1, 0, 5, math.NaN()}
	y := []float64{1, 1, 7, 1}
	bins, err := LogBinScatter(x, y, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(bins) != 1 || bins[0].Count != 1 || bins[0].MeanY != 7 {
		t.Errorf("bins = %+v", bins)
	}
	if _, err := LogBinScatter([]float64{-1}, []float64{1}, 2); err == nil {
		t.Error("no valid pairs should fail")
	}
	if _, err := LogBinScatter([]float64{1, 2}, []float64{1}, 2); err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestCCDF(t *testing.T) {
	values, prob, err := CCDF([]float64{1, 2, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	wantV := []float64{1, 2, 3}
	wantP := []float64{1, 0.75, 0.25}
	if len(values) != 3 {
		t.Fatalf("values = %v", values)
	}
	for i := range wantV {
		if values[i] != wantV[i] || !almost(prob[i], wantP[i], 1e-12) {
			t.Errorf("CCDF[%d] = (%v, %v), want (%v, %v)", i, values[i], prob[i], wantV[i], wantP[i])
		}
	}
	if _, _, err := CCDF(nil); err == nil {
		t.Error("empty CCDF should fail")
	}
}

func TestCCDFMonotoneNonIncreasing(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = rng.ExpFloat64() * 10
	}
	_, prob, err := CCDF(xs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(prob); i++ {
		if prob[i] > prob[i-1] {
			t.Fatalf("CCDF increased at %d", i)
		}
	}
	if prob[0] != 1 {
		t.Errorf("CCDF must start at 1, got %v", prob[0])
	}
}
