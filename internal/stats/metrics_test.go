package stats

import (
	"math"
	"testing"
)

func TestRMSE(t *testing.T) {
	v, err := RMSE([]float64{1, 2, 3}, []float64{1, 2, 3})
	if err != nil || v != 0 {
		t.Errorf("identical: %v %v", v, err)
	}
	v, _ = RMSE([]float64{0, 0}, []float64{3, 4})
	if !almost(v, math.Sqrt(12.5), 1e-12) {
		t.Errorf("RMSE = %v, want %v", v, math.Sqrt(12.5))
	}
	if _, err := RMSE([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := RMSE(nil, nil); err == nil {
		t.Error("empty should fail")
	}
}

func TestMAE(t *testing.T) {
	v, err := MAE([]float64{1, -1}, []float64{0, 0})
	if err != nil || v != 1 {
		t.Errorf("MAE = %v, %v", v, err)
	}
	if _, err := MAE([]float64{1}, []float64{}); err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestHitRate(t *testing.T) {
	obs := []float64{100, 100, 100, 100}
	pred := []float64{100, 149, 151, 40}
	// Relative errors: 0, 0.49, 0.51, 0.6 → 2 of 4 within 50%.
	hr, err := HitRate(pred, obs, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(hr, 0.5, 1e-12) {
		t.Errorf("HitRate = %v, want 0.5", hr)
	}
}

func TestHitRateBoundaryInclusive(t *testing.T) {
	// Exactly 50% relative error counts as a hit (<=).
	hr, err := HitRate([]float64{150}, []float64{100}, 0.5)
	if err != nil || hr != 1 {
		t.Errorf("boundary: %v %v", hr, err)
	}
}

func TestHitRateSkipsZeroObs(t *testing.T) {
	hr, err := HitRate([]float64{5, 100}, []float64{0, 100}, 0.5)
	if err != nil || hr != 1 {
		t.Errorf("zero-obs skip: %v %v", hr, err)
	}
	if _, err := HitRate([]float64{5}, []float64{0}, 0.5); err == nil {
		t.Error("all-zero observations should fail")
	}
	if _, err := HitRate([]float64{1}, []float64{1}, -0.1); err == nil {
		t.Error("negative tolerance should fail")
	}
	if _, err := HitRate([]float64{1, 2}, []float64{1}, 0.5); err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestHitRateMonotoneInTolerance(t *testing.T) {
	pred := []float64{90, 130, 60, 210, 100}
	obs := []float64{100, 100, 100, 100, 100}
	prev := -1.0
	for _, tol := range []float64{0, 0.1, 0.3, 0.5, 1.0, 2.0} {
		hr, err := HitRate(pred, obs, tol)
		if err != nil {
			t.Fatal(err)
		}
		if hr < prev {
			t.Fatalf("HitRate decreased as tolerance grew: %v -> %v at %v", prev, hr, tol)
		}
		prev = hr
	}
	if prev != 1 {
		t.Errorf("HitRate at huge tolerance should be 1, got %v", prev)
	}
}

func TestMAPE(t *testing.T) {
	v, err := MAPE([]float64{110, 90}, []float64{100, 100})
	if err != nil || !almost(v, 0.1, 1e-12) {
		t.Errorf("MAPE = %v, %v", v, err)
	}
	if _, err := MAPE([]float64{1}, []float64{0}); err == nil {
		t.Error("all-zero obs should fail")
	}
	if _, err := MAPE([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestLog10Positive(t *testing.T) {
	x := []float64{10, 0, 100, -5, 1000}
	y := []float64{1, 1, 10, 1, 0}
	lx, ly, dropped, err := Log10Positive(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 3 {
		t.Errorf("dropped = %d, want 3", dropped)
	}
	if len(lx) != 2 || !almost(lx[0], 1, 1e-12) || !almost(ly[1], 1, 1e-12) {
		t.Errorf("lx=%v ly=%v", lx, ly)
	}
	if _, _, _, err := Log10Positive([]float64{1}, nil); err == nil {
		t.Error("length mismatch should fail")
	}
}
