package stats

import (
	"fmt"
	"math"
	"sort"
)

// Pearson returns the Pearson product-moment correlation coefficient between
// x and y. Both slices must have the same length n >= 2 and nonzero
// variance.
func Pearson(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("stats: Pearson length mismatch: %d vs %d", len(x), len(y))
	}
	n := len(x)
	if n < 2 {
		return 0, fmt.Errorf("stats: Pearson requires at least 2 pairs, got %d", n)
	}
	mx, _ := Mean(x)
	my, _ := Mean(y)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx := x[i] - mx
		dy := y[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, fmt.Errorf("stats: Pearson undefined for constant input")
	}
	r := sxy / math.Sqrt(sxx*syy)
	// Guard against rounding pushing |r| infinitesimally above 1.
	if r > 1 {
		r = 1
	}
	if r < -1 {
		r = -1
	}
	return r, nil
}

// CorrelationTest is the result of a correlation significance test.
type CorrelationTest struct {
	R  float64 // correlation coefficient
	T  float64 // t statistic, r·sqrt((n−2)/(1−r²))
	DF float64 // degrees of freedom, n−2
	P  float64 // two-tailed p-value under H0: ρ = 0
	N  int     // sample size
}

// PearsonTest computes the Pearson correlation together with its two-tailed
// p-value under the null hypothesis of zero correlation, exactly as the
// paper reports for Fig. 3 (r = 0.816, p = 2.06e−15 on 60 samples).
func PearsonTest(x, y []float64) (*CorrelationTest, error) {
	if len(x) < 3 {
		return nil, fmt.Errorf("stats: PearsonTest requires at least 3 pairs, got %d", len(x))
	}
	r, err := Pearson(x, y)
	if err != nil {
		return nil, err
	}
	n := len(x)
	df := float64(n - 2)
	var t, p float64
	if 1-r*r <= 0 {
		t = math.Inf(sign(r))
		p = 0
	} else {
		t = r * math.Sqrt(df/(1-r*r))
		p, err = StudentTTwoTailedP(t, df)
		if err != nil {
			return nil, err
		}
	}
	return &CorrelationTest{R: r, T: t, DF: df, P: p, N: n}, nil
}

func sign(v float64) int {
	if v < 0 {
		return -1
	}
	return 1
}

// Spearman returns Spearman's rank correlation coefficient, i.e. the Pearson
// correlation of the rank-transformed data with mid-ranks for ties.
func Spearman(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("stats: Spearman length mismatch: %d vs %d", len(x), len(y))
	}
	if len(x) < 2 {
		return 0, fmt.Errorf("stats: Spearman requires at least 2 pairs, got %d", len(x))
	}
	return Pearson(Ranks(x), Ranks(y))
}

// Ranks returns the 1-based ranks of xs, assigning tied values the mean of
// the ranks they span (mid-rank method).
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// Mid-rank for the tie group [i, j].
		mid := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = mid
		}
		i = j + 1
	}
	return ranks
}
