package stats

import (
	"math"
	"math/rand/v2"
	"testing"
)

// samplePowerLaw draws n continuous power-law variates with the given alpha
// and xmin via inverse-CDF sampling.
func samplePowerLaw(rng *rand.Rand, n int, alpha, xmin float64) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		u := rng.Float64()
		xs[i] = xmin * math.Pow(1-u, -1/(alpha-1))
	}
	return xs
}

func TestFitPowerLawRecoversAlpha(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 43))
	for _, alpha := range []float64{1.8, 2.2, 3.0} {
		xs := samplePowerLaw(rng, 20000, alpha, 1)
		fit, err := FitPowerLaw(xs, 1, false)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fit.Alpha-alpha) > 0.06 {
			t.Errorf("alpha=%v: fitted %v", alpha, fit.Alpha)
		}
		if fit.N != len(xs) {
			t.Errorf("tail size %d, want %d", fit.N, len(xs))
		}
		if fit.KS > 0.02 {
			t.Errorf("KS = %v too large for a true power law", fit.KS)
		}
	}
}

func TestFitPowerLawTailOnly(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 3))
	xs := samplePowerLaw(rng, 10000, 2.5, 5)
	// Pollute below the cutoff; fitting from xmin=5 must ignore it.
	for i := 0; i < 3000; i++ {
		xs = append(xs, rng.Float64()*4)
	}
	fit, err := FitPowerLaw(xs, 5, false)
	if err != nil {
		t.Fatal(err)
	}
	if fit.N != 10000 {
		t.Errorf("tail size %d, want 10000", fit.N)
	}
	if math.Abs(fit.Alpha-2.5) > 0.08 {
		t.Errorf("alpha = %v, want ~2.5", fit.Alpha)
	}
}

func TestFitPowerLawErrors(t *testing.T) {
	if _, err := FitPowerLaw([]float64{1, 2, 3}, 0, false); err == nil {
		t.Error("xmin=0 should fail")
	}
	if _, err := FitPowerLaw([]float64{1}, 1, false); err == nil {
		t.Error("single observation should fail")
	}
	if _, err := FitPowerLaw([]float64{2, 2, 2}, 2, false); err == nil {
		t.Error("all-at-xmin degenerate tail should fail")
	}
}

func TestFitPowerLawDiscreteCorrection(t *testing.T) {
	// The discrete correction shifts the denominator; for data well above
	// xmin the two estimates must be close but not identical.
	rng := rand.New(rand.NewPCG(9, 1))
	xs := samplePowerLaw(rng, 5000, 2.0, 10)
	for i := range xs {
		xs[i] = math.Round(xs[i])
	}
	cont, err := FitPowerLaw(xs, 10, false)
	if err != nil {
		t.Fatal(err)
	}
	disc, err := FitPowerLaw(xs, 10, true)
	if err != nil {
		t.Fatal(err)
	}
	if cont.Alpha == disc.Alpha {
		t.Error("discrete and continuous estimates should differ")
	}
	if math.Abs(cont.Alpha-disc.Alpha) > 0.3 {
		t.Errorf("estimates too far apart: %v vs %v", cont.Alpha, disc.Alpha)
	}
}

func TestFitPowerLawAuto(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	// True power law above xmin=3 with uniform noise below.
	xs := samplePowerLaw(rng, 15000, 2.3, 3)
	for i := 0; i < 5000; i++ {
		xs = append(xs, rng.Float64()*3)
	}
	fit, err := FitPowerLawAuto(xs, false, 40)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Alpha-2.3) > 0.15 {
		t.Errorf("auto fit alpha = %v, want ~2.3", fit.Alpha)
	}
	if fit.XMin > 6 {
		t.Errorf("auto fit xmin = %v, expected near 3", fit.XMin)
	}
	if _, err := FitPowerLawAuto([]float64{1, 2}, false, 10); err == nil {
		t.Error("tiny input should fail")
	}
}

func TestPowerLawKSDetectsMisfit(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 33))
	// Exponential data is not a power law: the KS distance at any alpha
	// should be clearly worse than for true power-law data.
	exp := make([]float64, 5000)
	for i := range exp {
		exp[i] = 1 + rng.ExpFloat64()
	}
	fitExp, err := FitPowerLaw(exp, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	pl := samplePowerLaw(rng, 5000, fitExp.Alpha, 1)
	fitPL, err := FitPowerLaw(pl, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if fitExp.KS < fitPL.KS {
		t.Errorf("KS should flag exponential data: exp=%v pl=%v", fitExp.KS, fitPL.KS)
	}
}
