package stats

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
)

// BootstrapCI is a percentile bootstrap confidence interval.
type BootstrapCI struct {
	Lo, Hi   float64 // interval bounds
	Level    float64 // nominal coverage, e.g. 0.95
	Point    float64 // statistic on the original sample
	Resample int     // number of bootstrap replicates
}

// BootstrapPearsonCI computes a percentile-bootstrap confidence interval
// for the Pearson correlation by resampling (x, y) pairs with replacement.
// Replicates on which the correlation is undefined (constant resample) are
// redrawn up to a bounded number of attempts.
func BootstrapPearsonCI(x, y []float64, level float64, resamples int, seed1, seed2 uint64) (*BootstrapCI, error) {
	if len(x) != len(y) {
		return nil, fmt.Errorf("stats: bootstrap length mismatch: %d vs %d", len(x), len(y))
	}
	if len(x) < 3 {
		return nil, fmt.Errorf("stats: bootstrap requires >= 3 pairs, got %d", len(x))
	}
	if level <= 0 || level >= 1 {
		return nil, fmt.Errorf("stats: bootstrap level must lie in (0,1), got %v", level)
	}
	if resamples < 10 {
		return nil, fmt.Errorf("stats: bootstrap requires >= 10 resamples, got %d", resamples)
	}
	point, err := Pearson(x, y)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(seed1, seed2))
	n := len(x)
	rs := make([]float64, 0, resamples)
	bx := make([]float64, n)
	by := make([]float64, n)
	attempts := 0
	maxAttempts := resamples * 10
	for len(rs) < resamples && attempts < maxAttempts {
		attempts++
		for i := 0; i < n; i++ {
			k := rng.IntN(n)
			bx[i] = x[k]
			by[i] = y[k]
		}
		r, err := Pearson(bx, by)
		if err != nil {
			continue // degenerate resample; redraw
		}
		rs = append(rs, r)
	}
	if len(rs) < resamples {
		return nil, fmt.Errorf("stats: bootstrap produced only %d of %d valid replicates", len(rs), resamples)
	}
	sort.Float64s(rs)
	alpha := 1 - level
	lo, err := Quantile(rs, alpha/2)
	if err != nil {
		return nil, err
	}
	hi, err := Quantile(rs, 1-alpha/2)
	if err != nil {
		return nil, err
	}
	return &BootstrapCI{Lo: lo, Hi: hi, Level: level, Point: point, Resample: resamples}, nil
}

// KSTwoSample returns the two-sample Kolmogorov–Smirnov statistic D and an
// asymptotic two-tailed p-value for the hypothesis that xs and ys are
// drawn from the same distribution.
func KSTwoSample(xs, ys []float64) (d, p float64, err error) {
	if len(xs) == 0 || len(ys) == 0 {
		return 0, 0, ErrEmpty
	}
	a := append([]float64(nil), xs...)
	b := append([]float64(nil), ys...)
	sort.Float64s(a)
	sort.Float64s(b)
	na, nb := len(a), len(b)
	var i, j int
	for i < na && j < nb {
		// Advance past ties on both sides together, so the empirical CDFs
		// are compared only between jump points.
		switch {
		case a[i] < b[j]:
			i++
		case b[j] < a[i]:
			j++
		default:
			v := a[i]
			for i < na && a[i] == v {
				i++
			}
			for j < nb && b[j] == v {
				j++
			}
		}
		fa := float64(i) / float64(na)
		fb := float64(j) / float64(nb)
		if diff := abs(fa - fb); diff > d {
			d = diff
		}
	}
	// Asymptotic Kolmogorov distribution (Smirnov's approximation).
	ne := float64(na) * float64(nb) / float64(na+nb)
	lambda := (sqrt(ne) + 0.12 + 0.11/sqrt(ne)) * d
	p = kolmogorovQ(lambda)
	return d, p, nil
}

// kolmogorovQ evaluates Q_KS(λ) = 2 Σ (−1)^{k−1} exp(−2k²λ²).
func kolmogorovQ(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	var sum float64
	sign := 1.0
	for k := 1; k <= 100; k++ {
		term := sign * exp(-2*float64(k)*float64(k)*lambda*lambda)
		sum += term
		if abs(term) < 1e-12 {
			break
		}
		sign = -sign
	}
	q := 2 * sum
	if q < 0 {
		return 0
	}
	if q > 1 {
		return 1
	}
	return q
}

// Small math helpers kept local so resample.go reads standalone.
func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func sqrt(v float64) float64 { return math.Sqrt(v) }

func exp(v float64) float64 { return math.Exp(v) }
