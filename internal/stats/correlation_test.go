package stats

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestPearsonPerfectCorrelation(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(x, y)
	if err != nil || !almost(r, 1, 1e-12) {
		t.Errorf("perfect positive: r=%v err=%v", r, err)
	}
	yNeg := []float64{10, 8, 6, 4, 2}
	r, _ = Pearson(x, yNeg)
	if !almost(r, -1, 1e-12) {
		t.Errorf("perfect negative: r=%v", r)
	}
}

func TestPearsonKnownValue(t *testing.T) {
	// Hand-computed: x={1,2,3,4,5}, y={1,2,2,4,5}.
	// mx=3, my=2.8; sxy=9.0... compute: dx={-2,-1,0,1,2}, dy={-1.8,-0.8,-0.8,1.2,2.2}
	// sxy = 3.6+0.8+0+1.2+4.4 = 10.0; sxx=10; syy=3.24+0.64+0.64+1.44+4.84=10.8
	// r = 10/sqrt(108) = 0.9622504486...
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{1, 2, 2, 4, 5}
	r, err := Pearson(x, y)
	if err != nil {
		t.Fatal(err)
	}
	want := 10.0 / math.Sqrt(108)
	if !almost(r, want, 1e-12) {
		t.Errorf("r = %.12f, want %.12f", r, want)
	}
}

func TestPearsonInvariances(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	x := make([]float64, 50)
	y := make([]float64, 50)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = 0.6*x[i] + 0.4*rng.NormFloat64()
	}
	r0, err := Pearson(x, y)
	if err != nil {
		t.Fatal(err)
	}
	// Invariance under positive affine transforms of either variable.
	x2 := make([]float64, len(x))
	y2 := make([]float64, len(y))
	for i := range x {
		x2[i] = 3*x[i] + 7
		y2[i] = 0.5*y[i] - 2
	}
	r1, _ := Pearson(x2, y2)
	if !almost(r0, r1, 1e-12) {
		t.Errorf("affine invariance violated: %v vs %v", r0, r1)
	}
	// Antisymmetry under negation.
	for i := range y2 {
		y2[i] = -y2[i]
	}
	r2, _ := Pearson(x2, y2)
	if !almost(r0, -r2, 1e-12) {
		t.Errorf("negation antisymmetry violated: %v vs %v", r0, r2)
	}
	// Symmetry in arguments.
	r3, _ := Pearson(y, x)
	if !almost(r0, r3, 1e-12) {
		t.Errorf("argument symmetry violated: %v vs %v", r0, r3)
	}
	if r0 < -1 || r0 > 1 {
		t.Errorf("r out of range: %v", r0)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := Pearson([]float64{1}, []float64{1}); err == nil {
		t.Error("n=1 should fail")
	}
	if _, err := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); err == nil {
		t.Error("constant x should fail")
	}
}

func TestPearsonTestPValue(t *testing.T) {
	// r=0.5 with n=12 gives t = 0.5*sqrt(10/0.75) = 1.8257418584,
	// two-tailed p = 0.0979850578 (df=10) — reference via the beta relation.
	x := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	// Construct y with exactly r=0.5 against x is fiddly; instead validate
	// internal consistency: recompute p from the reported t and df.
	rng := rand.New(rand.NewPCG(5, 17))
	y := make([]float64, len(x))
	for i := range y {
		y[i] = 0.4*x[i] + rng.NormFloat64()*2
	}
	res, err := PearsonTest(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 12 || res.DF != 10 {
		t.Fatalf("bookkeeping: %+v", res)
	}
	wantT := res.R * math.Sqrt(res.DF/(1-res.R*res.R))
	if !almost(res.T, wantT, 1e-12) {
		t.Errorf("t = %v, want %v", res.T, wantT)
	}
	wantP, _ := StudentTTwoTailedP(res.T, res.DF)
	if !almost(res.P, wantP, 1e-12) {
		t.Errorf("p = %v, want %v", res.P, wantP)
	}
	if res.P < 0 || res.P > 1 {
		t.Errorf("p out of range: %v", res.P)
	}
}

func TestPearsonTestStrongCorrelationTinyP(t *testing.T) {
	// A strong correlation over 60 samples (the paper's Fig. 3 pooling)
	// must give an extremely small p-value, in the spirit of p ≈ 2e-15.
	rng := rand.New(rand.NewPCG(23, 29))
	n := 60
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64() * 100
		y[i] = x[i] + rng.NormFloat64()*20
	}
	res, err := PearsonTest(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if res.R < 0.7 {
		t.Fatalf("setup failure: r=%v too weak", res.R)
	}
	if res.P > 1e-9 {
		t.Errorf("p = %v, expected < 1e-9 for strong correlation with n=60", res.P)
	}
}

func TestPearsonTestPerfectCorrelation(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{2, 4, 6, 8}
	res, err := PearsonTest(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 0 || !math.IsInf(res.T, 1) {
		t.Errorf("perfect correlation: %+v", res)
	}
}

func TestPearsonTestErrors(t *testing.T) {
	if _, err := PearsonTest([]float64{1, 2}, []float64{1, 2}); err == nil {
		t.Error("n=2 should fail (df=0)")
	}
}

func TestRanks(t *testing.T) {
	got := Ranks([]float64{10, 20, 20, 40})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", got, want)
		}
	}
	got = Ranks([]float64{5, 5, 5})
	for _, v := range got {
		if v != 2 {
			t.Fatalf("all-ties ranks = %v", got)
		}
	}
}

func TestSpearman(t *testing.T) {
	// Monotone but non-linear relation: Spearman must be exactly 1.
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{1, 8, 27, 64, 125}
	rho, err := Spearman(x, y)
	if err != nil || !almost(rho, 1, 1e-12) {
		t.Errorf("Spearman = %v, %v", rho, err)
	}
	// Reversed gives −1.
	yRev := []float64{125, 64, 27, 8, 1}
	rho, _ = Spearman(x, yRev)
	if !almost(rho, -1, 1e-12) {
		t.Errorf("Spearman reversed = %v", rho)
	}
	if _, err := Spearman([]float64{1}, []float64{1}); err == nil {
		t.Error("n=1 should fail")
	}
	if _, err := Spearman([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch should fail")
	}
}
