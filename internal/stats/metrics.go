package stats

import (
	"fmt"
	"math"
)

// RMSE returns the root-mean-square error between predictions and
// observations.
func RMSE(pred, obs []float64) (float64, error) {
	if len(pred) != len(obs) {
		return 0, fmt.Errorf("stats: RMSE length mismatch: %d vs %d", len(pred), len(obs))
	}
	if len(pred) == 0 {
		return 0, ErrEmpty
	}
	var ss float64
	for i := range pred {
		d := pred[i] - obs[i]
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(pred))), nil
}

// MAE returns the mean absolute error between predictions and observations.
func MAE(pred, obs []float64) (float64, error) {
	if len(pred) != len(obs) {
		return 0, fmt.Errorf("stats: MAE length mismatch: %d vs %d", len(pred), len(obs))
	}
	if len(pred) == 0 {
		return 0, ErrEmpty
	}
	var s float64
	for i := range pred {
		s += math.Abs(pred[i] - obs[i])
	}
	return s / float64(len(pred)), nil
}

// HitRate returns the fraction of predictions whose relative error
// |pred − obs| / obs is at most tol. Pairs with obs == 0 are skipped (their
// relative error is undefined); if every pair is skipped an error is
// returned. HitRate(pred, obs, 0.5) is the paper's HitRate@50% (Table II).
func HitRate(pred, obs []float64, tol float64) (float64, error) {
	if len(pred) != len(obs) {
		return 0, fmt.Errorf("stats: HitRate length mismatch: %d vs %d", len(pred), len(obs))
	}
	if tol < 0 {
		return 0, fmt.Errorf("stats: HitRate tolerance must be non-negative, got %v", tol)
	}
	var hits, valid int
	for i := range pred {
		if obs[i] == 0 {
			continue
		}
		valid++
		if math.Abs(pred[i]-obs[i])/math.Abs(obs[i]) <= tol {
			hits++
		}
	}
	if valid == 0 {
		return 0, fmt.Errorf("stats: HitRate has no pairs with nonzero observation")
	}
	return float64(hits) / float64(valid), nil
}

// MAPE returns the mean absolute percentage error over pairs with nonzero
// observations.
func MAPE(pred, obs []float64) (float64, error) {
	if len(pred) != len(obs) {
		return 0, fmt.Errorf("stats: MAPE length mismatch: %d vs %d", len(pred), len(obs))
	}
	var s float64
	var valid int
	for i := range pred {
		if obs[i] == 0 {
			continue
		}
		valid++
		s += math.Abs(pred[i]-obs[i]) / math.Abs(obs[i])
	}
	if valid == 0 {
		return 0, fmt.Errorf("stats: MAPE has no pairs with nonzero observation")
	}
	return s / float64(valid), nil
}

// Log10Positive returns parallel slices holding log10 of the entries where
// both inputs are strictly positive, dropping the rest. Model evaluation in
// Table II correlates traffic on the log scale, matching the log-log
// scatter of Fig. 4.
func Log10Positive(x, y []float64) (lx, ly []float64, dropped int, err error) {
	if len(x) != len(y) {
		return nil, nil, 0, fmt.Errorf("stats: Log10Positive length mismatch: %d vs %d", len(x), len(y))
	}
	lx = make([]float64, 0, len(x))
	ly = make([]float64, 0, len(y))
	for i := range x {
		if x[i] > 0 && y[i] > 0 {
			lx = append(lx, math.Log10(x[i]))
			ly = append(ly, math.Log10(y[i]))
		} else {
			dropped++
		}
	}
	return lx, ly, dropped, nil
}
