package stats

import (
	"fmt"
	"math"
)

// Special functions needed for significance testing. The implementations
// follow the classic Numerical Recipes formulations (Lentz's modified
// continued fraction for the incomplete beta), using math.Lgamma from the
// standard library for the log-gamma terms.

// RegIncompleteBeta returns the regularised incomplete beta function
// I_x(a, b) for a, b > 0 and x in [0, 1].
func RegIncompleteBeta(a, b, x float64) (float64, error) {
	if a <= 0 || b <= 0 {
		return 0, fmt.Errorf("stats: incomplete beta requires a,b > 0, got a=%v b=%v", a, b)
	}
	if x < 0 || x > 1 || math.IsNaN(x) {
		return 0, fmt.Errorf("stats: incomplete beta requires x in [0,1], got %v", x)
	}
	if x == 0 {
		return 0, nil
	}
	if x == 1 {
		return 1, nil
	}
	// Prefactor: x^a (1-x)^b / (a B(a,b)).
	lgA, _ := math.Lgamma(a)
	lgB, _ := math.Lgamma(b)
	lgAB, _ := math.Lgamma(a + b)
	front := math.Exp(lgAB - lgA - lgB + a*math.Log(x) + b*math.Log(1-x))
	// Use the continued fraction directly when x < (a+1)/(a+b+2); otherwise
	// use the symmetry I_x(a,b) = 1 − I_{1−x}(b,a) for faster convergence.
	if x < (a+1)/(a+b+2) {
		cf, err := betaContinuedFraction(a, b, x)
		if err != nil {
			return 0, err
		}
		return front * cf / a, nil
	}
	cf, err := betaContinuedFraction(b, a, 1-x)
	if err != nil {
		return 0, err
	}
	return 1 - front*cf/b, nil
}

// betaContinuedFraction evaluates the continued fraction for the incomplete
// beta function by the modified Lentz method.
func betaContinuedFraction(a, b, x float64) (float64, error) {
	const (
		maxIter = 500
		eps     = 3e-14
		tiny    = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		// Even step.
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		// Odd step.
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			return h, nil
		}
	}
	return 0, fmt.Errorf("stats: incomplete beta continued fraction failed to converge for a=%v b=%v x=%v", a, b, x)
}

// StudentTCDF returns P(T <= t) for Student's t distribution with df degrees
// of freedom.
func StudentTCDF(t, df float64) (float64, error) {
	if df <= 0 {
		return 0, fmt.Errorf("stats: Student-t requires df > 0, got %v", df)
	}
	if math.IsNaN(t) {
		return 0, fmt.Errorf("stats: Student-t got NaN statistic")
	}
	if math.IsInf(t, 1) {
		return 1, nil
	}
	if math.IsInf(t, -1) {
		return 0, nil
	}
	x := df / (df + t*t)
	ib, err := RegIncompleteBeta(df/2, 0.5, x)
	if err != nil {
		return 0, err
	}
	if t >= 0 {
		return 1 - ib/2, nil
	}
	return ib / 2, nil
}

// StudentTTwoTailedP returns the two-tailed p-value P(|T| >= |t|) for
// Student's t distribution with df degrees of freedom.
func StudentTTwoTailedP(t, df float64) (float64, error) {
	if df <= 0 {
		return 0, fmt.Errorf("stats: Student-t requires df > 0, got %v", df)
	}
	if math.IsNaN(t) {
		return 0, fmt.Errorf("stats: Student-t got NaN statistic")
	}
	if math.IsInf(t, 0) {
		return 0, nil
	}
	x := df / (df + t*t)
	ib, err := RegIncompleteBeta(df/2, 0.5, x)
	if err != nil {
		return 0, err
	}
	return ib, nil
}

// NormalCDF returns the standard normal cumulative distribution Φ(x).
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}
