package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSumMean(t *testing.T) {
	if Sum(nil) != 0 {
		t.Error("Sum(nil) != 0")
	}
	if Sum([]float64{1, 2, 3}) != 6 {
		t.Error("Sum wrong")
	}
	m, err := Mean([]float64{2, 4, 6})
	if err != nil || m != 4 {
		t.Errorf("Mean = %v, %v", m, err)
	}
	if _, err := Mean(nil); err == nil {
		t.Error("Mean(nil) should fail")
	}
}

func TestVarianceStdDev(t *testing.T) {
	v, err := Variance([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	// Sample variance with n−1 denominator: ss=32, n−1=7.
	if !almost(v, 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %v, want %v", v, 32.0/7.0)
	}
	sd, err := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil || !almost(sd, math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("StdDev = %v, %v", sd, err)
	}
	if _, err := Variance([]float64{1}); err == nil {
		t.Error("Variance of single value should fail")
	}
}

func TestMinMax(t *testing.T) {
	min, max, err := MinMax([]float64{3, -1, 4, 1, 5})
	if err != nil || min != -1 || max != 5 {
		t.Errorf("MinMax = %v %v %v", min, max, err)
	}
	if _, _, err := MinMax(nil); err == nil {
		t.Error("MinMax(nil) should fail")
	}
}

func TestMedianQuantile(t *testing.T) {
	med, err := Median([]float64{3, 1, 2})
	if err != nil || med != 2 {
		t.Errorf("Median odd = %v", med)
	}
	med, _ = Median([]float64{4, 1, 2, 3})
	if med != 2.5 {
		t.Errorf("Median even = %v, want 2.5", med)
	}
	// Quantile interpolation (type 7): q=0.25 of 1..5 is 2.
	q, _ := Quantile([]float64{1, 2, 3, 4, 5}, 0.25)
	if q != 2 {
		t.Errorf("Q1 = %v, want 2", q)
	}
	q, _ = Quantile([]float64{1, 2, 3, 4}, 0.25)
	if !almost(q, 1.75, 1e-12) {
		t.Errorf("Q1 of 1..4 = %v, want 1.75", q)
	}
	if v, _ := Quantile([]float64{7}, 0.9); v != 7 {
		t.Errorf("single-element quantile = %v", v)
	}
	if _, err := Quantile([]float64{1}, 1.5); err == nil {
		t.Error("quantile > 1 should fail")
	}
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Error("quantile of empty should fail")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3}
	if _, err := Median(xs); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Error("Median mutated its input")
	}
}

func TestQuantileMonotonic(t *testing.T) {
	f := func(seed int64) bool {
		xs := []float64{1, 5, 2, 8, 3, 9, 4, float64(seed % 100)}
		prev := math.Inf(-1)
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 1} {
			v, err := Quantile(xs, q)
			if err != nil || v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGeometricMean(t *testing.T) {
	g, err := GeometricMean([]float64{1, 10, 100})
	if err != nil || !almost(g, 10, 1e-9) {
		t.Errorf("GeometricMean = %v, %v", g, err)
	}
	if _, err := GeometricMean([]float64{1, 0}); err == nil {
		t.Error("geometric mean with zero should fail")
	}
	if _, err := GeometricMean(nil); err == nil {
		t.Error("geometric mean of empty should fail")
	}
}

func TestMeanBetweenMinMax(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		xs := []float64{}
		for _, v := range []float64{a, b, c, d} {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, math.Mod(v, 1e6))
			}
		}
		if len(xs) == 0 {
			return true
		}
		m, err := Mean(xs)
		if err != nil {
			return false
		}
		min, max, _ := MinMax(xs)
		return m >= min-1e-9 && m <= max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
