// Package stats implements the statistical toolkit the reproduction needs:
// descriptive statistics, Pearson/Spearman correlation with two-tailed
// p-values (Student-t via the regularised incomplete beta function),
// linear- and log-scale histograms, logarithmic binning of scatter data
// (Fig. 4's red dots), Clauset-style power-law fitting (Fig. 2a) and the
// error metrics used in Table II (HitRate@q).
//
// Everything is implemented from scratch on math; no external numerical
// libraries are used.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that require at least one observation.
var ErrEmpty = errors.New("stats: empty input")

// Sum returns the sum of xs (0 for empty input).
func Sum(xs []float64) float64 {
	var s float64
	for _, v := range xs {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	return Sum(xs) / float64(len(xs)), nil
}

// Variance returns the unbiased (n−1) sample variance of xs.
func Variance(xs []float64) (float64, error) {
	if len(xs) < 2 {
		return 0, fmt.Errorf("stats: variance requires at least 2 observations, got %d", len(xs))
	}
	m, _ := Mean(xs)
	var ss float64
	for _, v := range xs {
		d := v - m
		ss += d * d
	}
	return ss / float64(len(xs)-1), nil
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) (float64, error) {
	v, err := Variance(xs)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// MinMax returns the smallest and largest values in xs.
func MinMax(xs []float64) (min, max float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	min, max = xs[0], xs[0]
	for _, v := range xs[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max, nil
}

// Median returns the median of xs without modifying the input.
func Median(xs []float64) (float64, error) {
	return Quantile(xs, 0.5)
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (type-7, the R default). The input
// is not modified.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("stats: quantile %v outside [0,1]", q)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	h := q * float64(len(sorted)-1)
	lo := int(math.Floor(h))
	hi := int(math.Ceil(h))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := h - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// GeometricMean returns the geometric mean of xs; every value must be
// strictly positive.
func GeometricMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var logSum float64
	for _, v := range xs {
		if v <= 0 {
			return 0, fmt.Errorf("stats: geometric mean requires positive values, got %v", v)
		}
		logSum += math.Log(v)
	}
	return math.Exp(logSum / float64(len(xs))), nil
}
