package stats

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestBootstrapPearsonCICoversPoint(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	n := 60
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = 0.8*x[i] + 0.4*rng.NormFloat64()
	}
	ci, err := BootstrapPearsonCI(x, y, 0.95, 500, 7, 8)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Lo > ci.Point || ci.Hi < ci.Point {
		t.Errorf("interval [%v, %v] does not cover the point estimate %v", ci.Lo, ci.Hi, ci.Point)
	}
	if ci.Lo >= ci.Hi {
		t.Errorf("degenerate interval [%v, %v]", ci.Lo, ci.Hi)
	}
	if ci.Hi-ci.Lo > 0.5 {
		t.Errorf("interval too wide for a strong correlation: [%v, %v]", ci.Lo, ci.Hi)
	}
	if ci.Lo < -1 || ci.Hi > 1 {
		t.Errorf("interval escapes [-1,1]: [%v, %v]", ci.Lo, ci.Hi)
	}
}

func TestBootstrapWiderAtLowerN(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	big := 200
	x := make([]float64, big)
	y := make([]float64, big)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = 0.6*x[i] + 0.8*rng.NormFloat64()
	}
	wide, err := BootstrapPearsonCI(x[:20], y[:20], 0.95, 400, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := BootstrapPearsonCI(x, y, 0.95, 400, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if wide.Hi-wide.Lo <= narrow.Hi-narrow.Lo {
		t.Errorf("n=20 interval (%v) should be wider than n=200 (%v)",
			wide.Hi-wide.Lo, narrow.Hi-narrow.Lo)
	}
}

func TestBootstrapErrors(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{2, 4, 6, 8}
	if _, err := BootstrapPearsonCI(x[:2], y[:2], 0.95, 100, 1, 2); err == nil {
		t.Error("n=2 should fail")
	}
	if _, err := BootstrapPearsonCI(x, y[:3], 0.95, 100, 1, 2); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := BootstrapPearsonCI(x, y, 1.5, 100, 1, 2); err == nil {
		t.Error("level > 1 should fail")
	}
	if _, err := BootstrapPearsonCI(x, y, 0.95, 5, 1, 2); err == nil {
		t.Error("too few resamples should fail")
	}
}

func TestBootstrapDeterministic(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	y := []float64{2, 3, 5, 6, 9, 11, 14, 18}
	a, err := BootstrapPearsonCI(x, y, 0.9, 200, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BootstrapPearsonCI(x, y, 0.9, 200, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.Lo != b.Lo || a.Hi != b.Hi {
		t.Errorf("same seed gave different intervals: %+v vs %+v", a, b)
	}
}

func TestKSTwoSampleSameDistribution(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	xs := make([]float64, 500)
	ys := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.NormFloat64()
		ys[i] = rng.NormFloat64()
	}
	d, p, err := KSTwoSample(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if d > 0.1 {
		t.Errorf("D = %v too large for identical distributions", d)
	}
	if p < 0.01 {
		t.Errorf("p = %v rejects equal distributions", p)
	}
}

func TestKSTwoSampleDifferentDistributions(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	xs := make([]float64, 500)
	ys := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.NormFloat64()
		ys[i] = rng.NormFloat64() + 1.5 // shifted
	}
	d, p, err := KSTwoSample(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if d < 0.4 {
		t.Errorf("D = %v too small for a 1.5σ shift", d)
	}
	if p > 1e-6 {
		t.Errorf("p = %v fails to reject", p)
	}
}

func TestKSTwoSampleIdenticalSamples(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	d, p, err := KSTwoSample(xs, xs)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("identical samples: D = %v", d)
	}
	if p < 0.99 {
		t.Errorf("identical samples: p = %v", p)
	}
	if _, _, err := KSTwoSample(nil, xs); err == nil {
		t.Error("empty sample should fail")
	}
}

func TestKolmogorovQBounds(t *testing.T) {
	if q := kolmogorovQ(0); q != 1 {
		t.Errorf("Q(0) = %v", q)
	}
	if q := kolmogorovQ(10); q > 1e-10 {
		t.Errorf("Q(10) = %v, want ~0", q)
	}
	prev := 1.0
	for _, l := range []float64{0.2, 0.5, 0.8, 1.2, 2.0} {
		q := kolmogorovQ(l)
		if q > prev || q < 0 || q > 1 {
			t.Fatalf("Q not monotone in [0,1] at λ=%v: %v (prev %v)", l, q, prev)
		}
		prev = q
	}
	// Known value: Q(1.0) ≈ 0.27.
	if q := kolmogorovQ(1.0); math.Abs(q-0.27) > 0.01 {
		t.Errorf("Q(1.0) = %v, want ≈0.27", q)
	}
}
