// Package randx provides the seeded random variate generators the synthetic
// data pipeline relies on: Pareto and bounded Pareto tails, discrete power
// laws, lognormal penetration bias, Poisson counts and weighted choices.
//
// All generators draw from an explicit *rand.Rand (math/rand/v2, PCG), so
// every experiment in the repository is reproducible from a pair of seeds.
package randx

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
)

// New returns a deterministic PCG-backed generator for the given seed pair.
func New(seed1, seed2 uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed1, seed2))
}

// Pareto draws from the (continuous, unbounded) Pareto distribution with
// density p(x) ∝ x^(−alpha) for x >= xmin. alpha must exceed 1 so that the
// density normalises. It panics on invalid parameters, which always
// indicates a programming error in experiment setup.
func Pareto(rng *rand.Rand, alpha, xmin float64) float64 {
	if alpha <= 1 || xmin <= 0 {
		panic(fmt.Sprintf("randx: Pareto requires alpha > 1 and xmin > 0, got alpha=%v xmin=%v", alpha, xmin))
	}
	u := rng.Float64()
	return xmin * math.Pow(1-u, -1/(alpha-1))
}

// BoundedPareto draws from the Pareto density truncated to [xmin, xmax] by
// inverse-CDF sampling. Unlike Pareto it admits any alpha > 0 (the
// truncation keeps the density normalisable), which matches the heavy,
// slowly decaying inter-tweet waiting times of Fig. 2b.
func BoundedPareto(rng *rand.Rand, alpha, xmin, xmax float64) float64 {
	if alpha <= 0 || xmin <= 0 || xmax <= xmin {
		panic(fmt.Sprintf("randx: BoundedPareto requires alpha > 0 and 0 < xmin < xmax, got alpha=%v xmin=%v xmax=%v", alpha, xmin, xmax))
	}
	// CDF of the truncated density with exponent -(alpha+1) tail... we use
	// the convention p(x) ∝ x^(−alpha) on [xmin, xmax].
	if alpha == 1 {
		// p(x) ∝ 1/x: inverse CDF is geometric interpolation.
		u := rng.Float64()
		return xmin * math.Pow(xmax/xmin, u)
	}
	u := rng.Float64()
	a1 := 1 - alpha
	lo := math.Pow(xmin, a1)
	hi := math.Pow(xmax, a1)
	return math.Pow(lo+u*(hi-lo), 1/a1)
}

// DiscretePowerLaw draws an integer k in [kmin, kmax] with P(k) ∝ k^(−alpha)
// using a precomputed sampler; see NewDiscretePowerLaw for repeated draws.
func DiscretePowerLaw(rng *rand.Rand, alpha float64, kmin, kmax int) int {
	s := NewDiscretePowerLaw(alpha, kmin, kmax)
	return s.Sample(rng)
}

// DiscretePowerLawSampler samples integers k with P(k) ∝ k^(−alpha) on a
// bounded support via the alias-free inverse-CDF table.
type DiscretePowerLawSampler struct {
	kmin int
	cdf  []float64
}

// NewDiscretePowerLaw builds the sampler. kmin must be >= 1 and kmax >= kmin.
// The support size (kmax−kmin+1) is materialised, so keep it below ~10⁷.
func NewDiscretePowerLaw(alpha float64, kmin, kmax int) *DiscretePowerLawSampler {
	if kmin < 1 || kmax < kmin {
		panic(fmt.Sprintf("randx: DiscretePowerLaw requires 1 <= kmin <= kmax, got kmin=%d kmax=%d", kmin, kmax))
	}
	n := kmax - kmin + 1
	cdf := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		total += math.Pow(float64(kmin+i), -alpha)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &DiscretePowerLawSampler{kmin: kmin, cdf: cdf}
}

// Sample draws one variate.
func (s *DiscretePowerLawSampler) Sample(rng *rand.Rand) int {
	u := rng.Float64()
	i := sort.SearchFloat64s(s.cdf, u)
	if i >= len(s.cdf) {
		i = len(s.cdf) - 1
	}
	return s.kmin + i
}

// LogNormal draws from the lognormal distribution where the underlying
// normal has mean mu and standard deviation sigma.
func LogNormal(rng *rand.Rand, mu, sigma float64) float64 {
	if sigma < 0 {
		panic(fmt.Sprintf("randx: LogNormal requires sigma >= 0, got %v", sigma))
	}
	return math.Exp(mu + sigma*rng.NormFloat64())
}

// Poisson draws from the Poisson distribution with mean lambda. It uses
// Knuth multiplication for small lambda and the PTRS transformed-rejection
// fallback is avoided by normal approximation above 500, which is far more
// precision than the pipeline needs.
func Poisson(rng *rand.Rand, lambda float64) int {
	if lambda < 0 {
		panic(fmt.Sprintf("randx: Poisson requires lambda >= 0, got %v", lambda))
	}
	if lambda == 0 {
		return 0
	}
	if lambda > 500 {
		v := lambda + math.Sqrt(lambda)*rng.NormFloat64()
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// WeightedChoice owns a cumulative table over non-negative weights and
// samples indices proportionally.
type WeightedChoice struct {
	cum []float64
}

// NewWeightedChoice builds a sampler over the given weights. At least one
// weight must be positive; negative weights are rejected.
func NewWeightedChoice(weights []float64) (*WeightedChoice, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("randx: WeightedChoice requires at least one weight")
	}
	cum := make([]float64, len(weights))
	var total float64
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			return nil, fmt.Errorf("randx: weight %d is invalid (%v)", i, w)
		}
		total += w
		cum[i] = total
	}
	if total <= 0 {
		return nil, fmt.Errorf("randx: WeightedChoice requires a positive total weight")
	}
	for i := range cum {
		cum[i] /= total
	}
	return &WeightedChoice{cum: cum}, nil
}

// Sample draws an index with probability proportional to its weight.
func (w *WeightedChoice) Sample(rng *rand.Rand) int {
	u := rng.Float64()
	i := sort.SearchFloat64s(w.cum, u)
	if i >= len(w.cum) {
		i = len(w.cum) - 1
	}
	return i
}

// Len returns the number of categories.
func (w *WeightedChoice) Len() int { return len(w.cum) }

// Exponential draws from the exponential distribution with the given mean.
func Exponential(rng *rand.Rand, mean float64) float64 {
	if mean <= 0 {
		panic(fmt.Sprintf("randx: Exponential requires mean > 0, got %v", mean))
	}
	return rng.ExpFloat64() * mean
}
