package randx

import (
	"math"
	"testing"
)

func TestNewDeterminism(t *testing.T) {
	a := New(1, 2)
	b := New(1, 2)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must give the same stream")
		}
	}
	c := New(1, 3)
	same := true
	a2 := New(1, 2)
	for i := 0; i < 10; i++ {
		if a2.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should give different streams")
	}
}

func TestParetoSupportAndMean(t *testing.T) {
	rng := New(10, 20)
	const alpha, xmin = 3.0, 2.0
	n := 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := Pareto(rng, alpha, xmin)
		if v < xmin {
			t.Fatalf("Pareto below xmin: %v", v)
		}
		sum += v
	}
	// With p(x) ∝ x^(−alpha), the mean is xmin·(alpha−1)/(alpha−2) = 4.
	mean := sum / float64(n)
	if math.Abs(mean-4) > 0.1 {
		t.Errorf("Pareto mean = %v, want ~4", mean)
	}
}

func TestParetoPanics(t *testing.T) {
	rng := New(1, 1)
	for _, c := range []struct{ alpha, xmin float64 }{{1, 1}, {2, 0}, {0.5, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Pareto(%v, %v) should panic", c.alpha, c.xmin)
				}
			}()
			Pareto(rng, c.alpha, c.xmin)
		}()
	}
}

func TestBoundedParetoSupport(t *testing.T) {
	rng := New(3, 4)
	for _, alpha := range []float64{0.5, 1.0, 1.2, 2.5} {
		minSeen, maxSeen := math.Inf(1), math.Inf(-1)
		for i := 0; i < 50000; i++ {
			v := BoundedPareto(rng, alpha, 60, 1e6)
			if v < 60 || v > 1e6 {
				t.Fatalf("alpha=%v: value %v outside bounds", alpha, v)
			}
			minSeen = math.Min(minSeen, v)
			maxSeen = math.Max(maxSeen, v)
		}
		// The sample should explore several decades of the support.
		if maxSeen/minSeen < 100 {
			t.Errorf("alpha=%v: span too narrow [%v, %v]", alpha, minSeen, maxSeen)
		}
	}
}

func TestBoundedParetoHeavyTail(t *testing.T) {
	// Smaller alpha must give a heavier tail (larger high quantiles).
	quantile99 := func(alpha float64) float64 {
		rng := New(7, 7)
		xs := make([]float64, 20000)
		for i := range xs {
			xs[i] = BoundedPareto(rng, alpha, 1, 1e8)
		}
		// Partial selection: just scan for the 99th percentile crudely.
		var count int
		threshold := 1e4
		for _, v := range xs {
			if v > threshold {
				count++
			}
		}
		return float64(count)
	}
	if quantile99(1.1) <= quantile99(2.5) {
		t.Error("alpha=1.1 should put more mass above 1e4 than alpha=2.5")
	}
}

func TestBoundedParetoPanics(t *testing.T) {
	rng := New(1, 1)
	defer func() {
		if recover() == nil {
			t.Error("xmax < xmin should panic")
		}
	}()
	BoundedPareto(rng, 1.5, 10, 5)
}

func TestDiscretePowerLawDistribution(t *testing.T) {
	rng := New(5, 6)
	s := NewDiscretePowerLaw(2.0, 1, 1000)
	counts := map[int]int{}
	n := 300000
	for i := 0; i < n; i++ {
		k := s.Sample(rng)
		if k < 1 || k > 1000 {
			t.Fatalf("sample %d outside support", k)
		}
		counts[k]++
	}
	// P(1)/P(2) should be close to 2^alpha = 4.
	ratio := float64(counts[1]) / float64(counts[2])
	if math.Abs(ratio-4) > 0.3 {
		t.Errorf("P(1)/P(2) = %v, want ~4", ratio)
	}
	// The tail must actually be populated.
	var tail int
	for k, c := range counts {
		if k >= 100 {
			tail += c
		}
	}
	if tail == 0 {
		t.Error("no samples beyond k=100; tail starved")
	}
}

func TestDiscretePowerLawPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("kmin=0 should panic")
		}
	}()
	NewDiscretePowerLaw(2, 0, 10)
}

func TestDiscretePowerLawOneShot(t *testing.T) {
	rng := New(2, 2)
	k := DiscretePowerLaw(rng, 1.8, 5, 50)
	if k < 5 || k > 50 {
		t.Errorf("one-shot sample %d outside [5,50]", k)
	}
}

func TestLogNormalMedian(t *testing.T) {
	rng := New(8, 9)
	n := 100000
	var below int
	for i := 0; i < n; i++ {
		if LogNormal(rng, math.Log(5), 0.7) < 5 {
			below++
		}
	}
	// The median of a lognormal is exp(mu) = 5.
	frac := float64(below) / float64(n)
	if math.Abs(frac-0.5) > 0.01 {
		t.Errorf("P(X < median) = %v, want ~0.5", frac)
	}
	if v := LogNormal(rng, 0, 0); v != 1 {
		t.Errorf("sigma=0 should be deterministic exp(mu), got %v", v)
	}
}

func TestPoissonMeanVariance(t *testing.T) {
	rng := New(12, 13)
	for _, lambda := range []float64{0.5, 4, 30, 800} {
		n := 50000
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			v := float64(Poisson(rng, lambda))
			sum += v
			sumSq += v * v
		}
		mean := sum / float64(n)
		variance := sumSq/float64(n) - mean*mean
		if math.Abs(mean-lambda) > 0.05*lambda+0.05 {
			t.Errorf("lambda=%v: mean=%v", lambda, mean)
		}
		if math.Abs(variance-lambda) > 0.1*lambda+0.1 {
			t.Errorf("lambda=%v: variance=%v", lambda, variance)
		}
	}
	if Poisson(rng, 0) != 0 {
		t.Error("Poisson(0) must be 0")
	}
}

func TestWeightedChoice(t *testing.T) {
	w, err := NewWeightedChoice([]float64{1, 0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != 3 {
		t.Fatalf("Len = %d", w.Len())
	}
	rng := New(20, 21)
	counts := make([]int, 3)
	n := 100000
	for i := 0; i < n; i++ {
		counts[w.Sample(rng)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight category sampled %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.2 {
		t.Errorf("ratio = %v, want ~3", ratio)
	}
}

func TestWeightedChoiceErrors(t *testing.T) {
	if _, err := NewWeightedChoice(nil); err == nil {
		t.Error("empty weights should fail")
	}
	if _, err := NewWeightedChoice([]float64{0, 0}); err == nil {
		t.Error("all-zero weights should fail")
	}
	if _, err := NewWeightedChoice([]float64{1, -1}); err == nil {
		t.Error("negative weight should fail")
	}
	if _, err := NewWeightedChoice([]float64{math.NaN()}); err == nil {
		t.Error("NaN weight should fail")
	}
}

func TestExponentialMean(t *testing.T) {
	rng := New(30, 31)
	var sum float64
	n := 100000
	for i := 0; i < n; i++ {
		sum += Exponential(rng, 7)
	}
	if mean := sum / float64(n); math.Abs(mean-7) > 0.15 {
		t.Errorf("Exponential mean = %v, want ~7", mean)
	}
	defer func() {
		if recover() == nil {
			t.Error("non-positive mean should panic")
		}
	}()
	Exponential(rng, 0)
}
