// Package models implements the paper's two mobility models — the Gravity
// model in its 4-parameter (Eq. 1) and 2-parameter (Eq. 2) forms, and the
// Radiation model (Eq. 3) — together with the origin–destination dataset
// builder (including the radiation s-term), log-space least-squares
// fitting, and the Table II evaluation metrics (Pearson correlation and
// HitRate@50%).
package models

import (
	"fmt"
	"math"

	"geomob/internal/census"
	"geomob/internal/geo"
	"geomob/internal/stats"
)

// OD is the origin–destination dataset for one region set: populations,
// pairwise distances, radiation s-terms and observed flows.
type OD struct {
	Areas  []census.Area
	Pop    []float64   // population of each area (Twitter-derived or census)
	DistKM [][]float64 // great-circle distances between area centres, km
	S      [][]float64 // radiation s_ij: population within the d_ij disc around i, excluding i and j
	Flow   [][]float64 // observed flow counts (off-diagonal)
}

// BuildOD assembles the dataset. pop[i] must correspond to areas[i]; flows
// is the off-diagonal observed flow matrix from mobility extraction.
// Populations may be zero (areas with no observed users) — model fits skip
// pairs that are not strictly positive in every regressor.
func BuildOD(areas []census.Area, pop []float64, flow [][]float64) (*OD, error) {
	n := len(areas)
	if n < 3 {
		return nil, fmt.Errorf("models: need at least 3 areas, got %d", n)
	}
	if len(pop) != n || len(flow) != n {
		return nil, fmt.Errorf("models: dimension mismatch: %d areas, %d populations, %d flow rows", n, len(pop), len(flow))
	}
	for i := range flow {
		if len(flow[i]) != n {
			return nil, fmt.Errorf("models: flow row %d has %d columns, want %d", i, len(flow[i]), n)
		}
		if pop[i] < 0 {
			return nil, fmt.Errorf("models: negative population %v for area %q", pop[i], areas[i].Name)
		}
	}
	od := &OD{Areas: areas, Pop: pop, Flow: flow}
	od.DistKM = make([][]float64, n)
	for i := 0; i < n; i++ {
		od.DistKM[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			od.DistKM[i][j] = geo.Haversine(areas[i].Center, areas[j].Center) / 1000
		}
	}
	// Radiation s-term: for each ordered pair (i, j), the total population
	// of areas strictly within distance d_ij of i, excluding i and j
	// themselves (Eq. 3's definition).
	od.S = make([][]float64, n)
	for i := 0; i < n; i++ {
		od.S[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			d := od.DistKM[i][j]
			var s float64
			for k := 0; k < n; k++ {
				if k == i || k == j {
					continue
				}
				if od.DistKM[i][k] <= d {
					s += pop[k]
				}
			}
			od.S[i][j] = s
		}
	}
	return od, nil
}

// N returns the number of areas.
func (od *OD) N() int { return len(od.Areas) }

// positivePairs returns the ordered (i, j) pairs usable for fitting:
// i != j, positive flow, positive populations at both ends and positive
// distance.
func (od *OD) positivePairs() (is, js []int) {
	n := od.N()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if od.Flow[i][j] > 0 && od.Pop[i] > 0 && od.Pop[j] > 0 && od.DistKM[i][j] > 0 {
				is = append(is, i)
				js = append(js, j)
			}
		}
	}
	return is, js
}

// Metrics are the Table II evaluation numbers for one model on one scale,
// plus the Common Part of Commuters score standard in the mobility
// literature.
type Metrics struct {
	PearsonLog float64 // Pearson between log10 predicted and log10 observed
	HitRate50  float64 // share of pairs with relative error <= 50%
	RMSELog    float64 // RMSE on log10 values (supplementary)
	CPC        float64 // common part of commuters: 2·Σmin(pred,obs)/(Σpred+Σobs)
	N          int     // number of evaluated pairs
}

// CommonPartOfCommuters returns 2·Σ min(pred, obs) / (Σpred + Σobs), the
// Sørensen-style overlap between two flow assignments (1 = identical).
func CommonPartOfCommuters(pred, obs []float64) (float64, error) {
	if len(pred) != len(obs) {
		return 0, fmt.Errorf("models: CPC length mismatch: %d vs %d", len(pred), len(obs))
	}
	var common, total float64
	for i := range pred {
		p, o := pred[i], obs[i]
		if p < 0 || o < 0 {
			return 0, fmt.Errorf("models: CPC requires non-negative flows, got (%v, %v) at %d", p, o, i)
		}
		common += math.Min(p, o)
		total += p + o
	}
	if total == 0 {
		return 0, fmt.Errorf("models: CPC undefined for all-zero flows")
	}
	return 2 * common / total, nil
}

// Evaluate scores a fitted model against the observed flows over the
// positive pairs, on the log scale the paper's Fig. 4 uses.
func Evaluate(od *OD, m Model) (*Metrics, error) {
	is, js := od.positivePairs()
	if len(is) < 3 {
		return nil, fmt.Errorf("models: only %d positive pairs to evaluate", len(is))
	}
	pred := make([]float64, len(is))
	obs := make([]float64, len(is))
	for k := range is {
		p, err := m.Predict(od, is[k], js[k])
		if err != nil {
			return nil, err
		}
		pred[k] = p
		obs[k] = od.Flow[is[k]][js[k]]
	}
	lp, lo, _, err := stats.Log10Positive(pred, obs)
	if err != nil {
		return nil, err
	}
	if len(lp) < 3 {
		return nil, fmt.Errorf("models: only %d positive predictions to correlate", len(lp))
	}
	r, err := stats.Pearson(lp, lo)
	if err != nil {
		return nil, fmt.Errorf("models: evaluate pearson: %w", err)
	}
	hr, err := stats.HitRate(pred, obs, 0.5)
	if err != nil {
		return nil, fmt.Errorf("models: evaluate hitrate: %w", err)
	}
	rmse, err := stats.RMSE(lp, lo)
	if err != nil {
		return nil, fmt.Errorf("models: evaluate rmse: %w", err)
	}
	cpc, err := CommonPartOfCommuters(pred, obs)
	if err != nil {
		return nil, fmt.Errorf("models: evaluate cpc: %w", err)
	}
	return &Metrics{PearsonLog: r, HitRate50: hr, RMSELog: rmse, CPC: cpc, N: len(pred)}, nil
}

// ScatterSeries extracts the Fig. 4 plotting data for a fitted model:
// the (estimated, observed) pairs and the log-binned means (the paper's
// red dots), using binsPerDecade logarithmic bins.
func ScatterSeries(od *OD, m Model, binsPerDecade int) (est, obs []float64, binned []stats.Bin, err error) {
	is, js := od.positivePairs()
	for k := range is {
		p, err := m.Predict(od, is[k], js[k])
		if err != nil {
			return nil, nil, nil, err
		}
		est = append(est, p)
		obs = append(obs, od.Flow[is[k]][js[k]])
	}
	binned, err = stats.LogBinScatter(est, obs, binsPerDecade)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("models: scatter binning: %w", err)
	}
	return est, obs, binned, nil
}
